package objectswap

// Facade-level tests of the telemetry plane: cluster heat agreeing with the
// evictor's victim ordering, fault attribution distinguishing
// evictor-pressure from explicit and reload swaps, the thrash health check
// flipping degraded and back, and the /debug endpoints staying consistent
// under a concurrent swap storm (run with -race).

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"objectswap/internal/core"
	"objectswap/internal/heap"
	"objectswap/internal/obs"
	"objectswap/internal/store"
	"objectswap/internal/telemetry"
)

// TestHeatRankingMatchesEvictionOrder drives four clusters through proxy
// crossings under a virtual clock and asserts the heat classification agrees
// with the coldest-first victim order: no hot cluster may be selected for
// eviction before a cold one.
func TestHeatRankingMatchesEvictionOrder(t *testing.T) {
	clock := obs.NewVirtualClock(time.Unix(0, 0))
	sys, err := New(Config{HeapCapacity: 1 << 20, Clock: clock})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	if err := sys.AttachDevice("mem", store.NewMem(0)); err != nil {
		t.Fatal(err)
	}
	cls := sys.MustRegisterClass(taskClass())
	clusters := buildClusters(t, sys, cls, 4)

	// Swap every cluster out and fault it back through its root: from here
	// on, each root invocation is a boundary crossing that feeds both the
	// manager's recency clock and the heat tracker.
	invoke := func(i int) {
		t.Helper()
		root, err := sys.MustRoot(string(rune('a' + i)))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sys.Invoke(root, "title"); err != nil {
			t.Fatalf("invoke cluster %d: %v", clusters[i], err)
		}
	}
	for i := range clusters {
		if _, err := sys.SwapOut(clusters[i]); err != nil {
			t.Fatal(err)
		}
		invoke(i)
	}

	// Let the build/reload heat decay to nothing (default half-life 30s),
	// then hammer only the last two clusters.
	clock.Advance(30 * time.Minute)
	for n := 0; n < 6; n++ {
		invoke(2)
		invoke(3)
	}

	tr := sys.Telemetry()
	for _, i := range []int{2, 3} {
		if got := tr.HeatClassOf(uint32(clusters[i])); got != telemetry.ClassHot {
			t.Fatalf("hammered cluster %d class = %q, want hot", clusters[i], got)
		}
	}
	for _, i := range []int{0, 1} {
		if got := tr.HeatClassOf(uint32(clusters[i])); got != telemetry.ClassCold {
			t.Fatalf("idle cluster %d class = %q, want cold", clusters[i], got)
		}
	}
	snap := tr.HeatSnapshot()
	if len(snap) < 4 || snap[0].Class != telemetry.ClassHot {
		t.Fatalf("heat snapshot not ranked hot-first: %+v", snap)
	}

	// Victim order must agree: every cold cluster precedes every hot one.
	victims := sys.Runtime().Manager().SelectVictims(core.VictimColdest)
	rank := make(map[ClusterID]int, len(victims))
	for pos, id := range victims {
		rank[id] = pos
	}
	for _, cold := range []int{0, 1} {
		for _, hot := range []int{2, 3} {
			cp, cok := rank[clusters[cold]]
			hp, hok := rank[clusters[hot]]
			if !cok || !hok {
				t.Fatalf("victim list %v missing clusters %v", victims, clusters)
			}
			if hp < cp {
				t.Fatalf("hot cluster %d selected before cold %d: victims %v",
					clusters[hot], clusters[cold], victims)
			}
		}
	}
}

// TestFaultCauseAttribution separates the three demand-fault causes: an
// explicit SwapOut, evictor-pressure swap-outs under allocation pressure,
// and the reload swap-in when a swapped root is touched again.
func TestFaultCauseAttribution(t *testing.T) {
	sys, err := New(Config{
		HeapCapacity: 32 << 10,
		// Keep the policy engine quiet so pressure swaps are attributable
		// to the allocation-failure evictor alone.
		MemoryThreshold: 0.99,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	if err := sys.AttachDevice("mem", store.NewMem(0)); err != nil {
		t.Fatal(err)
	}
	cls := sys.MustRegisterClass(taskClass())

	// One small cluster swapped out by hand: the explicit cause.
	first := buildClusters(t, sys, cls, 1)
	if _, err := sys.SwapOut(first[0]); err != nil {
		t.Fatal(err)
	}

	// Fill the heap with fat rooted clusters until the evictor runs at
	// least once, leaving it headroom to do its work.
	reg := sys.Metrics()
	evictorFired := func() bool {
		hs, ok := reg.HistogramSnapshotOf("objectswap_fault_seconds",
			"swap_out", core.CauseEvictor, telemetry.KindDemand)
		return ok && hs.Count > 0
	}
	payload := heap.Str(strings.Repeat("x", 1024))
	for i := 0; i < 64 && !evictorFired(); i++ {
		cluster := sys.NewCluster()
		o, err := sys.NewObject(cls, cluster)
		if err != nil {
			t.Fatalf("pressure cluster %d: %v", i, err)
		}
		if err := sys.SetField(o.RefTo(), "title", payload); err != nil {
			t.Fatalf("pressure payload %d: %v", i, err)
		}
		if err := sys.SetRoot(string(rune('A'+i)), o.RefTo()); err != nil {
			t.Fatal(err)
		}
	}
	if !evictorFired() {
		t.Fatal("allocation pressure never triggered the evictor")
	}

	// Touch the explicitly swapped cluster: a reload swap-in.
	root, err := sys.MustRoot("a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Invoke(root, "title"); err != nil {
		t.Fatal(err)
	}

	for _, c := range []struct{ op, cause string }{
		{"swap_out", core.CauseExplicit},
		{"swap_out", core.CauseEvictor},
		{"swap_in", core.CauseReload},
	} {
		hs, ok := reg.HistogramSnapshotOf("objectswap_fault_seconds",
			c.op, c.cause, telemetry.KindDemand)
		if !ok || hs.Count == 0 {
			t.Fatalf("fault_seconds{%s,%s}: ok=%v count=%d, want >= 1",
				c.op, c.cause, ok, hs.Count)
		}
	}
}

// TestThrashHealthFlips forces a swap-out/swap-in ping-pong on one cluster
// until the thrash check degrades /healthz, then recovers it by letting the
// score decay under the virtual clock.
func TestThrashHealthFlips(t *testing.T) {
	clock := obs.NewVirtualClock(time.Unix(0, 0))
	sys, err := New(Config{HeapCapacity: 1 << 20, Clock: clock})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	if err := sys.AttachDevice("mem", store.NewMem(0)); err != nil {
		t.Fatal(err)
	}
	cls := sys.MustRegisterClass(taskClass())
	clusters := buildClusters(t, sys, cls, 1)

	if code, hr := getHealth(t, sys); code != http.StatusOK || !checkNamed(t, hr, "thrash").OK {
		t.Fatalf("fresh system unhealthy: code %d, %+v", code, hr)
	}

	// Four instantaneous out/in round-trips: score 4 > ThrashHigh (3).
	for i := 0; i < 4; i++ {
		if _, err := sys.SwapOut(clusters[0]); err != nil {
			t.Fatal(err)
		}
		if _, err := sys.SwapIn(clusters[0]); err != nil {
			t.Fatal(err)
		}
	}
	code, hr := getHealth(t, sys)
	if code != http.StatusServiceUnavailable || hr.Status != "degraded" {
		t.Fatalf("ping-pong storm: code %d, %+v, want degraded", code, hr)
	}
	if c := checkNamed(t, hr, "thrash"); c.OK || c.Error == "" {
		t.Fatalf("thrash check did not fail: %+v", c)
	}

	// Ten minutes of silence decays the score far below ThrashLow.
	clock.Advance(10 * time.Minute)
	if code, hr := getHealth(t, sys); code != http.StatusOK || !checkNamed(t, hr, "thrash").OK {
		t.Fatalf("after decay: code %d, %+v, want recovered", code, hr)
	}
}

// TestTelemetryEndpointsUnderSwapStorm scrapes /debug/heat, /debug/wss and
// /metrics while a SwapOutMany/SwapIn storm churns the clusters — the -race
// gate for the telemetry read paths against the swap hot path.
func TestTelemetryEndpointsUnderSwapStorm(t *testing.T) {
	sys, err := New(Config{HeapCapacity: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	if err := sys.AttachDevice("mem", store.NewMem(0)); err != nil {
		t.Fatal(err)
	}
	cls := sys.MustRegisterClass(taskClass())
	clusters := buildClusters(t, sys, cls, 8)
	h := sys.OpsHandler()

	stop := make(chan struct{})
	var storm sync.WaitGroup
	storm.Add(1)
	go func() {
		defer storm.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			// Busy clusters and re-swaps are expected mid-storm; only the
			// churn matters here.
			sys.SwapOutMany(clusters, 4)
			for _, c := range clusters {
				sys.SwapIn(c)
			}
		}
	}()

	var scrapers sync.WaitGroup
	for _, path := range []string{"/debug/heat", "/debug/wss?window=5s", "/metrics"} {
		scrapers.Add(1)
		go func(path string) {
			defer scrapers.Done()
			for i := 0; i < 40; i++ {
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
				if rec.Code != http.StatusOK {
					t.Errorf("GET %s: status %d body %s", path, rec.Code, rec.Body.String())
					return
				}
			}
		}(path)
	}
	// /healthz may legitimately report degraded while the storm ping-pongs;
	// it only has to answer coherently.
	scrapers.Add(1)
	go func() {
		defer scrapers.Done()
		for i := 0; i < 40; i++ {
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
			if rec.Code != http.StatusOK && rec.Code != http.StatusServiceUnavailable {
				t.Errorf("GET /healthz: status %d", rec.Code)
				return
			}
		}
	}()

	scrapers.Wait()
	close(stop)
	storm.Wait()
}
