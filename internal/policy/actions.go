package policy

import (
	"errors"
	"fmt"

	"objectswap/internal/core"
	"objectswap/internal/event"
	"objectswap/internal/replication"
)

// BindSwapActions registers the standard Object-Swapping actions on an
// engine, wired to a swapping runtime:
//
//	swap-out  strategy=coldest|largest|least-used  count=N  collect=bool  parallel=N  replicas=K
//	    Selects count victim clusters under the strategy and swaps them out
//	    (collecting afterwards when collect is true, the default). With
//	    parallel > 1 the victims ship through a bounded worker pool,
//	    overlapping encoding with device transfer. With replicas > 0 each
//	    shipment goes to K rendezvous-ranked donors (overriding the
//	    runtime's default replication factor for this action).
//	swap-in   cluster=N
//	    Prefetches a swapped cluster back.
//	collect
//	    Runs a garbage collection.
//	log       message=...
//	    Writes a structured line through the engine's logger (SetLogger),
//	    carrying the swap trace ID when the triggering event has one.
//
// It also installs the runtime evictor so allocation pressure flows through
// the same machinery.
func BindSwapActions(e *Engine, rt *core.Runtime) {
	rt.SetEvictor(rt.EvictColdest)
	e.RegisterAction("swap-out", func(spec ActionSpec, _ event.Event) error {
		strategy, err := core.VictimStrategyFromString(spec.Param("strategy", "coldest"))
		if err != nil {
			return err
		}
		count := spec.IntParam("count", 1)
		collect := spec.BoolParam("collect", true)
		parallel := spec.IntParam("parallel", 1)
		// Policy-driven swap-outs are attributed to the rule that fired
		// them, not to the evictor or an explicit call.
		swapOpts := []core.SwapOption{core.WithCause(core.CausePolicy)}
		if replicas := spec.IntParam("replicas", 0); replicas > 0 {
			swapOpts = append(swapOpts, core.WithReplicas(replicas))
		}

		victims := rt.Manager().SelectVictims(strategy)
		swapped := 0
		if parallel > 1 {
			for start := 0; start < len(victims) && swapped < count; {
				end := start + parallel
				if rem := start + count - swapped; end > rem {
					end = rem
				}
				if end > len(victims) {
					end = len(victims)
				}
				evs, err := rt.SwapOutMany(victims[start:end], parallel, swapOpts...)
				if err != nil {
					return fmt.Errorf("swap-out: %w", err)
				}
				swapped += len(evs)
				start = end
			}
		} else {
			for _, victim := range victims {
				if swapped >= count {
					break
				}
				if _, err := rt.SwapOut(victim, swapOpts...); err != nil {
					if errors.Is(err, core.ErrClusterActive) || errors.Is(err, core.ErrClusterBusy) {
						continue
					}
					return fmt.Errorf("swap-out cluster %d: %w", victim, err)
				}
				swapped++
			}
		}
		if collect && swapped > 0 {
			rt.Collect()
		}
		if swapped == 0 {
			return errors.New("swap-out: no eligible victim")
		}
		return nil
	})

	e.RegisterAction("swap-in", func(spec ActionSpec, _ event.Event) error {
		id := spec.IntParam("cluster", -1)
		if id < 0 {
			return errors.New("swap-in: missing cluster parameter")
		}
		_, err := rt.SwapIn(core.ClusterID(id), core.WithCause(core.CausePolicy))
		return err
	})

	e.RegisterAction("collect", func(ActionSpec, event.Event) error {
		rt.Collect()
		return nil
	})

	e.RegisterAction("log", func(spec ActionSpec, ev event.Event) error {
		pairs := []any{"event", ev.Topic}
		if se, ok := ev.Payload.(core.SwapEvent); ok && se.Trace != "" {
			pairs = append(pairs, "trace", se.Trace, "cluster", uint32(se.Cluster))
		}
		e.Logger().Info(spec.Param("message", "fired"), pairs...)
		return nil
	})
}

// BindReplicationActions registers replication-adaptation actions:
//
//	set-group-size  n=N
//	    Changes how many future replication clusters share one swap-cluster
//	    (the paper's adaptable macro-object size) — e.g. shrink the grouping
//	    when the link degrades, so faults ship less per trip.
func BindReplicationActions(e *Engine, r *replication.Replicator) {
	e.RegisterAction("set-group-size", func(spec ActionSpec, _ event.Event) error {
		n := spec.IntParam("n", 0)
		if n <= 0 {
			return errors.New("set-group-size: missing or invalid n")
		}
		r.SetGroupSize(n)
		return nil
	})
}

// DefaultSwapPolicy is a ready-to-load machine policy that swaps the coldest
// cluster whenever the memory monitor signals pressure — the paper's
// prototypical "middleware, evaluating the policies loaded, decides to
// swap-out a set of objects to nearby devices".
const DefaultSwapPolicy = `<policies>
  <policy name="swap-on-pressure" category="machine">
    <on event="memory.threshold"/>
    <action do="swap-out" strategy="coldest" count="1" collect="true"/>
  </policy>
</policies>`
