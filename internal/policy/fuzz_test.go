package policy

import "testing"

// FuzzParseDocument hardens the policy parser against arbitrary documents
// (policies may be user-authored files).
func FuzzParseDocument(f *testing.F) {
	seeds := []string{
		DefaultSwapPolicy,
		`<policies><policy name="p" category="user"><on event="t"/><when><all><gt left="a" right="1"/><not><eq left="b" right="c"/></not></all></when><action do="x" k="v"/></policy></policies>`,
		`<policies></policies>`, `<policies`, ``, `<a/>`,
		`<policies><policy name="p"><on event="t"/><action do="x"/></policy></policies>`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		policies, err := parseDocument(data)
		if err != nil {
			return
		}
		// Accepted documents must be well-formed: evaluable conditions and
		// complete action specs.
		for _, p := range policies {
			if p.Name == "" || len(p.Events) == 0 || len(p.Actions) == 0 {
				t.Fatalf("accepted incomplete policy: %+v", p)
			}
			if p.Cond != nil {
				_ = p.Cond.Eval(nil) // must not panic on empty snapshots
			}
			for _, a := range p.Actions {
				if a.Do == "" {
					t.Fatalf("accepted empty action in %q", p.Name)
				}
			}
		}
	})
}
