// Package policy implements OBIWAN's Policy Engine: the inference component
// that "manages, loads, and deploys declarative policies to oversee and
// mediate responses to events occurred in the system".
//
// Policies are coded in XML (as in the prototype), stored and categorized by
// nature (user, machine, application, domain). The engine subscribes to the
// events each policy names, evaluates its condition over a metric snapshot
// from context management, and triggers its actions — for Object-Swapping,
// typically selecting victim clusters and swapping them out when memory
// crosses a threshold.
//
// Policy document shape:
//
//	<policies>
//	  <policy name="swap-on-pressure" category="machine" priority="10">
//	    <on event="memory.threshold"/>
//	    <when>
//	      <gt left="heap.used.pct" right="80"/>
//	    </when>
//	    <action do="swap-out" strategy="coldest" count="1" collect="true"/>
//	  </policy>
//	</policies>
//
// Conditions compose with <all>, <any> and <not>; leaves compare a metric
// (or literal number) against another with <gt>, <ge>, <lt>, <le>, <eq>,
// <ne>. A policy without <when> always fires on its events.
package policy

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"sync"

	"objectswap/internal/devctx"
	"objectswap/internal/event"
	"objectswap/internal/obs"
	olog "objectswap/internal/obs/log"
)

// Errors reported by the policy engine.
var (
	ErrBadPolicy     = errors.New("policy: malformed policy document")
	ErrUnknownAction = errors.New("policy: unknown action")
)

// Category classifies a policy by nature, as the paper prescribes.
type Category string

// The four policy categories of the OBIWAN policy engine.
const (
	CategoryUser        Category = "user"
	CategoryMachine     Category = "machine"
	CategoryApplication Category = "application"
	CategoryDomain      Category = "domain"
)

// defaultPriority orders categories when a policy does not set an explicit
// priority: user wishes outrank application logic, which outranks domain
// conventions, which outrank machine defaults.
func defaultPriority(c Category) int {
	switch c {
	case CategoryUser:
		return 40
	case CategoryApplication:
		return 30
	case CategoryDomain:
		return 20
	default:
		return 10
	}
}

// Condition evaluates against a metric snapshot.
type Condition interface {
	Eval(s devctx.Snapshot) bool
}

// comparison is a leaf condition.
type comparison struct {
	op    string
	left  operand
	right operand
}

// operand is a metric name or a literal number.
type operand struct {
	metric  string
	literal float64
	isLit   bool
}

func (o operand) value(s devctx.Snapshot) float64 {
	if o.isLit {
		return o.literal
	}
	return s[o.metric]
}

func parseOperand(text string) operand {
	if f, err := strconv.ParseFloat(text, 64); err == nil {
		return operand{literal: f, isLit: true}
	}
	return operand{metric: text}
}

// Eval implements Condition.
func (c comparison) Eval(s devctx.Snapshot) bool {
	l, r := c.left.value(s), c.right.value(s)
	switch c.op {
	case "gt":
		return l > r
	case "ge":
		return l >= r
	case "lt":
		return l < r
	case "le":
		return l <= r
	case "eq":
		return l == r
	case "ne":
		return l != r
	default:
		return false
	}
}

// allOf / anyOf / notOf compose conditions.
type allOf []Condition

func (a allOf) Eval(s devctx.Snapshot) bool {
	for _, c := range a {
		if !c.Eval(s) {
			return false
		}
	}
	return true
}

type anyOf []Condition

func (a anyOf) Eval(s devctx.Snapshot) bool {
	for _, c := range a {
		if c.Eval(s) {
			return true
		}
	}
	return false
}

type notOf struct{ inner Condition }

func (n notOf) Eval(s devctx.Snapshot) bool { return !n.inner.Eval(s) }

// ActionSpec is one action invocation with its parameters.
type ActionSpec struct {
	Do     string
	Params map[string]string
}

// Param returns a parameter with a default.
func (a ActionSpec) Param(name, def string) string {
	if v, ok := a.Params[name]; ok {
		return v
	}
	return def
}

// IntParam returns an integer parameter with a default.
func (a ActionSpec) IntParam(name string, def int) int {
	if v, ok := a.Params[name]; ok {
		if n, err := strconv.Atoi(v); err == nil {
			return n
		}
	}
	return def
}

// BoolParam returns a boolean parameter with a default.
func (a ActionSpec) BoolParam(name string, def bool) bool {
	if v, ok := a.Params[name]; ok {
		if b, err := strconv.ParseBool(v); err == nil {
			return b
		}
	}
	return def
}

// Policy is one loaded declarative rule.
type Policy struct {
	Name     string
	Category Category
	Priority int
	Events   []event.Topic
	Cond     Condition // nil = always
	Actions  []ActionSpec

	fired  uint64
	errors uint64
}

// ActionFunc executes one action. The event that triggered the policy is
// passed for context.
type ActionFunc func(spec ActionSpec, ev event.Event) error

// Engine loads policies and mediates events to actions.
type Engine struct {
	bus      *event.Bus
	provider devctx.Provider

	mu               sync.Mutex
	policies         []*Policy
	actions          map[string]ActionFunc
	subs             []*event.Subscription
	subscribedTopics []event.Topic
	// errorSink receives action failures (default: counted silently).
	errorSink func(p *Policy, spec ActionSpec, err error)
	// logger emits structured records for action outcomes (nil logs nothing).
	logger *olog.Logger

	// obs instruments (nil until Instrument; nil vecs record nothing).
	evaluations    *obs.CounterVec
	firedC         *obs.CounterVec
	actionOutcomes *obs.CounterVec
}

// Instrument registers the engine's counters in r: condition evaluations and
// triggers per policy, and action outcomes per action.
func (e *Engine) Instrument(r *obs.Registry) {
	if r == nil {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.evaluations = r.CounterVec("objectswap_policy_evaluations_total",
		"Policy condition evaluations, per policy.", "policy")
	e.firedC = r.CounterVec("objectswap_policy_fired_total",
		"Policies whose condition held and whose actions ran, per policy.", "policy")
	e.actionOutcomes = r.CounterVec("objectswap_policy_action_outcomes_total",
		"Action executions by action name and outcome.", "action", "outcome")
}

// SetLogger installs the engine's structured logger: action failures log at
// warn, successful action runs at debug, and the "log" policy action writes
// through it.
func (e *Engine) SetLogger(lg *olog.Logger) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.logger = lg
}

// Logger returns the engine's structured logger, which may be nil.
func (e *Engine) Logger() *olog.Logger {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.logger
}

// NewEngine builds an engine over an event bus and a metric provider.
func NewEngine(bus *event.Bus, provider devctx.Provider) *Engine {
	return &Engine{
		bus:      bus,
		provider: provider,
		actions:  make(map[string]ActionFunc),
	}
}

// RegisterAction makes an action available to policies under name.
func (e *Engine) RegisterAction(name string, fn ActionFunc) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.actions[name] = fn
}

// OnActionError installs a sink for action failures.
func (e *Engine) OnActionError(fn func(p *Policy, spec ActionSpec, err error)) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.errorSink = fn
}

// Policies returns the loaded policies in evaluation order.
func (e *Engine) Policies() []*Policy {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]*Policy, len(e.policies))
	copy(out, e.policies)
	return out
}

// Fired reports how many times the named policy has triggered its actions.
func (e *Engine) Fired(name string) uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, p := range e.policies {
		if p.Name == name {
			return p.fired
		}
	}
	return 0
}

// Load parses an XML policy document, validates it against the registered
// actions, installs its policies and subscribes to their events.
func (e *Engine) Load(data []byte) error {
	policies, err := parseDocument(data)
	if err != nil {
		return err
	}
	e.mu.Lock()
	for _, p := range policies {
		for _, a := range p.Actions {
			if _, ok := e.actions[a.Do]; !ok {
				e.mu.Unlock()
				return fmt.Errorf("%w: %q (policy %q)", ErrUnknownAction, a.Do, p.Name)
			}
		}
	}
	e.policies = append(e.policies, policies...)
	sort.SliceStable(e.policies, func(i, j int) bool {
		return e.policies[i].Priority > e.policies[j].Priority
	})
	e.mu.Unlock()

	topics := make(map[event.Topic]bool)
	for _, p := range e.Policies() {
		for _, t := range p.Events {
			topics[t] = true
		}
	}
	ordered := make([]string, 0, len(topics))
	for t := range topics {
		ordered = append(ordered, string(t))
	}
	sort.Strings(ordered)
	for _, t := range ordered {
		e.subscribe(event.Topic(t))
	}
	return nil
}

// subscribe ensures exactly one bus subscription per topic.
func (e *Engine) subscribe(t event.Topic) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, topic := range e.subscribedTopics {
		if topic == t {
			return
		}
	}
	e.subscribedTopics = append(e.subscribedTopics, t)
	e.subs = append(e.subs, e.bus.Subscribe(t, e.handle))
}

// handle mediates one event to the matching policies.
func (e *Engine) handle(ev event.Event) {
	snapshot := e.provider.Snapshot()

	e.mu.Lock()
	matching := make([]*Policy, 0, len(e.policies))
	for _, p := range e.policies {
		for _, t := range p.Events {
			if t == ev.Topic {
				matching = append(matching, p)
				break
			}
		}
	}
	actions := e.actions
	sink := e.errorSink
	logger := e.logger
	evaluations, fired, outcomes := e.evaluations, e.firedC, e.actionOutcomes
	e.mu.Unlock()

	for _, p := range matching {
		evaluations.With(p.Name).Inc()
		if p.Cond != nil && !p.Cond.Eval(snapshot) {
			continue
		}
		e.mu.Lock()
		p.fired++
		e.mu.Unlock()
		fired.With(p.Name).Inc()
		for _, spec := range p.Actions {
			fn := actions[spec.Do]
			if err := fn(spec, ev); err != nil {
				e.mu.Lock()
				p.errors++
				e.mu.Unlock()
				outcomes.With(spec.Do, "error").Inc()
				logger.Warn("policy action failed", "policy", p.Name,
					"action", spec.Do, "event", ev.Topic, "err", err)
				if sink != nil {
					sink(p, spec, err)
				}
			} else {
				outcomes.With(spec.Do, "ok").Inc()
				logger.Debug("policy action ok", "policy", p.Name,
					"action", spec.Do, "event", ev.Topic)
			}
		}
	}
}

// Close cancels all event subscriptions.
func (e *Engine) Close() {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, s := range e.subs {
		s.Cancel()
	}
	e.subs = nil
	e.subscribedTopics = nil
}
