package policy

import (
	"encoding/xml"
	"fmt"

	"objectswap/internal/event"
)

// XML document-to-Policy parsing. The condition grammar nests, so the <when>
// subtree is parsed from raw tokens into Condition values.

type xmlPolicies struct {
	XMLName  xml.Name    `xml:"policies"`
	Policies []xmlPolicy `xml:"policy"`
}

type xmlPolicy struct {
	Name     string      `xml:"name,attr"`
	Category string      `xml:"category,attr"`
	Priority *int        `xml:"priority,attr"`
	On       []xmlOn     `xml:"on"`
	When     *xmlWhen    `xml:"when"`
	Actions  []xmlAction `xml:"action"`
}

type xmlOn struct {
	Event string `xml:"event,attr"`
}

type xmlWhen struct {
	Inner []xmlCond `xml:",any"`
}

type xmlCond struct {
	XMLName xml.Name
	Left    string    `xml:"left,attr"`
	Right   string    `xml:"right,attr"`
	Inner   []xmlCond `xml:",any"`
}

type xmlAction struct {
	Do    string     `xml:"do,attr"`
	Attrs []xml.Attr `xml:",any,attr"`
}

// parseDocument parses and validates a policy document.
func parseDocument(data []byte) ([]*Policy, error) {
	var doc xmlPolicies
	if err := xml.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadPolicy, err)
	}
	if len(doc.Policies) == 0 {
		return nil, fmt.Errorf("%w: no policies", ErrBadPolicy)
	}
	out := make([]*Policy, 0, len(doc.Policies))
	seen := make(map[string]bool)
	for _, xp := range doc.Policies {
		p, err := buildPolicy(xp)
		if err != nil {
			return nil, err
		}
		if seen[p.Name] {
			return nil, fmt.Errorf("%w: duplicate policy %q", ErrBadPolicy, p.Name)
		}
		seen[p.Name] = true
		out = append(out, p)
	}
	return out, nil
}

func buildPolicy(xp xmlPolicy) (*Policy, error) {
	if xp.Name == "" {
		return nil, fmt.Errorf("%w: policy without name", ErrBadPolicy)
	}
	cat := Category(xp.Category)
	switch cat {
	case CategoryUser, CategoryMachine, CategoryApplication, CategoryDomain:
	case "":
		cat = CategoryMachine
	default:
		return nil, fmt.Errorf("%w: policy %q: unknown category %q", ErrBadPolicy, xp.Name, xp.Category)
	}
	p := &Policy{
		Name:     xp.Name,
		Category: cat,
		Priority: defaultPriority(cat),
	}
	if xp.Priority != nil {
		p.Priority = *xp.Priority
	}
	if len(xp.On) == 0 {
		return nil, fmt.Errorf("%w: policy %q: no <on> events", ErrBadPolicy, xp.Name)
	}
	for _, on := range xp.On {
		if on.Event == "" {
			return nil, fmt.Errorf("%w: policy %q: <on> without event", ErrBadPolicy, xp.Name)
		}
		p.Events = append(p.Events, event.Topic(on.Event))
	}
	if xp.When != nil {
		if len(xp.When.Inner) != 1 {
			return nil, fmt.Errorf("%w: policy %q: <when> must hold exactly one condition", ErrBadPolicy, xp.Name)
		}
		cond, err := buildCondition(xp.When.Inner[0], xp.Name)
		if err != nil {
			return nil, err
		}
		p.Cond = cond
	}
	if len(xp.Actions) == 0 {
		return nil, fmt.Errorf("%w: policy %q: no actions", ErrBadPolicy, xp.Name)
	}
	for _, xa := range xp.Actions {
		if xa.Do == "" {
			return nil, fmt.Errorf("%w: policy %q: <action> without do", ErrBadPolicy, xp.Name)
		}
		spec := ActionSpec{Do: xa.Do, Params: make(map[string]string, len(xa.Attrs))}
		for _, attr := range xa.Attrs {
			if attr.Name.Local == "do" {
				continue
			}
			spec.Params[attr.Name.Local] = attr.Value
		}
		p.Actions = append(p.Actions, spec)
	}
	return p, nil
}

func buildCondition(xc xmlCond, policyName string) (Condition, error) {
	switch xc.XMLName.Local {
	case "gt", "ge", "lt", "le", "eq", "ne":
		if xc.Left == "" || xc.Right == "" {
			return nil, fmt.Errorf("%w: policy %q: <%s> needs left and right",
				ErrBadPolicy, policyName, xc.XMLName.Local)
		}
		return comparison{
			op:    xc.XMLName.Local,
			left:  parseOperand(xc.Left),
			right: parseOperand(xc.Right),
		}, nil
	case "all", "any":
		if len(xc.Inner) == 0 {
			return nil, fmt.Errorf("%w: policy %q: empty <%s>", ErrBadPolicy, policyName, xc.XMLName.Local)
		}
		var inner []Condition
		for _, child := range xc.Inner {
			c, err := buildCondition(child, policyName)
			if err != nil {
				return nil, err
			}
			inner = append(inner, c)
		}
		if xc.XMLName.Local == "all" {
			return allOf(inner), nil
		}
		return anyOf(inner), nil
	case "not":
		if len(xc.Inner) != 1 {
			return nil, fmt.Errorf("%w: policy %q: <not> needs exactly one child", ErrBadPolicy, policyName)
		}
		inner, err := buildCondition(xc.Inner[0], policyName)
		if err != nil {
			return nil, err
		}
		return notOf{inner: inner}, nil
	default:
		return nil, fmt.Errorf("%w: policy %q: unknown condition <%s>", ErrBadPolicy, policyName, xc.XMLName.Local)
	}
}
