package policy

import (
	"errors"
	"testing"

	"objectswap/internal/core"
	"objectswap/internal/devctx"
	"objectswap/internal/event"
	"objectswap/internal/heap"
	"objectswap/internal/replication"
	"objectswap/internal/store"
)

// staticProvider returns a fixed snapshot.
type staticProvider devctx.Snapshot

func (p staticProvider) Snapshot() devctx.Snapshot { return devctx.Snapshot(p) }

func TestLoadAndFire(t *testing.T) {
	bus := event.NewBus()
	provider := staticProvider{"heap.used.pct": 85}
	e := NewEngine(bus, provider)

	var fired []string
	e.RegisterAction("note", func(spec ActionSpec, ev event.Event) error {
		fired = append(fired, spec.Param("tag", "?"))
		return nil
	})

	doc := `<policies>
  <policy name="p1" category="machine">
    <on event="memory.threshold"/>
    <when><gt left="heap.used.pct" right="80"/></when>
    <action do="note" tag="pressure"/>
  </policy>
  <policy name="p2" category="machine">
    <on event="memory.threshold"/>
    <when><gt left="heap.used.pct" right="95"/></when>
    <action do="note" tag="critical"/>
  </policy>
</policies>`
	if err := e.Load([]byte(doc)); err != nil {
		t.Fatal(err)
	}
	bus.Emit(event.TopicMemoryThreshold, nil)
	if len(fired) != 1 || fired[0] != "pressure" {
		t.Fatalf("fired = %v", fired)
	}
	if e.Fired("p1") != 1 || e.Fired("p2") != 0 {
		t.Fatalf("counters: p1=%d p2=%d", e.Fired("p1"), e.Fired("p2"))
	}
	if e.Fired("ghost") != 0 {
		t.Fatal("unknown policy counter")
	}
	// Unrelated topics do nothing.
	bus.Emit(event.TopicMemoryRelief, nil)
	if len(fired) != 1 {
		t.Fatalf("fired on unrelated topic: %v", fired)
	}
	e.Close()
	bus.Emit(event.TopicMemoryThreshold, nil)
	if len(fired) != 1 {
		t.Fatal("fired after Close")
	}
}

func TestPriorityOrderAcrossCategories(t *testing.T) {
	bus := event.NewBus()
	e := NewEngine(bus, staticProvider{})
	var order []string
	e.RegisterAction("note", func(spec ActionSpec, _ event.Event) error {
		order = append(order, spec.Param("tag", "?"))
		return nil
	})
	doc := `<policies>
  <policy name="m" category="machine"><on event="t"/><action do="note" tag="machine"/></policy>
  <policy name="u" category="user"><on event="t"/><action do="note" tag="user"/></policy>
  <policy name="a" category="application"><on event="t"/><action do="note" tag="app"/></policy>
  <policy name="d" category="domain"><on event="t"/><action do="note" tag="domain"/></policy>
  <policy name="x" category="machine" priority="99"><on event="t"/><action do="note" tag="explicit"/></policy>
</policies>`
	if err := e.Load([]byte(doc)); err != nil {
		t.Fatal(err)
	}
	bus.Emit("t", nil)
	want := []string{"explicit", "user", "app", "domain", "machine"}
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestConditionGrammar(t *testing.T) {
	snapshot := devctx.Snapshot{"x": 10, "y": 5}
	cases := []struct {
		name string
		xml  string
		want bool
	}{
		{"gt true", `<gt left="x" right="y"/>`, true},
		{"gt false", `<gt left="y" right="x"/>`, false},
		{"ge equal", `<ge left="x" right="10"/>`, true},
		{"lt literal", `<lt left="y" right="7.5"/>`, true},
		{"le", `<le left="y" right="5"/>`, true},
		{"eq", `<eq left="x" right="10"/>`, true},
		{"ne", `<ne left="x" right="10"/>`, false},
		{"missing metric is zero", `<eq left="ghost" right="0"/>`, true},
		{"all", `<all><gt left="x" right="1"/><gt left="y" right="1"/></all>`, true},
		{"all short", `<all><gt left="x" right="1"/><gt left="y" right="100"/></all>`, false},
		{"any", `<any><gt left="y" right="100"/><gt left="x" right="1"/></any>`, true},
		{"any none", `<any><gt left="y" right="100"/><gt left="x" right="100"/></any>`, false},
		{"not", `<not><gt left="y" right="100"/></not>`, true},
		{"nested", `<all><not><eq left="x" right="0"/></not><any><eq left="y" right="5"/></any></all>`, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			doc := `<policies><policy name="p" category="user"><on event="t"/><when>` +
				tc.xml + `</when><action do="noop"/></policy></policies>`
			policies, err := parseDocument([]byte(doc))
			if err != nil {
				t.Fatal(err)
			}
			if got := policies[0].Cond.Eval(snapshot); got != tc.want {
				t.Fatalf("Eval = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestParseRejectsBadDocuments(t *testing.T) {
	cases := map[string]string{
		"not xml":         `}{`,
		"no policies":     `<policies></policies>`,
		"no name":         `<policies><policy category="user"><on event="t"/><action do="x"/></policy></policies>`,
		"bad category":    `<policies><policy name="p" category="wat"><on event="t"/><action do="x"/></policy></policies>`,
		"no events":       `<policies><policy name="p" category="user"><action do="x"/></policy></policies>`,
		"empty event":     `<policies><policy name="p" category="user"><on event=""/><action do="x"/></policy></policies>`,
		"no actions":      `<policies><policy name="p" category="user"><on event="t"/></policy></policies>`,
		"empty action":    `<policies><policy name="p" category="user"><on event="t"/><action/></policy></policies>`,
		"two conditions":  `<policies><policy name="p" category="user"><on event="t"/><when><gt left="a" right="b"/><gt left="a" right="b"/></when><action do="x"/></policy></policies>`,
		"bad condition":   `<policies><policy name="p" category="user"><on event="t"/><when><wat/></when><action do="x"/></policy></policies>`,
		"cmp no operands": `<policies><policy name="p" category="user"><on event="t"/><when><gt/></when><action do="x"/></policy></policies>`,
		"empty all":       `<policies><policy name="p" category="user"><on event="t"/><when><all/></when><action do="x"/></policy></policies>`,
		"not two kids":    `<policies><policy name="p" category="user"><on event="t"/><when><not><gt left="a" right="1"/><gt left="a" right="1"/></not></when><action do="x"/></policy></policies>`,
		"duplicate name":  `<policies><policy name="p" category="user"><on event="t"/><action do="x"/></policy><policy name="p" category="user"><on event="t"/><action do="x"/></policy></policies>`,
	}
	for name, doc := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := parseDocument([]byte(doc)); !errors.Is(err, ErrBadPolicy) {
				t.Fatalf("accepted %s: %v", name, err)
			}
		})
	}
}

func TestLoadRejectsUnknownAction(t *testing.T) {
	e := NewEngine(event.NewBus(), staticProvider{})
	doc := `<policies><policy name="p" category="user"><on event="t"/><action do="mystery"/></policy></policies>`
	if err := e.Load([]byte(doc)); !errors.Is(err, ErrUnknownAction) {
		t.Fatalf("Load: %v", err)
	}
}

func TestActionErrorsCountedAndSunk(t *testing.T) {
	bus := event.NewBus()
	e := NewEngine(bus, staticProvider{})
	boom := errors.New("boom")
	e.RegisterAction("explode", func(ActionSpec, event.Event) error { return boom })
	var sunk error
	e.OnActionError(func(p *Policy, spec ActionSpec, err error) { sunk = err })
	doc := `<policies><policy name="p" category="user"><on event="t"/><action do="explode"/></policy></policies>`
	if err := e.Load([]byte(doc)); err != nil {
		t.Fatal(err)
	}
	bus.Emit("t", nil)
	if !errors.Is(sunk, boom) {
		t.Fatalf("sunk = %v", sunk)
	}
	if e.Policies()[0].errors != 1 {
		t.Fatalf("error count = %d", e.Policies()[0].errors)
	}
}

func TestActionParamHelpers(t *testing.T) {
	spec := ActionSpec{Do: "x", Params: map[string]string{
		"s": "hello", "n": "42", "b": "true", "badn": "zz", "badb": "zz",
	}}
	if spec.Param("s", "d") != "hello" || spec.Param("missing", "d") != "d" {
		t.Error("Param")
	}
	if spec.IntParam("n", 0) != 42 || spec.IntParam("badn", 7) != 7 || spec.IntParam("missing", 7) != 7 {
		t.Error("IntParam")
	}
	if !spec.BoolParam("b", false) || spec.BoolParam("badb", true) != true || spec.BoolParam("missing", true) != true {
		t.Error("BoolParam")
	}
}

func TestMultipleEventsPerPolicy(t *testing.T) {
	bus := event.NewBus()
	e := NewEngine(bus, staticProvider{})
	count := 0
	e.RegisterAction("note", func(ActionSpec, event.Event) error { count++; return nil })
	doc := `<policies><policy name="p" category="user">
	  <on event="a"/><on event="b"/>
	  <action do="note"/>
	</policy></policies>`
	if err := e.Load([]byte(doc)); err != nil {
		t.Fatal(err)
	}
	bus.Emit("a", nil)
	bus.Emit("b", nil)
	if count != 2 {
		t.Fatalf("count = %d", count)
	}
}

func TestBindReplicationActions(t *testing.T) {
	bus := event.NewBus()
	e := NewEngine(bus, staticProvider{})
	// A minimal replicator over an in-process master.
	reg := heapRegistryWithNode(t)
	master := replication.NewMaster(reg, 10)
	devices := storeRegistry(t)
	rt := core.NewRuntime(heap.New(0), heap.NewRegistry(), core.WithStores(devices))
	rt.MustRegisterClass(nodeClassForPolicy())
	r := replication.Attach(rt, master, replication.WithGroupSize(4))
	BindReplicationActions(e, r)

	doc := `<policies>
  <policy name="degrade" category="machine">
    <on event="link.down"/>
    <action do="set-group-size" n="1"/>
  </policy>
  <policy name="bad" category="machine">
    <on event="link.up"/>
    <action do="set-group-size"/>
  </policy>
</policies>`
	if err := e.Load([]byte(doc)); err != nil {
		t.Fatal(err)
	}
	bus.Emit(event.TopicLinkDown, "neighbor")
	if r.GroupSize() != 1 {
		t.Fatalf("group size after policy = %d", r.GroupSize())
	}
	// Missing n errors (counted, not fatal).
	var sunk error
	e.OnActionError(func(_ *Policy, _ ActionSpec, err error) { sunk = err })
	bus.Emit(event.TopicLinkUp, "neighbor")
	if sunk == nil {
		t.Fatal("invalid set-group-size silently accepted")
	}
}

// Helpers for the replication binding test.
func heapRegistryWithNode(t *testing.T) *heap.Registry {
	t.Helper()
	reg := heap.NewRegistry()
	reg.MustRegister(nodeClassForPolicy())
	return reg
}

func nodeClassForPolicy() *heap.Class {
	return heap.NewClass("PolicyNode",
		heap.FieldDef{Name: "next", Kind: heap.KindRef},
	)
}

func storeRegistry(t *testing.T) *store.Registry {
	t.Helper()
	devices := store.NewRegistry(store.SelectMostFree)
	if err := devices.Add("neighbor", store.NewMem(0)); err != nil {
		t.Fatal(err)
	}
	return devices
}
