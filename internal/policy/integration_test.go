package policy

import (
	"context"
	"fmt"
	"testing"

	"objectswap/internal/core"
	"objectswap/internal/devctx"
	"objectswap/internal/event"
	"objectswap/internal/heap"
	"objectswap/internal/store"
)

// TestPressureTriggersSwapViaPolicy wires the full middleware loop of the
// paper's prototypical scenario: the memory monitor detects pressure, the
// policy engine evaluates the loaded policy, and the swap-out action frees
// memory to a nearby device.
func TestPressureTriggersSwapViaPolicy(t *testing.T) {
	node := heap.NewClass("Node",
		heap.FieldDef{Name: "payload", Kind: heap.KindBytes},
		heap.FieldDef{Name: "next", Kind: heap.KindRef},
	)
	node.AddMethod("next", func(call *heap.Call) ([]heap.Value, error) {
		v, _ := call.Self.FieldByName("next")
		return []heap.Value{v}, nil
	})

	h := heap.New(8192)
	bus := event.NewBus()
	devices := store.NewRegistry(store.SelectMostFree)
	mem := store.NewMem(0)
	_ = devices.Add("neighbor", mem)

	rt := core.NewRuntime(h, heap.NewRegistry(), core.WithStores(devices), core.WithBus(bus))
	rt.MustRegisterClass(node)

	ctx := devctx.NewContext(h, nil)
	engine := NewEngine(bus, ctx)
	BindSwapActions(engine, rt)
	if err := engine.Load([]byte(DefaultSwapPolicy)); err != nil {
		t.Fatal(err)
	}
	monitor := devctx.NewMemoryMonitor(h, bus, 0.7)

	// Fill clusters until the monitor trips; check after every allocation as
	// a real allocator-integrated monitor would.
	var clusters []core.ClusterID
	built := 0
	for c := 0; c < 6; c++ {
		cl := rt.Manager().NewCluster()
		clusters = append(clusters, cl)
		for i := 0; i < 8; i++ {
			o, err := rt.NewObject(node, cl)
			if err != nil {
				t.Fatalf("cluster %d obj %d: %v", c, i, err)
			}
			o.MustSet("payload", heap.Bytes(make([]byte, 64)))
			if err := rt.SetRoot(fmt.Sprintf("n-%d-%d", c, i), o.RefTo()); err != nil {
				t.Fatal(err)
			}
			built++
			monitor.Check()
		}
	}

	if engine.Fired("swap-on-pressure") == 0 {
		t.Fatal("policy never fired under pressure")
	}
	swapped := 0
	for _, cl := range clusters {
		if rt.Manager().IsSwapped(cl) {
			swapped++
		}
	}
	if swapped == 0 {
		t.Fatal("no cluster swapped out by policy")
	}
	keys, _ := mem.Keys(context.Background())
	if len(keys) != swapped {
		t.Fatalf("device holds %d shipments, %d clusters swapped", len(keys), swapped)
	}
	// The graph remains fully usable.
	for c := 0; c < 6; c++ {
		for i := 0; i < 8; i++ {
			v, ok := rt.Root(fmt.Sprintf("n-%d-%d", c, i))
			if !ok {
				t.Fatalf("missing root n-%d-%d", c, i)
			}
			if _, err := rt.Invoke(v, "next"); err != nil {
				t.Fatalf("touch n-%d-%d: %v", c, i, err)
			}
		}
	}
}
