// Package baseline implements the comparator systems the paper evaluates
// Object-Swapping against, quantitatively reproducing its Section 5 and
// Section 6 arguments:
//
//   - PerObject — the "naive" design with one proxy per object and every
//     reference mediated (also the shape of surrogate-based offloading à la
//     Messer et al. ICDCS'02): roughly doubles the memory of small objects,
//     pays an indirection on every invocation, and leaves all proxies
//     resident even when every object has been offloaded;
//   - Compressor — in-heap compression of large objects (à la Chen et al.
//     OOPSLA'03): saves memory without a network, at a CPU price on every
//     compression/decompression.
package baseline

import (
	"context"
	"errors"
	"fmt"

	"objectswap/internal/heap"
	"objectswap/internal/store"
	"objectswap/internal/xmlcodec"
)

// Per-object proxy class fields.
const (
	fldTarget = "$target" // ref to the resident object, nil while offloaded
	fldObj    = "$obj"    // the object's stable identity
)

// perObjectProxyClass is the surrogate class: one instance per application
// object, permanently mediating every reference.
func perObjectProxyClass() *heap.Class {
	c := heap.NewClass("$PerObjectProxy",
		heap.FieldDef{Name: fldTarget, Kind: heap.KindRef},
		heap.FieldDef{Name: fldObj, Kind: heap.KindInt},
	)
	c.Special = heap.SpecialSurrogate
	return c
}

// PerObject is the naive swapping runtime: every application object is
// wrapped by a surrogate proxy and all references (fields, roots, method
// operands) designate surrogates, never objects.
type PerObject struct {
	h     *heap.Heap
	reg   *heap.Registry
	dev   store.Store
	cls   *heap.Class
	proxy map[heap.ObjID]heap.ObjID // object -> surrogate
	obj   map[heap.ObjID]heap.ObjID // surrogate -> object
	class map[heap.ObjID]string     // object -> class name (survives offload)

	offloaded map[heap.ObjID]string // object -> storage key
	faults    int
	keyseq    uint64
}

var _ heap.Invoker = (*PerObject)(nil)

// NewPerObject builds the naive runtime over a heap, class registry and one
// swapping device.
func NewPerObject(h *heap.Heap, reg *heap.Registry, dev store.Store) *PerObject {
	return &PerObject{
		h:         h,
		reg:       reg,
		dev:       dev,
		cls:       perObjectProxyClass(),
		proxy:     make(map[heap.ObjID]heap.ObjID),
		obj:       make(map[heap.ObjID]heap.ObjID),
		class:     make(map[heap.ObjID]string),
		offloaded: make(map[heap.ObjID]string),
	}
}

// Heap implements heap.Invoker.
func (p *PerObject) Heap() *heap.Heap { return p.h }

// Faults reports how many per-object reload faults have been taken.
func (p *PerObject) Faults() int { return p.faults }

// ProxyCount reports the number of resident surrogates.
func (p *PerObject) ProxyCount() int { return len(p.obj) }

// NewObject allocates an application object plus its permanent surrogate and
// returns a reference to the surrogate (the only reference form application
// code ever sees).
func (p *PerObject) NewObject(c *heap.Class) (heap.Value, error) {
	o, err := p.h.New(c)
	if err != nil {
		return heap.Nil(), err
	}
	pr, err := p.h.NewPrivileged(p.cls)
	if err != nil {
		return heap.Nil(), err
	}
	if err := pr.SetFieldByName(fldTarget, o.RefTo()); err != nil {
		return heap.Nil(), err
	}
	if err := pr.SetFieldByName(fldObj, heap.Int(int64(o.ID()))); err != nil {
		return heap.Nil(), err
	}
	p.proxy[o.ID()] = pr.ID()
	p.obj[pr.ID()] = o.ID()
	p.class[o.ID()] = c.Name
	// The surrogate is the object's only anchor: pin it so application-held
	// references (Go-side) stay valid; the object itself is reachable
	// through the surrogate.
	p.h.Pin(pr.ID())
	return pr.RefTo(), nil
}

// resolve returns the resident object behind a surrogate reference, faulting
// it back in from the device if offloaded.
func (p *PerObject) resolve(v heap.Value) (*heap.Object, error) {
	pid, err := v.Ref()
	if err != nil {
		return nil, err
	}
	if pid == heap.NilID {
		return nil, heap.ErrNilTarget
	}
	oid, ok := p.obj[pid]
	if !ok {
		return nil, fmt.Errorf("baseline: @%d is not a surrogate", pid)
	}
	if key, away := p.offloaded[oid]; away {
		if err := p.reload(oid, key); err != nil {
			return nil, err
		}
	}
	return p.h.Get(oid)
}

// Invoke implements heap.Invoker: every invocation pays the surrogate hop.
func (p *PerObject) Invoke(target heap.Value, method string, args ...heap.Value) ([]heap.Value, error) {
	o, err := p.resolve(target)
	if err != nil {
		return nil, err
	}
	return o.Class().Invoke(method, &heap.Call{RT: p, Self: o, Args: args})
}

// Field implements heap.Invoker.
func (p *PerObject) Field(target heap.Value, name string) (heap.Value, error) {
	o, err := p.resolve(target)
	if err != nil {
		return heap.Nil(), err
	}
	return o.FieldByName(name)
}

// SetFieldValue implements heap.Invoker. Values must already be surrogate
// references (the only form application code holds).
func (p *PerObject) SetFieldValue(target heap.Value, name string, v heap.Value) error {
	o, err := p.resolve(target)
	if err != nil {
		return err
	}
	return o.SetFieldByName(name, v)
}

// Offload ships one object to the device and removes it from the heap. Its
// surrogate remains resident — the naive design's fixed cost.
func (p *PerObject) Offload(target heap.Value) error {
	pid, err := target.Ref()
	if err != nil {
		return err
	}
	oid, ok := p.obj[pid]
	if !ok {
		return fmt.Errorf("baseline: @%d is not a surrogate", pid)
	}
	if _, away := p.offloaded[oid]; away {
		return nil
	}
	o, err := p.h.Get(oid)
	if err != nil {
		return err
	}

	// References in fields designate surrogates, which stay resident: ship
	// them as remote references naming the surrogate.
	encodeRef := func(rid heap.ObjID) (xmlcodec.Value, error) {
		if _, isSurrogate := p.obj[rid]; !isSurrogate {
			return xmlcodec.Value{}, fmt.Errorf("baseline: field holds non-surrogate reference @%d", rid)
		}
		return xmlcodec.RemoteRef(rid), nil
	}
	p.keyseq++
	key := fmt.Sprintf("obj-%d-gen%d", oid, p.keyseq)
	doc, err := xmlcodec.EncodeObjects(key, []*heap.Object{o}, encodeRef)
	if err != nil {
		return err
	}
	data, err := doc.Encode()
	if err != nil {
		return err
	}
	if err := p.dev.Put(context.Background(), key, data); err != nil {
		return err
	}

	pr, err := p.h.Get(pid)
	if err != nil {
		return err
	}
	if err := pr.SetFieldByName(fldTarget, heap.Nil()); err != nil {
		return err
	}
	if err := p.h.Remove(oid); err != nil {
		return err
	}
	p.offloaded[oid] = key
	return nil
}

// OffloadAll ships every resident object, leaving only surrogates behind.
func (p *PerObject) OffloadAll() (int, error) {
	n := 0
	for oid, pid := range p.proxy {
		if _, away := p.offloaded[oid]; away {
			continue
		}
		if err := p.Offload(heap.Ref(pid)); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}

// reload faults one object back from the device.
func (p *PerObject) reload(oid heap.ObjID, key string) error {
	p.faults++
	data, err := p.dev.Get(context.Background(), key)
	if err != nil {
		return fmt.Errorf("baseline: reload @%d: %w", oid, err)
	}
	doc, err := xmlcodec.Decode(data)
	if err != nil {
		return err
	}
	decodeRef := func(v xmlcodec.Value) (heap.Value, error) {
		if v.RefClass != xmlcodec.RefRemote {
			return heap.Nil(), errors.New("baseline: unexpected reference class")
		}
		return heap.Ref(v.Target), nil // surrogates kept their identities
	}
	if _, err := doc.Install(p.h, p.reg, decodeRef); err != nil {
		return err
	}
	pid := p.proxy[oid]
	pr, err := p.h.Get(pid)
	if err != nil {
		return err
	}
	if err := pr.SetFieldByName(fldTarget, heap.Ref(oid)); err != nil {
		return err
	}
	delete(p.offloaded, oid)
	if err := p.dev.Drop(context.Background(), key); err != nil && !errors.Is(err, store.ErrNotFound) {
		return err
	}
	return nil
}

// MemoryStats summarizes the naive design's footprint.
type MemoryStats struct {
	Objects        int
	Surrogates     int
	ObjectBytes    int64
	SurrogateBytes int64
	Offloaded      int
}

// Overhead returns the surrogate bytes as a fraction of object bytes.
func (s MemoryStats) Overhead() float64 {
	if s.ObjectBytes == 0 {
		return 0
	}
	return float64(s.SurrogateBytes) / float64(s.ObjectBytes)
}

// MemoryStatsSnapshot computes the current footprint split.
func (p *PerObject) MemoryStatsSnapshot() MemoryStats {
	var st MemoryStats
	st.Offloaded = len(p.offloaded)
	for oid, pid := range p.proxy {
		if pr, err := p.h.Get(pid); err == nil {
			st.Surrogates++
			st.SurrogateBytes += pr.Size()
		}
		if o, err := p.h.Get(oid); err == nil {
			st.Objects++
			st.ObjectBytes += o.Size()
		}
	}
	return st
}
