package baseline

import (
	"bytes"
	"compress/flate"
	"fmt"
	"io"
	"time"

	"objectswap/internal/heap"
)

// Compressor implements the heap-compression comparator (Chen et al.,
// OOPSLA'03): objects whose byte payloads exceed a threshold are compressed
// in place and lazily decompressed on first access. Memory is saved without
// any network or nearby device — at a CPU (and, on a mobile device, energy)
// cost on every boundary, which is the trade-off the paper argues against.
type Compressor struct {
	h         *heap.Heap
	threshold int
	level     int

	// compressed tracks which (object, field) slots currently hold
	// compressed payloads and their original sizes.
	compressed map[slotKey]int

	stats CompressStats
}

type slotKey struct {
	obj   heap.ObjID
	field int
}

// CompressStats aggregates the compressor's activity and cost.
type CompressStats struct {
	Compressed    int   // payloads currently compressed
	BytesBefore   int64 // original payload bytes of everything compressed so far
	BytesAfter    int64 // compressed payload bytes
	Decompressed  int
	CompressCPU   time.Duration
	DecompressCPU time.Duration
}

// Saved returns the net bytes saved by the payloads currently compressed.
func (s CompressStats) Saved() int64 { return s.BytesBefore - s.BytesAfter }

// NewCompressor builds a compressor over a heap. Payloads of at least
// threshold bytes are eligible (Chen et al. used 1.5 KB; the default here is
// 1024). level is a flate level (flate.DefaultCompression when 0).
func NewCompressor(h *heap.Heap, threshold, level int) *Compressor {
	if threshold <= 0 {
		threshold = 1024
	}
	if level == 0 {
		level = flate.DefaultCompression
	}
	return &Compressor{
		h:          h,
		threshold:  threshold,
		level:      level,
		compressed: make(map[slotKey]int),
	}
}

// StatsSnapshot returns a copy of the counters.
func (c *Compressor) StatsSnapshot() CompressStats { return c.stats }

// Sweep compresses every eligible byte payload in the heap, returning the
// stats after the pass. Already-compressed slots are skipped.
func (c *Compressor) Sweep() (CompressStats, error) {
	for _, oid := range c.h.IDs() {
		o, err := c.h.Get(oid)
		if err != nil {
			continue
		}
		if o.Class().Special != heap.SpecialNone {
			continue
		}
		for i := 0; i < o.NumFields(); i++ {
			key := slotKey{obj: oid, field: i}
			if _, done := c.compressed[key]; done {
				continue
			}
			v := o.Field(i)
			if v.Kind() != heap.KindBytes || v.BytesLen() < c.threshold {
				continue
			}
			raw, err := v.Bytes()
			if err != nil {
				continue
			}
			start := time.Now()
			packed, err := deflate(raw, c.level)
			c.stats.CompressCPU += time.Since(start)
			if err != nil {
				return c.stats, fmt.Errorf("baseline: compress @%d: %w", oid, err)
			}
			if len(packed) >= len(raw) {
				continue // incompressible; keep raw
			}
			if err := o.SetField(i, heap.Bytes(packed)); err != nil {
				return c.stats, err
			}
			c.compressed[key] = len(raw)
			c.stats.Compressed++
			c.stats.BytesBefore += int64(len(raw))
			c.stats.BytesAfter += int64(len(packed))
		}
	}
	return c.stats, nil
}

// Access materializes the named field of an object, decompressing it if
// needed, and returns the raw payload. It models an application read hitting
// a compressed object.
func (c *Compressor) Access(oid heap.ObjID, field string) ([]byte, error) {
	o, err := c.h.Get(oid)
	if err != nil {
		return nil, err
	}
	idx, ok := o.Class().FieldIndex(field)
	if !ok {
		return nil, fmt.Errorf("%w: %s.%s", heap.ErrNoSuchField, o.Class().Name, field)
	}
	v := o.Field(idx)
	raw, err := v.Bytes()
	if err != nil {
		return nil, err
	}
	key := slotKey{obj: oid, field: idx}
	origSize, packed := c.compressed[key]
	if !packed {
		return raw, nil
	}
	start := time.Now()
	plain, err := inflate(raw, origSize)
	c.stats.DecompressCPU += time.Since(start)
	if err != nil {
		return nil, fmt.Errorf("baseline: decompress @%d: %w", oid, err)
	}
	if err := o.SetField(idx, heap.Bytes(plain)); err != nil {
		return nil, err
	}
	delete(c.compressed, key)
	c.stats.Compressed--
	c.stats.BytesBefore -= int64(origSize)
	c.stats.BytesAfter -= int64(len(raw))
	c.stats.Decompressed++
	return plain, nil
}

// CompressedCount reports how many payloads are currently compressed.
func (c *Compressor) CompressedCount() int { return len(c.compressed) }

// Deflate compresses raw at the given flate level. Exported for the wire
// layer, which reuses the same compressor for compressed shipment bodies.
func Deflate(raw []byte, level int) ([]byte, error) { return deflate(raw, level) }

// Inflate decompresses a Deflate payload; sizeHint pre-sizes the output
// buffer (pass the known raw length to avoid growth copies).
func Inflate(packed []byte, sizeHint int) ([]byte, error) { return inflate(packed, sizeHint) }

func deflate(raw []byte, level int) ([]byte, error) {
	var buf bytes.Buffer
	w, err := flate.NewWriter(&buf, level)
	if err != nil {
		return nil, err
	}
	if _, err := w.Write(raw); err != nil {
		return nil, err
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func inflate(packed []byte, sizeHint int) ([]byte, error) {
	r := flate.NewReader(bytes.NewReader(packed))
	defer r.Close()
	out := bytes.NewBuffer(make([]byte, 0, sizeHint))
	if _, err := io.Copy(out, r); err != nil {
		return nil, err
	}
	return out.Bytes(), nil
}
