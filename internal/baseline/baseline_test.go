package baseline

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"objectswap/internal/heap"
	"objectswap/internal/store"
)

func nodeClass() *heap.Class {
	c := heap.NewClass("Node",
		heap.FieldDef{Name: "payload", Kind: heap.KindBytes},
		heap.FieldDef{Name: "next", Kind: heap.KindRef},
		heap.FieldDef{Name: "tag", Kind: heap.KindInt},
	)
	c.AddMethod("tag", func(call *heap.Call) ([]heap.Value, error) {
		v, _ := call.Self.FieldByName("tag")
		return []heap.Value{v}, nil
	})
	c.AddMethod("walk", func(call *heap.Call) ([]heap.Value, error) {
		depth, _ := call.Arg(0).Int()
		next, _ := call.Self.FieldByName("next")
		if next.IsNil() {
			return []heap.Value{heap.Int(depth)}, nil
		}
		return call.RT.Invoke(next, "walk", heap.Int(depth+1))
	})
	return c
}

// buildNaiveList creates an n-node list under the naive per-object runtime.
func buildNaiveList(t testing.TB, p *PerObject, cls *heap.Class, n, payload int) []heap.Value {
	t.Helper()
	refs := make([]heap.Value, n)
	for i := range refs {
		v, err := p.NewObject(cls)
		if err != nil {
			t.Fatal(err)
		}
		refs[i] = v
		if err := p.SetFieldValue(v, "tag", heap.Int(int64(i))); err != nil {
			t.Fatal(err)
		}
		if err := p.SetFieldValue(v, "payload", heap.Bytes(make([]byte, payload))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n-1; i++ {
		if err := p.SetFieldValue(refs[i], "next", refs[i+1]); err != nil {
			t.Fatal(err)
		}
	}
	return refs
}

func TestPerObjectInvocationThroughSurrogates(t *testing.T) {
	h := heap.New(0)
	reg := heap.NewRegistry()
	cls := nodeClass()
	reg.MustRegister(cls)
	p := NewPerObject(h, reg, store.NewMem(0))
	refs := buildNaiveList(t, p, cls, 20, 8)

	out, err := p.Invoke(refs[0], "walk", heap.Int(1))
	if err != nil {
		t.Fatal(err)
	}
	if out[0].MustInt() != 20 {
		t.Fatalf("walk = %v", out[0])
	}
	if p.ProxyCount() != 20 {
		t.Fatalf("surrogates = %d", p.ProxyCount())
	}
}

func TestPerObjectMemoryOverheadIsNearDouble(t *testing.T) {
	// The paper: "Common application objects are small. So, this could
	// potentially double memory occupation when fully-loaded."
	h := heap.New(0)
	reg := heap.NewRegistry()
	cls := nodeClass()
	reg.MustRegister(cls)
	p := NewPerObject(h, reg, store.NewMem(0))
	buildNaiveList(t, p, cls, 100, 0) // tiny objects: worst case

	st := p.MemoryStatsSnapshot()
	if st.Objects != 100 || st.Surrogates != 100 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Overhead() < 0.5 {
		t.Fatalf("surrogate overhead = %.2f, expected near-doubling for small objects", st.Overhead())
	}
}

func TestPerObjectOffloadAndFaultBack(t *testing.T) {
	h := heap.New(0)
	reg := heap.NewRegistry()
	cls := nodeClass()
	reg.MustRegister(cls)
	dev := store.NewMem(0)
	p := NewPerObject(h, reg, dev)
	refs := buildNaiveList(t, p, cls, 10, 32)

	before := h.Used()
	n, err := p.OffloadAll()
	if err != nil {
		t.Fatal(err)
	}
	if n != 10 {
		t.Fatalf("offloaded %d", n)
	}
	// Surrogates remain: memory does not drop to zero (the naive design's
	// fixed cost the paper criticizes).
	st := p.MemoryStatsSnapshot()
	if st.Objects != 0 || st.Surrogates != 10 {
		t.Fatalf("after offload: %+v", st)
	}
	if h.Used() >= before || h.Used() == 0 {
		t.Fatalf("used %d (before %d): surrogates should remain", h.Used(), before)
	}
	keys, _ := dev.Keys(context.Background())
	if len(keys) != 10 {
		t.Fatalf("device holds %d shipments, want 10 (one per object)", len(keys))
	}

	// Walking the list faults every object back individually.
	out, err := p.Invoke(refs[0], "walk", heap.Int(1))
	if err != nil {
		t.Fatal(err)
	}
	if out[0].MustInt() != 10 {
		t.Fatalf("walk after offload = %v", out[0])
	}
	if p.Faults() != 10 {
		t.Fatalf("faults = %d, want 10 (one per object)", p.Faults())
	}
	// Tags intact after reload.
	tag, err := p.Invoke(refs[7], "tag")
	if err != nil || tag[0].MustInt() != 7 {
		t.Fatalf("tag = %v, %v", tag, err)
	}
}

func TestPerObjectDoubleOffloadIsNoop(t *testing.T) {
	h := heap.New(0)
	reg := heap.NewRegistry()
	cls := nodeClass()
	reg.MustRegister(cls)
	p := NewPerObject(h, reg, store.NewMem(0))
	refs := buildNaiveList(t, p, cls, 2, 8)
	if err := p.Offload(refs[0]); err != nil {
		t.Fatal(err)
	}
	if err := p.Offload(refs[0]); err != nil {
		t.Fatal(err)
	}
	st := p.MemoryStatsSnapshot()
	if st.Offloaded != 1 {
		t.Fatalf("offloaded = %d", st.Offloaded)
	}
}

func TestPerObjectErrors(t *testing.T) {
	h := heap.New(0)
	reg := heap.NewRegistry()
	cls := nodeClass()
	reg.MustRegister(cls)
	p := NewPerObject(h, reg, store.NewMem(0))
	if _, err := p.Invoke(heap.Nil(), "tag"); !errors.Is(err, heap.ErrNilTarget) {
		t.Errorf("nil target: %v", err)
	}
	// A direct object reference is rejected: the naive design mediates all.
	o, _ := h.New(cls)
	if _, err := p.Invoke(o.RefTo(), "tag"); err == nil {
		t.Error("direct object reference accepted")
	}
	if err := p.Offload(o.RefTo()); err == nil {
		t.Error("offload of non-surrogate accepted")
	}
	v, _ := p.NewObject(cls)
	if _, err := p.Invoke(v, "ghost"); !errors.Is(err, heap.ErrNoSuchMethod) {
		t.Errorf("missing method: %v", err)
	}
	if _, err := p.Field(v, "tag"); err != nil {
		t.Errorf("Field: %v", err)
	}
}

func TestCompressorSweepAndAccess(t *testing.T) {
	h := heap.New(0)
	cls := nodeClass()
	// Compressible payload: repetitive bytes.
	o, _ := h.New(cls)
	big := make([]byte, 4096)
	for i := range big {
		big[i] = byte(i % 7)
	}
	o.MustSet("payload", heap.Bytes(big))
	small, _ := h.New(cls)
	small.MustSet("payload", heap.Bytes(make([]byte, 16)))

	before := h.Used()
	c := NewCompressor(h, 1024, 0)
	st, err := c.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	if st.Compressed != 1 {
		t.Fatalf("compressed = %d, want 1 (threshold skips small)", st.Compressed)
	}
	if st.Saved() <= 0 {
		t.Fatalf("saved = %d", st.Saved())
	}
	if h.Used() >= before {
		t.Fatalf("heap grew after compression: %d -> %d", before, h.Used())
	}
	if c.CompressedCount() != 1 {
		t.Fatalf("count = %d", c.CompressedCount())
	}

	// Second sweep is a no-op.
	st2, _ := c.Sweep()
	if st2.Compressed != 1 {
		t.Fatalf("re-sweep compressed more: %+v", st2)
	}

	// Access decompresses exactly the original payload.
	plain, err := c.Access(o.ID(), "payload")
	if err != nil {
		t.Fatal(err)
	}
	if len(plain) != len(big) {
		t.Fatalf("decompressed %d bytes, want %d", len(plain), len(big))
	}
	for i := range plain {
		if plain[i] != big[i] {
			t.Fatalf("payload corrupted at %d", i)
		}
	}
	if c.CompressedCount() != 0 {
		t.Fatal("slot still marked compressed after access")
	}
	if c.StatsSnapshot().Decompressed != 1 {
		t.Fatalf("stats = %+v", c.StatsSnapshot())
	}
	// Accessing an uncompressed slot is a plain read.
	if _, err := c.Access(small.ID(), "payload"); err != nil {
		t.Fatal(err)
	}
	// Errors.
	if _, err := c.Access(999999, "payload"); !errors.Is(err, heap.ErrNoSuchObject) {
		t.Errorf("missing object: %v", err)
	}
	if _, err := c.Access(o.ID(), "ghost"); !errors.Is(err, heap.ErrNoSuchField) {
		t.Errorf("missing field: %v", err)
	}
}

func TestCompressorSkipsIncompressible(t *testing.T) {
	h := heap.New(0)
	cls := nodeClass()
	o, _ := h.New(cls)
	noise := make([]byte, 4096)
	r := rand.New(rand.NewSource(42))
	r.Read(noise)
	o.MustSet("payload", heap.Bytes(noise))
	c := NewCompressor(h, 1024, 0)
	st, err := c.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	if st.Compressed != 0 {
		t.Fatalf("random noise compressed: %+v", st)
	}
	// The payload is untouched.
	v, _ := o.FieldByName("payload")
	if v.BytesLen() != 4096 {
		t.Fatalf("payload resized to %d", v.BytesLen())
	}
}

func TestCompressorRoundTripProperty(t *testing.T) {
	h := heap.New(0)
	cls := nodeClass()
	c := NewCompressor(h, 64, 0)
	r := rand.New(rand.NewSource(7))
	var objs []*heap.Object
	var want [][]byte
	for i := 0; i < 20; i++ {
		o, _ := h.New(cls)
		payload := make([]byte, 64+r.Intn(2048))
		// Mixed compressibility.
		if i%2 == 0 {
			for j := range payload {
				payload[j] = byte(j % 5)
			}
		} else {
			r.Read(payload)
		}
		o.MustSet("payload", heap.Bytes(payload))
		objs = append(objs, o)
		want = append(want, payload)
	}
	if _, err := c.Sweep(); err != nil {
		t.Fatal(err)
	}
	for i, o := range objs {
		got, err := c.Access(o.ID(), "payload")
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want[i]) {
			t.Fatalf("obj %d: %d bytes, want %d", i, len(got), len(want[i]))
		}
		for j := range got {
			if got[j] != want[i][j] {
				t.Fatalf("obj %d corrupted at byte %d", i, j)
			}
		}
	}
}
