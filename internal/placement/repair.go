package placement

import (
	"context"
	"errors"
	"sync"

	"objectswap/internal/event"
	"objectswap/internal/obs"
	olog "objectswap/internal/obs/log"
)

// ErrSkip is returned by a RepairTarget for a cluster it cannot (or need
// not) repair right now — mid-swap on another goroutine, reloaded since the
// sweep, or already back at full strength. The sweep moves on without
// counting a failure.
var ErrSkip = errors.New("placement: repair skipped")

// RepairTarget is the slice of the swapping runtime the repair loop drives.
// The objectswap facade adapts core.Runtime to it.
type RepairTarget interface {
	// UnderReplicated lists swapped clusters with fewer than k live
	// replicas, in id order.
	UnderReplicated(k int) []uint32
	// RepairCluster re-ships the cluster's payload to fresh donors until k
	// replicas are live, pruning replicas on dead donors. It returns ErrSkip
	// (possibly wrapped) when the cluster needs no work right now.
	RepairCluster(ctx context.Context, cluster uint32, k int) error
}

// Repairer is the background re-replication loop: it subscribes to the
// events that signal replica loss (breaker open, link down, device removal,
// a swap-in that had to fall through a dead replica) and re-ships
// under-replicated clusters to fresh donors chosen by the planner. Event
// handlers only nudge a buffered channel — the bus delivers synchronously,
// possibly from inside a swap operation, so no repair work may run on the
// publisher's goroutine.
type Repairer struct {
	target RepairTarget
	k      int
	logger *olog.Logger

	repairs *obs.CounterVec // sweep results by outcome
	kicks   *obs.CounterVec // wake-up signals by reason

	kick chan struct{}
	stop chan struct{}
	done chan struct{}

	startOnce sync.Once
	stopOnce  sync.Once
	started   bool
}

// RepairerOptions configures a Repairer. All fields are optional.
type RepairerOptions struct {
	// Bus wires the repairer to replica-loss signals: breaker-open,
	// link-down, device-removed and read-repair events each kick a sweep.
	Bus *event.Bus
	// Obs records repair and kick counters. A private registry is used when
	// nil.
	Obs *obs.Registry
	// Logger narrates sweeps. A nil logger logs nothing.
	Logger *olog.Logger
}

// NewRepairer builds a repair loop restoring clusters to k replicas. Call
// Start to launch the background worker; RepairNow sweeps synchronously
// either way.
func NewRepairer(target RepairTarget, k int, o RepairerOptions) *Repairer {
	if k < 1 {
		k = 1
	}
	if o.Obs == nil {
		o.Obs = obs.NewRegistry(nil)
	}
	r := &Repairer{
		target: target,
		k:      k,
		logger: o.Logger,
		repairs: o.Obs.CounterVec("objectswap_placement_repairs_total",
			"Cluster repair attempts by the re-replication loop, by outcome.", "outcome"),
		kicks: o.Obs.CounterVec("objectswap_placement_repair_kicks_total",
			"Repair-loop wake-up signals, by reason.", "reason"),
		kick: make(chan struct{}, 1),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	if o.Bus != nil {
		for _, t := range []event.Topic{
			event.TopicBreakerOpen,
			event.TopicLinkDown,
			event.TopicDeviceRemoved,
			event.TopicReadRepair,
		} {
			reason := string(t)
			o.Bus.Subscribe(t, func(event.Event) { r.Kick(reason) })
		}
	}
	return r
}

// Kick schedules a background sweep without blocking: signals arriving while
// a sweep is pending or running coalesce into one follow-up sweep.
func (r *Repairer) Kick(reason string) {
	r.kicks.With(reason).Inc()
	select {
	case r.kick <- struct{}{}:
	default:
	}
}

// Start launches the background worker goroutine.
func (r *Repairer) Start() {
	r.startOnce.Do(func() {
		r.started = true
		go func() {
			defer close(r.done)
			for {
				select {
				case <-r.stop:
					return
				case <-r.kick:
					r.RepairNow(context.Background())
				}
			}
		}()
	})
}

// Close stops the background worker. Bus subscriptions stay registered but
// degrade to counting kicks nobody consumes.
func (r *Repairer) Close() {
	r.stopOnce.Do(func() {
		close(r.stop)
		if r.started {
			<-r.done
		}
	})
}

// RepairNow synchronously sweeps every under-replicated cluster once,
// re-shipping each toward k replicas. It returns the number of clusters
// repaired and the first hard failure (a cluster that could not be repaired
// stays under-replicated; the next kick retries it).
func (r *Repairer) RepairNow(ctx context.Context) (int, error) {
	ids := r.target.UnderReplicated(r.k)
	repaired := 0
	var firstErr error
	for _, id := range ids {
		err := r.target.RepairCluster(ctx, id, r.k)
		switch {
		case err == nil:
			repaired++
			r.repairs.With("repaired").Inc()
		case errors.Is(err, ErrSkip):
			r.repairs.With("skipped").Inc()
		default:
			r.repairs.With("failed").Inc()
			r.logger.Warn("cluster repair failed", "cluster", id, "err", err)
			if firstErr == nil {
				firstErr = err
			}
		}
	}
	if repaired > 0 {
		r.logger.Info("repair sweep", "underreplicated", len(ids), "repaired", repaired)
	}
	return repaired, firstErr
}
