// Package placement decides where swapped clusters live. It replaces the
// single-winner device picker with one coherent placement layer shared by
// swap-out, failover and repair:
//
//   - every swap key is rendezvous-hashed (weighted HRW) onto the donor
//     devices currently reachable, weighted by each donor's free capacity
//     from store.Stats — a donor offering more room wins proportionally more
//     keys, and adding or removing one donor only remaps the keys that
//     scored it highest;
//   - a shipment goes to the top K donors in parallel and commits once a
//     write quorum W (majority of K by default) has accepted the payload;
//     a rejecting donor is replaced by the next-ranked candidate, which is
//     exactly the old failover walk, now a by-product of ranking;
//   - the same ranking re-ships under-replicated clusters during repair
//     (see Repairer), so there are not two competing donor-selection paths.
//
// The key is device-independent, so a payload lands unchanged on whichever
// donors accept it; replicas are byte-identical.
package placement

import (
	"context"
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"strings"

	"objectswap/internal/obs"
	olog "objectswap/internal/obs/log"
	"objectswap/internal/store"
)

// Source enumerates the donor devices currently offered for placement.
// Implemented by *store.Registry.
type Source interface {
	Available() []store.Device
}

var _ Source = (*store.Registry)(nil)

// Planner ranks donors for swap keys and ships payloads to K of them.
type Planner struct {
	src    Source
	logger *olog.Logger
	ships  *obs.CounterVec // quorum shipments by outcome
	puts   *obs.CounterVec // per-replica Put attempts by outcome
}

// Options configures a Planner. Both fields are optional.
type Options struct {
	// Obs records the planner's shipment and replica-put counters. A private
	// registry is used when nil.
	Obs *obs.Registry
	// Logger narrates quorum decisions. A nil logger logs nothing.
	Logger *olog.Logger
}

// New builds a planner over the given donor source.
func New(src Source, o Options) *Planner {
	if o.Obs == nil {
		o.Obs = obs.NewRegistry(nil)
	}
	return &Planner{
		src:    src,
		logger: o.Logger,
		ships: o.Obs.CounterVec("objectswap_placement_ships_total",
			"Quorum shipments planned, by outcome.", "outcome"),
		puts: o.Obs.CounterVec("objectswap_placement_replica_puts_total",
			"Individual replica Put attempts, by outcome.", "outcome"),
	}
}

// Candidate is one ranked donor for a key.
type Candidate struct {
	Name  string
	Store store.Store
	// Free is the donor's advertised free capacity at ranking time.
	Free int64
	// Score is the donor's weighted rendezvous score for the key; candidates
	// are returned best-first.
	Score float64
	// Formats is the donor's wire-format advertisement from the same Stats
	// probe (empty = pre-negotiation donor, XML only).
	Formats []string
}

// Accepts reports whether the candidate's advertisement covers format. The
// XML fallback is always accepted.
func (c Candidate) Accepts(format string) bool {
	if format == "" || format == store.FormatXML {
		return true
	}
	for _, f := range c.Formats {
		if f == format {
			return true
		}
	}
	return false
}

// Rank orders the reachable donors for key by weighted rendezvous hash,
// best-first. Donors named in exclude, donors whose Stats probe fails and
// donors with less than need free bytes are left out. Stats probes run
// outside any planner lock: a probe may be a slow network call, and a
// resilience decorator declaring the device unhealthy mid-probe re-enters
// the registry through its connectivity monitor.
func (p *Planner) Rank(ctx context.Context, key string, need int64, exclude []string) []Candidate {
	skip := make(map[string]bool, len(exclude))
	for _, n := range exclude {
		skip[n] = true
	}
	var cands []Candidate
	for _, d := range p.src.Available() {
		if skip[d.Name] {
			continue
		}
		st, err := d.Store.Stats(ctx)
		if err != nil {
			continue // unreachable right now
		}
		free := st.Free()
		if free < need {
			continue
		}
		cands = append(cands, Candidate{
			Name: d.Name, Store: d.Store, Free: free, Score: score(key, d.Name, free),
			Formats: st.Formats,
		})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].Score != cands[j].Score {
			return cands[i].Score > cands[j].Score
		}
		return cands[i].Name < cands[j].Name
	})
	return cands
}

// Order is the pure (equal-weight) HRW ranking of names for key. Tests and
// tools use it to predict where a key lands without probing stores — with
// donors of equal free capacity it matches Rank exactly.
func Order(key string, names []string) []string {
	out := append([]string(nil), names...)
	scores := make(map[string]float64, len(out))
	for _, n := range out {
		scores[n] = score(key, n, 1)
	}
	sort.Slice(out, func(i, j int) bool {
		if scores[out[i]] != scores[out[j]] {
			return scores[out[i]] > scores[out[j]]
		}
		return out[i] < out[j]
	})
	return out
}

// score is the weighted rendezvous score of donor name for key:
// weight / -ln(h) with h the (key, name) hash normalized into (0, 1).
// Donors win keys in proportion to their weight, and a donor-set change
// only remaps keys whose top choice changed (the HRW minimal-disruption
// property).
func score(key, name string, weight int64) float64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	h.Write([]byte{0})
	h.Write([]byte(name))
	// Normalize the top 53 bits (a float64 mantissa) into (0, 1).
	x := float64(h.Sum64()>>11) / float64(uint64(1)<<53)
	if x <= 0 {
		x = math.SmallestNonzeroFloat64
	} else if x >= 1 {
		x = 1 - 1e-16
	}
	w := float64(weight)
	if w <= 0 {
		w = 1
	}
	return -w / math.Log(x)
}

// DefaultQuorum is the write quorum applied when a ShipRequest leaves Quorum
// zero: a majority of the requested replicas.
func DefaultQuorum(replicas int) int {
	if replicas < 1 {
		replicas = 1
	}
	return replicas/2 + 1
}

// ShipRequest describes one replicated shipment.
type ShipRequest struct {
	Key  string
	Data []byte
	// Replicas is the target replica count K (minimum 1).
	Replicas int
	// Quorum is the write quorum W; 0 selects DefaultQuorum(Replicas).
	Quorum int
	// Exclude names donors that must not be selected (live replicas during a
	// repair re-ship, or an operator blacklist).
	Exclude []string
	// Format names the payload's wire format. It rides the store envelope to
	// every replica — all replicas of one shipment use ONE format, so any
	// surviving replica can serve the fault-in. Empty means the XML fallback.
	Format string
	// NoExtend confines the shipment to the top K candidates: a rejecting
	// donor is not replaced by the next-ranked one (the pre-resilience
	// fail-fast behavior).
	NoExtend bool
	// OnFailure, when set, is invoked once per donor that rejects the
	// payload, from the planner's collector goroutine (never concurrently).
	OnFailure func(device string, err error)
}

// ShipReport describes where a shipment landed.
type ShipReport struct {
	// Replicas are the donors holding the payload, in rank order.
	Replicas []string
	// Attempted are the donors that rejected the payload, in rank order.
	Attempted []string
	// Quorum is the write quorum that applied.
	Quorum int
	// Requested is the replica count K the shipment aimed for; fewer landed
	// replicas than Requested (with quorum still met) is a sparse-donor
	// shortfall the caller surfaces on its swap event.
	Requested int
}

// Ship stores the payload on the top K ranked donors in parallel and returns
// once every attempt settles. It succeeds when at least W donors accepted
// the payload; unless NoExtend is set, each rejection recruits the
// next-ranked candidate, so the shipment degrades through the whole donor
// population before giving up. On quorum failure the partial replicas are
// dropped (best effort) so no orphan payloads linger, and the error wraps
// the last Put failure — or store.ErrNoDevice when no donor was even
// eligible.
func (p *Planner) Ship(ctx context.Context, req ShipRequest) (ShipReport, error) {
	cands := p.Rank(ctx, req.Key, int64(len(req.Data)), req.Exclude)
	return p.ShipRanked(ctx, req, cands)
}

// ShipRanked ships over an already-ranked candidate list. The format
// negotiation path ranks once (need 0, to see every donor's advertisement),
// picks a format, then ships on the filtered ranking — without a second round
// of Stats probes. Candidates without room for the payload or whose
// advertisement does not cover req.Format are skipped here, so a stale or
// over-broad ranking degrades to fewer replicas, not to misdirected Puts.
func (p *Planner) ShipRanked(ctx context.Context, req ShipRequest, ranked []Candidate) (ShipReport, error) {
	k := req.Replicas
	if k < 1 {
		k = 1
	}
	quorum := req.Quorum
	if quorum <= 0 {
		quorum = DefaultQuorum(k)
	}
	if quorum > k {
		quorum = k
	}
	rep := ShipReport{Quorum: quorum, Requested: k}

	need := int64(len(req.Data))
	cands := make([]Candidate, 0, len(ranked))
	for _, c := range ranked {
		if c.Free >= need && c.Accepts(req.Format) {
			cands = append(cands, c)
		}
	}
	if len(cands) == 0 {
		p.ships.With("no_donor").Inc()
		return rep, fmt.Errorf("placement: ship %q (%d bytes, %d replicas): %w",
			req.Key, len(req.Data), k, store.ErrNoDevice)
	}

	type result struct {
		idx int
		err error
	}
	results := make(chan result, len(cands))
	next, inflight := 0, 0
	launch := func(n int) {
		for ; n > 0 && next < len(cands); n-- {
			i := next
			next++
			inflight++
			go func() {
				err := store.PutWith(ctx, cands[i].Store, req.Key, req.Data,
					store.PutOpts{Format: req.Format})
				results <- result{i, err}
			}()
		}
	}
	launch(k)

	var okIdx, failIdx []int
	var lastErr error
	for inflight > 0 {
		r := <-results
		inflight--
		if r.err == nil {
			p.puts.With("ok").Inc()
			okIdx = append(okIdx, r.idx)
			continue
		}
		p.puts.With("failed").Inc()
		failIdx = append(failIdx, r.idx)
		lastErr = r.err
		if req.OnFailure != nil {
			req.OnFailure(cands[r.idx].Name, r.err)
		}
		if !req.NoExtend && len(okIdx)+inflight < k {
			launch(1)
		}
	}
	sort.Ints(okIdx)
	sort.Ints(failIdx)
	for _, i := range okIdx {
		rep.Replicas = append(rep.Replicas, cands[i].Name)
	}
	for _, i := range failIdx {
		rep.Attempted = append(rep.Attempted, cands[i].Name)
	}

	if len(okIdx) >= quorum {
		p.ships.With("ok").Inc()
		p.logger.Debug("shipment placed", "key", req.Key,
			"replicas", strings.Join(rep.Replicas, ","), "quorum", quorum)
		return rep, nil
	}
	// Quorum failed: a partial replica set gives a false durability promise
	// and leaks donor capacity — drop what landed, best effort.
	for _, i := range okIdx {
		_ = cands[i].Store.Drop(ctx, req.Key)
	}
	p.ships.With("quorum_failed").Inc()
	landed := rep.Replicas
	rep.Replicas = nil
	if lastErr == nil {
		// No Put failed — there simply were not enough eligible donors to
		// reach the quorum.
		lastErr = fmt.Errorf("%d donor(s) eligible: %w", len(cands), store.ErrNoDevice)
	}
	return rep, fmt.Errorf("placement: ship %q: %d/%d replicas landed (quorum %d, dropped %s, failed %s): %w",
		req.Key, len(landed), k, quorum,
		strings.Join(landed, ","), strings.Join(rep.Attempted, ","), lastErr)
}
