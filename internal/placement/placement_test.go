package placement

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"objectswap/internal/store"
)

var ctx = context.Background()

// reg builds a registry with the given unlimited memory donors.
func reg(t *testing.T, names ...string) *store.Registry {
	t.Helper()
	r := store.NewRegistry(store.SelectMostFree)
	for _, n := range names {
		if err := r.Add(n, store.NewMem(0)); err != nil {
			t.Fatal(err)
		}
	}
	return r
}

func TestOrderDeterministicAndComplete(t *testing.T) {
	names := []string{"alpha", "beta", "gamma", "delta"}
	a := Order("some-key", names)
	b := Order("some-key", names)
	if len(a) != len(names) {
		t.Fatalf("order dropped names: %v", a)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("order not deterministic: %v vs %v", a, b)
		}
	}
	seen := map[string]bool{}
	for _, n := range a {
		seen[n] = true
	}
	for _, n := range names {
		if !seen[n] {
			t.Fatalf("order lost %q: %v", n, a)
		}
	}
}

func TestOrderSpreadsKeysAcrossDonors(t *testing.T) {
	// HRW should hand every donor a reasonable share of keys. With 3 equal
	// donors and 300 keys, expect each to win far more than zero.
	names := []string{"alpha", "beta", "gamma"}
	wins := map[string]int{}
	for i := 0; i < 300; i++ {
		wins[Order(fmt.Sprintf("key-%d", i), names)[0]]++
	}
	for _, n := range names {
		if wins[n] < 50 {
			t.Fatalf("donor %s won only %d/300 keys: %v", n, wins[n], wins)
		}
	}
}

func TestOrderMinimalDisruption(t *testing.T) {
	// Removing one donor must only remap the keys it was winning: every
	// other key keeps its top choice (the HRW property the planner relies on
	// for stable placement across donor churn).
	all := []string{"alpha", "beta", "gamma", "delta"}
	without := []string{"alpha", "beta", "gamma"}
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("key-%d", i)
		before := Order(key, all)[0]
		after := Order(key, without)[0]
		if before != "delta" && before != after {
			t.Fatalf("key %s moved %s -> %s though its winner survived", key, before, after)
		}
	}
}

func TestRankWeightsByFreeCapacity(t *testing.T) {
	// A donor with vastly more free capacity should win nearly every key
	// against a nearly-full donor.
	r := store.NewRegistry(store.SelectMostFree)
	big := store.NewMem(1 << 30)
	small := store.NewMem(4 << 10)
	if err := r.Add("big", big); err != nil {
		t.Fatal(err)
	}
	if err := r.Add("small", small); err != nil {
		t.Fatal(err)
	}
	p := New(r, Options{})
	bigWins := 0
	const keys = 200
	for i := 0; i < keys; i++ {
		cands := p.Rank(ctx, fmt.Sprintf("key-%d", i), 0, nil)
		if len(cands) != 2 {
			t.Fatalf("ranked %d candidates", len(cands))
		}
		if cands[0].Name == "big" {
			bigWins++
		}
	}
	if bigWins < keys*9/10 {
		t.Fatalf("big donor won only %d/%d keys despite 2^18x the capacity", bigWins, keys)
	}
}

func TestRankExcludesAndFiltersCapacity(t *testing.T) {
	r := store.NewRegistry(store.SelectMostFree)
	if err := r.Add("roomy", store.NewMem(0)); err != nil {
		t.Fatal(err)
	}
	if err := r.Add("tiny", store.NewMem(16)); err != nil {
		t.Fatal(err)
	}
	if err := r.Add("banned", store.NewMem(0)); err != nil {
		t.Fatal(err)
	}
	p := New(r, Options{})

	cands := p.Rank(ctx, "k", 1024, []string{"banned"})
	if len(cands) != 1 || cands[0].Name != "roomy" {
		t.Fatalf("candidates = %+v", cands)
	}

	// An unreachable donor (Stats fails) is skipped too.
	dead := store.NewFlaky(store.NewMem(0), 1)
	dead.FailNext(store.OpStats, -1)
	if err := r.Add("dead", dead); err != nil {
		t.Fatal(err)
	}
	cands = p.Rank(ctx, "k", 1024, nil)
	for _, c := range cands {
		if c.Name == "dead" || c.Name == "tiny" {
			t.Fatalf("ranked ineligible donor %s", c.Name)
		}
	}
}

func TestShipReplicatesToTopK(t *testing.T) {
	r := reg(t, "d1", "d2", "d3", "d4")
	p := New(r, Options{})
	data := []byte("<swapcluster/>")

	rep, err := p.Ship(ctx, ShipRequest{Key: "k1", Data: data, Replicas: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Replicas) != 3 || rep.Quorum != 2 {
		t.Fatalf("report = %+v", rep)
	}
	want := Order("k1", []string{"d1", "d2", "d3", "d4"})[:3]
	for i, name := range want {
		if rep.Replicas[i] != name {
			t.Fatalf("replicas = %v, want top-3 %v", rep.Replicas, want)
		}
		st, err := r.Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		if got, err := st.Get(ctx, "k1"); err != nil || string(got) != string(data) {
			t.Fatalf("replica %s: %v %q", name, err, got)
		}
	}
}

func TestShipExtendsPastFailedDonor(t *testing.T) {
	// Fault the donor ranked first for the key: the shipment must recruit
	// the next-ranked candidate and still land K replicas.
	names := []string{"d1", "d2", "d3"}
	order := Order("k2", names)
	r := store.NewRegistry(store.SelectMostFree)
	flakies := map[string]*store.Flaky{}
	for _, n := range names {
		flakies[n] = store.NewFlaky(store.NewMem(0), 1)
		if err := r.Add(n, flakies[n]); err != nil {
			t.Fatal(err)
		}
	}
	flakies[order[0]].FailNext(store.OpPut, -1)
	p := New(r, Options{})

	var failed []string
	rep, err := p.Ship(ctx, ShipRequest{Key: "k2", Data: []byte("x"), Replicas: 2,
		OnFailure: func(device string, err error) { failed = append(failed, device) }})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Replicas) != 2 {
		t.Fatalf("replicas = %v", rep.Replicas)
	}
	for _, n := range rep.Replicas {
		if n == order[0] {
			t.Fatalf("failed donor %s in replica set %v", order[0], rep.Replicas)
		}
	}
	if len(failed) != 1 || failed[0] != order[0] {
		t.Fatalf("OnFailure calls = %v", failed)
	}
	if len(rep.Attempted) != 1 || rep.Attempted[0] != order[0] {
		t.Fatalf("attempted = %v", rep.Attempted)
	}
}

func TestShipQuorumFailureDropsPartials(t *testing.T) {
	// Three donors, two faulted: K=3 wants quorum 2 but only one replica can
	// land — the shipment must fail and clean up the partial copy.
	names := []string{"d1", "d2", "d3"}
	order := Order("k3", names)
	r := store.NewRegistry(store.SelectMostFree)
	flakies := map[string]*store.Flaky{}
	for _, n := range names {
		flakies[n] = store.NewFlaky(store.NewMem(0), 1)
		if err := r.Add(n, flakies[n]); err != nil {
			t.Fatal(err)
		}
	}
	flakies[order[0]].FailNext(store.OpPut, -1)
	flakies[order[1]].FailNext(store.OpPut, -1)
	p := New(r, Options{})

	rep, err := p.Ship(ctx, ShipRequest{Key: "k3", Data: []byte("x"), Replicas: 3})
	if err == nil {
		t.Fatalf("quorum-failed shipment succeeded: %+v", rep)
	}
	if len(rep.Replicas) != 0 {
		t.Fatalf("failed shipment reported replicas %v", rep.Replicas)
	}
	// The one landed copy must have been dropped again.
	for _, n := range names {
		if keys, _ := flakies[n].Keys(ctx); len(keys) != 0 {
			t.Fatalf("orphan payload left on %s: %v", n, keys)
		}
	}
}

func TestShipNoExtendConfinesToTopK(t *testing.T) {
	names := []string{"d1", "d2", "d3"}
	order := Order("k4", names)
	r := store.NewRegistry(store.SelectMostFree)
	flakies := map[string]*store.Flaky{}
	for _, n := range names {
		flakies[n] = store.NewFlaky(store.NewMem(0), 1)
		if err := r.Add(n, flakies[n]); err != nil {
			t.Fatal(err)
		}
	}
	flakies[order[0]].FailNext(store.OpPut, -1)
	p := New(r, Options{})

	_, err := p.Ship(ctx, ShipRequest{Key: "k4", Data: []byte("x"), Replicas: 1, NoExtend: true})
	if err == nil {
		t.Fatal("fail-fast shipment succeeded past a dead top donor")
	}
	if flakies[order[1]].Calls(store.OpPut) != 0 || flakies[order[2]].Calls(store.OpPut) != 0 {
		t.Fatal("NoExtend shipment recruited replacement donors")
	}
}

func TestShipTooFewDonorsForQuorum(t *testing.T) {
	// One live donor cannot satisfy K=2's majority quorum of 2: the shipment
	// must fail cleanly (no orphan copy, a well-formed ErrNoDevice cause)
	// even though no individual Put ever failed.
	r := reg(t, "lonely")
	p := New(r, Options{})
	rep, err := p.Ship(ctx, ShipRequest{Key: "k", Data: []byte("x"), Replicas: 2})
	if !errors.Is(err, store.ErrNoDevice) {
		t.Fatalf("err = %v", err)
	}
	if len(rep.Replicas) != 0 {
		t.Fatalf("failed shipment reported replicas %v", rep.Replicas)
	}
	st, err2 := r.Lookup("lonely")
	if err2 != nil {
		t.Fatal(err2)
	}
	if keys, _ := st.Keys(ctx); len(keys) != 0 {
		t.Fatalf("orphan payload left behind: %v", keys)
	}
}

func TestShipNoCandidates(t *testing.T) {
	r := store.NewRegistry(store.SelectMostFree)
	p := New(r, Options{})
	_, err := p.Ship(ctx, ShipRequest{Key: "k", Data: []byte("x"), Replicas: 2})
	if !errors.Is(err, store.ErrNoDevice) {
		t.Fatalf("err = %v", err)
	}
}

func TestShipClampsQuorumToReplicas(t *testing.T) {
	r := reg(t, "only")
	p := New(r, Options{})
	rep, err := p.Ship(ctx, ShipRequest{Key: "k", Data: []byte("x"), Replicas: 1, Quorum: 5})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Quorum != 1 || len(rep.Replicas) != 1 {
		t.Fatalf("report = %+v", rep)
	}
}

func TestDefaultQuorum(t *testing.T) {
	for k, want := range map[int]int{1: 1, 2: 2, 3: 2, 4: 3, 5: 3} {
		if got := DefaultQuorum(k); got != want {
			t.Fatalf("DefaultQuorum(%d) = %d, want %d", k, got, want)
		}
	}
}
