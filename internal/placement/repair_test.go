package placement

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"objectswap/internal/event"
)

// fakeTarget is a scriptable RepairTarget.
type fakeTarget struct {
	mu       sync.Mutex
	under    []uint32
	errs     map[uint32]error
	repaired []uint32
}

func (f *fakeTarget) UnderReplicated(int) []uint32 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]uint32(nil), f.under...)
}

func (f *fakeTarget) RepairCluster(_ context.Context, c uint32, _ int) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.errs[c]; err != nil {
		return err
	}
	f.repaired = append(f.repaired, c)
	// A repaired cluster leaves the under-replicated set.
	var rest []uint32
	for _, id := range f.under {
		if id != c {
			rest = append(rest, id)
		}
	}
	f.under = rest
	return nil
}

func (f *fakeTarget) repairedIDs() []uint32 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]uint32(nil), f.repaired...)
}

func TestRepairNowSweepsAndCounts(t *testing.T) {
	target := &fakeTarget{
		under: []uint32{1, 2, 3, 4},
		errs: map[uint32]error{
			2: fmt.Errorf("%w: busy", ErrSkip),
			3: errors.New("donor pool exhausted"),
		},
	}
	r := NewRepairer(target, 2, RepairerOptions{})
	defer r.Close()

	n, err := r.RepairNow(context.Background())
	if n != 2 {
		t.Fatalf("repaired %d clusters, want 2", n)
	}
	if err == nil || err.Error() != "donor pool exhausted" {
		t.Fatalf("err = %v", err)
	}
	got := target.repairedIDs()
	if len(got) != 2 || got[0] != 1 || got[1] != 4 {
		t.Fatalf("repaired = %v", got)
	}
}

func TestRepairerKickedByBusEvents(t *testing.T) {
	bus := event.NewBus()
	target := &fakeTarget{under: []uint32{7}}
	r := NewRepairer(target, 2, RepairerOptions{Bus: bus})
	r.Start()
	defer r.Close()

	// A breaker-open event must wake the background loop, which repairs the
	// under-replicated cluster.
	bus.Emit(event.TopicBreakerOpen, "some-donor")
	deadline := time.Now().Add(5 * time.Second)
	for {
		if got := target.repairedIDs(); len(got) == 1 && got[0] == 7 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("background repair never ran; repaired = %v", target.repairedIDs())
		}
		time.Sleep(time.Millisecond)
	}
}

func TestRepairerKickCoalesces(t *testing.T) {
	// Kicks before Start must not block the publisher (the bus delivers
	// synchronously from inside swap operations).
	target := &fakeTarget{}
	r := NewRepairer(target, 2, RepairerOptions{})
	done := make(chan struct{})
	go func() {
		for i := 0; i < 100; i++ {
			r.Kick("test")
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Kick blocked with no consumer")
	}
	r.Close()
}

func TestRepairerCloseIdempotent(t *testing.T) {
	r := NewRepairer(&fakeTarget{}, 2, RepairerOptions{})
	r.Start()
	r.Close()
	r.Close() // must not panic or hang
}
