package bench

import (
	"testing"
	"time"

	"objectswap/internal/link"
)

func TestRunSwapTransfer(t *testing.T) {
	results, err := RunSwapTransfer([]int{20, 50, 100}, 64, link.Bluetooth1())
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("rows = %d", len(results))
	}
	for i, r := range results {
		if r.XMLBytes <= 0 || r.SwapOutTime <= 0 || r.SwapInTime <= 0 {
			t.Fatalf("row %d: %+v", i, r)
		}
		if r.Profile != "bluetooth-700kbps" {
			t.Fatalf("profile = %q", r.Profile)
		}
		if i > 0 {
			prev := results[i-1]
			if r.XMLBytes <= prev.XMLBytes {
				t.Fatalf("XML size not increasing: %d then %d", prev.XMLBytes, r.XMLBytes)
			}
			if r.SwapOutTime <= prev.SwapOutTime {
				t.Fatalf("transfer time not increasing with size")
			}
		}
	}
	// Sanity: 100 × 64-byte objects over 700 Kbps must take on the order of
	// hundreds of milliseconds (XML overhead included), not microseconds.
	if results[2].SwapOutTime < 50*time.Millisecond {
		t.Fatalf("implausibly fast Bluetooth transfer: %v", results[2].SwapOutTime)
	}
}

func TestRunReclaim(t *testing.T) {
	res, err := RunReclaim(5, 40, 64)
	if err != nil {
		t.Fatal(err)
	}
	if !res.GraphPreserved {
		t.Fatal("graph not preserved across reclaim cycle")
	}
	// Swapping 4 of 5 clusters must free most of the memory.
	if res.FreedFraction < 0.5 {
		t.Fatalf("freed only %.0f%%", res.FreedFraction*100)
	}
	if res.UsedAfterBack < res.UsedLoaded {
		t.Fatalf("reload lost objects: %d < %d", res.UsedAfterBack, res.UsedLoaded)
	}
}

func TestRunNaiveComparison(t *testing.T) {
	res, err := RunNaiveComparison(400, 64, 100)
	if err != nil {
		t.Fatal(err)
	}
	// The naive design keeps one proxy per object; swap-clusters keep one
	// per boundary.
	if res.NaiveProxies != 400 {
		t.Fatalf("naive proxies = %d", res.NaiveProxies)
	}
	if res.SwapProxies >= res.NaiveProxies/10 {
		t.Fatalf("swap proxies = %d, naive = %d: no economy", res.SwapProxies, res.NaiveProxies)
	}
	// Loaded, the naive design uses more memory for the same data.
	if res.NaiveBytesLoaded <= res.SwapBytesLoaded {
		t.Fatalf("naive loaded %d <= swap %d", res.NaiveBytesLoaded, res.SwapBytesLoaded)
	}
	// Fully swapped, the naive design still holds all its proxies.
	if res.NaiveBytesSwapped <= res.SwapBytesSwapped {
		t.Fatalf("naive swapped %d <= swap %d", res.NaiveBytesSwapped, res.SwapBytesSwapped)
	}
	// Reload effort: whole clusters vs one fault per object.
	if res.SwapReloadFaults >= res.NaiveReloadFaults {
		t.Fatalf("swap reload faults %d >= naive %d", res.SwapReloadFaults, res.NaiveReloadFaults)
	}
	if res.NaiveReloadFaults != 400 {
		t.Fatalf("naive reload faults = %d, want one per object", res.NaiveReloadFaults)
	}
}

func TestRunCompressionComparison(t *testing.T) {
	res, err := RunCompressionComparison(200, 512)
	if err != nil {
		t.Fatal(err)
	}
	if res.SwapFreedBytes <= 0 {
		t.Fatalf("swap freed %d", res.SwapFreedBytes)
	}
	if res.CompressSavedBytes <= 0 {
		t.Fatalf("compression saved %d", res.CompressSavedBytes)
	}
	if res.CompressCPU <= 0 || res.DecompressCPU <= 0 {
		t.Fatalf("compression CPU not accounted: %+v", res)
	}
	// Swapping frees the whole object, compression only part of the payload.
	if res.SwapFreedBytes <= res.CompressSavedBytes {
		t.Fatalf("swap freed %d <= compression saved %d", res.SwapFreedBytes, res.CompressSavedBytes)
	}
}
