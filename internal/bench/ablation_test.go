package bench

import (
	"testing"

	"objectswap/internal/core"
)

func smallSweep() SweepConfig {
	return SweepConfig{
		Chains:       6,
		ChainLen:     40,
		PayloadBytes: 32,
		Accesses:     30,
		Window:       15,
		Seed:         7,
	}
}

func TestClusterSizeSweepExposesTradeoff(t *testing.T) {
	results, err := RunClusterSizeSweep(smallSweep(), []int{5, 20, 40})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("rows = %d", len(results))
	}
	for _, r := range results {
		if r.SwapOuts == 0 || r.SwapIns == 0 {
			t.Fatalf("%s: no swapping under pressure (%+v)", r.Label, r)
		}
		if r.BytesShipped <= 0 || r.LinkTime <= 0 {
			t.Fatalf("%s: no traffic accounted (%+v)", r.Label, r)
		}
	}
	// The trade-off: granular clusters swap more often...
	if results[0].SwapIns <= results[2].SwapIns {
		t.Fatalf("small clusters (%d swap-ins) should fault more often than large (%d)",
			results[0].SwapIns, results[2].SwapIns)
	}
	// ...but each shipment of a large cluster moves more bytes.
	perIn0 := results[0].BytesShipped / int64(results[0].SwapIns+results[0].SwapOuts)
	perIn2 := results[2].BytesShipped / int64(results[2].SwapIns+results[2].SwapOuts)
	if perIn0 >= perIn2 {
		t.Fatalf("per-shipment bytes: small=%d, large=%d (expected small < large)", perIn0, perIn2)
	}
}

func TestVictimStrategySweepRuns(t *testing.T) {
	results, err := RunVictimStrategySweep(smallSweep(), 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("rows = %d", len(results))
	}
	seen := make(map[core.VictimStrategy]bool)
	for _, r := range results {
		seen[r.Strategy] = true
		if r.SwapOuts == 0 {
			t.Fatalf("%s: no eviction under pressure", r.Label)
		}
	}
	if len(seen) != 3 {
		t.Fatalf("strategies covered: %v", seen)
	}
}

func TestSweepDeterministic(t *testing.T) {
	a, err := RunClusterSizeSweep(smallSweep(), []int{10})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunClusterSizeSweep(smallSweep(), []int{10})
	if err != nil {
		t.Fatal(err)
	}
	if a[0].SwapIns != b[0].SwapIns || a[0].BytesShipped != b[0].BytesShipped {
		t.Fatalf("sweep not deterministic: %+v vs %+v", a[0], b[0])
	}
}
