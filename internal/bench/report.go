package bench

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// FormatFig5 renders results as the paper's Figure 5 table: one row per
// test, one column per swap-cluster configuration, cells in milliseconds.
func FormatFig5(results []Result) string {
	// Collect the column order as first seen (paper order: 20, 50, 100, none).
	var cols []string
	colSeen := make(map[string]bool)
	cells := make(map[string]map[string]time.Duration)
	var rows []string
	rowSeen := make(map[string]bool)
	for _, r := range results {
		col := r.Config.Label()
		if !colSeen[col] {
			colSeen[col] = true
			cols = append(cols, col)
		}
		if !rowSeen[r.Test] {
			rowSeen[r.Test] = true
			rows = append(rows, r.Test)
		}
		if cells[r.Test] == nil {
			cells[r.Test] = make(map[string]time.Duration)
		}
		cells[r.Test][col] = r.Elapsed
	}
	sort.Strings(rows)

	var b strings.Builder
	fmt.Fprintf(&b, "Performance Impact of Swapping on Graph Transversal (ms)\n")
	fmt.Fprintf(&b, "%-6s", "Test")
	for _, c := range cols {
		fmt.Fprintf(&b, "%18s", c)
	}
	b.WriteByte('\n')
	for _, row := range rows {
		fmt.Fprintf(&b, "%-6s", row)
		for _, c := range cols {
			d, ok := cells[row][c]
			if !ok {
				fmt.Fprintf(&b, "%18s", "-")
				continue
			}
			fmt.Fprintf(&b, "%18.3f", float64(d.Microseconds())/1000.0)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Overheads summarizes, per test, the slowdown of each swapping
// configuration relative to the NO SWAP-CLUSTERS floor (1.0 = no overhead).
func Overheads(results []Result) map[string]map[string]float64 {
	floor := make(map[string]time.Duration)
	for _, r := range results {
		if r.Config.ClusterSize <= 0 {
			floor[r.Test] = r.Elapsed
		}
	}
	out := make(map[string]map[string]float64)
	for _, r := range results {
		if r.Config.ClusterSize <= 0 {
			continue
		}
		f := floor[r.Test]
		if f <= 0 {
			continue
		}
		if out[r.Test] == nil {
			out[r.Test] = make(map[string]float64)
		}
		out[r.Test][r.Config.Label()] = float64(r.Elapsed) / float64(f)
	}
	return out
}
