package bench

import (
	"strings"
	"testing"
)

// small keeps unit tests fast; the real figure uses 10000.
const small = 600

func TestBuildEnvironments(t *testing.T) {
	for _, cfg := range Fig5Configs(small) {
		env, err := Build(cfg)
		if err != nil {
			t.Fatalf("%s: %v", cfg.Label(), err)
		}
		if env.Heap().Len() < small {
			t.Fatalf("%s: heap has %d objects", cfg.Label(), env.Heap().Len())
		}
		if (env.RT != nil) != (cfg.ClusterSize > 0) {
			t.Fatalf("%s: RT presence mismatch", cfg.Label())
		}
	}
}

func TestAllTestsSelfCheck(t *testing.T) {
	for _, cfg := range Fig5Configs(small) {
		cfg := cfg
		t.Run(cfg.Label(), func(t *testing.T) {
			for _, test := range Tests {
				env, err := Build(cfg)
				if err != nil {
					t.Fatal(err)
				}
				res, err := RunTest(env, test)
				if err != nil {
					t.Fatalf("%s: %v", test, err)
				}
				var want int64
				switch test {
				case "A1", "A2":
					want = small // recursion depth counts all nodes
				case "B1", "B2":
					want = small - 1 // steps between nodes
				}
				if res.Checked != want {
					t.Fatalf("%s self-check = %d, want %d", test, res.Checked, want)
				}
			}
		})
	}
}

func TestProxyEconomyMatchesPaperNarrative(t *testing.T) {
	// Construction installs one boundary proxy per cluster edge; B1 churns
	// ~one proxy per step; B2 churns none. These counts are the mechanism
	// behind Figure 5's shape.
	cfg := Config{Objects: small, PayloadBytes: 8, ClusterSize: 20}

	env, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	built := env.RT.Manager().ProxyCount()
	wantBoundaries := small/20 - 1 + 1 // internal edges + root proxy
	if built != wantBoundaries {
		t.Fatalf("boundary proxies = %d, want %d", built, wantBoundaries)
	}

	if _, err := RunB1(env); err != nil {
		t.Fatal(err)
	}
	b1Churn := env.RT.Manager().ProxyCount() - built
	if b1Churn < small/2 {
		t.Fatalf("B1 churned only %d proxies", b1Churn)
	}

	env2, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	base2 := env2.RT.Manager().ProxyCount()
	if _, err := RunB2(env2); err != nil {
		t.Fatal(err)
	}
	if churn := env2.RT.Manager().ProxyCount() - base2; churn > 1 {
		t.Fatalf("B2 churned %d proxies, want at most the single cursor proxy", churn)
	}

	// A2 creates proxies for inner-recursion returns that crossed
	// boundaries; A1 creates none.
	env3, _ := Build(cfg)
	base3 := env3.RT.Manager().ProxyCount()
	if _, err := RunA1(env3); err != nil {
		t.Fatal(err)
	}
	if churn := env3.RT.Manager().ProxyCount() - base3; churn != 0 {
		t.Fatalf("A1 churned %d proxies, want 0", churn)
	}
	if _, err := RunA2(env3); err != nil {
		t.Fatal(err)
	}
	a2Churn := env3.RT.Manager().ProxyCount() - base3
	// With clusters of 20 and inner depth 10, roughly half the inner
	// recursions cross a boundary (paper's own account).
	if a2Churn < small/4 || a2Churn > small {
		t.Fatalf("A2 churned %d proxies, expected around %d", a2Churn, small/2)
	}
}

func TestRunFig5AndReport(t *testing.T) {
	results, err := RunFig5(small)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(Tests)*4 {
		t.Fatalf("results = %d cells", len(results))
	}
	table := FormatFig5(results)
	for _, want := range []string{"A1", "A2", "B1", "B2", "NO SWAP-CLUSTERS", "20", "50", "100"} {
		if !strings.Contains(table, want) {
			t.Fatalf("table missing %q:\n%s", want, table)
		}
	}
	ov := Overheads(results)
	if len(ov) != 4 {
		t.Fatalf("overheads for %d tests", len(ov))
	}
	for test, cols := range ov {
		for col, factor := range cols {
			if factor <= 0 {
				t.Fatalf("%s/%s overhead = %v", test, col, factor)
			}
		}
	}
}

func TestUnknownTestRejected(t *testing.T) {
	env, err := Build(Config{Objects: 10, ClusterSize: 0})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunTest(env, "Z9"); err == nil {
		t.Fatal("unknown test accepted")
	}
}

func TestConfigLabelAndDefaults(t *testing.T) {
	if (Config{ClusterSize: 50}).Label() != "50" {
		t.Error("label 50")
	}
	if (Config{}).Label() != "NO SWAP-CLUSTERS" {
		t.Error("label none")
	}
	cfg := Config{}.withDefaults()
	if cfg.Objects != DefaultObjects || cfg.PayloadBytes != 0 {
		// PayloadBytes 0 stays 0 (valid: empty payloads).
		t.Errorf("defaults = %+v", cfg)
	}
}
