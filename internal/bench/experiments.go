package bench

import (
	"fmt"
	"time"

	"objectswap/internal/baseline"
	"objectswap/internal/core"
	"objectswap/internal/energy"
	"objectswap/internal/heap"
	"objectswap/internal/link"
	"objectswap/internal/store"
)

// TransferResult is one row of the transfer-behaviour experiment (§4
// prototype context: swapped XML over a Bluetooth-class link).
type TransferResult struct {
	Objects      int           // objects in the swapped cluster
	PayloadBytes int           // per-object payload
	XMLBytes     int           // wrapper document size
	SwapOutTime  time.Duration // modelled link time to ship
	SwapInTime   time.Duration // modelled link time to fetch back
	Energy       energy.Joules // radio energy of the full round trip
	Profile      string
}

// RunSwapTransfer swaps single clusters of the given sizes over a simulated
// link and reports wrapper sizes and modelled transfer times.
func RunSwapTransfer(clusterSizes []int, payloadBytes int, profile link.Profile) ([]TransferResult, error) {
	var out []TransferResult
	for _, n := range clusterSizes {
		h := heap.New(0)
		reg := heap.NewRegistry()
		clock := &link.VirtualClock{}
		wrapped := link.Wrap(store.NewMem(0), profile, clock)
		devices := store.NewRegistry(store.SelectMostFree)
		if err := devices.Add("radio-neighbor", wrapped); err != nil {
			return nil, err
		}
		rt := core.NewRuntime(h, reg, core.WithStores(devices))
		cls := NodeClass()
		rt.MustRegisterClass(cls)

		cluster := rt.Manager().NewCluster()
		var prev *heap.Object
		payload := make([]byte, payloadBytes)
		for i := 0; i < n; i++ {
			o, err := rt.NewObject(cls, cluster)
			if err != nil {
				return nil, err
			}
			if err := o.SetFieldByName("payload", heap.Bytes(payload)); err != nil {
				return nil, err
			}
			if prev == nil {
				if err := rt.SetRoot("head", o.RefTo()); err != nil {
					return nil, err
				}
			} else if err := rt.SetFieldValue(prev.RefTo(), "next", o.RefTo()); err != nil {
				return nil, err
			}
			prev = o
		}

		ev, err := rt.SwapOut(cluster)
		if err != nil {
			return nil, fmt.Errorf("bench: transfer swap-out (%d objects): %w", n, err)
		}
		outTime := clock.Elapsed()
		clock.Reset()
		rt.Collect()
		if _, err := rt.SwapIn(cluster); err != nil {
			return nil, fmt.Errorf("bench: transfer swap-in (%d objects): %w", n, err)
		}
		model := energy.PocketPC2003()
		out = append(out, TransferResult{
			Objects:      n,
			PayloadBytes: payloadBytes,
			XMLBytes:     ev.Bytes,
			SwapOutTime:  outTime,
			SwapInTime:   clock.Elapsed(),
			Energy:       model.Transfer(int64(ev.Bytes), int64(ev.Bytes)),
			Profile:      profile.Name,
		})
	}
	return out, nil
}

// ReclaimResult is one row of the memory-reclamation experiment (§3/§5: the
// point of swapping is to free the memory of live, reachable objects).
type ReclaimResult struct {
	Clusters       int
	ObjectsPer     int
	UsedLoaded     int64 // bytes with everything resident
	UsedAfterSwap  int64 // bytes after swapping all but one cluster + GC
	UsedAfterBack  int64 // bytes after reloading everything
	FreedFraction  float64
	GraphPreserved bool
}

// RunReclaim builds clusters, swaps all but the first out, measures the
// reclaimed memory, reloads, and verifies the graph.
func RunReclaim(clusters, objectsPer, payloadBytes int) (ReclaimResult, error) {
	h := heap.New(0)
	reg := heap.NewRegistry()
	devices := store.NewRegistry(store.SelectMostFree)
	if err := devices.Add("neighbor", store.NewMem(0)); err != nil {
		return ReclaimResult{}, err
	}
	rt := core.NewRuntime(h, reg, core.WithStores(devices))
	cls := NodeClass()
	rt.MustRegisterClass(cls)

	payload := make([]byte, payloadBytes)
	var ids []core.ClusterID
	var prev *heap.Object
	total := 0
	for c := 0; c < clusters; c++ {
		cluster := rt.Manager().NewCluster()
		ids = append(ids, cluster)
		for i := 0; i < objectsPer; i++ {
			o, err := rt.NewObject(cls, cluster)
			if err != nil {
				return ReclaimResult{}, err
			}
			if err := o.SetFieldByName("payload", heap.Bytes(payload)); err != nil {
				return ReclaimResult{}, err
			}
			if prev == nil {
				if err := rt.SetRoot("head", o.RefTo()); err != nil {
					return ReclaimResult{}, err
				}
			} else if err := rt.SetFieldValue(prev.RefTo(), "next", o.RefTo()); err != nil {
				return ReclaimResult{}, err
			}
			prev = o
			total++
		}
	}

	res := ReclaimResult{Clusters: clusters, ObjectsPer: objectsPer, UsedLoaded: h.Used()}
	for _, c := range ids[1:] {
		if _, err := rt.SwapOut(c); err != nil {
			return res, err
		}
	}
	rt.Collect()
	res.UsedAfterSwap = h.Used()
	res.FreedFraction = 1 - float64(res.UsedAfterSwap)/float64(res.UsedLoaded)

	// Reload everything by walking the list, then verify length.
	head, _ := rt.Root("head")
	out, err := rt.Invoke(head, "walk", heap.Int(1))
	if err != nil {
		return res, err
	}
	res.UsedAfterBack = h.Used()
	res.GraphPreserved = out[0].MustInt() == int64(total)
	return res, nil
}

// NaiveComparison contrasts Object-Swapping with the naive one-proxy-per-
// object design on the same workload (§5's closing comparison).
type NaiveComparison struct {
	Objects int

	// Swap-cluster design (cluster size = ClusterSize).
	ClusterSize        int
	SwapProxies        int
	SwapBytesLoaded    int64
	SwapBytesSwapped   int64 // after swapping everything + GC
	SwapTraversalTime  time.Duration
	SwapReloadFaults   int // cluster reloads to traverse after full swap-out
	NaiveProxies       int
	NaiveBytesLoaded   int64
	NaiveBytesSwapped  int64 // surrogates remain
	NaiveTraversalTime time.Duration
	NaiveReloadFaults  int // per-object faults to traverse after full offload
}

// RunNaiveComparison measures both designs on an n-object list with the
// given payload and swap-cluster size.
func RunNaiveComparison(n, payloadBytes, clusterSize int) (NaiveComparison, error) {
	res := NaiveComparison{Objects: n, ClusterSize: clusterSize}

	// --- Swap-cluster design -------------------------------------------
	env, err := Build(Config{Objects: n, PayloadBytes: payloadBytes, ClusterSize: clusterSize})
	if err != nil {
		return res, err
	}
	rt := env.RT
	res.SwapProxies = rt.Manager().ProxyCount()
	res.SwapBytesLoaded = env.Heap().Used()

	if _, err := RunA1(env); err != nil { // warm-up
		return res, err
	}
	start := time.Now()
	if _, err := RunA1(env); err != nil {
		return res, err
	}
	res.SwapTraversalTime = time.Since(start)

	for _, c := range rt.Manager().SelectVictims(core.VictimColdest) {
		if _, err := rt.SwapOut(c); err != nil {
			return res, err
		}
	}
	rt.Collect()
	res.SwapBytesSwapped = env.Heap().Used()

	before := swapInCount(rt)
	if _, err := RunA1(env); err != nil {
		return res, err
	}
	res.SwapReloadFaults = swapInCount(rt) - before

	// --- Naive per-object design ----------------------------------------
	h := heap.New(0)
	reg := heap.NewRegistry()
	cls := NodeClass()
	reg.MustRegister(cls)
	naive := baseline.NewPerObject(h, reg, store.NewMem(0))
	refs := make([]heap.Value, n)
	payload := make([]byte, payloadBytes)
	for i := range refs {
		v, err := naive.NewObject(cls)
		if err != nil {
			return res, err
		}
		if err := naive.SetFieldValue(v, "payload", heap.Bytes(payload)); err != nil {
			return res, err
		}
		refs[i] = v
	}
	for i := 0; i < n-1; i++ {
		if err := naive.SetFieldValue(refs[i], "next", refs[i+1]); err != nil {
			return res, err
		}
	}
	res.NaiveProxies = naive.ProxyCount()
	res.NaiveBytesLoaded = h.Used()

	if _, err := naive.Invoke(refs[0], "walk", heap.Int(1)); err != nil { // warm-up
		return res, err
	}
	start = time.Now()
	if _, err := naive.Invoke(refs[0], "walk", heap.Int(1)); err != nil {
		return res, err
	}
	res.NaiveTraversalTime = time.Since(start)

	if _, err := naive.OffloadAll(); err != nil {
		return res, err
	}
	res.NaiveBytesSwapped = h.Used()

	beforeFaults := naive.Faults()
	if _, err := naive.Invoke(refs[0], "walk", heap.Int(1)); err != nil {
		return res, err
	}
	res.NaiveReloadFaults = naive.Faults() - beforeFaults
	return res, nil
}

// swapInCount totals swap-ins across all clusters.
func swapInCount(rt *core.Runtime) int {
	total := 0
	for _, info := range rt.Manager().InfoAll() {
		total += int(info.SwapIns)
	}
	return total
}

// CompressionComparison contrasts swapping a cluster against compressing its
// payloads in place (§6's Chen et al. comparator).
type CompressionComparison struct {
	Objects      int
	PayloadBytes int

	SwapFreedBytes int64
	SwapCPU        time.Duration // serialization + bookkeeping (no link time)
	SwapXMLBytes   int64         // shipped volume (radio energy driver)
	SwapEnergy     energy.Joules // CPU + radio round trip

	CompressSavedBytes int64
	CompressCPU        time.Duration
	DecompressCPU      time.Duration
	CompressEnergy     energy.Joules // pure CPU
}

// RunCompressionComparison measures both memory-reduction mechanisms on the
// same graph shape (compressible payloads).
func RunCompressionComparison(n, payloadBytes int) (CompressionComparison, error) {
	res := CompressionComparison{Objects: n, PayloadBytes: payloadBytes}

	// Swapping.
	env, err := Build(Config{Objects: n, PayloadBytes: payloadBytes, ClusterSize: n})
	if err != nil {
		return res, err
	}
	rt := env.RT
	used := env.Heap().Used()
	start := time.Now()
	for _, c := range rt.Manager().SelectVictims(core.VictimColdest) {
		ev, err := rt.SwapOut(c)
		if err != nil {
			return res, err
		}
		res.SwapXMLBytes += int64(ev.Bytes)
	}
	rt.Collect()
	res.SwapCPU = time.Since(start)
	res.SwapFreedBytes = used - env.Heap().Used()
	model := energy.PocketPC2003()
	res.SwapEnergy = model.CPU(res.SwapCPU) + model.Transfer(res.SwapXMLBytes, res.SwapXMLBytes)

	// Compression over an identical direct-runtime graph with compressible
	// payloads.
	direct, err := Build(Config{Objects: n, PayloadBytes: 0, ClusterSize: 0})
	if err != nil {
		return res, err
	}
	h := direct.Heap()
	payload := make([]byte, payloadBytes)
	for i := range payload {
		payload[i] = byte(i % 7)
	}
	for _, oid := range h.IDs() {
		o, err := h.Get(oid)
		if err != nil {
			continue
		}
		if err := o.SetFieldByName("payload", heap.Bytes(payload)); err != nil {
			return res, err
		}
	}
	comp := baseline.NewCompressor(h, payloadBytes, 0)
	st, err := comp.Sweep()
	if err != nil {
		return res, err
	}
	res.CompressSavedBytes = st.Saved()
	res.CompressCPU = st.CompressCPU

	// Touch everything back (decompression cost).
	for _, oid := range h.IDs() {
		o, err := h.Get(oid)
		if err != nil || o.Class().Special != heap.SpecialNone {
			continue
		}
		if _, err := comp.Access(oid, "payload"); err != nil {
			return res, err
		}
	}
	res.DecompressCPU = comp.StatsSnapshot().DecompressCPU
	res.CompressEnergy = energy.PocketPC2003().CPU(res.CompressCPU + res.DecompressCPU)
	return res, nil
}
