// Package bench builds the evaluation workloads of the paper's Section 5 and
// provides the harness that regenerates its figure and comparisons.
//
// The micro-benchmark of Figure 5 measures graph-transversal slowdown under
// Object-Swapping: a list of 10000 64-byte objects, quasi-empty methods, and
// four tests —
//
//	A1: recursion along the list passing an int (recursion depth);
//	A2: the same outer recursion, but each step triggers an inner recursion
//	    of depth ≤ 10 that returns a reference (creating a mediating proxy
//	    whenever it crossed a swap-cluster boundary);
//	B1: a full iteration via a global variable (one fresh proxy per step);
//	B2: B1 with the assign optimization (self-patching cursor proxy).
//
// Each test runs under swap-cluster sizes 20, 50 and 100, and under
// "NO SWAP-CLUSTERS" (the direct runtime) as the timing floor.
package bench

import (
	"fmt"
	"time"

	"objectswap/internal/core"
	"objectswap/internal/heap"
	"objectswap/internal/store"
)

// Defaults from the paper.
const (
	DefaultObjects = 10000
	DefaultPayload = 64
	// InnerDepth is Test A2's inner recursion bound.
	InnerDepth = 10
)

// NodeClass builds the benchmark list-node class with the four methods the
// tests exercise. Methods are quasi-empty, as in the paper, "in order not to
// mask the overhead being measured".
func NodeClass() *heap.Class {
	c := heap.NewClass("BenchNode",
		heap.FieldDef{Name: "payload", Kind: heap.KindBytes},
		heap.FieldDef{Name: "next", Kind: heap.KindRef},
	)
	// next: return the next element (B1/B2 iterations).
	c.AddMethod("next", func(call *heap.Call) ([]heap.Value, error) {
		v, err := call.Self.FieldByName("next")
		if err != nil {
			return nil, err
		}
		return []heap.Value{v}, nil
	})
	// walk: Test A1's recursion, incrementing an int argument per step.
	c.AddMethod("walk", func(call *heap.Call) ([]heap.Value, error) {
		depth, err := call.Arg(0).Int()
		if err != nil {
			return nil, err
		}
		next, err := call.Self.FieldByName("next")
		if err != nil {
			return nil, err
		}
		if next.IsNil() {
			return []heap.Value{heap.Int(depth)}, nil
		}
		return call.RT.Invoke(next, "walk", heap.Int(depth+1))
	})
	// fetch: Test A2's inner recursion — return a reference to the object k
	// positions ahead (or the last), without modifying the graph.
	c.AddMethod("fetch", func(call *heap.Call) ([]heap.Value, error) {
		k, err := call.Arg(0).Int()
		if err != nil {
			return nil, err
		}
		next, err := call.Self.FieldByName("next")
		if err != nil {
			return nil, err
		}
		if k <= 0 || next.IsNil() {
			return []heap.Value{call.Self.RefTo()}, nil
		}
		return call.RT.Invoke(next, "fetch", heap.Int(k-1))
	})
	// outer: Test A2's outer recursion — per step, run the inner recursion
	// (discarding the mediated reference it returns), then advance.
	c.AddMethod("outer", func(call *heap.Call) ([]heap.Value, error) {
		depth, err := call.Arg(0).Int()
		if err != nil {
			return nil, err
		}
		if _, err := call.RT.Invoke(call.Self.RefTo(), "fetch", heap.Int(InnerDepth)); err != nil {
			return nil, err
		}
		next, err := call.Self.FieldByName("next")
		if err != nil {
			return nil, err
		}
		if next.IsNil() {
			return []heap.Value{heap.Int(depth)}, nil
		}
		return call.RT.Invoke(next, "outer", heap.Int(depth+1))
	})
	return c
}

// Config parameterizes one benchmark environment.
type Config struct {
	// Objects is the list length (paper: 10000).
	Objects int
	// PayloadBytes is the per-object payload (paper: 64).
	PayloadBytes int
	// ClusterSize is the swap-cluster size; 0 builds the "NO SWAP-CLUSTERS"
	// environment on the direct runtime.
	ClusterSize int
}

// Label renders the configuration column label used in Figure 5.
func (c Config) Label() string {
	if c.ClusterSize <= 0 {
		return "NO SWAP-CLUSTERS"
	}
	return fmt.Sprintf("%d", c.ClusterSize)
}

func (c Config) withDefaults() Config {
	if c.Objects <= 0 {
		c.Objects = DefaultObjects
	}
	if c.PayloadBytes < 0 {
		c.PayloadBytes = DefaultPayload
	}
	return c
}

// Env is a built benchmark environment: a list installed either under the
// swapping runtime (with swap-clusters of the configured size) or under the
// direct runtime (the lower-bound configuration).
type Env struct {
	Config  Config
	Invoker heap.Invoker
	Head    heap.Value

	// RT is non-nil for swapping environments.
	RT *core.Runtime
	// heap backs both environments.
	heap *heap.Heap
}

// Heap returns the environment's device heap.
func (e *Env) Heap() *heap.Heap { return e.heap }

// SetCursor assigns the iteration global (swap-cluster-0 variable).
func (e *Env) SetCursor(v heap.Value) error {
	if e.RT != nil {
		return e.RT.SetRoot("cursor", v)
	}
	e.heap.SetRoot("cursor", v)
	return nil
}

// Build constructs the environment for cfg.
func Build(cfg Config) (*Env, error) {
	cfg = cfg.withDefaults()
	h := heap.New(0)
	cls := NodeClass()

	env := &Env{Config: cfg, heap: h}
	payload := make([]byte, cfg.PayloadBytes)

	if cfg.ClusterSize <= 0 {
		// NO SWAP-CLUSTERS: plain objects on the direct runtime.
		rt := heap.NewDirectRuntime(h)
		env.Invoker = rt
		var prev *heap.Object
		for i := 0; i < cfg.Objects; i++ {
			o, err := h.New(cls)
			if err != nil {
				return nil, err
			}
			if err := o.SetFieldByName("payload", heap.Bytes(payload)); err != nil {
				return nil, err
			}
			if prev == nil {
				h.SetRoot("head", o.RefTo())
			} else if err := prev.SetFieldByName("next", o.RefTo()); err != nil {
				return nil, err
			}
			prev = o
		}
		head, _ := h.Root("head")
		env.Head = head
		return env, nil
	}

	reg := heap.NewRegistry()
	devices := store.NewRegistry(store.SelectMostFree)
	if err := devices.Add("bench-neighbor", store.NewMem(0)); err != nil {
		return nil, err
	}
	rt := core.NewRuntime(h, reg, core.WithStores(devices))
	rt.MustRegisterClass(cls)
	env.Invoker = rt
	env.RT = rt

	var cluster core.ClusterID
	var prev *heap.Object
	for i := 0; i < cfg.Objects; i++ {
		if i%cfg.ClusterSize == 0 {
			cluster = rt.Manager().NewCluster()
		}
		o, err := rt.NewObject(cls, cluster)
		if err != nil {
			return nil, err
		}
		if err := o.SetFieldByName("payload", heap.Bytes(payload)); err != nil {
			return nil, err
		}
		if prev == nil {
			if err := rt.SetRoot("head", o.RefTo()); err != nil {
				return nil, err
			}
		} else if err := rt.SetFieldValue(prev.RefTo(), "next", o.RefTo()); err != nil {
			return nil, err
		}
		prev = o
	}
	head, _ := rt.Root("head")
	env.Head = head
	return env, nil
}

// RunA1 executes Test A1 and returns the final recursion depth.
func RunA1(env *Env) (int64, error) {
	out, err := env.Invoker.Invoke(env.Head, "walk", heap.Int(1))
	if err != nil {
		return 0, err
	}
	return out[0].MustInt(), nil
}

// RunA2 executes Test A2 and returns the final outer recursion depth.
func RunA2(env *Env) (int64, error) {
	out, err := env.Invoker.Invoke(env.Head, "outer", heap.Int(1))
	if err != nil {
		return 0, err
	}
	return out[0].MustInt(), nil
}

// RunB1 executes Test B1: a full iteration via the global cursor, without
// the assign optimization. It returns the number of steps taken.
func RunB1(env *Env) (int64, error) {
	return runIteration(env, false)
}

// RunB2 executes Test B2: the same iteration with the assign optimization
// (meaningful only for swapping environments; on the direct runtime it
// degenerates to B1, which is the correct lower bound).
func RunB2(env *Env) (int64, error) {
	return runIteration(env, true)
}

func runIteration(env *Env, assign bool) (int64, error) {
	cur := env.Head
	if assign && env.RT != nil {
		// The cursor variable gets its own self-patching proxy; the head
		// global keeps its own mediation untouched.
		c, err := env.RT.AssignedCursor(cur)
		if err != nil {
			return 0, err
		}
		cur = c
	}
	if err := env.SetCursor(cur); err != nil {
		return 0, err
	}
	var steps int64
	for {
		out, err := env.Invoker.Invoke(cur, "next")
		if err != nil {
			return steps, err
		}
		if out[0].IsNil() {
			return steps, nil
		}
		cur = out[0]
		if err := env.SetCursor(cur); err != nil {
			return steps, err
		}
		steps++
	}
}

// Result is one cell of the Figure 5 table.
type Result struct {
	Test    string
	Config  Config
	Elapsed time.Duration
	Checked int64 // the workload's self-check value (depth / steps)
}

// Tests enumerates the Figure 5 test names in order.
var Tests = []string{"A1", "A2", "B1", "B2"}

// RunTest executes one named test on env, timing it.
func RunTest(env *Env, test string) (Result, error) {
	var fn func(*Env) (int64, error)
	switch test {
	case "A1":
		fn = RunA1
	case "A2":
		fn = RunA2
	case "B1":
		fn = RunB1
	case "B2":
		fn = RunB2
	default:
		return Result{}, fmt.Errorf("bench: unknown test %q", test)
	}
	start := time.Now()
	checked, err := fn(env)
	elapsed := time.Since(start)
	if err != nil {
		return Result{}, fmt.Errorf("bench: %s on %s: %w", test, env.Config.Label(), err)
	}
	want := int64(env.Config.Objects)
	if test == "B1" || test == "B2" {
		want--
	}
	if checked != want {
		return Result{}, fmt.Errorf("bench: %s on %s: self-check %d, want %d (graph corrupted)",
			test, env.Config.Label(), checked, want)
	}
	return Result{Test: test, Config: env.Config, Elapsed: elapsed, Checked: checked}, nil
}

// Fig5Configs returns the paper's four configurations for the given list
// size (swap-clusters of 20, 50, 100 and none).
func Fig5Configs(objects int) []Config {
	return []Config{
		{Objects: objects, PayloadBytes: DefaultPayload, ClusterSize: 20},
		{Objects: objects, PayloadBytes: DefaultPayload, ClusterSize: 50},
		{Objects: objects, PayloadBytes: DefaultPayload, ClusterSize: 100},
		{Objects: objects, PayloadBytes: DefaultPayload, ClusterSize: 0},
	}
}

// RunFig5 regenerates the full Figure 5 grid: every test under every
// configuration. A fresh environment is built per (test, config) pair so
// tests do not disturb each other (B1 leaves proxy churn behind); one
// unmeasured warm-up run precedes the measurement so cold-start effects
// (host allocator growth, map warm-up) do not mask the overhead under
// study, mirroring the paper's steady-state micro-benchmark.
func RunFig5(objects int) ([]Result, error) {
	var results []Result
	for _, test := range Tests {
		for _, cfg := range Fig5Configs(objects) {
			env, err := Build(cfg)
			if err != nil {
				return nil, err
			}
			if _, err := RunTest(env, test); err != nil { // warm-up
				return nil, err
			}
			if env.RT != nil {
				env.RT.Collect() // drop warm-up proxy churn
			}
			res, err := RunTest(env, test)
			if err != nil {
				return nil, err
			}
			results = append(results, res)
		}
	}
	return results, nil
}
