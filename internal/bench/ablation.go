package bench

import (
	"fmt"
	"math/rand"
	"time"

	"objectswap/internal/core"
	"objectswap/internal/heap"
	"objectswap/internal/link"
	"objectswap/internal/store"
)

// Ablations for the design choices DESIGN.md calls out. The paper presents
// swap-cluster size as "adaptable" and victim selection as policy-driven but
// evaluates neither dimension beyond Figure 5's proxy overhead; these
// experiments quantify both under memory pressure.

// SweepConfig parameterizes the working-set workload used by the ablations:
// several independent chains, accessed with a Zipf-skewed distribution
// through a limited heap, so cold chains must swap to a (simulated
// Bluetooth) device and hot ones fault back.
type SweepConfig struct {
	Chains       int   // independent chains (hot/cold working set)
	ChainLen     int   // objects per chain
	PayloadBytes int   // payload per object
	HeapBudget   int64 // device heap capacity (0 = derive ~40% of data)
	Accesses     int   // number of chain accesses
	Window       int   // elements read per access (partial traversal)
	Seed         int64 // deterministic access pattern
}

func (c SweepConfig) withDefaults() SweepConfig {
	if c.Chains <= 0 {
		c.Chains = 8
	}
	if c.ChainLen <= 0 {
		c.ChainLen = 100
	}
	if c.PayloadBytes <= 0 {
		c.PayloadBytes = 64
	}
	if c.Accesses <= 0 {
		c.Accesses = 60
	}
	if c.Window <= 0 {
		c.Window = 25
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	return c
}

// SweepResult is one measured configuration of an ablation.
type SweepResult struct {
	Label        string
	ClusterSize  int
	Strategy     core.VictimStrategy
	SwapOuts     uint64
	SwapIns      uint64
	BytesShipped int64         // payload bytes over the link, both directions
	LinkTime     time.Duration // virtual transfer time at 700 Kbps
	WallTime     time.Duration // host CPU time for the access phase
}

// sweepEnv is one instantiated workload.
type sweepEnv struct {
	rt    *core.Runtime
	flink *link.Link
	clock *link.VirtualClock
	heads []heap.Value
}

// buildSweepEnv constructs the chains under the given cluster size and
// installs an evictor with the given strategy.
func buildSweepEnv(cfg SweepConfig, clusterSize int, strategy core.VictimStrategy) (*sweepEnv, error) {
	objBytes := int64(32 + 2*16 + cfg.PayloadBytes)
	budget := cfg.HeapBudget
	if budget <= 0 {
		total := objBytes * int64(cfg.Chains*cfg.ChainLen)
		budget = total*2/5 + 8192 // ~40% of the data + middleware slack
	}
	h := heap.New(budget)
	clock := &link.VirtualClock{}
	flink := link.Wrap(store.NewMem(0), link.Bluetooth1(), clock)
	devices := store.NewRegistry(store.SelectMostFree)
	if err := devices.Add("radio-neighbor", flink); err != nil {
		return nil, err
	}
	rt := core.NewRuntime(h, heap.NewRegistry(), core.WithStores(devices))
	cls := NodeClass()
	rt.MustRegisterClass(cls)
	rt.SetEvictor(rt.Evictor(strategy))

	env := &sweepEnv{rt: rt, flink: flink, clock: clock}
	payload := make([]byte, cfg.PayloadBytes)
	for c := 0; c < cfg.Chains; c++ {
		var cluster core.ClusterID
		var prev *heap.Object
		for i := 0; i < cfg.ChainLen; i++ {
			if i%clusterSize == 0 {
				cluster = rt.Manager().NewCluster()
			}
			o, err := rt.NewObject(cls, cluster)
			if err != nil {
				return nil, fmt.Errorf("chain %d obj %d: %w", c, i, err)
			}
			if err := o.SetFieldByName("payload", heap.Bytes(payload)); err != nil {
				return nil, err
			}
			if prev == nil {
				root := fmt.Sprintf("chain-%d", c)
				if err := rt.SetRoot(root, o.RefTo()); err != nil {
					return nil, err
				}
			} else if err := rt.SetFieldValue(prev.RefTo(), "next", o.RefTo()); err != nil {
				return nil, err
			}
			prev = o
		}
		head, _ := rt.Root(fmt.Sprintf("chain-%d", c))
		env.heads = append(env.heads, head)
	}
	// The build phase's transfers are setup cost, not measurement.
	env.clock.Reset()
	return env, nil
}

// runAccessPhase drives the skewed access pattern and gathers the counters.
func (env *sweepEnv) runAccessPhase(cfg SweepConfig) (SweepResult, error) {
	r := rand.New(rand.NewSource(cfg.Seed))
	zipf := rand.NewZipf(r, 1.4, 8, uint64(cfg.Chains-1))

	start := time.Now()
	for a := 0; a < cfg.Accesses; a++ {
		chain := int(zipf.Uint64())
		cur := env.heads[chain]
		for step := 0; step < cfg.Window && !cur.IsNil(); step++ {
			next, err := env.rt.Field(cur, "next")
			if err != nil {
				return SweepResult{}, fmt.Errorf("access %d chain %d step %d: %w", a, chain, step, err)
			}
			cur = next
		}
	}
	res := SweepResult{WallTime: time.Since(start), LinkTime: env.clock.Elapsed()}
	ts := env.flink.TrafficStats()
	res.BytesShipped = ts.BytesSent + ts.BytesReceived
	for _, info := range env.rt.Manager().InfoAll() {
		res.SwapOuts += info.SwapOuts
		res.SwapIns += info.SwapIns
	}
	return res, nil
}

// RunClusterSizeSweep measures the paper's "adaptable size" trade-off: small
// swap-clusters move fewer bytes per fault but fault more often and carry
// more proxies; large ones amortize transfers but ship cold data.
func RunClusterSizeSweep(cfg SweepConfig, sizes []int) ([]SweepResult, error) {
	cfg = cfg.withDefaults()
	var out []SweepResult
	for _, size := range sizes {
		env, err := buildSweepEnv(cfg, size, core.VictimColdest)
		if err != nil {
			return nil, fmt.Errorf("bench: sweep size %d: %w", size, err)
		}
		res, err := env.runAccessPhase(cfg)
		if err != nil {
			return nil, fmt.Errorf("bench: sweep size %d: %w", size, err)
		}
		res.Label = fmt.Sprintf("cluster=%d", size)
		res.ClusterSize = size
		res.Strategy = core.VictimColdest
		out = append(out, res)
	}
	return out, nil
}

// RunVictimStrategySweep measures eviction strategies on the same skewed
// workload (cluster size fixed).
func RunVictimStrategySweep(cfg SweepConfig, clusterSize int) ([]SweepResult, error) {
	cfg = cfg.withDefaults()
	var out []SweepResult
	for _, strategy := range []core.VictimStrategy{
		core.VictimColdest, core.VictimLargest, core.VictimLeastUsed,
	} {
		env, err := buildSweepEnv(cfg, clusterSize, strategy)
		if err != nil {
			return nil, fmt.Errorf("bench: strategy %s: %w", strategy, err)
		}
		res, err := env.runAccessPhase(cfg)
		if err != nil {
			return nil, fmt.Errorf("bench: strategy %s: %w", strategy, err)
		}
		res.Label = strategy.String()
		res.ClusterSize = clusterSize
		res.Strategy = strategy
		out = append(out, res)
	}
	return out, nil
}
