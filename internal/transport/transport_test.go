package transport

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"objectswap/internal/link"
	"objectswap/internal/store"
)

var ctx = context.Background()

// harness wires a Resilient around a fault-injecting store on virtual time.
type harness struct {
	res   *Resilient
	flaky *store.Flaky
	mem   *store.Mem
	clock *link.VirtualClock
	m     *Metrics
}

func newHarness(pol Policy, opts ...Option) *harness {
	h := &harness{
		mem:   store.NewMem(0),
		clock: &link.VirtualClock{},
		m:     NewMetrics(),
	}
	h.flaky = store.NewFlaky(h.mem, 1)
	opts = append([]Option{WithClock(h.clock), WithMetrics(h.m)}, opts...)
	h.res = NewResilient("pda", h.flaky, pol, opts...)
	return h
}

func TestRetryAbsorbsTransientFailure(t *testing.T) {
	h := newHarness(Policy{})
	h.flaky.FailOn(store.OpPut, 1)

	if err := h.res.Put(ctx, "k", []byte("payload")); err != nil {
		t.Fatalf("put over transiently-failing store: %v", err)
	}
	if got := h.flaky.Calls(store.OpPut); got != 2 {
		t.Fatalf("device saw %d puts, want 2 (1 failure + 1 retry)", got)
	}
	if h.clock.Elapsed() <= 0 {
		t.Fatal("retry did not back off on the clock")
	}
	snap := h.m.Snapshot()
	if snap.Attempts != 2 || snap.Retries != 1 || snap.Successes != 1 {
		t.Fatalf("snapshot = %+v", snap)
	}
	if snap.BytesOut != int64(len("payload")) {
		t.Fatalf("bytes out = %d", snap.BytesOut)
	}
	// The payload really landed.
	if got, err := h.mem.Get(ctx, "k"); err != nil || string(got) != "payload" {
		t.Fatalf("inner store holds %q, %v", got, err)
	}
}

func TestRetryGivesUpAfterMaxAttempts(t *testing.T) {
	h := newHarness(Policy{MaxAttempts: 2})
	h.flaky.FailNext(store.OpPut, -1)

	err := h.res.Put(ctx, "k", []byte("x"))
	if !errors.Is(err, store.ErrUnavailable) {
		t.Fatalf("err = %v", err)
	}
	if got := h.flaky.Calls(store.OpPut); got != 2 {
		t.Fatalf("device saw %d puts, want exactly MaxAttempts=2", got)
	}
	snap := h.m.Snapshot()
	if snap.Failures != 1 || snap.Retries != 1 {
		t.Fatalf("snapshot = %+v", snap)
	}
}

func TestDefinitiveAnswersAreNotRetried(t *testing.T) {
	h := newHarness(Policy{BreakerThreshold: 2})

	// ErrNotFound is a protocol answer, not a link failure: one attempt only,
	// and the breaker must not count it as device trouble.
	for i := 0; i < 6; i++ {
		if _, err := h.res.Get(ctx, "missing"); !errors.Is(err, store.ErrNotFound) {
			t.Fatalf("err = %v", err)
		}
	}
	if got := h.flaky.Calls(store.OpGet); got != 6 {
		t.Fatalf("device saw %d gets, want 6 (no retries)", got)
	}
	if h.res.BreakerOpen() {
		t.Fatal("breaker tripped on NotFound answers")
	}
}

func TestBreakerTripsProbesAndRecovers(t *testing.T) {
	var transitions []bool
	h := newHarness(
		Policy{MaxAttempts: 1, BreakerThreshold: 2, BreakerProbeEvery: 3},
		WithBreakerNotify(func(open bool) { transitions = append(transitions, open) }),
	)
	h.flaky.FailNext(store.OpPut, -1)

	// Two consecutive failures trip the breaker.
	for i := 0; i < 2; i++ {
		if err := h.res.Put(ctx, "k", []byte("x")); err == nil {
			t.Fatal("put succeeded over dead store")
		}
	}
	if !h.res.BreakerOpen() {
		t.Fatal("breaker not open after threshold failures")
	}
	devCalls := h.flaky.Calls(store.OpPut)

	// While open, most operations fail fast without touching the device.
	err := h.res.Put(ctx, "k", []byte("x"))
	if !errors.Is(err, ErrBreakerOpen) || !errors.Is(err, store.ErrUnavailable) {
		t.Fatalf("fast-fail err = %v", err)
	}
	if h.flaky.Calls(store.OpPut) != devCalls {
		t.Fatal("rejected operation reached the device")
	}

	// The device heals; periodic probes discover it and close the breaker.
	h.flaky.FailNext(store.OpPut, 0)
	for i := 0; i < 12 && h.res.BreakerOpen(); i++ {
		_ = h.res.Put(ctx, "k", []byte("x"))
	}
	if h.res.BreakerOpen() {
		t.Fatal("breaker never closed after the device recovered")
	}
	if len(transitions) != 2 || !transitions[0] || transitions[1] {
		t.Fatalf("breaker transitions = %v, want [open close]", transitions)
	}
	snap := h.m.Snapshot()
	if snap.BreakerTrips != 1 || snap.Rejected == 0 {
		t.Fatalf("snapshot = %+v", snap)
	}
	if d := snap.Devices["pda"]; d.BreakerOpen {
		t.Fatal("device snapshot still reports the breaker open")
	}
}

func TestPerAttemptTimeoutIsRetriedAsUnavailable(t *testing.T) {
	h := newHarness(Policy{OpTimeout: 20 * time.Millisecond})
	if err := h.mem.Put(ctx, "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	h.flaky.HangOn(store.OpGet, 1) // first fetch never answers

	got, err := h.res.Get(ctx, "k")
	if err != nil || string(got) != "v" {
		t.Fatalf("get = %q, %v", got, err)
	}
	if calls := h.flaky.Calls(store.OpGet); calls != 2 {
		t.Fatalf("device saw %d gets, want 2 (hang + retry)", calls)
	}
}

func TestTimeoutExhaustionSurfacesAsUnavailableAndTripsBreaker(t *testing.T) {
	h := newHarness(Policy{OpTimeout: 10 * time.Millisecond, MaxAttempts: 1, BreakerThreshold: 1})
	h.flaky.HangOn(store.OpGet, 1)

	_, err := h.res.Get(ctx, "k")
	if !errors.Is(err, store.ErrUnavailable) {
		t.Fatalf("timed-out op reported %v, want ErrUnavailable", err)
	}
	if errors.Is(err, context.DeadlineExceeded) {
		t.Fatal("per-attempt timeout leaked as the caller's DeadlineExceeded")
	}
	if !h.res.BreakerOpen() {
		t.Fatal("hung device did not count against breaker health")
	}
}

func TestCallerCancellationFailsFastWithoutBlame(t *testing.T) {
	h := newHarness(Policy{BreakerThreshold: 1})
	cctx, cancel := context.WithCancel(ctx)
	cancel()

	err := h.res.Put(cctx, "k", []byte("x"))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if calls := h.flaky.Calls(store.OpPut); calls > 1 {
		t.Fatalf("canceled op was retried (%d calls)", calls)
	}
	if h.res.BreakerOpen() {
		t.Fatal("caller cancellation tripped the breaker")
	}
}

// recordClock captures every backoff sleep.
type recordClock struct{ sleeps []time.Duration }

func (c *recordClock) Sleep(d time.Duration) { c.sleeps = append(c.sleeps, d) }

func TestBackoffIsExponentialAndDeterministic(t *testing.T) {
	run := func(seed int64) []time.Duration {
		clock := &recordClock{}
		flaky := store.NewFlaky(store.NewMem(0), 1)
		flaky.FailNext(store.OpPut, -1)
		r := NewResilient("pda", flaky,
			Policy{MaxAttempts: 6, BackoffBase: 10 * time.Millisecond, BackoffMax: time.Second, Seed: seed},
			WithClock(clock))
		_ = r.Put(ctx, "k", []byte("x"))
		return clock.sleeps
	}

	a, b := run(42), run(42)
	if len(a) != 5 {
		t.Fatalf("%d sleeps, want MaxAttempts-1=5", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at sleep %d: %v vs %v", i, a[i], b[i])
		}
		floor := 10 * time.Millisecond << i
		if floor > time.Second {
			floor = time.Second
		}
		if a[i] < floor || a[i] > floor+floor/2 {
			t.Fatalf("sleep %d = %v, want in [%v, %v]", i, a[i], floor, floor+floor/2)
		}
	}
}

func TestMetricsAggregateAcrossDevices(t *testing.T) {
	m := NewMetrics()
	good := NewResilient("good", store.NewFlaky(store.NewMem(0), 1), Policy{}, WithMetrics(m))
	badFlaky := store.NewFlaky(store.NewMem(0), 1)
	badFlaky.FailNext(store.OpPut, -1)
	bad := NewResilient("bad", badFlaky, Policy{MaxAttempts: 1, BreakerThreshold: -1}, WithMetrics(m))

	if err := good.Put(ctx, "k", []byte("abcd")); err != nil {
		t.Fatal(err)
	}
	if err := bad.Put(ctx, "k", []byte("abcd")); err == nil {
		t.Fatal("put to dead device succeeded")
	}

	snap := m.Snapshot()
	if snap.Successes != 1 || snap.Failures != 1 || snap.BytesOut != 4 {
		t.Fatalf("totals = %+v", snap)
	}
	if snap.Devices["good"].Successes != 1 || snap.Devices["bad"].Failures != 1 {
		t.Fatalf("per-device = %+v", snap.Devices)
	}
	out := snap.String()
	if !strings.Contains(out, "good") || !strings.Contains(out, "bad") {
		t.Fatalf("rendered snapshot missing devices:\n%s", out)
	}
}

func TestProbeBypassesBreakerAndRecovers(t *testing.T) {
	h := newHarness(Policy{MaxAttempts: 1, BreakerThreshold: 1})
	h.flaky.FailNext(store.OpPut, -1)
	h.flaky.FailNext(store.OpStats, -1)

	if err := h.res.Put(ctx, "k", []byte("x")); err == nil {
		t.Fatal("put to dead device succeeded")
	}
	if !h.res.BreakerOpen() {
		t.Fatal("breaker not open")
	}

	// Probing a still-dead device reaches it (past the gate) and fails.
	statsBefore := h.flaky.Calls(store.OpStats)
	if err := h.res.Probe(ctx); err == nil {
		t.Fatal("probe of dead device succeeded")
	}
	if h.flaky.Calls(store.OpStats) != statsBefore+1 {
		t.Fatal("probe never reached the device")
	}
	if !h.res.BreakerOpen() {
		t.Fatal("failed probe closed the breaker")
	}

	// After recovery one probe closes the breaker.
	h.flaky.FailNext(store.OpStats, 0)
	if err := h.res.Probe(ctx); err != nil {
		t.Fatalf("probe of recovered device: %v", err)
	}
	if h.res.BreakerOpen() {
		t.Fatal("breaker still open after successful probe")
	}
}
