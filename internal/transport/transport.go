// Package transport hardens the path between the constrained device and its
// swapping neighbors. The paper's deployment target is "a myriad of small
// memory-enabled devices with wireless connectivity" — Bluetooth-class links
// that stall, drop and disappear — so a raw store.Store call is the wrong
// unit of failure: one lost frame must not abort a whole swap-out.
//
// Resilient decorates any store.Store with the three classic remedies:
//
//   - per-operation timeouts, so a hung device surfaces as a clean error
//     instead of blocking a fault-in forever;
//   - bounded retry with exponential backoff and deterministic jitter,
//     absorbing transient link loss (sleeps go through a Clock, so tests and
//     benchmarks run on virtual time);
//   - a per-device circuit breaker that trips after consecutive failed
//     operations, fails fast while open, and lets periodic probe operations
//     through to detect recovery. Breaker transitions are reported through a
//     callback so device health feeds back into the connectivity monitor and
//     the registry's selection.
//
// A shared Metrics sink aggregates attempts, retries, failures, breaker
// trips, failovers and bytes moved across every decorated device; the System
// façade exposes its Snapshot and publishes transitions on the event bus.
package transport

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	olog "objectswap/internal/obs/log"
	"objectswap/internal/store"
)

// Clock abstracts backoff sleeps; link.RealClock and link.VirtualClock
// satisfy it.
type Clock interface {
	Sleep(d time.Duration)
}

type realClock struct{}

func (realClock) Sleep(d time.Duration) { time.Sleep(d) }

// ErrBreakerOpen reports an operation rejected without touching the device
// because its circuit breaker is open. It wraps store.ErrUnavailable so
// existing reachability handling (registry skip, deferred drops) applies.
var ErrBreakerOpen = fmt.Errorf("%w: circuit breaker open", store.ErrUnavailable)

// Policy bounds the resilience behavior. The zero value means "defaults";
// see the field comments for what 0 selects.
type Policy struct {
	// OpTimeout bounds each individual attempt (0 = 10s; < 0 disables).
	OpTimeout time.Duration
	// MaxAttempts bounds tries per operation, first included (0 = 3).
	MaxAttempts int
	// BackoffBase seeds the exponential backoff between attempts (0 = 20ms).
	BackoffBase time.Duration
	// BackoffMax caps a single backoff sleep (0 = 2s).
	BackoffMax time.Duration
	// BreakerThreshold is the consecutive failed-operation count that trips
	// the breaker (0 = 5; < 0 disables the breaker).
	BreakerThreshold int
	// BreakerProbeEvery lets every Nth operation through while the breaker
	// is open, probing for recovery (0 = 4).
	BreakerProbeEvery int
	// Seed drives the deterministic backoff jitter stream.
	Seed int64
}

func (p Policy) withDefaults() Policy {
	if p.OpTimeout == 0 {
		p.OpTimeout = 10 * time.Second
	}
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 3
	}
	if p.BackoffBase <= 0 {
		p.BackoffBase = 20 * time.Millisecond
	}
	if p.BackoffMax <= 0 {
		p.BackoffMax = 2 * time.Second
	}
	if p.BreakerThreshold == 0 {
		p.BreakerThreshold = 5
	}
	if p.BreakerProbeEvery <= 0 {
		p.BreakerProbeEvery = 4
	}
	return p
}

// Option configures a Resilient decorator.
type Option func(*Resilient)

// WithClock routes backoff sleeps through clock (virtual time in tests).
func WithClock(c Clock) Option {
	return func(r *Resilient) {
		if c != nil {
			r.clock = c
		}
	}
}

// WithMetrics aggregates this device's transport counters into m.
func WithMetrics(m *Metrics) Option {
	return func(r *Resilient) { r.metrics = m }
}

// WithLogger emits structured records for retries and breaker transitions.
// A nil logger (the default) logs nothing.
func WithLogger(lg *olog.Logger) Option {
	return func(r *Resilient) { r.logger = lg }
}

// WithBreakerNotify registers a callback invoked on every breaker
// transition: open=true when the device is declared unhealthy, open=false
// when a probe succeeds and the breaker closes. The callback runs outside
// the decorator's lock.
func WithBreakerNotify(fn func(open bool)) Option {
	return func(r *Resilient) { r.onBreaker = fn }
}

// Resilient wraps one device's store with timeouts, retry and a circuit
// breaker.
type Resilient struct {
	name    string
	inner   store.Store
	pol     Policy
	clock   Clock
	metrics *Metrics
	logger  *olog.Logger

	onBreaker func(open bool)

	mu         sync.Mutex
	consecFail int
	open       bool
	rejected   int // operations rejected since the breaker opened
	rng        uint64
}

var (
	_ store.Store    = (*Resilient)(nil)
	_ store.Envelope = (*Resilient)(nil)
)

// NewResilient decorates inner, which serves the named device, with the
// policy's resilience behavior.
func NewResilient(name string, inner store.Store, pol Policy, opts ...Option) *Resilient {
	r := &Resilient{
		name:  name,
		inner: inner,
		pol:   pol.withDefaults(),
		clock: realClock{},
		rng:   uint64(pol.Seed)*6364136223846793005 + 1442695040888963407,
	}
	for _, opt := range opts {
		opt(r)
	}
	if r.metrics != nil {
		r.metrics.register(name)
	}
	return r
}

// Name returns the decorated device's name.
func (r *Resilient) Name() string { return r.name }

// Inner returns the decorated store.
func (r *Resilient) Inner() store.Store { return r.inner }

// BreakerOpen reports whether the device is currently declared unhealthy.
func (r *Resilient) BreakerOpen() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.open
}

// admit decides whether an operation may reach the device. While the breaker
// is open, every BreakerProbeEvery-th operation is admitted as a probe.
func (r *Resilient) admit() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.open {
		return true
	}
	r.rejected++
	return r.rejected%r.pol.BreakerProbeEvery == 0
}

// recordSuccess resets the failure streak and closes an open breaker.
func (r *Resilient) recordSuccess() {
	r.mu.Lock()
	r.consecFail = 0
	wasOpen := r.open
	r.open = false
	r.rejected = 0
	r.mu.Unlock()
	if wasOpen {
		r.logger.Info("breaker closed", "device", r.name)
		if r.metrics != nil {
			r.metrics.breakerState(r.name, false)
		}
		if r.onBreaker != nil {
			r.onBreaker(false)
		}
	}
}

// recordFailure advances the failure streak and trips the breaker at the
// policy threshold.
func (r *Resilient) recordFailure() {
	if r.pol.BreakerThreshold < 0 {
		return
	}
	r.mu.Lock()
	r.consecFail++
	tripped := !r.open && r.consecFail >= r.pol.BreakerThreshold
	if tripped {
		r.open = true
		r.rejected = 0
	}
	r.mu.Unlock()
	if tripped {
		r.logger.Warn("breaker open", "device", r.name,
			"consecutive_failures", r.pol.BreakerThreshold)
		if r.metrics != nil {
			r.metrics.breakerTrip(r.name)
		}
		if r.onBreaker != nil {
			r.onBreaker(true)
		}
	}
}

// backoff computes the sleep before the given retry (attempt counts from 1),
// with deterministic jitter in [0, d/2).
func (r *Resilient) backoff(attempt int) time.Duration {
	d := r.pol.BackoffBase << (attempt - 1)
	if d > r.pol.BackoffMax || d <= 0 {
		d = r.pol.BackoffMax
	}
	r.mu.Lock()
	r.rng ^= r.rng >> 12
	r.rng ^= r.rng << 25
	r.rng ^= r.rng >> 27
	draw := r.rng
	r.mu.Unlock()
	if half := int64(d / 2); half > 0 {
		d += time.Duration(int64(draw % uint64(half)))
	}
	return d
}

// retryable reports whether an error is worth another attempt: definitive
// protocol answers (missing key, full device, version-namespace collisions)
// and caller cancellations are not.
func retryable(err error) bool {
	switch {
	case errors.Is(err, store.ErrNotFound),
		errors.Is(err, store.ErrCapacity),
		errors.Is(err, store.ErrVersionedKey),
		errors.Is(err, store.ErrUnsupportedFormat),
		errors.Is(err, context.Canceled),
		errors.Is(err, context.DeadlineExceeded):
		return false
	}
	return true
}

// do runs one logical store operation through the full resilience stack.
func (r *Resilient) do(ctx context.Context, op store.Op, fn func(context.Context) error) error {
	if !r.admit() {
		if r.metrics != nil {
			r.metrics.rejected(r.name)
		}
		return fmt.Errorf("device %s: %w", r.name, ErrBreakerOpen)
	}

	start := time.Now()
	var err error
	for attempt := 1; ; attempt++ {
		if r.metrics != nil {
			r.metrics.attempt(r.name, attempt > 1)
		}
		attemptCtx, cancel := ctx, context.CancelFunc(func() {})
		if r.pol.OpTimeout > 0 {
			attemptCtx, cancel = context.WithTimeout(ctx, r.pol.OpTimeout)
		}
		err = fn(attemptCtx)
		cancel()
		if err == nil {
			r.recordSuccess()
			if r.metrics != nil {
				r.metrics.success(r.name, op, time.Since(start))
			}
			return nil
		}
		// A per-attempt timeout with the parent still live is the device's
		// failure, not the caller's cancellation: it stays retryable.
		if errors.Is(err, context.DeadlineExceeded) && ctx.Err() == nil {
			err = fmt.Errorf("%w: device %s timed out on %s: %v",
				store.ErrUnavailable, r.name, op, err)
		}
		if ctx.Err() != nil || attempt >= r.pol.MaxAttempts || !retryable(err) {
			break
		}
		r.logger.Debug("retrying", "device", r.name, "op", op,
			"attempt", attempt, "err", err)
		r.clock.Sleep(r.backoff(attempt))
	}
	if retryable(err) || errors.Is(err, context.DeadlineExceeded) {
		// Only link-shaped outcomes count against device health; a NotFound
		// answer proves the device is alive.
		r.recordFailure()
	}
	if r.metrics != nil {
		r.metrics.failure(r.name, op, time.Since(start))
	}
	return err
}

// Probe bypasses the breaker gate and issues one direct Stats round-trip to
// the device, closing an open breaker when the device answers. Regular
// operations cannot serve as recovery probes once the connectivity monitor
// has steered all traffic away from an unhealthy device, so something — a
// policy action, a reconnect notification, a periodic sweep — must call
// Probe (or the façade's ProbeDevices) to let the device back in.
func (r *Resilient) Probe(ctx context.Context) error {
	start := time.Now()
	if r.metrics != nil {
		r.metrics.attempt(r.name, false)
	}
	attemptCtx, cancel := ctx, context.CancelFunc(func() {})
	if r.pol.OpTimeout > 0 {
		attemptCtx, cancel = context.WithTimeout(ctx, r.pol.OpTimeout)
	}
	_, err := r.inner.Stats(attemptCtx)
	cancel()
	if err == nil {
		r.recordSuccess()
		if r.metrics != nil {
			r.metrics.success(r.name, store.OpStats, time.Since(start))
		}
		return nil
	}
	if errors.Is(err, context.DeadlineExceeded) && ctx.Err() == nil {
		err = fmt.Errorf("%w: device %s timed out on %s: %v",
			store.ErrUnavailable, r.name, store.OpStats, err)
	}
	if retryable(err) || errors.Is(err, context.DeadlineExceeded) {
		r.recordFailure()
	}
	if r.metrics != nil {
		r.metrics.failure(r.name, store.OpStats, time.Since(start))
	}
	return err
}

// Put ships data with retry, timeout and breaker accounting.
func (r *Resilient) Put(ctx context.Context, key string, data []byte) error {
	err := r.do(ctx, store.OpPut, func(ctx context.Context) error {
		return r.inner.Put(ctx, key, data)
	})
	if err == nil && r.metrics != nil {
		r.metrics.bytesOut(r.name, int64(len(data)))
	}
	return err
}

// PutEnvelope ships data with its wire-format envelope through the full
// resilience stack. A format the device refuses is a definitive protocol
// answer (like NotFound), never retried and never counted against the link.
func (r *Resilient) PutEnvelope(ctx context.Context, key string, data []byte, opts store.PutOpts) error {
	err := r.do(ctx, store.OpPut, func(ctx context.Context) error {
		return store.PutWith(ctx, r.inner, key, data, opts)
	})
	if err == nil && r.metrics != nil {
		r.metrics.bytesOut(r.name, int64(len(data)))
	}
	return err
}

// GetEnvelope fetches a payload and its envelope with retry, timeout and
// breaker accounting.
func (r *Resilient) GetEnvelope(ctx context.Context, key string) ([]byte, store.PutOpts, error) {
	var (
		data []byte
		opts store.PutOpts
	)
	err := r.do(ctx, store.OpGet, func(ctx context.Context) error {
		var ferr error
		data, opts, ferr = store.GetWith(ctx, r.inner, key)
		return ferr
	})
	if err != nil {
		return nil, store.PutOpts{}, err
	}
	if r.metrics != nil {
		r.metrics.bytesIn(r.name, int64(len(data)))
	}
	return data, opts, nil
}

// Get fetches a payload with retry, timeout and breaker accounting.
func (r *Resilient) Get(ctx context.Context, key string) ([]byte, error) {
	var data []byte
	err := r.do(ctx, store.OpGet, func(ctx context.Context) error {
		var ferr error
		data, ferr = r.inner.Get(ctx, key)
		return ferr
	})
	if err != nil {
		return nil, err
	}
	if r.metrics != nil {
		r.metrics.bytesIn(r.name, int64(len(data)))
	}
	return data, nil
}

// GetMulti serves a batched fetch with retry, timeout and breaker
// accounting when the wrapped store supports the extension; otherwise each
// key goes through the resilient Get individually (not-found keys omitted,
// per the store.MultiGetter contract).
func (r *Resilient) GetMulti(ctx context.Context, keys []string) (map[string][]byte, error) {
	mg, ok := r.inner.(store.MultiGetter)
	if !ok {
		out := make(map[string][]byte, len(keys))
		for _, key := range keys {
			data, err := r.Get(ctx, key)
			if err != nil {
				if errors.Is(err, store.ErrNotFound) {
					continue
				}
				return nil, err
			}
			out[key] = data
		}
		return out, nil
	}
	var got map[string][]byte
	err := r.do(ctx, store.OpGet, func(ctx context.Context) error {
		var ferr error
		got, ferr = mg.GetMulti(ctx, keys)
		return ferr
	})
	if err != nil {
		return nil, err
	}
	if r.metrics != nil {
		var n int64
		for _, data := range got {
			n += int64(len(data))
		}
		r.metrics.bytesIn(r.name, n)
	}
	return got, nil
}

// RenewLease extends a replica key's lease with retry, timeout and breaker
// accounting. Devices without lease GC report store.ErrLeaseUnsupported.
func (r *Resilient) RenewLease(ctx context.Context, key string, ttl time.Duration) error {
	l, ok := r.inner.(store.Leaser)
	if !ok {
		return fmt.Errorf("%w: device %s", store.ErrLeaseUnsupported, r.name)
	}
	return r.do(ctx, store.OpStats, func(ctx context.Context) error {
		return l.RenewLease(ctx, key, ttl)
	})
}

// Drop removes a payload with retry, timeout and breaker accounting.
func (r *Resilient) Drop(ctx context.Context, key string) error {
	return r.do(ctx, store.OpDrop, func(ctx context.Context) error {
		return r.inner.Drop(ctx, key)
	})
}

// Keys enumerates with retry, timeout and breaker accounting.
func (r *Resilient) Keys(ctx context.Context) ([]string, error) {
	var keys []string
	err := r.do(ctx, store.OpKeys, func(ctx context.Context) error {
		var ferr error
		keys, ferr = r.inner.Keys(ctx)
		return ferr
	})
	if err != nil {
		return nil, err
	}
	return keys, nil
}

// Stats reports occupancy with retry, timeout and breaker accounting.
func (r *Resilient) Stats(ctx context.Context) (store.Stats, error) {
	var st store.Stats
	err := r.do(ctx, store.OpStats, func(ctx context.Context) error {
		var ferr error
		st, ferr = r.inner.Stats(ctx)
		return ferr
	})
	if err != nil {
		return store.Stats{}, err
	}
	return st, nil
}
