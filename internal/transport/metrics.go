package transport

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"objectswap/internal/obs"
	"objectswap/internal/store"
)

// Metrics aggregates transport activity across every decorated device. One
// Metrics instance is shared by all Resilient decorators of a System; the
// façade exposes its Snapshot.
//
// Metrics is a thin facade over the observability registry: every counter
// lives as a per-device obs series (and so appears in WriteMetrics scrapes),
// and Snapshot reads those series back. Counts survive the float64 round-trip
// exactly — integers are exact in a float64 up to 2^53.
type Metrics struct {
	reg *obs.Registry

	attempts  *obs.CounterVec
	retries   *obs.CounterVec
	successes *obs.CounterVec
	failures  *obs.CounterVec
	rejectedC *obs.CounterVec
	trips     *obs.CounterVec
	failovers *obs.CounterVec
	bytes     *obs.CounterVec // device, direction
	ops       *obs.CounterVec // device, op
	opSeconds *obs.HistogramVec
	breaker   *obs.GaugeVec // 1 = open

	mu      sync.Mutex
	devices map[string]bool
}

// NewMetrics returns an empty aggregate sink backed by a private registry.
func NewMetrics() *Metrics {
	return NewMetricsWith(nil)
}

// NewMetricsWith returns a sink whose instruments register in r (nil = a
// private registry), so transport counters appear in the same metrics page as
// the rest of the middleware.
func NewMetricsWith(r *obs.Registry) *Metrics {
	if r == nil {
		r = obs.NewRegistry(nil)
	}
	return &Metrics{
		reg: r,
		attempts: r.CounterVec("objectswap_transport_attempts_total",
			"Store operations attempted (retries included).", "device"),
		retries: r.CounterVec("objectswap_transport_retries_total",
			"Attempts beyond the first per operation.", "device"),
		successes: r.CounterVec("objectswap_transport_successes_total",
			"Operations that completed successfully.", "device"),
		failures: r.CounterVec("objectswap_transport_failures_total",
			"Operations that exhausted their retry budget.", "device"),
		rejectedC: r.CounterVec("objectswap_transport_rejected_total",
			"Operations fast-failed while the circuit breaker was open.", "device"),
		trips: r.CounterVec("objectswap_transport_breaker_trips_total",
			"Circuit breaker open transitions.", "device"),
		failovers: r.CounterVec("objectswap_transport_failovers_total",
			"Swap-out shipments re-routed off a failed device.", "device"),
		bytes: r.CounterVec("objectswap_transport_bytes_total",
			"Payload bytes moved, by direction.", "device", "direction"),
		ops: r.CounterVec("objectswap_transport_ops_total",
			"Completed operations by kind.", "device", "op"),
		opSeconds: r.HistogramVec("objectswap_transport_op_seconds",
			"Wall time of completed operations (retries and backoff included).",
			nil, "device"),
		breaker: r.GaugeVec("objectswap_transport_breaker_open",
			"Circuit breaker state (1 = open).", "device"),
		devices: make(map[string]bool),
	}
}

// Registry returns the registry backing this sink.
func (m *Metrics) Registry() *obs.Registry { return m.reg }

// track remembers a device name so Snapshot can enumerate it, and forces its
// zero-valued series into existence.
func (m *Metrics) track(name string) {
	m.mu.Lock()
	known := m.devices[name]
	m.devices[name] = true
	m.mu.Unlock()
	if !known {
		m.attempts.With(name)
		m.retries.With(name)
		m.successes.With(name)
		m.failures.With(name)
		m.rejectedC.With(name)
		m.trips.With(name)
		m.failovers.With(name)
		m.bytes.With(name, "out")
		m.bytes.With(name, "in")
		m.opSeconds.With(name)
		m.breaker.With(name)
	}
}

func (m *Metrics) register(name string) { m.track(name) }

func (m *Metrics) attempt(name string, retry bool) {
	m.track(name)
	m.attempts.With(name).Inc()
	if retry {
		m.retries.With(name).Inc()
	}
}

func (m *Metrics) success(name string, op store.Op, d time.Duration) {
	m.track(name)
	m.successes.With(name).Inc()
	m.ops.With(name, op.String()).Inc()
	m.opSeconds.With(name).Observe(d.Seconds())
}

func (m *Metrics) failure(name string, op store.Op, d time.Duration) {
	m.track(name)
	m.failures.With(name).Inc()
	m.ops.With(name, op.String()).Inc()
	m.opSeconds.With(name).Observe(d.Seconds())
}

func (m *Metrics) rejected(name string) {
	m.track(name)
	m.rejectedC.With(name).Inc()
}

func (m *Metrics) breakerTrip(name string) {
	m.track(name)
	m.trips.With(name).Inc()
	m.breaker.With(name).Set(1)
}

func (m *Metrics) breakerState(name string, open bool) {
	m.track(name)
	v := 0.0
	if open {
		v = 1
	}
	m.breaker.With(name).Set(v)
}

// AddFailover records a swap-out shipment that was re-routed off the named
// failed device.
func (m *Metrics) AddFailover(name string) {
	m.track(name)
	m.failovers.With(name).Inc()
}

func (m *Metrics) bytesOut(name string, n int64) {
	m.track(name)
	m.bytes.With(name, "out").Add(float64(n))
}

func (m *Metrics) bytesIn(name string, n int64) {
	m.track(name)
	m.bytes.With(name, "in").Add(float64(n))
}

// DeviceSnapshot is one device's transport counters at a point in time.
type DeviceSnapshot struct {
	Attempts     int64
	Retries      int64
	Successes    int64
	Failures     int64
	Rejected     int64
	BreakerTrips int64
	BreakerOpen  bool
	Failovers    int64
	BytesOut     int64
	BytesIn      int64
	// MeanOpTime averages the wall time of completed operations (retries and
	// backoff included).
	MeanOpTime time.Duration
}

// Snapshot is the aggregate transport view the façade exposes and publishes.
type Snapshot struct {
	Attempts     int64
	Retries      int64
	Successes    int64
	Failures     int64
	Rejected     int64
	BreakerTrips int64
	Failovers    int64
	BytesOut     int64
	BytesIn      int64
	MeanOpTime   time.Duration
	Devices      map[string]DeviceSnapshot
}

func (m *Metrics) deviceSnapshot(name string) (DeviceSnapshot, time.Duration, int64) {
	count := func(v *obs.CounterVec, labels ...string) int64 {
		return int64(v.With(labels...).Value())
	}
	s := DeviceSnapshot{
		Attempts:     count(m.attempts, name),
		Retries:      count(m.retries, name),
		Successes:    count(m.successes, name),
		Failures:     count(m.failures, name),
		Rejected:     count(m.rejectedC, name),
		BreakerTrips: count(m.trips, name),
		BreakerOpen:  m.breaker.With(name).Value() != 0,
		Failovers:    count(m.failovers, name),
		BytesOut:     count(m.bytes, name, "out"),
		BytesIn:      count(m.bytes, name, "in"),
	}
	hs := m.opSeconds.With(name).Snapshot()
	opTime := time.Duration(hs.Sum * float64(time.Second))
	if hs.Count > 0 {
		s.MeanOpTime = opTime / time.Duration(hs.Count)
	}
	return s, opTime, int64(hs.Count)
}

// Snapshot copies the current counters. Totals aggregate the per-device
// series.
func (m *Metrics) Snapshot() Snapshot {
	m.mu.Lock()
	names := make([]string, 0, len(m.devices))
	for n := range m.devices {
		names = append(names, n)
	}
	m.mu.Unlock()

	s := Snapshot{Devices: make(map[string]DeviceSnapshot, len(names))}
	var opTime time.Duration
	var ops int64
	for _, n := range names {
		d, t, c := m.deviceSnapshot(n)
		s.Devices[n] = d
		s.Attempts += d.Attempts
		s.Retries += d.Retries
		s.Successes += d.Successes
		s.Failures += d.Failures
		s.Rejected += d.Rejected
		s.BreakerTrips += d.BreakerTrips
		s.Failovers += d.Failovers
		s.BytesOut += d.BytesOut
		s.BytesIn += d.BytesIn
		opTime += t
		ops += c
	}
	if ops > 0 {
		s.MeanOpTime = opTime / time.Duration(ops)
	}
	return s
}

// String renders the snapshot for reports.
func (s Snapshot) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "transport: %d attempts (%d retries), %d ok / %d failed, %d fast-rejected\n",
		s.Attempts, s.Retries, s.Successes, s.Failures, s.Rejected)
	fmt.Fprintf(&b, "transport: %d breaker trips, %d failovers, %d B out / %d B in, mean op %v\n",
		s.BreakerTrips, s.Failovers, s.BytesOut, s.BytesIn, s.MeanOpTime)
	names := make([]string, 0, len(s.Devices))
	for n := range s.Devices {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		d := s.Devices[n]
		state := "closed"
		if d.BreakerOpen {
			state = "OPEN"
		}
		fmt.Fprintf(&b, "  %-16s %4d attempts %3d retries %3d fail  breaker %s (%d trips)  %d/%d B out/in\n",
			n, d.Attempts, d.Retries, d.Failures, state, d.BreakerTrips, d.BytesOut, d.BytesIn)
	}
	return b.String()
}
