package transport

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"objectswap/internal/store"
)

// Metrics aggregates transport activity across every decorated device. One
// Metrics instance is shared by all Resilient decorators of a System; the
// façade exposes its Snapshot.
type Metrics struct {
	mu      sync.Mutex
	total   counters
	devices map[string]*counters
}

type counters struct {
	Attempts     int64
	Retries      int64
	Successes    int64
	Failures     int64
	Rejected     int64 // fast-failed while the breaker was open
	BreakerTrips int64
	Failovers    int64
	BytesOut     int64
	BytesIn      int64
	OpTime       time.Duration
	Ops          int64
	BreakerOpen  bool
	perOp        map[store.Op]int64
}

// NewMetrics returns an empty aggregate sink.
func NewMetrics() *Metrics {
	return &Metrics{devices: make(map[string]*counters)}
}

func (m *Metrics) device(name string) *counters {
	c := m.devices[name]
	if c == nil {
		c = &counters{perOp: make(map[store.Op]int64)}
		m.devices[name] = c
	}
	return c
}

func (m *Metrics) register(name string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.device(name)
}

func (m *Metrics) attempt(name string, retry bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	c := m.device(name)
	c.Attempts++
	m.total.Attempts++
	if retry {
		c.Retries++
		m.total.Retries++
	}
}

func (m *Metrics) success(name string, op store.Op, d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	c := m.device(name)
	c.Successes++
	c.Ops++
	c.OpTime += d
	c.perOp[op]++
	m.total.Successes++
	m.total.Ops++
	m.total.OpTime += d
}

func (m *Metrics) failure(name string, op store.Op, d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	c := m.device(name)
	c.Failures++
	c.Ops++
	c.OpTime += d
	c.perOp[op]++
	m.total.Failures++
	m.total.Ops++
	m.total.OpTime += d
}

func (m *Metrics) rejected(name string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.device(name).Rejected++
	m.total.Rejected++
}

func (m *Metrics) breakerTrip(name string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	c := m.device(name)
	c.BreakerTrips++
	c.BreakerOpen = true
	m.total.BreakerTrips++
}

func (m *Metrics) breakerState(name string, open bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.device(name).BreakerOpen = open
}

// AddFailover records a swap-out shipment that was re-routed off the named
// failed device.
func (m *Metrics) AddFailover(name string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.device(name).Failovers++
	m.total.Failovers++
}

func (m *Metrics) bytesOut(name string, n int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.device(name).BytesOut += n
	m.total.BytesOut += n
}

func (m *Metrics) bytesIn(name string, n int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.device(name).BytesIn += n
	m.total.BytesIn += n
}

// DeviceSnapshot is one device's transport counters at a point in time.
type DeviceSnapshot struct {
	Attempts     int64
	Retries      int64
	Successes    int64
	Failures     int64
	Rejected     int64
	BreakerTrips int64
	BreakerOpen  bool
	Failovers    int64
	BytesOut     int64
	BytesIn      int64
	// MeanOpTime averages the wall time of completed operations (retries and
	// backoff included).
	MeanOpTime time.Duration
}

// Snapshot is the aggregate transport view the façade exposes and publishes.
type Snapshot struct {
	Attempts     int64
	Retries      int64
	Successes    int64
	Failures     int64
	Rejected     int64
	BreakerTrips int64
	Failovers    int64
	BytesOut     int64
	BytesIn      int64
	MeanOpTime   time.Duration
	Devices      map[string]DeviceSnapshot
}

func (c *counters) snapshot() DeviceSnapshot {
	s := DeviceSnapshot{
		Attempts:     c.Attempts,
		Retries:      c.Retries,
		Successes:    c.Successes,
		Failures:     c.Failures,
		Rejected:     c.Rejected,
		BreakerTrips: c.BreakerTrips,
		BreakerOpen:  c.BreakerOpen,
		Failovers:    c.Failovers,
		BytesOut:     c.BytesOut,
		BytesIn:      c.BytesIn,
	}
	if c.Ops > 0 {
		s.MeanOpTime = c.OpTime / time.Duration(c.Ops)
	}
	return s
}

// Snapshot copies the current counters.
func (m *Metrics) Snapshot() Snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := Snapshot{
		Attempts:     m.total.Attempts,
		Retries:      m.total.Retries,
		Successes:    m.total.Successes,
		Failures:     m.total.Failures,
		Rejected:     m.total.Rejected,
		BreakerTrips: m.total.BreakerTrips,
		Failovers:    m.total.Failovers,
		BytesOut:     m.total.BytesOut,
		BytesIn:      m.total.BytesIn,
		Devices:      make(map[string]DeviceSnapshot, len(m.devices)),
	}
	if m.total.Ops > 0 {
		s.MeanOpTime = m.total.OpTime / time.Duration(m.total.Ops)
	}
	for name, c := range m.devices {
		s.Devices[name] = c.snapshot()
	}
	return s
}

// String renders the snapshot for reports.
func (s Snapshot) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "transport: %d attempts (%d retries), %d ok / %d failed, %d fast-rejected\n",
		s.Attempts, s.Retries, s.Successes, s.Failures, s.Rejected)
	fmt.Fprintf(&b, "transport: %d breaker trips, %d failovers, %d B out / %d B in, mean op %v\n",
		s.BreakerTrips, s.Failovers, s.BytesOut, s.BytesIn, s.MeanOpTime)
	names := make([]string, 0, len(s.Devices))
	for n := range s.Devices {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		d := s.Devices[n]
		state := "closed"
		if d.BreakerOpen {
			state = "OPEN"
		}
		fmt.Fprintf(&b, "  %-16s %4d attempts %3d retries %3d fail  breaker %s (%d trips)  %d/%d B out/in\n",
			n, d.Attempts, d.Retries, d.Failures, state, d.BreakerTrips, d.BytesOut, d.BytesIn)
	}
	return b.String()
}
