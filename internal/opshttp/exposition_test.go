package opshttp

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"objectswap/internal/obs"
	"objectswap/internal/telemetry"
)

// TestMetricsPageParses is the check.sh exposition gate: it starts a real
// ops server whose registry carries every family kind (counters, gauges,
// histograms, vectors with adversarial label values, telemetry families),
// scrapes /metrics over HTTP, and validates the page line by line with the
// self-contained parser below. A page that a strict Prometheus scraper
// would reject must fail here.
func TestMetricsPageParses(t *testing.T) {
	clock := obs.NewVirtualClock(time.Unix(0, 0))
	reg := obs.NewRegistry(clock)
	reg.Counter("objectswap_parse_total", "A counter.").Add(3)
	reg.Gauge("objectswap_parse_gauge", "A gauge with a\nnewline in help.").Set(-2.5)
	reg.HistogramVec("objectswap_parse_seconds", "A histogram vec.", nil, "op").
		With("swap_out").Observe(0.125)
	labeled := reg.GaugeVec("objectswap_parse_labels", "Adversarial label values.", "val")
	labeled.With(`quote"and back\slash`).Set(1)
	labeled.With("tab\tand\nnewline").Set(2)

	tr := telemetry.New(reg, telemetry.Options{})
	tr.Touch(1, true)
	tr.RecordSwap("swap_out", 1, "explicit", 0.25, 64)

	srv, err := Start("127.0.0.1:0", NewHandler(Options{Metrics: reg, Telemetry: tr}))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	resp, err := http.Get(srv.URL() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}

	series, err := parseExposition(strings.NewReader(string(body)))
	if err != nil {
		t.Fatalf("exposition parse: %v\npage:\n%s", err, body)
	}
	for _, name := range []string{
		"objectswap_parse_total",
		"objectswap_parse_gauge",
		"objectswap_parse_seconds_bucket",
		"objectswap_parse_seconds_count",
		"objectswap_cluster_heat",
		"objectswap_thrash_score",
		"objectswap_fault_seconds_count",
		"objectswap_wss_clusters",
	} {
		if series[name] == 0 {
			t.Fatalf("no parsed series for %s; page:\n%s", name, body)
		}
	}
	// The adversarial label values must round-trip through the escaper.
	if series["objectswap_parse_labels"] != 2 {
		t.Fatalf("parse_labels series = %d, want 2", series["objectswap_parse_labels"])
	}
}

// parseExposition is a deliberately strict, self-contained parser for the
// Prometheus text exposition format (version 0.0.4) subset the registry
// emits. It returns the number of sample lines per metric name and fails on
// anything malformed: unknown escapes in label values, unquoted values,
// unparsable numbers, or junk after a sample.
func parseExposition(r io.Reader) (map[string]int, error) {
	series := make(map[string]int)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			if len(strings.Fields(line)) < 4 {
				return nil, fmt.Errorf("line %d: truncated comment %q", lineNo, line)
			}
			continue
		}
		if strings.HasPrefix(line, "#") {
			return nil, fmt.Errorf("line %d: unknown comment %q", lineNo, line)
		}
		name, rest, err := parseName(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %v", lineNo, err)
		}
		if strings.HasPrefix(rest, "{") {
			rest, err = parseLabels(rest)
			if err != nil {
				return nil, fmt.Errorf("line %d: %v", lineNo, err)
			}
		}
		val := strings.TrimPrefix(rest, " ")
		if val == rest {
			return nil, fmt.Errorf("line %d: missing space before value in %q", lineNo, line)
		}
		if val != "+Inf" && val != "-Inf" && val != "NaN" {
			if _, err := strconv.ParseFloat(val, 64); err != nil {
				return nil, fmt.Errorf("line %d: bad value %q: %v", lineNo, val, err)
			}
		}
		series[name]++
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return series, nil
}

func parseName(line string) (name, rest string, err error) {
	i := 0
	for i < len(line) {
		c := line[i]
		if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' || c == ':' ||
			(i > 0 && c >= '0' && c <= '9') {
			i++
			continue
		}
		break
	}
	if i == 0 {
		return "", "", fmt.Errorf("no metric name in %q", line)
	}
	return line[:i], line[i:], nil
}

// parseLabels consumes a {name="value",...} block, enforcing that label
// values only use the three legal escapes: \\, \" and \n.
func parseLabels(s string) (rest string, err error) {
	s = s[1:] // consume '{'
	for {
		eq := strings.IndexByte(s, '=')
		if eq <= 0 {
			return "", fmt.Errorf("label without name=value in %q", s)
		}
		s = s[eq+1:]
		if len(s) == 0 || s[0] != '"' {
			return "", fmt.Errorf("unquoted label value at %q", s)
		}
		s = s[1:]
		for {
			if len(s) == 0 {
				return "", fmt.Errorf("unterminated label value")
			}
			switch s[0] {
			case '\\':
				if len(s) < 2 {
					return "", fmt.Errorf("dangling backslash")
				}
				if c := s[1]; c != '\\' && c != '"' && c != 'n' {
					return "", fmt.Errorf("illegal escape \\%c in label value", c)
				}
				s = s[2:]
				continue
			case '"':
				s = s[1:]
			default:
				s = s[1:]
				continue
			}
			break
		}
		if len(s) == 0 {
			return "", fmt.Errorf("unterminated label block")
		}
		switch s[0] {
		case ',':
			s = s[1:]
			continue
		case '}':
			return s[1:], nil
		default:
			return "", fmt.Errorf("junk %q after label value", s)
		}
	}
}

// The telemetry endpoints render well-formed JSON with ranked heat and a
// windowed WSS series, and reject malformed windows.
func TestHeatAndWSSEndpoints(t *testing.T) {
	clock := obs.NewVirtualClock(time.Unix(0, 0))
	reg := obs.NewRegistry(clock)
	tr := telemetry.New(reg, telemetry.Options{})
	tr.SetSizeOf(func(uint32) int64 { return 128 })
	for i := 0; i < 5; i++ {
		tr.Touch(2, true)
	}
	tr.Touch(9, false)
	h := NewHandler(Options{Telemetry: tr, Checks: []Check{
		{Name: "thrash", Probe: func(context.Context) error { return tr.HealthCheck() }},
	}})

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/heat?n=1", nil))
	var heat struct {
		Hot         int                     `json:"hot"`
		Cold        int                     `json:"cold"`
		ThrashScore float64                 `json:"thrash_score"`
		Degraded    bool                    `json:"degraded"`
		Clusters    []telemetry.ClusterHeat `json:"clusters"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &heat); err != nil {
		t.Fatalf("heat body: %v\n%s", err, rec.Body.String())
	}
	if rec.Code != http.StatusOK || len(heat.Clusters) != 1 || heat.Clusters[0].Cluster != 2 {
		t.Fatalf("heat: code %d body %+v, want top-ranked cluster 2", rec.Code, heat)
	}
	if heat.Clusters[0].Class != telemetry.ClassHot || heat.Hot != 1 {
		t.Fatalf("heat class: %+v", heat)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/wss?window=30s", nil))
	var wss struct {
		WindowSeconds float64               `json:"window_seconds"`
		Clusters      int                   `json:"clusters"`
		Bytes         int64                 `json:"bytes"`
		Samples       []telemetry.WSSSample `json:"samples"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &wss); err != nil {
		t.Fatalf("wss body: %v\n%s", err, rec.Body.String())
	}
	if wss.WindowSeconds != 30 || wss.Clusters != 2 || wss.Bytes != 256 || len(wss.Samples) == 0 {
		t.Fatalf("wss: %+v, want 2 clusters / 256 bytes over 30s", wss)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/wss?window=bogus", nil))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("bogus window: code %d, want 400", rec.Code)
	}
}
