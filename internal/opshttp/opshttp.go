// Package opshttp is the middleware's operator-facing HTTP surface: the
// Prometheus exposition, structured health checks, flight-recorder dumps and
// pprof, mounted on one mux so a single -ops :PORT flag makes an obiswap or
// swapstore process operable.
//
// Endpoints:
//
//	GET /metrics        Prometheus text exposition (obs.Registry)
//	GET /healthz        per-check JSON; 200 when every check passes, 503
//	                    otherwise ({"status":"ok|degraded","checks":[...]})
//	GET /debug/traces   flight-recorder span dump; ?n= limits, ?slowest=N
//	                    orders by duration, ?errors=N filters failed spans
//	GET /debug/events   flight-recorder bus-event dump; ?n= limits
//	GET /debug/heat     ranked cluster heat snapshot (telemetry); ?n= limits
//	GET /debug/wss      working-set time series (telemetry); ?window=30s
//	GET /debug/prefetch fault-engine snapshot: coalescing/batching counters,
//	                    prefetch accuracy and inventory; ?cluster=N&k=8 adds
//	                    that cluster's current neighbor ranking
//	GET /debug/pprof/…  net/http/pprof (unless disabled)
package opshttp

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"objectswap/internal/fault"
	"objectswap/internal/obs"
	olog "objectswap/internal/obs/log"
	"objectswap/internal/telemetry"
)

// Check is one named health probe. Probe returns nil when the subsystem is
// healthy; the error text is surfaced verbatim in the /healthz JSON.
type Check struct {
	Name  string
	Probe func(ctx context.Context) error
}

// Options configures the ops handler. Every field is optional: omitted
// pieces simply unmount their endpoints.
type Options struct {
	// Metrics serves GET /metrics from this registry.
	Metrics *obs.Registry
	// Recorder serves GET /debug/traces and /debug/events from this flight
	// recorder.
	Recorder *obs.Recorder
	// Checks are evaluated, in order, on GET /healthz.
	Checks []Check
	// Logger records one structured line per ops request (nil logs nothing).
	Logger *olog.Logger
	// CheckTimeout bounds each health probe (0 = 2s).
	CheckTimeout time.Duration
	// DisablePprof unmounts /debug/pprof.
	DisablePprof bool
	// Telemetry serves GET /debug/heat and /debug/wss from the access
	// telemetry plane.
	Telemetry *telemetry.Tracker
	// Prefetch serves GET /debug/prefetch from the asynchronous fault
	// engine (coalescing and batching counters, prefetch accuracy, the
	// current inventory and on-demand neighbor rankings).
	Prefetch *fault.Engine
}

// CheckResult is one health probe's outcome in the /healthz JSON.
type CheckResult struct {
	Name  string `json:"name"`
	OK    bool   `json:"ok"`
	Error string `json:"error,omitempty"`
}

// HealthResponse is the /healthz body.
type HealthResponse struct {
	Status string        `json:"status"` // "ok" or "degraded"
	Checks []CheckResult `json:"checks"`
}

// NewHandler builds the ops mux.
func NewHandler(o Options) http.Handler {
	mux := http.NewServeMux()
	if o.Metrics != nil {
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			_ = o.Metrics.WriteMetrics(w)
		})
	}
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		serveHealth(w, r, o)
	})
	if o.Recorder != nil {
		mux.HandleFunc("/debug/traces", func(w http.ResponseWriter, r *http.Request) {
			serveTraces(w, r, o.Recorder)
		})
		mux.HandleFunc("/debug/events", func(w http.ResponseWriter, r *http.Request) {
			serveEvents(w, r, o.Recorder)
		})
	}
	if o.Telemetry != nil {
		mux.HandleFunc("/debug/heat", func(w http.ResponseWriter, r *http.Request) {
			serveHeat(w, r, o.Telemetry)
		})
		mux.HandleFunc("/debug/wss", func(w http.ResponseWriter, r *http.Request) {
			serveWSS(w, r, o.Telemetry)
		})
	}
	if o.Prefetch != nil {
		mux.HandleFunc("/debug/prefetch", func(w http.ResponseWriter, r *http.Request) {
			servePrefetch(w, r, o.Prefetch)
		})
	}
	if !o.DisablePprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	if o.Logger == nil {
		return mux
	}
	return logRequests(o.Logger, mux)
}

// logRequests emits one structured line per request.
func logRequests(lg *olog.Logger, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(sw, r)
		lg.Debug("ops request", "method", r.Method, "path", r.URL.Path,
			"status", sw.status)
	})
}

type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func serveHealth(w http.ResponseWriter, r *http.Request, o Options) {
	timeout := o.CheckTimeout
	if timeout <= 0 {
		timeout = 2 * time.Second
	}
	resp := HealthResponse{Status: "ok", Checks: make([]CheckResult, 0, len(o.Checks))}
	for _, c := range o.Checks {
		ctx, cancel := context.WithTimeout(r.Context(), timeout)
		err := runProbe(ctx, c)
		cancel()
		res := CheckResult{Name: c.Name, OK: err == nil}
		if err != nil {
			res.Error = err.Error()
			resp.Status = "degraded"
		}
		resp.Checks = append(resp.Checks, res)
	}
	code := http.StatusOK
	if resp.Status != "ok" {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, resp)
}

// runProbe shields the handler from a panicking check: a broken probe reports
// as failed instead of killing the ops server.
func runProbe(ctx context.Context, c Check) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("check panicked: %v", r)
		}
	}()
	if c.Probe == nil {
		return fmt.Errorf("check %q has no probe", c.Name)
	}
	return c.Probe(ctx)
}

func serveTraces(w http.ResponseWriter, r *http.Request, rec *obs.Recorder) {
	q := r.URL.Query()
	var spans []obs.SpanRecord
	switch {
	case q.Get("slowest") != "":
		spans = rec.Slowest(intParam(q.Get("slowest")))
	case q.Get("errors") != "":
		spans = rec.RecentErrors(intParam(q.Get("errors")))
	default:
		spans = rec.Spans()
		if n := intParam(q.Get("n")); n > 0 && n < len(spans) {
			spans = spans[:n]
		}
	}
	if spans == nil {
		spans = []obs.SpanRecord{}
	}
	total, _ := rec.Totals()
	writeJSON(w, http.StatusOK, struct {
		SpansTotal uint64           `json:"spans_total"`
		Spans      []obs.SpanRecord `json:"spans"`
	}{total, spans})
}

func serveEvents(w http.ResponseWriter, r *http.Request, rec *obs.Recorder) {
	events := rec.Events()
	if n := intParam(r.URL.Query().Get("n")); n > 0 && n < len(events) {
		events = events[:n]
	}
	if events == nil {
		events = []obs.EventRecord{}
	}
	_, total := rec.Totals()
	writeJSON(w, http.StatusOK, struct {
		EventsTotal uint64            `json:"events_total"`
		Events      []obs.EventRecord `json:"events"`
	}{total, events})
}

// serveHeat renders the ranked cluster heat snapshot: hottest first, with
// per-class totals and the thrash state. ?n= limits the ranking.
func serveHeat(w http.ResponseWriter, r *http.Request, t *telemetry.Tracker) {
	clusters := t.HeatSnapshot()
	if n := intParam(r.URL.Query().Get("n")); n > 0 && n < len(clusters) {
		clusters = clusters[:n]
	}
	if clusters == nil {
		clusters = []telemetry.ClusterHeat{}
	}
	hot, warm, cold := t.Counts()
	score, degraded := t.ThrashState()
	writeJSON(w, http.StatusOK, struct {
		Hot         int                     `json:"hot"`
		Warm        int                     `json:"warm"`
		Cold        int                     `json:"cold"`
		ThrashScore float64                 `json:"thrash_score"`
		Degraded    bool                    `json:"degraded"`
		Clusters    []telemetry.ClusterHeat `json:"clusters"`
	}{hot, warm, cold, score, degraded, clusters})
}

// serveWSS renders the working-set estimate: the windowed aggregate plus the
// per-interval time series (paper Fig. 5 shape). ?window= accepts a Go
// duration ("30s", "5m"); absent or invalid selects the tracker default.
func serveWSS(w http.ResponseWriter, r *http.Request, t *telemetry.Tracker) {
	window := time.Duration(0)
	if s := r.URL.Query().Get("window"); s != "" {
		if d, err := time.ParseDuration(s); err == nil && d > 0 {
			window = d
		} else {
			writeJSON(w, http.StatusBadRequest, struct {
				Error string `json:"error"`
			}{fmt.Sprintf("bad window %q: want a Go duration like 30s", s)})
			return
		}
	}
	if window <= 0 {
		window = t.Window()
	}
	clusters, bytes := t.WSS(window)
	samples := t.WSSSeries(window)
	if samples == nil {
		samples = []telemetry.WSSSample{}
	}
	writeJSON(w, http.StatusOK, struct {
		WindowSeconds float64               `json:"window_seconds"`
		Clusters      int                   `json:"clusters"`
		Bytes         int64                 `json:"bytes"`
		Samples       []telemetry.WSSSample `json:"samples"`
	}{window.Seconds(), clusters, bytes, samples})
}

// servePrefetch renders the fault engine's snapshot — coalesced-waiter and
// donor-batching counters, prefetch accuracy/waste and the current
// prefetched-but-untouched inventory. With ?cluster=N (and optional ?k=,
// default 8) the response adds that cluster's live neighbor ranking, the
// order the prefetcher would speculate in right now.
func servePrefetch(w http.ResponseWriter, r *http.Request, e *fault.Engine) {
	snap := e.Snapshot()
	resp := struct {
		fault.Snapshot
		Accuracy    float64   `json:"accuracy"`
		RankCluster *uint32   `json:"rank_cluster,omitempty"`
		Ranking     *[]uint32 `json:"ranking,omitempty"`
	}{Snapshot: snap, Accuracy: snap.Accuracy()}
	if s := r.URL.Query().Get("cluster"); s != "" {
		id, err := strconv.ParseUint(s, 10, 32)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, struct {
				Error string `json:"error"`
			}{fmt.Sprintf("bad cluster %q: want a cluster id", s)})
			return
		}
		k := intParam(r.URL.Query().Get("k"))
		if k <= 0 {
			k = 8
		}
		cluster := uint32(id)
		resp.RankCluster = &cluster
		ranking := e.Rank(cluster, k)
		if ranking == nil {
			ranking = []uint32{}
		}
		resp.Ranking = &ranking
	}
	writeJSON(w, http.StatusOK, resp)
}

// intParam parses a query count ("" or junk yields 0 = unlimited).
func intParam(s string) int {
	n, _ := strconv.Atoi(s)
	if n < 0 {
		n = 0
	}
	return n
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// Server is a running ops listener.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Start serves h on addr (e.g. ":9982", "127.0.0.1:0") and returns once the
// listener is bound, so callers can read Addr immediately.
func Start(addr string, h http.Handler) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("opshttp: listen %s: %w", addr, err)
	}
	s := &Server{ln: ln, srv: &http.Server{Handler: h}}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr returns the bound listen address (resolving ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// URL returns the server's base URL.
func (s *Server) URL() string { return "http://" + s.Addr() }

// Close shuts the listener down, waiting briefly for in-flight requests.
func (s *Server) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	return s.srv.Shutdown(ctx)
}
