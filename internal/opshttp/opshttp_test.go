package opshttp

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"objectswap/internal/fault"
	"objectswap/internal/obs"
	"objectswap/internal/telemetry"
)

// TestSmoke starts a real listener on :0 and asserts 200 on /metrics and
// /healthz — the check.sh gate for the ops surface.
func TestSmoke(t *testing.T) {
	reg := obs.NewRegistry(nil)
	reg.Counter("objectswap_smoke_total", "Smoke counter.").Inc()
	engine := fault.New(fault.Config{
		PrefetchDepth: 2,
		Neighbors:     func(uint32, int) []uint32 { return []uint32{4, 2} },
	})
	defer engine.Stop()
	srv, err := Start("127.0.0.1:0", NewHandler(Options{
		Metrics:   reg,
		Recorder:  obs.NewRecorder(0, 0),
		Telemetry: telemetry.New(reg, telemetry.Options{}),
		Prefetch:  engine,
		Checks:    []Check{{Name: "always", Probe: func(context.Context) error { return nil }}},
	}))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	for _, path := range []string{"/metrics", "/healthz", "/debug/traces", "/debug/events",
		"/debug/heat", "/debug/wss", "/debug/prefetch", "/debug/prefetch?cluster=1&k=2"} {
		resp, err := http.Get(srv.URL() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d, body %s", path, resp.StatusCode, body)
		}
		if path == "/metrics" && !strings.Contains(string(body), "objectswap_smoke_total 1") {
			t.Fatalf("/metrics missing counter:\n%s", body)
		}
	}
}

func TestHealthzDegraded(t *testing.T) {
	broken := errors.New("breaker open: neighbor")
	failing := false
	h := NewHandler(Options{Checks: []Check{
		{Name: "heap", Probe: func(context.Context) error { return nil }},
		{Name: "breakers", Probe: func(context.Context) error {
			if failing {
				return broken
			}
			return nil
		}},
	}})

	get := func() (int, HealthResponse) {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
		var hr HealthResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &hr); err != nil {
			t.Fatalf("healthz body: %v\n%s", err, rec.Body.String())
		}
		return rec.Code, hr
	}

	if code, hr := get(); code != http.StatusOK || hr.Status != "ok" {
		t.Fatalf("healthy: code %d, %+v", code, hr)
	}
	failing = true
	code, hr := get()
	if code != http.StatusServiceUnavailable || hr.Status != "degraded" {
		t.Fatalf("degraded: code %d, %+v", code, hr)
	}
	if len(hr.Checks) != 2 || hr.Checks[0].Name != "heap" || !hr.Checks[0].OK ||
		hr.Checks[1].Name != "breakers" || hr.Checks[1].OK ||
		hr.Checks[1].Error != broken.Error() {
		t.Fatalf("checks: %+v", hr.Checks)
	}
	failing = false
	if code, hr := get(); code != http.StatusOK || hr.Status != "ok" {
		t.Fatalf("recovered: code %d, %+v", code, hr)
	}
}

func TestHealthzPanickingCheck(t *testing.T) {
	h := NewHandler(Options{Checks: []Check{
		{Name: "bad", Probe: func(context.Context) error { panic("boom") }},
	}})
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("code %d", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "check panicked: boom") {
		t.Fatalf("body %s", rec.Body.String())
	}
}

func TestDebugTracesQueries(t *testing.T) {
	flight := obs.NewRecorder(16, 16)
	start := time.Date(2026, 8, 5, 9, 0, 0, 0, time.UTC)
	for i := 1; i <= 5; i++ {
		sr := obs.SpanRecord{
			Op: "swap_out", Trace: fmt.Sprintf("dev1-%08x", i), Cluster: uint32(i),
			Outcome: "ok", Start: start, DurationNS: int64(i) * 1000,
			Phases: []obs.PhaseRecord{{Name: "ship", DurationNS: int64(i) * 800, Bytes: 64}},
		}
		if i == 3 {
			sr.Outcome = "error"
			sr.Error = "device gone"
		}
		flight.RecordSpan(sr)
	}
	h := NewHandler(Options{Recorder: flight})

	get := func(path string) (int, map[string]json.RawMessage, []obs.SpanRecord) {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
		var top map[string]json.RawMessage
		if err := json.Unmarshal(rec.Body.Bytes(), &top); err != nil {
			t.Fatalf("GET %s: %v\n%s", path, err, rec.Body.String())
		}
		var spans []obs.SpanRecord
		if raw, ok := top["spans"]; ok {
			if err := json.Unmarshal(raw, &spans); err != nil {
				t.Fatalf("GET %s spans: %v", path, err)
			}
		}
		return rec.Code, top, spans
	}

	// Round-trip through encoding/json: the dump re-parses into SpanRecord.
	code, top, spans := get("/debug/traces")
	if code != http.StatusOK || len(spans) != 5 {
		t.Fatalf("code %d, %d spans", code, len(spans))
	}
	var total uint64
	if err := json.Unmarshal(top["spans_total"], &total); err != nil || total != 5 {
		t.Fatalf("spans_total: %v %d", err, total)
	}
	if spans[0].Trace != "dev1-00000005" || spans[0].Phases[0].Bytes != 64 ||
		!spans[0].Start.Equal(start) {
		t.Fatalf("most recent span wrong: %+v", spans[0])
	}

	_, _, limited := get("/debug/traces?n=2")
	if len(limited) != 2 || limited[0].Cluster != 5 {
		t.Fatalf("n=2: %+v", limited)
	}
	_, _, slowest := get("/debug/traces?slowest=2")
	if len(slowest) != 2 || slowest[0].DurationNS != 5000 || slowest[1].DurationNS != 4000 {
		t.Fatalf("slowest: %+v", slowest)
	}
	_, _, errSpans := get("/debug/traces?errors=5")
	if len(errSpans) != 1 || errSpans[0].Error != "device gone" {
		t.Fatalf("errors: %+v", errSpans)
	}
}

func TestDebugEvents(t *testing.T) {
	flight := obs.NewRecorder(4, 4)
	for i := 1; i <= 6; i++ {
		flight.RecordEvent(obs.EventRecord{BusSeq: uint64(i), Topic: "swap.out"})
	}
	h := NewHandler(Options{Recorder: flight})
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/events?n=3", nil))
	var body struct {
		EventsTotal uint64            `json:"events_total"`
		Events      []obs.EventRecord `json:"events"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if body.EventsTotal != 6 || len(body.Events) != 3 || body.Events[0].BusSeq != 6 {
		t.Fatalf("events: %+v", body)
	}
}

func TestPprofMounted(t *testing.T) {
	h := NewHandler(Options{})
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/pprof/", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("pprof index: %d", rec.Code)
	}
	rec = httptest.NewRecorder()
	NewHandler(Options{DisablePprof: true}).
		ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/pprof/", nil))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("disabled pprof: %d", rec.Code)
	}
}
