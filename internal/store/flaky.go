package store

import (
	"context"
	"fmt"
	"sync"
	"time"
)

// Op names one operation of the Store contract, for fault scheduling.
type Op uint8

// Operations a Flaky store can fail on demand.
const (
	OpPut Op = iota
	OpGet
	OpDrop
	OpKeys
	OpStats
	numOps
)

// String returns the operation name.
func (o Op) String() string {
	switch o {
	case OpPut:
		return "put"
	case OpGet:
		return "get"
	case OpDrop:
		return "drop"
	case OpKeys:
		return "keys"
	case OpStats:
		return "stats"
	default:
		return fmt.Sprintf("op(%d)", o)
	}
}

// Sleeper accounts injected latency. link.Clock implementations (RealClock,
// VirtualClock) satisfy it, so failure-mode tests run on virtual time.
type Sleeper interface {
	Sleep(d time.Duration)
}

// Flaky wraps a Store with deterministic fault injection: per-operation
// failure schedules (explicit call indices, fail-next-N windows, or a seeded
// pseudo-random failure rate), hang schedules (the call blocks until its
// context is done — the "device stopped answering" case), and fixed latency
// injection through a Sleeper. All scheduling is reproducible: the same seed
// and call sequence produce the same faults.
//
// Flaky is the failure harness the transport resilience tests are built on;
// it is exported because operators can also use it to rehearse policies
// against simulated bad neighborhoods.
type Flaky struct {
	inner Store

	mu      sync.Mutex
	calls   [numOps]int
	failed  [numOps]int
	failOn  [numOps]map[int]bool
	failTo  [numOps]int // fail calls with index <= failTo (fail-next-N window)
	hangOn  [numOps]map[int]bool
	rate    [numOps]float64
	rng     uint64
	latency time.Duration
	clock   Sleeper
}

var (
	_ Store    = (*Flaky)(nil)
	_ Envelope = (*Flaky)(nil)
)

// NewFlaky wraps inner with an initially fault-free schedule. seed drives the
// FailRate pseudo-random stream.
func NewFlaky(inner Store, seed int64) *Flaky {
	f := &Flaky{inner: inner, rng: uint64(seed)*2685821657736338717 + 1}
	for op := Op(0); op < numOps; op++ {
		f.failOn[op] = make(map[int]bool)
		f.hangOn[op] = make(map[int]bool)
	}
	return f
}

// FailOn schedules failures for specific 1-based call indices of op.
func (f *Flaky) FailOn(op Op, calls ...int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, c := range calls {
		f.failOn[op][c] = true
	}
}

// FailNext makes the next n calls of op fail (counted from the calls made so
// far). n < 0 fails every future call of op.
func (f *Flaky) FailNext(op Op, n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if n < 0 {
		f.failTo[op] = int(^uint(0) >> 1)
		return
	}
	f.failTo[op] = f.calls[op] + n
}

// FailRate makes op fail with the given probability, drawn from the seeded
// deterministic stream (0 disables).
func (f *Flaky) FailRate(op Op, rate float64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.rate[op] = rate
}

// HangOn schedules specific 1-based call indices of op to block until the
// operation's context is done, then return its error — the unresponsive
// device that never NAKs.
func (f *Flaky) HangOn(op Op, calls ...int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, c := range calls {
		f.hangOn[op][c] = true
	}
}

// SetLatency injects a fixed delay before every operation, accounted through
// clock (nil clock sleeps on the wall clock).
func (f *Flaky) SetLatency(d time.Duration, clock Sleeper) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.latency = d
	f.clock = clock
}

// Calls reports how many times op has been invoked.
func (f *Flaky) Calls(op Op) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.calls[op]
}

// Failures reports how many injected faults op has suffered (hangs included).
func (f *Flaky) Failures(op Op) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.failed[op]
}

// next advances the op's call counter and decides this call's fate.
func (f *Flaky) next(op Op) (fail, hang bool, latency time.Duration, clock Sleeper) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.calls[op]++
	n := f.calls[op]
	switch {
	case f.hangOn[op][n]:
		hang = true
	case f.failOn[op][n] || n <= f.failTo[op]:
		fail = true
	case f.rate[op] > 0:
		// xorshift64*: deterministic stream from the seed.
		f.rng ^= f.rng >> 12
		f.rng ^= f.rng << 25
		f.rng ^= f.rng >> 27
		draw := float64(f.rng*2685821657736338717>>11) / float64(1<<53)
		fail = draw < f.rate[op]
	}
	if fail || hang {
		f.failed[op]++
	}
	return fail, hang, f.latency, f.clock
}

// gate applies the schedule for one call of op; a nil return means the call
// should be forwarded to the inner store.
func (f *Flaky) gate(ctx context.Context, op Op) error {
	fail, hang, latency, clock := f.next(op)
	if latency > 0 {
		if clock == nil {
			clock = realSleeper{}
		}
		clock.Sleep(latency)
	}
	if hang {
		<-ctx.Done()
		return fmt.Errorf("%w: flaky device hung on %s: %v", ErrUnavailable, op, ctx.Err())
	}
	if fail {
		return fmt.Errorf("%w: flaky device failed %s call %d", ErrUnavailable, op, f.Calls(op))
	}
	return ctx.Err()
}

type realSleeper struct{}

func (realSleeper) Sleep(d time.Duration) { time.Sleep(d) }

// Put applies the fault schedule, then forwards.
func (f *Flaky) Put(ctx context.Context, key string, data []byte) error {
	if err := f.gate(ctx, OpPut); err != nil {
		return err
	}
	return f.inner.Put(ctx, key, data)
}

// PutEnvelope applies the OpPut fault schedule, then forwards the envelope
// write (falling back per PutWith when the inner store is format-blind).
func (f *Flaky) PutEnvelope(ctx context.Context, key string, data []byte, opts PutOpts) error {
	if err := f.gate(ctx, OpPut); err != nil {
		return err
	}
	return PutWith(ctx, f.inner, key, data, opts)
}

// GetEnvelope applies the OpGet fault schedule, then forwards.
func (f *Flaky) GetEnvelope(ctx context.Context, key string) ([]byte, PutOpts, error) {
	if err := f.gate(ctx, OpGet); err != nil {
		return nil, PutOpts{}, err
	}
	return GetWith(ctx, f.inner, key)
}

// Get applies the fault schedule, then forwards.
func (f *Flaky) Get(ctx context.Context, key string) ([]byte, error) {
	if err := f.gate(ctx, OpGet); err != nil {
		return nil, err
	}
	return f.inner.Get(ctx, key)
}

// Drop applies the fault schedule, then forwards.
func (f *Flaky) Drop(ctx context.Context, key string) error {
	if err := f.gate(ctx, OpDrop); err != nil {
		return err
	}
	return f.inner.Drop(ctx, key)
}

// Keys applies the fault schedule, then forwards.
func (f *Flaky) Keys(ctx context.Context) ([]string, error) {
	if err := f.gate(ctx, OpKeys); err != nil {
		return nil, err
	}
	return f.inner.Keys(ctx)
}

// Stats applies the fault schedule, then forwards.
func (f *Flaky) Stats(ctx context.Context) (Stats, error) {
	if err := f.gate(ctx, OpStats); err != nil {
		return Stats{}, err
	}
	return f.inner.Stats(ctx)
}
