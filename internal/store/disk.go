package store

import (
	"context"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Disk is a Store backed by a directory of files — the paper's desktop or
// laptop PC holding swapped XML as plain files. Keys are hex-encoded into
// file names so arbitrary key strings are safe.
type Disk struct {
	mu       sync.Mutex
	dir      string
	capacity int64
}

var _ Store = (*Disk)(nil)

const diskExt = ".swapxml"

// NewDisk returns a disk store rooted at dir, creating it if needed.
// capacity <= 0 means unlimited.
func NewDisk(dir string, capacity int64) (*Disk, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: create dir: %w", err)
	}
	return &Disk{dir: dir, capacity: capacity}, nil
}

// Dir returns the backing directory.
func (d *Disk) Dir() string { return d.dir }

func (d *Disk) path(key string) string {
	return filepath.Join(d.dir, hex.EncodeToString([]byte(key))+diskExt)
}

// Put stores data under key.
func (d *Disk) Put(ctx context.Context, key string, data []byte) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if key == "" {
		return errors.New("store: empty key")
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.capacity > 0 {
		st, err := d.statsLocked()
		if err != nil {
			return err
		}
		var existing int64
		if fi, err := os.Stat(d.path(key)); err == nil {
			existing = fi.Size()
		}
		if st.Used-existing+int64(len(data)) > d.capacity {
			return fmt.Errorf("%w: need %d bytes, %d of %d used",
				ErrCapacity, len(data), st.Used, d.capacity)
		}
	}
	tmp := d.path(key) + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("store: write: %w", err)
	}
	if err := os.Rename(tmp, d.path(key)); err != nil {
		return fmt.Errorf("store: rename: %w", err)
	}
	return nil
}

// Get returns the payload stored under key.
func (d *Disk) Get(ctx context.Context, key string) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	data, err := os.ReadFile(d.path(key))
	if errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, key)
	}
	if err != nil {
		return nil, fmt.Errorf("store: read: %w", err)
	}
	return data, nil
}

// Drop removes the payload stored under key.
func (d *Disk) Drop(ctx context.Context, key string) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	err := os.Remove(d.path(key))
	if errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("%w: %q", ErrNotFound, key)
	}
	if err != nil {
		return fmt.Errorf("store: remove: %w", err)
	}
	return nil
}

// Keys enumerates stored keys in sorted order.
func (d *Disk) Keys(ctx context.Context) ([]string, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.keysLocked()
}

func (d *Disk) keysLocked() ([]string, error) {
	entries, err := os.ReadDir(d.dir)
	if err != nil {
		return nil, fmt.Errorf("store: list: %w", err)
	}
	var keys []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, diskExt) {
			continue
		}
		raw, err := hex.DecodeString(strings.TrimSuffix(name, diskExt))
		if err != nil {
			continue // foreign file; ignore
		}
		keys = append(keys, string(raw))
	}
	sort.Strings(keys)
	return keys, nil
}

// Stats reports occupancy.
func (d *Disk) Stats(ctx context.Context) (Stats, error) {
	if err := ctx.Err(); err != nil {
		return Stats{}, err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.statsLocked()
}

func (d *Disk) statsLocked() (Stats, error) {
	entries, err := os.ReadDir(d.dir)
	if err != nil {
		return Stats{}, fmt.Errorf("store: list: %w", err)
	}
	st := Stats{Capacity: d.capacity}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), diskExt) {
			continue
		}
		fi, err := e.Info()
		if err != nil {
			continue
		}
		st.Used += fi.Size()
		st.Items++
	}
	return st, nil
}
