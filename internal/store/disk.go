package store

import (
	"context"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Disk is a Store backed by a directory of files — the paper's desktop or
// laptop PC holding swapped XML as plain files. Keys are hex-encoded into
// file names so arbitrary key strings are safe. Disk implements the Envelope
// extension: a payload's wire format persists in a tiny sidecar file
// (<hexkey>.swapfmt) next to the payload, so a restarted donor still answers
// GETs with the right format. Payloads without a sidecar are the XML
// fallback, which keeps directories written before negotiation readable.
type Disk struct {
	mu       sync.Mutex
	dir      string
	capacity int64
	formats  []string
}

var (
	_ Store    = (*Disk)(nil)
	_ Envelope = (*Disk)(nil)
)

const (
	diskExt = ".swapxml"
	// fmtExt marks format sidecars; they are metadata, not shipments, so
	// Keys and Stats skip them.
	fmtExt = ".swapfmt"
)

// NewDisk returns a disk store rooted at dir, creating it if needed.
// capacity <= 0 means unlimited.
func NewDisk(dir string, capacity int64) (*Disk, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: create dir: %w", err)
	}
	return &Disk{dir: dir, capacity: capacity, formats: BuiltinFormats}, nil
}

// SetFormats replaces the store's wire-format advertisement. The XML
// fallback is always accepted regardless of the advertisement.
func (d *Disk) SetFormats(formats ...string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.formats = append([]string(nil), formats...)
}

// Dir returns the backing directory.
func (d *Disk) Dir() string { return d.dir }

func (d *Disk) path(key string) string {
	return filepath.Join(d.dir, hex.EncodeToString([]byte(key))+diskExt)
}

func (d *Disk) fmtPath(key string) string {
	return filepath.Join(d.dir, hex.EncodeToString([]byte(key))+fmtExt)
}

// Put stores data under key with an unspecified (XML-fallback) envelope.
func (d *Disk) Put(ctx context.Context, key string, data []byte) error {
	return d.PutEnvelope(ctx, key, data, PutOpts{})
}

// PutEnvelope stores data under key with its envelope.
func (d *Disk) PutEnvelope(ctx context.Context, key string, data []byte, opts PutOpts) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if key == "" {
		return errors.New("store: empty key")
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if !formatAccepted(d.formats, opts.Format) {
		return fmt.Errorf("%w: %q (accepts %v)", ErrUnsupportedFormat, opts.Format, d.formats)
	}
	if d.capacity > 0 {
		st, err := d.statsLocked()
		if err != nil {
			return err
		}
		var existing int64
		if fi, err := os.Stat(d.path(key)); err == nil {
			existing = fi.Size()
		}
		if st.Used-existing+int64(len(data)) > d.capacity {
			return fmt.Errorf("%w: need %d bytes, %d of %d used",
				ErrCapacity, len(data), st.Used, d.capacity)
		}
	}
	tmp := d.path(key) + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("store: write: %w", err)
	}
	if err := os.Rename(tmp, d.path(key)); err != nil {
		return fmt.Errorf("store: rename: %w", err)
	}
	// Sidecar second: a crash between the two leaves a payload with no
	// sidecar, which reads back as the XML fallback — the safe default.
	if opts.Format == "" || opts.Format == FormatXML {
		_ = os.Remove(d.fmtPath(key))
		return nil
	}
	if err := os.WriteFile(d.fmtPath(key), []byte(opts.Format), 0o644); err != nil {
		return fmt.Errorf("store: write format sidecar: %w", err)
	}
	return nil
}

// GetEnvelope returns the payload and the envelope it was stored with;
// payloads without a format sidecar report the XML fallback.
func (d *Disk) GetEnvelope(ctx context.Context, key string) ([]byte, PutOpts, error) {
	data, err := d.Get(ctx, key)
	if err != nil {
		return nil, PutOpts{}, err
	}
	d.mu.Lock()
	raw, err := os.ReadFile(d.fmtPath(key))
	d.mu.Unlock()
	format := FormatXML
	if err == nil && len(raw) > 0 {
		format = string(raw)
	}
	return data, PutOpts{Format: format}, nil
}

// Get returns the payload stored under key.
func (d *Disk) Get(ctx context.Context, key string) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	data, err := os.ReadFile(d.path(key))
	if errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, key)
	}
	if err != nil {
		return nil, fmt.Errorf("store: read: %w", err)
	}
	return data, nil
}

// Drop removes the payload stored under key.
func (d *Disk) Drop(ctx context.Context, key string) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	err := os.Remove(d.path(key))
	if errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("%w: %q", ErrNotFound, key)
	}
	if err != nil {
		return fmt.Errorf("store: remove: %w", err)
	}
	_ = os.Remove(d.fmtPath(key))
	return nil
}

// Keys enumerates stored keys in sorted order.
func (d *Disk) Keys(ctx context.Context) ([]string, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.keysLocked()
}

func (d *Disk) keysLocked() ([]string, error) {
	entries, err := os.ReadDir(d.dir)
	if err != nil {
		return nil, fmt.Errorf("store: list: %w", err)
	}
	var keys []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, diskExt) {
			continue
		}
		raw, err := hex.DecodeString(strings.TrimSuffix(name, diskExt))
		if err != nil {
			continue // foreign file; ignore
		}
		keys = append(keys, string(raw))
	}
	sort.Strings(keys)
	return keys, nil
}

// Stats reports occupancy.
func (d *Disk) Stats(ctx context.Context) (Stats, error) {
	if err := ctx.Err(); err != nil {
		return Stats{}, err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.statsLocked()
}

func (d *Disk) statsLocked() (Stats, error) {
	entries, err := os.ReadDir(d.dir)
	if err != nil {
		return Stats{}, fmt.Errorf("store: list: %w", err)
	}
	st := Stats{Capacity: d.capacity, Formats: append([]string(nil), d.formats...)}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), diskExt) {
			continue
		}
		fi, err := e.Info()
		if err != nil {
			continue
		}
		st.Used += fi.Size()
		st.Items++
	}
	return st, nil
}
