package store

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// leaseClock is a hand-cranked time source for deterministic lease tests.
type leaseClock struct{ t time.Time }

func (c *leaseClock) now() time.Time          { return c.t }
func (c *leaseClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newLeaseClock() *leaseClock              { return &leaseClock{t: time.Unix(1000, 0)} }

func TestLeaseGCRenewAndExpire(t *testing.T) {
	clk := newLeaseClock()
	l := NewLeaseGC(NewMem(0), 30*time.Second, clk.now)

	if err := l.Put(ctx, "held", []byte("H")); err != nil {
		t.Fatal(err)
	}
	if err := l.Put(ctx, "lapsed", []byte("L")); err != nil {
		t.Fatal(err)
	}
	if got := l.LeaseCount(); got != 2 {
		t.Fatalf("leases = %d, want 2", got)
	}

	// The owner keeps renewing "held"; "lapsed" goes quiet.
	clk.advance(20 * time.Second)
	if err := l.RenewLease(ctx, "held", 0); err != nil {
		t.Fatal(err)
	}
	clk.advance(20 * time.Second) // lapsed: 40s > 30s TTL; held: 20s into renewal

	expired, err := l.ExpireLapsed(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(expired) != 1 || expired[0] != "lapsed" {
		t.Fatalf("expired = %v, want [lapsed]", expired)
	}
	if _, err := l.Get(ctx, "lapsed"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("lapsed key survived expiry: %v", err)
	}
	if got, err := l.Get(ctx, "held"); err != nil || string(got) != "H" {
		t.Fatalf("held key = %q, %v", got, err)
	}
	if got := l.LeaseCount(); got != 1 {
		t.Fatalf("leases after sweep = %d, want 1", got)
	}
}

// TestLeaseGCExpiryArchivesThroughVersioned is the satellite's
// non-destructive requirement: wrapping a Versioned store means a lapsed
// replica is archived as a generation, not destroyed.
func TestLeaseGCExpiryArchivesThroughVersioned(t *testing.T) {
	clk := newLeaseClock()
	v := NewVersioned(NewMem(0), 1)
	l := NewLeaseGC(v, time.Second, clk.now)

	if err := l.Put(ctx, "replica", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	clk.advance(2 * time.Second)
	expired, err := l.ExpireLapsed(ctx)
	if err != nil || len(expired) != 1 {
		t.Fatalf("expired = %v, %v", expired, err)
	}
	if _, err := l.Get(ctx, "replica"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("live key survived expiry: %v", err)
	}
	gens, err := v.Versions(ctx, "replica")
	if err != nil || len(gens) != 1 {
		t.Fatalf("archived generations = %v, %v", gens, err)
	}
	got, err := v.GetVersion(ctx, "replica", gens[0])
	if err != nil || string(got) != "payload" {
		t.Fatalf("archived payload = %q, %v (operator recovery path)", got, err)
	}
}

func TestLeaseGCAdoptsUntrackedKeys(t *testing.T) {
	clk := newLeaseClock()
	mem := NewMem(0)
	// Stored before the wrapper existed (donor restart loses the lease map).
	if err := mem.Put(ctx, "old", []byte("O")); err != nil {
		t.Fatal(err)
	}
	l := NewLeaseGC(mem, 30*time.Second, clk.now)
	if err := l.RenewLease(ctx, "old", 0); err != nil {
		t.Fatalf("adopting a present key: %v", err)
	}
	if got := l.LeaseCount(); got != 1 {
		t.Fatalf("leases = %d, want the adopted key", got)
	}
	if err := l.RenewLease(ctx, "ghost", 0); !errors.Is(err, ErrNotFound) {
		t.Fatalf("renewing an absent key = %v, want ErrNotFound", err)
	}
}

func TestHTTPLeaseRenewal(t *testing.T) {
	clk := newLeaseClock()
	l := NewLeaseGC(NewMem(0), 30*time.Second, clk.now)
	srv := httptest.NewServer(NewHandler(l))
	defer srv.Close()
	c := NewClient(srv.URL)

	if err := c.Put(ctx, "k", []byte("V")); err != nil {
		t.Fatal(err)
	}
	if err := c.RenewLease(ctx, "k", 45*time.Second); err != nil {
		t.Fatalf("renew over HTTP: %v", err)
	}
	if err := c.RenewLease(ctx, "ghost", 0); !errors.Is(err, ErrNotFound) {
		t.Fatalf("renewing absent key over HTTP = %v, want ErrNotFound", err)
	}
	// The 45s explicit TTL outlives the 30s default: at +40s the key must
	// still be leased.
	clk.advance(40 * time.Second)
	if expired, err := l.ExpireLapsed(ctx); err != nil || len(expired) != 0 {
		t.Fatalf("renewed key expired early: %v, %v", expired, err)
	}
}

// TestHTTPLeaseUnsupported maps a donor without lease support to
// ErrLeaseUnsupported, which owners treat as "nothing to renew".
func TestHTTPLeaseUnsupported(t *testing.T) {
	srv := httptest.NewServer(NewHandler(NewMem(0)))
	defer srv.Close()
	err := NewClient(srv.URL).RenewLease(ctx, "k", 0)
	if !errors.Is(err, ErrLeaseUnsupported) {
		t.Fatalf("plain donor renewal = %v, want ErrLeaseUnsupported", err)
	}

	// A donor predating the protocol entirely (no /leases route): same
	// mapping, via the 404/405 fallback.
	legacy := httptest.NewServer(http.HandlerFunc(http.NotFound))
	defer legacy.Close()
	err = NewClient(legacy.URL).RenewLease(ctx, "k", 0)
	if !errors.Is(err, ErrLeaseUnsupported) && !errors.Is(err, ErrNotFound) {
		t.Fatalf("legacy donor renewal = %v", err)
	}
}
