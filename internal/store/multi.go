package store

import (
	"context"
	"errors"
)

// MultiGetter is an optional Store extension: donors that can serve several
// keys in one round trip implement it, and the fault engine's donor batching
// uses it to merge misses that land on the same donor. Missing keys are
// simply omitted from the result map — a batch is not all-or-nothing — and a
// non-nil error means the round trip itself failed.
type MultiGetter interface {
	GetMulti(ctx context.Context, keys []string) (map[string][]byte, error)
}

// GetMulti fetches keys from s in one round trip when s implements
// MultiGetter, and otherwise falls back to sequential per-key Gets so legacy
// donors keep working. In the fallback, a key that is not found is omitted
// (matching the batched contract); any other per-key failure aborts the
// batch.
func GetMulti(ctx context.Context, s Store, keys []string) (map[string][]byte, error) {
	if mg, ok := s.(MultiGetter); ok {
		return mg.GetMulti(ctx, keys)
	}
	out := make(map[string][]byte, len(keys))
	for _, key := range keys {
		data, err := s.Get(ctx, key)
		if err != nil {
			if errors.Is(err, ErrNotFound) {
				continue
			}
			return nil, err
		}
		out[key] = data
	}
	return out, nil
}

// GetMulti serves a whole batch under one read lock.
func (m *Mem) GetMulti(ctx context.Context, keys []string) (map[string][]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	out := make(map[string][]byte, len(keys))
	m.mu.RLock()
	defer m.mu.RUnlock()
	for _, key := range keys {
		data, ok := m.items[key]
		if !ok {
			continue
		}
		cp := make([]byte, len(data))
		copy(cp, data)
		out[key] = cp
	}
	return out, nil
}

var _ MultiGetter = (*Mem)(nil)
