package store

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestFlakyFailOnSpecificCalls(t *testing.T) {
	f := NewFlaky(NewMem(0), 1)
	f.FailOn(OpPut, 2)

	if err := f.Put(ctx, "a", []byte("1")); err != nil {
		t.Fatalf("call 1: %v", err)
	}
	if err := f.Put(ctx, "b", []byte("2")); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("call 2 = %v, want ErrUnavailable", err)
	}
	if err := f.Put(ctx, "b", []byte("2")); err != nil {
		t.Fatalf("call 3: %v", err)
	}
	if f.Calls(OpPut) != 3 || f.Failures(OpPut) != 1 {
		t.Fatalf("calls/failures = %d/%d", f.Calls(OpPut), f.Failures(OpPut))
	}
	// The failed call never reached the inner store.
	keys, _ := f.Keys(ctx)
	if len(keys) != 2 {
		t.Fatalf("inner holds %v", keys)
	}
}

func TestFlakyFailNextWindow(t *testing.T) {
	f := NewFlaky(NewMem(0), 1)
	_ = f.Put(ctx, "k", []byte("v"))

	f.FailNext(OpGet, 2)
	for i := 0; i < 2; i++ {
		if _, err := f.Get(ctx, "k"); !errors.Is(err, ErrUnavailable) {
			t.Fatalf("windowed call %d = %v", i+1, err)
		}
	}
	if _, err := f.Get(ctx, "k"); err != nil {
		t.Fatalf("after window: %v", err)
	}

	// FailNext(-1) fails forever until rescheduled.
	f.FailNext(OpGet, -1)
	for i := 0; i < 3; i++ {
		if _, err := f.Get(ctx, "k"); err == nil {
			t.Fatal("permanent failure window let a call through")
		}
	}
	f.FailNext(OpGet, 0)
	if _, err := f.Get(ctx, "k"); err != nil {
		t.Fatalf("after reset: %v", err)
	}
}

func TestFlakyFailRateIsDeterministic(t *testing.T) {
	pattern := func(seed int64) []bool {
		f := NewFlaky(NewMem(0), seed)
		f.FailRate(OpPut, 0.5)
		outcomes := make([]bool, 200)
		for i := range outcomes {
			outcomes[i] = f.Put(ctx, "k", []byte("x")) != nil
		}
		return outcomes
	}

	a, b := pattern(7), pattern(7)
	var failures int
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at call %d", i)
		}
		if a[i] {
			failures++
		}
	}
	// With rate 0.5 over 200 calls, both extremes mean a broken stream.
	if failures < 50 || failures > 150 {
		t.Fatalf("rate 0.5 produced %d/200 failures", failures)
	}
}

func TestFlakyHangBlocksUntilContextDone(t *testing.T) {
	f := NewFlaky(NewMem(0), 1)
	_ = f.Put(ctx, "k", []byte("v"))
	f.HangOn(OpGet, 1)

	cctx, cancel := context.WithTimeout(ctx, 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := f.Get(cctx, "k")
	if !errors.Is(err, ErrUnavailable) {
		t.Fatalf("hung call = %v, want ErrUnavailable", err)
	}
	if time.Since(start) < 10*time.Millisecond {
		t.Fatal("hung call returned before its context expired")
	}
	// Only the first call hangs.
	if got, err := f.Get(ctx, "k"); err != nil || string(got) != "v" {
		t.Fatalf("second get = %q, %v", got, err)
	}
	if f.Failures(OpGet) != 1 {
		t.Fatalf("failures = %d", f.Failures(OpGet))
	}
}

// countSleeper records injected latency without blocking.
type countSleeper struct{ total time.Duration }

func (c *countSleeper) Sleep(d time.Duration) { c.total += d }

func TestFlakyLatencyGoesThroughSleeper(t *testing.T) {
	f := NewFlaky(NewMem(0), 1)
	clk := &countSleeper{}
	f.SetLatency(30*time.Millisecond, clk)

	_ = f.Put(ctx, "a", []byte("1"))
	_, _ = f.Get(ctx, "a")
	if clk.total != 60*time.Millisecond {
		t.Fatalf("accounted latency = %v, want 60ms", clk.total)
	}
}

func TestFlakyHonorsCanceledContext(t *testing.T) {
	f := NewFlaky(NewMem(0), 1)
	cctx, cancel := context.WithCancel(ctx)
	cancel()
	if err := f.Put(cctx, "k", []byte("x")); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
}
