package store

import (
	"context"
	"errors"
	"fmt"
)

// This file makes stores format-aware. The paper's donors hold opaque keyed
// text; with negotiated wire formats a payload's format becomes part of the
// storage contract — carried as an explicit envelope field (the HTTP bridge
// maps it onto Content-Type), never sniffed out of payload bytes by the
// donor. Stores that don't implement the Envelope extension only accept the
// universal XML fallback, which is exactly what pre-negotiation donors did.

// FormatXML names the universal fallback format every donor accepts. The
// constant mirrors wire.FormatXML; store deliberately does not import the
// wire package (donors store bytes, they never decode them).
const FormatXML = "xml"

// BuiltinFormats lists the wire formats the in-tree stores accept, mirroring
// the wire package's registry (asserted equal by a wire test).
var BuiltinFormats = []string{"binary", "binary+flate", "delta", "xml"}

// ErrUnsupportedFormat reports a Put whose declared format the device does
// not accept. The constrained device reacts by renegotiating down —
// ultimately to XML, which every donor accepts.
var ErrUnsupportedFormat = errors.New("store: unsupported wire format")

// PutOpts is the envelope accompanying a stored payload.
type PutOpts struct {
	// Format names the payload's wire format (a wire.FormatID string).
	// Empty means unspecified, which donors treat as the XML fallback.
	Format string
}

// Envelope is the optional format-aware store extension. Stores that
// implement it persist the envelope alongside the payload and return it on
// read; stores that don't are XML-only donors.
type Envelope interface {
	// PutEnvelope stores data under key with its envelope, replacing any
	// previous payload. A device that does not accept opts.Format fails with
	// ErrUnsupportedFormat and stores nothing.
	PutEnvelope(ctx context.Context, key string, data []byte, opts PutOpts) error
	// GetEnvelope returns the payload and the envelope it was stored with.
	GetEnvelope(ctx context.Context, key string) ([]byte, PutOpts, error)
}

// PutWith stores data on s with its envelope: through the Envelope extension
// when s implements it, through plain Put when the payload is XML (the only
// format a legacy donor can hold). Shipping a non-XML payload to a donor
// without the extension is a negotiation bug and fails without storing.
func PutWith(ctx context.Context, s Store, key string, data []byte, opts PutOpts) error {
	if e, ok := s.(Envelope); ok {
		return e.PutEnvelope(ctx, key, data, opts)
	}
	if opts.Format == "" || opts.Format == FormatXML {
		return s.Put(ctx, key, data)
	}
	return fmt.Errorf("%w: %q on a legacy store", ErrUnsupportedFormat, opts.Format)
}

// GetWith fetches a payload and its envelope from s. Legacy stores report
// the XML fallback format.
func GetWith(ctx context.Context, s Store, key string) ([]byte, PutOpts, error) {
	if e, ok := s.(Envelope); ok {
		return e.GetEnvelope(ctx, key)
	}
	data, err := s.Get(ctx, key)
	if err != nil {
		return nil, PutOpts{}, err
	}
	return data, PutOpts{Format: FormatXML}, nil
}

// formatAccepted reports whether a device advertising the given formats
// accepts format. The XML fallback (and an unspecified format) is always
// accepted — it is what makes old and new devices interoperate.
func formatAccepted(advertised []string, format string) bool {
	if format == "" || format == FormatXML {
		return true
	}
	for _, f := range advertised {
		if f == format {
			return true
		}
	}
	return false
}
