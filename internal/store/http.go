package store

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"

	"objectswap/internal/obs"
)

// HTTP transport for the store contract: the paper's prototype moved swapped
// XML through a web-services communication bridge, because the .Net Compact
// Framework of the day lacked remote method invocation. Handler exposes any
// Store over HTTP; Client is the matching Store implementation used by the
// constrained device.
//
// Wire protocol (keys are path-escaped):
//
//	PUT    /clusters/{key}   body = payload      -> 204 | 415 (format refused)
//	GET    /clusters/{key}                       -> 200 body = payload | 404
//	DELETE /clusters/{key}                       -> 204 | 404
//	GET    /clusters                             -> 200 JSON ["key", ...]
//	GET    /stats                                -> 200 JSON Stats
//	POST   /batch            body = JSON keys    -> 200 JSON {key: base64, ...}
//	POST   /leases/{key}?ttl=30s                 -> 204 | 404 | 501 (no leases)
//
// /batch serves several keys in one round trip (the fault engine's donor
// batching); missing keys are omitted from the response map. /leases renews
// the lease on one replica key when the donor runs lease GC. Both answer
// 404/501 on donors predating them, which the Client turns into the per-key
// fallback and ErrLeaseUnsupported respectively.
//
// A payload's wire format rides in the Content-Type header: the XML fallback
// is application/xml (also assumed when the header is absent, which is what
// pre-negotiation peers send); every other format is
// application/x-obiswap-<format>. The Stats JSON advertises the formats the
// donor accepts; a PUT in a format the donor refuses answers 415 and stores
// nothing.

// contentTypePrefix prefixes non-XML wire formats on the HTTP bridge.
const contentTypePrefix = "application/x-obiswap-"

// formatContentType maps a wire format to its Content-Type value.
func formatContentType(format string) string {
	if format == "" || format == FormatXML {
		return "application/xml"
	}
	return contentTypePrefix + format
}

// contentTypeFormat maps a Content-Type header back to a wire format.
func contentTypeFormat(ct string) string {
	if i := strings.IndexByte(ct, ';'); i >= 0 {
		ct = ct[:i]
	}
	ct = strings.TrimSpace(ct)
	if strings.HasPrefix(ct, contentTypePrefix) {
		return strings.TrimPrefix(ct, contentTypePrefix)
	}
	return FormatXML
}

// Handler adapts a Store to HTTP.
type Handler struct {
	s Store
}

var _ http.Handler = (*Handler)(nil)

// NewHandler returns an HTTP handler serving s.
func NewHandler(s Store) *Handler { return &Handler{s: s} }

// ServeHTTP implements http.Handler.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch {
	case r.URL.Path == "/stats" && r.Method == http.MethodGet:
		st, err := h.s.Stats(r.Context())
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		writeJSON(w, st)
	case r.URL.Path == "/clusters" && r.Method == http.MethodGet:
		keys, err := h.s.Keys(r.Context())
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		if keys == nil {
			keys = []string{}
		}
		writeJSON(w, keys)
	case r.URL.Path == "/batch" && r.Method == http.MethodPost:
		var keys []string
		if err := json.NewDecoder(r.Body).Decode(&keys); err != nil {
			http.Error(w, "bad batch: "+err.Error(), http.StatusBadRequest)
			return
		}
		got, err := GetMulti(r.Context(), h.s, keys)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		if got == nil {
			got = map[string][]byte{}
		}
		writeJSON(w, got)
	case strings.HasPrefix(r.URL.Path, "/leases/") && r.Method == http.MethodPost:
		key, err := url.PathUnescape(strings.TrimPrefix(r.URL.Path, "/leases/"))
		if err != nil || key == "" {
			http.Error(w, "bad key", http.StatusBadRequest)
			return
		}
		l, ok := h.s.(Leaser)
		if !ok {
			http.Error(w, "leases unsupported", http.StatusNotImplemented)
			return
		}
		var ttl time.Duration
		if raw := r.URL.Query().Get("ttl"); raw != "" {
			if ttl, err = time.ParseDuration(raw); err != nil {
				http.Error(w, "bad ttl: "+err.Error(), http.StatusBadRequest)
				return
			}
		}
		if err := l.RenewLease(r.Context(), key, ttl); err != nil {
			if errors.Is(err, ErrNotFound) {
				http.NotFound(w, r)
				return
			}
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	case strings.HasPrefix(r.URL.Path, "/clusters/"):
		rawKey := strings.TrimPrefix(r.URL.Path, "/clusters/")
		key, err := url.PathUnescape(rawKey)
		if err != nil || key == "" {
			http.Error(w, "bad key", http.StatusBadRequest)
			return
		}
		h.serveKey(w, r, key)
	default:
		http.NotFound(w, r)
	}
}

func (h *Handler) serveKey(w http.ResponseWriter, r *http.Request, key string) {
	switch r.Method {
	case http.MethodPut:
		data, err := io.ReadAll(r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		opts := PutOpts{Format: contentTypeFormat(r.Header.Get("Content-Type"))}
		if err := PutWith(r.Context(), h.s, key, data, opts); err != nil {
			status := http.StatusInternalServerError
			switch {
			case errors.Is(err, ErrCapacity):
				status = http.StatusInsufficientStorage
			case errors.Is(err, ErrUnsupportedFormat):
				status = http.StatusUnsupportedMediaType
			}
			http.Error(w, err.Error(), status)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	case http.MethodGet:
		data, opts, err := GetWith(r.Context(), h.s, key)
		if errors.Is(err, ErrNotFound) {
			http.NotFound(w, r)
			return
		}
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", formatContentType(opts.Format))
		_, _ = w.Write(data)
	case http.MethodDelete:
		err := h.s.Drop(r.Context(), key)
		if errors.Is(err, ErrNotFound) {
			http.NotFound(w, r)
			return
		}
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

// Client is a Store talking to a remote Handler.
type Client struct {
	base string
	hc   *http.Client
}

var (
	_ Store       = (*Client)(nil)
	_ Envelope    = (*Client)(nil)
	_ MultiGetter = (*Client)(nil)
	_ Leaser      = (*Client)(nil)
)

// NewClient returns a store client for the device at baseURL
// (e.g. "http://192.168.0.7:9980").
func NewClient(baseURL string) *Client {
	return &Client{
		base: strings.TrimRight(baseURL, "/"),
		hc:   &http.Client{Timeout: 30 * time.Second},
	}
}

func (c *Client) keyURL(key string) string {
	return c.base + "/clusters/" + url.PathEscape(key)
}

// setTrace stamps the request with the swap trace ID carried by its context
// (X-Obiswap-Trace), so the serving device can correlate its access log and
// flight recorder with the requesting device's span.
func setTrace(req *http.Request) {
	if id := obs.TraceFrom(req.Context()); id != "" {
		req.Header.Set(obs.TraceHeader, id)
	}
}

// Put stores data under key on the remote device with the XML-fallback
// envelope.
func (c *Client) Put(ctx context.Context, key string, data []byte) error {
	return c.PutEnvelope(ctx, key, data, PutOpts{})
}

// PutEnvelope stores data under key on the remote device, carrying the wire
// format as the request Content-Type. A 415 answer (donor refuses the
// format) surfaces as ErrUnsupportedFormat.
func (c *Client) PutEnvelope(ctx context.Context, key string, data []byte, opts PutOpts) error {
	if key == "" {
		return errors.New("store: empty key")
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPut, c.keyURL(key), bytes.NewReader(data))
	if err != nil {
		return fmt.Errorf("store: http: %w", err)
	}
	req.Header.Set("Content-Type", formatContentType(opts.Format))
	setTrace(req)
	resp, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrUnavailable, err)
	}
	defer drain(resp)
	switch resp.StatusCode {
	case http.StatusNoContent, http.StatusOK:
		return nil
	case http.StatusInsufficientStorage:
		return fmt.Errorf("%w: remote device full", ErrCapacity)
	case http.StatusUnsupportedMediaType:
		return fmt.Errorf("%w: %q refused by remote device", ErrUnsupportedFormat, opts.Format)
	default:
		return fmt.Errorf("store: http put: status %d", resp.StatusCode)
	}
}

// Get returns the payload stored under key on the remote device.
func (c *Client) Get(ctx context.Context, key string) ([]byte, error) {
	data, _, err := c.GetEnvelope(ctx, key)
	return data, err
}

// GetEnvelope returns the payload and the wire format the remote device
// serves it with (from the response Content-Type).
func (c *Client) GetEnvelope(ctx context.Context, key string) ([]byte, PutOpts, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.keyURL(key), nil)
	if err != nil {
		return nil, PutOpts{}, fmt.Errorf("store: http: %w", err)
	}
	setTrace(req)
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, PutOpts{}, fmt.Errorf("%w: %v", ErrUnavailable, err)
	}
	defer drain(resp)
	switch resp.StatusCode {
	case http.StatusOK:
		data, err := io.ReadAll(resp.Body)
		if err != nil {
			return nil, PutOpts{}, fmt.Errorf("store: http get: %w", err)
		}
		return data, PutOpts{Format: contentTypeFormat(resp.Header.Get("Content-Type"))}, nil
	case http.StatusNotFound:
		return nil, PutOpts{}, fmt.Errorf("%w: %q", ErrNotFound, key)
	default:
		return nil, PutOpts{}, fmt.Errorf("store: http get: status %d", resp.StatusCode)
	}
}

// GetMulti fetches several keys in one POST /batch round trip. A donor
// predating the endpoint answers 404 or 405; the client then falls back to
// sequential per-key Gets, so batching degrades instead of failing. Missing
// keys are omitted from the result map.
func (c *Client) GetMulti(ctx context.Context, keys []string) (map[string][]byte, error) {
	body, err := json.Marshal(keys)
	if err != nil {
		return nil, fmt.Errorf("store: http batch: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/batch", bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("store: http: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	setTrace(req)
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrUnavailable, err)
	}
	defer drain(resp)
	switch resp.StatusCode {
	case http.StatusOK:
		var got map[string][]byte
		if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
			return nil, fmt.Errorf("store: http batch: %w", err)
		}
		if got == nil {
			got = map[string][]byte{}
		}
		return got, nil
	case http.StatusNotFound, http.StatusMethodNotAllowed:
		// Legacy donor: per-key fallback, not-found keys omitted.
		out := make(map[string][]byte, len(keys))
		for _, key := range keys {
			data, err := c.Get(ctx, key)
			if err != nil {
				if errors.Is(err, ErrNotFound) {
					continue
				}
				return nil, err
			}
			out[key] = data
		}
		return out, nil
	default:
		return nil, fmt.Errorf("store: http batch: status %d", resp.StatusCode)
	}
}

// RenewLease extends the lease on key via POST /leases/{key}. Donors that
// run no lease GC (501, or pre-lease servers answering 404 for the whole
// /leases namespace on an unknown key) report ErrLeaseUnsupported or
// ErrNotFound; callers treat ErrLeaseUnsupported as "nothing to renew".
func (c *Client) RenewLease(ctx context.Context, key string, ttl time.Duration) error {
	u := c.base + "/leases/" + url.PathEscape(key)
	if ttl > 0 {
		u += "?ttl=" + url.QueryEscape(ttl.String())
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, u, nil)
	if err != nil {
		return fmt.Errorf("store: http: %w", err)
	}
	setTrace(req)
	resp, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrUnavailable, err)
	}
	defer drain(resp)
	switch resp.StatusCode {
	case http.StatusNoContent, http.StatusOK:
		return nil
	case http.StatusNotFound:
		return fmt.Errorf("%w: %q", ErrNotFound, key)
	case http.StatusNotImplemented, http.StatusMethodNotAllowed:
		return fmt.Errorf("%w: %s", ErrLeaseUnsupported, c.base)
	default:
		return fmt.Errorf("store: http lease: status %d", resp.StatusCode)
	}
}

// Drop removes the payload stored under key on the remote device.
func (c *Client) Drop(ctx context.Context, key string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete, c.keyURL(key), nil)
	if err != nil {
		return fmt.Errorf("store: http: %w", err)
	}
	setTrace(req)
	resp, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrUnavailable, err)
	}
	defer drain(resp)
	switch resp.StatusCode {
	case http.StatusNoContent, http.StatusOK:
		return nil
	case http.StatusNotFound:
		return fmt.Errorf("%w: %q", ErrNotFound, key)
	default:
		return fmt.Errorf("store: http delete: status %d", resp.StatusCode)
	}
}

// Keys enumerates remote keys.
func (c *Client) Keys(ctx context.Context) ([]string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/clusters", nil)
	if err != nil {
		return nil, fmt.Errorf("store: http: %w", err)
	}
	setTrace(req)
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrUnavailable, err)
	}
	defer drain(resp)
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("store: http keys: status %d", resp.StatusCode)
	}
	var keys []string
	if err := json.NewDecoder(resp.Body).Decode(&keys); err != nil {
		return nil, fmt.Errorf("store: http keys: %w", err)
	}
	return keys, nil
}

// Stats reports remote occupancy.
func (c *Client) Stats(ctx context.Context) (Stats, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/stats", nil)
	if err != nil {
		return Stats{}, fmt.Errorf("store: http: %w", err)
	}
	setTrace(req)
	resp, err := c.hc.Do(req)
	if err != nil {
		return Stats{}, fmt.Errorf("%w: %v", ErrUnavailable, err)
	}
	defer drain(resp)
	if resp.StatusCode != http.StatusOK {
		return Stats{}, fmt.Errorf("store: http stats: status %d", resp.StatusCode)
	}
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return Stats{}, fmt.Errorf("store: http stats: %w", err)
	}
	return st, nil
}

func drain(resp *http.Response) {
	_, _ = io.Copy(io.Discard, resp.Body)
	_ = resp.Body.Close()
}
