package store

import (
	"errors"
	"testing"
)

func TestVersionedBehavesAsPlainStoreForLiveKeys(t *testing.T) {
	// The full storeContract does not apply: archived generations occupy the
	// device, so Stats legitimately reports more than the live payloads.
	// The live-key surface must still match a plain store.
	v := NewVersioned(NewMem(0), 0)
	if _, err := v.Get("missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get missing: %v", err)
	}
	if err := v.Put("a", []byte("1")); err != nil {
		t.Fatal(err)
	}
	if err := v.Put("b", []byte("2")); err != nil {
		t.Fatal(err)
	}
	got, err := v.Get("a")
	if err != nil || string(got) != "1" {
		t.Fatalf("Get = %q, %v", got, err)
	}
	keys, err := v.Keys()
	if err != nil || len(keys) != 2 || keys[0] != "a" || keys[1] != "b" {
		t.Fatalf("Keys = %v, %v", keys, err)
	}
	if err := v.Drop("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := v.Get("a"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get after drop: %v", err)
	}
	if err := v.Put("", []byte("x")); err == nil {
		t.Fatal("empty key accepted")
	}
}

func TestVersionedArchivesOnPut(t *testing.T) {
	v := NewVersioned(NewMem(0), 0)
	_ = v.Put("k", []byte("v1"))
	_ = v.Put("k", []byte("v2"))
	_ = v.Put("k", []byte("v3"))

	cur, err := v.Get("k")
	if err != nil || string(cur) != "v3" {
		t.Fatalf("current = %q, %v", cur, err)
	}
	gens, err := v.Versions("k")
	if err != nil || len(gens) != 2 {
		t.Fatalf("generations = %v, %v", gens, err)
	}
	g0, _ := v.GetVersion("k", gens[0])
	g1, _ := v.GetVersion("k", gens[1])
	if string(g0) != "v1" || string(g1) != "v2" {
		t.Fatalf("archived = %q, %q", g0, g1)
	}
	// Live key listing hides archives.
	keys, _ := v.Keys()
	if len(keys) != 1 || keys[0] != "k" {
		t.Fatalf("keys = %v", keys)
	}
}

func TestVersionedDropSetsAside(t *testing.T) {
	// The paper: dropped swap-clusters may be set aside rather than
	// destroyed, for reconciliation/versioning.
	v := NewVersioned(NewMem(0), 0)
	_ = v.Put("cluster-7", []byte("<swapcluster/>"))
	if err := v.Drop("cluster-7"); err != nil {
		t.Fatal(err)
	}
	if _, err := v.Get("cluster-7"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("live payload survived drop: %v", err)
	}
	gens, _ := v.Versions("cluster-7")
	if len(gens) != 1 {
		t.Fatalf("generations after drop = %v", gens)
	}
	data, err := v.GetVersion("cluster-7", gens[0])
	if err != nil || string(data) != "<swapcluster/>" {
		t.Fatalf("set-aside payload = %q, %v", data, err)
	}
	// Dropping a missing key still errors.
	if err := v.Drop("ghost"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("drop ghost: %v", err)
	}
}

func TestVersionedRetentionBound(t *testing.T) {
	v := NewVersioned(NewMem(0), 2)
	for i := 0; i < 6; i++ {
		_ = v.Put("k", []byte{byte('a' + i)})
	}
	gens, _ := v.Versions("k")
	if len(gens) != 2 {
		t.Fatalf("retained %d generations, want 2", len(gens))
	}
	// The newest two archives survive: "d" and "e" (current is "f").
	g0, _ := v.GetVersion("k", gens[0])
	g1, _ := v.GetVersion("k", gens[1])
	if string(g0) != "d" || string(g1) != "e" {
		t.Fatalf("retained = %q, %q", g0, g1)
	}
}

func TestVersionedPrune(t *testing.T) {
	v := NewVersioned(NewMem(0), 0)
	_ = v.Put("k", []byte("1"))
	_ = v.Put("k", []byte("2"))
	_ = v.Put("other", []byte("x"))
	_ = v.Put("other", []byte("y"))
	if err := v.PruneVersions("k"); err != nil {
		t.Fatal(err)
	}
	gens, _ := v.Versions("k")
	if len(gens) != 0 {
		t.Fatalf("generations after prune = %v", gens)
	}
	// Other keys' archives untouched.
	gens, _ = v.Versions("other")
	if len(gens) != 1 {
		t.Fatalf("other generations = %v", gens)
	}
}

func TestVersionedRejectsNamespaceCollisions(t *testing.T) {
	v := NewVersioned(NewMem(0), 0)
	if err := v.Put("bad#v1", []byte("x")); !errors.Is(err, ErrVersionedKey) {
		t.Fatalf("collision accepted: %v", err)
	}
}

func TestVersionedStatsIncludeArchives(t *testing.T) {
	v := NewVersioned(NewMem(0), 0)
	_ = v.Put("k", make([]byte, 10))
	_ = v.Put("k", make([]byte, 10))
	st, err := v.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Used != 20 || st.Items != 2 {
		t.Fatalf("stats = %+v (archives must be accounted)", st)
	}
}
