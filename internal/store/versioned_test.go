package store

import (
	"errors"
	"testing"
)

func TestVersionedBehavesAsPlainStoreForLiveKeys(t *testing.T) {
	// The full storeContract does not apply: archived generations occupy the
	// device, so Stats legitimately reports more than the live payloads.
	// The live-key surface must still match a plain store.
	v := NewVersioned(NewMem(0), 0)
	if _, err := v.Get(ctx, "missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get missing: %v", err)
	}
	if err := v.Put(ctx, "a", []byte("1")); err != nil {
		t.Fatal(err)
	}
	if err := v.Put(ctx, "b", []byte("2")); err != nil {
		t.Fatal(err)
	}
	got, err := v.Get(ctx, "a")
	if err != nil || string(got) != "1" {
		t.Fatalf("Get = %q, %v", got, err)
	}
	keys, err := v.Keys(ctx)
	if err != nil || len(keys) != 2 || keys[0] != "a" || keys[1] != "b" {
		t.Fatalf("Keys = %v, %v", keys, err)
	}
	if err := v.Drop(ctx, "a"); err != nil {
		t.Fatal(err)
	}
	if _, err := v.Get(ctx, "a"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get after drop: %v", err)
	}
	if err := v.Put(ctx, "", []byte("x")); err == nil {
		t.Fatal("empty key accepted")
	}
}

func TestVersionedArchivesOnPut(t *testing.T) {
	v := NewVersioned(NewMem(0), 0)
	_ = v.Put(ctx, "k", []byte("v1"))
	_ = v.Put(ctx, "k", []byte("v2"))
	_ = v.Put(ctx, "k", []byte("v3"))

	cur, err := v.Get(ctx, "k")
	if err != nil || string(cur) != "v3" {
		t.Fatalf("current = %q, %v", cur, err)
	}
	gens, err := v.Versions(ctx, "k")
	if err != nil || len(gens) != 2 {
		t.Fatalf("generations = %v, %v", gens, err)
	}
	g0, _ := v.GetVersion(ctx, "k", gens[0])
	g1, _ := v.GetVersion(ctx, "k", gens[1])
	if string(g0) != "v1" || string(g1) != "v2" {
		t.Fatalf("archived = %q, %q", g0, g1)
	}
	// Live key listing hides archives.
	keys, _ := v.Keys(ctx)
	if len(keys) != 1 || keys[0] != "k" {
		t.Fatalf("keys = %v", keys)
	}
}

func TestVersionedDropSetsAside(t *testing.T) {
	// The paper: dropped swap-clusters may be set aside rather than
	// destroyed, for reconciliation/versioning.
	v := NewVersioned(NewMem(0), 0)
	_ = v.Put(ctx, "cluster-7", []byte("<swapcluster/>"))
	if err := v.Drop(ctx, "cluster-7"); err != nil {
		t.Fatal(err)
	}
	if _, err := v.Get(ctx, "cluster-7"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("live payload survived drop: %v", err)
	}
	gens, _ := v.Versions(ctx, "cluster-7")
	if len(gens) != 1 {
		t.Fatalf("generations after drop = %v", gens)
	}
	data, err := v.GetVersion(ctx, "cluster-7", gens[0])
	if err != nil || string(data) != "<swapcluster/>" {
		t.Fatalf("set-aside payload = %q, %v", data, err)
	}
	// Dropping a missing key still errors.
	if err := v.Drop(ctx, "ghost"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("drop ghost: %v", err)
	}
}

func TestVersionedRetentionBound(t *testing.T) {
	v := NewVersioned(NewMem(0), 2)
	for i := 0; i < 6; i++ {
		_ = v.Put(ctx, "k", []byte{byte('a' + i)})
	}
	gens, _ := v.Versions(ctx, "k")
	if len(gens) != 2 {
		t.Fatalf("retained %d generations, want 2", len(gens))
	}
	// The newest two archives survive: "d" and "e" (current is "f").
	g0, _ := v.GetVersion(ctx, "k", gens[0])
	g1, _ := v.GetVersion(ctx, "k", gens[1])
	if string(g0) != "d" || string(g1) != "e" {
		t.Fatalf("retained = %q, %q", g0, g1)
	}
}

func TestVersionedPrune(t *testing.T) {
	v := NewVersioned(NewMem(0), 0)
	_ = v.Put(ctx, "k", []byte("1"))
	_ = v.Put(ctx, "k", []byte("2"))
	_ = v.Put(ctx, "other", []byte("x"))
	_ = v.Put(ctx, "other", []byte("y"))
	if err := v.PruneVersions(ctx, "k"); err != nil {
		t.Fatal(err)
	}
	gens, _ := v.Versions(ctx, "k")
	if len(gens) != 0 {
		t.Fatalf("generations after prune = %v", gens)
	}
	// Other keys' archives untouched.
	gens, _ = v.Versions(ctx, "other")
	if len(gens) != 1 {
		t.Fatalf("other generations = %v", gens)
	}
}

func TestVersionedRejectsNamespaceCollisions(t *testing.T) {
	v := NewVersioned(NewMem(0), 0)
	if err := v.Put(ctx, "bad#v1", []byte("x")); !errors.Is(err, ErrVersionedKey) {
		t.Fatalf("collision accepted: %v", err)
	}
}

func TestVersionedStatsIncludeArchives(t *testing.T) {
	v := NewVersioned(NewMem(0), 0)
	_ = v.Put(ctx, "k", make([]byte, 10))
	_ = v.Put(ctx, "k", make([]byte, 10))
	st, err := v.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Used != 20 || st.Items != 2 {
		t.Fatalf("stats = %+v (archives must be accounted)", st)
	}
}
