package store

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

var ctx = context.Background()

// storeContract runs the full Store contract against any implementation.
func storeContract(t *testing.T, s Store) {
	t.Helper()

	// Empty store.
	keys, err := s.Keys(ctx)
	if err != nil || len(keys) != 0 {
		t.Fatalf("fresh Keys = %v, %v", keys, err)
	}
	if _, err := s.Get(ctx, "missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get missing: %v", err)
	}
	if err := s.Drop(ctx, "missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Drop missing: %v", err)
	}

	// Put / Get round trip, including awkward keys.
	awkward := "swap cluster/1:α?&#"
	payload := []byte("<swapcluster id=\"x\"/>")
	if err := s.Put(ctx, awkward, payload); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get(ctx, awkward)
	if err != nil || string(got) != string(payload) {
		t.Fatalf("Get = %q, %v", got, err)
	}

	// Replacement under the same key.
	if err := s.Put(ctx, awkward, []byte("v2")); err != nil {
		t.Fatal(err)
	}
	got, _ = s.Get(ctx, awkward)
	if string(got) != "v2" {
		t.Fatalf("replaced payload = %q", got)
	}

	// Keys are sorted and complete.
	if err := s.Put(ctx, "a-key", []byte("a")); err != nil {
		t.Fatal(err)
	}
	keys, err = s.Keys(ctx)
	if err != nil || len(keys) != 2 || keys[0] != "a-key" || keys[1] != awkward {
		t.Fatalf("Keys = %v, %v", keys, err)
	}

	// Stats track items and bytes.
	st, err := s.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Items != 2 || st.Used != int64(len("v2")+len("a")) {
		t.Fatalf("Stats = %+v", st)
	}

	// Drop removes exactly one key.
	if err := s.Drop(ctx, "a-key"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(ctx, "a-key"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get after drop: %v", err)
	}
	if _, err := s.Get(ctx, awkward); err != nil {
		t.Fatalf("unrelated key dropped: %v", err)
	}

	// Empty keys are rejected.
	if err := s.Put(ctx, "", []byte("x")); err == nil {
		t.Fatal("Put with empty key accepted")
	}
}

func TestMemContract(t *testing.T) {
	storeContract(t, NewMem(0))
}

func TestDiskContract(t *testing.T) {
	d, err := NewDisk(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	storeContract(t, d)
}

func TestMemCapacity(t *testing.T) {
	m := NewMem(10)
	if err := m.Put(ctx, "a", make([]byte, 8)); err != nil {
		t.Fatal(err)
	}
	if err := m.Put(ctx, "b", make([]byte, 4)); !errors.Is(err, ErrCapacity) {
		t.Fatalf("over capacity: %v", err)
	}
	// Replacing within budget is fine even at the edge.
	if err := m.Put(ctx, "a", make([]byte, 10)); err != nil {
		t.Fatal(err)
	}
	st, _ := m.Stats(ctx)
	if st.Used != 10 || st.Free() != 0 {
		t.Fatalf("stats = %+v free=%d", st, st.Free())
	}
}

func TestDiskCapacityAndPersistence(t *testing.T) {
	dir := t.TempDir()
	d, _ := NewDisk(dir, 16)
	if err := d.Put(ctx, "k", make([]byte, 12)); err != nil {
		t.Fatal(err)
	}
	if err := d.Put(ctx, "k2", make([]byte, 8)); !errors.Is(err, ErrCapacity) {
		t.Fatalf("over capacity: %v", err)
	}
	// Replacement accounting: replacing k with a same-size payload fits.
	if err := d.Put(ctx, "k", make([]byte, 16)); err != nil {
		t.Fatal(err)
	}
	// A second store over the same directory sees the data (persistence).
	d2, _ := NewDisk(dir, 0)
	got, err := d2.Get(ctx, "k")
	if err != nil || len(got) != 16 {
		t.Fatalf("persisted Get = %d bytes, %v", len(got), err)
	}
	if d.Dir() != dir {
		t.Fatalf("Dir = %q", d.Dir())
	}
}

func TestMemIsolation(t *testing.T) {
	m := NewMem(0)
	payload := []byte{1, 2, 3}
	_ = m.Put(ctx, "k", payload)
	payload[0] = 99 // caller mutation after Put
	got, _ := m.Get(ctx, "k")
	if got[0] != 1 {
		t.Fatal("Put did not copy payload")
	}
	got[1] = 99 // caller mutation after Get
	again, _ := m.Get(ctx, "k")
	if again[1] != 2 {
		t.Fatal("Get did not copy payload")
	}
}

func TestRegistrySelection(t *testing.T) {
	big := NewMem(1000)
	small := NewMem(100)
	_ = big.Put(ctx, "pad", make([]byte, 100))  // 900 free
	_ = small.Put(ctx, "pad", make([]byte, 50)) // 50 free

	r := NewRegistry(SelectMostFree)
	if err := r.Add("big", big); err != nil {
		t.Fatal(err)
	}
	if err := r.Add("small", small); err != nil {
		t.Fatal(err)
	}
	if err := r.Add("big", big); err == nil {
		t.Fatal("duplicate Add accepted")
	}

	name, _, err := r.Pick(ctx, 10)
	if err != nil || name != "big" {
		t.Fatalf("MostFree pick = %q, %v", name, err)
	}
	// Only small fits? No: need > 900 rules out both but need 40 keeps both.
	name, _, err = r.Pick(ctx, 500)
	if err != nil || name != "big" {
		t.Fatalf("pick(500) = %q, %v", name, err)
	}
	if _, _, err := r.Pick(ctx, 5000); !errors.Is(err, ErrNoDevice) {
		t.Fatalf("pick(5000): %v", err)
	}

	// Availability gates selection and lookup.
	r.SetAvailable("big", false)
	name, _, err = r.Pick(ctx, 10)
	if err != nil || name != "small" {
		t.Fatalf("pick with big down = %q, %v", name, err)
	}
	if _, err := r.Lookup("big"); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("Lookup down device: %v", err)
	}
	if _, err := r.Lookup("ghost"); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("Lookup unknown device: %v", err)
	}
	if _, err := r.Lookup("small"); err != nil {
		t.Fatalf("Lookup small: %v", err)
	}
	if names := r.Names(); len(names) != 2 {
		t.Fatalf("Names = %v", names)
	}
	r.Remove("big")
	if names := r.Names(); len(names) != 1 || names[0] != "small" {
		t.Fatalf("Names after remove = %v", names)
	}
}

func TestRegistryFirstFitAndRoundRobin(t *testing.T) {
	r := NewRegistry(SelectFirstFit)
	_ = r.Add("b", NewMem(0))
	_ = r.Add("a", NewMem(0))
	name, _, _ := r.Pick(ctx, 1)
	if name != "a" {
		t.Fatalf("first fit = %q, want a (name order)", name)
	}

	rr := NewRegistry(SelectRoundRobin)
	_ = rr.Add("x", NewMem(0))
	_ = rr.Add("y", NewMem(0))
	n1, _, _ := rr.Pick(ctx, 1)
	n2, _, _ := rr.Pick(ctx, 1)
	n3, _, _ := rr.Pick(ctx, 1)
	if n1 == n2 || n1 != n3 {
		t.Fatalf("round robin sequence = %q %q %q", n1, n2, n3)
	}
}

// Property: a random sequence of Put/Drop operations leaves Mem and Disk in
// identical observable states.
func TestPropMemDiskEquivalence(t *testing.T) {
	fn := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := NewMem(0)
		d, err := NewDisk(t.TempDir(), 0)
		if err != nil {
			return false
		}
		keys := []string{"k1", "k2", "weird key/#", "k3"}
		for op := 0; op < 30; op++ {
			k := keys[r.Intn(len(keys))]
			if r.Intn(3) == 0 {
				e1 := m.Drop(ctx, k)
				e2 := d.Drop(ctx, k)
				if (e1 == nil) != (e2 == nil) {
					return false
				}
			} else {
				payload := make([]byte, r.Intn(64))
				r.Read(payload)
				if m.Put(ctx, k, payload) != nil || d.Put(ctx, k, payload) != nil {
					return false
				}
			}
		}
		mk, _ := m.Keys(ctx)
		dk, _ := d.Keys(ctx)
		if fmt.Sprint(mk) != fmt.Sprint(dk) {
			return false
		}
		for _, k := range mk {
			mv, _ := m.Get(ctx, k)
			dv, _ := d.Get(ctx, k)
			if string(mv) != string(dv) {
				return false
			}
		}
		ms, _ := m.Stats(ctx)
		ds, _ := d.Stats(ctx)
		return ms.Items == ds.Items && ms.Used == ds.Used
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
