package store

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"
)

// ErrLeaseUnsupported reports a donor that does not track leases (a plain
// store, or a swapstore predating the lease protocol). Owners treat it as
// "nothing to renew" — the donor will never expire their replicas.
var ErrLeaseUnsupported = errors.New("store: leases unsupported")

// Leaser is an optional Store extension: donors that garbage-collect
// abandoned replicas by lease implement it, and owners call RenewLease on
// their replica keys to signal they are still alive. ttl <= 0 renews for
// the donor's default TTL.
type Leaser interface {
	RenewLease(ctx context.Context, key string, ttl time.Duration) error
}

// LeaseGC decorates a donor-side store with per-key leases: every Put
// starts a lease of the default TTL, RenewLease extends it, and
// ExpireLapsed drops every key whose lease has lapsed. Wrap a *Versioned
// store to make expiry non-destructive — Versioned.Drop archives the
// payload as a generation instead of destroying it, so a device that
// renews late can still be recovered by the operator.
type LeaseGC struct {
	inner Store
	ttl   time.Duration
	now   func() time.Time

	mu     sync.Mutex
	leases map[string]time.Time // key -> expiry deadline
}

var (
	_ Store       = (*LeaseGC)(nil)
	_ Envelope    = (*LeaseGC)(nil)
	_ Leaser      = (*LeaseGC)(nil)
	_ MultiGetter = (*LeaseGC)(nil)
)

// NewLeaseGC wraps inner with lease tracking. ttl is the default lease
// duration (minimum 1s is enforced); now defaults to time.Now.
func NewLeaseGC(inner Store, ttl time.Duration, now func() time.Time) *LeaseGC {
	if ttl < time.Second {
		ttl = time.Second
	}
	if now == nil {
		now = time.Now
	}
	return &LeaseGC{
		inner:  inner,
		ttl:    ttl,
		now:    now,
		leases: make(map[string]time.Time),
	}
}

// TTL reports the default lease duration.
func (l *LeaseGC) TTL() time.Duration { return l.ttl }

func (l *LeaseGC) lease(key string, ttl time.Duration) {
	if ttl <= 0 {
		ttl = l.ttl
	}
	l.mu.Lock()
	l.leases[key] = l.now().Add(ttl)
	l.mu.Unlock()
}

// Put stores data and starts (or restarts) the key's lease.
func (l *LeaseGC) Put(ctx context.Context, key string, data []byte) error {
	if err := l.inner.Put(ctx, key, data); err != nil {
		return err
	}
	l.lease(key, 0)
	return nil
}

// PutEnvelope stores data with its envelope and starts the key's lease.
func (l *LeaseGC) PutEnvelope(ctx context.Context, key string, data []byte, opts PutOpts) error {
	if err := PutWith(ctx, l.inner, key, data, opts); err != nil {
		return err
	}
	l.lease(key, 0)
	return nil
}

// Get reads through to the wrapped store.
func (l *LeaseGC) Get(ctx context.Context, key string) ([]byte, error) {
	return l.inner.Get(ctx, key)
}

// GetEnvelope reads through to the wrapped store.
func (l *LeaseGC) GetEnvelope(ctx context.Context, key string) ([]byte, PutOpts, error) {
	return GetWith(ctx, l.inner, key)
}

// GetMulti serves a batch through the wrapped store.
func (l *LeaseGC) GetMulti(ctx context.Context, keys []string) (map[string][]byte, error) {
	return GetMulti(ctx, l.inner, keys)
}

// Drop removes the key and forgets its lease.
func (l *LeaseGC) Drop(ctx context.Context, key string) error {
	err := l.inner.Drop(ctx, key)
	if err == nil || errors.Is(err, ErrNotFound) {
		l.mu.Lock()
		delete(l.leases, key)
		l.mu.Unlock()
	}
	return err
}

// Keys lists the wrapped store's keys.
func (l *LeaseGC) Keys(ctx context.Context) ([]string, error) { return l.inner.Keys(ctx) }

// Stats reports the wrapped store's occupancy.
func (l *LeaseGC) Stats(ctx context.Context) (Stats, error) { return l.inner.Stats(ctx) }

// RenewLease extends the lease on key. A key stored before the wrapper
// existed (or by an out-of-band path) is adopted: renewal succeeds as long
// as the key is present. ttl <= 0 uses the default.
func (l *LeaseGC) RenewLease(ctx context.Context, key string, ttl time.Duration) error {
	l.mu.Lock()
	_, tracked := l.leases[key]
	l.mu.Unlock()
	if !tracked {
		if _, err := l.inner.Get(ctx, key); err != nil {
			return fmt.Errorf("renew lease %q: %w", key, err)
		}
	}
	l.lease(key, ttl)
	return nil
}

// ExpireLapsed drops every key whose lease deadline has passed and returns
// the expired keys. When the wrapped store is a *Versioned, each drop
// archives the payload as a version instead of destroying it. A lease whose
// key is already gone is silently forgotten and not reported.
func (l *LeaseGC) ExpireLapsed(ctx context.Context) ([]string, error) {
	now := l.now()
	l.mu.Lock()
	var lapsed []string
	for key, deadline := range l.leases {
		if !deadline.After(now) {
			lapsed = append(lapsed, key)
		}
	}
	l.mu.Unlock()

	var expired []string
	var firstErr error
	for _, key := range lapsed {
		err := l.inner.Drop(ctx, key)
		switch {
		case err == nil:
			expired = append(expired, key)
		case errors.Is(err, ErrNotFound):
			// Dropped out-of-band; just forget the lease.
		default:
			if firstErr == nil {
				firstErr = fmt.Errorf("expire lease %q: %w", key, err)
			}
			continue // keep the lease; retry next sweep
		}
		l.mu.Lock()
		delete(l.leases, key)
		l.mu.Unlock()
	}
	return expired, firstErr
}

// Deadline reports the lease expiry of key, if one is tracked.
func (l *LeaseGC) Deadline(key string) (time.Time, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	d, ok := l.leases[key]
	return d, ok
}

// LeaseCount reports how many keys currently hold a lease.
func (l *LeaseGC) LeaseCount() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.leases)
}
