package store

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Versioned wraps a Store with per-key version retention: Put archives the
// previous payload instead of discarding it, and Drop sets the current
// payload aside rather than destroying it. This implements the paper's
// aside in Section 3 — when a swap-cluster is ultimately dropped, its
// content may be "set-aside if ... still required for other purposes
// (consistency, reconciliation, versioning, etc.)".
//
// The live key space is untouched: Get/Keys/Drop behave exactly like the
// wrapped store for current payloads, so a Versioned store is a drop-in
// swapping device. Archived generations live under reserved keys
// ("<key>#v<N>") in the same underlying store and are reachable through
// Versions/GetVersion/PruneVersions.
type Versioned struct {
	mu    sync.Mutex
	inner Store
	// keep bounds retained generations per key (0 = unlimited).
	keep int
	// gens tracks the next generation number per key.
	gens map[string]int
}

var (
	_ Store    = (*Versioned)(nil)
	_ Envelope = (*Versioned)(nil)
)

// versionSep separates the key from the generation suffix. Clients must not
// use it in their own keys; Put rejects offenders.
const versionSep = "#v"

// ErrVersionedKey reports a client key that collides with the version
// namespace.
var ErrVersionedKey = errors.New("store: key collides with version namespace")

// NewVersioned wraps inner, retaining up to keep archived generations per
// key (0 = unlimited).
func NewVersioned(inner Store, keep int) *Versioned {
	return &Versioned{inner: inner, keep: keep, gens: make(map[string]int)}
}

func versionKey(key string, gen int) string {
	return key + versionSep + strconv.Itoa(gen)
}

// isVersionKey splits an underlying key into (base, generation).
func isVersionKey(k string) (string, int, bool) {
	i := strings.LastIndex(k, versionSep)
	if i < 0 {
		return "", 0, false
	}
	gen, err := strconv.Atoi(k[i+len(versionSep):])
	if err != nil {
		return "", 0, false
	}
	return k[:i], gen, true
}

// Put stores data under key, archiving any previous payload as a new
// generation.
func (v *Versioned) Put(ctx context.Context, key string, data []byte) error {
	return v.PutEnvelope(ctx, key, data, PutOpts{})
}

// PutEnvelope stores data under key with its envelope, archiving any
// previous payload (envelope included) as a new generation.
func (v *Versioned) PutEnvelope(ctx context.Context, key string, data []byte, opts PutOpts) error {
	if strings.Contains(key, versionSep) {
		return fmt.Errorf("%w: %q", ErrVersionedKey, key)
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if err := v.archiveLocked(ctx, key); err != nil {
		return err
	}
	return PutWith(ctx, v.inner, key, data, opts)
}

// GetEnvelope returns the current payload of key with its envelope.
func (v *Versioned) GetEnvelope(ctx context.Context, key string) ([]byte, PutOpts, error) {
	return GetWith(ctx, v.inner, key)
}

// archiveLocked moves the current payload of key (if any) into the next
// generation slot — envelope preserved — and prunes beyond the retention
// bound.
func (v *Versioned) archiveLocked(ctx context.Context, key string) error {
	cur, opts, err := GetWith(ctx, v.inner, key)
	if errors.Is(err, ErrNotFound) {
		return nil
	}
	if err != nil {
		return err
	}
	gen := v.gens[key]
	v.gens[key] = gen + 1
	if err := PutWith(ctx, v.inner, versionKey(key, gen), cur, opts); err != nil {
		return err
	}
	return v.pruneLocked(ctx, key)
}

// pruneLocked enforces the retention bound for key.
func (v *Versioned) pruneLocked(ctx context.Context, key string) error {
	if v.keep <= 0 {
		return nil
	}
	gens, err := v.versionsLocked(ctx, key)
	if err != nil {
		return err
	}
	for len(gens) > v.keep {
		if err := v.inner.Drop(ctx, versionKey(key, gens[0])); err != nil {
			return err
		}
		gens = gens[1:]
	}
	return nil
}

// Get returns the current payload of key.
func (v *Versioned) Get(ctx context.Context, key string) ([]byte, error) {
	return v.inner.Get(ctx, key)
}

// GetMulti serves a batch through the wrapped store (batched when the inner
// store supports it). Reads never touch the archive, so no lock is needed.
func (v *Versioned) GetMulti(ctx context.Context, keys []string) (map[string][]byte, error) {
	return GetMulti(ctx, v.inner, keys)
}

// Drop sets the current payload aside as a generation instead of destroying
// it, then removes the live key.
func (v *Versioned) Drop(ctx context.Context, key string) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	if err := v.archiveLocked(ctx, key); err != nil {
		return err
	}
	return v.inner.Drop(ctx, key)
}

// Keys enumerates live keys only (archived generations are hidden).
func (v *Versioned) Keys(ctx context.Context) ([]string, error) {
	all, err := v.inner.Keys(ctx)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, k := range all {
		if _, _, isVer := isVersionKey(k); !isVer {
			out = append(out, k)
		}
	}
	return out, nil
}

// Stats reports the underlying occupancy (archives included: they do occupy
// the device).
func (v *Versioned) Stats(ctx context.Context) (Stats, error) {
	return v.inner.Stats(ctx)
}

// Versions lists the archived generation numbers of key, oldest first.
func (v *Versioned) Versions(ctx context.Context, key string) ([]int, error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.versionsLocked(ctx, key)
}

func (v *Versioned) versionsLocked(ctx context.Context, key string) ([]int, error) {
	all, err := v.inner.Keys(ctx)
	if err != nil {
		return nil, err
	}
	var gens []int
	for _, k := range all {
		if base, gen, isVer := isVersionKey(k); isVer && base == key {
			gens = append(gens, gen)
		}
	}
	sort.Ints(gens)
	return gens, nil
}

// GetVersion returns one archived generation of key.
func (v *Versioned) GetVersion(ctx context.Context, key string, gen int) ([]byte, error) {
	return v.inner.Get(ctx, versionKey(key, gen))
}

// PruneVersions discards every archived generation of key.
func (v *Versioned) PruneVersions(ctx context.Context, key string) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	gens, err := v.versionsLocked(ctx, key)
	if err != nil {
		return err
	}
	for _, gen := range gens {
		if err := v.inner.Drop(ctx, versionKey(key, gen)); err != nil {
			return err
		}
	}
	return nil
}
