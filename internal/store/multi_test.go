package store

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
)

// ctxT shortens the adapter method signatures below.
type ctxT = context.Context

// plainStore strips Mem down to the bare Store interface so the GetMulti
// helper's per-key fallback path is exercised (no MultiGetter assertion).
type plainStore struct{ m *Mem }

func (p plainStore) Put(ctx0 ctxT, key string, data []byte) error { return p.m.Put(ctx0, key, data) }
func (p plainStore) Get(ctx0 ctxT, key string) ([]byte, error)    { return p.m.Get(ctx0, key) }
func (p plainStore) Drop(ctx0 ctxT, key string) error             { return p.m.Drop(ctx0, key) }
func (p plainStore) Keys(ctx0 ctxT) ([]string, error)             { return p.m.Keys(ctx0) }
func (p plainStore) Stats(ctx0 ctxT) (Stats, error)               { return p.m.Stats(ctx0) }

func seedMulti(t *testing.T, s Store) {
	t.Helper()
	for k, v := range map[string]string{"a": "A", "b": "B", "c": "C"} {
		if err := s.Put(ctx, k, []byte(v)); err != nil {
			t.Fatal(err)
		}
	}
}

func TestGetMultiNativeAndFallback(t *testing.T) {
	mem := NewMem(0)
	seedMulti(t, mem)
	want := map[string][]byte{"a": []byte("A"), "c": []byte("C")}

	// Native path: Mem implements MultiGetter, one lock for the batch.
	got, err := GetMulti(ctx, mem, []string{"a", "c", "missing"})
	if err != nil || !reflect.DeepEqual(got, want) {
		t.Fatalf("native GetMulti = %v, %v", got, err)
	}

	// Fallback path: a bare Store is served per-key, missing keys omitted.
	got, err = GetMulti(ctx, plainStore{mem}, []string{"a", "c", "missing"})
	if err != nil || !reflect.DeepEqual(got, want) {
		t.Fatalf("fallback GetMulti = %v, %v", got, err)
	}
}

func TestGetMultiPayloadsAreCopies(t *testing.T) {
	mem := NewMem(0)
	seedMulti(t, mem)
	got, err := GetMulti(ctx, mem, []string{"a"})
	if err != nil {
		t.Fatal(err)
	}
	got["a"][0] = 'Z'
	again, err := mem.Get(ctx, "a")
	if err != nil || string(again) != "A" {
		t.Fatalf("stored payload mutated through the batch result: %q, %v", again, err)
	}
}

func TestHTTPBatchEndpoint(t *testing.T) {
	mem := NewMem(0)
	seedMulti(t, mem)
	srv := httptest.NewServer(NewHandler(mem))
	defer srv.Close()
	c := NewClient(srv.URL)

	got, err := c.GetMulti(ctx, []string{"a", "b", "missing"})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string][]byte{"a": []byte("A"), "b": []byte("B")}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("batch round trip = %v, want %v", got, want)
	}

	// Empty key list is a valid (empty) batch.
	got, err = c.GetMulti(ctx, nil)
	if err != nil || len(got) != 0 {
		t.Fatalf("empty batch = %v, %v", got, err)
	}
}

// TestHTTPBatchLegacyFallback points the client at a donor without the
// /batch route (a pre-protocol swapstore): the 404 must degrade to per-key
// Gets, not an error.
func TestHTTPBatchLegacyFallback(t *testing.T) {
	mem := NewMem(0)
	seedMulti(t, mem)
	inner := NewHandler(mem)
	legacy := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/batch" {
			http.NotFound(w, r)
			return
		}
		inner.ServeHTTP(w, r)
	})
	srv := httptest.NewServer(legacy)
	defer srv.Close()

	got, err := NewClient(srv.URL).GetMulti(ctx, []string{"a", "missing", "c"})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string][]byte{"a": []byte("A"), "c": []byte("C")}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("legacy fallback = %v, want %v", got, want)
	}
}

func TestVersionedGetMultiSkipsArchive(t *testing.T) {
	v := NewVersioned(NewMem(0), 0)
	seedMulti(t, v)
	if err := v.Put(ctx, "a", []byte("A2")); err != nil { // archives A as a#v1
		t.Fatal(err)
	}
	got, err := GetMulti(ctx, v, []string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string][]byte{"a": []byte("A2"), "b": []byte("B")}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("versioned batch = %v, want %v", got, want)
	}
}

func TestGetMultiAbortsOnRealError(t *testing.T) {
	boom := errors.New("donor exploded")
	fs := failingStore{err: boom}
	if _, err := GetMulti(ctx, fs, []string{"a"}); !errors.Is(err, boom) {
		t.Fatalf("fallback swallowed a non-NotFound error: %v", err)
	}
}

type failingStore struct{ err error }

func (f failingStore) Put(ctx0 ctxT, key string, data []byte) error { return f.err }
func (f failingStore) Get(ctx0 ctxT, key string) ([]byte, error)    { return nil, f.err }
func (f failingStore) Drop(ctx0 ctxT, key string) error             { return f.err }
func (f failingStore) Keys(ctx0 ctxT) ([]string, error)             { return nil, f.err }
func (f failingStore) Stats(ctx0 ctxT) (Stats, error)               { return Stats{}, f.err }
