// Package store implements the swapping-device substrate: the "nearby
// devices" of the paper that receive swapped-out object clusters.
//
// The paper's key portability requirement is that such devices need no
// virtual machine, no middleware and no application classes — they must only
// be able to store, return and drop keyed XML text. The Store interface is
// exactly that contract. Implementations cover the deployment spectrum the
// paper envisions: an in-memory store (another PDA's RAM), a disk store (a
// desktop PC holding files), and an HTTP store (the web-services
// communication bridge of the OBIWAN prototype).
//
// Every operation takes a context.Context: the links to these devices are
// flaky Bluetooth-class radios, so callers must be able to bound and cancel
// each transfer. Third-party stores written against the original context-free
// contract plug in through the Legacy adapter.
//
// A Registry aggregates several named devices and picks a destination for
// each swap-out, modelling the paper's scenario of "a myriad of small
// memory-enabled devices with wireless connectivity, scattered all-over".
package store

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Errors reported by stores.
var (
	// ErrNotFound reports a key with no stored data.
	ErrNotFound = errors.New("store: key not found")
	// ErrCapacity reports that a device has no room for the payload.
	ErrCapacity = errors.New("store: capacity exceeded")
	// ErrUnavailable reports that the device is out of reach (link down).
	ErrUnavailable = errors.New("store: device unavailable")
)

// Stats describes a device's occupancy and capabilities.
type Stats struct {
	Capacity int64 `json:"capacity"` // bytes; 0 = unlimited
	Used     int64 `json:"used"`
	Items    int   `json:"items"`
	// Formats lists the wire formats this donor accepts (see internal/wire).
	// Empty or absent means the donor predates format negotiation and speaks
	// only the universal XML fallback — constrained devices treat a missing
	// advertisement as ["xml"].
	Formats []string `json:"formats,omitempty"`
}

// Free returns the remaining byte capacity, or a very large number when
// unlimited.
func (s Stats) Free() int64 {
	if s.Capacity <= 0 {
		return 1<<62 - 1
	}
	return s.Capacity - s.Used
}

// Store is the full contract a swapping device must honor: store, return,
// drop (and enumerate) keyed opaque text. Every operation observes the
// context's deadline and cancellation — a store must not outlive ctx on a
// slow or dead link.
type Store interface {
	// Put stores data under key, replacing any previous payload.
	Put(ctx context.Context, key string, data []byte) error
	// Get returns the payload stored under key.
	Get(ctx context.Context, key string) ([]byte, error)
	// Drop removes the payload stored under key. Dropping an absent key is
	// an error (ErrNotFound) so protocol bugs surface.
	Drop(ctx context.Context, key string) error
	// Keys enumerates stored keys in sorted order.
	Keys(ctx context.Context) ([]string, error)
	// Stats reports occupancy.
	Stats(ctx context.Context) (Stats, error)
}

// ContextFree is the original store contract, kept for third-party device
// implementations that predate the context-aware API. Wrap one in Legacy to
// use it as a Store.
type ContextFree interface {
	Put(key string, data []byte) error
	Get(key string) ([]byte, error)
	Drop(key string) error
	Keys() ([]string, error)
	Stats() (Stats, error)
}

// Legacy adapts a context-free store to the Store contract. The inner store
// cannot be interrupted mid-operation, so Legacy honors ctx at the only
// point it can: it refuses to start an operation on an already-done context.
type Legacy struct {
	Inner ContextFree
}

var _ Store = Legacy{}

// NewLegacy wraps a context-free store.
func NewLegacy(s ContextFree) Legacy { return Legacy{Inner: s} }

// Put forwards after a cancellation check.
func (l Legacy) Put(ctx context.Context, key string, data []byte) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return l.Inner.Put(key, data)
}

// Get forwards after a cancellation check.
func (l Legacy) Get(ctx context.Context, key string) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return l.Inner.Get(key)
}

// Drop forwards after a cancellation check.
func (l Legacy) Drop(ctx context.Context, key string) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return l.Inner.Drop(key)
}

// Keys forwards after a cancellation check.
func (l Legacy) Keys(ctx context.Context) ([]string, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return l.Inner.Keys()
}

// Stats forwards after a cancellation check.
func (l Legacy) Stats(ctx context.Context) (Stats, error) {
	if err := ctx.Err(); err != nil {
		return Stats{}, err
	}
	return l.Inner.Stats()
}

// Mem is an in-memory Store with optional byte capacity. It implements the
// Envelope extension and by default accepts every built-in wire format;
// SetFormats narrows the advertisement (e.g. to model an XML-only donor).
type Mem struct {
	mu       sync.RWMutex
	capacity int64
	used     int64
	items    map[string][]byte
	kinds    map[string]string // stored envelope format per key ("" = unspecified)
	formats  []string
}

var (
	_ Store    = (*Mem)(nil)
	_ Envelope = (*Mem)(nil)
)

// NewMem returns an empty in-memory store. capacity <= 0 means unlimited.
func NewMem(capacity int64) *Mem {
	return &Mem{
		capacity: capacity,
		items:    make(map[string][]byte),
		kinds:    make(map[string]string),
		formats:  BuiltinFormats,
	}
}

// SetFormats replaces the store's wire-format advertisement. The XML
// fallback is always accepted regardless of the advertisement.
func (m *Mem) SetFormats(formats ...string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.formats = append([]string(nil), formats...)
}

// Put stores data under key with an unspecified (XML-fallback) envelope.
func (m *Mem) Put(ctx context.Context, key string, data []byte) error {
	return m.PutEnvelope(ctx, key, data, PutOpts{})
}

// PutEnvelope stores data under key with its envelope.
func (m *Mem) PutEnvelope(ctx context.Context, key string, data []byte, opts PutOpts) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if key == "" {
		return errors.New("store: empty key")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if !formatAccepted(m.formats, opts.Format) {
		return fmt.Errorf("%w: %q (accepts %v)", ErrUnsupportedFormat, opts.Format, m.formats)
	}
	next := m.used - int64(len(m.items[key])) + int64(len(data))
	if m.capacity > 0 && next > m.capacity {
		return fmt.Errorf("%w: need %d bytes, %d of %d used",
			ErrCapacity, len(data), m.used, m.capacity)
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	m.items[key] = cp
	if opts.Format == "" {
		delete(m.kinds, key)
	} else {
		m.kinds[key] = opts.Format
	}
	m.used = next
	return nil
}

// GetEnvelope returns the payload and the envelope it was stored with;
// payloads stored without one report the XML fallback.
func (m *Mem) GetEnvelope(ctx context.Context, key string) ([]byte, PutOpts, error) {
	data, err := m.Get(ctx, key)
	if err != nil {
		return nil, PutOpts{}, err
	}
	m.mu.RLock()
	format := m.kinds[key]
	m.mu.RUnlock()
	if format == "" {
		format = FormatXML
	}
	return data, PutOpts{Format: format}, nil
}

// Get returns the payload stored under key.
func (m *Mem) Get(ctx context.Context, key string) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	data, ok := m.items[key]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, key)
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	return cp, nil
}

// Drop removes the payload stored under key.
func (m *Mem) Drop(ctx context.Context, key string) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	data, ok := m.items[key]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotFound, key)
	}
	delete(m.items, key)
	delete(m.kinds, key)
	m.used -= int64(len(data))
	return nil
}

// Keys enumerates stored keys in sorted order.
func (m *Mem) Keys(ctx context.Context) ([]string, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	keys := make([]string, 0, len(m.items))
	for k := range m.items {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys, nil
}

// Stats reports occupancy.
func (m *Mem) Stats(ctx context.Context) (Stats, error) {
	if err := ctx.Err(); err != nil {
		return Stats{}, err
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	return Stats{
		Capacity: m.capacity,
		Used:     m.used,
		Items:    len(m.items),
		Formats:  append([]string(nil), m.formats...),
	}, nil
}
