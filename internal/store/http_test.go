package store

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
)

func TestHTTPClientContract(t *testing.T) {
	srv := httptest.NewServer(NewHandler(NewMem(0)))
	defer srv.Close()
	storeContract(t, NewClient(srv.URL))
}

func TestHTTPCapacityMapsTo507(t *testing.T) {
	srv := httptest.NewServer(NewHandler(NewMem(4)))
	defer srv.Close()
	c := NewClient(srv.URL)
	if err := c.Put(ctx, "k", make([]byte, 16)); !errors.Is(err, ErrCapacity) {
		t.Fatalf("remote capacity error: %v", err)
	}
}

func TestHTTPStatsAdvertisesCapacity(t *testing.T) {
	// The stats a swapstore serves over HTTP are the weights the placement
	// planner ranks donors by: capacity, usage and the derived free space must
	// survive the round trip exactly.
	srv := httptest.NewServer(NewHandler(NewMem(1 << 20)))
	defer srv.Close()
	c := NewClient(srv.URL)

	if err := c.Put(ctx, "k1", make([]byte, 300)); err != nil {
		t.Fatal(err)
	}
	if err := c.Put(ctx, "k2", make([]byte, 200)); err != nil {
		t.Fatal(err)
	}
	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Capacity != 1<<20 || st.Used != 500 || st.Items != 2 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Free() != 1<<20-500 {
		t.Fatalf("free = %d", st.Free())
	}

	// An unlimited donor advertises the unlimited sentinel weight.
	srv2 := httptest.NewServer(NewHandler(NewMem(0)))
	defer srv2.Close()
	st2, err := NewClient(srv2.URL).Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Capacity != 0 || st2.Free() != 1<<62-1 {
		t.Fatalf("unlimited stats = %+v free %d", st2, st2.Free())
	}
}

func TestHTTPUnreachable(t *testing.T) {
	c := NewClient("http://127.0.0.1:1") // nothing listens there
	if err := c.Put(ctx, "k", []byte("x")); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("Put to dead host: %v", err)
	}
	if _, err := c.Get(ctx, "k"); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("Get from dead host: %v", err)
	}
	if err := c.Drop(ctx, "k"); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("Drop on dead host: %v", err)
	}
	if _, err := c.Keys(ctx); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("Keys on dead host: %v", err)
	}
	if _, err := c.Stats(ctx); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("Stats on dead host: %v", err)
	}
}

func TestHTTPHandlerRejectsBadRequests(t *testing.T) {
	srv := httptest.NewServer(NewHandler(NewMem(0)))
	defer srv.Close()
	c := srv.Client()

	for _, tc := range []struct {
		method, path string
		wantStatus   int
	}{
		{"GET", "/nope", 404},
		{"POST", "/clusters/k", 405},
		{"POST", "/clusters", 404},
		{"GET", "/clusters/", 400},
		{"DELETE", "/clusters/absent", 404},
		{"GET", "/clusters/absent", 404},
	} {
		req, err := http.NewRequest(tc.method, srv.URL+tc.path, nil)
		if err != nil {
			t.Fatalf("%s %s: %v", tc.method, tc.path, err)
		}
		resp, err := c.Do(req)
		if err != nil {
			t.Fatalf("%s %s: %v", tc.method, tc.path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.wantStatus {
			t.Errorf("%s %s: status %d, want %d", tc.method, tc.path, resp.StatusCode, tc.wantStatus)
		}
	}
}
