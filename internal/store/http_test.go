package store

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
)

func TestHTTPClientContract(t *testing.T) {
	srv := httptest.NewServer(NewHandler(NewMem(0)))
	defer srv.Close()
	storeContract(t, NewClient(srv.URL))
}

func TestHTTPCapacityMapsTo507(t *testing.T) {
	srv := httptest.NewServer(NewHandler(NewMem(4)))
	defer srv.Close()
	c := NewClient(srv.URL)
	if err := c.Put(ctx, "k", make([]byte, 16)); !errors.Is(err, ErrCapacity) {
		t.Fatalf("remote capacity error: %v", err)
	}
}

func TestHTTPUnreachable(t *testing.T) {
	c := NewClient("http://127.0.0.1:1") // nothing listens there
	if err := c.Put(ctx, "k", []byte("x")); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("Put to dead host: %v", err)
	}
	if _, err := c.Get(ctx, "k"); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("Get from dead host: %v", err)
	}
	if err := c.Drop(ctx, "k"); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("Drop on dead host: %v", err)
	}
	if _, err := c.Keys(ctx); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("Keys on dead host: %v", err)
	}
	if _, err := c.Stats(ctx); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("Stats on dead host: %v", err)
	}
}

func TestHTTPHandlerRejectsBadRequests(t *testing.T) {
	srv := httptest.NewServer(NewHandler(NewMem(0)))
	defer srv.Close()
	c := srv.Client()

	for _, tc := range []struct {
		method, path string
		wantStatus   int
	}{
		{"GET", "/nope", 404},
		{"POST", "/clusters/k", 405},
		{"POST", "/clusters", 404},
		{"GET", "/clusters/", 400},
		{"DELETE", "/clusters/absent", 404},
		{"GET", "/clusters/absent", 404},
	} {
		req, err := http.NewRequest(tc.method, srv.URL+tc.path, nil)
		if err != nil {
			t.Fatalf("%s %s: %v", tc.method, tc.path, err)
		}
		resp, err := c.Do(req)
		if err != nil {
			t.Fatalf("%s %s: %v", tc.method, tc.path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.wantStatus {
			t.Errorf("%s %s: status %d, want %d", tc.method, tc.path, resp.StatusCode, tc.wantStatus)
		}
	}
}
