package store

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
)

// SelectStrategy chooses the destination device for a swap-out.
type SelectStrategy uint8

const (
	// SelectMostFree picks the reachable device with the most free bytes —
	// the sensible default for the paper's heterogeneous device population.
	SelectMostFree SelectStrategy = iota + 1
	// SelectFirstFit picks the first reachable device (by name order) with
	// room for the payload.
	SelectFirstFit
	// SelectRoundRobin rotates across reachable devices with room,
	// spreading clusters over the neighborhood.
	SelectRoundRobin
)

// ErrNoDevice reports that no reachable device can hold a payload.
var ErrNoDevice = errors.New("store: no reachable device with capacity")

// Device is one named nearby device in the registry.
type Device struct {
	Name      string
	Store     Store
	Available bool
}

// Registry tracks the nearby devices currently visible to the constrained
// node and selects swap-out destinations. It implements the core package's
// StoreProvider contract.
type Registry struct {
	mu       sync.Mutex
	devices  map[string]*Device
	strategy SelectStrategy
	rrCursor int
}

// NewRegistry returns an empty registry using the given selection strategy.
func NewRegistry(strategy SelectStrategy) *Registry {
	if strategy == 0 {
		strategy = SelectMostFree
	}
	return &Registry{devices: make(map[string]*Device), strategy: strategy}
}

// Add registers a device as available. Adding a duplicate name is an error.
func (r *Registry) Add(name string, s Store) error {
	if name == "" || s == nil {
		return errors.New("store: Add: empty name or nil store")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.devices[name]; dup {
		return fmt.Errorf("store: device %q already registered", name)
	}
	r.devices[name] = &Device{Name: name, Store: s, Available: true}
	return nil
}

// Remove forgets a device entirely.
func (r *Registry) Remove(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.devices, name)
}

// SetAvailable flips a device's reachability (driven by the connectivity
// monitor). Unknown names are ignored.
func (r *Registry) SetAvailable(name string, available bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if d, ok := r.devices[name]; ok {
		d.Available = available
	}
}

// Names returns the sorted names of all registered devices.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.devices))
	for n := range r.devices {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Available snapshots the reachable devices in name order. The placement
// planner enumerates donors through this: rendezvous hashing needs the whole
// candidate set, not a single winner.
func (r *Registry) Available() []Device {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Device, 0, len(r.devices))
	for _, d := range r.devices {
		if d.Available {
			out = append(out, *d)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Lookup returns the store of a named device, failing when the device is
// unknown or unreachable.
func (r *Registry) Lookup(name string) (Store, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	d, ok := r.devices[name]
	if !ok {
		return nil, fmt.Errorf("%w: device %q unknown", ErrUnavailable, name)
	}
	if !d.Available {
		return nil, fmt.Errorf("%w: device %q unreachable", ErrUnavailable, name)
	}
	return d.Store, nil
}

// Peek returns a device's store regardless of availability. Health probes
// need a handle on exactly the devices the registry has stopped offering.
func (r *Registry) Peek(name string) (Store, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	d, ok := r.devices[name]
	if !ok {
		return nil, false
	}
	return d.Store, true
}

// Pick selects a destination with at least need free bytes according to the
// registry strategy, skipping any device named in exclude (used by swap-out
// failover to avoid re-selecting a device that just failed a shipment). It
// returns the device name and its store.
func (r *Registry) Pick(ctx context.Context, need int64, exclude ...string) (string, Store, error) {
	skip := make(map[string]bool, len(exclude))
	for _, n := range exclude {
		skip[n] = true
	}

	type candidate struct {
		name string
		s    Store
		free int64
	}

	// Snapshot the eligible devices under the lock, but probe their Stats
	// outside it: a probe may be a (slow) network call, and a resilience
	// decorator that declares the device unhealthy mid-probe re-enters the
	// registry through SetAvailable.
	r.mu.Lock()
	var eligible []candidate
	names := make([]string, 0, len(r.devices))
	for n := range r.devices {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		d := r.devices[n]
		if !d.Available || skip[n] {
			continue
		}
		eligible = append(eligible, candidate{name: n, s: d.Store})
	}
	r.mu.Unlock()

	var candidates []candidate
	for _, c := range eligible {
		st, err := c.s.Stats(ctx)
		if err != nil {
			continue // unreachable right now; skip
		}
		if st.Free() >= need {
			c.free = st.Free()
			candidates = append(candidates, c)
		}
	}
	if len(candidates) == 0 {
		return "", nil, fmt.Errorf("%w: need %d bytes", ErrNoDevice, need)
	}
	switch r.strategy {
	case SelectFirstFit:
		c := candidates[0]
		return c.name, c.s, nil
	case SelectRoundRobin:
		r.mu.Lock()
		c := candidates[r.rrCursor%len(candidates)]
		r.rrCursor++
		r.mu.Unlock()
		return c.name, c.s, nil
	default: // SelectMostFree
		best := candidates[0]
		for _, c := range candidates[1:] {
			if c.free > best.free {
				best = c
			}
		}
		return best.name, best.s, nil
	}
}
