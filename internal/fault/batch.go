package fault

import (
	"context"
	"fmt"

	"objectswap/internal/store"
)

// donorQueue serializes fetches against one donor so concurrent misses can
// be merged. All fields are guarded by Engine.dmu.
type donorQueue struct {
	inflight bool
	waiting  []*fetchReq
}

// fetchReq is one queued key waiting to ride a batched donor round trip.
type fetchReq struct {
	ctx  context.Context
	key  string
	done chan struct{}
	data []byte
	err  error
}

// Fetch reads key from the named donor with natural batching: the first
// fetch against an idle donor goes out directly (no added latency), and any
// fetch arriving while the donor is busy queues up. The in-flight caller
// drains the queue in one multi-key round trip (store.GetMulti, with a
// per-key fallback for donors without the extension) before releasing the
// donor, looping until nothing is waiting.
//
// Single-flight coalescing runs above this, so the queue only ever merges
// fetches for distinct clusters — exactly the case where one batched round
// trip replaces several.
func (e *Engine) Fetch(ctx context.Context, donor string, s store.Store, key string) ([]byte, error) {
	if e == nil {
		return s.Get(ctx, key)
	}
	e.dmu.Lock()
	q := e.donors[donor]
	if q == nil {
		q = &donorQueue{}
		e.donors[donor] = q
	}
	if q.inflight {
		req := &fetchReq{ctx: ctx, key: key, done: make(chan struct{})}
		q.waiting = append(q.waiting, req)
		e.dmu.Unlock()
		<-req.done
		return req.data, req.err
	}
	q.inflight = true
	e.dmu.Unlock()

	data, err := s.Get(ctx, key)

	for {
		e.dmu.Lock()
		batch := q.waiting
		q.waiting = nil
		if len(batch) == 0 {
			q.inflight = false
			e.dmu.Unlock()
			return data, err
		}
		e.dmu.Unlock()
		e.serveBatch(s, batch)
	}
}

// serveBatch resolves a drained queue of fetch requests with one multi-key
// round trip, falling back to per-request Gets if the batch itself fails in
// transit.
func (e *Engine) serveBatch(s store.Store, batch []*fetchReq) {
	keys := make([]string, 0, len(batch))
	seen := make(map[string]bool, len(batch))
	for _, r := range batch {
		if !seen[r.key] {
			seen[r.key] = true
			keys = append(keys, r.key)
		}
	}
	e.batchRounds.Inc()
	e.batchKeys.Add(float64(len(keys)))

	got, err := store.GetMulti(batch[0].ctx, s, keys)
	for _, r := range batch {
		switch {
		case err != nil:
			// The batch transport failed wholesale; give each waiter its
			// own direct attempt under its own context.
			r.data, r.err = s.Get(r.ctx, r.key)
		default:
			data, ok := got[r.key]
			if !ok {
				r.err = fmt.Errorf("%w: %s", store.ErrNotFound, r.key)
			} else {
				r.data = data
			}
		}
		close(r.done)
	}
}
