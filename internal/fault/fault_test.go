package fault

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"objectswap/internal/store"
)

// TestDoCoalesces parks N concurrent callers for one cluster on a single
// flight: the leader's run fires once and every waiter resumes with the
// leader's result.
func TestDoCoalesces(t *testing.T) {
	e := New(Config{})
	defer e.Stop()

	release := make(chan struct{})
	var runs atomic.Int32
	leaderDone := make(chan struct{})
	go func() {
		defer close(leaderDone)
		res, leader, err := e.Do(7, func() (any, error) {
			runs.Add(1)
			<-release
			return "payload", nil
		})
		if !leader || err != nil || res != "payload" {
			t.Errorf("leader: res=%v leader=%v err=%v", res, leader, err)
		}
	}()
	// Wait until the leader owns the flight before spawning waiters.
	waitFor(t, func() bool {
		e.fmu.Lock()
		defer e.fmu.Unlock()
		return len(e.flights) == 1
	})

	const waiters = 8
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, leader, err := e.Do(7, func() (any, error) {
				runs.Add(1)
				return "unexpected", nil
			})
			if leader || err != nil || res != "payload" {
				t.Errorf("waiter: res=%v leader=%v err=%v", res, leader, err)
			}
		}()
	}
	waitFor(t, func() bool { return e.Snapshot().CoalescedWaiters == waiters })
	close(release)
	<-leaderDone
	wg.Wait()

	if got := runs.Load(); got != 1 {
		t.Fatalf("run fired %d times, want 1", got)
	}
	// A different cluster never coalesces with cluster 7's flight.
	if _, leader, _ := e.Do(8, func() (any, error) { return nil, nil }); !leader {
		t.Fatal("fresh cluster did not lead its own flight")
	}
}

// TestDoErrorPropagatesAndClears delivers the leader's error to every
// waiter and leaves no flight behind, so a retry starts fresh.
func TestDoErrorPropagatesAndClears(t *testing.T) {
	e := New(Config{})
	defer e.Stop()

	sentinel := errors.New("donor flaked")
	release := make(chan struct{})
	results := make(chan error, 4)
	go func() {
		_, _, err := e.Do(3, func() (any, error) { <-release; return nil, sentinel })
		results <- err
	}()
	waitFor(t, func() bool {
		e.fmu.Lock()
		defer e.fmu.Unlock()
		return len(e.flights) == 1
	})
	for i := 0; i < 3; i++ {
		go func() {
			_, _, err := e.Do(3, func() (any, error) { return nil, nil })
			results <- err
		}()
	}
	waitFor(t, func() bool { return e.Snapshot().CoalescedWaiters == 3 })
	close(release)
	for i := 0; i < 4; i++ {
		if err := <-results; !errors.Is(err, sentinel) {
			t.Fatalf("caller %d got %v, want the leader's error", i, err)
		}
	}
	// The failed flight is gone: the next caller leads and can succeed.
	res, leader, err := e.Do(3, func() (any, error) { return 42, nil })
	if !leader || err != nil || res != 42 {
		t.Fatalf("retry after failure: res=%v leader=%v err=%v", res, leader, err)
	}
}

// blockingStore blocks the first Get until released, then serves from the
// inner Mem. It counts Get and GetMulti keys separately.
type blockingStore struct {
	*store.Mem
	release   chan struct{}
	gets      atomic.Int32
	multiKeys atomic.Int32
	multis    atomic.Int32
}

func (b *blockingStore) Get(ctx context.Context, key string) ([]byte, error) {
	if b.gets.Add(1) == 1 {
		<-b.release
	}
	return b.Mem.Get(ctx, key)
}

func (b *blockingStore) GetMulti(ctx context.Context, keys []string) (map[string][]byte, error) {
	b.multis.Add(1)
	b.multiKeys.Add(int32(len(keys)))
	return b.Mem.GetMulti(ctx, keys)
}

// TestFetchBatchesPerDonor merges fetches that land on a busy donor into one
// multi-key round served by the in-flight caller.
func TestFetchBatchesPerDonor(t *testing.T) {
	e := New(Config{})
	defer e.Stop()

	bs := &blockingStore{Mem: store.NewMem(0), release: make(chan struct{})}
	ctx := context.Background()
	for _, k := range []string{"a", "b", "c"} {
		if err := bs.Put(ctx, k, []byte("payload-"+k)); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	got := make([][]byte, 3)
	errs := make([]error, 3)
	wg.Add(1)
	go func() { defer wg.Done(); got[0], errs[0] = e.Fetch(ctx, "donor", bs, "a") }()
	// The first fetch must be in flight (blocked in Get) before the others
	// arrive, or they would lead their own direct fetches.
	waitFor(t, func() bool { return bs.gets.Load() == 1 })
	wg.Add(2)
	go func() { defer wg.Done(); got[1], errs[1] = e.Fetch(ctx, "donor", bs, "b") }()
	go func() { defer wg.Done(); got[2], errs[2] = e.Fetch(ctx, "donor", bs, "c") }()
	waitFor(t, func() bool {
		e.dmu.Lock()
		defer e.dmu.Unlock()
		q := e.donors["donor"]
		return q != nil && len(q.waiting) == 2
	})
	close(bs.release)
	wg.Wait()

	for i, k := range []string{"a", "b", "c"} {
		if errs[i] != nil {
			t.Fatalf("fetch %q: %v", k, errs[i])
		}
		if want := "payload-" + k; string(got[i]) != want {
			t.Fatalf("fetch %q = %q, want %q", k, got[i], want)
		}
	}
	if bs.gets.Load() != 1 {
		t.Fatalf("per-key Gets = %d, want 1 (the leader's direct fetch)", bs.gets.Load())
	}
	if bs.multis.Load() != 1 || bs.multiKeys.Load() != 2 {
		t.Fatalf("GetMulti rounds=%d keys=%d, want one 2-key round",
			bs.multis.Load(), bs.multiKeys.Load())
	}
	snap := e.Snapshot()
	if snap.BatchRounds != 1 || snap.BatchKeys != 2 {
		t.Fatalf("snapshot batching = %d rounds / %d keys, want 1 / 2",
			snap.BatchRounds, snap.BatchKeys)
	}
}

// TestFetchBatchMissingKey maps a key the donor no longer holds to
// store.ErrNotFound for that caller only.
func TestFetchBatchMissingKey(t *testing.T) {
	e := New(Config{})
	defer e.Stop()

	bs := &blockingStore{Mem: store.NewMem(0), release: make(chan struct{})}
	ctx := context.Background()
	if err := bs.Put(ctx, "a", []byte("A")); err != nil {
		t.Fatal(err)
	}
	if err := bs.Put(ctx, "b", []byte("B")); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	var errA, errB, errGone error
	wg.Add(1)
	go func() { defer wg.Done(); _, errA = e.Fetch(ctx, "d", bs, "a") }()
	waitFor(t, func() bool { return bs.gets.Load() == 1 })
	wg.Add(2)
	go func() { defer wg.Done(); _, errB = e.Fetch(ctx, "d", bs, "b") }()
	go func() { defer wg.Done(); _, errGone = e.Fetch(ctx, "d", bs, "gone") }()
	waitFor(t, func() bool {
		e.dmu.Lock()
		defer e.dmu.Unlock()
		q := e.donors["d"]
		return q != nil && len(q.waiting) == 2
	})
	close(bs.release)
	wg.Wait()

	if errA != nil || errB != nil {
		t.Fatalf("present keys errored: a=%v b=%v", errA, errB)
	}
	if !errors.Is(errGone, store.ErrNotFound) {
		t.Fatalf("missing key error = %v, want store.ErrNotFound", errGone)
	}
}

// TestPrefetchPipeline drives the whole speculative path: trigger →
// neighbor ranking → worker swap-in → inventory → hit / waste accounting.
func TestPrefetchPipeline(t *testing.T) {
	var mu sync.Mutex
	installed := []uint32{}
	e := New(Config{
		PrefetchDepth:   2,
		PrefetchWorkers: 2,
		Neighbors: func(cluster uint32, k int) []uint32 {
			if cluster == 1 {
				return []uint32{2, 3}
			}
			return nil
		},
		SwapIn: func(cluster uint32) (int64, bool, error) {
			mu.Lock()
			installed = append(installed, cluster)
			mu.Unlock()
			return 100 * int64(cluster), true, nil
		},
	})
	defer e.Stop()

	e.TriggerPrefetch(1)
	e.Quiesce()

	mu.Lock()
	n := len(installed)
	mu.Unlock()
	if n != 2 {
		t.Fatalf("prefetcher installed %d clusters, want 2", n)
	}
	snap := e.Snapshot()
	if snap.Enqueued != 2 || snap.Installed != 2 {
		t.Fatalf("snapshot enqueued=%d installed=%d, want 2/2", snap.Enqueued, snap.Installed)
	}
	if len(snap.Inventory) != 2 {
		t.Fatalf("inventory = %+v, want clusters 2 and 3", snap.Inventory)
	}

	// A crossing into cluster 2 is a hit and consumes its inventory entry;
	// re-triggering it is then allowed again (the queued-dedup cleared).
	if bytes, ok := e.ConsumeHit(2); !ok || bytes != 200 {
		t.Fatalf("ConsumeHit(2) = %d,%v want 200,true", bytes, ok)
	}
	if _, ok := e.ConsumeHit(2); ok {
		t.Fatal("second ConsumeHit(2) still found inventory")
	}
	// Cluster 3 is evicted untouched: wasted.
	e.NoteEvicted(3)
	if _, ok := e.ConsumeHit(3); ok {
		t.Fatal("evicted cluster still in inventory")
	}
	snap = e.Snapshot()
	if snap.Hits != 1 || snap.Wasted != 1 || snap.WastedBytes != 300 {
		t.Fatalf("hits=%d wasted=%d wastedBytes=%d, want 1/1/300",
			snap.Hits, snap.Wasted, snap.WastedBytes)
	}
	if acc := snap.Accuracy(); acc != 0.5 {
		t.Fatalf("accuracy = %v, want 0.5 (1 hit of 2 installs)", acc)
	}
}

// TestPrefetchAdmissionGate drops speculation while the admission guard
// reports memory pressure — the SwapIn callback must never fire.
func TestPrefetchAdmissionGate(t *testing.T) {
	var swapIns atomic.Int32
	e := New(Config{
		PrefetchDepth: 1,
		Neighbors:     func(uint32, int) []uint32 { return []uint32{9} },
		SwapIn:        func(uint32) (int64, bool, error) { swapIns.Add(1); return 1, true, nil },
	})
	defer e.Stop()
	e.SetAdmit(func() bool { return false })

	e.TriggerPrefetch(1)
	e.Quiesce()
	if swapIns.Load() != 0 {
		t.Fatalf("SwapIn fired %d times under pressure, want 0", swapIns.Load())
	}
	if snap := e.Snapshot(); snap.SkippedPressure != 1 {
		t.Fatalf("skipped-pressure = %d, want 1", snap.SkippedPressure)
	}

	// Pressure relieved: the same trigger now installs.
	e.SetAdmit(func() bool { return true })
	e.TriggerPrefetch(1)
	e.Quiesce()
	if swapIns.Load() != 1 {
		t.Fatalf("SwapIn fired %d times after relief, want 1", swapIns.Load())
	}
}

// TestNilEngineDegenerates keeps the nil engine a pure pass-through, so a
// runtime without a fault engine still works.
func TestNilEngineDegenerates(t *testing.T) {
	var e *Engine
	res, leader, err := e.Do(1, func() (any, error) { return "x", nil })
	if res != "x" || !leader || err != nil {
		t.Fatalf("nil Do = %v,%v,%v", res, leader, err)
	}
	m := store.NewMem(0)
	if err := m.Put(context.Background(), "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	data, err := e.Fetch(context.Background(), "d", m, "k")
	if err != nil || string(data) != "v" {
		t.Fatalf("nil Fetch = %q,%v", data, err)
	}
	e.TriggerPrefetch(1)
	e.NoteEvicted(1)
	e.Quiesce()
	e.Stop()
	if _, ok := e.ConsumeHit(1); ok {
		t.Fatal("nil engine reported a hit")
	}
}

// TestStopDrainsWorkers shuts the pool down with work still queued and
// leaves Quiesce non-blocking afterwards.
func TestStopDrainsWorkers(t *testing.T) {
	e := New(Config{
		PrefetchDepth: 4,
		Neighbors:     func(uint32, int) []uint32 { return []uint32{2, 3, 4, 5} },
		SwapIn: func(uint32) (int64, bool, error) {
			time.Sleep(time.Millisecond)
			return 1, true, nil
		},
	})
	e.TriggerPrefetch(1)
	e.Stop()
	e.Stop() // idempotent
	e.Quiesce()
	e.TriggerPrefetch(1) // no-op after Stop, must not panic on the closed queue
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in 5s")
		}
		time.Sleep(200 * time.Microsecond)
	}
}
