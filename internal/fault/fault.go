// Package fault is the asynchronous object-fault engine: it owns the
// swap-in miss path between a proxy crossing and the swap core.
//
// Three mechanisms live here:
//
//   - Single-flight coalescing (Do): concurrent faults on the same cluster
//     park on one in-flight swap-in and all resume with its result — error
//     included — instead of queueing on the shard lock and paying the fetch
//     once each. A failed flight is cleared before its waiters wake, so an
//     immediate retry starts fresh.
//
//   - Donor batching (Fetch, batch.go): faults that land on the same donor
//     while a fetch is already in flight are queued and drained in one
//     multi-key round trip via the optional store.MultiGetter extension,
//     with a per-key fallback for legacy donors.
//
//   - A graph-driven prefetcher (TriggerPrefetch): on a demand fault the
//     replacement-object graph ranks the faulted cluster's neighbor
//     clusters, and a small worker pool speculatively swaps the top-k in
//     through the normal reserve/commit path, gated by a heap-pressure
//     admission check. Prefetched clusters are tracked in an inventory; a
//     later crossing that finds its target resident consumes the entry as a
//     prefetch hit (ConsumeHit), and an eviction that beats the touch counts
//     it as wasted (NoteEvicted).
//
// The package deliberately knows nothing about the swap core: the core
// injects its graph, swap-in and admission behavior through the Config
// callbacks, which keeps the dependency arrow pointing downward.
package fault

import (
	"sort"
	"sync"

	"objectswap/internal/obs"
)

// Config parameterizes an Engine. Only Obs is required; an Engine with nil
// callbacks degrades to pure single-flight coalescing.
type Config struct {
	// Obs is the registry the engine instruments itself into (nil: a
	// private registry, keeping the engine usable in isolation).
	Obs *obs.Registry
	// PrefetchDepth is the number of neighbor clusters speculatively
	// swapped in after a demand fault (0 disables the prefetcher).
	PrefetchDepth int
	// PrefetchWorkers sizes the background worker pool (default 2).
	PrefetchWorkers int
	// Neighbors ranks the clusters reachable from cluster through
	// replacement-object edges, best first, at most k entries.
	Neighbors func(cluster uint32, k int) []uint32
	// SwapIn performs one speculative swap-in and reports the resident
	// payload size and whether this call actually installed the cluster
	// (false when it was already resident, mid-flight elsewhere, or gone).
	SwapIn func(cluster uint32) (bytes int64, installed bool, err error)
	// Admit is the heap-pressure guard consulted before every speculative
	// swap-in; nil admits everything. Replaceable later via SetAdmit.
	Admit func() bool
}

// flight is one in-progress swap-in shared by every coalesced waiter.
type flight struct {
	done chan struct{}
	res  any
	err  error
}

// Engine coordinates coalesced faults, donor-batched fetches and background
// prefetch for one runtime. The zero value is not usable; construct with New.
type Engine struct {
	cfg Config

	fmu     sync.Mutex
	flights map[uint32]*flight

	dmu    sync.Mutex
	donors map[string]*donorQueue

	pmu       sync.Mutex
	idle      *sync.Cond // signaled when pending returns to 0
	admit     func() bool
	queued    map[uint32]bool  // enqueued but not yet picked up
	inventory map[uint32]int64 // prefetched cluster -> resident bytes
	pending   int              // queued + running prefetch tasks
	stopped   bool
	queue     chan uint32
	wg        sync.WaitGroup

	coalesced   *obs.Counter
	batchRounds *obs.Counter
	batchKeys   *obs.Counter
	prefetches  *obs.CounterVec
	wastedBytes *obs.Counter
}

// Prefetch outcome labels for objectswap_prefetch_events_total.
const (
	prefEnqueued = "enqueued"
	prefDropped  = "dropped"
	prefSkipped  = "skipped-pressure"
	prefNoop     = "noop"
	prefError    = "error"
	prefInstall  = "installed"
	prefHit      = "hit"
	prefWasted   = "wasted"
)

// New builds an Engine and, when cfg enables prefetching, starts its worker
// pool. Call Stop to wind the workers down.
func New(cfg Config) *Engine {
	if cfg.Obs == nil {
		cfg.Obs = obs.NewRegistry(nil)
	}
	if cfg.PrefetchWorkers <= 0 {
		cfg.PrefetchWorkers = 2
	}
	e := &Engine{
		cfg:       cfg,
		flights:   make(map[uint32]*flight),
		donors:    make(map[string]*donorQueue),
		admit:     cfg.Admit,
		queued:    make(map[uint32]bool),
		inventory: make(map[uint32]int64),
		coalesced: cfg.Obs.Counter("objectswap_fault_coalesced_total",
			"Faults that parked on another goroutine's in-flight swap-in."),
		batchRounds: cfg.Obs.Counter("objectswap_fault_batch_rounds_total",
			"Multi-key donor fetches issued by the fault engine."),
		batchKeys: cfg.Obs.Counter("objectswap_fault_batch_keys_total",
			"Keys served through batched donor fetches."),
		prefetches: cfg.Obs.CounterVec("objectswap_prefetch_events_total",
			"Prefetcher outcomes by event.", "event"),
		wastedBytes: cfg.Obs.Counter("objectswap_prefetch_wasted_bytes_total",
			"Bytes of prefetched clusters evicted before any touch."),
	}
	e.idle = sync.NewCond(&e.pmu)
	if e.prefetchEnabled() {
		e.queue = make(chan uint32, 64*cfg.PrefetchWorkers)
		for i := 0; i < cfg.PrefetchWorkers; i++ {
			e.wg.Add(1)
			go e.worker()
		}
	}
	return e
}

func (e *Engine) prefetchEnabled() bool {
	return e.cfg.PrefetchDepth > 0 && e.cfg.Neighbors != nil && e.cfg.SwapIn != nil
}

// Do runs one coalesced fault on cluster. The first caller becomes the
// flight leader and executes run; every caller that arrives while the flight
// is open parks and resumes with the leader's result and error. leader
// reports which role this call played. The flight is removed from the table
// before the waiters wake, so a retry after an error starts a fresh flight.
func (e *Engine) Do(cluster uint32, run func() (any, error)) (res any, leader bool, err error) {
	if e == nil {
		res, err = run()
		return res, true, err
	}
	e.fmu.Lock()
	if f, ok := e.flights[cluster]; ok {
		e.fmu.Unlock()
		e.coalesced.Inc()
		<-f.done
		return f.res, false, f.err
	}
	f := &flight{done: make(chan struct{})}
	e.flights[cluster] = f
	e.fmu.Unlock()

	f.res, f.err = run()

	e.fmu.Lock()
	delete(e.flights, cluster)
	e.fmu.Unlock()
	close(f.done)
	return f.res, true, f.err
}

// SetAdmit installs (or replaces) the heap-pressure admission guard. The
// facade calls this after the memory monitor exists; passing nil admits
// every speculative swap-in.
func (e *Engine) SetAdmit(fn func() bool) {
	if e == nil {
		return
	}
	e.pmu.Lock()
	e.admit = fn
	e.pmu.Unlock()
}

// TriggerPrefetch enqueues the top-k graph neighbors of cluster for
// speculative swap-in. It never blocks: a full queue drops the excess.
func (e *Engine) TriggerPrefetch(cluster uint32) {
	if e == nil || !e.prefetchEnabled() {
		return
	}
	for _, n := range e.cfg.Neighbors(cluster, e.cfg.PrefetchDepth) {
		e.enqueue(n)
	}
}

func (e *Engine) enqueue(cluster uint32) {
	e.pmu.Lock()
	defer e.pmu.Unlock()
	if e.stopped || e.queued[cluster] {
		return
	}
	if _, have := e.inventory[cluster]; have {
		return // already prefetched and untouched
	}
	select {
	case e.queue <- cluster:
		e.queued[cluster] = true
		e.pending++
		e.prefetches.With(prefEnqueued).Inc()
	default:
		e.prefetches.With(prefDropped).Inc()
	}
}

func (e *Engine) worker() {
	defer e.wg.Done()
	for cluster := range e.queue {
		e.runPrefetch(cluster)
	}
}

func (e *Engine) runPrefetch(cluster uint32) {
	defer e.taskDone()
	e.pmu.Lock()
	delete(e.queued, cluster)
	admit := e.admit
	e.pmu.Unlock()
	if admit != nil && !admit() {
		e.prefetches.With(prefSkipped).Inc()
		return
	}
	bytes, installed, err := e.cfg.SwapIn(cluster)
	switch {
	case err != nil:
		e.prefetches.With(prefError).Inc()
	case !installed:
		e.prefetches.With(prefNoop).Inc()
	default:
		e.pmu.Lock()
		e.inventory[cluster] = bytes
		e.pmu.Unlock()
		e.prefetches.With(prefInstall).Inc()
	}
}

func (e *Engine) taskDone() {
	e.pmu.Lock()
	e.pending--
	if e.pending == 0 {
		e.idle.Broadcast()
	}
	e.pmu.Unlock()
}

// ConsumeHit reports whether cluster was resident thanks to the prefetcher
// and, if so, consumes the inventory entry and returns its payload size.
// The caller records the hit latency; this is the "~a map lookup" path.
func (e *Engine) ConsumeHit(cluster uint32) (int64, bool) {
	if e == nil {
		return 0, false
	}
	e.pmu.Lock()
	bytes, ok := e.inventory[cluster]
	if ok {
		delete(e.inventory, cluster)
	}
	e.pmu.Unlock()
	if ok {
		e.prefetches.With(prefHit).Inc()
	}
	return bytes, ok
}

// NoteEvicted records that cluster left the heap. A still-unconsumed
// inventory entry means the prefetch was wasted: it paid a round trip and
// was evicted before any touch.
func (e *Engine) NoteEvicted(cluster uint32) {
	if e == nil {
		return
	}
	e.pmu.Lock()
	bytes, ok := e.inventory[cluster]
	if ok {
		delete(e.inventory, cluster)
	}
	e.pmu.Unlock()
	if ok {
		e.prefetches.With(prefWasted).Inc()
		e.wastedBytes.Add(float64(bytes))
	}
}

// Rank exposes the prefetcher's neighbor ranking for cluster (at most k
// entries, best first) — the /debug/prefetch endpoint's payload. Nil when
// no graph callback is wired.
func (e *Engine) Rank(cluster uint32, k int) []uint32 {
	if e == nil || e.cfg.Neighbors == nil || k <= 0 {
		return nil
	}
	return e.cfg.Neighbors(cluster, k)
}

// Quiesce blocks until every enqueued and running prefetch task has
// finished. Tests and drain points use it; steady-state operation never
// needs to.
func (e *Engine) Quiesce() {
	if e == nil {
		return
	}
	e.pmu.Lock()
	for e.pending > 0 {
		e.idle.Wait()
	}
	e.pmu.Unlock()
}

// Stop shuts the prefetch worker pool down and waits for in-flight tasks.
// Coalescing and batching keep working after Stop; further TriggerPrefetch
// calls are no-ops. Safe to call multiple times.
func (e *Engine) Stop() {
	if e == nil {
		return
	}
	e.pmu.Lock()
	if e.stopped {
		e.pmu.Unlock()
		return
	}
	e.stopped = true
	if e.queue != nil {
		close(e.queue)
	}
	e.pmu.Unlock()
	// Workers drain what is already queued (range over a closed channel
	// keeps yielding buffered items), then exit.
	e.wg.Wait()
}

// InventoryEntry is one prefetched-but-untouched cluster.
type InventoryEntry struct {
	Cluster uint32 `json:"cluster"`
	Bytes   int64  `json:"bytes"`
}

// Snapshot is the /debug/prefetch view of the engine.
type Snapshot struct {
	Depth            int              `json:"depth"`
	Workers          int              `json:"workers"`
	CoalescedWaiters uint64           `json:"coalesced_waiters"`
	BatchRounds      uint64           `json:"batch_rounds"`
	BatchKeys        uint64           `json:"batch_keys"`
	Enqueued         uint64           `json:"enqueued"`
	Installed        uint64           `json:"installed"`
	Hits             uint64           `json:"hits"`
	Wasted           uint64           `json:"wasted"`
	WastedBytes      int64            `json:"wasted_bytes"`
	SkippedPressure  uint64           `json:"skipped_pressure"`
	Errors           uint64           `json:"errors"`
	Dropped          uint64           `json:"dropped"`
	Inventory        []InventoryEntry `json:"inventory"`
}

// Accuracy returns the fraction of installed prefetches that were later
// consumed by a crossing (0 when nothing has been installed yet).
func (s Snapshot) Accuracy() float64 {
	if s.Installed == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Installed)
}

// Snapshot copies the engine's counters and current inventory.
func (e *Engine) Snapshot() Snapshot {
	if e == nil {
		return Snapshot{}
	}
	s := Snapshot{
		Depth:            e.cfg.PrefetchDepth,
		Workers:          e.cfg.PrefetchWorkers,
		CoalescedWaiters: uint64(e.coalesced.Value()),
		BatchRounds:      uint64(e.batchRounds.Value()),
		BatchKeys:        uint64(e.batchKeys.Value()),
		Enqueued:         uint64(e.prefetches.With(prefEnqueued).Value()),
		Installed:        uint64(e.prefetches.With(prefInstall).Value()),
		Hits:             uint64(e.prefetches.With(prefHit).Value()),
		Wasted:           uint64(e.prefetches.With(prefWasted).Value()),
		WastedBytes:      int64(e.wastedBytes.Value()),
		SkippedPressure:  uint64(e.prefetches.With(prefSkipped).Value()),
		Errors:           uint64(e.prefetches.With(prefError).Value()),
		Dropped:          uint64(e.prefetches.With(prefDropped).Value()),
	}
	e.pmu.Lock()
	for c, b := range e.inventory {
		s.Inventory = append(s.Inventory, InventoryEntry{Cluster: c, Bytes: b})
	}
	e.pmu.Unlock()
	sort.Slice(s.Inventory, func(i, j int) bool {
		return s.Inventory[i].Cluster < s.Inventory[j].Cluster
	})
	return s
}
