package heap

import (
	"fmt"
	"sync/atomic"
)

// objectOverhead approximates the fixed header cost of one managed object on
// a constrained device (id, class pointer, field-vector header).
const objectOverhead = 32

// Object is one managed instance. Objects are created through Heap.New and
// live until the local collector reclaims them (or Heap.Remove detaches them
// explicitly).
//
// Field access is not synchronized between goroutines: one heap serves one
// logical device whose application code is single-threaded, as on the paper's
// Pocket PC prototype. Heap-level bookkeeping (allocation, roots, GC) is
// internally synchronized.
type Object struct {
	id    ObjID
	class *Class
	heap  *Heap

	fields []Value
	size   int64
}

// ID returns the object's stable identifier.
func (o *Object) ID() ObjID { return o.id }

// Class returns the object's class.
func (o *Object) Class() *Class { return o.class }

// Size returns the currently accounted byte size of the object.
func (o *Object) Size() int64 { return atomic.LoadInt64(&o.size) }

// NumFields returns the number of field slots.
func (o *Object) NumFields() int { return len(o.fields) }

// Field returns the i-th field value.
func (o *Object) Field(i int) Value {
	return o.fields[i]
}

// FieldByName returns the named field's value.
func (o *Object) FieldByName(name string) (Value, error) {
	i, ok := o.class.FieldIndex(name)
	if !ok {
		return Nil(), fmt.Errorf("%w: %s.%s", ErrNoSuchField, o.class.Name, name)
	}
	return o.fields[i], nil
}

// SetField assigns the i-th field, adjusting heap accounting for
// variable-sized payloads. It fails with ErrOutOfMemory when growth would
// exceed heap capacity, and with ErrBadKind when the value kind does not
// match the declaration (nil is assignable to ref, list, string and bytes
// fields).
func (o *Object) SetField(i int, v Value) error {
	def := o.class.Field(i)
	if !assignable(def.Kind, v.Kind()) {
		return fmt.Errorf("%w: field %s.%s is %s, assigning %s",
			ErrBadKind, o.class.Name, def.Name, def.Kind, v.Kind())
	}
	delta := v.size() - o.fields[i].size()
	if delta > 0 {
		if err := o.heap.reserve(delta); err != nil {
			return err
		}
	} else if delta < 0 {
		o.heap.release(-delta)
	}
	atomic.AddInt64(&o.size, delta)
	o.fields[i] = v
	o.heap.observeWrite(o.id)
	return nil
}

// SetFieldByName assigns the named field.
func (o *Object) SetFieldByName(name string, v Value) error {
	i, ok := o.class.FieldIndex(name)
	if !ok {
		return fmt.Errorf("%w: %s.%s", ErrNoSuchField, o.class.Name, name)
	}
	return o.SetField(i, v)
}

// MustSet assigns the named field and panics on error; it is a convenience
// for graph construction in tests, benchmarks and examples.
func (o *Object) MustSet(name string, v Value) *Object {
	if err := o.SetFieldByName(name, v); err != nil {
		panic(err)
	}
	return o
}

// RefTo returns a reference Value designating this object.
func (o *Object) RefTo() Value { return Ref(o.id) }

// EachField visits every declared field in slot order through the class's
// behavior plane. The walk never allocates — generated ops iterate a static
// layout, defaultOps walks the declaration slice — so serialization can
// traverse an object without per-field lookups.
func (o *Object) EachField(visit func(slot int, def FieldDef, v Value) bool) {
	o.class.ops.EachField(o, visit)
}

// forEachRef visits every reference held in the object's fields.
func (o *Object) forEachRef(visit func(ObjID)) {
	for _, f := range o.fields {
		f.forEachRef(visit)
	}
}

// String renders a compact description for debugging.
func (o *Object) String() string {
	return fmt.Sprintf("%s@%d", o.class.Name, o.id)
}

// assignable reports whether a value of kind v may occupy a field declared as
// kind f. Nil is assignable to every non-primitive slot; primitives require
// an exact kind match.
func assignable(f, v Kind) bool {
	if f == v {
		return true
	}
	if v != KindNil {
		return false
	}
	switch f {
	case KindRef, KindList, KindString, KindBytes:
		return true
	default:
		return false
	}
}
