package heap

import (
	"errors"
	"strings"
	"testing"
)

// Coverage for the small accessor surface that larger tests bypass.

func TestSpecialKindStrings(t *testing.T) {
	want := map[SpecialKind]string{
		SpecialNone:        "app",
		SpecialSCProxy:     "scproxy",
		SpecialReplacement: "replacement",
		SpecialObjProxy:    "objproxy",
		SpecialSurrogate:   "surrogate",
		SpecialKind(99):    "special?",
	}
	for k, s := range want {
		if got := k.String(); got != s {
			t.Errorf("%d.String() = %q, want %q", k, got, s)
		}
	}
}

func TestZeroValuesPerKind(t *testing.T) {
	cases := map[Kind]Value{
		KindInt:    Int(0),
		KindFloat:  Float(0),
		KindBool:   Bool(false),
		KindString: Str(""),
		KindRef:    Nil(),
		KindList:   Nil(),
		KindBytes:  Nil(),
	}
	for k, want := range cases {
		if got := zeroValue(k); !got.Equal(want) {
			t.Errorf("zeroValue(%s) = %v, want %v", k, got, want)
		}
	}
}

func TestClassFieldsCopy(t *testing.T) {
	c := nodeClass()
	fields := c.Fields()
	if len(fields) != 3 || fields[0].Name != "payload" {
		t.Fatalf("Fields = %v", fields)
	}
	fields[0].Name = "mutated"
	if c.Field(0).Name != "payload" {
		t.Fatal("Fields did not copy")
	}
}

func TestMustRegisterPanicsOnDuplicate(t *testing.T) {
	r := NewRegistry()
	r.MustRegister(nodeClass())
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate MustRegister did not panic")
		}
	}()
	r.MustRegister(nodeClass())
}

func TestReserveAccessors(t *testing.T) {
	h := New(1000)
	h.SetReserve(100)
	if h.Reserve() != 100 {
		t.Fatalf("Reserve = %d", h.Reserve())
	}
	// App allocations stop at capacity-reserve; privileged go to capacity.
	c := nodeClass()
	one := int64(objectOverhead) + 3*valueOverhead
	var err error
	allocated := int64(0)
	for {
		if _, err = h.New(c); err != nil {
			break
		}
		allocated += one
	}
	if !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("expected OOM, got %v", err)
	}
	if allocated > 900 {
		t.Fatalf("app allocations passed the reserve boundary (%d bytes)", allocated)
	}
	if _, err := h.NewPrivileged(c); err != nil {
		t.Fatalf("privileged allocation within reserve failed: %v", err)
	}
	// Reserve larger than capacity blocks all app allocations.
	h2 := New(50)
	h2.SetReserve(100)
	if _, err := h2.New(c); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("over-reserved heap allocated: %v", err)
	}
}

func TestHeapIDsSorted(t *testing.T) {
	h := New(0)
	c := nodeClass()
	var want []ObjID
	for i := 0; i < 5; i++ {
		o, _ := h.New(c)
		want = append(want, o.ID())
	}
	got := h.IDs()
	if len(got) != 5 {
		t.Fatalf("IDs = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("IDs not sorted: %v", got)
		}
	}
}

func TestObjectAccessors(t *testing.T) {
	h := New(0)
	o, _ := h.New(nodeClass())
	if o.NumFields() != 3 {
		t.Errorf("NumFields = %d", o.NumFields())
	}
	o.MustSet("tag", Int(9))
	idx, _ := o.Class().FieldIndex("tag")
	if o.Field(idx).MustInt() != 9 {
		t.Error("Field by index")
	}
	if !strings.Contains(o.String(), "Node@") {
		t.Errorf("String = %q", o.String())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustSet with bad kind did not panic")
		}
	}()
	o.MustSet("tag", Str("boom"))
}

func TestValueAccessorsCoverage(t *testing.T) {
	if Bytes([]byte{1, 2, 3}).BytesLen() != 3 {
		t.Error("BytesLen")
	}
	if Str("abc").Len() != 3 || Bytes([]byte{1}).Len() != 1 ||
		List(Int(1), Int(2)).Len() != 2 || Int(7).Len() != 0 {
		t.Error("Len")
	}
	for _, v := range []Value{Nil(), Int(-3), Float(1.5), Bool(true),
		Str("x"), Bytes([]byte{1}), Ref(4), List(Int(1))} {
		if v.String() == "" {
			t.Errorf("empty String for %v kind", v.Kind())
		}
	}
	if Ref(4).String() != "@4" || Int(-3).String() != "-3" {
		t.Error("String formats")
	}
}
