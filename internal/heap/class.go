package heap

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// SpecialKind tags middleware-generated classes so the swapping runtime can
// recognize its own artifacts during dispatch, GC integration and
// serialization. Application classes are SpecialNone.
type SpecialKind uint8

const (
	// SpecialNone marks ordinary application classes.
	SpecialNone SpecialKind = iota
	// SpecialSCProxy marks swap-cluster-proxy classes: the permanent proxies
	// that mediate every reference crossing a swap-cluster boundary.
	SpecialSCProxy
	// SpecialReplacement marks replacement-objects: the per-swapped-cluster
	// arrays of references left behind by swap-out.
	SpecialReplacement
	// SpecialObjProxy marks incremental-replication proxies (object-fault
	// handlers for objects not yet replicated to the device).
	SpecialObjProxy
	// SpecialSurrogate marks per-object surrogates used only by the
	// baseline offloading comparator (Messer et al. style).
	SpecialSurrogate
)

// String returns a short tag for the special kind.
func (s SpecialKind) String() string {
	switch s {
	case SpecialNone:
		return "app"
	case SpecialSCProxy:
		return "scproxy"
	case SpecialReplacement:
		return "replacement"
	case SpecialObjProxy:
		return "objproxy"
	case SpecialSurrogate:
		return "surrogate"
	default:
		return "special?"
	}
}

// FieldDef declares one field of a class.
type FieldDef struct {
	Name string
	Kind Kind
}

// Call carries the context of one method invocation: the invoker to use for
// nested calls (so middleware interposition applies transitively), the
// receiver, and the arguments.
type Call struct {
	RT   Invoker
	Self *Object
	Args []Value
}

// Arg returns the i-th argument or nil Value when absent.
func (c *Call) Arg(i int) Value {
	if i < 0 || i >= len(c.Args) {
		return Nil()
	}
	return c.Args[i]
}

// Method is the body of one method. Returning an error aborts the invocation
// chain.
type Method func(c *Call) ([]Value, error)

// zeroValue returns the initial value of a field of kind k, matching managed
// runtime semantics: primitives are zeroed, reference-like kinds are nil.
func zeroValue(k Kind) Value {
	switch k {
	case KindInt:
		return Int(0)
	case KindFloat:
		return Float(0)
	case KindBool:
		return Bool(false)
	case KindString:
		return Str("")
	default:
		return Nil()
	}
}

// Class describes a managed type: named fields and a method table. A Class is
// immutable after registration with a Registry.
type Class struct {
	Name    string
	Special SpecialKind

	fields     []FieldDef
	fieldIndex map[string]int
	methods    map[string]Method

	// ops is the class's behavior plane. NewClass installs defaultOps (the
	// closure-table/field-map synthesis); generated classes replace it via
	// BindOps. Never nil after NewClass.
	ops ClassOps
}

// NewClass builds a class with the given fields. Use AddMethod before
// registering it.
func NewClass(name string, fields ...FieldDef) *Class {
	c := &Class{
		Name:       name,
		fields:     append([]FieldDef(nil), fields...),
		fieldIndex: make(map[string]int, len(fields)),
		methods:    make(map[string]Method),
	}
	for i, f := range fields {
		if _, dup := c.fieldIndex[f.Name]; dup {
			panic(fmt.Sprintf("heap: class %s: duplicate field %s", name, f.Name))
		}
		c.fieldIndex[f.Name] = i
	}
	c.ops = defaultOps{c}
	return c
}

// BindOps replaces the class's behavior plane with a specialized (generated)
// implementation. It panics when the ops disagree with the declared fields —
// a generated file that drifted from its schema must fail at registration,
// not corrupt shipments later — or when an ops method collides with a
// closure method already added.
func (c *Class) BindOps(ops ClassOps) *Class {
	if ops == nil {
		panic(fmt.Sprintf("heap: class %s: BindOps(nil)", c.Name))
	}
	for i, f := range c.fields {
		if slot, ok := ops.FieldIndex(f.Name); !ok || slot != i {
			panic(fmt.Sprintf("heap: class %s: ops field %q resolves to (%d,%v), declared slot %d",
				c.Name, f.Name, slot, ok, i))
		}
	}
	if n := len(ops.NewFieldVector()); n != len(c.fields) {
		panic(fmt.Sprintf("heap: class %s: ops field vector has %d slots, class declares %d",
			c.Name, n, len(c.fields)))
	}
	for _, name := range ops.MethodNames() {
		if _, dup := c.methods[name]; dup {
			panic(fmt.Sprintf("heap: class %s: ops method %s collides with closure method", c.Name, name))
		}
	}
	c.ops = ops
	return c
}

// Ops returns the class's behavior plane.
func (c *Class) Ops() ClassOps { return c.ops }

// AddMethod attaches a method body under name and returns the class for
// chaining. Redefining an existing method panics: classes model compiled
// code, not dynamic monkey-patching.
func (c *Class) AddMethod(name string, m Method) *Class {
	if m == nil {
		panic("heap: nil method " + name)
	}
	if _, dup := c.methods[name]; dup {
		panic(fmt.Sprintf("heap: class %s: duplicate method %s", c.Name, name))
	}
	if c.ops != nil && c.ops.Has(name) {
		panic(fmt.Sprintf("heap: class %s: method %s already handled by bound ops", c.Name, name))
	}
	c.methods[name] = m
	return c
}

// Method looks up a closure-table method body by name. Methods handled by
// bound ops are not visible here; dispatch through Invoke instead.
func (c *Class) Method(name string) (Method, bool) {
	m, ok := c.methods[name]
	return m, ok
}

// HasMethod reports whether Invoke can dispatch name on this class.
func (c *Class) HasMethod(name string) bool {
	if c.ops.Has(name) {
		return true
	}
	_, ok := c.methods[name]
	return ok
}

// Invoke dispatches method through the class's behavior plane: bound ops
// first, the closure table as fallback. This is THE dispatch primitive — the
// direct runtime, the swapping runtime and the baseline comparators all call
// it, so generated and synthesized classes are interchangeable everywhere.
func (c *Class) Invoke(method string, call *Call) ([]Value, error) {
	if res, ok, err := c.ops.Dispatch(method, call); ok {
		return res, err
	}
	if m, ok := c.methods[method]; ok {
		return m(call)
	}
	return nil, fmt.Errorf("%w: %s.%s", ErrNoSuchMethod, c.Name, method)
}

// MethodNames returns the sorted method names — the class's public interface,
// which swap-cluster-proxy classes replicate (the obicomp analogue). Methods
// handled by bound ops and closure-table methods appear alike.
func (c *Class) MethodNames() []string {
	seen := make(map[string]bool, len(c.methods))
	names := make([]string, 0, len(c.methods))
	for n := range c.methods {
		seen[n] = true
		names = append(names, n)
	}
	// Dedup against ops: defaultOps mirrors the closure table itself.
	for _, n := range c.ops.MethodNames() {
		if !seen[n] {
			seen[n] = true
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names
}

// NumFields returns the number of declared fields.
func (c *Class) NumFields() int { return len(c.fields) }

// Field returns the i-th field definition.
func (c *Class) Field(i int) FieldDef { return c.fields[i] }

// FieldIndex resolves a field name to its slot index through the behavior
// plane (generated ops resolve with a static switch instead of a map).
func (c *Class) FieldIndex(name string) (int, bool) {
	return c.ops.FieldIndex(name)
}

// Fields returns a copy of the field definitions.
func (c *Class) Fields() []FieldDef {
	return append([]FieldDef(nil), c.fields...)
}

// ErrUnknownClass reports a class name absent from a registry.
var ErrUnknownClass = errors.New("heap: unknown class")

// Registry maps class names to classes. Both devices in a replication pair
// and the swap-in path resolve classes by name through a registry, mirroring
// how class files / assemblies name types.
type Registry struct {
	mu      sync.RWMutex
	classes map[string]*Class
}

// NewRegistry returns an empty class registry.
func NewRegistry() *Registry {
	return &Registry{classes: make(map[string]*Class)}
}

// Register adds a class. Registering a second class under the same name is an
// error (assemblies do not redefine types).
func (r *Registry) Register(c *Class) error {
	if c == nil || c.Name == "" {
		return errors.New("heap: register: nil or unnamed class")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.classes[c.Name]; dup {
		return fmt.Errorf("heap: register: class %q already registered", c.Name)
	}
	r.classes[c.Name] = c
	return nil
}

// MustRegister is Register that panics on error, for program initialization.
func (r *Registry) MustRegister(c *Class) *Class {
	if err := r.Register(c); err != nil {
		panic(err)
	}
	return c
}

// Lookup resolves a class by name.
func (r *Registry) Lookup(name string) (*Class, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	c, ok := r.classes[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownClass, name)
	}
	return c, nil
}

// Names returns the sorted registered class names.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.classes))
	for n := range r.classes {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
