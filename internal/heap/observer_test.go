package heap

import (
	"testing"
)

// TestSuspendWriteObserverForIsScoped proves predicate-scoped suspension:
// writes to the claimed ids go silent, writes to everything else keep
// reaching the write AND access observers — the property that lets a
// background swap-in reinstall one cluster's objects without swallowing the
// dirty-marks and heat of concurrent application writes elsewhere.
func TestSuspendWriteObserverForIsScoped(t *testing.T) {
	h := New(0)
	c := nodeClass()
	inCluster, err := h.New(c)
	if err != nil {
		t.Fatal(err)
	}
	outside, err := h.New(c)
	if err != nil {
		t.Fatal(err)
	}

	var writes, accesses []ObjID
	h.SetWriteObserver(func(id ObjID) { writes = append(writes, id) })
	h.AddAccessObserver(func(id ObjID) { accesses = append(accesses, id) })

	members := map[ObjID]bool{inCluster.ID(): true}
	resume := h.SuspendWriteObserverFor(func(id ObjID) bool { return members[id] })

	if err := inCluster.SetFieldByName("tag", Int(1)); err != nil {
		t.Fatal(err)
	}
	if err := outside.SetFieldByName("tag", Int(2)); err != nil {
		t.Fatal(err)
	}
	h.NoteAccess(inCluster.ID())
	h.NoteAccess(outside.ID())

	if len(writes) != 1 || writes[0] != outside.ID() {
		t.Fatalf("writes under scope = %v, want only %d", writes, outside.ID())
	}
	// The outside object's write counts as an access too, plus its explicit
	// NoteAccess; the member's accesses are silenced.
	for _, id := range accesses {
		if id == inCluster.ID() {
			t.Fatalf("member access leaked through the scope: %v", accesses)
		}
	}
	if len(accesses) != 2 {
		t.Fatalf("outside accesses = %v, want write-access + NoteAccess", accesses)
	}

	// Resume: the member's writes flow again.
	resume()
	writes = writes[:0]
	if err := inCluster.SetFieldByName("tag", Int(3)); err != nil {
		t.Fatal(err)
	}
	if len(writes) != 1 || writes[0] != inCluster.ID() {
		t.Fatalf("writes after resume = %v, want %d", writes, inCluster.ID())
	}
}

// TestSuspendScopesCompose runs two scopes at once: each silences its own
// ids, neither silences the other's, and a global suspension still trumps
// everything.
func TestSuspendScopesCompose(t *testing.T) {
	h := New(0)
	c := nodeClass()
	a, _ := h.New(c)
	b, _ := h.New(c)
	free, _ := h.New(c)

	var writes []ObjID
	h.SetWriteObserver(func(id ObjID) { writes = append(writes, id) })

	resumeA := h.SuspendWriteObserverFor(func(id ObjID) bool { return id == a.ID() })
	resumeB := h.SuspendWriteObserverFor(func(id ObjID) bool { return id == b.ID() })
	for _, o := range []*Object{a, b, free} {
		if err := o.SetFieldByName("tag", Int(1)); err != nil {
			t.Fatal(err)
		}
	}
	if len(writes) != 1 || writes[0] != free.ID() {
		t.Fatalf("writes under two scopes = %v, want only %d", writes, free.ID())
	}

	resumeA()
	writes = writes[:0]
	if err := a.SetFieldByName("tag", Int(2)); err != nil {
		t.Fatal(err)
	}
	if err := b.SetFieldByName("tag", Int(2)); err != nil {
		t.Fatal(err)
	}
	if len(writes) != 1 || writes[0] != a.ID() {
		t.Fatalf("writes after resuming scope A = %v, want only %d", writes, a.ID())
	}

	// Global suspension silences even unscoped objects.
	resumeAll := h.SuspendWriteObserver()
	writes = writes[:0]
	if err := free.SetFieldByName("tag", Int(3)); err != nil {
		t.Fatal(err)
	}
	if len(writes) != 0 {
		t.Fatalf("writes under global suspension = %v, want none", writes)
	}
	resumeAll()
	resumeB()

	// A nil predicate is the global form.
	resumeNil := h.SuspendWriteObserverFor(nil)
	writes = writes[:0]
	if err := free.SetFieldByName("tag", Int(4)); err != nil {
		t.Fatal(err)
	}
	if len(writes) != 0 {
		t.Fatalf("writes under nil-pred scope = %v, want none", writes)
	}
	resumeNil()
}
