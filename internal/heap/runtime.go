package heap

import (
	"errors"
	"fmt"
)

// Invoker dispatches method invocations and field accesses on managed
// objects. The indirection is the hook that makes the paper's architecture
// expressible: application methods call back through their Call's Invoker, so
// a middleware implementation (the swapping runtime) can interpose
// swap-cluster-proxies, replication faults and replacement-object reloads on
// every cross-object interaction, while DirectRuntime dispatches with no
// interposition at all — the "NO SWAP-CLUSTERS" lower bound of Figure 5.
type Invoker interface {
	// Invoke calls method on the object designated by target (a ref Value)
	// with the given arguments.
	Invoke(target Value, method string, args ...Value) ([]Value, error)
	// Field reads a field of the designated object (proxy-mediated
	// implementations forward it like an accessor method invocation).
	Field(target Value, name string) (Value, error)
	// SetFieldValue writes a field of the designated object.
	SetFieldValue(target Value, name string, v Value) error
	// Heap exposes the underlying device heap.
	Heap() *Heap
}

// ErrNilTarget reports invocation through a nil reference.
var ErrNilTarget = errors.New("heap: invoke on nil reference")

// DirectRuntime is the interposition-free Invoker: every reference designates
// a resident object and dispatch is a class-table call. It provides the
// baseline timing floor and serves master (well-resourced) nodes that never
// swap.
type DirectRuntime struct {
	heap *Heap
}

var _ Invoker = (*DirectRuntime)(nil)

// NewDirectRuntime returns a direct runtime over h.
func NewDirectRuntime(h *Heap) *DirectRuntime {
	return &DirectRuntime{heap: h}
}

// Heap returns the underlying heap.
func (rt *DirectRuntime) Heap() *Heap { return rt.heap }

// Invoke dispatches method on the target object.
func (rt *DirectRuntime) Invoke(target Value, method string, args ...Value) ([]Value, error) {
	id, err := target.Ref()
	if err != nil {
		return nil, err
	}
	if id == NilID {
		return nil, fmt.Errorf("%w: method %s", ErrNilTarget, method)
	}
	obj, err := rt.heap.Get(id)
	if err != nil {
		return nil, err
	}
	return obj.Class().Invoke(method, &Call{RT: rt, Self: obj, Args: args})
}

// Field reads a field of the target object.
func (rt *DirectRuntime) Field(target Value, name string) (Value, error) {
	id, err := target.Ref()
	if err != nil {
		return Nil(), err
	}
	if id == NilID {
		return Nil(), fmt.Errorf("%w: field %s", ErrNilTarget, name)
	}
	obj, err := rt.heap.Get(id)
	if err != nil {
		return Nil(), err
	}
	return obj.FieldByName(name)
}

// SetFieldValue writes a field of the target object.
func (rt *DirectRuntime) SetFieldValue(target Value, name string, v Value) error {
	id, err := target.Ref()
	if err != nil {
		return err
	}
	if id == NilID {
		return fmt.Errorf("%w: field %s", ErrNilTarget, name)
	}
	obj, err := rt.heap.Get(id)
	if err != nil {
		return err
	}
	return obj.SetFieldByName(name, v)
}
