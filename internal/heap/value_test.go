package heap

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestValueKinds(t *testing.T) {
	tests := []struct {
		name string
		v    Value
		kind Kind
	}{
		{"nil", Nil(), KindNil},
		{"int", Int(42), KindInt},
		{"float", Float(3.5), KindFloat},
		{"bool", Bool(true), KindBool},
		{"string", Str("x"), KindString},
		{"bytes", Bytes([]byte{1, 2}), KindBytes},
		{"ref", Ref(7), KindRef},
		{"list", List(Int(1), Int(2)), KindList},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.v.Kind(); got != tt.kind {
				t.Fatalf("Kind() = %v, want %v", got, tt.kind)
			}
		})
	}
}

func TestValueAccessors(t *testing.T) {
	if got := Int(42).MustInt(); got != 42 {
		t.Errorf("Int round-trip = %d", got)
	}
	if f, err := Float(2.25).Float(); err != nil || f != 2.25 {
		t.Errorf("Float round-trip = %v, %v", f, err)
	}
	if b, err := Bool(true).Bool(); err != nil || !b {
		t.Errorf("Bool round-trip = %v, %v", b, err)
	}
	if s, err := Str("hi").Str(); err != nil || s != "hi" {
		t.Errorf("Str round-trip = %q, %v", s, err)
	}
	raw := []byte{9, 8, 7}
	bv := Bytes(raw)
	raw[0] = 0 // mutation of the source must not leak in
	if got, _ := bv.Bytes(); got[0] != 9 {
		t.Errorf("Bytes not copied on construction: %v", got)
	}
	got, _ := bv.Bytes()
	got[1] = 0 // mutation of the copy must not leak back
	if again, _ := bv.Bytes(); again[1] != 8 {
		t.Errorf("Bytes not copied on access: %v", again)
	}
	if id := Ref(12).MustRef(); id != 12 {
		t.Errorf("Ref round-trip = %d", id)
	}
	if id := Nil().MustRef(); id != NilID {
		t.Errorf("nil Ref = %d, want NilID", id)
	}
}

func TestValueWrongKindErrors(t *testing.T) {
	if _, err := Str("x").Int(); err == nil {
		t.Error("Int() on string: want error")
	}
	if _, err := Int(1).Str(); err == nil {
		t.Error("Str() on int: want error")
	}
	if _, err := Int(1).Ref(); err == nil {
		t.Error("Ref() on int: want error")
	}
	if _, err := Int(1).List(); err == nil {
		t.Error("List() on int: want error")
	}
	if _, err := Str("x").Bytes(); err == nil {
		t.Error("Bytes() on string: want error")
	}
	if _, err := Int(1).Bool(); err == nil {
		t.Error("Bool() on int: want error")
	}
	if _, err := Int(1).Float(); err == nil {
		t.Error("Float() on int: want error")
	}
}

func TestRefNilIDIsNilValue(t *testing.T) {
	if !Ref(NilID).IsNil() {
		t.Error("Ref(NilID) should be the nil value")
	}
	if Ref(NilID).IsRef() {
		t.Error("Ref(NilID) should not report IsRef")
	}
	if !Ref(3).IsRef() {
		t.Error("Ref(3) should report IsRef")
	}
}

func TestKindStringRoundTrip(t *testing.T) {
	for k := KindNil; k <= KindList; k++ {
		got, err := KindFromString(k.String())
		if err != nil {
			t.Fatalf("KindFromString(%q): %v", k.String(), err)
		}
		if got != k {
			t.Fatalf("round-trip %v -> %q -> %v", k, k.String(), got)
		}
	}
	if _, err := KindFromString("bogus"); err == nil {
		t.Error("KindFromString(bogus): want error")
	}
}

func TestValueEqual(t *testing.T) {
	tests := []struct {
		name string
		a, b Value
		want bool
	}{
		{"nils", Nil(), Nil(), true},
		{"ints equal", Int(1), Int(1), true},
		{"ints differ", Int(1), Int(2), false},
		{"kind mismatch", Int(1), Float(1), false},
		{"bools", Bool(true), Bool(true), true},
		{"strings", Str("a"), Str("a"), true},
		{"strings differ", Str("a"), Str("b"), false},
		{"bytes", Bytes([]byte{1}), Bytes([]byte{1}), true},
		{"bytes differ", Bytes([]byte{1}), Bytes([]byte{2}), false},
		{"bytes length", Bytes([]byte{1}), Bytes([]byte{1, 2}), false},
		{"refs", Ref(3), Ref(3), true},
		{"refs differ", Ref(3), Ref(4), false},
		{"lists", List(Int(1), Ref(2)), List(Int(1), Ref(2)), true},
		{"lists differ", List(Int(1)), List(Int(2)), false},
		{"lists length", List(Int(1)), List(Int(1), Int(1)), false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.a.Equal(tt.b); got != tt.want {
				t.Fatalf("Equal = %v, want %v", got, tt.want)
			}
			if got := tt.b.Equal(tt.a); got != tt.want {
				t.Fatalf("Equal not symmetric: %v, want %v", got, tt.want)
			}
		})
	}
}

func TestValueSizeMonotonic(t *testing.T) {
	if Str("aaaa").size() <= Str("").size() {
		t.Error("longer string should account more bytes")
	}
	if Bytes(make([]byte, 64)).size() <= Bytes(nil).size() {
		t.Error("longer bytes should account more bytes")
	}
	if List(Int(1), Int(2)).size() <= List(Int(1)).size() {
		t.Error("longer list should account more bytes")
	}
	if Int(1).size() != valueOverhead {
		t.Errorf("scalar size = %d, want %d", Int(1).size(), valueOverhead)
	}
}

func TestForEachRefTraversesLists(t *testing.T) {
	v := List(Ref(1), Int(9), List(Ref(2), List(Ref(3))), Nil())
	var seen []ObjID
	v.forEachRef(func(id ObjID) { seen = append(seen, id) })
	want := []ObjID{1, 2, 3}
	if !reflect.DeepEqual(seen, want) {
		t.Fatalf("forEachRef = %v, want %v", seen, want)
	}
}

func TestMapRefsRewritesNested(t *testing.T) {
	v := List(Ref(1), Int(5), List(Ref(2)))
	out := v.MapRefs(func(id ObjID) ObjID { return id + 100 })
	elems, _ := out.List()
	if elems[0].MustRef() != 101 {
		t.Errorf("top-level ref = %v", elems[0])
	}
	inner, _ := elems[2].List()
	if inner[0].MustRef() != 102 {
		t.Errorf("nested ref = %v", inner[0])
	}
	// Original untouched.
	orig, _ := v.List()
	if orig[0].MustRef() != 1 {
		t.Errorf("MapRefs mutated source: %v", orig[0])
	}
	// Mapping to NilID produces nil values.
	gone := v.MapRefs(func(ObjID) ObjID { return NilID })
	ge, _ := gone.List()
	if !ge[0].IsNil() {
		t.Errorf("MapRefs to NilID: got %v, want nil", ge[0])
	}
}

// genValue builds a random Value of bounded depth for property tests.
func genValue(r *rand.Rand, depth int) Value {
	k := r.Intn(8)
	if depth <= 0 && k == 7 {
		k = r.Intn(7)
	}
	switch k {
	case 0:
		return Nil()
	case 1:
		return Int(r.Int63() - r.Int63())
	case 2:
		return Float(r.NormFloat64())
	case 3:
		return Bool(r.Intn(2) == 0)
	case 4:
		return Str(randString(r))
	case 5:
		b := make([]byte, r.Intn(32))
		r.Read(b)
		return Bytes(b)
	case 6:
		return Ref(ObjID(r.Intn(100) + 1))
	default:
		n := r.Intn(4)
		elems := make([]Value, n)
		for i := range elems {
			elems[i] = genValue(r, depth-1)
		}
		return List(elems...)
	}
}

func randString(r *rand.Rand) string {
	b := make([]byte, r.Intn(16))
	for i := range b {
		b[i] = byte('a' + r.Intn(26))
	}
	return string(b)
}

// valueBox adapts genValue to testing/quick.
type valueBox struct{ V Value }

func (valueBox) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(valueBox{V: genValue(r, 3)})
}

func TestPropValueEqualReflexive(t *testing.T) {
	f := func(b valueBox) bool { return b.V.Equal(b.V) }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropValueSizeNonNegative(t *testing.T) {
	f := func(b valueBox) bool { return b.V.size() >= valueOverhead }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropMapRefsIdentityPreservesEquality(t *testing.T) {
	f := func(b valueBox) bool {
		out := b.V.MapRefs(func(id ObjID) ObjID { return id })
		return out.Equal(b.V)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
