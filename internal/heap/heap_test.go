package heap

import (
	"errors"
	"strings"
	"testing"
)

// nodeClass returns a simple list-node class used across heap tests.
func nodeClass() *Class {
	return NewClass("Node",
		FieldDef{Name: "payload", Kind: KindBytes},
		FieldDef{Name: "next", Kind: KindRef},
		FieldDef{Name: "tag", Kind: KindInt},
	)
}

func TestNewAllocatesAndAccounts(t *testing.T) {
	h := New(0)
	c := nodeClass()
	o, err := h.New(c)
	if err != nil {
		t.Fatal(err)
	}
	if o.ID() == NilID {
		t.Error("allocated object has nil id")
	}
	wantSize := int64(objectOverhead) + 3*valueOverhead
	if o.Size() != wantSize {
		t.Errorf("object size = %d, want %d", o.Size(), wantSize)
	}
	if h.Used() != wantSize {
		t.Errorf("heap used = %d, want %d", h.Used(), wantSize)
	}
	if h.Len() != 1 {
		t.Errorf("heap len = %d, want 1", h.Len())
	}
}

func TestNewUniqueMonotonicIDs(t *testing.T) {
	h := New(0)
	c := nodeClass()
	var last ObjID
	for i := 0; i < 100; i++ {
		o, err := h.New(c)
		if err != nil {
			t.Fatal(err)
		}
		if o.ID() <= last {
			t.Fatalf("ids not strictly increasing: %d after %d", o.ID(), last)
		}
		last = o.ID()
	}
}

func TestCapacityEnforced(t *testing.T) {
	c := nodeClass()
	one := int64(objectOverhead) + 3*valueOverhead
	h := New(one * 2)
	if _, err := h.New(c); err != nil {
		t.Fatal(err)
	}
	if _, err := h.New(c); err != nil {
		t.Fatal(err)
	}
	_, err := h.New(c)
	if !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("third alloc: got %v, want ErrOutOfMemory", err)
	}
	// Failed allocation must not leak accounting.
	if h.Used() != one*2 {
		t.Errorf("used after failed alloc = %d, want %d", h.Used(), one*2)
	}
}

func TestSetFieldAccountsVariablePayloads(t *testing.T) {
	h := New(0)
	o, err := h.New(nodeClass())
	if err != nil {
		t.Fatal(err)
	}
	base := h.Used()
	if err := o.SetFieldByName("payload", Bytes(make([]byte, 64))); err != nil {
		t.Fatal(err)
	}
	if h.Used() != base+64 {
		t.Errorf("used after 64-byte payload = %d, want %d", h.Used(), base+64)
	}
	if err := o.SetFieldByName("payload", Bytes(make([]byte, 16))); err != nil {
		t.Fatal(err)
	}
	if h.Used() != base+16 {
		t.Errorf("used after shrink = %d, want %d", h.Used(), base+16)
	}
	if err := o.SetFieldByName("payload", Nil()); err != nil {
		t.Fatal(err)
	}
	if h.Used() != base {
		t.Errorf("used after clearing payload = %d, want %d", h.Used(), base)
	}
}

func TestSetFieldCapacityAndKindChecks(t *testing.T) {
	one := int64(objectOverhead) + 3*valueOverhead
	h := New(one + 10)
	o, err := h.New(nodeClass())
	if err != nil {
		t.Fatal(err)
	}
	if err := o.SetFieldByName("payload", Bytes(make([]byte, 64))); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("oversized payload: got %v, want ErrOutOfMemory", err)
	}
	if err := o.SetFieldByName("payload", Int(1)); !errors.Is(err, ErrBadKind) {
		t.Fatalf("kind mismatch: got %v, want ErrBadKind", err)
	}
	if err := o.SetFieldByName("next", Int(1)); !errors.Is(err, ErrBadKind) {
		t.Fatalf("int into ref field: got %v, want ErrBadKind", err)
	}
	if err := o.SetFieldByName("tag", Nil()); !errors.Is(err, ErrBadKind) {
		t.Fatalf("nil into int field: got %v, want ErrBadKind", err)
	}
	if err := o.SetFieldByName("next", Nil()); err != nil {
		t.Fatalf("nil into ref field: %v", err)
	}
	if err := o.SetFieldByName("nope", Int(1)); !errors.Is(err, ErrNoSuchField) {
		t.Fatalf("unknown field: got %v, want ErrNoSuchField", err)
	}
}

func TestGetAndContains(t *testing.T) {
	h := New(0)
	o, _ := h.New(nodeClass())
	got, err := h.Get(o.ID())
	if err != nil || got != o {
		t.Fatalf("Get = %v, %v", got, err)
	}
	if !h.Contains(o.ID()) {
		t.Error("Contains should report resident object")
	}
	if _, err := h.Get(o.ID() + 99); !errors.Is(err, ErrNoSuchObject) {
		t.Fatalf("Get missing: got %v, want ErrNoSuchObject", err)
	}
	if h.Contains(o.ID() + 99) {
		t.Error("Contains should not report missing object")
	}
}

func TestRemoveReleasesMemory(t *testing.T) {
	h := New(0)
	o, _ := h.New(nodeClass())
	_ = o.SetFieldByName("payload", Bytes(make([]byte, 100)))
	if err := h.Remove(o.ID()); err != nil {
		t.Fatal(err)
	}
	if h.Used() != 0 {
		t.Errorf("used after remove = %d, want 0", h.Used())
	}
	if h.Contains(o.ID()) {
		t.Error("object still resident after Remove")
	}
	if err := h.Remove(o.ID()); !errors.Is(err, ErrNoSuchObject) {
		t.Fatalf("double remove: got %v, want ErrNoSuchObject", err)
	}
}

func TestNewAtRestoresIdentity(t *testing.T) {
	h := New(0)
	c := nodeClass()
	o, _ := h.New(c)
	id := o.ID()
	if err := h.Remove(id); err != nil {
		t.Fatal(err)
	}
	restored, err := h.NewAt(id, c)
	if err != nil {
		t.Fatal(err)
	}
	if restored.ID() != id {
		t.Errorf("restored id = %d, want %d", restored.ID(), id)
	}
	// Collision with a resident object must fail.
	if _, err := h.NewAt(id, c); err == nil {
		t.Error("NewAt over resident object: want error")
	}
	// Fresh allocations must not collide with restored ids.
	far := id + 50
	if _, err := h.NewAt(far, c); err != nil {
		t.Fatal(err)
	}
	next, _ := h.New(c)
	if next.ID() <= far {
		t.Errorf("fresh id %d collides with restored space (<= %d)", next.ID(), far)
	}
	if _, err := h.NewAt(NilID, c); err == nil {
		t.Error("NewAt(NilID): want error")
	}
}

func TestRoots(t *testing.T) {
	h := New(0)
	o, _ := h.New(nodeClass())
	h.SetRoot("head", o.RefTo())
	v, ok := h.Root("head")
	if !ok || v.MustRef() != o.ID() {
		t.Fatalf("Root = %v, %v", v, ok)
	}
	h.SetRoot("cursor", Nil())
	names := h.RootNames()
	if len(names) != 2 || names[0] != "cursor" || names[1] != "head" {
		t.Fatalf("RootNames = %v", names)
	}
	h.DelRoot("cursor")
	if _, ok := h.Root("cursor"); ok {
		t.Error("root survived DelRoot")
	}
}

func TestStatsSnapshot(t *testing.T) {
	h := New(1 << 20)
	for i := 0; i < 5; i++ {
		if _, err := h.New(nodeClass()); err != nil {
			t.Fatal(err)
		}
	}
	st := h.StatsSnapshot()
	if st.Objects != 5 || st.Allocated != 5 {
		t.Errorf("stats = %+v", st)
	}
	if st.Capacity != 1<<20 {
		t.Errorf("capacity = %d", st.Capacity)
	}
	if st.UsedFraction() <= 0 || st.UsedFraction() >= 1 {
		t.Errorf("used fraction = %v", st.UsedFraction())
	}
	if (Stats{}).UsedFraction() != 0 {
		t.Error("unlimited heap should report fraction 0")
	}
}

func TestSetCapacityShrinkBlocksAllocation(t *testing.T) {
	h := New(0)
	if _, err := h.New(nodeClass()); err != nil {
		t.Fatal(err)
	}
	h.SetCapacity(h.Used()) // no headroom left
	if _, err := h.New(nodeClass()); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("alloc after shrink: got %v, want ErrOutOfMemory", err)
	}
}

func TestClassRegistry(t *testing.T) {
	r := NewRegistry()
	c := nodeClass()
	if err := r.Register(c); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(nodeClass()); err == nil {
		t.Error("duplicate registration: want error")
	}
	got, err := r.Lookup("Node")
	if err != nil || got != c {
		t.Fatalf("Lookup = %v, %v", got, err)
	}
	if _, err := r.Lookup("Ghost"); !errors.Is(err, ErrUnknownClass) {
		t.Fatalf("Lookup missing: got %v, want ErrUnknownClass", err)
	}
	if err := r.Register(nil); err == nil {
		t.Error("nil class registration: want error")
	}
	if names := r.Names(); len(names) != 1 || names[0] != "Node" {
		t.Errorf("Names = %v", names)
	}
}

func TestClassMethodTable(t *testing.T) {
	c := NewClass("T").
		AddMethod("b", func(*Call) ([]Value, error) { return nil, nil }).
		AddMethod("a", func(*Call) ([]Value, error) { return nil, nil })
	if _, ok := c.Method("a"); !ok {
		t.Error("method a missing")
	}
	if _, ok := c.Method("zz"); ok {
		t.Error("phantom method found")
	}
	names := c.MethodNames()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Errorf("MethodNames = %v", names)
	}
	defer func() {
		if recover() == nil {
			t.Error("duplicate AddMethod should panic")
		}
	}()
	c.AddMethod("a", func(*Call) ([]Value, error) { return nil, nil })
}

func TestDuplicateFieldPanics(t *testing.T) {
	defer func() {
		if r := recover(); r == nil || !strings.Contains(r.(string), "duplicate field") {
			t.Errorf("want duplicate-field panic, got %v", r)
		}
	}()
	NewClass("Bad", FieldDef{Name: "x", Kind: KindInt}, FieldDef{Name: "x", Kind: KindInt})
}

func TestCallArg(t *testing.T) {
	c := &Call{Args: []Value{Int(1)}}
	if c.Arg(0).MustInt() != 1 {
		t.Error("Arg(0) wrong")
	}
	if !c.Arg(1).IsNil() || !c.Arg(-1).IsNil() {
		t.Error("out-of-range Arg should be nil")
	}
}
