package heap

import "time"

// CollectStats reports the outcome of one collection cycle.
type CollectStats struct {
	// Live is the number of objects that survived the cycle.
	Live int
	// Reclaimed is the number of objects swept.
	Reclaimed int
	// BytesFreed is the accounted memory returned to the budget.
	BytesFreed int64
	// Finalized is the number of finalizer functions executed.
	Finalized int
}

// Collect runs a stop-the-world mark-sweep cycle. Liveness roots are: named
// heap roots, pinned objects, and any extra ids supplied by the caller (the
// swapping runtime passes the receivers and arguments of in-flight
// invocations, standing in for thread stacks).
//
// Finalizers of reclaimed objects run synchronously after the sweep, outside
// the heap lock, so they may freely call back into the heap (the
// SwappingManager's table-purging finalizers do).
func (h *Heap) Collect(extra ...ObjID) CollectStats {
	h.mu.Lock()

	gcClock, gcSeconds, gcFreed := h.gcClock, h.gcSeconds, h.gcFreed
	var began time.Time
	if gcClock != nil {
		began = gcClock.Now()
	}

	marked := make(map[ObjID]bool, len(h.objects))
	var stack []ObjID

	push := func(id ObjID) {
		if id == NilID || marked[id] {
			return
		}
		if _, resident := h.objects[id]; !resident {
			return
		}
		marked[id] = true
		stack = append(stack, id)
	}

	for _, v := range h.roots {
		v.forEachRef(push)
	}
	for id := range h.pins {
		push(id)
	}
	for id := range h.nursery {
		push(id)
	}
	for _, id := range extra {
		push(id)
	}

	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		o := h.objects[id]
		o.forEachRef(push)
	}

	var st CollectStats
	var toFinalize []func()
	for id, o := range h.objects {
		if marked[id] {
			continue
		}
		st.Reclaimed++
		st.BytesFreed += o.Size()
		delete(h.objects, id)
		delete(h.pins, id)
		if fns := h.finalizers[id]; len(fns) > 0 {
			delete(h.finalizers, id)
			finalID := id
			for _, fn := range fns {
				f := fn
				toFinalize = append(toFinalize, func() { f(finalID) })
			}
		}
	}
	// Age the nursery: each cycle burns one unit of grace.
	for id, grace := range h.nursery {
		if grace <= 1 {
			delete(h.nursery, id)
		} else {
			h.nursery[id] = grace - 1
		}
	}
	st.Live = len(h.objects)
	h.collections.Add(1)
	h.reclaimed.Add(uint64(st.Reclaimed))
	h.mu.Unlock()

	h.release(st.BytesFreed)
	for _, f := range toFinalize {
		f()
		st.Finalized++
	}
	if gcClock != nil {
		gcSeconds.Observe(gcClock.Now().Sub(began).Seconds())
	}
	gcFreed.Add(float64(st.BytesFreed))
	return st
}

// ReachableFrom computes the set of resident objects transitively reachable
// from the given seed references. It is a read-only traversal used by tests
// and by the swapping manager's detachment-completeness checks.
func (h *Heap) ReachableFrom(seeds ...ObjID) map[ObjID]bool {
	h.mu.RLock()
	defer h.mu.RUnlock()

	marked := make(map[ObjID]bool)
	var stack []ObjID
	push := func(id ObjID) {
		if id == NilID || marked[id] {
			return
		}
		if _, resident := h.objects[id]; !resident {
			return
		}
		marked[id] = true
		stack = append(stack, id)
	}
	for _, id := range seeds {
		push(id)
	}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		h.objects[id].forEachRef(push)
	}
	return marked
}

// ReachableFromRoots computes the set of objects reachable from the
// application roots only (no pins, no middleware stacks): the application's
// view of liveness.
func (h *Heap) ReachableFromRoots() map[ObjID]bool {
	h.mu.RLock()
	var seeds []ObjID
	for _, v := range h.roots {
		v.forEachRef(func(id ObjID) { seeds = append(seeds, id) })
	}
	h.mu.RUnlock()
	return h.ReachableFrom(seeds...)
}

// WeakRef is a non-owning reference: it does not keep its target alive and
// can be probed for validity. The SwappingManager tracks swap-cluster-proxies
// through weak references, exactly as the paper prescribes.
type WeakRef struct {
	h  *Heap
	id ObjID
}

// Weak returns a weak reference to id.
func (h *Heap) Weak(id ObjID) WeakRef { return WeakRef{h: h, id: id} }

// ID returns the referenced object id (which may no longer be resident).
func (w WeakRef) ID() ObjID { return w.id }

// Get returns the target if it is still resident.
func (w WeakRef) Get() (*Object, bool) {
	if w.h == nil || w.id == NilID {
		return nil, false
	}
	o, err := w.h.Get(w.id)
	if err != nil {
		return nil, false
	}
	return o, true
}

// Alive reports whether the target is still resident.
func (w WeakRef) Alive() bool {
	_, ok := w.Get()
	return ok
}
