package heap

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// buildChain allocates n chained nodes and returns them head-first.
func buildChain(t testing.TB, h *Heap, n int) []*Object {
	t.Helper()
	c := nodeClass()
	objs := make([]*Object, n)
	for i := range objs {
		o, err := h.New(c)
		if err != nil {
			t.Fatal(err)
		}
		objs[i] = o
	}
	for i := 0; i < n-1; i++ {
		if err := objs[i].SetFieldByName("next", objs[i+1].RefTo()); err != nil {
			t.Fatal(err)
		}
	}
	return objs
}

func TestCollectReclaimsUnreachable(t *testing.T) {
	h := New(0)
	objs := buildChain(t, h, 10)
	h.SetRoot("head", objs[0].RefTo())

	// Cut the chain after the 4th node: nodes 5..10 become garbage.
	if err := objs[3].SetFieldByName("next", Nil()); err != nil {
		t.Fatal(err)
	}
	st := h.Collect()
	if st.Reclaimed != 6 {
		t.Errorf("reclaimed = %d, want 6", st.Reclaimed)
	}
	if st.Live != 4 {
		t.Errorf("live = %d, want 4", st.Live)
	}
	for i := 0; i < 4; i++ {
		if !h.Contains(objs[i].ID()) {
			t.Errorf("reachable node %d collected", i)
		}
	}
	for i := 4; i < 10; i++ {
		if h.Contains(objs[i].ID()) {
			t.Errorf("garbage node %d survived", i)
		}
	}
}

func TestCollectFreesAccountedBytes(t *testing.T) {
	h := New(0)
	objs := buildChain(t, h, 3)
	_ = objs[2].SetFieldByName("payload", Bytes(make([]byte, 128)))
	h.SetRoot("head", objs[0].RefTo())
	_ = objs[1].SetFieldByName("next", Nil())
	before := h.Used()
	garbageSize := objs[2].Size()
	st := h.Collect()
	if st.BytesFreed != garbageSize {
		t.Errorf("BytesFreed = %d, want %d", st.BytesFreed, garbageSize)
	}
	if h.Used() != before-garbageSize {
		t.Errorf("used = %d, want %d", h.Used(), before-garbageSize)
	}
}

func TestCollectHonorsPins(t *testing.T) {
	h := New(0)
	o, _ := h.New(nodeClass())
	h.Pin(o.ID())
	if st := h.Collect(); st.Reclaimed != 0 {
		t.Fatalf("pinned object collected (reclaimed=%d)", st.Reclaimed)
	}
	h.Pin(o.ID()) // second pin
	h.Unpin(o.ID())
	if st := h.Collect(); st.Reclaimed != 0 {
		t.Fatal("object with remaining pin collected")
	}
	h.Unpin(o.ID())
	if st := h.Collect(); st.Reclaimed != 1 {
		t.Fatalf("unpinned garbage not collected (reclaimed=%d)", st.Reclaimed)
	}
	// Pin/Unpin of nil ids are harmless no-ops.
	h.Pin(NilID)
	h.Unpin(NilID)
}

func TestCollectHonorsExtraRoots(t *testing.T) {
	h := New(0)
	objs := buildChain(t, h, 3)
	// No named roots at all; pass the head as an in-flight stack reference.
	st := h.Collect(objs[0].ID())
	if st.Reclaimed != 0 {
		t.Fatalf("stack-rooted chain collected (reclaimed=%d)", st.Reclaimed)
	}
	st = h.Collect()
	if st.Reclaimed != 3 {
		t.Fatalf("garbage chain survived (reclaimed=%d)", st.Reclaimed)
	}
}

func TestCollectTraversesListsAndRoots(t *testing.T) {
	h := New(0)
	a, _ := h.New(nodeClass())
	b, _ := h.New(nodeClass())
	holder, _ := h.New(NewClass("Holder", FieldDef{Name: "items", Kind: KindList}))
	_ = holder.SetFieldByName("items", List(a.RefTo(), List(b.RefTo())))
	h.SetRoot("holder", holder.RefTo())
	if st := h.Collect(); st.Reclaimed != 0 {
		t.Fatalf("list-referenced objects collected (reclaimed=%d)", st.Reclaimed)
	}
}

func TestFinalizersRunOnCollection(t *testing.T) {
	h := New(0)
	o, _ := h.New(nodeClass())
	var finalized []ObjID
	h.OnFinalize(o.ID(), func(id ObjID) { finalized = append(finalized, id) })
	h.OnFinalize(o.ID(), func(id ObjID) { finalized = append(finalized, id+1000) })
	st := h.Collect()
	if st.Finalized != 2 {
		t.Fatalf("finalized = %d, want 2", st.Finalized)
	}
	if len(finalized) != 2 || finalized[0] != o.ID() || finalized[1] != o.ID()+1000 {
		t.Fatalf("finalizer calls = %v", finalized)
	}
	// Finalizers must not run twice.
	if st := h.Collect(); st.Finalized != 0 {
		t.Error("finalizer ran again on next cycle")
	}
}

func TestFinalizerMayCallBackIntoHeap(t *testing.T) {
	h := New(0)
	o, _ := h.New(nodeClass())
	ran := false
	h.OnFinalize(o.ID(), func(ObjID) {
		ran = true
		// Re-entrancy: allocate during finalization.
		if _, err := h.New(nodeClass()); err != nil {
			t.Errorf("alloc in finalizer: %v", err)
		}
	})
	h.Collect()
	if !ran {
		t.Fatal("finalizer did not run")
	}
}

func TestWeakRefLifecycle(t *testing.T) {
	h := New(0)
	o, _ := h.New(nodeClass())
	w := h.Weak(o.ID())
	if got, ok := w.Get(); !ok || got != o {
		t.Fatal("weak ref should resolve while target lives")
	}
	if !w.Alive() {
		t.Fatal("Alive = false for live target")
	}
	h.Collect() // o is unreachable garbage
	if _, ok := w.Get(); ok {
		t.Fatal("weak ref resolved after collection")
	}
	if w.Alive() {
		t.Fatal("Alive = true after collection")
	}
	if w.ID() != o.ID() {
		t.Error("weak ref lost its id")
	}
	var zero WeakRef
	if _, ok := zero.Get(); ok {
		t.Error("zero weak ref should not resolve")
	}
}

func TestReachableFrom(t *testing.T) {
	h := New(0)
	objs := buildChain(t, h, 5)
	set := h.ReachableFrom(objs[2].ID())
	if len(set) != 3 {
		t.Fatalf("reachable set size = %d, want 3", len(set))
	}
	for i := 2; i < 5; i++ {
		if !set[objs[i].ID()] {
			t.Errorf("node %d missing from reachable set", i)
		}
	}
	h.SetRoot("head", objs[0].RefTo())
	rootSet := h.ReachableFromRoots()
	if len(rootSet) != 5 {
		t.Fatalf("root-reachable size = %d, want 5", len(rootSet))
	}
}

func TestCollectCyclicGarbage(t *testing.T) {
	h := New(0)
	a, _ := h.New(nodeClass())
	b, _ := h.New(nodeClass())
	_ = a.SetFieldByName("next", b.RefTo())
	_ = b.SetFieldByName("next", a.RefTo())
	st := h.Collect()
	if st.Reclaimed != 2 {
		t.Fatalf("cycle not collected (reclaimed=%d)", st.Reclaimed)
	}
}

// Property: after any random sequence of allocations, linkings and root
// assignments, collection reclaims exactly the objects unreachable from
// roots, and accounted bytes equal the sum of surviving object sizes.
func TestPropCollectMatchesReachability(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		h := New(0)
		c := nodeClass()
		var objs []*Object
		n := 5 + r.Intn(40)
		for i := 0; i < n; i++ {
			o, err := h.New(c)
			if err != nil {
				return false
			}
			objs = append(objs, o)
		}
		for i := 0; i < n*2; i++ {
			from := objs[r.Intn(n)]
			if r.Intn(5) == 0 {
				_ = from.SetFieldByName("next", Nil())
			} else {
				_ = from.SetFieldByName("next", objs[r.Intn(n)].RefTo())
			}
		}
		roots := r.Intn(4)
		for i := 0; i < roots; i++ {
			h.SetRoot(string(rune('a'+i)), objs[r.Intn(n)].RefTo())
		}
		want := h.ReachableFromRoots()
		st := h.Collect()
		if st.Live != len(want) {
			return false
		}
		var bytes int64
		for id := range want {
			if !h.Contains(id) {
				return false
			}
			o, _ := h.Get(id)
			bytes += o.Size()
		}
		return h.Used() == bytes && st.Reclaimed == n-len(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
