package heap

// ClassOps is the per-class behavior plane: method dispatch, typed field
// resolution, field-vector synthesis and zero-alloc field iteration. Every
// class carries exactly one implementation, so the runtime never
// special-cases how a class came to exist:
//
//   - Classes built at registration time out of NewClass + AddMethod closures
//     get defaultOps, which routes dispatch through the closure table and
//     field resolution through the name→slot map — the synthesis path that
//     predates code generation, now just the default implementation.
//   - Classes emitted by cmd/obicomp bind generated ops (Class.BindOps) whose
//     Dispatch is a static switch over the accessor names and whose field
//     resolution never touches a map — the obicomp "full speed after proxy
//     replacement" property from the paper, recovered by codegen instead of
//     reflection.
//
// Generated ops may cover only the methods the generator emitted: Dispatch
// reports ok=false for anything else and Class.Invoke falls back to the
// closure table, so hand-added methods coexist with generated accessors.
type ClassOps interface {
	// Dispatch runs method on call. ok=false means these ops do not
	// implement the method and the caller should fall back to the class's
	// closure table (or report ErrNoSuchMethod).
	Dispatch(method string, call *Call) (res []Value, ok bool, err error)
	// Has reports whether Dispatch would handle method.
	Has(method string) bool
	// MethodNames lists the methods Dispatch handles, in any order.
	MethodNames() []string
	// FieldIndex resolves a field name to its slot.
	FieldIndex(name string) (int, bool)
	// NewFieldVector builds the zeroed initial field slots of an instance.
	NewFieldVector() []Value
	// EachField visits every field slot in declaration order without
	// allocating; returning false stops the walk.
	EachField(o *Object, visit func(slot int, def FieldDef, v Value) bool)
}

// defaultOps implements ClassOps over the class's own tables: the closure
// method map and the field-index map built by NewClass. It is a single
// pointer, so storing it in the Class's ops slot never allocates.
type defaultOps struct{ c *Class }

var _ ClassOps = defaultOps{}

func (d defaultOps) Dispatch(method string, call *Call) ([]Value, bool, error) {
	m, ok := d.c.methods[method]
	if !ok {
		return nil, false, nil
	}
	res, err := m(call)
	return res, true, err
}

func (d defaultOps) Has(method string) bool {
	_, ok := d.c.methods[method]
	return ok
}

func (d defaultOps) MethodNames() []string {
	names := make([]string, 0, len(d.c.methods))
	for n := range d.c.methods {
		names = append(names, n)
	}
	return names
}

func (d defaultOps) FieldIndex(name string) (int, bool) {
	i, ok := d.c.fieldIndex[name]
	return i, ok
}

func (d defaultOps) NewFieldVector() []Value {
	fields := make([]Value, len(d.c.fields))
	for i := range fields {
		fields[i] = zeroValue(d.c.fields[i].Kind)
	}
	return fields
}

func (d defaultOps) EachField(o *Object, visit func(int, FieldDef, Value) bool) {
	for i := range d.c.fields {
		if !visit(i, d.c.fields[i], o.fields[i]) {
			return
		}
	}
}
