package heap

import "testing"

// Substrate micro-benchmarks: the costs everything above is built on.

func BenchmarkAlloc(b *testing.B) {
	h := New(0)
	c := nodeClass()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := h.New(c); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFieldAccess(b *testing.B) {
	h := New(0)
	o, _ := h.New(nodeClass())
	_ = o.SetFieldByName("tag", Int(7))
	idx, _ := o.Class().FieldIndex("tag")
	b.Run("by-index", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = o.Field(idx)
		}
	})
	b.Run("by-name", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := o.FieldByName("tag"); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkDirectInvoke(b *testing.B) {
	h := New(0)
	rt := NewDirectRuntime(h)
	c := counterClass()
	o, _ := h.New(c)
	ref := o.RefTo()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rt.Invoke(ref, "incr"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCollect(b *testing.B) {
	for _, n := range []int{100, 1000} {
		b.Run(byCount(n), func(b *testing.B) {
			h := New(0)
			objs := buildChain(b, h, n)
			h.SetRoot("head", objs[0].RefTo())
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// Everything is live: a pure mark cost measurement.
				if st := h.Collect(); st.Reclaimed != 0 {
					b.Fatal("live objects collected")
				}
			}
		})
	}
}

func byCount(n int) string {
	switch n {
	case 100:
		return "objects=100"
	default:
		return "objects=1000"
	}
}
