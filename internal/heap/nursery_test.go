package heap

import "testing"

func TestNurseryGraceProtectsFreshObjects(t *testing.T) {
	h := New(0)
	h.SetNurseryGrace(2)
	o, _ := h.New(nodeClass())
	id := o.ID()

	// Unreachable but fresh: survives two cycles, reclaimed on the third.
	if st := h.Collect(); st.Reclaimed != 0 {
		t.Fatalf("collected in first grace cycle (%d)", st.Reclaimed)
	}
	if st := h.Collect(); st.Reclaimed != 0 {
		t.Fatalf("collected in second grace cycle (%d)", st.Reclaimed)
	}
	if st := h.Collect(); st.Reclaimed != 1 {
		t.Fatalf("not collected after grace expired (%d)", st.Reclaimed)
	}
	if h.Contains(id) {
		t.Fatal("object survived past grace")
	}
}

func TestNurseryDisabledByDefault(t *testing.T) {
	h := New(0)
	_, _ = h.New(nodeClass())
	if st := h.Collect(); st.Reclaimed != 1 {
		t.Fatalf("default heap should collect fresh garbage immediately (%d)", st.Reclaimed)
	}
}

func TestNurseryObjectsRootedNormallyAfterGrace(t *testing.T) {
	h := New(0)
	h.SetNurseryGrace(1)
	o, _ := h.New(nodeClass())
	h.SetRoot("r", o.RefTo())
	h.Collect()
	h.Collect()
	if !h.Contains(o.ID()) {
		t.Fatal("rooted object collected")
	}
	h.DelRoot("r")
	if st := h.Collect(); st.Reclaimed != 1 {
		t.Fatal("unrooted object survived after grace and root removal")
	}
}

func TestNurseryClearedByRemove(t *testing.T) {
	h := New(0)
	h.SetNurseryGrace(5)
	o, _ := h.New(nodeClass())
	if err := h.Remove(o.ID()); err != nil {
		t.Fatal(err)
	}
	// No stale nursery entry should resurrect anything or break collection.
	if st := h.Collect(); st.Reclaimed != 0 {
		t.Fatalf("phantom reclaim: %d", st.Reclaimed)
	}
}

func TestNurseryKeepsTransitiveReferences(t *testing.T) {
	// A fresh object's fields keep their targets alive too (it is a root).
	h := New(0)
	h.SetNurseryGrace(1)
	a, _ := h.New(nodeClass())
	h.SetNurseryGrace(0)
	b, _ := h.New(nodeClass()) // not in nursery
	_ = a.SetFieldByName("next", b.RefTo())
	if st := h.Collect(); st.Reclaimed != 0 {
		t.Fatalf("nursery edge not traced (%d reclaimed)", st.Reclaimed)
	}
}
