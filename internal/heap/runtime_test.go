package heap

import (
	"errors"
	"testing"
)

// counterClass defines a class whose methods exercise dispatch, argument
// passing, field mutation and nested invocation through the Call's Invoker.
func counterClass() *Class {
	c := NewClass("Counter",
		FieldDef{Name: "count", Kind: KindInt},
		FieldDef{Name: "peer", Kind: KindRef},
	)
	c.AddMethod("incr", func(call *Call) ([]Value, error) {
		n, err := call.Self.FieldByName("count")
		if err != nil {
			return nil, err
		}
		step := int64(1)
		if !call.Arg(0).IsNil() {
			step, err = call.Arg(0).Int()
			if err != nil {
				return nil, err
			}
		}
		if err := call.Self.SetFieldByName("count", Int(n.MustInt()+step)); err != nil {
			return nil, err
		}
		return []Value{Int(n.MustInt() + step)}, nil
	})
	c.AddMethod("pokePeer", func(call *Call) ([]Value, error) {
		peer, err := call.Self.FieldByName("peer")
		if err != nil {
			return nil, err
		}
		// Nested invocation goes back through the Invoker, so middleware
		// interposition (when present) applies transitively.
		return call.RT.Invoke(peer, "incr", Int(10))
	})
	c.AddMethod("boom", func(*Call) ([]Value, error) {
		return nil, errors.New("boom")
	})
	return c
}

func TestDirectInvoke(t *testing.T) {
	h := New(0)
	rt := NewDirectRuntime(h)
	c := counterClass()
	o, _ := h.New(c)

	out, err := rt.Invoke(o.RefTo(), "incr")
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].MustInt() != 1 {
		t.Fatalf("incr returned %v", out)
	}
	out, err = rt.Invoke(o.RefTo(), "incr", Int(5))
	if err != nil {
		t.Fatal(err)
	}
	if out[0].MustInt() != 6 {
		t.Fatalf("incr(5) returned %v", out)
	}
}

func TestNestedInvokeThroughCall(t *testing.T) {
	h := New(0)
	rt := NewDirectRuntime(h)
	c := counterClass()
	a, _ := h.New(c)
	b, _ := h.New(c)
	_ = a.SetFieldByName("peer", b.RefTo())

	out, err := rt.Invoke(a.RefTo(), "pokePeer")
	if err != nil {
		t.Fatal(err)
	}
	if out[0].MustInt() != 10 {
		t.Fatalf("pokePeer returned %v", out)
	}
	n, _ := b.FieldByName("count")
	if n.MustInt() != 10 {
		t.Fatalf("peer count = %v", n)
	}
}

func TestInvokeErrors(t *testing.T) {
	h := New(0)
	rt := NewDirectRuntime(h)
	o, _ := h.New(counterClass())

	if _, err := rt.Invoke(Nil(), "incr"); !errors.Is(err, ErrNilTarget) {
		t.Errorf("nil target: got %v, want ErrNilTarget", err)
	}
	if _, err := rt.Invoke(Int(1), "incr"); !errors.Is(err, ErrBadKind) {
		t.Errorf("non-ref target: got %v, want ErrBadKind", err)
	}
	if _, err := rt.Invoke(Ref(9999), "incr"); !errors.Is(err, ErrNoSuchObject) {
		t.Errorf("dangling target: got %v, want ErrNoSuchObject", err)
	}
	if _, err := rt.Invoke(o.RefTo(), "ghost"); !errors.Is(err, ErrNoSuchMethod) {
		t.Errorf("missing method: got %v, want ErrNoSuchMethod", err)
	}
	if _, err := rt.Invoke(o.RefTo(), "boom"); err == nil || err.Error() != "boom" {
		t.Errorf("method error not propagated: %v", err)
	}
}

func TestDirectFieldAccess(t *testing.T) {
	h := New(0)
	rt := NewDirectRuntime(h)
	o, _ := h.New(counterClass())

	if err := rt.SetFieldValue(o.RefTo(), "count", Int(7)); err != nil {
		t.Fatal(err)
	}
	v, err := rt.Field(o.RefTo(), "count")
	if err != nil || v.MustInt() != 7 {
		t.Fatalf("Field = %v, %v", v, err)
	}
	if _, err := rt.Field(Nil(), "count"); !errors.Is(err, ErrNilTarget) {
		t.Errorf("nil target field read: %v", err)
	}
	if err := rt.SetFieldValue(Nil(), "count", Int(1)); !errors.Is(err, ErrNilTarget) {
		t.Errorf("nil target field write: %v", err)
	}
	if _, err := rt.Field(o.RefTo(), "ghost"); !errors.Is(err, ErrNoSuchField) {
		t.Errorf("missing field read: %v", err)
	}
	if _, err := rt.Field(Ref(9999), "count"); !errors.Is(err, ErrNoSuchObject) {
		t.Errorf("dangling field read: %v", err)
	}
	if err := rt.SetFieldValue(Ref(9999), "count", Int(1)); !errors.Is(err, ErrNoSuchObject) {
		t.Errorf("dangling field write: %v", err)
	}
	if _, err := rt.Field(Int(3), "count"); !errors.Is(err, ErrBadKind) {
		t.Errorf("non-ref field read: %v", err)
	}
	if err := rt.SetFieldValue(Int(3), "count", Int(1)); !errors.Is(err, ErrBadKind) {
		t.Errorf("non-ref field write: %v", err)
	}
	if rt.Heap() != h {
		t.Error("Heap() accessor wrong")
	}
}

func TestDeepRecursionThroughInvoker(t *testing.T) {
	// The Figure 5 benchmarks recurse 10000 deep through the Invoker; make
	// sure the runtime sustains that.
	h := New(0)
	rt := NewDirectRuntime(h)
	c := NewClass("R", FieldDef{Name: "next", Kind: KindRef})
	c.AddMethod("walk", func(call *Call) ([]Value, error) {
		depth := call.Arg(0).MustInt()
		next, _ := call.Self.FieldByName("next")
		if next.IsNil() {
			return []Value{Int(depth)}, nil
		}
		return call.RT.Invoke(next, "walk", Int(depth+1))
	})
	const n = 10000
	objs := make([]*Object, n)
	for i := range objs {
		objs[i], _ = h.New(c)
	}
	for i := 0; i < n-1; i++ {
		_ = objs[i].SetFieldByName("next", objs[i+1].RefTo())
	}
	out, err := rt.Invoke(objs[0].RefTo(), "walk", Int(1))
	if err != nil {
		t.Fatal(err)
	}
	if out[0].MustInt() != n {
		t.Fatalf("depth = %v, want %d", out[0], n)
	}
}
