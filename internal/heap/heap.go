package heap

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"objectswap/internal/obs"
)

// Errors reported by heap operations.
var (
	// ErrOutOfMemory reports that an allocation or field growth would exceed
	// the heap's configured capacity — the constrained-device condition that
	// triggers Object-Swapping.
	ErrOutOfMemory = errors.New("heap: out of memory")
	// ErrNoSuchObject reports a dangling reference: the target is not (or is
	// no longer) resident in this heap.
	ErrNoSuchObject = errors.New("heap: no such object")
	// ErrNoSuchMethod reports an invocation of an undeclared method.
	ErrNoSuchMethod = errors.New("heap: no such method")
	// ErrNoSuchField reports access to an undeclared field.
	ErrNoSuchField = errors.New("heap: no such field")
)

// Stats summarizes heap occupancy and lifetime counters.
type Stats struct {
	Capacity    int64  // configured byte capacity; 0 = unlimited
	Used        int64  // accounted live bytes
	Objects     int    // resident object count
	Allocated   uint64 // objects ever allocated
	Collections uint64 // completed GC cycles
	Reclaimed   uint64 // objects ever reclaimed by GC
}

// UsedFraction returns Used/Capacity, or 0 when capacity is unlimited.
func (s Stats) UsedFraction() float64 {
	if s.Capacity <= 0 {
		return 0
	}
	return float64(s.Used) / float64(s.Capacity)
}

// Heap is a byte-accounted managed object store with named roots, middleware
// pins, and a mark-sweep collector. It models the VM heap of one constrained
// device.
type Heap struct {
	capacity int64 // read/written atomically
	headroom int64 // middleware reserve; read/written atomically
	used     int64 // atomic

	mu      sync.RWMutex
	nextID  uint64
	objects map[ObjID]*Object
	roots   map[string]Value
	pins    map[ObjID]int

	finalizers map[ObjID][]func(ObjID)

	// writeObserver, when set, is invoked after every successful field
	// write with the written object's id (replication uses it for dirty
	// tracking). Invoked outside heap locks. observerSuspend > 0 silences
	// it (middleware-internal writes such as swap-in reinstallation are not
	// user mutations). extraObservers are additional independent hooks (the
	// swapping runtime's delta dirty tracking) that SetWriteObserver does not
	// replace. The observer slots live under their own lock so that the
	// per-write dispatch check never contends with allocation and lookup
	// traffic on h.mu — with the swap core sharded, field writes from many
	// swap shards land here concurrently.
	obsMu           sync.RWMutex
	writeObserver   func(ObjID)
	extraObservers  []func(ObjID)
	observerSuspend int
	// suspendScopes are predicate-scoped suspensions (see
	// SuspendWriteObserverFor): observers stay silent only for the object
	// ids a scope's predicate claims, so a background reinstallation of one
	// cluster does not swallow concurrent application writes to others.
	suspendScopes []*suspendScope
	// accessObservers fire on every observed object access — both field
	// writes (dispatched alongside the write observers) and explicit
	// NoteAccess calls from the method/field dispatch path. They feed the
	// telemetry plane's heat tracking and share observerSuspend so that
	// middleware-internal traffic (swap-in reinstallation) never reads as
	// application heat.
	accessObservers []func(ObjID)

	// nursery grants newly allocated objects a grace period of N collection
	// cycles before they become collectable, protecting host-held references
	// that have not yet been anchored in the managed graph (the analogue of
	// JNI local references). Disabled (0) by default.
	nurseryGrace int
	nursery      map[ObjID]int

	// Lifetime counters are monotonic and independent of any map state, so
	// they are plain atomics: bumping them never extends a h.mu critical
	// section, and StatsSnapshot reads them without blocking allocators.
	// The `used` byte counter (above) deliberately stays a single exact
	// CAS-updated word instead of sharded counters: CheckInvariants demands
	// it equal the live-byte sum to the byte, and the reserve path needs an
	// exact read-modify-write against capacity.
	allocated   atomic.Uint64
	collections atomic.Uint64
	reclaimed   atomic.Uint64

	// GC observability hooks, installed by Instrument (nil when the heap is
	// not instrumented). The clock keeps cycle timings deterministic in
	// virtual-time tests.
	gcClock   obs.Clock
	gcSeconds *obs.Histogram
	gcFreed   *obs.Counter
}

// New returns an empty heap. capacity is the byte budget of the device;
// capacity <= 0 means unlimited (useful for master/server nodes).
func New(capacity int64) *Heap {
	return &Heap{
		capacity:   capacity,
		objects:    make(map[ObjID]*Object),
		roots:      make(map[string]Value),
		pins:       make(map[ObjID]int),
		finalizers: make(map[ObjID][]func(ObjID)),
		nursery:    make(map[ObjID]int),
	}
}

// SetWriteObserver installs a hook invoked after every successful field
// write. Pass nil to remove it.
func (h *Heap) SetWriteObserver(fn func(ObjID)) {
	h.obsMu.Lock()
	defer h.obsMu.Unlock()
	h.writeObserver = fn
}

// AddWriteObserver registers an additional write observer that coexists with
// the SetWriteObserver slot (which historically belongs to replication
// write-back). Observers cannot be removed; register once per heap.
func (h *Heap) AddWriteObserver(fn func(ObjID)) {
	if fn == nil {
		return
	}
	h.obsMu.Lock()
	defer h.obsMu.Unlock()
	h.extraObservers = append(h.extraObservers, fn)
}

// observeWrite dispatches to the write observers, if any. A write is also
// an access, so the access observers fire too.
func (h *Heap) observeWrite(id ObjID) {
	h.obsMu.RLock()
	fn := h.writeObserver
	extra := h.extraObservers
	access := h.accessObservers
	if h.observerSuspend > 0 || h.scopedSilenceLocked(id) {
		fn, extra, access = nil, nil, nil
	}
	h.obsMu.RUnlock()
	if fn != nil {
		fn(id)
	}
	for _, e := range extra {
		e(id)
	}
	for _, a := range access {
		a(id)
	}
}

// AddAccessObserver registers a hook invoked on every observed object
// access (field writes plus NoteAccess reads). Observers cannot be removed;
// register once per heap. SuspendWriteObserver silences these too.
func (h *Heap) AddAccessObserver(fn func(ObjID)) {
	if fn == nil {
		return
	}
	h.obsMu.Lock()
	defer h.obsMu.Unlock()
	h.accessObservers = append(h.accessObservers, fn)
}

// NoteAccess reports a read-side access (method dispatch, direct field
// read) to the access observers. It is a no-op when none are registered or
// while observers are suspended, so read paths pay only an RLock.
func (h *Heap) NoteAccess(id ObjID) {
	h.obsMu.RLock()
	access := h.accessObservers
	if h.observerSuspend > 0 || h.scopedSilenceLocked(id) {
		access = nil
	}
	h.obsMu.RUnlock()
	for _, a := range access {
		a(id)
	}
}

// SuspendWriteObserver silences the write observer until the returned
// resume function is called (nestable). Middleware uses it around writes
// that restore rather than mutate state.
func (h *Heap) SuspendWriteObserver() (resume func()) {
	h.obsMu.Lock()
	h.observerSuspend++
	h.obsMu.Unlock()
	return func() {
		h.obsMu.Lock()
		h.observerSuspend--
		h.obsMu.Unlock()
	}
}

// suspendScope is one predicate-bounded observer suspension.
type suspendScope struct {
	pred func(ObjID) bool
}

// scopedSilenceLocked reports whether any active scope claims id. The
// caller holds obsMu (read or write); predicates must be pure functions of
// the id (typically a membership-set lookup) and must not call back into
// the heap.
func (h *Heap) scopedSilenceLocked(id ObjID) bool {
	for _, sc := range h.suspendScopes {
		if sc.pred(id) {
			return true
		}
	}
	return false
}

// SuspendWriteObserverFor silences the write and access observers only for
// the object ids pred claims, until the returned resume function is called.
// Concurrent scopes compose (each silences its own ids), and writes to any
// other object keep flowing to the observers — this is what lets a
// background prefetch install one cluster without swallowing the delta
// dirty-marks and heat of application writes happening elsewhere. A nil
// pred falls back to the global SuspendWriteObserver.
func (h *Heap) SuspendWriteObserverFor(pred func(ObjID) bool) (resume func()) {
	if pred == nil {
		return h.SuspendWriteObserver()
	}
	sc := &suspendScope{pred: pred}
	h.obsMu.Lock()
	h.suspendScopes = append(h.suspendScopes, sc)
	h.obsMu.Unlock()
	return func() {
		h.obsMu.Lock()
		for i, cur := range h.suspendScopes {
			if cur == sc {
				h.suspendScopes = append(h.suspendScopes[:i], h.suspendScopes[i+1:]...)
				break
			}
		}
		h.obsMu.Unlock()
	}
}

// SetNurseryGrace grants future allocations a grace of n collection cycles
// before they may be reclaimed, protecting them while host code wires them
// into the graph. 0 (the default) disables the nursery.
func (h *Heap) SetNurseryGrace(n int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.nurseryGrace = n
}

// TouchNursery refreshes an object's nursery grace, keeping a host-held
// object (such as an iteration cursor) alive across collections for as long
// as it is actively used. A no-op when the nursery is disabled or the object
// is not resident.
func (h *Heap) TouchNursery(id ObjID) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.nurseryGrace <= 0 {
		return
	}
	if _, resident := h.objects[id]; resident {
		h.nursery[id] = h.nurseryGrace
	}
}

// SetCapacity adjusts the byte budget. Shrinking below current usage is
// allowed: subsequent allocations fail until memory is freed (that is exactly
// the memory-pressure situation swapping resolves).
func (h *Heap) SetCapacity(capacity int64) {
	atomic.StoreInt64(&h.capacity, capacity)
}

// Capacity returns the configured byte budget (0 = unlimited).
func (h *Heap) Capacity() int64 { return atomic.LoadInt64(&h.capacity) }

// SetReserve sets the middleware headroom: application allocations (New) stop
// at Capacity-Reserve, while middleware allocations (NewPrivileged, NewAt,
// field growth) may use the full budget. This models the VM headroom that
// lets the swapping machinery allocate replacement-objects and proxies even
// when the application has exhausted its share — freeing memory must not
// itself require application-grade memory.
func (h *Heap) SetReserve(reserve int64) {
	atomic.StoreInt64(&h.headroom, reserve)
}

// Reserve returns the middleware headroom.
func (h *Heap) Reserve() int64 { return atomic.LoadInt64(&h.headroom) }

// Used returns the accounted live bytes.
func (h *Heap) Used() int64 { return atomic.LoadInt64(&h.used) }

// Len returns the number of resident objects.
func (h *Heap) Len() int {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return len(h.objects)
}

// StatsSnapshot returns current occupancy and lifetime counters.
func (h *Heap) StatsSnapshot() Stats {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return Stats{
		Capacity:    h.Capacity(),
		Used:        h.Used(),
		Objects:     len(h.objects),
		Allocated:   h.allocated.Load(),
		Collections: h.collections.Load(),
		Reclaimed:   h.reclaimed.Load(),
	}
}

// reserve accounts delta bytes against the full budget (middleware grade).
func (h *Heap) reserve(delta int64) error {
	return h.reserveWithin(delta, atomic.LoadInt64(&h.capacity))
}

// reserveApp accounts delta bytes against the application share of the
// budget (capacity minus the middleware reserve).
func (h *Heap) reserveApp(delta int64) error {
	limit := atomic.LoadInt64(&h.capacity)
	if limit > 0 {
		if limit -= atomic.LoadInt64(&h.headroom); limit < 0 {
			limit = 1 // reserve swallows everything: all app allocs fail
		}
	}
	return h.reserveWithin(delta, limit)
}

func (h *Heap) reserveWithin(delta, limit int64) error {
	for {
		used := atomic.LoadInt64(&h.used)
		next := used + delta
		if limit > 0 && next > limit {
			return fmt.Errorf("%w: need %d bytes, used %d of %d",
				ErrOutOfMemory, delta, used, limit)
		}
		if atomic.CompareAndSwapInt64(&h.used, used, next) {
			return nil
		}
	}
}

// release returns delta bytes to the budget.
func (h *Heap) release(delta int64) {
	atomic.AddInt64(&h.used, -delta)
}

// New allocates an object of class c with zero-valued fields. It fails with
// ErrOutOfMemory when the object does not fit the application share of the
// budget (capacity minus middleware reserve).
func (h *Heap) New(c *Class) (*Object, error) {
	return h.newObject(c, false)
}

// NewPrivileged allocates like New but may use the middleware reserve. The
// swapping runtime uses it for proxies and replacement-objects so that
// freeing memory never deadlocks on the memory it is trying to free.
func (h *Heap) NewPrivileged(c *Class) (*Object, error) {
	return h.newObject(c, true)
}

func (h *Heap) newObject(c *Class, privileged bool) (*Object, error) {
	if c == nil {
		return nil, errors.New("heap: New: nil class")
	}
	size := int64(objectOverhead) + int64(c.NumFields())*valueOverhead
	var err error
	if privileged {
		err = h.reserve(size)
	} else {
		err = h.reserveApp(size)
	}
	if err != nil {
		return nil, err
	}
	h.mu.Lock()
	h.nextID++
	id := ObjID(h.nextID)
	o := &Object{
		id:     id,
		class:  c,
		heap:   h,
		fields: c.ops.NewFieldVector(),
		size:   size,
	}
	h.objects[id] = o
	h.allocated.Add(1)
	if h.nurseryGrace > 0 {
		h.nursery[id] = h.nurseryGrace
	}
	h.mu.Unlock()
	return o, nil
}

// NewAt installs an object with a caller-chosen ID — used by swap-in and
// replication to restore objects under their original identities. The ID must
// not collide with a resident object; the internal ID counter advances past
// it so fresh allocations never collide either.
func (h *Heap) NewAt(id ObjID, c *Class) (*Object, error) {
	if c == nil {
		return nil, errors.New("heap: NewAt: nil class")
	}
	if id == NilID {
		return nil, errors.New("heap: NewAt: nil id")
	}
	size := int64(objectOverhead) + int64(c.NumFields())*valueOverhead
	// Restored objects are application data: they compete for the
	// application share of the budget, never the middleware reserve —
	// otherwise repeated reloads would squeeze out the very machinery
	// (replacement-objects, proxies) that makes the next eviction possible.
	if err := h.reserveApp(size); err != nil {
		return nil, err
	}
	h.mu.Lock()
	if _, exists := h.objects[id]; exists {
		h.mu.Unlock()
		h.release(size)
		return nil, fmt.Errorf("heap: NewAt: object %d already resident", id)
	}
	if uint64(id) > h.nextID {
		h.nextID = uint64(id)
	}
	o := &Object{
		id:     id,
		class:  c,
		heap:   h,
		fields: c.ops.NewFieldVector(),
		size:   size,
	}
	h.objects[id] = o
	h.allocated.Add(1)
	if h.nurseryGrace > 0 {
		h.nursery[id] = h.nurseryGrace
	}
	h.mu.Unlock()
	return o, nil
}

// EnsureIDAbove advances the allocation counter so future ids exceed id —
// used when restoring a checkpoint whose recorded objects (including ones
// currently swapped out to devices) must keep their identities collision-free.
func (h *Heap) EnsureIDAbove(id ObjID) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if uint64(id) > h.nextID {
		h.nextID = uint64(id)
	}
}

// Get resolves a reference to its resident object.
func (h *Heap) Get(id ObjID) (*Object, error) {
	h.mu.RLock()
	o, ok := h.objects[id]
	h.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: @%d", ErrNoSuchObject, id)
	}
	return o, nil
}

// Contains reports whether id is resident.
func (h *Heap) Contains(id ObjID) bool {
	h.mu.RLock()
	_, ok := h.objects[id]
	h.mu.RUnlock()
	return ok
}

// Remove detaches an object immediately, without running finalizers (it is an
// explicit middleware action, not a collection). Pending finalizers for the
// id are discarded. Used by baseline comparators; Object-Swapping proper
// detaches via reference patching and lets the collector reclaim.
func (h *Heap) Remove(id ObjID) error {
	h.mu.Lock()
	o, ok := h.objects[id]
	if !ok {
		h.mu.Unlock()
		return fmt.Errorf("%w: @%d", ErrNoSuchObject, id)
	}
	delete(h.objects, id)
	delete(h.finalizers, id)
	delete(h.pins, id)
	delete(h.nursery, id)
	h.mu.Unlock()
	h.release(o.Size())
	return nil
}

// SetRoot installs a named root (a global variable / static field — the
// paper's swap-cluster-0 state). Assigning a nil Value keeps the root
// declared but pointing nowhere.
func (h *Heap) SetRoot(name string, v Value) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.roots[name] = v
}

// Root returns the named root value.
func (h *Heap) Root(name string) (Value, bool) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	v, ok := h.roots[name]
	return v, ok
}

// DelRoot removes a named root entirely.
func (h *Heap) DelRoot(name string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	delete(h.roots, name)
}

// RootNames returns the sorted names of declared roots.
func (h *Heap) RootNames() []string {
	h.mu.RLock()
	defer h.mu.RUnlock()
	names := make([]string, 0, len(h.roots))
	for n := range h.roots {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Pin marks an object as referenced by middleware bookkeeping so the
// collector treats it as live even when unreachable from application roots.
// Pins are counted; each Pin needs a matching Unpin.
func (h *Heap) Pin(id ObjID) {
	if id == NilID {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.pins[id]++
}

// Unpin removes one pin from the object.
func (h *Heap) Unpin(id ObjID) {
	if id == NilID {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.pins[id] <= 1 {
		delete(h.pins, id)
	} else {
		h.pins[id]--
	}
}

// OnFinalize registers fn to run (synchronously, during Collect) when the
// object is reclaimed. The paper uses finalizers on swap-cluster-proxies to
// purge the SwappingManager's weak-reference tables.
func (h *Heap) OnFinalize(id ObjID, fn func(ObjID)) {
	if fn == nil || id == NilID {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.finalizers[id] = append(h.finalizers[id], fn)
}

// IDs returns the sorted ids of all resident objects (test/diagnostic aid).
func (h *Heap) IDs() []ObjID {
	h.mu.RLock()
	defer h.mu.RUnlock()
	ids := make([]ObjID, 0, len(h.objects))
	for id := range h.objects {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}
