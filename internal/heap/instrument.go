package heap

import "objectswap/internal/obs"

// Instrument registers the heap's occupancy gauges and lifetime counters in
// r, labeled by device name. Occupancy is exported through callback series so
// every scrape reads the live heap state instead of a stale copy. GC cycles
// additionally feed a pause-duration histogram and a bytes-freed counter
// timed by the registry's clock.
func (h *Heap) Instrument(r *obs.Registry, device string) {
	if r == nil {
		return
	}
	r.GaugeVec("objectswap_heap_used_bytes",
		"Accounted live bytes in the managed heap.", "device").
		WithFunc(func() float64 { return float64(h.Used()) }, device)
	r.GaugeVec("objectswap_heap_capacity_bytes",
		"Configured heap byte capacity (0 = unlimited).", "device").
		WithFunc(func() float64 { return float64(h.Capacity()) }, device)
	r.GaugeVec("objectswap_heap_reserve_bytes",
		"Middleware headroom reserved above the application budget.", "device").
		WithFunc(func() float64 { return float64(h.Reserve()) }, device)
	r.GaugeVec("objectswap_heap_objects",
		"Resident object count.", "device").
		WithFunc(func() float64 { return float64(h.Len()) }, device)
	r.CounterVec("objectswap_heap_allocated_objects_total",
		"Objects ever allocated.", "device").
		WithFunc(func() float64 { return float64(h.StatsSnapshot().Allocated) }, device)
	r.CounterVec("objectswap_heap_gc_cycles_total",
		"Completed mark-sweep collection cycles.", "device").
		WithFunc(func() float64 { return float64(h.StatsSnapshot().Collections) }, device)
	r.CounterVec("objectswap_heap_gc_reclaimed_objects_total",
		"Objects ever reclaimed by the collector.", "device").
		WithFunc(func() float64 { return float64(h.StatsSnapshot().Reclaimed) }, device)

	h.mu.Lock()
	h.gcClock = r.Clock()
	h.gcSeconds = r.HistogramVec("objectswap_heap_gc_seconds",
		"Mark-sweep cycle duration.", nil, "device").With(device)
	h.gcFreed = r.CounterVec("objectswap_heap_gc_freed_bytes_total",
		"Bytes returned to the budget by the collector.", "device").With(device)
	h.mu.Unlock()
}
