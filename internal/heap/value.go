// Package heap implements the managed object runtime that stands in for the
// JVM / .NET Compact Framework substrate of the OBIWAN middleware.
//
// The paper's Object-Swapping mechanism is pure user-level code, but it runs
// inside a managed runtime whose essential properties Go does not natively
// provide: dynamic proxy classes, the ability to detach reachable objects so
// the collector reclaims them, weak references with finalizers, and byte-level
// heap accounting on a constrained device. This package supplies those
// properties with an explicit object model:
//
//   - Class — a named type with field definitions and a method table (the
//     moral equivalent of obicomp-processed application classes);
//   - Object — an instance with a field vector of Values;
//   - Heap — a byte-accounted store of objects with named roots
//     (swap-cluster-0 state), pins for middleware-held references, a
//     mark-sweep local garbage collector, weak references and finalizers.
//
// Cross-object interaction happens through an Invoker, so a middleware layer
// (internal/core) can interpose swap-cluster-proxies; DirectRuntime is the
// interposition-free implementation used as the paper's "NO SWAP-CLUSTERS"
// lower bound.
package heap

import (
	"errors"
	"fmt"
	"strconv"
)

// ObjID identifies a managed object within one Heap. IDs are never reused, so
// an ID remains a stable name for an object across swap-out and reload.
// The zero ObjID is the nil reference.
type ObjID uint64

// NilID is the null object reference.
const NilID ObjID = 0

// Kind enumerates the runtime types a Value can hold.
type Kind uint8

// Value kinds. KindNil is deliberately the zero value so that a zero Value is
// a valid nil.
const (
	KindNil Kind = iota
	KindInt
	KindFloat
	KindBool
	KindString
	KindBytes
	KindRef
	KindList
)

// String returns the lowercase kind name used in XML wrappers.
func (k Kind) String() string {
	switch k {
	case KindNil:
		return "nil"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindBool:
		return "bool"
	case KindString:
		return "string"
	case KindBytes:
		return "bytes"
	case KindRef:
		return "ref"
	case KindList:
		return "list"
	default:
		return "kind(" + strconv.Itoa(int(k)) + ")"
	}
}

// KindFromString parses the names produced by Kind.String.
func KindFromString(s string) (Kind, error) {
	switch s {
	case "nil":
		return KindNil, nil
	case "int":
		return KindInt, nil
	case "float":
		return KindFloat, nil
	case "bool":
		return KindBool, nil
	case "string":
		return KindString, nil
	case "bytes":
		return KindBytes, nil
	case "ref":
		return KindRef, nil
	case "list":
		return KindList, nil
	default:
		return KindNil, fmt.Errorf("heap: unknown kind %q", s)
	}
}

// ErrBadKind reports a Value accessed as the wrong kind.
var ErrBadKind = errors.New("heap: value has different kind")

// Value is a dynamically-typed slot: a primitive, a reference to a managed
// object, or a list of Values. Values are immutable; mutate objects by
// assigning new Values into fields.
type Value struct {
	kind Kind
	i    int64
	f    float64
	s    string
	b    []byte
	ref  ObjID
	list []Value
}

// Nil returns the nil Value.
func Nil() Value { return Value{} }

// Int returns an integer Value.
func Int(i int64) Value { return Value{kind: KindInt, i: i} }

// Float returns a floating-point Value.
func Float(f float64) Value { return Value{kind: KindFloat, f: f} }

// Bool returns a boolean Value.
func Bool(b bool) Value {
	var i int64
	if b {
		i = 1
	}
	return Value{kind: KindBool, i: i}
}

// Str returns a string Value.
func Str(s string) Value { return Value{kind: KindString, s: s} }

// Bytes returns a byte-slice Value. The slice is copied so later caller
// mutation cannot corrupt heap accounting.
func Bytes(b []byte) Value {
	cp := make([]byte, len(b))
	copy(cp, b)
	return Value{kind: KindBytes, b: cp}
}

// Ref returns a reference Value. Ref(NilID) is the nil Value.
func Ref(id ObjID) Value {
	if id == NilID {
		return Nil()
	}
	return Value{kind: KindRef, ref: id}
}

// List returns a list Value holding the given elements. The slice is copied.
func List(elems ...Value) Value {
	cp := make([]Value, len(elems))
	copy(cp, elems)
	return Value{kind: KindList, list: cp}
}

// Kind reports the value's kind.
func (v Value) Kind() Kind { return v.kind }

// IsNil reports whether the value is nil.
func (v Value) IsNil() bool { return v.kind == KindNil }

// IsRef reports whether the value is a non-nil object reference.
func (v Value) IsRef() bool { return v.kind == KindRef }

// Int returns the integer payload, or an error for other kinds.
func (v Value) Int() (int64, error) {
	if v.kind != KindInt {
		return 0, fmt.Errorf("%w: want int, have %s", ErrBadKind, v.kind)
	}
	return v.i, nil
}

// MustInt is Int for values known to be integers; it panics otherwise.
func (v Value) MustInt() int64 {
	i, err := v.Int()
	if err != nil {
		panic(err)
	}
	return i
}

// Float returns the float payload, or an error for other kinds.
func (v Value) Float() (float64, error) {
	if v.kind != KindFloat {
		return 0, fmt.Errorf("%w: want float, have %s", ErrBadKind, v.kind)
	}
	return v.f, nil
}

// Bool returns the boolean payload, or an error for other kinds.
func (v Value) Bool() (bool, error) {
	if v.kind != KindBool {
		return false, fmt.Errorf("%w: want bool, have %s", ErrBadKind, v.kind)
	}
	return v.i != 0, nil
}

// Str returns the string payload, or an error for other kinds.
func (v Value) Str() (string, error) {
	if v.kind != KindString {
		return "", fmt.Errorf("%w: want string, have %s", ErrBadKind, v.kind)
	}
	return v.s, nil
}

// Bytes returns a copy of the byte payload, or an error for other kinds.
func (v Value) Bytes() ([]byte, error) {
	if v.kind != KindBytes {
		return nil, fmt.Errorf("%w: want bytes, have %s", ErrBadKind, v.kind)
	}
	cp := make([]byte, len(v.b))
	copy(cp, v.b)
	return cp, nil
}

// BytesLen returns the length of a bytes payload without copying, or 0.
func (v Value) BytesLen() int { return len(v.b) }

// Ref returns the referenced ObjID. Nil values yield NilID; non-reference
// kinds return an error.
func (v Value) Ref() (ObjID, error) {
	switch v.kind {
	case KindNil:
		return NilID, nil
	case KindRef:
		return v.ref, nil
	default:
		return NilID, fmt.Errorf("%w: want ref, have %s", ErrBadKind, v.kind)
	}
}

// MustRef is Ref for values known to be references; it panics otherwise.
func (v Value) MustRef() ObjID {
	id, err := v.Ref()
	if err != nil {
		panic(err)
	}
	return id
}

// List returns the element slice (shared, treat as read-only), or an error
// for other kinds.
func (v Value) List() ([]Value, error) {
	if v.kind != KindList {
		return nil, fmt.Errorf("%w: want list, have %s", ErrBadKind, v.kind)
	}
	return v.list, nil
}

// Len returns the number of elements of a list, bytes or string value, and 0
// for any other kind.
func (v Value) Len() int {
	switch v.kind {
	case KindList:
		return len(v.list)
	case KindBytes:
		return len(v.b)
	case KindString:
		return len(v.s)
	default:
		return 0
	}
}

// Equal reports deep structural equality: same kind and same payload.
// Reference values compare by ObjID — this is raw pointer identity, NOT the
// paper's application-level identity across swap-cluster-proxies (see
// core.Runtime.RefEqual for that).
func (v Value) Equal(o Value) bool {
	if v.kind != o.kind {
		return false
	}
	switch v.kind {
	case KindNil:
		return true
	case KindInt, KindBool:
		return v.i == o.i
	case KindFloat:
		return v.f == o.f
	case KindString:
		return v.s == o.s
	case KindBytes:
		if len(v.b) != len(o.b) {
			return false
		}
		for i := range v.b {
			if v.b[i] != o.b[i] {
				return false
			}
		}
		return true
	case KindRef:
		return v.ref == o.ref
	case KindList:
		if len(v.list) != len(o.list) {
			return false
		}
		for i := range v.list {
			if !v.list[i].Equal(o.list[i]) {
				return false
			}
		}
		return true
	default:
		return false
	}
}

// String renders the value for debugging.
func (v Value) String() string {
	switch v.kind {
	case KindNil:
		return "nil"
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindBool:
		return strconv.FormatBool(v.i != 0)
	case KindString:
		return strconv.Quote(v.s)
	case KindBytes:
		return fmt.Sprintf("bytes[%d]", len(v.b))
	case KindRef:
		return fmt.Sprintf("@%d", v.ref)
	case KindList:
		return fmt.Sprintf("list[%d]", len(v.list))
	default:
		return "?"
	}
}

// valueOverhead approximates the fixed in-memory cost of one Value slot on a
// constrained device (tag + payload word + slice header amortization).
const valueOverhead = 16

// size returns the accounted byte size of the value, including variable
// payloads. Reference values cost only the slot: the referenced object is
// accounted separately.
func (v Value) size() int64 {
	switch v.kind {
	case KindString:
		return valueOverhead + int64(len(v.s))
	case KindBytes:
		return valueOverhead + int64(len(v.b))
	case KindList:
		sz := int64(valueOverhead)
		for _, e := range v.list {
			sz += e.size()
		}
		return sz
	default:
		return valueOverhead
	}
}

// forEachRef visits every object reference contained in the value, including
// references nested in lists.
func (v Value) forEachRef(visit func(ObjID)) {
	switch v.kind {
	case KindRef:
		visit(v.ref)
	case KindList:
		for _, e := range v.list {
			e.forEachRef(visit)
		}
	}
}

// MapRefs returns a copy of v with every contained reference id rewritten by
// fn (including references inside lists). Non-reference values are returned
// unchanged. fn returning NilID produces a nil Value in place of the ref.
func (v Value) MapRefs(fn func(ObjID) ObjID) Value {
	switch v.kind {
	case KindRef:
		return Ref(fn(v.ref))
	case KindList:
		out := make([]Value, len(v.list))
		for i, e := range v.list {
			out[i] = e.MapRefs(fn)
		}
		return Value{kind: KindList, list: out}
	default:
		return v
	}
}
