// Package obs is the middleware's observability spine: a dependency-free
// metrics registry (counters, gauges, histograms with fixed deterministic
// bucket bounds), per-operation trace spans with phase timings, and a
// Prometheus-style text exposition writer.
//
// The paper's modules observe each other — context management publishes
// memory and connectivity events, the policy engine reacts, the swapping
// manager reports outcomes — and every one of those signals lands here, in
// one registry, so a single scrape explains why a swap was slow or a policy
// fired. All timings flow through a pluggable Clock (virtual time in tests),
// never through wall-clock reads inside the instruments themselves.
package obs

import (
	"sync"
	"time"
)

// Clock supplies the current time to spans and timed instruments. RealClock
// reads the wall clock; VirtualClock is advanced manually, making every
// obs-derived timing deterministic under test.
type Clock interface {
	Now() time.Time
}

// RealClock reads time.Now. It is the only wall-clock access in the package,
// confined to the Clock boundary.
type RealClock struct{}

// Now returns the wall-clock time.
func (RealClock) Now() time.Time { return time.Now() }

// VirtualClock is a manually advanced clock for deterministic tests.
type VirtualClock struct {
	mu  sync.Mutex
	now time.Time
}

// NewVirtualClock returns a virtual clock positioned at start.
func NewVirtualClock(start time.Time) *VirtualClock {
	return &VirtualClock{now: start}
}

// Now returns the current virtual time.
func (c *VirtualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Advance moves the virtual clock forward by d.
func (c *VirtualClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}
