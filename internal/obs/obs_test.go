package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry(nil)
	c := r.Counter("x_total", "a counter")
	c.Inc()
	c.Add(4)
	c.Add(-7) // ignored: counters are monotonic
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %v, want 5", got)
	}
	// Re-registration returns the same instrument.
	if again := r.Counter("x_total", "a counter"); again.Value() != 5 {
		t.Fatal("re-registered counter is a different instrument")
	}

	g := r.Gauge("y", "a gauge")
	g.Set(10)
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %v, want 7", got)
	}

	r.GaugeFunc("z", "callback gauge", func() float64 { return 42 })
	if v, ok := r.Value("z"); !ok || v != 42 {
		t.Fatalf("gauge func = %v %v", v, ok)
	}
}

func TestVecLabels(t *testing.T) {
	r := NewRegistry(nil)
	v := r.CounterVec("ops_total", "ops", "device", "op")
	v.With("pda", "put").Add(3)
	v.With("pda", "get").Inc()
	v.With("desktop", "put").Inc()

	if got, ok := r.Value("ops_total", "pda", "put"); !ok || got != 3 {
		t.Fatalf("pda/put = %v %v", got, ok)
	}
	if _, ok := r.Value("ops_total", "pda", "drop"); ok {
		t.Fatal("unexpected series exists")
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry(nil)
	h := r.Histogram("lat_seconds", "latency", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.5, 5, 50} {
		h.Observe(v)
	}
	s := h.Snapshot()
	// le=0.1 gets 0.05 and 0.1 (inclusive), le=1 gets 0.5, le=10 gets 5,
	// +Inf gets 50.
	want := []uint64{2, 1, 1, 1}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (counts %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Count != 5 || s.Sum != 55.65 {
		t.Fatalf("count=%d sum=%v", s.Count, s.Sum)
	}
}

func TestSpanPhasesOnVirtualClock(t *testing.T) {
	clk := NewVirtualClock(time.Unix(1000, 0))
	r := NewRegistry(clk)
	tr := NewTracer(r, "objectswap_swap")

	sp := tr.Start("swap_out")
	sp.Phase("encode")
	clk.Advance(10 * time.Millisecond)
	sp.AddBytes(2048)
	sp.Phase("ship")
	clk.Advance(30 * time.Millisecond)
	sp.AddBytes(2048)
	phases, total := sp.End()

	if total != 40*time.Millisecond {
		t.Fatalf("total = %v", total)
	}
	if len(phases) != 2 || phases[0].Name != "encode" || phases[1].Name != "ship" {
		t.Fatalf("phases = %+v", phases)
	}
	if phases[0].Duration != 10*time.Millisecond || phases[1].Duration != 30*time.Millisecond {
		t.Fatalf("phase durations = %+v", phases)
	}
	if phases[0].Bytes != 2048 || phases[1].Bytes != 2048 {
		t.Fatalf("phase bytes = %+v", phases)
	}
	if v, ok := r.Value("objectswap_swap_spans_total", "swap_out"); !ok || v != 1 {
		t.Fatalf("spans_total = %v %v", v, ok)
	}
	hs, ok := r.HistogramSnapshotOf("objectswap_swap_phase_seconds", "swap_out", "ship")
	if !ok || hs.Count != 1 || hs.Sum != 0.03 {
		t.Fatalf("ship phase histogram = %+v ok=%v", hs, ok)
	}
	if v, _ := r.Value("objectswap_swap_phase_bytes_total", "swap_out", "ship"); v != 2048 {
		t.Fatalf("ship bytes = %v", v)
	}
}

func TestNilTracerAndSpanAreSafe(t *testing.T) {
	var tr *Tracer
	sp := tr.Start("x")
	sp.Phase("p")
	sp.AddBytes(1)
	if phases, total := sp.End(); phases != nil || total != 0 {
		t.Fatal("nil span recorded something")
	}
}

func TestWriteMetricsExposition(t *testing.T) {
	clk := NewVirtualClock(time.Unix(0, 0))
	r := NewRegistry(clk)
	r.Counter("a_total", "counts a").Add(2)
	r.GaugeVec("b", "gauge b", "device").With("pda").Set(1.5)
	h := r.Histogram("c_seconds", "hist c", []float64{1, 2})
	h.Observe(0.5)
	h.Observe(3)

	var b strings.Builder
	if err := r.WriteMetrics(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP a_total counts a",
		"# TYPE a_total counter",
		"a_total 2",
		`b{device="pda"} 1.5`,
		"# TYPE c_seconds histogram",
		`c_seconds_bucket{le="1"} 1`,
		`c_seconds_bucket{le="2"} 1`,
		`c_seconds_bucket{le="+Inf"} 2`,
		"c_seconds_sum 3.5",
		"c_seconds_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// Deterministic: two gathers render identically.
	var b2 strings.Builder
	_ = r.WriteMetrics(&b2)
	if b2.String() != out {
		t.Fatal("exposition is not deterministic")
	}
}

func TestConcurrentInstrumentsAndGather(t *testing.T) {
	r := NewRegistry(nil)
	v := r.CounterVec("conc_total", "c", "worker")
	h := r.Histogram("conc_seconds", "h", nil)

	stop := make(chan struct{})
	scraped := make(chan struct{})
	go func() {
		defer close(scraped)
		for {
			select {
			case <-stop:
				return
			default:
				var b strings.Builder
				_ = r.WriteMetrics(&b)
			}
		}
	}()

	const workers, n = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := v.With(string(rune('a' + w)))
			for i := 0; i < n; i++ {
				c.Inc()
				h.Observe(float64(i) / n)
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	<-scraped

	total := 0.0
	for w := 0; w < workers; w++ {
		val, _ := r.Value("conc_total", string(rune('a'+w)))
		total += val
	}
	if total != workers*n {
		t.Fatalf("counters lost updates: %v", total)
	}
	if s := h.Snapshot(); s.Count != workers*n {
		t.Fatalf("histogram count = %d", s.Count)
	}
}
