package obs

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
	"time"
)

// Flight-recorder retention defaults, used when NewRecorder is given
// non-positive capacities.
const (
	DefaultFlightSpans  = 256
	DefaultFlightEvents = 512
)

// PhaseRecord is one phase of a retained span, with wire-stable JSON names.
type PhaseRecord struct {
	Name       string `json:"name"`
	DurationNS int64  `json:"duration_ns"`
	Bytes      int64  `json:"bytes,omitempty"`
}

// SpanRecord is one completed operation span retained by the Recorder: the
// paper's swap pipeline phases plus the correlation labels an operator needs
// after the fact (trace ID, device, cluster, storage key, outcome).
type SpanRecord struct {
	// Seq is the recorder-wide admission sequence number (1, 2, 3, ...).
	Seq uint64 `json:"seq"`
	// Op names the operation ("swap_out", "swap_in", "store.put", ...).
	Op string `json:"op"`
	// Trace is the cross-device trace ID carried in X-Obiswap-Trace.
	Trace string `json:"trace,omitempty"`
	// Device is the nearby device the operation talked to, when known.
	Device string `json:"device,omitempty"`
	// Cluster is the swap-cluster involved (0 = not a cluster operation;
	// swap-cluster-0 itself is never swapped, so 0 is unambiguous here).
	Cluster uint32 `json:"cluster,omitempty"`
	// Key is the storage key shipped or fetched, when known.
	Key string `json:"key,omitempty"`
	// Replicas is the replica set holding the shipment (primary first), for
	// replicated placements.
	Replicas []string `json:"replicas,omitempty"`
	// Format is the negotiated wire format the payload moved in, when known.
	Format string `json:"format,omitempty"`
	// Outcome is "ok" or "error".
	Outcome string `json:"outcome"`
	// Error is the failure text for Outcome == "error".
	Error string `json:"error,omitempty"`
	// Start is the span's start time on the registry clock.
	Start time.Time `json:"start"`
	// DurationNS is the whole-operation duration in nanoseconds.
	DurationNS int64 `json:"duration_ns"`
	// Phases is the per-phase breakdown in execution order.
	Phases []PhaseRecord `json:"phases,omitempty"`
}

// EventRecord is one bus publication retained by the Recorder.
type EventRecord struct {
	// Seq is the recorder-wide admission sequence number.
	Seq uint64 `json:"seq"`
	// BusSeq is the bus's own publication sequence number.
	BusSeq uint64 `json:"bus_seq,omitempty"`
	// Topic is the event topic.
	Topic string `json:"topic"`
	// At is the publication time stamped by the bus clock.
	At time.Time `json:"at"`
	// Detail is a bounded rendering of the payload.
	Detail string `json:"detail,omitempty"`
}

// Recorder is the middleware's flight recorder: two bounded ring buffers
// retaining the last N completed spans and the last M bus events, always on,
// so a post-incident look-back ("what were the slowest swaps?", "what failed
// right before the breaker opened?") needs no pre-enabled tooling.
//
// Appends are constant-time under one short mutex hold (no allocation once
// the rings are warm), cheap enough to sit on every swap and every bus
// publication. A nil Recorder is valid and records nothing.
type Recorder struct {
	mu  sync.Mutex
	seq uint64

	spans    []SpanRecord // ring storage, len == capacity
	spanLen  int          // valid entries
	spanPos  int          // next write slot
	events   []EventRecord
	eventLen int
	eventPos int

	spansTotal  uint64 // spans ever admitted (retained + overwritten)
	eventsTotal uint64

	// Drop counters: admissions that overwrote a retained entry because the
	// ring was already full. A nonzero rate means the ring is undersized
	// for the retention window scrape-side tooling expects.
	spanDrops  uint64
	eventDrops uint64
}

// NewRecorder returns a flight recorder retaining the last spanCap spans and
// eventCap events (non-positive values select the defaults).
func NewRecorder(spanCap, eventCap int) *Recorder {
	if spanCap <= 0 {
		spanCap = DefaultFlightSpans
	}
	if eventCap <= 0 {
		eventCap = DefaultFlightEvents
	}
	return &Recorder{
		spans:  make([]SpanRecord, spanCap),
		events: make([]EventRecord, eventCap),
	}
}

// RecordSpan admits one completed span, assigning its Seq. The oldest
// retained span is overwritten once the ring is full.
func (r *Recorder) RecordSpan(s SpanRecord) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.seq++
	s.Seq = r.seq
	if r.spanLen == len(r.spans) {
		r.spanDrops++
	}
	r.spans[r.spanPos] = s
	r.spanPos = (r.spanPos + 1) % len(r.spans)
	if r.spanLen < len(r.spans) {
		r.spanLen++
	}
	r.spansTotal++
	r.mu.Unlock()
}

// RecordEvent admits one bus event, assigning its Seq.
func (r *Recorder) RecordEvent(e EventRecord) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.seq++
	e.Seq = r.seq
	if r.eventLen == len(r.events) {
		r.eventDrops++
	}
	r.events[r.eventPos] = e
	r.eventPos = (r.eventPos + 1) % len(r.events)
	if r.eventLen < len(r.events) {
		r.eventLen++
	}
	r.eventsTotal++
	r.mu.Unlock()
}

// Spans copies the retained spans, most recent first.
func (r *Recorder) Spans() []SpanRecord {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]SpanRecord, 0, r.spanLen)
	for i := 0; i < r.spanLen; i++ {
		idx := (r.spanPos - 1 - i + len(r.spans)) % len(r.spans)
		out = append(out, r.spans[idx])
	}
	return out
}

// Events copies the retained bus events, most recent first.
func (r *Recorder) Events() []EventRecord {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]EventRecord, 0, r.eventLen)
	for i := 0; i < r.eventLen; i++ {
		idx := (r.eventPos - 1 - i + len(r.events)) % len(r.events)
		out = append(out, r.events[idx])
	}
	return out
}

// Slowest returns up to n retained spans ordered by duration descending
// (ties broken by admission order, oldest first). n <= 0 returns all retained
// spans in that order.
func (r *Recorder) Slowest(n int) []SpanRecord {
	spans := r.Spans()
	sort.SliceStable(spans, func(i, j int) bool {
		if spans[i].DurationNS != spans[j].DurationNS {
			return spans[i].DurationNS > spans[j].DurationNS
		}
		return spans[i].Seq < spans[j].Seq
	})
	if n > 0 && n < len(spans) {
		spans = spans[:n]
	}
	return spans
}

// RecentErrors returns up to n retained spans whose outcome is "error", most
// recent first. n <= 0 returns all retained error spans.
func (r *Recorder) RecentErrors(n int) []SpanRecord {
	var out []SpanRecord
	for _, s := range r.Spans() {
		if s.Outcome != "error" {
			continue
		}
		out = append(out, s)
		if n > 0 && len(out) == n {
			break
		}
	}
	return out
}

// Totals reports how many spans and events have ever been admitted
// (including entries already overwritten).
func (r *Recorder) Totals() (spans, events uint64) {
	if r == nil {
		return 0, 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.spansTotal, r.eventsTotal
}

// Dropped reports how many admissions overwrote a retained span or event
// because the corresponding ring was full.
func (r *Recorder) Dropped() (spans, events uint64) {
	if r == nil {
		return 0, 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.spanDrops, r.eventDrops
}

// Instrument exposes the recorder's ring-overwrite counters in reg as
// objectswap_flight_dropped_total{kind}, so scrape-side tooling can detect
// undersized rings without diffing Totals against retained counts.
func (r *Recorder) Instrument(reg *Registry) {
	if r == nil || reg == nil {
		return
	}
	dropped := reg.CounterVec("objectswap_flight_dropped_total",
		"Flight-recorder ring overwrites (oldest retained entry lost) by kind.",
		"kind")
	dropped.WithFunc(func() float64 { s, _ := r.Dropped(); return float64(s) }, "span")
	dropped.WithFunc(func() float64 { _, e := r.Dropped(); return float64(e) }, "event")
}

// FlightDump is the deterministic JSON export shape of a Recorder: retained
// spans and events (most recent first) plus lifetime admission totals.
type FlightDump struct {
	SpansTotal  uint64        `json:"spans_total"`
	EventsTotal uint64        `json:"events_total"`
	Spans       []SpanRecord  `json:"spans"`
	Events      []EventRecord `json:"events"`
}

// Dump snapshots the recorder into its export shape.
func (r *Recorder) Dump() FlightDump {
	d := FlightDump{Spans: r.Spans(), Events: r.Events()}
	d.SpansTotal, d.EventsTotal = r.Totals()
	if d.Spans == nil {
		d.Spans = []SpanRecord{}
	}
	if d.Events == nil {
		d.Events = []EventRecord{}
	}
	return d
}

// WriteJSON writes the recorder's state as deterministic JSON: fixed field
// order (struct order), spans and events most recent first.
func (r *Recorder) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(r.Dump())
}
