package obs

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// WriteMetrics renders every registered family in the Prometheus text
// exposition format (version 0.0.4), in deterministic order: family names
// ascending, series by label values ascending.
func (r *Registry) WriteMetrics(w io.Writer) error {
	for _, fs := range r.Gather() {
		if fs.Help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", fs.Name, escapeHelp(fs.Help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", fs.Name, fs.Kind); err != nil {
			return err
		}
		for _, p := range fs.Points {
			if fs.Kind == KindHistogram && p.Hist != nil {
				if err := writeHistogram(w, fs.Name, p); err != nil {
					return err
				}
				continue
			}
			if _, err := fmt.Fprintf(w, "%s%s %s\n",
				fs.Name, renderLabels(p.Labels), formatValue(p.Value)); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeHistogram(w io.Writer, name string, p Point) error {
	cumulative := uint64(0)
	for i, c := range p.Hist.Counts {
		cumulative += c
		le := "+Inf"
		if i < len(p.Hist.Bounds) {
			le = formatValue(p.Hist.Bounds[i])
		}
		labels := append(append([]Label(nil), p.Labels...), Label{Name: "le", Value: le})
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, renderLabels(labels), cumulative); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, renderLabels(p.Labels), formatValue(p.Hist.Sum)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, renderLabels(p.Labels), p.Hist.Count)
	return err
}

func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabelValue escapes a label value per the text exposition format:
// exactly backslash, double-quote and newline are escaped (as \\, \" and
// \n); every other byte passes through verbatim. Go's %q is NOT equivalent —
// it also escapes tabs and control bytes as \t / \xNN, sequences the
// exposition format does not define and strict parsers reject.
func escapeLabelValue(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	b.Grow(len(s) + 8)
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(c)
		}
	}
	return b.String()
}

func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, "\\", `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
