package obs

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestRecorderRetainsMostRecentSpans(t *testing.T) {
	r := NewRecorder(4, 4)
	for i := 1; i <= 10; i++ {
		r.RecordSpan(SpanRecord{Op: "swap_out", DurationNS: int64(i)})
	}
	spans := r.Spans()
	if len(spans) != 4 {
		t.Fatalf("retained %d spans, want 4", len(spans))
	}
	// Most recent first: durations 10, 9, 8, 7.
	for i, want := range []int64{10, 9, 8, 7} {
		if spans[i].DurationNS != want {
			t.Fatalf("spans[%d].DurationNS = %d, want %d", i, spans[i].DurationNS, want)
		}
	}
	if spans[0].Seq <= spans[1].Seq {
		t.Fatalf("seq not monotonic: %d then %d", spans[0].Seq, spans[1].Seq)
	}
	total, _ := r.Totals()
	if total != 10 {
		t.Fatalf("spans_total = %d, want 10", total)
	}
}

func TestRecorderBoundedUnderConcurrentProducers(t *testing.T) {
	const (
		producers = 8
		perWorker = 500
		spanCap   = 64
		eventCap  = 32
	)
	r := NewRecorder(spanCap, eventCap)
	var wg sync.WaitGroup
	for w := 0; w < producers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				r.RecordSpan(SpanRecord{
					Op:         fmt.Sprintf("op-%d", w),
					DurationNS: int64(i),
					Phases:     []PhaseRecord{{Name: "encode", DurationNS: 1}},
				})
				r.RecordEvent(EventRecord{Topic: "swap.out"})
			}
		}(w)
	}
	wg.Wait()

	if got := len(r.Spans()); got != spanCap {
		t.Fatalf("retained %d spans, want exactly %d", got, spanCap)
	}
	if got := len(r.Events()); got != eventCap {
		t.Fatalf("retained %d events, want exactly %d", got, eventCap)
	}
	spansTotal, eventsTotal := r.Totals()
	if want := uint64(producers * perWorker); spansTotal != want || eventsTotal != want {
		t.Fatalf("totals = (%d, %d), want (%d, %d)", spansTotal, eventsTotal, want, want)
	}
	// Seq strictly decreasing in most-recent-first order.
	spans := r.Spans()
	for i := 1; i < len(spans); i++ {
		if spans[i].Seq >= spans[i-1].Seq {
			t.Fatalf("seq out of order at %d: %d then %d", i, spans[i-1].Seq, spans[i].Seq)
		}
	}
}

func TestRecorderQueries(t *testing.T) {
	r := NewRecorder(8, 8)
	r.RecordSpan(SpanRecord{Op: "swap_out", Outcome: "ok", DurationNS: 50})
	r.RecordSpan(SpanRecord{Op: "swap_out", Outcome: "error", Error: "ship failed", DurationNS: 900})
	r.RecordSpan(SpanRecord{Op: "swap_in", Outcome: "ok", DurationNS: 200})
	r.RecordSpan(SpanRecord{Op: "swap_in", Outcome: "error", Error: "fetch failed", DurationNS: 10})

	slowest := r.Slowest(2)
	if len(slowest) != 2 || slowest[0].DurationNS != 900 || slowest[1].DurationNS != 200 {
		t.Fatalf("Slowest(2) = %+v", slowest)
	}
	errs := r.RecentErrors(0)
	if len(errs) != 2 || errs[0].Error != "fetch failed" || errs[1].Error != "ship failed" {
		t.Fatalf("RecentErrors = %+v", errs)
	}
	if got := r.RecentErrors(1); len(got) != 1 || got[0].Error != "fetch failed" {
		t.Fatalf("RecentErrors(1) = %+v", got)
	}
}

func TestRecorderJSONRoundTrip(t *testing.T) {
	r := NewRecorder(4, 4)
	start := time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)
	r.RecordSpan(SpanRecord{
		Op: "swap_out", Trace: "dev1-00000001", Device: "neighbor", Cluster: 3,
		Key: "dev1-swapcluster-3-gen1", Outcome: "ok", Start: start, DurationNS: 1234,
		Phases: []PhaseRecord{{Name: "encode", DurationNS: 400, Bytes: 2048}},
	})
	r.RecordEvent(EventRecord{BusSeq: 7, Topic: "swap.out", At: start, Detail: "cluster 3"})

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var dump FlightDump
	if err := json.Unmarshal(buf.Bytes(), &dump); err != nil {
		t.Fatalf("round-trip: %v\n%s", err, buf.String())
	}
	if len(dump.Spans) != 1 || len(dump.Events) != 1 {
		t.Fatalf("dump = %+v", dump)
	}
	got := dump.Spans[0]
	want := r.Spans()[0]
	if got.Trace != want.Trace || got.Device != want.Device || got.Cluster != want.Cluster ||
		got.Key != want.Key || !got.Start.Equal(want.Start) || got.DurationNS != want.DurationNS ||
		len(got.Phases) != 1 || got.Phases[0] != want.Phases[0] {
		t.Fatalf("span round-trip mismatch:\n got %+v\nwant %+v", got, want)
	}
	if dump.Events[0].Topic != "swap.out" || dump.Events[0].BusSeq != 7 {
		t.Fatalf("event round-trip mismatch: %+v", dump.Events[0])
	}
	// Two identical dumps must be byte-identical (deterministic export).
	var buf2 bytes.Buffer
	if err := r.WriteJSON(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("export not deterministic across identical dumps")
	}
}

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	r.RecordSpan(SpanRecord{Op: "x"})
	r.RecordEvent(EventRecord{Topic: "y"})
	if r.Spans() != nil || r.Events() != nil || len(r.Slowest(3)) != 0 || len(r.RecentErrors(3)) != 0 {
		t.Fatal("nil recorder returned data")
	}
}

func TestSpanRecordsIntoRecorder(t *testing.T) {
	clock := NewVirtualClock(time.Date(2026, 8, 5, 10, 0, 0, 0, time.UTC))
	reg := NewRegistry(clock)
	tr := NewTracer(reg, "objectswap_swap")
	rec := NewRecorder(8, 8)
	tr.SetRecorder(rec)

	sp := tr.Start("swap_out")
	sp.SetTrace("dev9-00000001")
	sp.SetCluster(5)
	sp.Phase("encode")
	clock.Advance(3 * time.Millisecond)
	sp.AddBytes(1024)
	sp.Phase("ship")
	clock.Advance(7 * time.Millisecond)
	sp.SetDevice("neighbor")
	sp.SetKey("k1")
	sp.End()

	spans := rec.Spans()
	if len(spans) != 1 {
		t.Fatalf("retained %d spans, want 1", len(spans))
	}
	s := spans[0]
	if s.Op != "swap_out" || s.Trace != "dev9-00000001" || s.Cluster != 5 ||
		s.Device != "neighbor" || s.Key != "k1" || s.Outcome != "ok" {
		t.Fatalf("span labels wrong: %+v", s)
	}
	if s.DurationNS != (10 * time.Millisecond).Nanoseconds() {
		t.Fatalf("duration = %d", s.DurationNS)
	}
	if len(s.Phases) != 2 || s.Phases[0].Name != "encode" || s.Phases[0].Bytes != 1024 ||
		s.Phases[0].DurationNS != (3*time.Millisecond).Nanoseconds() {
		t.Fatalf("phases wrong: %+v", s.Phases)
	}

	// A failed span is retained with outcome "error" but does not count as a
	// completed span in the metrics.
	before, _ := reg.Value("objectswap_swap_spans_total", "swap_out")
	sp2 := tr.Start("swap_out")
	sp2.Phase("encode")
	clock.Advance(time.Millisecond)
	sp2.Fail(errors.New("device gone"))
	after, _ := reg.Value("objectswap_swap_spans_total", "swap_out")
	if after != before {
		t.Fatalf("failed span counted as completed: %v -> %v", before, after)
	}
	errsRetained := rec.RecentErrors(0)
	if len(errsRetained) != 1 || errsRetained[0].Error != "device gone" {
		t.Fatalf("RecentErrors = %+v", errsRetained)
	}
}
