package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind classifies a metric family.
type Kind int

// The metric kinds of the registry.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

// String names the kind in the exposition format.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return "untyped"
	}
}

// DefaultBuckets are the fixed deterministic upper bounds (seconds) used for
// duration histograms when the caller does not supply bounds. They span the
// microsecond-to-tens-of-seconds range a swap operation can occupy, from
// in-process encoding to a stalled Bluetooth-class shipment.
var DefaultBuckets = []float64{
	1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// SizeBuckets are fixed deterministic upper bounds (bytes) for payload-size
// histograms.
var SizeBuckets = []float64{
	64, 256, 1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20, 4 << 20,
}

// atomicFloat is a lock-free float64 cell.
type atomicFloat struct{ bits atomic.Uint64 }

func (a *atomicFloat) load() float64 { return math.Float64frombits(a.bits.Load()) }
func (a *atomicFloat) store(v float64) {
	a.bits.Store(math.Float64bits(v))
}
func (a *atomicFloat) add(delta float64) {
	for {
		old := a.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if a.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Counter is a monotonically increasing metric.
type Counter struct{ v atomicFloat }

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter by n. Negative deltas are ignored (counters are
// monotonic by contract).
func (c *Counter) Add(n float64) {
	if c == nil || n < 0 {
		return
	}
	c.v.add(n)
}

// Value returns the current count.
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	return c.v.load()
}

// Gauge is a metric that can go up and down.
type Gauge struct{ v atomicFloat }

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.v.store(v)
}

// Add moves the gauge by delta.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	g.v.add(delta)
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return g.v.load()
}

// Histogram counts observations into fixed buckets and tracks their sum.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64 // ascending upper bounds
	counts []uint64  // len(bounds)+1, last is +Inf
	sum    float64
	count  uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.sum += v
	h.count++
	h.mu.Unlock()
}

// HistogramSnapshot is a histogram's state at a point in time.
type HistogramSnapshot struct {
	Bounds []float64 // upper bounds, ascending
	Counts []uint64  // per-bucket counts; one extra trailing +Inf bucket
	Sum    float64
	Count  uint64
}

// Snapshot copies the histogram state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HistogramSnapshot{
		Bounds: h.bounds, // bounds are immutable after construction
		Counts: append([]uint64(nil), h.counts...),
		Sum:    h.sum,
		Count:  h.count,
	}
	return s
}

// series is one labeled instance within a family.
type series struct {
	labelValues []string
	counter     *Counter
	gauge       *Gauge
	hist        *Histogram
	fn          func() float64 // callback instruments (scrape-time read)
}

// family groups the series of one metric name.
type family struct {
	name       string
	help       string
	kind       Kind
	labelNames []string
	bounds     []float64
	isFunc     bool

	mu     sync.Mutex
	series map[string]*series
}

const labelSep = "\x1f"

func (f *family) get(labelValues []string) *series {
	if len(labelValues) != len(f.labelNames) {
		panic(fmt.Sprintf("obs: metric %s wants %d label values, got %d",
			f.name, len(f.labelNames), len(labelValues)))
	}
	key := strings.Join(labelValues, labelSep)
	f.mu.Lock()
	defer f.mu.Unlock()
	s := f.series[key]
	if s == nil {
		s = &series{labelValues: append([]string(nil), labelValues...)}
		switch f.kind {
		case KindCounter:
			s.counter = &Counter{}
		case KindGauge:
			s.gauge = &Gauge{}
		case KindHistogram:
			s.hist = &Histogram{
				bounds: f.bounds,
				counts: make([]uint64, len(f.bounds)+1),
			}
		}
		f.series[key] = s
	}
	return s
}

// bindFunc installs (or replaces) a callback series under the family lock so
// a concurrent Gather never observes a half-initialized series.
func (f *family) bindFunc(labelValues []string, fn func() float64) {
	if len(labelValues) != len(f.labelNames) {
		panic(fmt.Sprintf("obs: metric %s wants %d label values, got %d",
			f.name, len(f.labelNames), len(labelValues)))
	}
	key := strings.Join(labelValues, labelSep)
	f.mu.Lock()
	defer f.mu.Unlock()
	s := f.series[key]
	if s == nil {
		s = &series{labelValues: append([]string(nil), labelValues...)}
		f.series[key] = s
	}
	s.fn = fn
}

// Registry holds the metric families of one middleware instance. Construct
// with NewRegistry; instruments registered under the same name are shared
// (re-registration returns the existing instrument).
type Registry struct {
	clock Clock

	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry whose timed helpers use clock
// (nil = RealClock).
func NewRegistry(clock Clock) *Registry {
	if clock == nil {
		clock = RealClock{}
	}
	return &Registry{clock: clock, families: make(map[string]*family)}
}

// Clock returns the registry's time source.
func (r *Registry) Clock() Clock { return r.clock }

// family registers (or returns) the named family, enforcing a consistent
// shape across registrations.
func (r *Registry) family(name, help string, kind Kind, labelNames []string, bounds []float64, isFunc bool) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{
			name:       name,
			help:       help,
			kind:       kind,
			labelNames: append([]string(nil), labelNames...),
			bounds:     append([]float64(nil), bounds...),
			isFunc:     isFunc,
			series:     make(map[string]*series),
		}
		r.families[name] = f
		return f
	}
	if f.kind != kind || len(f.labelNames) != len(labelNames) || f.isFunc != isFunc {
		panic(fmt.Sprintf("obs: metric %s re-registered with a different shape", name))
	}
	return f
}

// Counter registers (or returns) an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.family(name, help, KindCounter, nil, nil, false).get(nil).counter
}

// CounterVec is a counter family keyed by label values.
type CounterVec struct{ f *family }

// CounterVec registers (or returns) a labeled counter family.
func (r *Registry) CounterVec(name, help string, labelNames ...string) *CounterVec {
	return &CounterVec{f: r.family(name, help, KindCounter, labelNames, nil, false)}
}

// With returns the counter for the given label values (created on first use).
func (v *CounterVec) With(labelValues ...string) *Counter {
	if v == nil {
		return nil
	}
	return v.f.get(labelValues).counter
}

// Gauge registers (or returns) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.family(name, help, KindGauge, nil, nil, false).get(nil).gauge
}

// GaugeVec is a gauge family keyed by label values.
type GaugeVec struct{ f *family }

// GaugeVec registers (or returns) a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labelNames ...string) *GaugeVec {
	return &GaugeVec{f: r.family(name, help, KindGauge, labelNames, nil, false)}
}

// With returns the gauge for the given label values (created on first use).
func (v *GaugeVec) With(labelValues ...string) *Gauge {
	if v == nil {
		return nil
	}
	return v.f.get(labelValues).gauge
}

// WithFunc installs a callback gauge series for the given label values: fn is
// read at gather time instead of a stored value.
func (v *GaugeVec) WithFunc(fn func() float64, labelValues ...string) {
	if v == nil || fn == nil {
		return
	}
	v.f.bindFunc(labelValues, fn)
}

// WithFunc installs a callback counter series for the given label values (fn
// must be monotonic).
func (v *CounterVec) WithFunc(fn func() float64, labelValues ...string) {
	if v == nil || fn == nil {
		return
	}
	v.f.bindFunc(labelValues, fn)
}

// GaugeFunc registers a gauge whose value is read from fn at scrape time —
// the natural fit for state another module already tracks (heap occupancy,
// reachable-device count).
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.family(name, help, KindGauge, nil, nil, true).bindFunc(nil, fn)
}

// CounterFunc registers a counter whose value is read from fn at scrape time
// (fn must be monotonic).
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.family(name, help, KindCounter, nil, nil, true).bindFunc(nil, fn)
}

// Histogram registers (or returns) an unlabeled histogram with the given
// bucket bounds (nil = DefaultBuckets).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefaultBuckets
	}
	return r.family(name, help, KindHistogram, nil, bounds, false).get(nil).hist
}

// HistogramVec is a histogram family keyed by label values.
type HistogramVec struct{ f *family }

// HistogramVec registers (or returns) a labeled histogram family with the
// given bucket bounds (nil = DefaultBuckets).
func (r *Registry) HistogramVec(name, help string, bounds []float64, labelNames ...string) *HistogramVec {
	if bounds == nil {
		bounds = DefaultBuckets
	}
	return &HistogramVec{f: r.family(name, help, KindHistogram, labelNames, bounds, false)}
}

// With returns the histogram for the given label values (created on first
// use).
func (v *HistogramVec) With(labelValues ...string) *Histogram {
	if v == nil {
		return nil
	}
	return v.f.get(labelValues).hist
}

// Label is one name=value pair of a series.
type Label struct {
	Name  string
	Value string
}

// Point is one series' state within a family snapshot.
type Point struct {
	Labels []Label
	Value  float64            // counters and gauges
	Hist   *HistogramSnapshot // histograms only
}

// FamilySnapshot is one metric family's state at gather time.
type FamilySnapshot struct {
	Name   string
	Help   string
	Kind   Kind
	Points []Point
}

// Gather snapshots every registered family in deterministic order (family
// names ascending, series by label values ascending). Callback instruments
// are read at this moment.
func (r *Registry) Gather() []FamilySnapshot {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	fams := make([]*family, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fams = append(fams, r.families[n])
	}
	r.mu.Unlock()

	out := make([]FamilySnapshot, 0, len(fams))
	for _, f := range fams {
		f.mu.Lock()
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fs := FamilySnapshot{Name: f.name, Help: f.help, Kind: f.kind}
		for _, k := range keys {
			s := f.series[k]
			p := Point{}
			for i, lv := range s.labelValues {
				p.Labels = append(p.Labels, Label{Name: f.labelNames[i], Value: lv})
			}
			switch {
			case s.fn != nil:
				p.Value = s.fn()
			case s.counter != nil:
				p.Value = s.counter.Value()
			case s.gauge != nil:
				p.Value = s.gauge.Value()
			case s.hist != nil:
				hs := s.hist.Snapshot()
				p.Hist = &hs
			}
			fs.Points = append(fs.Points, p)
		}
		f.mu.Unlock()
		out = append(out, fs)
	}
	return out
}

// Value returns the current value of a counter or gauge series, identified by
// family name and label values in registration order. It reports false when
// the family or series does not exist (or is a histogram).
func (r *Registry) Value(name string, labelValues ...string) (float64, bool) {
	r.mu.Lock()
	f := r.families[name]
	r.mu.Unlock()
	if f == nil || f.kind == KindHistogram {
		return 0, false
	}
	key := strings.Join(labelValues, labelSep)
	f.mu.Lock()
	s := f.series[key]
	f.mu.Unlock()
	if s == nil {
		return 0, false
	}
	switch {
	case s.fn != nil:
		return s.fn(), true
	case s.counter != nil:
		return s.counter.Value(), true
	case s.gauge != nil:
		return s.gauge.Value(), true
	}
	return 0, false
}

// HistogramSnapshotOf returns the state of a histogram series, identified by
// family name and label values in registration order.
func (r *Registry) HistogramSnapshotOf(name string, labelValues ...string) (HistogramSnapshot, bool) {
	r.mu.Lock()
	f := r.families[name]
	r.mu.Unlock()
	if f == nil || f.kind != KindHistogram {
		return HistogramSnapshot{}, false
	}
	key := strings.Join(labelValues, labelSep)
	f.mu.Lock()
	s := f.series[key]
	f.mu.Unlock()
	if s == nil || s.hist == nil {
		return HistogramSnapshot{}, false
	}
	return s.hist.Snapshot(), true
}
