package obs

import "context"

// TraceHeader is the HTTP header that carries a swap trace ID across the
// store and replication boundaries, so the span recorded on the constrained
// device correlates with the serving node's access log and flight recorder.
// See PROTOCOL.md.
const TraceHeader = "X-Obiswap-Trace"

// traceKey is the context key for the in-flight trace ID.
type traceKey struct{}

// ContextWithTrace returns ctx carrying the given trace ID. An empty id
// returns ctx unchanged.
func ContextWithTrace(ctx context.Context, id string) context.Context {
	if id == "" {
		return ctx
	}
	return context.WithValue(ctx, traceKey{}, id)
}

// TraceFrom extracts the trace ID carried by ctx ("" when absent).
func TraceFrom(ctx context.Context) string {
	if ctx == nil {
		return ""
	}
	id, _ := ctx.Value(traceKey{}).(string)
	return id
}
