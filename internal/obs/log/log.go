// Package log is the middleware's structured, leveled logger. It is
// dependency-free by design (ROADMAP.md: only the Go standard library), emits
// either logfmt-style key=value lines or single-line JSON objects with a
// deterministic field order, and stamps timestamps from an obs.Clock so tests
// and replayed traces log reproducible times.
//
// A nil *Logger is valid everywhere and logs nothing, so library code can
// accept an optional logger without guarding every call site.
package log

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
	"unicode/utf8"

	"objectswap/internal/obs"
)

// Level is a log severity. Records below the logger's level are dropped.
type Level int32

const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

// String returns the lower-case level name used in output.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	default:
		return "level(" + strconv.Itoa(int(l)) + ")"
	}
}

// ParseLevel maps a level name ("debug", "info", "warn", "error",
// case-insensitive) to its Level.
func ParseLevel(s string) (Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return LevelDebug, nil
	case "info":
		return LevelInfo, nil
	case "warn", "warning":
		return LevelWarn, nil
	case "error":
		return LevelError, nil
	}
	return LevelInfo, fmt.Errorf("unknown log level %q", s)
}

// Format selects the output encoding.
type Format int

const (
	// FormatKV emits logfmt-style lines: ts=... level=info msg="..." k=v ...
	FormatKV Format = iota
	// FormatJSON emits one JSON object per line with fields in the same
	// order as FormatKV (ts, level, msg, then pairs in call order).
	FormatJSON
)

// Logger writes structured records to a single io.Writer. Each record is one
// line; concurrent callers are serialized by an internal mutex so lines never
// interleave. The level can be changed at runtime (SetLevel) without racing
// in-flight records.
type Logger struct {
	mu    *sync.Mutex // shared across With-derived loggers (same writer)
	w     io.Writer
	clock obs.Clock
	level *atomic.Int32 // shared across With-derived loggers
	fmt   Format
	base  []kv // fields attached by With, in attachment order
}

type kv struct {
	key string
	val any
}

// Option configures a Logger.
type Option func(*Logger)

// WithLevel sets the minimum severity emitted (default LevelInfo).
func WithLevel(l Level) Option {
	return func(lg *Logger) { lg.level.Store(int32(l)) }
}

// WithFormat selects the output encoding (default FormatKV).
func WithFormat(f Format) Option {
	return func(lg *Logger) { lg.fmt = f }
}

// WithClock stamps records from the given clock (default obs.RealClock).
func WithClock(c obs.Clock) Option {
	return func(lg *Logger) {
		if c != nil {
			lg.clock = c
		}
	}
}

// New returns a Logger writing to w. A nil w yields a nil Logger (which is
// safe to use and logs nothing).
func New(w io.Writer, opts ...Option) *Logger {
	if w == nil {
		return nil
	}
	lg := &Logger{
		mu:    &sync.Mutex{},
		w:     w,
		clock: obs.RealClock{},
		level: &atomic.Int32{},
	}
	lg.level.Store(int32(LevelInfo))
	for _, opt := range opts {
		opt(lg)
	}
	return lg
}

// With returns a logger that attaches the given key/value pairs to every
// record. The derived logger shares the writer, mutex, and level with its
// parent. A dangling key (odd pair count) gets the value "(missing)".
func (lg *Logger) With(pairs ...any) *Logger {
	if lg == nil || len(pairs) == 0 {
		return lg
	}
	child := *lg
	child.base = append(append([]kv(nil), lg.base...), toKVs(pairs)...)
	return &child
}

// SetLevel changes the minimum emitted severity, affecting this logger and
// every logger derived from the same root via With.
func (lg *Logger) SetLevel(l Level) {
	if lg != nil {
		lg.level.Store(int32(l))
	}
}

// Enabled reports whether records at the given level would be emitted.
func (lg *Logger) Enabled(l Level) bool {
	return lg != nil && int32(l) >= lg.level.Load()
}

// Debug logs at LevelDebug. Pairs are alternating keys and values.
func (lg *Logger) Debug(msg string, pairs ...any) { lg.log(LevelDebug, msg, pairs) }

// Info logs at LevelInfo.
func (lg *Logger) Info(msg string, pairs ...any) { lg.log(LevelInfo, msg, pairs) }

// Warn logs at LevelWarn.
func (lg *Logger) Warn(msg string, pairs ...any) { lg.log(LevelWarn, msg, pairs) }

// Error logs at LevelError.
func (lg *Logger) Error(msg string, pairs ...any) { lg.log(LevelError, msg, pairs) }

func (lg *Logger) log(l Level, msg string, pairs []any) {
	if !lg.Enabled(l) {
		return
	}
	now := lg.clock.Now().UTC()
	fields := lg.base
	if len(pairs) > 0 {
		fields = append(append([]kv(nil), lg.base...), toKVs(pairs)...)
	}

	var b strings.Builder
	if lg.fmt == FormatJSON {
		writeJSONRecord(&b, now, l, msg, fields)
	} else {
		writeKVRecord(&b, now, l, msg, fields)
	}
	b.WriteByte('\n')

	lg.mu.Lock()
	io.WriteString(lg.w, b.String())
	lg.mu.Unlock()
}

func toKVs(pairs []any) []kv {
	out := make([]kv, 0, (len(pairs)+1)/2)
	for i := 0; i < len(pairs); i += 2 {
		key, ok := pairs[i].(string)
		if !ok {
			key = fmt.Sprint(pairs[i])
		}
		var val any = "(missing)"
		if i+1 < len(pairs) {
			val = pairs[i+1]
		}
		out = append(out, kv{key: key, val: val})
	}
	return out
}

const timeLayout = "2006-01-02T15:04:05.000Z07:00"

func writeKVRecord(b *strings.Builder, now time.Time, l Level, msg string, fields []kv) {
	b.WriteString("ts=")
	b.WriteString(now.Format(timeLayout))
	b.WriteString(" level=")
	b.WriteString(l.String())
	b.WriteString(" msg=")
	b.WriteString(quoteKV(msg))
	for _, f := range fields {
		b.WriteByte(' ')
		b.WriteString(safeKey(f.key))
		b.WriteByte('=')
		b.WriteString(quoteKV(renderValue(f.val)))
	}
}

func writeJSONRecord(b *strings.Builder, now time.Time, l Level, msg string, fields []kv) {
	// Hand-built JSON keeps the field order deterministic (ts, level, msg,
	// then pairs in call order) — encoding/json on a map would sort keys and
	// lose it, and a struct cannot carry variadic fields.
	b.WriteByte('{')
	b.WriteString(`"ts":`)
	b.WriteString(quoteJSON(now.Format(timeLayout)))
	b.WriteString(`,"level":`)
	b.WriteString(quoteJSON(l.String()))
	b.WriteString(`,"msg":`)
	b.WriteString(quoteJSON(msg))
	seen := map[string]bool{"ts": true, "level": true, "msg": true}
	for _, f := range fields {
		key := f.key
		if seen[key] {
			key = "field_" + key // never emit duplicate JSON keys
		}
		seen[key] = true
		b.WriteByte(',')
		b.WriteString(quoteJSON(key))
		b.WriteByte(':')
		writeJSONValue(b, f.val)
	}
	b.WriteByte('}')
}

// renderValue flattens a field value to its text form.
func renderValue(v any) string {
	switch t := v.(type) {
	case nil:
		return "null"
	case string:
		return t
	case error:
		return t.Error()
	case time.Duration:
		return t.String()
	case time.Time:
		return t.UTC().Format(timeLayout)
	case fmt.Stringer:
		return t.String()
	default:
		return fmt.Sprint(v)
	}
}

func writeJSONValue(b *strings.Builder, v any) {
	switch t := v.(type) {
	case nil:
		b.WriteString("null")
	case bool:
		b.WriteString(strconv.FormatBool(t))
	case int:
		b.WriteString(strconv.Itoa(t))
	case int32:
		b.WriteString(strconv.FormatInt(int64(t), 10))
	case int64:
		b.WriteString(strconv.FormatInt(t, 10))
	case uint32:
		b.WriteString(strconv.FormatUint(uint64(t), 10))
	case uint64:
		b.WriteString(strconv.FormatUint(t, 10))
	case float64:
		b.WriteString(strconv.FormatFloat(t, 'g', -1, 64))
	default:
		b.WriteString(quoteJSON(renderValue(v)))
	}
}

// safeKey replaces characters that would break logfmt parsing in a key.
func safeKey(k string) string {
	if k == "" {
		return "_"
	}
	if !strings.ContainsAny(k, " =\"\n\t") {
		return k
	}
	repl := strings.NewReplacer(" ", "_", "=", "_", "\"", "_", "\n", "_", "\t", "_")
	return repl.Replace(k)
}

// quoteKV quotes a logfmt value only when it needs it.
func quoteKV(s string) string {
	if s == "" {
		return `""`
	}
	if !strings.ContainsAny(s, " =\"\n\t") && utf8.ValidString(s) {
		return s
	}
	return strconv.Quote(s)
}

func quoteJSON(s string) string {
	var b strings.Builder
	b.WriteByte('"')
	for _, r := range s {
		switch r {
		case '"':
			b.WriteString(`\"`)
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		case '\r':
			b.WriteString(`\r`)
		case '\t':
			b.WriteString(`\t`)
		default:
			if r < 0x20 {
				fmt.Fprintf(&b, `\u%04x`, r)
			} else {
				b.WriteRune(r)
			}
		}
	}
	b.WriteByte('"')
	return b.String()
}
