package log

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"objectswap/internal/obs"
)

func fixedClock() *obs.VirtualClock {
	return obs.NewVirtualClock(time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC))
}

func TestKVOutput(t *testing.T) {
	var buf bytes.Buffer
	lg := New(&buf, WithClock(fixedClock()))
	lg.Info("swap out", "device", "neighbor", "cluster", uint32(3), "bytes", int64(2048))
	want := `ts=2026-08-05T12:00:00.000Z level=info msg="swap out" device=neighbor cluster=3 bytes=2048` + "\n"
	if buf.String() != want {
		t.Fatalf("got  %q\nwant %q", buf.String(), want)
	}
}

func TestKVQuoting(t *testing.T) {
	var buf bytes.Buffer
	lg := New(&buf, WithClock(fixedClock()))
	lg.Info("ok", "err", errors.New(`device "a" = gone`), "empty", "", "dur", 1500*time.Millisecond)
	line := buf.String()
	for _, want := range []string{`err="device \"a\" = gone"`, `empty=""`, `dur=1.5s`} {
		if !strings.Contains(line, want) {
			t.Fatalf("line %q missing %q", line, want)
		}
	}
}

func TestJSONOutput(t *testing.T) {
	var buf bytes.Buffer
	lg := New(&buf, WithClock(fixedClock()), WithFormat(FormatJSON))
	lg.Info("swap out", "device", "neighbor", "ok", true, "ratio", 0.5, "note", "a\nb")
	line := buf.String()
	var rec map[string]any
	if err := json.Unmarshal([]byte(line), &rec); err != nil {
		t.Fatalf("invalid JSON %q: %v", line, err)
	}
	if rec["ts"] != "2026-08-05T12:00:00.000Z" || rec["level"] != "info" ||
		rec["msg"] != "swap out" || rec["device"] != "neighbor" ||
		rec["ok"] != true || rec["ratio"] != 0.5 || rec["note"] != "a\nb" {
		t.Fatalf("record %#v", rec)
	}
	// Deterministic field order: ts, level, msg, then pairs in call order.
	if !strings.HasPrefix(line, `{"ts":"2026-08-05T12:00:00.000Z","level":"info","msg":"swap out","device":"neighbor",`) {
		t.Fatalf("field order changed: %q", line)
	}
}

func TestLevelFiltering(t *testing.T) {
	var buf bytes.Buffer
	lg := New(&buf, WithClock(fixedClock()), WithLevel(LevelWarn))
	lg.Debug("d")
	lg.Info("i")
	lg.Warn("w")
	lg.Error("e")
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 || !strings.Contains(lines[0], "level=warn") || !strings.Contains(lines[1], "level=error") {
		t.Fatalf("lines = %q", lines)
	}
	if lg.Enabled(LevelInfo) || !lg.Enabled(LevelWarn) {
		t.Fatal("Enabled disagrees with configured level")
	}
	lg.SetLevel(LevelDebug)
	lg.Debug("now visible")
	if !strings.Contains(buf.String(), "now visible") {
		t.Fatal("SetLevel did not take effect")
	}
}

func TestWithFields(t *testing.T) {
	var buf bytes.Buffer
	root := New(&buf, WithClock(fixedClock()))
	child := root.With("subsys", "transport", "device", "neighbor")
	child.Info("retry", "attempt", 2)
	want := `ts=2026-08-05T12:00:00.000Z level=info msg=retry subsys=transport device=neighbor attempt=2` + "\n"
	if buf.String() != want {
		t.Fatalf("got  %q\nwant %q", buf.String(), want)
	}
	// SetLevel on the child silences the root too (shared level).
	child.SetLevel(LevelError)
	buf.Reset()
	root.Info("hidden")
	if buf.Len() != 0 {
		t.Fatalf("root logged despite shared level: %q", buf.String())
	}
}

func TestOddPairsAndNonStringKeys(t *testing.T) {
	var buf bytes.Buffer
	lg := New(&buf, WithClock(fixedClock()))
	lg.Info("m", "key")
	if !strings.Contains(buf.String(), `key=(missing)`) {
		t.Fatalf("dangling key not marked: %q", buf.String())
	}
	buf.Reset()
	lg.Info("m", 42, "v", "bad key", "x")
	line := buf.String()
	if !strings.Contains(line, "42=v") || !strings.Contains(line, "bad_key=x") {
		t.Fatalf("key coercion wrong: %q", line)
	}
}

func TestNilLoggerIsSafe(t *testing.T) {
	var lg *Logger
	lg.Debug("a")
	lg.Info("b", "k", "v")
	lg.Warn("c")
	lg.Error("d")
	lg.SetLevel(LevelDebug)
	if lg.Enabled(LevelError) {
		t.Fatal("nil logger claims enabled")
	}
	if lg.With("k", "v") != nil {
		t.Fatal("With on nil logger should stay nil")
	}
	if New(nil) != nil {
		t.Fatal("New(nil) should yield nil logger")
	}
}

func TestConcurrentLinesDoNotInterleave(t *testing.T) {
	var buf bytes.Buffer
	lg := New(&buf, WithClock(fixedClock()))
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				lg.Info("tick", "payload", strings.Repeat("x", 40))
			}
		}()
	}
	wg.Wait()
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 8*200 {
		t.Fatalf("got %d lines, want %d", len(lines), 8*200)
	}
	for _, line := range lines {
		if !strings.HasPrefix(line, "ts=") || !strings.HasSuffix(line, strings.Repeat("x", 40)) {
			t.Fatalf("interleaved line: %q", line)
		}
	}
}

func TestParseLevel(t *testing.T) {
	for in, want := range map[string]Level{
		"debug": LevelDebug, "INFO": LevelInfo, " warn ": LevelWarn,
		"warning": LevelWarn, "Error": LevelError,
	} {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Fatalf("ParseLevel(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Fatal("ParseLevel accepted junk")
	}
}
