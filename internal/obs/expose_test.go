package obs

import (
	"strings"
	"testing"
	"time"
)

// Golden test for label-value escaping in the text exposition format: only
// backslash, double-quote and newline may be escaped (as \\, \" and \n);
// every other byte — including tabs — must pass through verbatim. Go's %q
// would emit \t and \xNN sequences the format does not define.
func TestExpositionLabelEscaping(t *testing.T) {
	r := NewRegistry(NewVirtualClock(time.Unix(0, 0)))
	v := r.GaugeVec("escape_test", "escaping probe", "val")
	v.With(`quote"inside`).Set(1)
	v.With(`back\slash`).Set(2)
	v.With("new\nline").Set(3)
	v.With("tab\there").Set(4)

	var b strings.Builder
	if err := r.WriteMetrics(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	want := "# HELP escape_test escaping probe\n" +
		"# TYPE escape_test gauge\n" +
		"escape_test{val=\"back\\\\slash\"} 2\n" +
		"escape_test{val=\"new\\nline\"} 3\n" +
		"escape_test{val=\"quote\\\"inside\"} 1\n" +
		"escape_test{val=\"tab\there\"} 4\n"
	if got != want {
		t.Fatalf("exposition mismatch:\n got: %q\nwant: %q", got, want)
	}
}

// The flight recorder counts ring overwrites per kind and exposes them via
// Instrument as objectswap_flight_dropped_total{kind}.
func TestRecorderDropCounters(t *testing.T) {
	rec := NewRecorder(3, 2)
	for i := 0; i < 5; i++ {
		rec.RecordSpan(SpanRecord{Op: "s"})
	}
	for i := 0; i < 2; i++ {
		rec.RecordEvent(EventRecord{Topic: "e"})
	}
	spans, events := rec.Dropped()
	if spans != 2 || events != 0 {
		t.Fatalf("Dropped() = %d,%d, want 2,0 (5 spans into cap 3, 2 events into cap 2)", spans, events)
	}
	rec.RecordEvent(EventRecord{Topic: "e"})
	if _, events = rec.Dropped(); events != 1 {
		t.Fatalf("event drops = %d, want 1", events)
	}

	reg := NewRegistry(NewVirtualClock(time.Unix(0, 0)))
	rec.Instrument(reg)
	if v, ok := reg.Value("objectswap_flight_dropped_total", "span"); !ok || v != 2 {
		t.Fatalf("dropped{span} = %v,%v, want 2", v, ok)
	}
	if v, _ := reg.Value("objectswap_flight_dropped_total", "event"); v != 1 {
		t.Fatalf("dropped{event} = %v, want 1", v)
	}

	var nilRec *Recorder
	if s, e := nilRec.Dropped(); s != 0 || e != 0 {
		t.Fatal("nil recorder reports drops")
	}
	nilRec.Instrument(reg) // must not panic
}
