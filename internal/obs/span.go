package obs

import "time"

// Phase is one timed segment of a traced operation, with an optional byte
// count attributed to it (encode output, shipment payload, fetch size).
type Phase struct {
	Name     string
	Duration time.Duration
	Bytes    int64
}

// Tracer mints per-operation spans and folds their phase timings into the
// registry: one histogram of whole-operation durations per op, one histogram
// of per-phase durations per (op, phase), and byte counters per (op, phase).
// With a Recorder attached (SetRecorder), every finished span — successful or
// failed — is additionally retained in the flight recorder with its labels.
// A nil Tracer is valid and records nothing.
type Tracer struct {
	clock        Clock
	spans        *CounterVec
	seconds      *HistogramVec
	phaseSeconds *HistogramVec
	phaseBytes   *CounterVec
	recorder     *Recorder
}

// SetRecorder retains finished spans in rec (nil detaches).
func (t *Tracer) SetRecorder(rec *Recorder) {
	if t != nil {
		t.recorder = rec
	}
}

// NewTracer registers the span instruments under the given metric prefix
// (e.g. "objectswap_swap" yields objectswap_swap_spans_total,
// objectswap_swap_seconds, objectswap_swap_phase_seconds,
// objectswap_swap_phase_bytes_total).
func NewTracer(r *Registry, prefix string) *Tracer {
	return &Tracer{
		clock: r.Clock(),
		spans: r.CounterVec(prefix+"_spans_total",
			"Completed operation spans by operation.", "op"),
		seconds: r.HistogramVec(prefix+"_seconds",
			"Whole-operation duration by operation.", nil, "op"),
		phaseSeconds: r.HistogramVec(prefix+"_phase_seconds",
			"Per-phase duration by operation and phase.", nil, "op", "phase"),
		phaseBytes: r.CounterVec(prefix+"_phase_bytes_total",
			"Bytes handled per operation phase.", "op", "phase"),
	}
}

// Span is one in-flight traced operation. Phases are sequential: starting a
// phase closes the previous one. A nil Span is valid and records nothing.
type Span struct {
	t          *Tracer
	op         string
	start      time.Time
	phaseStart time.Time
	open       bool
	phases     []Phase

	// Correlation labels retained by the flight recorder.
	trace    string
	device   string
	cluster  uint32
	key      string
	replicas []string
	format   string
}

// SetTrace labels the span with a cross-device trace ID.
func (s *Span) SetTrace(id string) {
	if s != nil {
		s.trace = id
	}
}

// Trace returns the span's trace ID ("" on a nil span).
func (s *Span) Trace() string {
	if s == nil {
		return ""
	}
	return s.trace
}

// SetDevice labels the span with the nearby device it talked to.
func (s *Span) SetDevice(name string) {
	if s != nil {
		s.device = name
	}
}

// SetCluster labels the span with the swap-cluster it moved.
func (s *Span) SetCluster(c uint32) {
	if s != nil {
		s.cluster = c
	}
}

// SetKey labels the span with the storage key it shipped or fetched.
func (s *Span) SetKey(k string) {
	if s != nil {
		s.key = k
	}
}

// SetFormat labels the span with the negotiated wire format the payload
// moved in.
func (s *Span) SetFormat(format string) {
	if s != nil {
		s.format = format
	}
}

// SetReplicas labels the span with the replica set holding the shipment
// (primary first).
func (s *Span) SetReplicas(devices []string) {
	if s != nil {
		s.replicas = append([]string(nil), devices...)
	}
}

// Start opens a span for the named operation.
func (t *Tracer) Start(op string) *Span {
	if t == nil {
		return nil
	}
	now := t.clock.Now()
	return &Span{t: t, op: op, start: now, phaseStart: now}
}

// Phase closes the current phase (if any) and opens the named one.
func (s *Span) Phase(name string) {
	if s == nil {
		return
	}
	now := s.t.clock.Now()
	s.closePhase(now)
	s.phases = append(s.phases, Phase{Name: name})
	s.phaseStart = now
	s.open = true
}

// AddBytes attributes n bytes to the current phase.
func (s *Span) AddBytes(n int64) {
	if s == nil || !s.open || n <= 0 {
		return
	}
	s.phases[len(s.phases)-1].Bytes += n
}

func (s *Span) closePhase(now time.Time) {
	if !s.open {
		return
	}
	s.phases[len(s.phases)-1].Duration = now.Sub(s.phaseStart)
	s.open = false
}

// End closes the span, records every phase into the tracer's instruments,
// retains it in the flight recorder (outcome "ok"), and returns the phase
// breakdown plus the whole-operation duration (for attachment to an event
// payload).
func (s *Span) End() ([]Phase, time.Duration) {
	if s == nil {
		return nil, 0
	}
	now := s.t.clock.Now()
	s.closePhase(now)
	total := now.Sub(s.start)
	s.t.spans.With(s.op).Inc()
	s.t.seconds.With(s.op).Observe(total.Seconds())
	for _, p := range s.phases {
		s.t.phaseSeconds.With(s.op, p.Name).Observe(p.Duration.Seconds())
		if p.Bytes > 0 {
			s.t.phaseBytes.With(s.op, p.Name).Add(float64(p.Bytes))
		}
	}
	s.record("ok", "", total)
	return s.phases, total
}

// Fail closes the span with outcome "error" and retains it in the flight
// recorder. Failed spans do not feed the duration histograms — error counting
// lives in dedicated counters — but their partial phase breakdown is exactly
// what a post-incident look-back needs ("it died mid-ship after 9.8s").
func (s *Span) Fail(err error) {
	if s == nil {
		return
	}
	now := s.t.clock.Now()
	s.closePhase(now)
	detail := ""
	if err != nil {
		detail = err.Error()
	}
	s.record("error", detail, now.Sub(s.start))
}

// record retains the finished span in the tracer's flight recorder, if any.
func (s *Span) record(outcome, errDetail string, total time.Duration) {
	rec := s.t.recorder
	if rec == nil {
		return
	}
	sr := SpanRecord{
		Op:         s.op,
		Trace:      s.trace,
		Device:     s.device,
		Cluster:    s.cluster,
		Key:        s.key,
		Replicas:   append([]string(nil), s.replicas...),
		Format:     s.format,
		Outcome:    outcome,
		Error:      errDetail,
		Start:      s.start,
		DurationNS: total.Nanoseconds(),
	}
	if len(s.phases) > 0 {
		sr.Phases = make([]PhaseRecord, len(s.phases))
		for i, p := range s.phases {
			sr.Phases[i] = PhaseRecord{Name: p.Name, DurationNS: p.Duration.Nanoseconds(), Bytes: p.Bytes}
		}
	}
	rec.RecordSpan(sr)
}
