package wire

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"

	"objectswap/internal/heap"
	"objectswap/internal/xmlcodec"
)

// ClassCodec is a per-class specialization of the OBW binary frame's field
// section. A registered class (normally one with generated ClassOps) can
// supply a codec that measures, encodes and decodes its OWN field list with
// static, unrolled code instead of the generic per-value switch.
//
// Byte-identity is a hard contract: a class codec MUST produce exactly the
// bytes the generic path would produce for the same object, because wire
// formats are negotiated per shipment and a donor (or a repair peer) may
// decode a frame with or without the codec available. The Stats/Enc/Dec
// surfaces below make that contract structural — every helper emits or
// consumes precisely one generic-path encoding step, and the Value/Fields
// fallbacks ARE the generic path — so a codec composed from them cannot
// diverge. FuzzCrossClassCodec enforces it anyway.
//
// The codec covers only the field section of one object record. The object
// header (id, class name, field count) stays generic: the decoder must read
// the class name before it can pick a codec.
type ClassCodec interface {
	// ClassName names the class this codec specializes.
	ClassName() string
	// Measure accounts o's fields (names and values) into st.
	Measure(o *xmlcodec.Object, st Stats) error
	// Encode appends o's fields (names and values) through e.
	Encode(e Enc, o *xmlcodec.Object) error
	// Decode fills o.Fields (already sliced to the frame's field count) with
	// names and values read through d.
	Decode(d Dec, o *xmlcodec.Object) error
}

// ClassCodecProvider is implemented by heap.ClassOps whose generator also
// emitted a wire codec. Runtime registration probes for it and binds the
// codec into the runtime's ClassCodecs set.
type ClassCodecProvider interface {
	WireCodec() ClassCodec
}

// ClassCodecs is one runtime's set of bound class codecs, passed to the
// binary-family codecs through EncodeOpts/DecodeOpts. It is deliberately NOT
// a process-global registry: distinct runtimes (and tests) register distinct
// classes under identical names, and a codec for someone else's layout would
// corrupt frames. A nil *ClassCodecs is valid and empty.
type ClassCodecs struct {
	mu      sync.RWMutex
	byClass map[string]ClassCodec
}

// NewClassCodecs returns an empty codec set.
func NewClassCodecs() *ClassCodecs {
	return &ClassCodecs{byClass: make(map[string]ClassCodec)}
}

// Bind adds (or replaces) the codec for its class.
func (s *ClassCodecs) Bind(c ClassCodec) {
	if c == nil {
		panic("wire: Bind(nil ClassCodec)")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.byClass == nil {
		s.byClass = make(map[string]ClassCodec)
	}
	s.byClass[c.ClassName()] = c
}

// Lookup returns the codec bound for a class name, if any. Safe on nil.
func (s *ClassCodecs) Lookup(class string) (ClassCodec, bool) {
	if s == nil {
		return nil, false
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	c, ok := s.byClass[class]
	return c, ok
}

// Len reports the number of bound codecs. Safe on nil.
func (s *ClassCodecs) Len() int {
	if s == nil {
		return 0
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.byClass)
}

// Stats is the measuring surface handed to ClassCodec.Measure. Each helper
// accounts exactly what the matching Enc helper will emit.
type Stats struct{ st *docStats }

// Field accounts one field name.
func (s Stats) Field(name string) {
	s.st.treeBytes += uvarintLen(uint64(len(name)))
	s.st.strBytes += len(name)
}

// Nil accounts a nil value.
func (s Stats) Nil() { s.st.treeBytes++ }

// Int accounts an int value.
func (s Stats) Int(i int64) { s.st.treeBytes += 1 + uvarintLen(zigzag(i)) }

// Float accounts a float value.
func (s Stats) Float() { s.st.treeBytes += 9 }

// Bool accounts a bool value.
func (s Stats) Bool() { s.st.treeBytes += 2 }

// Str accounts a string value.
func (s Stats) Str(v string) {
	s.st.treeBytes += 1 + uvarintLen(uint64(len(v)))
	s.st.strBytes += len(v)
}

// Bytes accounts a bytes value of length n.
func (s Stats) Bytes(n int) {
	s.st.treeBytes += 1 + uvarintLen(uint64(n))
	s.st.blobBytes += n
}

// Value accounts any value through the generic path (refs, lists, and the
// fallback arm of typed stanzas).
func (s Stats) Value(v *xmlcodec.Value) error { return measureValue(v, s.st) }

// Fields accounts a whole field list through the generic path — the
// whole-object fallback for layout mismatches.
func (s Stats) Fields(fs []xmlcodec.Field) error {
	for j := range fs {
		s.Field(fs[j].Name)
		if err := measureValue(&fs[j].Value, s.st); err != nil {
			return err
		}
	}
	return nil
}

// Enc is the encoding surface handed to ClassCodec.Encode. Each helper emits
// exactly the generic path's bytes for that shape.
type Enc struct{ e *frameEncoder }

// Field emits one field name.
func (x Enc) Field(name string) { x.e.str(name) }

// Nil emits a nil value.
func (x Enc) Nil() { x.e.out = append(x.e.out, bNil) }

// Int emits an int value.
func (x Enc) Int(i int64) {
	x.e.out = append(x.e.out, bInt)
	x.e.uvarint(zigzag(i))
}

// Float emits a float value.
func (x Enc) Float(f float64) {
	x.e.out = append(x.e.out, bFloat)
	x.e.out = binary.LittleEndian.AppendUint64(x.e.out, math.Float64bits(f))
}

// Bool emits a bool value.
func (x Enc) Bool(b bool) {
	v := byte(0)
	if b {
		v = 1
	}
	x.e.out = append(x.e.out, bBool, v)
}

// Str emits a string value.
func (x Enc) Str(s string) {
	x.e.out = append(x.e.out, bString)
	x.e.str(s)
}

// Bytes emits a bytes value.
func (x Enc) Bytes(b []byte) {
	x.e.out = append(x.e.out, bBytes)
	x.e.uvarint(uint64(len(b)))
	x.e.blob = append(x.e.blob, b...)
}

// Value emits any value through the generic path.
func (x Enc) Value(v *xmlcodec.Value) error { return x.e.value(v) }

// Fields emits a whole field list through the generic path.
func (x Enc) Fields(fs []xmlcodec.Field) error {
	for j := range fs {
		x.e.str(fs[j].Name)
		if err := x.e.value(&fs[j].Value); err != nil {
			return err
		}
	}
	return nil
}

// Dec is the decoding surface handed to ClassCodec.Decode. Typed readers
// consume the value's kind tag and decode in place when the frame matches the
// expected kind, falling back to the generic body reader otherwise — a frame
// whose field kinds drifted from the generated layout still decodes exactly
// as the generic path would.
type Dec struct{ d *frameDecoder }

// Name reads one field name.
func (x Dec) Name() (string, error) { return x.d.str() }

// Value reads any value through the generic path.
func (x Dec) Value(v *xmlcodec.Value) error { return x.d.value(v) }

// Fields reads a whole field list through the generic path.
func (x Dec) Fields(fs []xmlcodec.Field) error {
	for j := range fs {
		f := &fs[j]
		var err error
		if f.Name, err = x.d.str(); err != nil {
			return err
		}
		if err := x.d.value(&f.Value); err != nil {
			return err
		}
	}
	return nil
}

func (x Dec) tag() (byte, error) {
	if len(x.d.tree) == 0 {
		return 0, fmt.Errorf("%w: truncated value", ErrBadFrame)
	}
	t := x.d.tree[0]
	x.d.tree = x.d.tree[1:]
	return t, nil
}

// Int reads a value expected to be an int.
func (x Dec) Int(v *xmlcodec.Value) error {
	t, err := x.tag()
	if err != nil {
		return err
	}
	if t == bInt {
		u, err := x.d.uvarint()
		if err != nil {
			return err
		}
		v.Kind, v.I = heap.KindInt, unzigzag(u)
		return nil
	}
	return x.d.valueBody(t, v)
}

// Float reads a value expected to be a float.
func (x Dec) Float(v *xmlcodec.Value) error {
	t, err := x.tag()
	if err != nil {
		return err
	}
	if t == bFloat {
		if len(x.d.tree) < 8 {
			return fmt.Errorf("%w: truncated float", ErrBadFrame)
		}
		v.Kind = heap.KindFloat
		v.F = math.Float64frombits(binary.LittleEndian.Uint64(x.d.tree))
		x.d.tree = x.d.tree[8:]
		return nil
	}
	return x.d.valueBody(t, v)
}

// Bool reads a value expected to be a bool.
func (x Dec) Bool(v *xmlcodec.Value) error {
	t, err := x.tag()
	if err != nil {
		return err
	}
	if t == bBool {
		if len(x.d.tree) < 1 {
			return fmt.Errorf("%w: truncated bool", ErrBadFrame)
		}
		v.Kind, v.B = heap.KindBool, x.d.tree[0] != 0
		x.d.tree = x.d.tree[1:]
		return nil
	}
	return x.d.valueBody(t, v)
}

// Str reads a value expected to be a string.
func (x Dec) Str(v *xmlcodec.Value) error {
	t, err := x.tag()
	if err != nil {
		return err
	}
	if t == bString {
		s, err := x.d.str()
		if err != nil {
			return err
		}
		v.Kind, v.S = heap.KindString, s
		return nil
	}
	return x.d.valueBody(t, v)
}

// Bytes reads a value expected to be bytes.
func (x Dec) Bytes(v *xmlcodec.Value) error {
	t, err := x.tag()
	if err != nil {
		return err
	}
	if t == bBytes {
		b, err := x.d.bytes()
		if err != nil {
			return err
		}
		v.Kind, v.Data = heap.KindBytes, b
		return nil
	}
	return x.d.valueBody(t, v)
}
