package wire

import (
	"encoding/json"
	"os"
	"testing"

	"objectswap/internal/heap"
	"objectswap/internal/xmlcodec"
)

// Benchmarks on the same 64-object shipment document the xmlcodec
// benchmarks use, so the numbers in BENCH_wire.json are directly comparable
// with BENCH_codec.json. The motivating asymmetry there: XML decode costs
// ~17.5x XML encode (1393534 vs 79431 ns/op). The binary framing exists to
// close that gap to ~2x.

const benchObjects = 64

func benchEncoded(b *testing.B, id FormatID) []byte {
	b.Helper()
	data, err := Encode(id, testDoc(benchObjects), nil)
	if err != nil {
		b.Fatalf("%s: encode: %v", id, err)
	}
	return data
}

func BenchmarkBinaryEncode(b *testing.B) {
	doc := testDoc(benchObjects)
	c, _ := Lookup(FormatBinary)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Encode(doc, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBinaryDecode(b *testing.B) {
	data := benchEncoded(b, FormatBinary)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(data, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFlateEncode(b *testing.B) {
	doc := testDoc(benchObjects)
	c, _ := Lookup(FormatFlate)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Encode(doc, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFlateDecode(b *testing.B) {
	data := benchEncoded(b, FormatFlate)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(data, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// codecBaseline mirrors the slice of BENCH_codec.json the smoke test needs.
type codecBaseline struct {
	Benchmarks []struct {
		Name    string `json:"name"`
		NsPerOp int64  `json:"ns_per_op"`
	} `json:"benchmarks"`
}

// baselineRatio reads the recorded XML decode/encode ns ratio (~17.54) from
// BENCH_codec.json at the repository root. Zero when the file or entries are
// missing, letting the caller fall back to the recorded constant.
func baselineRatio(t testing.TB) float64 {
	t.Helper()
	raw, err := os.ReadFile("../../BENCH_codec.json")
	if err != nil {
		return 0
	}
	var base codecBaseline
	if err := json.Unmarshal(raw, &base); err != nil {
		return 0
	}
	var enc, dec int64
	for _, bm := range base.Benchmarks {
		switch bm.Name {
		case "BenchmarkEncodeStream":
			enc = bm.NsPerOp
		case "BenchmarkDecodeStream":
			dec = bm.NsPerOp
		}
	}
	if enc <= 0 || dec <= 0 {
		return 0
	}
	return float64(dec) / float64(enc)
}

// TestCodecBenchSmoke is the check.sh codec-bench gate: the binary framing
// codec's decode/encode ns ratio must stay well under the recorded XML
// ratio of ~17.54 — if binary decode ever drifts past the XML asymmetry the
// redesign was built to fix, the build fails. The 2x acceptance target is
// asserted with slack for noisy CI machines (the gate trips at half the XML
// baseline, an 8x regression headroom over the observed ~1-2x).
func TestCodecBenchSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark smoke skipped in -short mode")
	}
	xmlRatio := baselineRatio(t)
	if xmlRatio == 0 {
		xmlRatio = 17.54 // recorded in BENCH_codec.json at redesign time
	}
	enc := testing.Benchmark(BenchmarkBinaryEncode)
	dec := testing.Benchmark(BenchmarkBinaryDecode)
	if enc.N == 0 || dec.N == 0 || enc.NsPerOp() <= 0 {
		t.Fatalf("benchmarks did not run: enc=%v dec=%v", enc, dec)
	}
	ratio := float64(dec.NsPerOp()) / float64(enc.NsPerOp())
	t.Logf("binary encode %d ns/op (%d allocs), decode %d ns/op (%d allocs), ratio %.2f (xml baseline %.2f)",
		enc.NsPerOp(), enc.AllocsPerOp(), dec.NsPerOp(), dec.AllocsPerOp(), ratio, xmlRatio)
	if ratio >= xmlRatio/2 {
		t.Fatalf("binary decode/encode ratio %.2f regressed toward the XML baseline %.2f", ratio, xmlRatio)
	}
	// The allocation budget from the redesign: ~1% of the 11892-alloc XML
	// decode (asserted at 2x slack for toolchain drift).
	if a := dec.AllocsPerOp(); a > 236 {
		t.Fatalf("binary decode allocates %d/op, budget 236 (~2%% of the 11892 XML baseline)", a)
	}
}

// BenchmarkDeltaEncode measures re-shipping a 1%-dirty document: one changed
// object against a 64-object base (the acceptance scenario: delta bytes must
// be under 10% of the full shipment).
func BenchmarkDeltaEncode(b *testing.B) {
	dirty := testDoc(benchObjects)
	dirty.Objects = dirty.Objects[:1]
	dirty.Objects[0].Fields[1].Value = xmlcodec.Value{Kind: heap.KindInt, I: 4242}
	c, _ := Lookup(FormatDelta)
	opts := &EncodeOpts{BaseKey: "bench-base-key"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Encode(dirty, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// TestDeltaBytesFraction pins the acceptance number at the codec layer: a
// delta carrying 1/64 of the objects must be under 10% of the full binary
// shipment's size.
func TestDeltaBytesFraction(t *testing.T) {
	full, err := Encode(FormatBinary, testDoc(benchObjects), nil)
	if err != nil {
		t.Fatal(err)
	}
	dirty := testDoc(benchObjects)
	dirty.Objects = dirty.Objects[:1]
	delta, err := Encode(FormatDelta, dirty, &EncodeOpts{BaseKey: "bench-base-key"})
	if err != nil {
		t.Fatal(err)
	}
	if len(delta)*10 >= len(full) {
		t.Fatalf("delta = %d bytes, full = %d — want < 10%%", len(delta), len(full))
	}
	t.Logf("full binary %d bytes, 1/64-dirty delta %d bytes (%.1f%%)",
		len(full), len(delta), 100*float64(len(delta))/float64(len(full)))
}
