package wire

import (
	"fmt"

	"objectswap/internal/heap"
	"objectswap/internal/xmlcodec"
)

// deltaCodec re-ships a re-swapped cluster as the set of objects dirtied
// since its base shipment plus the IDs removed from the cluster, naming the
// base key the donor is expected to still hold. A delta is NOT
// self-contained: decoding fetches the base payload (normally from the same
// donor the delta came from), decodes it recursively, and applies the
// changes. The runtime only ships a delta to donors known to hold the base
// and falls back to a full shipment otherwise — the fallback matrix is
// specified in PROTOCOL.md.
type deltaCodec struct{}

func init() { Register(deltaCodec{}) }

func (deltaCodec) ID() FormatID { return FormatDelta }
func (deltaCodec) Caps() Caps   { return CapDelta }

func (deltaCodec) Encode(doc *xmlcodec.Doc, opts *EncodeOpts) ([]byte, error) {
	if opts == nil || opts.BaseKey == "" {
		return nil, fmt.Errorf("%w: delta encode without a base key", ErrNeedBase)
	}
	if opts.BaseKey == doc.ClusterID {
		return nil, fmt.Errorf("%w: delta base key equals shipment key %q", ErrBadFrame, doc.ClusterID)
	}
	return encodeFrame(doc, opts, flagDelta)
}

func (deltaCodec) Decode(data []byte, opts *DecodeOpts) (*xmlcodec.Doc, error) {
	body, flags, err := openFrame(data)
	if err != nil {
		return nil, err
	}
	if flags != flagDelta {
		return nil, fmt.Errorf("%w: flags 0x%02x on delta payload", ErrBadFrame, flags)
	}
	changes, baseKey, removed, err := decodeBody(body, true, opts.classCodecs())
	if err != nil {
		return nil, err
	}
	if baseKey == "" || baseKey == changes.ClusterID {
		return nil, fmt.Errorf("%w: delta names base %q", ErrBadFrame, baseKey)
	}
	if opts == nil || opts.FetchBase == nil {
		return nil, fmt.Errorf("%w: no base fetcher for %q", ErrNeedBase, baseKey)
	}
	if opts.depth >= maxDeltaDepth {
		return nil, fmt.Errorf("%w: base chain deeper than %d", ErrBadFrame, maxDeltaDepth)
	}
	baseData, err := opts.FetchBase(baseKey)
	if err != nil {
		return nil, fmt.Errorf("%w: fetch %q: %v", ErrNeedBase, baseKey, err)
	}
	baseOpts := &DecodeOpts{FetchBase: opts.FetchBase, Codecs: opts.Codecs, depth: opts.depth + 1}
	base, err := Decode(baseData, baseOpts)
	if err != nil {
		return nil, fmt.Errorf("%w: decode base %q: %v", ErrNeedBase, baseKey, err)
	}
	return applyDelta(base, changes, removed), nil
}

// applyDelta materializes base + changes: changed objects replace their base
// versions in place, removed IDs drop out, and new objects append in
// shipment order. The result carries the delta's cluster key and version.
func applyDelta(base, changes *xmlcodec.Doc, removed []heap.ObjID) *xmlcodec.Doc {
	drop := make(map[heap.ObjID]bool, len(removed))
	for _, id := range removed {
		drop[id] = true
	}
	changed := make(map[heap.ObjID]int, len(changes.Objects))
	for i := range changes.Objects {
		changed[changes.Objects[i].ID] = i
	}

	out := &xmlcodec.Doc{
		ClusterID: changes.ClusterID,
		Version:   changes.Version,
		Objects:   make([]xmlcodec.Object, 0, len(base.Objects)+len(changes.Objects)),
	}
	applied := make(map[heap.ObjID]bool, len(changes.Objects))
	for i := range base.Objects {
		o := &base.Objects[i]
		if drop[o.ID] {
			continue
		}
		if j, ok := changed[o.ID]; ok {
			out.Objects = append(out.Objects, changes.Objects[j])
			applied[o.ID] = true
			continue
		}
		out.Objects = append(out.Objects, *o)
	}
	for i := range changes.Objects {
		if !applied[changes.Objects[i].ID] {
			out.Objects = append(out.Objects, changes.Objects[i])
		}
	}
	return out
}
