package wire

import (
	"encoding/binary"
	"fmt"
	"math"

	"objectswap/internal/heap"
	"objectswap/internal/xmlcodec"
)

// Binary frame layout (all multi-byte integers are unsigned LEB128 varints
// unless noted; PROTOCOL.md §"Wire formats v2" is the normative spec):
//
//	magic   "OBW"                    3 bytes
//	version 0x01                     1 byte
//	flags                            1 byte  (bit0 deflate, bit1 delta)
//	bodyLen uvarint                  length of everything that follows
//	body:
//	  header: clusterIDLen docVersion nObjects nFields nListItems
//	          strBytes blobBytes
//	          [delta only: baseKeyLen nRemoved]
//	  tree:   [delta only: nRemoved object IDs]
//	          per object: id classLen fieldCount, then per field:
//	          nameLen value
//	  string arena  (clusterID, [baseKey], then tree strings in order)
//	  blob arena    (bytes payloads in tree order)
//
// Values are a kind byte followed by a kind-specific payload:
//
//	0 nil | 1 int (zigzag) | 2 float (8B LE IEEE754) | 3 bool (1B)
//	4 string (len→str arena) | 5 bytes (len→blob arena)
//	6 internal ref (target) | 7 slot ref (slot)
//	8 remote ref (target, classLen→str arena) | 9 list (count, items)
//
// Strings and blobs are split into trailing arenas so the decoder can
// materialize every string of a document from ONE string conversion and
// every byte payload from ONE copy — the decode side drops from ~12k allocs
// per shipment (reflection XML) to a handful, which is the point: swap-in is
// the latency-critical direction on a re-faulting constrained device.

const (
	magic0, magic1, magic2 = 'O', 'B', 'W'
	frameVersion           = 1

	flagFlate byte = 1 << 0
	flagDelta byte = 1 << 1

	// frameHeaderLen is magic+version+flags: the minimum prefix Detect needs.
	frameHeaderLen = 5
)

// value kind tags on the wire.
const (
	bNil byte = iota
	bInt
	bFloat
	bBool
	bString
	bBytes
	bRefInternal
	bRefSlot
	bRefRemote
	bList
)

// binaryCodec is the plain length-prefixed binary framing.
type binaryCodec struct{}

func init() { Register(binaryCodec{}) }

func (binaryCodec) ID() FormatID { return FormatBinary }
func (binaryCodec) Caps() Caps   { return CapSelfContained }

func (binaryCodec) Encode(doc *xmlcodec.Doc, opts *EncodeOpts) ([]byte, error) {
	return encodeFrame(doc, opts, 0)
}

func (binaryCodec) Decode(data []byte, opts *DecodeOpts) (*xmlcodec.Doc, error) {
	body, flags, err := openFrame(data)
	if err != nil {
		return nil, err
	}
	if flags != 0 {
		return nil, fmt.Errorf("%w: flags 0x%02x on plain binary payload", ErrBadFrame, flags)
	}
	doc, _, _, err := decodeBody(body, false, opts.classCodecs())
	return doc, err
}

// docStats sizes a document for one-pass arena encoding.
type docStats struct {
	treeBytes int // object/field/value tree section
	fields    int
	listItems int
	strBytes  int
	blobBytes int
}

func uvarintLen(x uint64) int {
	n := 1
	for x >= 0x80 {
		x >>= 7
		n++
	}
	return n
}

func zigzag(i int64) uint64   { return uint64(i<<1) ^ uint64(i>>63) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

func measureValue(v *xmlcodec.Value, st *docStats) error {
	st.treeBytes++ // kind byte
	switch v.Kind {
	case heap.KindNil:
	case heap.KindInt:
		st.treeBytes += uvarintLen(zigzag(v.I))
	case heap.KindFloat:
		st.treeBytes += 8
	case heap.KindBool:
		st.treeBytes++
	case heap.KindString:
		st.treeBytes += uvarintLen(uint64(len(v.S)))
		st.strBytes += len(v.S)
	case heap.KindBytes:
		st.treeBytes += uvarintLen(uint64(len(v.Data)))
		st.blobBytes += len(v.Data)
	case heap.KindRef:
		switch v.RefClass {
		case xmlcodec.RefInternal:
			st.treeBytes += uvarintLen(uint64(v.Target))
		case xmlcodec.RefSlot:
			st.treeBytes += uvarintLen(uint64(v.Slot))
		case xmlcodec.RefRemote:
			st.treeBytes += uvarintLen(uint64(v.Target))
			st.treeBytes += uvarintLen(uint64(len(v.Class)))
			st.strBytes += len(v.Class)
		default:
			return fmt.Errorf("%w: ref class %d", ErrBadFrame, v.RefClass)
		}
	case heap.KindList:
		st.treeBytes += uvarintLen(uint64(len(v.List)))
		st.listItems += len(v.List)
		for i := range v.List {
			if err := measureValue(&v.List[i], st); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("wire: cannot encode kind %v", v.Kind)
	}
	return nil
}

func measureDoc(doc *xmlcodec.Doc, st *docStats, cc *ClassCodecs) error {
	st.strBytes += len(doc.ClusterID)
	for i := range doc.Objects {
		o := &doc.Objects[i]
		st.treeBytes += uvarintLen(uint64(o.ID)) +
			uvarintLen(uint64(len(o.Class))) +
			uvarintLen(uint64(len(o.Fields)))
		st.strBytes += len(o.Class)
		st.fields += len(o.Fields)
		if c, ok := cc.Lookup(o.Class); ok {
			if err := c.Measure(o, Stats{st}); err != nil {
				return err
			}
			continue
		}
		for j := range o.Fields {
			f := &o.Fields[j]
			st.treeBytes += uvarintLen(uint64(len(f.Name)))
			st.strBytes += len(f.Name)
			if err := measureValue(&f.Value, st); err != nil {
				return err
			}
		}
	}
	return nil
}

// frameEncoder appends the tree into out while routing strings and byte
// payloads to their arenas.
type frameEncoder struct {
	out  []byte
	strs []byte
	blob []byte
}

func (e *frameEncoder) uvarint(x uint64) { e.out = binary.AppendUvarint(e.out, x) }

func (e *frameEncoder) str(s string) {
	e.uvarint(uint64(len(s)))
	e.strs = append(e.strs, s...)
}

func (e *frameEncoder) value(v *xmlcodec.Value) error {
	switch v.Kind {
	case heap.KindNil:
		e.out = append(e.out, bNil)
	case heap.KindInt:
		e.out = append(e.out, bInt)
		e.uvarint(zigzag(v.I))
	case heap.KindFloat:
		e.out = append(e.out, bFloat)
		e.out = binary.LittleEndian.AppendUint64(e.out, math.Float64bits(v.F))
	case heap.KindBool:
		b := byte(0)
		if v.B {
			b = 1
		}
		e.out = append(e.out, bBool, b)
	case heap.KindString:
		e.out = append(e.out, bString)
		e.str(v.S)
	case heap.KindBytes:
		e.out = append(e.out, bBytes)
		e.uvarint(uint64(len(v.Data)))
		e.blob = append(e.blob, v.Data...)
	case heap.KindRef:
		switch v.RefClass {
		case xmlcodec.RefInternal:
			e.out = append(e.out, bRefInternal)
			e.uvarint(uint64(v.Target))
		case xmlcodec.RefSlot:
			e.out = append(e.out, bRefSlot)
			e.uvarint(uint64(v.Slot))
		case xmlcodec.RefRemote:
			e.out = append(e.out, bRefRemote)
			e.uvarint(uint64(v.Target))
			e.str(v.Class)
		default:
			return fmt.Errorf("%w: ref class %d", ErrBadFrame, v.RefClass)
		}
	case heap.KindList:
		e.out = append(e.out, bList)
		e.uvarint(uint64(len(v.List)))
		for i := range v.List {
			if err := e.value(&v.List[i]); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("wire: cannot encode kind %v", v.Kind)
	}
	return nil
}

// encodeBody renders the frame body (header + tree + arenas) for doc. When
// isDelta is set the delta header extension (base key, removed IDs) is taken
// from opts; otherwise opts contributes only its class codec set.
func encodeBody(doc *xmlcodec.Doc, opts *EncodeOpts, isDelta bool) ([]byte, error) {
	cc := opts.classCodecs()
	var st docStats
	if err := measureDoc(doc, &st, cc); err != nil {
		return nil, err
	}
	if isDelta {
		st.strBytes += len(opts.BaseKey)
		for _, id := range opts.Removed {
			st.treeBytes += uvarintLen(uint64(id))
		}
	}

	header := uvarintLen(uint64(len(doc.ClusterID))) +
		uvarintLen(uint64(doc.Version)) +
		uvarintLen(uint64(len(doc.Objects))) +
		uvarintLen(uint64(st.fields)) +
		uvarintLen(uint64(st.listItems)) +
		uvarintLen(uint64(st.strBytes)) +
		uvarintLen(uint64(st.blobBytes))
	if isDelta {
		header += uvarintLen(uint64(len(opts.BaseKey))) +
			uvarintLen(uint64(len(opts.Removed)))
	}

	e := frameEncoder{
		out:  make([]byte, 0, header+st.treeBytes+st.strBytes+st.blobBytes),
		strs: make([]byte, 0, st.strBytes),
		blob: make([]byte, 0, st.blobBytes),
	}
	// Header.
	e.str(doc.ClusterID)
	e.uvarint(uint64(doc.Version))
	e.uvarint(uint64(len(doc.Objects)))
	e.uvarint(uint64(st.fields))
	e.uvarint(uint64(st.listItems))
	e.uvarint(uint64(st.strBytes))
	e.uvarint(uint64(st.blobBytes))
	if isDelta {
		e.str(opts.BaseKey)
		e.uvarint(uint64(len(opts.Removed)))
		for _, id := range opts.Removed {
			e.uvarint(uint64(id))
		}
	}
	// Tree.
	for i := range doc.Objects {
		o := &doc.Objects[i]
		e.uvarint(uint64(o.ID))
		e.str(o.Class)
		e.uvarint(uint64(len(o.Fields)))
		if c, ok := cc.Lookup(o.Class); ok {
			if err := c.Encode(Enc{&e}, o); err != nil {
				return nil, err
			}
			continue
		}
		for j := range o.Fields {
			f := &o.Fields[j]
			e.str(f.Name)
			if err := e.value(&f.Value); err != nil {
				return nil, err
			}
		}
	}
	// Arenas.
	e.out = append(e.out, e.strs...)
	e.out = append(e.out, e.blob...)
	return e.out, nil
}

// encodeFrame wraps a body in the OBW frame. opts may be nil.
func encodeFrame(doc *xmlcodec.Doc, opts *EncodeOpts, flags byte) ([]byte, error) {
	body, err := encodeBody(doc, opts, flags&flagDelta != 0)
	if err != nil {
		return nil, err
	}
	out := make([]byte, 0, frameHeaderLen+uvarintLen(uint64(len(body)))+len(body))
	out = append(out, magic0, magic1, magic2, frameVersion, flags)
	out = binary.AppendUvarint(out, uint64(len(body)))
	return append(out, body...), nil
}

// openFrame validates magic, version and the body length prefix, returning
// the body and the flag byte.
func openFrame(data []byte) ([]byte, byte, error) {
	if len(data) < frameHeaderLen {
		return nil, 0, fmt.Errorf("%w: short frame (%d bytes)", ErrBadFrame, len(data))
	}
	if data[0] != magic0 || data[1] != magic1 || data[2] != magic2 {
		return nil, 0, fmt.Errorf("%w: bad magic", ErrBadFrame)
	}
	if data[3] != frameVersion {
		return nil, 0, fmt.Errorf("%w: frame version %d", ErrBadFrame, data[3])
	}
	flags := data[4]
	rest := data[frameHeaderLen:]
	bodyLen, n := binary.Uvarint(rest)
	if n <= 0 {
		return nil, 0, fmt.Errorf("%w: bad body length", ErrBadFrame)
	}
	rest = rest[n:]
	if uint64(len(rest)) != bodyLen {
		return nil, 0, fmt.Errorf("%w: body length %d, have %d bytes", ErrBadFrame, bodyLen, len(rest))
	}
	return rest, flags, nil
}

// frameDecoder walks the tree while consuming the arenas sequentially.
type frameDecoder struct {
	tree []byte // header+tree remainder
	strs string // string arena (one conversion for the whole document)
	blob []byte // blob arena (one copy for the whole document)

	values []xmlcodec.Value // arena for list items
}

func (d *frameDecoder) uvarint() (uint64, error) {
	x, n := binary.Uvarint(d.tree)
	if n <= 0 {
		return 0, fmt.Errorf("%w: truncated varint", ErrBadFrame)
	}
	d.tree = d.tree[n:]
	return x, nil
}

func (d *frameDecoder) str() (string, error) {
	n, err := d.uvarint()
	if err != nil {
		return "", err
	}
	if n > uint64(len(d.strs)) {
		return "", fmt.Errorf("%w: string arena exhausted", ErrBadFrame)
	}
	s := d.strs[:n]
	d.strs = d.strs[n:]
	return s, nil
}

func (d *frameDecoder) bytes() ([]byte, error) {
	n, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(d.blob)) {
		return nil, fmt.Errorf("%w: blob arena exhausted", ErrBadFrame)
	}
	b := d.blob[:n:n]
	d.blob = d.blob[n:]
	return b, nil
}

func (d *frameDecoder) value(v *xmlcodec.Value) error {
	if len(d.tree) == 0 {
		return fmt.Errorf("%w: truncated value", ErrBadFrame)
	}
	kind := d.tree[0]
	d.tree = d.tree[1:]
	return d.valueBody(kind, v)
}

// valueBody decodes the payload of a value whose kind tag has already been
// consumed — the shared tail of the generic reader and the typed Dec readers,
// which peel the tag themselves to fast-path their expected kind.
func (d *frameDecoder) valueBody(kind byte, v *xmlcodec.Value) error {
	switch kind {
	case bNil:
		v.Kind = heap.KindNil
	case bInt:
		u, err := d.uvarint()
		if err != nil {
			return err
		}
		v.Kind, v.I = heap.KindInt, unzigzag(u)
	case bFloat:
		if len(d.tree) < 8 {
			return fmt.Errorf("%w: truncated float", ErrBadFrame)
		}
		v.Kind = heap.KindFloat
		v.F = math.Float64frombits(binary.LittleEndian.Uint64(d.tree))
		d.tree = d.tree[8:]
	case bBool:
		if len(d.tree) < 1 {
			return fmt.Errorf("%w: truncated bool", ErrBadFrame)
		}
		v.Kind, v.B = heap.KindBool, d.tree[0] != 0
		d.tree = d.tree[1:]
	case bString:
		s, err := d.str()
		if err != nil {
			return err
		}
		v.Kind, v.S = heap.KindString, s
	case bBytes:
		b, err := d.bytes()
		if err != nil {
			return err
		}
		v.Kind, v.Data = heap.KindBytes, b
	case bRefInternal:
		t, err := d.uvarint()
		if err != nil {
			return err
		}
		v.Kind, v.RefClass, v.Target = heap.KindRef, xmlcodec.RefInternal, heap.ObjID(t)
	case bRefSlot:
		s, err := d.uvarint()
		if err != nil {
			return err
		}
		v.Kind, v.RefClass, v.Slot = heap.KindRef, xmlcodec.RefSlot, int(s)
	case bRefRemote:
		t, err := d.uvarint()
		if err != nil {
			return err
		}
		cls, err := d.str()
		if err != nil {
			return err
		}
		v.Kind, v.RefClass, v.Target, v.Class = heap.KindRef, xmlcodec.RefRemote, heap.ObjID(t), cls
	case bList:
		n, err := d.uvarint()
		if err != nil {
			return err
		}
		if n > uint64(len(d.values)) {
			return fmt.Errorf("%w: list arena exhausted", ErrBadFrame)
		}
		v.Kind = heap.KindList
		v.List = d.values[:n:n]
		d.values = d.values[n:]
		for i := range v.List {
			if err := d.value(&v.List[i]); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("%w: value kind 0x%02x", ErrBadFrame, kind)
	}
	return nil
}

// decodeBody parses a frame body. When delta is true the delta header
// extension is expected and the base key + removed IDs are returned.
//
// A non-nil cc opts the caller into the borrowed-blob contract: byte payloads
// alias the input buffer instead of a defensive copy (one allocation fewer
// per decode). That is the swap-in path's shape — the runtime installs the
// document immediately and heap.Bytes copies during installation — so the
// alias never outlives the caller's buffer. Callers that hand decoded
// documents to unknown consumers pass nil codecs and keep the copy.
func decodeBody(body []byte, delta bool, cc *ClassCodecs) (*xmlcodec.Doc, string, []heap.ObjID, error) {
	d := frameDecoder{tree: body}
	clusterIDLen, err := d.uvarint()
	if err != nil {
		return nil, "", nil, err
	}
	docVersion, err := d.uvarint()
	if err != nil {
		return nil, "", nil, err
	}
	nObjects, err := d.uvarint()
	if err != nil {
		return nil, "", nil, err
	}
	nFields, err := d.uvarint()
	if err != nil {
		return nil, "", nil, err
	}
	nListItems, err := d.uvarint()
	if err != nil {
		return nil, "", nil, err
	}
	strBytes, err := d.uvarint()
	if err != nil {
		return nil, "", nil, err
	}
	blobBytes, err := d.uvarint()
	if err != nil {
		return nil, "", nil, err
	}
	var baseKeyLen, nRemoved uint64
	if delta {
		if baseKeyLen, err = d.uvarint(); err != nil {
			return nil, "", nil, err
		}
		if nRemoved, err = d.uvarint(); err != nil {
			return nil, "", nil, err
		}
	}

	// Sanity: every count costs at least one tree byte, and the arenas
	// cannot exceed what remains — reject counts a hostile payload inflates.
	// The arena lengths are compared individually before summing so a crafted
	// strBytes+blobBytes cannot wrap around uint64 past the check, and the two
	// string prefixes must fit the string arena together, not just separately.
	remaining := uint64(len(d.tree))
	if strBytes > remaining || blobBytes > remaining-strBytes ||
		nObjects > remaining || nFields > remaining ||
		nListItems > remaining || nRemoved > remaining ||
		clusterIDLen > strBytes || baseKeyLen > strBytes-clusterIDLen {
		return nil, "", nil, fmt.Errorf("%w: header counts exceed body", ErrBadFrame)
	}

	// Split off the arenas; the tree is what's left in the middle.
	arenaStart := remaining - strBytes - blobBytes
	arena := d.tree[arenaStart:]
	d.tree = d.tree[:arenaStart]
	d.strs = string(arena[:strBytes])
	if cc != nil {
		d.blob = arena[strBytes:] // borrowed-blob contract, see above
	} else {
		d.blob = append([]byte(nil), arena[strBytes:]...)
	}
	d.values = make([]xmlcodec.Value, nListItems)

	clusterID := d.strs[:clusterIDLen]
	d.strs = d.strs[clusterIDLen:]
	baseKey := d.strs[:baseKeyLen]
	d.strs = d.strs[baseKeyLen:]

	var removed []heap.ObjID
	if nRemoved > 0 {
		removed = make([]heap.ObjID, nRemoved)
		for i := range removed {
			id, err := d.uvarint()
			if err != nil {
				return nil, "", nil, err
			}
			removed[i] = heap.ObjID(id)
		}
	}

	doc := &xmlcodec.Doc{
		ClusterID: clusterID,
		Version:   int(docVersion),
		Objects:   make([]xmlcodec.Object, nObjects),
	}
	fields := make([]xmlcodec.Field, nFields)
	for i := range doc.Objects {
		o := &doc.Objects[i]
		id, err := d.uvarint()
		if err != nil {
			return nil, "", nil, err
		}
		o.ID = heap.ObjID(id)
		if o.Class, err = d.str(); err != nil {
			return nil, "", nil, err
		}
		nf, err := d.uvarint()
		if err != nil {
			return nil, "", nil, err
		}
		if nf > uint64(len(fields)) {
			return nil, "", nil, fmt.Errorf("%w: field arena exhausted", ErrBadFrame)
		}
		o.Fields = fields[:nf:nf]
		fields = fields[nf:]
		if c, ok := cc.Lookup(o.Class); ok {
			if err := c.Decode(Dec{&d}, o); err != nil {
				return nil, "", nil, err
			}
			continue
		}
		for j := range o.Fields {
			f := &o.Fields[j]
			if f.Name, err = d.str(); err != nil {
				return nil, "", nil, err
			}
			if err := d.value(&f.Value); err != nil {
				return nil, "", nil, err
			}
		}
	}
	if len(d.tree) != 0 {
		return nil, "", nil, fmt.Errorf("%w: %d trailing tree bytes", ErrBadFrame, len(d.tree))
	}
	return doc, baseKey, removed, nil
}
