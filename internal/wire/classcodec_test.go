package wire

import (
	"bytes"
	"fmt"
	"testing"

	"objectswap/internal/heap"
	"objectswap/internal/xmlcodec"
)

// recordCodec is a hand-written ClassCodec for the testDoc "Record" layout —
// the exact shape cmd/obicomp generates: per-slot typed stanzas with a
// generic fallback per value, and a whole-object generic fallback when the
// frame's field count disagrees with the compiled layout.
type recordCodec struct{}

func (recordCodec) ClassName() string { return "Record" }

func (recordCodec) Measure(o *xmlcodec.Object, st Stats) error {
	fs := o.Fields
	if len(fs) != 10 {
		return st.Fields(fs)
	}
	for j := range fs {
		st.Field(fs[j].Name)
		v := &fs[j].Value
		switch j {
		case 0: // title string
			if v.Kind == heap.KindString {
				st.Str(v.S)
				continue
			}
		case 1: // seq int
			if v.Kind == heap.KindInt {
				st.Int(v.I)
				continue
			}
		case 2: // weight float
			if v.Kind == heap.KindFloat {
				st.Float()
				continue
			}
		case 3: // dirty bool
			if v.Kind == heap.KindBool {
				st.Bool()
				continue
			}
		case 4: // blob bytes
			if v.Kind == heap.KindBytes {
				st.Bytes(len(v.Data))
				continue
			}
		}
		if err := st.Value(v); err != nil {
			return err
		}
	}
	return nil
}

func (recordCodec) Encode(e Enc, o *xmlcodec.Object) error {
	fs := o.Fields
	if len(fs) != 10 {
		return e.Fields(fs)
	}
	for j := range fs {
		e.Field(fs[j].Name)
		v := &fs[j].Value
		switch j {
		case 0:
			if v.Kind == heap.KindString {
				e.Str(v.S)
				continue
			}
		case 1:
			if v.Kind == heap.KindInt {
				e.Int(v.I)
				continue
			}
		case 2:
			if v.Kind == heap.KindFloat {
				e.Float(v.F)
				continue
			}
		case 3:
			if v.Kind == heap.KindBool {
				e.Bool(v.B)
				continue
			}
		case 4:
			if v.Kind == heap.KindBytes {
				e.Bytes(v.Data)
				continue
			}
		}
		if err := e.Value(v); err != nil {
			return err
		}
	}
	return nil
}

func (recordCodec) Decode(d Dec, o *xmlcodec.Object) error {
	fs := o.Fields
	if len(fs) != 10 {
		return d.Fields(fs)
	}
	var err error
	for j := range fs {
		if fs[j].Name, err = d.Name(); err != nil {
			return err
		}
		v := &fs[j].Value
		switch j {
		case 0:
			err = d.Str(v)
		case 1:
			err = d.Int(v)
		case 2:
			err = d.Float(v)
		case 3:
			err = d.Bool(v)
		case 4:
			err = d.Bytes(v)
		default:
			err = d.Value(v)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// delegatingCodec routes everything through the generic fallbacks — the
// degenerate (but valid) codec a generator could emit for any class.
type delegatingCodec struct{ name string }

func (c delegatingCodec) ClassName() string { return c.name }
func (c delegatingCodec) Measure(o *xmlcodec.Object, st Stats) error {
	return st.Fields(o.Fields)
}
func (c delegatingCodec) Encode(e Enc, o *xmlcodec.Object) error {
	return e.Fields(o.Fields)
}
func (c delegatingCodec) Decode(d Dec, o *xmlcodec.Object) error {
	return d.Fields(o.Fields)
}

func recordCodecs() *ClassCodecs {
	cc := NewClassCodecs()
	cc.Bind(recordCodec{})
	return cc
}

// TestClassCodecByteIdentical asserts the ClassCodec contract directly: the
// same document encodes to the same payload bytes with and without the class
// codec, for every binary-family format.
func TestClassCodecByteIdentical(t *testing.T) {
	doc := testDoc(8)
	cc := recordCodecs()
	for _, id := range []FormatID{FormatBinary, FormatFlate} {
		plain, err := Encode(id, doc, nil)
		if err != nil {
			t.Fatalf("%s: generic encode: %v", id, err)
		}
		fast, err := Encode(id, doc, &EncodeOpts{Codecs: cc})
		if err != nil {
			t.Fatalf("%s: codec encode: %v", id, err)
		}
		if !bytes.Equal(plain, fast) {
			t.Fatalf("%s: class codec changed payload bytes", id)
		}
	}
	delta := &xmlcodec.Doc{ClusterID: "gen2", Version: doc.Version, Objects: doc.Objects[:3]}
	plain, err := Encode(FormatDelta, delta, &EncodeOpts{BaseKey: "gen1", Removed: []heap.ObjID{7}})
	if err != nil {
		t.Fatal(err)
	}
	fast, err := Encode(FormatDelta, delta, &EncodeOpts{BaseKey: "gen1", Removed: []heap.ObjID{7}, Codecs: cc})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(plain, fast) {
		t.Fatal("delta: class codec changed payload bytes")
	}
}

// TestClassCodecDecode asserts a codec-assisted decode yields the same model
// as the generic decode, whichever side encoded the frame.
func TestClassCodecDecode(t *testing.T) {
	doc := testDoc(8)
	cc := recordCodecs()
	want := normalize(t, doc)
	for _, id := range []FormatID{FormatBinary, FormatFlate} {
		data, err := Encode(id, doc, &EncodeOpts{Codecs: cc})
		if err != nil {
			t.Fatal(err)
		}
		for _, opts := range []*DecodeOpts{nil, {Codecs: cc}} {
			back, err := Decode(data, opts)
			if err != nil {
				t.Fatalf("%s: decode: %v", id, err)
			}
			if !bytes.Equal(normalize(t, back), want) {
				t.Fatalf("%s: codec decode changed document", id)
			}
		}
	}
}

// TestClassCodecLayoutDrift feeds the codec objects whose field layout does
// NOT match its compiled expectation — wrong kinds, wrong count — and
// asserts the fallback arms keep the bytes identical to the generic path.
func TestClassCodecLayoutDrift(t *testing.T) {
	doc := &xmlcodec.Doc{ClusterID: "drift", Version: xmlcodec.Version}
	// Right count, wrong kinds in the typed slots.
	wrongKinds := xmlcodec.Object{ID: 1, Class: "Record"}
	for j := 0; j < 10; j++ {
		wrongKinds.Fields = append(wrongKinds.Fields, xmlcodec.Field{
			Name:  fmt.Sprintf("f%d", j),
			Value: xmlcodec.InternalRef(heap.ObjID(j + 1)),
		})
	}
	// Wrong count entirely.
	wrongCount := xmlcodec.Object{ID: 2, Class: "Record", Fields: []xmlcodec.Field{
		{Name: "only", Value: xmlcodec.Value{Kind: heap.KindString, S: "one"}},
	}}
	doc.Objects = append(doc.Objects, wrongKinds, wrongCount)

	cc := recordCodecs()
	plain, err := Encode(FormatBinary, doc, nil)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := Encode(FormatBinary, doc, &EncodeOpts{Codecs: cc})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(plain, fast) {
		t.Fatal("fallback arms changed payload bytes")
	}
	back, err := Decode(plain, &DecodeOpts{Codecs: cc})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(normalize(t, back), normalize(t, doc)) {
		t.Fatal("fallback decode changed document")
	}
}

// FuzzCrossClassCodec is the cross-oracle for the class-codec plane: for any
// document the XML oracle accepts, encoding with class codecs bound (typed
// for "N" and "Record", fully delegating for every other class present) must
// produce byte-identical frames to the generic path, and codec-assisted
// decodes of those frames must reproduce the oracle rendering.
func FuzzCrossClassCodec(f *testing.F) {
	seeds := []string{
		`<swapcluster id="c" version="1"><object id="1" class="Record"><field name="x" kind="int">7</field></object></swapcluster>`,
		`<swapcluster id="c" version="1"><object id="1" class="N"><field name="r" kind="ref" target="2"/><field name="b" kind="bytes">aGVsbG8=</field></object></swapcluster>`,
		`<swapcluster id="c" version="1"><object id="1" class="A"/><object id="2" class="B"><field name="p" kind="ref" target="1"/></object></swapcluster>`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	if data, err := testDoc(3).Encode(); err == nil {
		f.Add(data)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		doc, err := xmlcodec.Decode(data)
		if err != nil {
			return
		}
		want, err := doc.Encode()
		if err != nil {
			t.Fatalf("oracle re-encode: %v", err)
		}
		cc := recordCodecs()
		cc.Bind(typedNCodec{})
		for i := range doc.Objects {
			name := doc.Objects[i].Class
			if _, bound := cc.Lookup(name); !bound {
				cc.Bind(delegatingCodec{name: name})
			}
		}
		for _, id := range []FormatID{FormatBinary, FormatFlate} {
			plain, err := Encode(id, doc, nil)
			if err != nil {
				t.Fatalf("%s: generic encode: %v", id, err)
			}
			fast, err := Encode(id, doc, &EncodeOpts{Codecs: cc})
			if err != nil {
				t.Fatalf("%s: codec encode: %v", id, err)
			}
			if !bytes.Equal(plain, fast) {
				t.Fatalf("%s: class codec diverged from generic bytes", id)
			}
			back, err := Decode(fast, &DecodeOpts{Codecs: cc})
			if err != nil {
				t.Fatalf("%s: codec decode: %v", id, err)
			}
			out, err := back.Encode()
			if err != nil {
				t.Fatalf("%s: re-encode: %v", id, err)
			}
			if !bytes.Equal(out, want) {
				t.Fatalf("%s: codec decode diverged:\n got:  %s\n want: %s", id, out, want)
			}
		}
	})
}

// typedNCodec compiles a two-field layout (int, ref) for class "N". Fuzz
// documents rarely match it, so this mostly exercises the drift fallbacks.
type typedNCodec struct{}

func (typedNCodec) ClassName() string { return "N" }

func (typedNCodec) Measure(o *xmlcodec.Object, st Stats) error {
	fs := o.Fields
	if len(fs) != 2 {
		return st.Fields(fs)
	}
	st.Field(fs[0].Name)
	if v := &fs[0].Value; v.Kind == heap.KindInt {
		st.Int(v.I)
	} else if err := st.Value(v); err != nil {
		return err
	}
	st.Field(fs[1].Name)
	return st.Value(&fs[1].Value)
}

func (typedNCodec) Encode(e Enc, o *xmlcodec.Object) error {
	fs := o.Fields
	if len(fs) != 2 {
		return e.Fields(fs)
	}
	e.Field(fs[0].Name)
	if v := &fs[0].Value; v.Kind == heap.KindInt {
		e.Int(v.I)
	} else if err := e.Value(v); err != nil {
		return err
	}
	e.Field(fs[1].Name)
	return e.Value(&fs[1].Value)
}

func (typedNCodec) Decode(d Dec, o *xmlcodec.Object) error {
	fs := o.Fields
	if len(fs) != 2 {
		return d.Fields(fs)
	}
	var err error
	if fs[0].Name, err = d.Name(); err != nil {
		return err
	}
	if err = d.Int(&fs[0].Value); err != nil {
		return err
	}
	if fs[1].Name, err = d.Name(); err != nil {
		return err
	}
	return d.Value(&fs[1].Value)
}
