package wire

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"objectswap/internal/heap"
	"objectswap/internal/xmlcodec"
)

// testDoc mirrors the xmlcodec benchmark document: the field mix a
// swap-cluster typically carries.
func testDoc(objs int) *xmlcodec.Doc {
	payload := make([]byte, 256)
	for i := range payload {
		payload[i] = byte(i)
	}
	doc := &xmlcodec.Doc{ClusterID: "wire-swapcluster-1-gen1", Version: xmlcodec.Version}
	for i := 0; i < objs; i++ {
		id := heap.ObjID(i + 1)
		next := heap.ObjID(i%objs + 1)
		doc.Objects = append(doc.Objects, xmlcodec.Object{
			ID:    id,
			Class: "Record",
			Fields: []xmlcodec.Field{
				{Name: "title", Value: xmlcodec.Value{Kind: heap.KindString, S: fmt.Sprintf("record #%d with \"quoted\" & <angled> text", i)}},
				{Name: "seq", Value: xmlcodec.Value{Kind: heap.KindInt, I: int64(i)*7919 - 500}},
				{Name: "weight", Value: xmlcodec.Value{Kind: heap.KindFloat, F: float64(i) * 0.125}},
				{Name: "dirty", Value: xmlcodec.Value{Kind: heap.KindBool, B: i%2 == 0}},
				{Name: "blob", Value: xmlcodec.Value{Kind: heap.KindBytes, Data: payload}},
				{Name: "gone", Value: xmlcodec.Value{Kind: heap.KindNil}},
				{Name: "next", Value: xmlcodec.InternalRef(next)},
				{Name: "out", Value: xmlcodec.SlotRef(i % 4)},
				{Name: "home", Value: xmlcodec.RemoteRefOf(heap.ObjID(100000+i), "Record")},
				{Name: "tags", Value: xmlcodec.Value{Kind: heap.KindList, List: []xmlcodec.Value{
					{Kind: heap.KindString, S: "hot"},
					{Kind: heap.KindInt, I: int64(i)},
					xmlcodec.InternalRef(id),
					{Kind: heap.KindList, List: []xmlcodec.Value{{Kind: heap.KindBool, B: true}}},
				}}},
			},
		})
	}
	return doc
}

// normalize re-renders a document through the XML oracle so semantically
// equal documents compare byte-equal regardless of nil-vs-empty slices.
func normalize(t testing.TB, doc *xmlcodec.Doc) []byte {
	t.Helper()
	out, err := doc.Encode()
	if err != nil {
		t.Fatalf("oracle encode: %v", err)
	}
	return out
}

func TestRoundTripSelfContained(t *testing.T) {
	doc := testDoc(8)
	want := normalize(t, doc)
	for _, id := range []FormatID{FormatXML, FormatBinary, FormatFlate} {
		c, err := Lookup(id)
		if err != nil {
			t.Fatal(err)
		}
		data, err := c.Encode(doc, nil)
		if err != nil {
			t.Fatalf("%s: encode: %v", id, err)
		}
		if got, err := Detect(data); err != nil || got != id {
			t.Fatalf("%s: Detect = %q, %v", id, got, err)
		}
		back, err := Decode(data, nil)
		if err != nil {
			t.Fatalf("%s: decode: %v", id, err)
		}
		if !bytes.Equal(normalize(t, back), want) {
			t.Fatalf("%s: round trip changed document", id)
		}
	}
}

func TestRoundTripEmptyDoc(t *testing.T) {
	doc := &xmlcodec.Doc{ClusterID: "empty", Version: xmlcodec.Version}
	for _, id := range []FormatID{FormatBinary, FormatFlate} {
		data, err := Encode(id, doc, nil)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		back, err := Decode(data, nil)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if back.ClusterID != "empty" || len(back.Objects) != 0 || back.Version != xmlcodec.Version {
			t.Fatalf("%s: got %+v", id, back)
		}
	}
}

func TestDeltaRoundTrip(t *testing.T) {
	base := testDoc(16)
	baseData, err := Encode(FormatBinary, base, nil)
	if err != nil {
		t.Fatal(err)
	}

	// New shipment: object 3 mutated, object 16 removed, object 17 added.
	next := testDoc(16)
	next.ClusterID = "wire-swapcluster-1-gen2"
	next.Objects[2].Fields[0].Value.S = "mutated"
	changedObj := next.Objects[2]
	added := xmlcodec.Object{ID: 17, Class: "Record", Fields: []xmlcodec.Field{
		{Name: "title", Value: xmlcodec.Value{Kind: heap.KindString, S: "fresh"}},
	}}
	next.Objects = append(next.Objects[:15], added)

	delta := &xmlcodec.Doc{
		ClusterID: next.ClusterID,
		Version:   xmlcodec.Version,
		Objects:   []xmlcodec.Object{changedObj, added},
	}
	deltaData, err := Encode(FormatDelta, delta, &EncodeOpts{
		BaseKey: base.ClusterID,
		Removed: []heap.ObjID{16},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got, err := Detect(deltaData); err != nil || got != FormatDelta {
		t.Fatalf("Detect = %q, %v", got, err)
	}

	fetches := 0
	back, err := Decode(deltaData, &DecodeOpts{FetchBase: func(key string) ([]byte, error) {
		fetches++
		if key != base.ClusterID {
			return nil, fmt.Errorf("unexpected base %q", key)
		}
		return baseData, nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	if fetches != 1 {
		t.Fatalf("fetched base %d times", fetches)
	}
	if !bytes.Equal(normalize(t, back), normalize(t, next)) {
		t.Fatal("delta application diverged from the full document")
	}

	// A delta is much smaller than the base it patches.
	if len(deltaData)*4 > len(baseData) {
		t.Fatalf("delta %d bytes vs base %d bytes", len(deltaData), len(baseData))
	}
}

func TestDeltaWithoutFetcher(t *testing.T) {
	delta, err := Encode(FormatDelta, &xmlcodec.Doc{ClusterID: "k2", Version: 1},
		&EncodeOpts{BaseKey: "k1"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(delta, nil); err == nil {
		t.Fatal("delta decoded without a base fetcher")
	}
	if _, err := Decode(delta, &DecodeOpts{FetchBase: func(string) ([]byte, error) {
		return nil, fmt.Errorf("donor lacks base")
	}}); err == nil {
		t.Fatal("delta decoded with failing base fetch")
	}
}

func TestDeltaSelfBaseRejected(t *testing.T) {
	if _, err := Encode(FormatDelta, &xmlcodec.Doc{ClusterID: "k", Version: 1},
		&EncodeOpts{BaseKey: "k"}); err == nil {
		t.Fatal("delta accepted its own key as base")
	}
	if _, err := Encode(FormatDelta, &xmlcodec.Doc{ClusterID: "k", Version: 1}, nil); err == nil {
		t.Fatal("delta accepted nil opts")
	}
}

func TestDeltaChainDepthBounded(t *testing.T) {
	// k0 is a real base; k1..k5 each delta against the previous. Decoding the
	// deepest must hit the recursion bound, not loop or blow the stack.
	payloads := map[string][]byte{}
	base := &xmlcodec.Doc{ClusterID: "k0", Version: 1}
	data, err := Encode(FormatBinary, base, nil)
	if err != nil {
		t.Fatal(err)
	}
	payloads["k0"] = data
	for i := 1; i <= maxDeltaDepth+1; i++ {
		key, prev := fmt.Sprintf("k%d", i), fmt.Sprintf("k%d", i-1)
		d, err := Encode(FormatDelta, &xmlcodec.Doc{ClusterID: key, Version: 1},
			&EncodeOpts{BaseKey: prev})
		if err != nil {
			t.Fatal(err)
		}
		payloads[key] = d
	}
	fetch := func(key string) ([]byte, error) {
		p, ok := payloads[key]
		if !ok {
			return nil, fmt.Errorf("no %q", key)
		}
		return p, nil
	}
	// Shallow chain decodes.
	if _, err := Decode(payloads["k2"], &DecodeOpts{FetchBase: fetch}); err != nil {
		t.Fatalf("depth-2 chain: %v", err)
	}
	// Past the bound it must fail cleanly.
	if _, err := Decode(payloads[fmt.Sprintf("k%d", maxDeltaDepth+1)],
		&DecodeOpts{FetchBase: fetch}); err == nil {
		t.Fatal("unbounded delta chain accepted")
	}
}

func TestDetect(t *testing.T) {
	cases := []struct {
		data []byte
		want FormatID
		ok   bool
	}{
		{[]byte(`<?xml version="1.0"?><swapcluster id="c" version="1"/>`), FormatXML, true},
		{[]byte("  \n\t<swapcluster/>"), FormatXML, true},
		{[]byte{}, "", false},
		{[]byte("garbage"), "", false},
		{[]byte{magic0, magic1, magic2, frameVersion, 0x00, 0x00}, FormatBinary, true},
		{[]byte{magic0, magic1, magic2, frameVersion, flagFlate, 0x00}, FormatFlate, true},
		{[]byte{magic0, magic1, magic2, frameVersion, flagDelta, 0x00}, FormatDelta, true},
		{[]byte{magic0, magic1, magic2, 99, 0x00, 0x00}, "", false},
	}
	for i, c := range cases {
		got, err := Detect(c.data)
		if c.ok && (err != nil || got != c.want) {
			t.Fatalf("case %d: got %q, %v", i, got, err)
		}
		if !c.ok && err == nil {
			t.Fatalf("case %d: want error, got %q", i, got)
		}
	}
}

func TestRegistryAdvertisement(t *testing.T) {
	want := []string{"binary", "binary+flate", "delta", "xml"}
	if got := FormatStrings(); !reflect.DeepEqual(got, want) {
		t.Fatalf("FormatStrings() = %v, want %v", got, want)
	}
	for _, id := range Formats() {
		c, err := Lookup(id)
		if err != nil || c.ID() != id {
			t.Fatalf("Lookup(%q) = %v, %v", id, c, err)
		}
	}
	if _, err := Lookup("nope"); err == nil {
		t.Fatal("Lookup accepted an unknown format")
	}
}

// TestBinaryRejectsCorruption walks a valid frame flipping/truncating bytes;
// the decoder must reject or return a document, never panic — and the length
// prefix must catch truncation.
func TestBinaryRejectsCorruption(t *testing.T) {
	data, err := Encode(FormatBinary, testDoc(4), nil)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(data); cut += 7 {
		if _, err := Decode(data[:cut], nil); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	for i := 0; i < len(data); i++ {
		mut := append([]byte(nil), data...)
		mut[i] ^= 0x41
		_, _ = Decode(mut, nil) // must not panic
	}
}

// FuzzCrossFormat round-trips documents through XML <-> binary <->
// compressed <-> delta+base and asserts every path yields the identical
// decoded model (via the XML oracle rendering). This is the satellite
// cross-format compatibility proof: format choice is a transport decision,
// never a semantic one.
func FuzzCrossFormat(f *testing.F) {
	seeds := []string{
		`<?xml version="1.0"?><swapcluster id="c" version="1"></swapcluster>`,
		`<swapcluster id="c &quot;x&quot;" version="1"><object id="1" class="N"><field name="x" kind="int">7</field><field name="f" kind="float">-2.5e3</field><field name="g" kind="bool">true</field></object></swapcluster>`,
		`<swapcluster id="c" version="1"><object id="1" class="N"><field name="r" kind="ref" target="2"/><field name="s" kind="xref" slot="0"/><field name="t" kind="rref" target="9" class="N"/></object></swapcluster>`,
		`<swapcluster id="c" version="1"><object id="1" class="N"><field name="l" kind="list"><item kind="string"> padded </item><item kind="list"><item kind="ref" target="1"/></item></field></object></swapcluster>`,
		`<swapcluster id="c" version="1"><object id="1" class="N"><field name="b" kind="bytes">aGVsbG8=</field><field name="n" kind="nil"/></object></swapcluster>`,
		`<swapcluster id="c" version="1"><object id="1" class="A"/><object id="2" class="B"><field name="p" kind="ref" target="1"/></object></swapcluster>`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		doc, err := xmlcodec.Decode(data)
		if err != nil {
			return // not a valid document; rejection is the XML codec's business
		}
		want, err := doc.Encode()
		if err != nil {
			t.Fatalf("oracle re-encode: %v", err)
		}

		// Every self-contained format must round-trip to the oracle bytes.
		for _, id := range []FormatID{FormatXML, FormatBinary, FormatFlate} {
			enc, err := Encode(id, doc, nil)
			if err != nil {
				t.Fatalf("%s: encode: %v", id, err)
			}
			back, err := Decode(enc, nil)
			if err != nil {
				t.Fatalf("%s: decode: %v", id, err)
			}
			out, err := back.Encode()
			if err != nil {
				t.Fatalf("%s: re-encode: %v", id, err)
			}
			if !bytes.Equal(out, want) {
				t.Fatalf("%s diverged:\n got:  %s\n want: %s", id, out, want)
			}
		}

		// Delta path: ship the whole document as changes against an empty
		// base, and as an empty delta against the full document as base; both
		// must reproduce the model exactly.
		baseEmpty, err := Encode(FormatBinary, &xmlcodec.Doc{ClusterID: "base", Version: doc.Version}, nil)
		if err != nil {
			t.Fatal(err)
		}
		baseFull, err := Encode(FormatFlate, &xmlcodec.Doc{
			ClusterID: "base", Version: doc.Version, Objects: doc.Objects,
		}, nil)
		if err != nil {
			t.Fatal(err)
		}
		fetch := func(bases map[string][]byte) func(string) ([]byte, error) {
			return func(key string) ([]byte, error) {
				p, ok := bases[key]
				if !ok {
					return nil, fmt.Errorf("no base %q", key)
				}
				return p, nil
			}
		}
		deltaKey := doc.ClusterID
		if deltaKey == "base" {
			deltaKey = "base2"
		}
		allChanged := &xmlcodec.Doc{ClusterID: deltaKey, Version: doc.Version, Objects: doc.Objects}
		d1, err := Encode(FormatDelta, allChanged, &EncodeOpts{BaseKey: "base"})
		if err != nil {
			t.Fatalf("delta encode: %v", err)
		}
		b1, err := Decode(d1, &DecodeOpts{FetchBase: fetch(map[string][]byte{"base": baseEmpty})})
		if err != nil {
			t.Fatalf("delta decode: %v", err)
		}
		noChanges := &xmlcodec.Doc{ClusterID: deltaKey, Version: doc.Version}
		d2, err := Encode(FormatDelta, noChanges, &EncodeOpts{BaseKey: "base"})
		if err != nil {
			t.Fatalf("empty delta encode: %v", err)
		}
		b2, err := Decode(d2, &DecodeOpts{FetchBase: fetch(map[string][]byte{"base": baseFull})})
		if err != nil {
			t.Fatalf("empty delta decode: %v", err)
		}
		for i, back := range []*xmlcodec.Doc{b1, b2} {
			back.ClusterID = doc.ClusterID // delta carries its own key by design
			out, err := back.Encode()
			if err != nil {
				t.Fatalf("delta case %d re-encode: %v", i, err)
			}
			if !bytes.Equal(out, want) {
				t.Fatalf("delta case %d diverged:\n got:  %s\n want: %s", i, out, want)
			}
		}
	})
}

// FuzzDecodeBinary hardens the frame decoder against arbitrary payloads
// (donors are untrusted storage: anything can come back).
func FuzzDecodeBinary(f *testing.F) {
	if seed, err := Encode(FormatBinary, testDoc(2), nil); err == nil {
		f.Add(seed)
	}
	if seed, err := Encode(FormatFlate, testDoc(2), nil); err == nil {
		f.Add(seed)
	}
	f.Add([]byte{magic0, magic1, magic2, frameVersion, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		doc, err := Decode(data, nil)
		if err != nil {
			return // rejection is fine; panics are not
		}
		if _, err := doc.Encode(); err != nil {
			t.Fatalf("accepted document failed to encode: %v", err)
		}
	})
}
