// Package wire defines the negotiated shipment formats a constrained device
// can use to move swap-clusters to nearby donors.
//
// The paper ships every swap-cluster as self-describing XML text so that a
// donor needs no VM and no middleware — "they simply must be able to store
// and provide XML text". That portability claim survives here as the
// universal fallback: every donor accepts Version=1 XML wrapper documents,
// and a donor that advertises nothing else still interoperates. But the
// fault path is asymmetric on a constrained device: swap-in re-faults over a
// ~700 Kbps Bluetooth-class link and then pays the decode cost, so this
// package adds negotiated alternatives behind one Codec interface —
// a length-prefixed binary framing (decode within ~2x of encode), optional
// DEFLATE compression of the binary body, and delta re-shipment for
// re-swapped clusters that ships only the objects dirtied since the last
// checkpointed shipment.
//
// All formats encode and decode the same document model (xmlcodec.Doc);
// format choice is a per-shipment transport decision, never a semantic one.
// Donors advertise the formats they accept on their Stats surface and the
// constrained device picks the first mutually supported entry of its
// preference list — all K replicas of one shipment always use one format.
package wire

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"objectswap/internal/heap"
	"objectswap/internal/xmlcodec"
)

// FormatID names one wire format. IDs are the strings donors advertise in
// store.Stats.Formats and the HTTP bridge carries as content-type suffixes.
type FormatID string

// The built-in formats.
const (
	// FormatXML is the paper's Version=1 XML wrapper document — the
	// universal fallback every donor accepts, and the compatibility oracle
	// the other codecs are fuzzed against.
	FormatXML FormatID = "xml"
	// FormatBinary is the length-prefixed binary framing: same document
	// model, arena-decoded so swap-in no longer pays ~18x the encode cost.
	FormatBinary FormatID = "binary"
	// FormatFlate is the binary framing with the body DEFLATE-compressed
	// (reusing the baseline compressor), for links where bytes dominate.
	FormatFlate FormatID = "binary+flate"
	// FormatDelta re-ships a re-swapped cluster as only the objects dirtied
	// since its base shipment, naming the base key the donor already holds.
	FormatDelta FormatID = "delta"
)

// Caps describes what a codec can do, so negotiation and the ship path can
// reason about formats without switching on IDs.
type Caps uint8

const (
	// CapSelfContained marks formats whose payload decodes without any other
	// shipment (everything except delta).
	CapSelfContained Caps = 1 << iota
	// CapCompressed marks formats that compress the payload body.
	CapCompressed
	// CapDelta marks formats that encode against a base shipment.
	CapDelta
)

// Errors reported by the wire layer.
var (
	// ErrUnknownFormat reports a format ID no registered codec claims.
	ErrUnknownFormat = errors.New("wire: unknown format")
	// ErrBadFrame reports a payload that fails framing validation
	// (bad magic, truncated sections, lying length prefix).
	ErrBadFrame = errors.New("wire: malformed frame")
	// ErrNeedBase reports a delta decode attempted without a base fetcher,
	// or whose base fetch failed.
	ErrNeedBase = errors.New("wire: delta requires base shipment")
)

// EncodeOpts carries per-shipment encoding parameters. Self-contained codecs
// accept nil; only the delta codec requires one.
type EncodeOpts struct {
	// BaseKey names the base shipment a delta encodes against. The donor
	// receiving the delta must already hold this key.
	BaseKey string
	// Removed lists base member object IDs absent from the new shipment.
	Removed []heap.ObjID
	// Codecs optionally supplies the runtime's per-class codec set. Binary-
	// family formats route matching objects through their class codec; the
	// bytes produced are identical either way (the ClassCodec contract).
	Codecs *ClassCodecs
}

// DecodeOpts carries per-shipment decoding parameters. Self-contained codecs
// accept nil; only the delta codec requires one.
type DecodeOpts struct {
	// FetchBase returns the payload bytes of the named base shipment,
	// normally a Get against the same donor the delta came from.
	FetchBase func(key string) ([]byte, error)

	// Codecs optionally supplies the runtime's per-class codec set. Setting
	// it also opts into the borrowed-blob decode contract: bytes values in
	// the returned document alias the input payload, so the caller must
	// install (or copy) the document before reusing the buffer.
	Codecs *ClassCodecs

	// depth guards against delta-of-delta recursion.
	depth int
}

// classCodecs returns the codec set of a possibly-nil opts.
func (o *EncodeOpts) classCodecs() *ClassCodecs {
	if o == nil {
		return nil
	}
	return o.Codecs
}

// classCodecs returns the codec set of a possibly-nil opts.
func (o *DecodeOpts) classCodecs() *ClassCodecs {
	if o == nil {
		return nil
	}
	return o.Codecs
}

// maxDeltaDepth bounds base-chain recursion; the runtime only ever deltas
// against a full shipment, so anything deeper than a short chain is a
// malformed or adversarial payload.
const maxDeltaDepth = 4

// Codec converts between the document model and one wire format.
type Codec interface {
	// ID is the format's negotiation identifier.
	ID() FormatID
	// Caps reports the format's capabilities.
	Caps() Caps
	// Encode renders doc into this format.
	Encode(doc *xmlcodec.Doc, opts *EncodeOpts) ([]byte, error)
	// Decode parses a payload of this format back into the document model.
	Decode(data []byte, opts *DecodeOpts) (*xmlcodec.Doc, error)
}

var (
	regMu  sync.RWMutex
	codecs = map[FormatID]Codec{}
)

// Register adds a codec to the format registry. Registering a duplicate ID
// panics: formats are protocol identifiers, not interchangeable plugins.
func Register(c Codec) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := codecs[c.ID()]; dup {
		panic(fmt.Sprintf("wire: duplicate codec %q", c.ID()))
	}
	codecs[c.ID()] = c
}

// Lookup returns the codec registered for id.
func Lookup(id FormatID) (Codec, error) {
	regMu.RLock()
	defer regMu.RUnlock()
	c, ok := codecs[id]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownFormat, id)
	}
	return c, nil
}

// Formats lists every registered format ID, sorted, suitable for a donor's
// Stats advertisement.
func Formats() []FormatID {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]FormatID, 0, len(codecs))
	for id := range codecs {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// FormatStrings is Formats as plain strings (the type store.Stats carries).
func FormatStrings() []string {
	ids := Formats()
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = string(id)
	}
	return out
}

// Detect sniffs a payload's format from its leading bytes. XML documents
// start with '<' (optionally after insignificant whitespace); every binary
// family frame starts with the OBW magic whose flag byte distinguishes
// plain, compressed and delta payloads.
func Detect(data []byte) (FormatID, error) {
	if len(data) >= frameHeaderLen && data[0] == magic0 && data[1] == magic1 && data[2] == magic2 {
		if data[3] != frameVersion {
			return "", fmt.Errorf("%w: frame version %d", ErrBadFrame, data[3])
		}
		flags := data[4]
		switch {
		case flags&flagDelta != 0:
			return FormatDelta, nil
		case flags&flagFlate != 0:
			return FormatFlate, nil
		default:
			return FormatBinary, nil
		}
	}
	for _, b := range data {
		switch b {
		case ' ', '\t', '\r', '\n':
			continue
		case '<':
			return FormatXML, nil
		default:
			return "", fmt.Errorf("%w: unrecognized leading byte 0x%02x", ErrBadFrame, b)
		}
	}
	return "", fmt.Errorf("%w: empty payload", ErrBadFrame)
}

// Decode sniffs data's format and decodes it through the matching codec.
// This is the swap-in entry point: stored payloads are self-describing, so
// a reloading device never depends on out-of-band format metadata.
func Decode(data []byte, opts *DecodeOpts) (*xmlcodec.Doc, error) {
	id, err := Detect(data)
	if err != nil {
		return nil, err
	}
	c, err := Lookup(id)
	if err != nil {
		return nil, err
	}
	return c.Decode(data, opts)
}

// Encode renders doc in the named format.
func Encode(id FormatID, doc *xmlcodec.Doc, opts *EncodeOpts) ([]byte, error) {
	c, err := Lookup(id)
	if err != nil {
		return nil, err
	}
	return c.Encode(doc, opts)
}
