package wire

import (
	"encoding/binary"
	"testing"
)

// Craft a delta frame body where clusterIDLen + baseKeyLen > strBytes but
// each individually <= strBytes.
func TestReviewDeltaArenaPanic(t *testing.T) {
	body := []byte{}
	body = binary.AppendUvarint(body, 8)         // clusterIDLen
	body = binary.AppendUvarint(body, 1)         // docVersion
	body = binary.AppendUvarint(body, 0)         // nObjects
	body = binary.AppendUvarint(body, 0)         // nFields
	body = binary.AppendUvarint(body, 0)         // nListItems
	body = binary.AppendUvarint(body, 10)        // strBytes
	body = binary.AppendUvarint(body, 0)         // blobBytes
	body = binary.AppendUvarint(body, 8)         // baseKeyLen
	body = binary.AppendUvarint(body, 0)         // nRemoved
	body = append(body, []byte("0123456789")...) // 10-byte string arena
	frame := []byte{magic0, magic1, magic2, frameVersion, flagDelta}
	frame = binary.AppendUvarint(frame, uint64(len(body)))
	frame = append(frame, body...)
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("PANIC: %v", r)
		}
	}()
	_, _, _, err := decodeBody(frame[5+1:], true, nil)
	t.Logf("err=%v", err)
}

// Overflow strBytes+blobBytes so the sum check passes.
func TestReviewOverflowPanic(t *testing.T) {
	body := []byte{}
	body = binary.AppendUvarint(body, 0)          // clusterIDLen
	body = binary.AppendUvarint(body, 1)          // docVersion
	body = binary.AppendUvarint(body, 0)          // nObjects
	body = binary.AppendUvarint(body, 0)          // nFields
	body = binary.AppendUvarint(body, 0)          // nListItems
	body = binary.AppendUvarint(body, ^uint64(0)) // strBytes = 2^64-1
	// choose blobBytes so sum wraps to <= remaining; remaining depends on padding
	body = binary.AppendUvarint(body, 1) // blobBytes -> sum wraps to 0
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("PANIC: %v", r)
		}
	}()
	_, _, _, err := decodeBody(body, false, nil)
	t.Logf("err=%v", err)
}
