package wire

import "objectswap/internal/xmlcodec"

// xmlCodec adapts the paper's Version=1 XML wrapper documents to the Codec
// interface. It is the universal fallback — a donor that advertises no
// formats still stores and returns this — and the compatibility oracle the
// binary family is cross-fuzzed against.
type xmlCodec struct{}

func init() { Register(xmlCodec{}) }

func (xmlCodec) ID() FormatID { return FormatXML }
func (xmlCodec) Caps() Caps   { return CapSelfContained }

func (xmlCodec) Encode(doc *xmlcodec.Doc, _ *EncodeOpts) ([]byte, error) {
	return doc.Encode()
}

func (xmlCodec) Decode(data []byte, _ *DecodeOpts) (*xmlcodec.Doc, error) {
	return xmlcodec.Decode(data)
}
