package wire

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"io"

	"objectswap/internal/baseline"
	"objectswap/internal/xmlcodec"
)

// flateCodec is the binary framing with the body DEFLATE-compressed through
// the baseline compressor. The frame header stays cleartext so Detect works;
// the body is a uvarint raw length (the decoder's inflate size hint — one
// output allocation, no growth copies) followed by the deflate stream of the
// plain binary body.
type flateCodec struct{}

func init() { Register(flateCodec{}) }

func (flateCodec) ID() FormatID { return FormatFlate }
func (flateCodec) Caps() Caps   { return CapSelfContained | CapCompressed }

func (flateCodec) Encode(doc *xmlcodec.Doc, opts *EncodeOpts) ([]byte, error) {
	body, err := encodeBody(doc, opts, false)
	if err != nil {
		return nil, err
	}
	packed, err := baseline.Deflate(body, flate.DefaultCompression)
	if err != nil {
		return nil, err
	}
	inner := uvarintLen(uint64(len(body))) + len(packed)
	out := make([]byte, 0, frameHeaderLen+uvarintLen(uint64(inner))+inner)
	out = append(out, magic0, magic1, magic2, frameVersion, flagFlate)
	out = binary.AppendUvarint(out, uint64(inner))
	out = binary.AppendUvarint(out, uint64(len(body)))
	return append(out, packed...), nil
}

func (flateCodec) Decode(data []byte, opts *DecodeOpts) (*xmlcodec.Doc, error) {
	packed, flags, err := openFrame(data)
	if err != nil {
		return nil, err
	}
	if flags != flagFlate {
		return nil, fmt.Errorf("%w: flags 0x%02x on compressed payload", ErrBadFrame, flags)
	}
	rawLen, n := binary.Uvarint(packed)
	if n <= 0 {
		return nil, fmt.Errorf("%w: bad raw length", ErrBadFrame)
	}
	// An honest raw length is bounded by the achievable flate ratio (~1032x)
	// and by what a constrained device could ever hold; reject anything else
	// before allocating, and inflate EXACTLY the declared length — a stream
	// that runs short or long is a lying frame, not a resize.
	if rawLen > uint64(len(packed))*1032+64 || rawLen > maxInflate {
		return nil, fmt.Errorf("%w: implausible raw length %d", ErrBadFrame, rawLen)
	}
	fr := flate.NewReader(bytes.NewReader(packed[n:]))
	defer fr.Close()
	body := make([]byte, rawLen)
	if _, err := io.ReadFull(fr, body); err != nil {
		return nil, fmt.Errorf("%w: inflate: %v", ErrBadFrame, err)
	}
	var probe [1]byte
	if m, _ := fr.Read(probe[:]); m != 0 {
		return nil, fmt.Errorf("%w: body longer than declared", ErrBadFrame)
	}
	doc, _, _, err := decodeBody(body, false, opts.classCodecs())
	return doc, err
}

// maxInflate caps a compressed body's declared raw size: far above any real
// shipment from a constrained device, far below a decompression bomb.
const maxInflate = 1 << 26
