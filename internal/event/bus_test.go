package event

import (
	"sync"
	"testing"
	"time"

	"objectswap/internal/obs"
)

func TestPublishDeliversInSubscriptionOrder(t *testing.T) {
	b := NewBus()
	var order []int
	b.Subscribe("t", func(Event) { order = append(order, 1) })
	b.Subscribe("t", func(Event) { order = append(order, 2) })
	b.Subscribe("t", func(Event) { order = append(order, 3) })
	n := b.Emit("t", nil)
	if n != 3 {
		t.Fatalf("Emit returned %d, want 3", n)
	}
	for i, v := range order {
		if v != i+1 {
			t.Fatalf("delivery order = %v", order)
		}
	}
}

func TestPublishPayloadAndTopicIsolation(t *testing.T) {
	b := NewBus()
	var got any
	b.Subscribe("a", func(ev Event) { got = ev.Payload })
	other := 0
	b.Subscribe("b", func(Event) { other++ })
	b.Emit("a", 42)
	if got != 42 {
		t.Fatalf("payload = %v", got)
	}
	if other != 0 {
		t.Fatal("handler on unrelated topic fired")
	}
	if n := b.Emit("missing", nil); n != 0 {
		t.Fatalf("Emit on topic without subscribers = %d", n)
	}
}

func TestCancel(t *testing.T) {
	b := NewBus()
	calls := 0
	sub := b.Subscribe("t", func(Event) { calls++ })
	b.Emit("t", nil)
	sub.Cancel()
	b.Emit("t", nil)
	if calls != 1 {
		t.Fatalf("calls = %d, want 1", calls)
	}
	sub.Cancel() // double-cancel is a no-op
	var nilSub *Subscription
	nilSub.Cancel() // nil-cancel is a no-op
	if b.Subscribers("t") != 0 {
		t.Fatal("subscriber count not zero after cancel")
	}
}

func TestDeliveredCounter(t *testing.T) {
	b := NewBus()
	b.Subscribe("t", func(Event) {})
	b.Subscribe("t", func(Event) {})
	b.Emit("t", nil)
	b.Emit("t", nil)
	if got := b.Delivered("t"); got != 4 {
		t.Fatalf("Delivered = %d, want 4", got)
	}
}

func TestNilHandlerPanics(t *testing.T) {
	b := NewBus()
	defer func() {
		if recover() == nil {
			t.Fatal("Subscribe(nil) should panic")
		}
	}()
	b.Subscribe("t", nil)
}

func TestHandlerMayPublish(t *testing.T) {
	// Synchronous cascading: a handler publishing on another topic must not
	// deadlock (handlers run outside the bus lock).
	b := NewBus()
	hits := 0
	b.Subscribe("second", func(Event) { hits++ })
	b.Subscribe("first", func(Event) { b.Emit("second", nil) })
	b.Emit("first", nil)
	if hits != 1 {
		t.Fatalf("cascaded delivery = %d, want 1", hits)
	}
}

func TestConcurrentPublishSafe(t *testing.T) {
	b := NewBus()
	var mu sync.Mutex
	count := 0
	b.Subscribe("t", func(Event) {
		mu.Lock()
		count++
		mu.Unlock()
	})
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				b.Emit("t", j)
			}
		}()
	}
	wg.Wait()
	if count != 1600 {
		t.Fatalf("count = %d, want 1600", count)
	}
}

func TestPanickingSubscriberDoesNotKillPublisher(t *testing.T) {
	r := obs.NewRegistry(nil)
	b := NewBus(WithRegistry(r))
	after := 0
	b.Subscribe("t", func(Event) { panic("subscriber bug") })
	b.Subscribe("t", func(Event) { after++ })

	n := b.Emit("t", nil) // must not panic out of Publish
	if n != 2 {
		t.Fatalf("Emit returned %d, want 2", n)
	}
	if after != 1 {
		t.Fatal("handler after the panicking one did not run")
	}
	if got := b.Panics("t"); got != 1 {
		t.Fatalf("Panics = %d, want 1", got)
	}
	if v, ok := r.Value("objectswap_bus_subscriber_panics_total"); !ok || v != 1 {
		t.Fatalf("panic counter = %v %v", v, ok)
	}
	if v, _ := r.Value("objectswap_bus_published_total", "t"); v != 1 {
		t.Fatalf("published counter = %v", v)
	}
	if v, _ := r.Value("objectswap_bus_delivered_total", "t"); v != 2 {
		t.Fatalf("delivered counter = %v", v)
	}
}

func TestEnvelopeSeqAndTimestamp(t *testing.T) {
	clk := obs.NewVirtualClock(time.Unix(500, 0))
	b := NewBus(WithClock(clk))
	var events []Event
	b.Subscribe("a", func(ev Event) { events = append(events, ev) })
	b.Subscribe("b", func(ev Event) { events = append(events, ev) })

	b.Emit("a", nil)
	clk.Advance(2 * time.Second)
	b.Emit("b", nil)
	b.Emit("a", nil)

	if len(events) != 3 {
		t.Fatalf("events = %d", len(events))
	}
	// Seq is bus-wide monotonic across topics.
	for i, ev := range events {
		if ev.Seq != uint64(i+1) {
			t.Fatalf("event %d Seq = %d", i, ev.Seq)
		}
	}
	if !events[0].At.Equal(time.Unix(500, 0)) {
		t.Fatalf("first At = %v", events[0].At)
	}
	if !events[1].At.Equal(time.Unix(502, 0)) || !events[2].At.Equal(time.Unix(502, 0)) {
		t.Fatalf("later At = %v, %v", events[1].At, events[2].At)
	}
}

func TestStringSummary(t *testing.T) {
	b := NewBus()
	b.Subscribe("x", func(Event) {})
	if got := b.String(); got != "event.Bus{topics:1}" {
		t.Fatalf("String = %q", got)
	}
}
