package event

import (
	"sync"
	"testing"
)

func TestPublishDeliversInSubscriptionOrder(t *testing.T) {
	b := NewBus()
	var order []int
	b.Subscribe("t", func(Event) { order = append(order, 1) })
	b.Subscribe("t", func(Event) { order = append(order, 2) })
	b.Subscribe("t", func(Event) { order = append(order, 3) })
	n := b.Emit("t", nil)
	if n != 3 {
		t.Fatalf("Emit returned %d, want 3", n)
	}
	for i, v := range order {
		if v != i+1 {
			t.Fatalf("delivery order = %v", order)
		}
	}
}

func TestPublishPayloadAndTopicIsolation(t *testing.T) {
	b := NewBus()
	var got any
	b.Subscribe("a", func(ev Event) { got = ev.Payload })
	other := 0
	b.Subscribe("b", func(Event) { other++ })
	b.Emit("a", 42)
	if got != 42 {
		t.Fatalf("payload = %v", got)
	}
	if other != 0 {
		t.Fatal("handler on unrelated topic fired")
	}
	if n := b.Emit("missing", nil); n != 0 {
		t.Fatalf("Emit on topic without subscribers = %d", n)
	}
}

func TestCancel(t *testing.T) {
	b := NewBus()
	calls := 0
	sub := b.Subscribe("t", func(Event) { calls++ })
	b.Emit("t", nil)
	sub.Cancel()
	b.Emit("t", nil)
	if calls != 1 {
		t.Fatalf("calls = %d, want 1", calls)
	}
	sub.Cancel() // double-cancel is a no-op
	var nilSub *Subscription
	nilSub.Cancel() // nil-cancel is a no-op
	if b.Subscribers("t") != 0 {
		t.Fatal("subscriber count not zero after cancel")
	}
}

func TestDeliveredCounter(t *testing.T) {
	b := NewBus()
	b.Subscribe("t", func(Event) {})
	b.Subscribe("t", func(Event) {})
	b.Emit("t", nil)
	b.Emit("t", nil)
	if got := b.Delivered("t"); got != 4 {
		t.Fatalf("Delivered = %d, want 4", got)
	}
}

func TestNilHandlerPanics(t *testing.T) {
	b := NewBus()
	defer func() {
		if recover() == nil {
			t.Fatal("Subscribe(nil) should panic")
		}
	}()
	b.Subscribe("t", nil)
}

func TestHandlerMayPublish(t *testing.T) {
	// Synchronous cascading: a handler publishing on another topic must not
	// deadlock (handlers run outside the bus lock).
	b := NewBus()
	hits := 0
	b.Subscribe("second", func(Event) { hits++ })
	b.Subscribe("first", func(Event) { b.Emit("second", nil) })
	b.Emit("first", nil)
	if hits != 1 {
		t.Fatalf("cascaded delivery = %d, want 1", hits)
	}
}

func TestConcurrentPublishSafe(t *testing.T) {
	b := NewBus()
	var mu sync.Mutex
	count := 0
	b.Subscribe("t", func(Event) {
		mu.Lock()
		count++
		mu.Unlock()
	})
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				b.Emit("t", j)
			}
		}()
	}
	wg.Wait()
	if count != 1600 {
		t.Fatalf("count = %d, want 1600", count)
	}
}

func TestStringSummary(t *testing.T) {
	b := NewBus()
	b.Subscribe("x", func(Event) {})
	if got := b.String(); got != "event.Bus{topics:1}" {
		t.Fatalf("String = %q", got)
	}
}
