package txn

import (
	"errors"
	"testing"

	"objectswap/internal/core"
	"objectswap/internal/heap"
	"objectswap/internal/store"
)

func nodeClass() *heap.Class {
	c := heap.NewClass("Node",
		heap.FieldDef{Name: "next", Kind: heap.KindRef},
		heap.FieldDef{Name: "tag", Kind: heap.KindInt},
	)
	c.AddMethod("tag", func(call *heap.Call) ([]heap.Value, error) {
		v, _ := call.Self.FieldByName("tag")
		return []heap.Value{v}, nil
	})
	return c
}

func fixture(t testing.TB) (*core.Runtime, *heap.Class) {
	t.Helper()
	devices := store.NewRegistry(store.SelectMostFree)
	_ = devices.Add("d", store.NewMem(0))
	rt := core.NewRuntime(heap.New(0), heap.NewRegistry(), core.WithStores(devices))
	cls := nodeClass()
	rt.MustRegisterClass(cls)
	return rt, cls
}

func TestCommitKeepsWrites(t *testing.T) {
	rt, cls := fixture(t)
	m := New(rt)
	c := rt.Manager().NewCluster()
	o, _ := rt.NewObject(cls, c)
	_ = rt.SetRoot("x", o.RefTo())

	if err := m.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := m.Set(o.RefTo(), "tag", heap.Int(7)); err != nil {
		t.Fatal(err)
	}
	if err := m.Commit(); err != nil {
		t.Fatal(err)
	}
	v, _ := o.FieldByName("tag")
	if v.MustInt() != 7 {
		t.Fatalf("tag = %v", v)
	}
	if m.Commits() != 1 || m.InTransaction() {
		t.Fatalf("state: commits=%d open=%v", m.Commits(), m.InTransaction())
	}
}

func TestRollbackRestoresFieldsAndRoots(t *testing.T) {
	rt, cls := fixture(t)
	m := New(rt)
	c := rt.Manager().NewCluster()
	a, _ := rt.NewObject(cls, c)
	b, _ := rt.NewObject(cls, c)
	a.MustSet("tag", heap.Int(1))
	_ = rt.SetRoot("x", a.RefTo())

	if err := m.Begin(); err != nil {
		t.Fatal(err)
	}
	_ = m.Set(a.RefTo(), "tag", heap.Int(99))
	_ = m.Set(a.RefTo(), "next", b.RefTo())
	_ = m.SetRoot("x", b.RefTo())
	_ = m.SetRoot("fresh", b.RefTo())
	if err := m.Rollback(); err != nil {
		t.Fatal(err)
	}

	v, _ := a.FieldByName("tag")
	if v.MustInt() != 1 {
		t.Fatalf("tag after rollback = %v", v)
	}
	nv, _ := a.FieldByName("next")
	if !nv.IsNil() {
		t.Fatalf("next after rollback = %v", nv)
	}
	root, _ := rt.Root("x")
	if eq, _ := rt.RefEqual(root, a.RefTo()); !eq {
		t.Fatal("root x not restored")
	}
	if _, ok := rt.Root("fresh"); ok {
		t.Fatal("root created in transaction survived rollback")
	}
	if m.Rollbacks() != 1 {
		t.Fatalf("rollbacks = %d", m.Rollbacks())
	}
}

func TestRollbackAcrossSwapOut(t *testing.T) {
	// Write in a transaction, swap the cluster out, roll back: the cluster
	// faults back and the original value is restored.
	rt, cls := fixture(t)
	m := New(rt)
	c := rt.Manager().NewCluster()
	o, _ := rt.NewObject(cls, c)
	o.MustSet("tag", heap.Int(5))
	_ = rt.SetRoot("x", o.RefTo())

	if err := m.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := m.Set(o.RefTo(), "tag", heap.Int(42)); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.SwapOut(c); err != nil {
		t.Fatal(err)
	}
	rt.Collect()
	if err := m.Rollback(); err != nil {
		t.Fatal(err)
	}
	root, _ := rt.Root("x")
	out, err := rt.Invoke(root, "tag")
	if err != nil {
		t.Fatal(err)
	}
	if out[0].MustInt() != 5 {
		t.Fatalf("tag after rollback-through-swap = %v", out[0])
	}
}

func TestTransactionStateMachine(t *testing.T) {
	rt, cls := fixture(t)
	m := New(rt)
	c := rt.Manager().NewCluster()
	o, _ := rt.NewObject(cls, c)

	if err := m.Set(o.RefTo(), "tag", heap.Int(1)); !errors.Is(err, ErrNoTransaction) {
		t.Errorf("Set outside txn: %v", err)
	}
	if err := m.Commit(); !errors.Is(err, ErrNoTransaction) {
		t.Errorf("Commit outside txn: %v", err)
	}
	if err := m.Rollback(); !errors.Is(err, ErrNoTransaction) {
		t.Errorf("Rollback outside txn: %v", err)
	}
	if err := m.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := m.Begin(); !errors.Is(err, ErrNested) {
		t.Errorf("nested Begin: %v", err)
	}
	_ = m.Commit()
}

func TestRunHelper(t *testing.T) {
	rt, cls := fixture(t)
	m := New(rt)
	c := rt.Manager().NewCluster()
	o, _ := rt.NewObject(cls, c)
	_ = rt.SetRoot("x", o.RefTo())

	// Success path commits.
	if err := m.Run(func(tx *Manager) error {
		return tx.Set(o.RefTo(), "tag", heap.Int(10))
	}); err != nil {
		t.Fatal(err)
	}
	v, _ := o.FieldByName("tag")
	if v.MustInt() != 10 {
		t.Fatalf("tag = %v", v)
	}
	// Failure path rolls back.
	boom := errors.New("boom")
	err := m.Run(func(tx *Manager) error {
		if err := tx.Set(o.RefTo(), "tag", heap.Int(77)); err != nil {
			return err
		}
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("Run error = %v", err)
	}
	v, _ = o.FieldByName("tag")
	if v.MustInt() != 10 {
		t.Fatalf("tag after aborted Run = %v", v)
	}
	if m.Commits() != 1 || m.Rollbacks() != 1 {
		t.Fatalf("counters: %d/%d", m.Commits(), m.Rollbacks())
	}
}

func TestWriteThroughProxyIsTransactional(t *testing.T) {
	// Writes addressed via a cross-cluster proxy reference roll back too.
	rt, cls := fixture(t)
	m := New(rt)
	c1, c2 := rt.Manager().NewCluster(), rt.Manager().NewCluster()
	a, _ := rt.NewObject(cls, c1)
	b, _ := rt.NewObject(cls, c2)
	b.MustSet("tag", heap.Int(3))
	_ = rt.SetFieldValue(a.RefTo(), "next", b.RefTo())
	_ = rt.SetRoot("a", a.RefTo())

	proxyToB, err := rt.Field(heap.Ref(a.ID()), "next")
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := m.Set(proxyToB, "tag", heap.Int(300)); err != nil {
		t.Fatal(err)
	}
	if err := m.Rollback(); err != nil {
		t.Fatal(err)
	}
	v, _ := b.FieldByName("tag")
	if v.MustInt() != 3 {
		t.Fatalf("tag after rollback via proxy = %v", v)
	}
}
