// Package txn implements OBIWAN's Transactional Support module (Figure 1 of
// the paper): local, undo-log transactions over the managed object graph.
//
// The swapping paper leaves replica consistency to the companion OBIWAN work
// ("loosely-coupled, mobile replication of objects with transactions"), but
// the module exists in the architecture and matters to swapping in one
// concrete way: a transaction's write set must stay consistent even when the
// middleware swaps clusters in and out mid-transaction. This implementation
// provides exactly that — field-level undo records captured through the
// swapping-aware runtime, so a rollback faults any swapped cluster back in
// and restores the original values through the same mediation as any other
// write.
//
// Transactions are local and single-threaded, like the runtime: one open
// transaction per Txn manager, no isolation levels — Begin / write / Commit
// or Rollback.
package txn

import (
	"errors"
	"fmt"

	"objectswap/internal/core"
	"objectswap/internal/heap"
)

// Errors reported by the transaction manager.
var (
	// ErrNoTransaction reports a write/commit/rollback without Begin.
	ErrNoTransaction = errors.New("txn: no transaction in progress")
	// ErrNested reports a Begin inside an open transaction.
	ErrNested = errors.New("txn: transaction already in progress")
)

// undoRecord remembers one overwritten slot.
type undoRecord struct {
	target heap.ObjID // ultimate object identity
	field  string
	before heap.Value
}

// rootUndo remembers one overwritten global.
type rootUndo struct {
	name    string
	before  heap.Value
	existed bool
}

// Manager runs transactions over a swapping runtime.
type Manager struct {
	rt *core.Runtime

	open  bool
	undo  []undoRecord
	roots []rootUndo

	commits   uint64
	rollbacks uint64
}

// New builds a transaction manager over rt.
func New(rt *core.Runtime) *Manager {
	return &Manager{rt: rt}
}

// Begin opens a transaction.
func (m *Manager) Begin() error {
	if m.open {
		return ErrNested
	}
	m.open = true
	m.undo = m.undo[:0]
	m.roots = m.roots[:0]
	return nil
}

// InTransaction reports whether a transaction is open.
func (m *Manager) InTransaction() bool { return m.open }

// Commits and Rollbacks report lifetime counters.
func (m *Manager) Commits() uint64   { return m.commits }
func (m *Manager) Rollbacks() uint64 { return m.rollbacks }

// Set writes a field transactionally: the previous value is recorded for
// rollback, then the write goes through the swapping-aware runtime (so
// cross-cluster references are mediated and swapped clusters fault in).
func (m *Manager) Set(target heap.Value, field string, v heap.Value) error {
	if !m.open {
		return ErrNoTransaction
	}
	obj, err := m.rt.Deref(target)
	if err != nil {
		return fmt.Errorf("txn: resolve write target: %w", err)
	}
	before, err := obj.FieldByName(field)
	if err != nil {
		return err
	}
	if err := m.rt.SetFieldValue(target, field, v); err != nil {
		return err
	}
	m.undo = append(m.undo, undoRecord{target: obj.ID(), field: field, before: before})
	return nil
}

// SetRoot writes a global transactionally.
func (m *Manager) SetRoot(name string, v heap.Value) error {
	if !m.open {
		return ErrNoTransaction
	}
	before, existed := m.rt.Root(name)
	if err := m.rt.SetRoot(name, v); err != nil {
		return err
	}
	m.roots = append(m.roots, rootUndo{name: name, before: before, existed: existed})
	return nil
}

// Commit closes the transaction, keeping every write.
func (m *Manager) Commit() error {
	if !m.open {
		return ErrNoTransaction
	}
	m.open = false
	m.undo = m.undo[:0]
	m.roots = m.roots[:0]
	m.commits++
	return nil
}

// Rollback undoes every write of the open transaction, newest first, and
// closes it. Undo writes flow through the swapping runtime, so clusters
// swapped out since the write fault back in to be restored.
func (m *Manager) Rollback() error {
	if !m.open {
		return ErrNoTransaction
	}
	var firstErr error
	for i := len(m.undo) - 1; i >= 0; i-- {
		rec := m.undo[i]
		if err := m.rt.SetFieldValue(heap.Ref(rec.target), rec.field, rec.before); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("txn: undo @%d.%s: %w", rec.target, rec.field, err)
		}
	}
	for i := len(m.roots) - 1; i >= 0; i-- {
		rec := m.roots[i]
		if !rec.existed {
			m.rt.Heap().DelRoot(rec.name)
			continue
		}
		if err := m.rt.SetRoot(rec.name, rec.before); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("txn: undo root %s: %w", rec.name, err)
		}
	}
	m.open = false
	m.undo = m.undo[:0]
	m.roots = m.roots[:0]
	m.rollbacks++
	return firstErr
}

// Run executes fn inside a transaction: commit on nil, rollback on error
// (the original error is returned; a rollback failure is attached).
func (m *Manager) Run(fn func(tx *Manager) error) error {
	if err := m.Begin(); err != nil {
		return err
	}
	if err := fn(m); err != nil {
		if rerr := m.Rollback(); rerr != nil {
			return fmt.Errorf("%w (rollback: %v)", err, rerr)
		}
		return err
	}
	return m.Commit()
}
