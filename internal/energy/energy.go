// Package energy models the battery cost of middleware activity on a
// constrained device. The paper's central argument against heap compression
// — and for shipping XML to a neighbor instead — is energy: "compression is
// a computational-intensive process" whose CPU load is "paramount in mobile
// devices". This package makes that argument measurable: a Model converts
// CPU time and radio traffic into joules, so the comparator experiments can
// report energy alongside bytes and time.
//
// The default coefficients approximate a 2003-era Pocket PC (XScale-class
// CPU, Bluetooth 1.1 radio); they are deliberately simple — energy scales
// linearly with active CPU time and with radio airtime — which is the
// standard first-order model for such devices.
package energy

import (
	"fmt"
	"time"
)

// Joules is an energy amount.
type Joules float64

// String renders millijoules for the magnitudes middleware operations have.
func (j Joules) String() string {
	return fmt.Sprintf("%.1f mJ", float64(j)*1000)
}

// Millijoules returns the amount in mJ.
func (j Joules) Millijoules() float64 { return float64(j) * 1000 }

// Model holds the device's power coefficients.
type Model struct {
	// CPUActiveWatts is drawn while the CPU computes (compression,
	// serialization, proxy bookkeeping).
	CPUActiveWatts float64
	// RadioTxWatts / RadioRxWatts are drawn while the radio is sending /
	// receiving.
	RadioTxWatts float64
	RadioRxWatts float64
	// RadioBitsPerSecond converts traffic volume into airtime.
	RadioBitsPerSecond int64
}

// PocketPC2003 approximates the paper's prototype platform: a ~400 MHz
// XScale PDA (≈0.4 W active) with a Bluetooth 1.1 radio (≈0.1 W, 700 Kbps).
func PocketPC2003() Model {
	return Model{
		CPUActiveWatts:     0.4,
		RadioTxWatts:       0.12,
		RadioRxWatts:       0.08,
		RadioBitsPerSecond: 700_000,
	}
}

// CPU returns the energy of d of active computation.
func (m Model) CPU(d time.Duration) Joules {
	return Joules(m.CPUActiveWatts * d.Seconds())
}

// Tx returns the energy of transmitting n payload bytes.
func (m Model) Tx(n int64) Joules {
	return Joules(m.RadioTxWatts * m.airtime(n).Seconds())
}

// Rx returns the energy of receiving n payload bytes.
func (m Model) Rx(n int64) Joules {
	return Joules(m.RadioRxWatts * m.airtime(n).Seconds())
}

// airtime converts a payload volume into radio-on time.
func (m Model) airtime(n int64) time.Duration {
	if m.RadioBitsPerSecond <= 0 {
		return 0
	}
	bits := n * 8
	return time.Duration(bits * int64(time.Second) / m.RadioBitsPerSecond)
}

// Transfer returns the total energy of a round trip shipping out and later
// fetching back n bytes.
func (m Model) Transfer(outBytes, inBytes int64) Joules {
	return m.Tx(outBytes) + m.Rx(inBytes)
}
