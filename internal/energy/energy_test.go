package energy

import (
	"strings"
	"testing"
	"time"
)

func TestCPUEnergyLinear(t *testing.T) {
	m := PocketPC2003()
	one := m.CPU(time.Second)
	if float64(one) != 0.4 {
		t.Fatalf("1s CPU = %v J, want 0.4", float64(one))
	}
	two := m.CPU(2 * time.Second)
	if float64(two) != 2*float64(one) {
		t.Fatalf("CPU energy not linear: %v vs %v", two, one)
	}
}

func TestRadioEnergy(t *testing.T) {
	m := PocketPC2003()
	// 87500 bytes = 700000 bits = 1 s of airtime at 700 Kbps.
	tx := m.Tx(87500)
	if float64(tx) != 0.12 {
		t.Fatalf("1s TX = %v J, want 0.12", float64(tx))
	}
	rx := m.Rx(87500)
	if float64(rx) != 0.08 {
		t.Fatalf("1s RX = %v J, want 0.08", float64(rx))
	}
	rt := m.Transfer(87500, 87500)
	if float64(rt) != 0.2 {
		t.Fatalf("round trip = %v J, want 0.20", float64(rt))
	}
}

func TestZeroRadioModel(t *testing.T) {
	m := Model{CPUActiveWatts: 1}
	if m.Tx(1<<20) != 0 {
		t.Fatal("radio-less model should cost nothing to transmit")
	}
}

func TestJoulesFormatting(t *testing.T) {
	j := Joules(0.0123)
	if got := j.String(); !strings.Contains(got, "12.3 mJ") {
		t.Fatalf("String = %q", got)
	}
	if j.Millijoules() != 12.3 {
		t.Fatalf("Millijoules = %v", j.Millijoules())
	}
}

func TestCompressionVsSwapEnergyStory(t *testing.T) {
	// The paper's qualitative claim, as arithmetic: compressing 1 MB at a
	// typical ~4 MB/s on a PDA costs more energy than shipping the same
	// megabyte over Bluetooth... does it? 1 MB at 4 MB/s = 0.25 s CPU
	// = 100 mJ; 1 MB over 700 Kbps ≈ 12 s airtime × 0.12 W = 1437 mJ.
	// Radio is costlier per byte — the paper's energy argument is really
	// about compression being PURE overhead (objects stay resident), while
	// swapping buys actual free memory for its joules. The model lets
	// experiments surface exactly these numbers.
	m := PocketPC2003()
	cpu := m.CPU(250 * time.Millisecond)
	radio := m.Transfer(1<<20, 0)
	if cpu <= 0 || radio <= 0 {
		t.Fatal("energies must be positive")
	}
	if radio < cpu {
		t.Fatalf("Bluetooth should dominate per-byte energy: radio %v vs cpu %v", radio, cpu)
	}
}
