package replication

import (
	"context"
	"fmt"
	"sync"

	"objectswap/internal/core"
	"objectswap/internal/event"
	"objectswap/internal/heap"
	"objectswap/internal/xmlcodec"
)

// ClusterEvent is the payload of replication.cluster events.
type ClusterEvent struct {
	// Seed is the remote identity whose fault triggered the shipment.
	Seed heap.ObjID
	// Objects is the number of objects installed.
	Objects int
	// SwapCluster is the swap-cluster the shipment was assigned to.
	SwapCluster core.ClusterID
}

// Stats summarizes a replicator's activity.
type Stats struct {
	Faults           int // object faults taken
	ClustersFetched  int // shipments installed
	ObjectsInstalled int
	ProxiesReplaced  int // object-fault proxies eliminated by replacement
	UpdatesPushed    int // dirty replicas written back to the master
}

// Replicator drives incremental replication on a constrained device. It
// implements core.FaultHandler: install it with Runtime.SetFaultHandler (the
// Attach constructor does so).
type Replicator struct {
	rt        *core.Runtime
	transport Transport

	mu sync.Mutex
	// remoteToLocal maps master identities to local replicas (and
	// localToRemote the reverse, for write-back).
	remoteToLocal map[heap.ObjID]heap.ObjID
	localToRemote map[heap.ObjID]heap.ObjID
	// dirty tracks replicas with unpushed writes.
	dirty map[heap.ObjID]bool
	// groupSize is the number of replication clusters grouped into one
	// swap-cluster (the paper's adaptable macro-object size).
	groupSize int
	current   core.ClusterID
	inCurrent int
	stats     Stats
}

var _ core.FaultHandler = (*Replicator)(nil)

// Option configures a Replicator.
type Option func(*Replicator)

// WithGroupSize sets how many replication clusters share one swap-cluster
// (default 1: every shipment is its own swap-cluster).
func WithGroupSize(n int) Option {
	return func(r *Replicator) {
		if n > 0 {
			r.groupSize = n
		}
	}
}

// Attach builds a replicator over transport and installs it as rt's fault
// handler.
func Attach(rt *core.Runtime, transport Transport, opts ...Option) *Replicator {
	r := &Replicator{
		rt:            rt,
		transport:     transport,
		remoteToLocal: make(map[heap.ObjID]heap.ObjID),
		localToRemote: make(map[heap.ObjID]heap.ObjID),
		dirty:         make(map[heap.ObjID]bool),
		groupSize:     1,
	}
	for _, opt := range opts {
		opt(r)
	}
	rt.SetFaultHandler(r)
	r.enableWriteback()
	return r
}

// SetGroupSize adapts, at runtime, how many future replication clusters are
// grouped into one swap-cluster (the paper's adaptable macro-object size).
// The current group is closed: the next shipment starts a new swap-cluster.
func (r *Replicator) SetGroupSize(n int) {
	if n <= 0 {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.groupSize = n
	r.inCurrent = r.groupSize // force a fresh swap-cluster on next shipment
}

// GroupSize reports the current grouping factor.
func (r *Replicator) GroupSize() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.groupSize
}

// StatsSnapshot returns a copy of the activity counters.
func (r *Replicator) StatsSnapshot() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stats
}

// LocalOf reports the local replica of a master identity, if replicated.
func (r *Replicator) LocalOf(remote heap.ObjID) (heap.ObjID, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	id, ok := r.remoteToLocal[remote]
	return id, ok
}

// ReplicateRoot makes the master's named root available on the device under
// the same root name: as the local replica if already fetched, otherwise as
// an object-fault proxy whose first use replicates its cluster. ctx bounds
// the master round trip.
func (r *Replicator) ReplicateRoot(ctx context.Context, name string) (heap.Value, error) {
	remote, class, err := r.transport.FetchRoot(ctx, name)
	if err != nil {
		return heap.Nil(), err
	}
	r.mu.Lock()
	local, ok := r.remoteToLocal[remote]
	r.mu.Unlock()
	var ref heap.Value
	if ok {
		ref = heap.Ref(local)
	} else {
		pid, err := r.rt.ObjProxyFor(remote, class)
		if err != nil {
			return heap.Nil(), err
		}
		ref = heap.Ref(pid)
	}
	if err := r.rt.SetRoot(name, ref); err != nil {
		return heap.Nil(), err
	}
	v, _ := r.rt.Root(name)
	return v, nil
}

// Prefetch eagerly replicates up to maxObjects objects reachable from the
// named master root — hoarding for disconnected operation: after a prefetch,
// traversals within the hoarded region need no connectivity to the master
// (swapping to nearby devices still works, and the catalogue survives master
// loss entirely once fully hoarded). It returns the number of objects
// installed by this call. ctx bounds the whole hoarding sweep: it is checked
// between shipments and passed to every fetch.
func (r *Replicator) Prefetch(ctx context.Context, rootName string, maxObjects int) (int, error) {
	if _, err := r.ReplicateRoot(ctx, rootName); err != nil {
		return 0, err
	}
	before := r.StatsSnapshot().ObjectsInstalled
	for {
		installed := r.StatsSnapshot().ObjectsInstalled - before
		if maxObjects > 0 && installed >= maxObjects {
			return installed, nil
		}
		if err := ctx.Err(); err != nil {
			return installed, err
		}
		// Find any live object-fault placeholder and fault it in. The sweep
		// in replicateCluster keeps replacing resolved ones, so each round
		// makes progress toward a fully hoarded graph.
		pid, ok := r.nextPlaceholder()
		if !ok {
			return installed, nil // fully hoarded
		}
		p, err := r.rt.Heap().Get(pid)
		if err != nil {
			continue
		}
		if _, err := r.handleFault(ctx, p); err != nil {
			return r.StatsSnapshot().ObjectsInstalled - before, err
		}
	}
}

// nextPlaceholder returns a live object-fault proxy reachable from the
// application graph, if any.
func (r *Replicator) nextPlaceholder() (heap.ObjID, bool) {
	h := r.rt.Heap()
	reach := h.ReachableFromRoots()
	ids := h.IDs()
	for _, oid := range ids {
		if !reach[oid] {
			continue
		}
		o, err := h.Get(oid)
		if err != nil {
			continue
		}
		if o.Class().Special == heap.SpecialObjProxy {
			return oid, true
		}
	}
	return heap.NilID, false
}

// HandleFault implements core.FaultHandler: it replicates the cluster
// containing the proxy's remote target and returns a reference to the local
// replica. Faults triggered by application traversal carry no caller
// context, so the fetch runs unbounded (context.Background); Prefetch routes
// through handleFault directly to keep its context.
func (r *Replicator) HandleFault(rt *core.Runtime, proxy *heap.Object) (heap.Value, error) {
	return r.handleFault(context.Background(), proxy)
}

// handleFault is HandleFault with an explicit context.
func (r *Replicator) handleFault(ctx context.Context, proxy *heap.Object) (heap.Value, error) {
	remote := core.ObjProxyRemote(proxy)
	r.mu.Lock()
	r.stats.Faults++
	local, done := r.remoteToLocal[remote]
	r.mu.Unlock()
	if done {
		// Already replicated (the proxy is a stale alias awaiting sweep).
		return heap.Ref(local), nil
	}
	if err := r.replicateCluster(ctx, remote); err != nil {
		return heap.Nil(), err
	}
	r.mu.Lock()
	local, done = r.remoteToLocal[remote]
	r.mu.Unlock()
	if !done {
		return heap.Nil(), fmt.Errorf("replication: shipment for @%d did not contain it", remote)
	}
	return heap.Ref(local), nil
}

// replicateCluster fetches and installs the shipment containing remote.
func (r *Replicator) replicateCluster(ctx context.Context, remote heap.ObjID) error {
	doc, err := r.transport.FetchCluster(ctx, remote)
	if err != nil {
		return fmt.Errorf("replication: fetch cluster of @%d: %w", remote, err)
	}

	// Installation and proxy-replacement writes are not user mutations:
	// preserve the dirty set as it was when the fault began. (User code
	// cannot interleave — replication runs inside the fault.)
	r.mu.Lock()
	preDirty := make(map[heap.ObjID]bool, len(r.dirty))
	for id := range r.dirty {
		preDirty[id] = true
	}
	r.mu.Unlock()
	defer func() {
		r.mu.Lock()
		r.dirty = preDirty
		r.mu.Unlock()
	}()

	// Pick the swap-cluster this shipment joins.
	r.mu.Lock()
	if r.current == core.RootCluster || r.inCurrent >= r.groupSize {
		r.current = r.rt.Manager().NewCluster()
		r.inCurrent = 0
	}
	sc := r.current
	r.inCurrent++
	r.mu.Unlock()

	// Pass 1: allocate local replicas under fresh local identities.
	type pending struct {
		local *heap.Object
		enc   xmlcodec.Object
	}
	installed := make([]pending, 0, len(doc.Objects))
	newLocal := make(map[heap.ObjID]heap.ObjID, len(doc.Objects))
	h := r.rt.Heap()
	// Replicas are unreachable until pass 2 links them; pin them across any
	// eviction-triggered collection in the meantime.
	defer func() {
		for _, p := range installed {
			h.Unpin(p.local.ID())
		}
	}()
	for _, eo := range doc.Objects {
		// Clusters may overlap (shared subgraphs reached from several
		// seeds); an object replicated earlier keeps its single replica.
		r.mu.Lock()
		_, exists := r.remoteToLocal[eo.ID]
		r.mu.Unlock()
		if exists {
			continue
		}
		cls, err := r.rt.Registry().Lookup(eo.Class)
		if err != nil {
			return fmt.Errorf("replication: shipment class: %w", err)
		}
		o, err := r.rt.NewObject(cls, sc)
		if err != nil {
			return fmt.Errorf("replication: install replica of @%d: %w", eo.ID, err)
		}
		h.Pin(o.ID())
		newLocal[eo.ID] = o.ID()
		installed = append(installed, pending{local: o, enc: eo})
	}
	r.mu.Lock()
	for remoteID, localID := range newLocal {
		r.remoteToLocal[remoteID] = localID
		r.localToRemote[localID] = remoteID
	}
	lookup := make(map[heap.ObjID]heap.ObjID, len(r.remoteToLocal))
	for k, v := range r.remoteToLocal {
		lookup[k] = v
	}
	r.stats.ClustersFetched++
	r.stats.ObjectsInstalled += len(installed)
	r.mu.Unlock()

	// Pass 2: decode fields. Internal references resolve through the fresh
	// replicas; remote references resolve to existing replicas (possibly in
	// other swap-clusters — SetFieldValue re-mediates them with
	// swap-cluster-proxies) or to object-fault proxies.
	decodeRef := func(v xmlcodec.Value) (heap.Value, error) {
		switch v.RefClass {
		case xmlcodec.RefRemote:
			if localID, ok := lookup[v.Target]; ok {
				return heap.Ref(localID), nil
			}
			pid, err := r.rt.ObjProxyFor(v.Target, v.Class)
			if err != nil {
				return heap.Nil(), err
			}
			return heap.Ref(pid), nil
		default:
			return heap.Nil(), fmt.Errorf("replication: unexpected reference class %v", v.RefClass)
		}
	}
	for _, p := range installed {
		for _, f := range p.enc.Fields {
			// Internal refs name master identities; rewrite them through the
			// full replica map (overlapping shipments may reference replicas
			// installed by earlier clusters).
			fv := rewriteInternal(f.Value, lookup)
			hv, err := fv.ToHeapValue(decodeRef)
			if err != nil {
				return fmt.Errorf("replication: field %s of replica @%d: %w", f.Name, p.local.ID(), err)
			}
			if err := r.rt.SetFieldValue(p.local.RefTo(), f.Name, hv); err != nil {
				return fmt.Errorf("replication: field %s of replica @%d: %w", f.Name, p.local.ID(), err)
			}
		}
	}

	// Pass 3: proxy replacement — eliminate object-fault proxies that now
	// have local replicas, from every resident object and root.
	r.replaceProxies(lookup)

	if bus := r.rt.Bus(); bus != nil {
		bus.Emit(event.TopicClusterReplicated, ClusterEvent{
			Seed:        remote,
			Objects:     len(installed),
			SwapCluster: sc,
		})
	}
	return nil
}

// rewriteInternal maps the internal (master-identity) references of an
// encoded value onto the fresh local identities.
func rewriteInternal(v xmlcodec.Value, newLocal map[heap.ObjID]heap.ObjID) xmlcodec.Value {
	switch {
	case v.Kind == heap.KindRef && v.RefClass == xmlcodec.RefInternal:
		if localID, ok := newLocal[v.Target]; ok {
			return xmlcodec.InternalRef(localID)
		}
		return v
	case v.Kind == heap.KindList:
		out := v
		out.List = make([]xmlcodec.Value, len(v.List))
		for i, e := range v.List {
			out.List[i] = rewriteInternal(e, newLocal)
		}
		return out
	default:
		return v
	}
}

// replaceProxies sweeps the device graph replacing resolved object-fault
// proxies: each reference to a proxy whose remote identity now has a local
// replica is rewritten to target the replica (re-mediated by a
// swap-cluster-proxy when it crosses a swap-cluster boundary). This is the
// paper's proxy-replacement step, after which no replication indirection
// remains on replicated paths.
func (r *Replicator) replaceProxies(lookup map[heap.ObjID]heap.ObjID) {
	h := r.rt.Heap()
	replaced := 0

	resolve := func(rid heap.ObjID) (heap.ObjID, bool) {
		o, err := h.Get(rid)
		if err != nil || o.Class().Special != heap.SpecialObjProxy {
			return heap.NilID, false
		}
		localID, ok := lookup[core.ObjProxyRemote(o)]
		return localID, ok
	}

	for _, oid := range h.IDs() {
		o, err := h.Get(oid)
		if err != nil || o.Class().Special != heap.SpecialNone {
			continue
		}
		for i := 0; i < o.NumFields(); i++ {
			v := o.Field(i)
			if v.Kind() != heap.KindRef && v.Kind() != heap.KindList {
				continue
			}
			dirty := false
			nv := v.MapRefs(func(rid heap.ObjID) heap.ObjID {
				if localID, ok := resolve(rid); ok {
					dirty = true
					replaced++
					return localID
				}
				return rid
			})
			if dirty {
				// SetFieldValue re-mediates cross-cluster references.
				if err := r.rt.SetFieldValue(o.RefTo(), o.Class().Field(i).Name, nv); err != nil {
					continue
				}
			}
		}
	}
	for _, name := range h.RootNames() {
		v, _ := h.Root(name)
		if v.Kind() != heap.KindRef && v.Kind() != heap.KindList {
			continue
		}
		dirty := false
		nv := v.MapRefs(func(rid heap.ObjID) heap.ObjID {
			if localID, ok := resolve(rid); ok {
				dirty = true
				replaced++
				return localID
			}
			return rid
		})
		if dirty {
			_ = r.rt.SetRoot(name, nv)
		}
	}

	r.mu.Lock()
	r.stats.ProxiesReplaced += replaced
	r.mu.Unlock()
}
