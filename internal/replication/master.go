// Package replication implements OBIWAN's incremental object replication:
// the substrate Object-Swapping is built on.
//
// A well-resourced master node holds the authoritative object graph.
// Constrained devices replicate it incrementally, in clusters of adaptable
// size: objects not yet replicated are represented by object-fault proxies
// transparent to application code; invoking one fetches the cluster of
// objects containing the target (wrapped in XML, as everything OBIWAN ships),
// installs them locally, and then performs proxy replacement — the fetched
// proxies disappear from the graph so the application thereafter runs at
// full speed, except that references crossing swap-cluster boundaries are
// re-mediated by permanent swap-cluster-proxies.
//
// Swap-cluster formation happens here too: each replicated cluster is
// assigned to a swap-cluster, grouping a configurable number of replication
// clusters per swap-cluster (the paper's "number (also adaptable) of chained
// object clusters" regarded as a single macro-object).
package replication

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"objectswap/internal/heap"
	"objectswap/internal/xmlcodec"
)

// Errors reported by the replication module.
var (
	// ErrUnknownRoot reports a named root absent from the master.
	ErrUnknownRoot = errors.New("replication: unknown root")
	// ErrUnknownObject reports a cluster request for an id the master does
	// not hold.
	ErrUnknownObject = errors.New("replication: unknown object")
)

// Transport fetches graph shipments from a master node. Implementations:
// Master (in-process) and Client (HTTP web-services bridge). Every fetch
// takes a context so callers can bound transfers over flaky links; transports
// written against the original context-free contract plug in through
// LegacyTransport.
type Transport interface {
	// FetchRoot resolves a named root on the master to its object identity
	// and class.
	FetchRoot(ctx context.Context, name string) (heap.ObjID, string, error)
	// FetchCluster returns the wrapped cluster of objects containing id.
	FetchCluster(ctx context.Context, id heap.ObjID) (*xmlcodec.Doc, error)
}

// Master is the authoritative node: it owns the source object graph (on an
// unconstrained heap) and serves it in BFS clusters of ClusterSize objects.
type Master struct {
	mu          sync.Mutex
	h           *heap.Heap
	rt          *heap.DirectRuntime
	reg         *heap.Registry
	clusterSize int
	fetches     int
}

// NewMaster builds a master over its own unconstrained heap. clusterSize is
// the number of objects shipped per object fault (the paper evaluates 20, 50
// and 100).
func NewMaster(reg *heap.Registry, clusterSize int) *Master {
	if clusterSize <= 0 {
		clusterSize = 50
	}
	h := heap.New(0)
	return &Master{
		h:           h,
		rt:          heap.NewDirectRuntime(h),
		reg:         reg,
		clusterSize: clusterSize,
	}
}

// Heap exposes the master's heap for graph construction.
func (m *Master) Heap() *heap.Heap { return m.h }

// Runtime exposes the master's direct (non-swapping) runtime.
func (m *Master) Runtime() *heap.DirectRuntime { return m.rt }

// Registry exposes the shared class registry.
func (m *Master) Registry() *heap.Registry { return m.reg }

// ClusterSize reports the configured shipment size.
func (m *Master) ClusterSize() int { return m.clusterSize }

// Fetches reports how many cluster shipments the master has served.
func (m *Master) Fetches() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.fetches
}

// FetchRoot implements Transport. The in-process master cannot block, so the
// context is only checked for prior cancellation.
func (m *Master) FetchRoot(ctx context.Context, name string) (heap.ObjID, string, error) {
	if err := ctx.Err(); err != nil {
		return heap.NilID, "", err
	}
	v, ok := m.h.Root(name)
	if !ok {
		return heap.NilID, "", fmt.Errorf("%w: %q", ErrUnknownRoot, name)
	}
	id, err := v.Ref()
	if err != nil || id == heap.NilID {
		return heap.NilID, "", fmt.Errorf("%w: root %q is not an object reference", ErrUnknownRoot, name)
	}
	o, err := m.h.Get(id)
	if err != nil {
		return heap.NilID, "", err
	}
	return id, o.Class().Name, nil
}

// FetchCluster implements Transport: it serves the BFS cluster of up to
// ClusterSize objects rooted at id. References leaving the shipment are
// encoded as remote references carrying the target's class, so the receiver
// can synthesize object-fault proxies without further round trips.
func (m *Master) FetchCluster(ctx context.Context, id heap.ObjID) (*xmlcodec.Doc, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	m.mu.Lock()
	m.fetches++
	m.mu.Unlock()

	seed, err := m.h.Get(id)
	if err != nil {
		return nil, fmt.Errorf("%w: @%d", ErrUnknownObject, id)
	}

	// Deterministic BFS over the reference graph.
	members := map[heap.ObjID]bool{id: true}
	order := []heap.ObjID{id}
	queue := []*heap.Object{seed}
	for len(queue) > 0 && len(order) < m.clusterSize {
		o := queue[0]
		queue = queue[1:]
		var edges []heap.ObjID
		for i := 0; i < o.NumFields(); i++ {
			o.Field(i).MapRefs(func(rid heap.ObjID) heap.ObjID {
				if rid != heap.NilID {
					edges = append(edges, rid)
				}
				return rid
			})
		}
		sort.Slice(edges, func(i, j int) bool { return edges[i] < edges[j] })
		for _, rid := range edges {
			if len(order) >= m.clusterSize || members[rid] {
				continue
			}
			ro, err := m.h.Get(rid)
			if err != nil {
				return nil, fmt.Errorf("replication: dangling edge @%d: %w", rid, err)
			}
			members[rid] = true
			order = append(order, rid)
			queue = append(queue, ro)
		}
	}

	objs := make([]*heap.Object, 0, len(order))
	for _, oid := range order {
		o, _ := m.h.Get(oid)
		objs = append(objs, o)
	}
	encodeRef := func(rid heap.ObjID) (xmlcodec.Value, error) {
		if members[rid] {
			return xmlcodec.InternalRef(rid), nil
		}
		ro, err := m.h.Get(rid)
		if err != nil {
			return xmlcodec.Value{}, fmt.Errorf("replication: dangling edge @%d: %w", rid, err)
		}
		return xmlcodec.RemoteRefOf(rid, ro.Class().Name), nil
	}
	key := fmt.Sprintf("replcluster-%d", id)
	return xmlcodec.EncodeObjects(key, objs, encodeRef)
}

var _ Transport = (*Master)(nil)
