package replication

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"objectswap/internal/core"
	"objectswap/internal/heap"
	"objectswap/internal/xmlcodec"
)

// Write-back: the "update of object replicas" half of OBIWAN's replication
// core interfaces (Section 2 of the paper). The replicator tracks dirty
// replicas through the heap's write observer and pushes their current state
// back to the master in master-identity XML wrappers. Reconciliation policy
// is last-writer-wins, as in OBIWAN's loosely-coupled replication: the
// master applies whatever arrives.

// ErrUpdatesUnsupported reports a transport without a write-back channel.
var ErrUpdatesUnsupported = errors.New("replication: transport does not support updates")

// ErrUnsyncedReference reports a dirty replica referencing a device-local
// object the master has no identity for.
var ErrUnsyncedReference = errors.New("replication: reference to unreplicated local object")

// UpdateTransport is the optional write-back channel of a Transport.
type UpdateTransport interface {
	// PushCluster applies an update document (objects named by master
	// identities) on the master. ctx bounds the round trip.
	PushCluster(ctx context.Context, doc *xmlcodec.Doc) error
}

// enableWriteback installs the dirty-tracking observer. Called by Attach.
func (r *Replicator) enableWriteback() {
	r.rt.Heap().SetWriteObserver(func(id heap.ObjID) {
		r.mu.Lock()
		if _, isReplica := r.localToRemote[id]; isReplica {
			r.dirty[id] = true
		}
		r.mu.Unlock()
	})
}

// DirtyCount reports how many replicas have unpushed writes.
func (r *Replicator) DirtyCount() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.dirty)
}

// PushUpdates ships the current state of every dirty replica back to the
// master and clears the dirty set. It returns the number of objects pushed.
// Replicas that are currently swapped out are faulted back in first (their
// state on the swapping device is the state to push). ctx bounds the push.
func (r *Replicator) PushUpdates(ctx context.Context) (int, error) {
	ut, ok := r.transport.(UpdateTransport)
	if !ok {
		return 0, ErrUpdatesUnsupported
	}

	r.mu.Lock()
	ids := make([]heap.ObjID, 0, len(r.dirty))
	for id := range r.dirty {
		ids = append(ids, id)
	}
	reverse := make(map[heap.ObjID]heap.ObjID, len(r.localToRemote))
	for l, m := range r.localToRemote {
		reverse[l] = m
	}
	r.mu.Unlock()
	if len(ids) == 0 {
		return 0, nil
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	// Encode each dirty replica under its MASTER identity; references are
	// rewritten into the master namespace.
	encodeRef := func(rid heap.ObjID) (xmlcodec.Value, error) {
		ultimate := rid
		if o, err := r.rt.Heap().Get(rid); err == nil {
			if target, isProxy := core.ProxyTarget(o); isProxy {
				// Resolve through the proxy to the replica it mediates.
				ultimate = target
			} else if o.Class().Special == heap.SpecialObjProxy {
				// Un-replicated edge: the placeholder IS a master identity.
				return xmlcodec.RemoteRef(core.ObjProxyRemote(o)), nil
			}
		}
		master, known := reverse[ultimate]
		if !known {
			return xmlcodec.Value{}, fmt.Errorf("%w: @%d", ErrUnsyncedReference, ultimate)
		}
		return xmlcodec.RemoteRef(master), nil
	}

	doc := &xmlcodec.Doc{ClusterID: "update-" + r.rt.Name(), Version: xmlcodec.Version}
	pushed := make([]heap.ObjID, 0, len(ids))
	for _, id := range ids {
		o, err := r.rt.Heap().Get(id)
		if err != nil {
			// The replica is swapped out: fault it in to read its state.
			ro, derr := r.rt.Deref(heap.Ref(id))
			if derr != nil {
				return 0, fmt.Errorf("replication: dirty replica @%d unavailable: %w", id, derr)
			}
			o = ro
		}
		eo, err := xmlcodec.EncodeObject(o, encodeRef)
		if err != nil {
			return 0, err
		}
		r.mu.Lock()
		master := r.localToRemote[id]
		r.mu.Unlock()
		eo.ID = master
		doc.Objects = append(doc.Objects, eo)
		pushed = append(pushed, id)
	}

	if err := ut.PushCluster(ctx, doc); err != nil {
		return 0, fmt.Errorf("replication: push updates: %w", err)
	}
	r.mu.Lock()
	for _, id := range pushed {
		delete(r.dirty, id)
	}
	r.stats.UpdatesPushed += len(pushed)
	r.mu.Unlock()
	return len(pushed), nil
}

// ApplyUpdate applies an update document on the master: every contained
// object names a master identity; its fields replace the master's
// (last-writer-wins).
func (m *Master) ApplyUpdate(doc *xmlcodec.Doc) error {
	if doc == nil || doc.Version != xmlcodec.Version {
		return errors.New("replication: bad update document")
	}
	decodeRef := func(v xmlcodec.Value) (heap.Value, error) {
		if v.RefClass != xmlcodec.RefRemote {
			return heap.Nil(), errors.New("replication: update refs must be master identities")
		}
		if !m.h.Contains(v.Target) {
			return heap.Nil(), fmt.Errorf("%w: @%d", ErrUnknownObject, v.Target)
		}
		return heap.Ref(v.Target), nil
	}
	for _, eo := range doc.Objects {
		o, err := m.h.Get(eo.ID)
		if err != nil {
			return fmt.Errorf("replication: update for unknown master object @%d", eo.ID)
		}
		if o.Class().Name != eo.Class {
			return fmt.Errorf("replication: update class mismatch for @%d: %s vs %s",
				eo.ID, eo.Class, o.Class().Name)
		}
		for _, f := range eo.Fields {
			hv, err := f.Value.ToHeapValue(decodeRef)
			if err != nil {
				return err
			}
			if err := o.SetFieldByName(f.Name, hv); err != nil {
				return err
			}
		}
	}
	return nil
}

// PushCluster implements UpdateTransport for the in-process master.
func (m *Master) PushCluster(ctx context.Context, doc *xmlcodec.Doc) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return m.ApplyUpdate(doc)
}

var _ UpdateTransport = (*Master)(nil)
