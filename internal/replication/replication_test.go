package replication

import (
	"context"
	"errors"
	"net/http/httptest"
	"testing"

	"objectswap/internal/core"
	"objectswap/internal/event"
	"objectswap/internal/heap"
	"objectswap/internal/store"
)

// nodeClass mirrors the list-node class of the core tests.
func nodeClass() *heap.Class {
	c := heap.NewClass("Node",
		heap.FieldDef{Name: "next", Kind: heap.KindRef},
		heap.FieldDef{Name: "tag", Kind: heap.KindInt},
	)
	c.AddMethod("tag", func(call *heap.Call) ([]heap.Value, error) {
		v, err := call.Self.FieldByName("tag")
		if err != nil {
			return nil, err
		}
		return []heap.Value{v}, nil
	})
	c.AddMethod("next", func(call *heap.Call) ([]heap.Value, error) {
		v, err := call.Self.FieldByName("next")
		if err != nil {
			return nil, err
		}
		return []heap.Value{v}, nil
	})
	c.AddMethod("walk", func(call *heap.Call) ([]heap.Value, error) {
		depth, _ := call.Arg(0).Int()
		next, _ := call.Self.FieldByName("next")
		if next.IsNil() {
			return []heap.Value{heap.Int(depth)}, nil
		}
		return call.RT.Invoke(next, "walk", heap.Int(depth+1))
	})
	return c
}

// buildMaster creates a master holding an n-node list rooted at "head".
func buildMaster(t testing.TB, n, clusterSize int) *Master {
	t.Helper()
	reg := heap.NewRegistry()
	reg.MustRegister(nodeClass())
	m := NewMaster(reg, clusterSize)
	var prev *heap.Object
	cls, _ := reg.Lookup("Node")
	for i := 0; i < n; i++ {
		o, err := m.Heap().New(cls)
		if err != nil {
			t.Fatal(err)
		}
		o.MustSet("tag", heap.Int(int64(i)))
		if prev == nil {
			m.Heap().SetRoot("head", o.RefTo())
		} else {
			prev.MustSet("next", o.RefTo())
		}
		prev = o
	}
	return m
}

// newDevice builds a constrained-device runtime sharing the master's class
// registry (its own instance of the same classes).
func newDevice(t testing.TB, capacity int64) *core.Runtime {
	t.Helper()
	reg := heap.NewRegistry()
	devices := store.NewRegistry(store.SelectMostFree)
	_ = devices.Add("neighbor", store.NewMem(0))
	rt := core.NewRuntime(heap.New(capacity), reg, core.WithStores(devices))
	rt.MustRegisterClass(nodeClass())
	return rt
}

func TestReplicateRootCreatesFaultProxy(t *testing.T) {
	m := buildMaster(t, 30, 10)
	rt := newDevice(t, 0)
	r := Attach(rt, m)

	v, err := r.ReplicateRoot(context.Background(), "head")
	if err != nil {
		t.Fatal(err)
	}
	if v.IsNil() {
		t.Fatal("root is nil")
	}
	// Nothing replicated yet: just one fault proxy.
	if got := r.StatsSnapshot().ObjectsInstalled; got != 0 {
		t.Fatalf("objects installed before any use: %d", got)
	}
	if rt.Manager().ObjProxyCount() != 1 {
		t.Fatalf("object-fault proxies = %d, want 1", rt.Manager().ObjProxyCount())
	}
	if _, err := r.ReplicateRoot(context.Background(), "ghost"); !errors.Is(err, ErrUnknownRoot) {
		t.Fatalf("unknown root: %v", err)
	}
}

func TestFaultReplicatesWholeCluster(t *testing.T) {
	m := buildMaster(t, 30, 10)
	rt := newDevice(t, 0)
	r := Attach(rt, m)
	v, err := r.ReplicateRoot(context.Background(), "head")
	if err != nil {
		t.Fatal(err)
	}

	// First touch faults in the first 10-object cluster.
	out, err := rt.Invoke(v, "tag")
	if err != nil {
		t.Fatal(err)
	}
	if out[0].MustInt() != 0 {
		t.Fatalf("tag = %v", out[0])
	}
	st := r.StatsSnapshot()
	if st.ClustersFetched != 1 || st.ObjectsInstalled != 10 {
		t.Fatalf("stats after first fault: %+v", st)
	}
	if m.Fetches() != 1 {
		t.Fatalf("master fetches = %d", m.Fetches())
	}

	// The root was swept to the local replica: no fault on second use.
	head, _ := rt.Root("head")
	if _, err := rt.Invoke(head, "tag"); err != nil {
		t.Fatal(err)
	}
	if got := r.StatsSnapshot().Faults; got != 1 {
		t.Fatalf("faults = %d, want 1 (replacement failed)", got)
	}
}

func TestIncrementalWalkReplicatesOnDemand(t *testing.T) {
	m := buildMaster(t, 30, 10)
	rt := newDevice(t, 0)
	r := Attach(rt, m)
	v, err := r.ReplicateRoot(context.Background(), "head")
	if err != nil {
		t.Fatal(err)
	}

	out, err := rt.Invoke(v, "walk", heap.Int(1))
	if err != nil {
		t.Fatal(err)
	}
	if out[0].MustInt() != 30 {
		t.Fatalf("walk = %v, want 30", out[0])
	}
	st := r.StatsSnapshot()
	if st.ClustersFetched != 3 || st.ObjectsInstalled != 30 {
		t.Fatalf("stats after full walk: %+v", st)
	}
	// Three shipments → three swap-clusters (group size 1); the boundary
	// edges are mediated by swap-cluster-proxies.
	if rt.Manager().ProxyCount() == 0 {
		t.Fatal("no swap-cluster-proxies at replication-cluster boundaries")
	}
	// All object-fault proxies were replaced and are garbage now.
	rt.Collect()
	if got := rt.Manager().ObjProxyCount(); got != 0 {
		t.Fatalf("live object-fault proxies after full replication: %d", got)
	}
}

func TestGroupSizeFormsLargerSwapClusters(t *testing.T) {
	m := buildMaster(t, 40, 10)
	rt := newDevice(t, 0)
	r := Attach(rt, m, WithGroupSize(2))
	v, err := r.ReplicateRoot(context.Background(), "head")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Invoke(v, "walk", heap.Int(1)); err != nil {
		t.Fatal(err)
	}
	// Four shipments, grouped two per swap-cluster → 2 swap-clusters
	// (plus the root cluster).
	clusters := rt.Manager().Clusters()
	if len(clusters) != 3 {
		t.Fatalf("clusters = %v, want root + 2", clusters)
	}
	for _, info := range rt.Manager().InfoAll() {
		if info.ID == core.RootCluster {
			continue
		}
		if info.Objects != 20 {
			t.Fatalf("swap-cluster %d holds %d objects, want 20", info.ID, info.Objects)
		}
	}
}

func TestReplicatedGraphSwapsOutAndBack(t *testing.T) {
	m := buildMaster(t, 30, 10)
	rt := newDevice(t, 0)
	r := Attach(rt, m)
	v, err := r.ReplicateRoot(context.Background(), "head")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Invoke(v, "walk", heap.Int(1)); err != nil {
		t.Fatal(err)
	}
	// Swap out the middle swap-cluster and walk again.
	clusters := rt.Manager().Clusters()
	victim := clusters[2]
	if _, err := rt.SwapOut(victim); err != nil {
		t.Fatal(err)
	}
	rt.Collect()
	head, _ := rt.Root("head")
	out, err := rt.Invoke(head, "walk", heap.Int(1))
	if err != nil {
		t.Fatal(err)
	}
	if out[0].MustInt() != 30 {
		t.Fatalf("walk after swap cycle = %v", out[0])
	}
	// No extra master fetches: the data came back from the swapping device.
	if m.Fetches() != 3 {
		t.Fatalf("master fetches = %d, want 3", m.Fetches())
	}
}

func TestPartiallyReplicatedClusterSwapsWithRemoteEdges(t *testing.T) {
	// Replicate only the first cluster, then swap it out while it still has
	// an un-replicated (object-fault) edge; reload and continue the walk.
	m := buildMaster(t, 20, 10)
	rt := newDevice(t, 0)
	r := Attach(rt, m)
	v, err := r.ReplicateRoot(context.Background(), "head")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Invoke(v, "tag"); err != nil { // replicates cluster 1 only
		t.Fatal(err)
	}
	if got := r.StatsSnapshot().ObjectsInstalled; got != 10 {
		t.Fatalf("installed = %d, want 10", got)
	}
	clusters := rt.Manager().Clusters()
	if _, err := rt.SwapOut(clusters[1]); err != nil {
		t.Fatal(err)
	}
	rt.Collect()
	// Walking now reloads the swapped cluster, then faults the second
	// shipment through the re-synthesized object-fault proxy.
	head, _ := rt.Root("head")
	out, err := rt.Invoke(head, "walk", heap.Int(1))
	if err != nil {
		t.Fatal(err)
	}
	if out[0].MustInt() != 20 {
		t.Fatalf("walk = %v, want 20", out[0])
	}
}

func TestReplicationEventsPublished(t *testing.T) {
	m := buildMaster(t, 20, 10)
	reg := heap.NewRegistry()
	bus := event.NewBus()
	devices := store.NewRegistry(store.SelectMostFree)
	_ = devices.Add("neighbor", store.NewMem(0))
	rt := core.NewRuntime(heap.New(0), reg, core.WithStores(devices), core.WithBus(bus))
	rt.MustRegisterClass(nodeClass())
	r := Attach(rt, m)

	var events []ClusterEvent
	bus.Subscribe(event.TopicClusterReplicated, func(ev event.Event) {
		events = append(events, ev.Payload.(ClusterEvent))
	})
	v, _ := r.ReplicateRoot(context.Background(), "head")
	if _, err := rt.Invoke(v, "walk", heap.Int(1)); err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 {
		t.Fatalf("replication events = %d, want 2", len(events))
	}
	if events[0].Objects != 10 {
		t.Fatalf("event payload: %+v", events[0])
	}
}

func TestHTTPTransport(t *testing.T) {
	m := buildMaster(t, 30, 10)
	srv := httptest.NewServer(NewHandler(m))
	defer srv.Close()

	rt := newDevice(t, 0)
	client := NewClient(srv.URL)
	r := Attach(rt, client)
	v, err := r.ReplicateRoot(context.Background(), "head")
	if err != nil {
		t.Fatal(err)
	}
	out, err := rt.Invoke(v, "walk", heap.Int(1))
	if err != nil {
		t.Fatal(err)
	}
	if out[0].MustInt() != 30 {
		t.Fatalf("walk over HTTP = %v", out[0])
	}
	// Error paths.
	if _, _, err := client.FetchRoot(context.Background(), "ghost"); !errors.Is(err, ErrUnknownRoot) {
		t.Fatalf("http unknown root: %v", err)
	}
	if _, err := client.FetchCluster(context.Background(), 999999); !errors.Is(err, ErrUnknownObject) {
		t.Fatalf("http unknown object: %v", err)
	}
}

func TestMasterFetchClusterErrors(t *testing.T) {
	m := buildMaster(t, 10, 5)
	if _, err := m.FetchCluster(context.Background(), 424242); !errors.Is(err, ErrUnknownObject) {
		t.Fatalf("unknown object: %v", err)
	}
	if _, _, err := m.FetchRoot(context.Background(), "nope"); !errors.Is(err, ErrUnknownRoot) {
		t.Fatalf("unknown root: %v", err)
	}
}

func TestSharedSubgraphKeepsIdentity(t *testing.T) {
	// Two master roots share a tail; replicating through both must produce
	// ONE local replica per master object (identity preserved).
	reg := heap.NewRegistry()
	reg.MustRegister(nodeClass())
	m := NewMaster(reg, 5)
	cls, _ := reg.Lookup("Node")
	shared, _ := m.Heap().New(cls)
	shared.MustSet("tag", heap.Int(777))
	a, _ := m.Heap().New(cls)
	a.MustSet("tag", heap.Int(1)).MustSet("next", shared.RefTo())
	b, _ := m.Heap().New(cls)
	b.MustSet("tag", heap.Int(2)).MustSet("next", shared.RefTo())
	m.Heap().SetRoot("a", a.RefTo())
	m.Heap().SetRoot("b", b.RefTo())

	rt := newDevice(t, 0)
	r := Attach(rt, m)
	va, err := r.ReplicateRoot(context.Background(), "a")
	if err != nil {
		t.Fatal(err)
	}
	vb, err := r.ReplicateRoot(context.Background(), "b")
	if err != nil {
		t.Fatal(err)
	}
	na, err := rt.Field(va, "next")
	if err != nil {
		t.Fatal(err)
	}
	nb, err := rt.Field(vb, "next")
	if err != nil {
		t.Fatal(err)
	}
	eq, err := rt.RefEqual(na, nb)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Fatal("shared master object produced two distinct replicas")
	}
	tag, err := rt.Field(na, "tag")
	if err != nil {
		t.Fatal(err)
	}
	if tag.MustInt() != 777 {
		t.Fatalf("shared tag = %v", tag)
	}
}

func TestSetGroupSizeAdaptsAtRuntime(t *testing.T) {
	m := buildMaster(t, 60, 10)
	rt := newDevice(t, 0)
	r := Attach(rt, m, WithGroupSize(3))
	if r.GroupSize() != 3 {
		t.Fatalf("group size = %d", r.GroupSize())
	}
	v, err := r.ReplicateRoot(context.Background(), "head")
	if err != nil {
		t.Fatal(err)
	}
	// Pull the first two shipments under group size 3: both join the same
	// swap-cluster.
	if _, err := rt.Invoke(v, "tag"); err != nil {
		t.Fatal(err)
	}
	head, _ := rt.Root("head")
	// Walk 15 deep to force the second shipment.
	cur := head
	for i := 0; i < 15; i++ {
		next, err := rt.Field(cur, "next")
		if err != nil {
			t.Fatal(err)
		}
		cur = next
	}
	clustersBefore := len(rt.Manager().Clusters())

	// Adapt: one shipment per swap-cluster from now on; the current group
	// closes immediately.
	r.SetGroupSize(1)
	r.SetGroupSize(0) // no-op
	if r.GroupSize() != 1 {
		t.Fatalf("group size after adapt = %d", r.GroupSize())
	}
	for i := 0; i < 45; i++ {
		next, err := rt.Field(cur, "next")
		if err != nil {
			t.Fatal(err)
		}
		cur = next
	}
	clustersAfter := len(rt.Manager().Clusters())
	// 4 more shipments arrived after the adaptation; each got its own
	// swap-cluster.
	if clustersAfter-clustersBefore < 3 {
		t.Fatalf("clusters: %d -> %d (adaptation had no effect)", clustersBefore, clustersAfter)
	}
	st := r.StatsSnapshot()
	if st.ObjectsInstalled != 60 {
		t.Fatalf("installed = %d", st.ObjectsInstalled)
	}
}

func TestMasterAccessorsAndLocalOf(t *testing.T) {
	m := buildMaster(t, 10, 5)
	if m.Runtime() == nil || m.Registry() == nil {
		t.Fatal("nil accessor")
	}
	if m.ClusterSize() != 5 {
		t.Fatalf("ClusterSize = %d", m.ClusterSize())
	}
	// Default cluster size kicks in for nonsense values.
	if NewMaster(m.Registry(), -1).ClusterSize() != 50 {
		t.Fatal("default cluster size")
	}

	rt := newDevice(t, 0)
	r := Attach(rt, m)
	headID, _, err := m.FetchRoot(context.Background(), "head")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := r.LocalOf(headID); ok {
		t.Fatal("LocalOf before replication")
	}
	v, _ := r.ReplicateRoot(context.Background(), "head")
	if _, err := rt.Invoke(v, "tag"); err != nil {
		t.Fatal(err)
	}
	local, ok := r.LocalOf(headID)
	if !ok || local == heap.NilID {
		t.Fatalf("LocalOf after replication = %v, %v", local, ok)
	}
}

func TestPrefetchHoardsForDisconnectedOperation(t *testing.T) {
	m := buildMaster(t, 50, 10)
	rt := newDevice(t, 0)
	r := Attach(rt, m)

	// Hoard everything, then take the master away.
	n, err := r.Prefetch(context.Background(), "head", 0)
	if err != nil {
		t.Fatal(err)
	}
	if n != 50 {
		t.Fatalf("prefetched %d objects, want 50", n)
	}
	rt.SetFaultHandler(disconnectedHandler{})

	// Fully local traversal: no faults reach the (gone) master.
	head, _ := rt.Root("head")
	out, err := rt.Invoke(head, "walk", heap.Int(1))
	if err != nil {
		t.Fatal(err)
	}
	if out[0].MustInt() != 50 {
		t.Fatalf("walk disconnected = %v", out[0])
	}
	// Swapping to nearby devices still works while disconnected.
	clusters := rt.Manager().Clusters()
	if _, err := rt.SwapOut(clusters[1]); err != nil {
		t.Fatal(err)
	}
	rt.Collect()
	out, err = rt.Invoke(head, "walk", heap.Int(1))
	if err != nil {
		t.Fatal(err)
	}
	if out[0].MustInt() != 50 {
		t.Fatalf("walk after disconnected swap cycle = %v", out[0])
	}
}

func TestPrefetchBudget(t *testing.T) {
	m := buildMaster(t, 50, 10)
	rt := newDevice(t, 0)
	r := Attach(rt, m)
	n, err := r.Prefetch(context.Background(), "head", 25)
	if err != nil {
		t.Fatal(err)
	}
	// Whole shipments arrive, so the budget rounds up to a multiple of 10.
	if n < 25 || n > 30 {
		t.Fatalf("prefetched %d objects for budget 25", n)
	}
	// A second prefetch with no budget completes the hoard.
	n2, err := r.Prefetch(context.Background(), "head", 0)
	if err != nil {
		t.Fatal(err)
	}
	if n+n2 != 50 {
		t.Fatalf("total hoarded = %d", n+n2)
	}
}

// disconnectedHandler fails every fault: the master is unreachable.
type disconnectedHandler struct{}

func (disconnectedHandler) HandleFault(*core.Runtime, *heap.Object) (heap.Value, error) {
	return heap.Nil(), errors.New("master unreachable")
}
