package replication

import (
	"context"
	"errors"
	"net/http/httptest"
	"testing"

	"objectswap/internal/heap"
	"objectswap/internal/xmlcodec"
)

func TestWritebackScalarUpdate(t *testing.T) {
	m := buildMaster(t, 20, 10)
	rt := newDevice(t, 0)
	r := Attach(rt, m)
	v, _ := r.ReplicateRoot(context.Background(), "head")
	if _, err := rt.Invoke(v, "walk", heap.Int(1)); err != nil {
		t.Fatal(err)
	}
	if r.DirtyCount() != 0 {
		t.Fatalf("dirty after replication = %d", r.DirtyCount())
	}

	// Mutate a replica through the runtime.
	head, _ := rt.Root("head")
	if err := rt.SetFieldValue(head, "tag", heap.Int(777)); err != nil {
		t.Fatal(err)
	}
	if r.DirtyCount() != 1 {
		t.Fatalf("dirty = %d, want 1", r.DirtyCount())
	}

	n, err := r.PushUpdates(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 || r.DirtyCount() != 0 {
		t.Fatalf("pushed %d, dirty %d", n, r.DirtyCount())
	}
	// Verify on the master.
	masterHeadID, _, _ := m.FetchRoot(context.Background(), "head")
	mo, _ := m.Heap().Get(masterHeadID)
	tag, _ := mo.FieldByName("tag")
	if tag.MustInt() != 777 {
		t.Fatalf("master tag = %v", tag)
	}
	if r.StatsSnapshot().UpdatesPushed != 1 {
		t.Fatalf("stats = %+v", r.StatsSnapshot())
	}
}

func TestWritebackReferenceRewiring(t *testing.T) {
	// Rewire a replica's edge to another replica; the master sees the same
	// rewiring in its own identity space.
	m := buildMaster(t, 20, 10)
	rt := newDevice(t, 0)
	r := Attach(rt, m)
	v, _ := r.ReplicateRoot(context.Background(), "head")
	if _, err := rt.Invoke(v, "walk", heap.Int(1)); err != nil {
		t.Fatal(err)
	}

	// Point local head's next at the local tail replica.
	masterHeadID, _, _ := m.FetchRoot(context.Background(), "head")
	localHead, _ := r.LocalOf(masterHeadID)
	// Find the master tail (tag 19) and its replica.
	var masterTail heap.ObjID
	for _, id := range m.Heap().IDs() {
		o, _ := m.Heap().Get(id)
		if tag, _ := o.FieldByName("tag"); tag.MustInt() == 19 {
			masterTail = id
		}
	}
	localTail, ok := r.LocalOf(masterTail)
	if !ok {
		t.Fatal("tail not replicated")
	}
	if err := rt.SetFieldValue(heap.Ref(localHead), "next", heap.Ref(localTail)); err != nil {
		t.Fatal(err)
	}
	if _, err := r.PushUpdates(context.Background()); err != nil {
		t.Fatal(err)
	}
	mo, _ := m.Heap().Get(masterHeadID)
	nv, _ := mo.FieldByName("next")
	if nv.MustRef() != masterTail {
		t.Fatalf("master next = %v, want @%d", nv, masterTail)
	}
	// The master's list is now head->tail: 2 nodes.
	out, err := m.Runtime().Invoke(mo.RefTo(), "walk", heap.Int(1))
	if err != nil {
		t.Fatal(err)
	}
	if out[0].MustInt() != 2 {
		t.Fatalf("master walk = %v", out[0])
	}
}

func TestWritebackRejectsUnsyncedReference(t *testing.T) {
	m := buildMaster(t, 10, 10)
	rt := newDevice(t, 0)
	r := Attach(rt, m)
	v, _ := r.ReplicateRoot(context.Background(), "head")
	if _, err := rt.Invoke(v, "tag"); err != nil {
		t.Fatal(err)
	}
	// A device-local object (no master identity) referenced from a replica.
	cls, _ := rt.Registry().Lookup("Node")
	localOnly, err := rt.NewObject(cls, rt.Manager().NewCluster())
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.SetRoot("keep", localOnly.RefTo()); err != nil {
		t.Fatal(err)
	}
	head, _ := rt.Root("head")
	if err := rt.SetFieldValue(head, "next", localOnly.RefTo()); err != nil {
		t.Fatal(err)
	}
	if _, err := r.PushUpdates(context.Background()); !errors.Is(err, ErrUnsyncedReference) {
		t.Fatalf("push with local-only ref: %v", err)
	}
}

func TestWritebackOverHTTP(t *testing.T) {
	m := buildMaster(t, 20, 10)
	srv := httptest.NewServer(NewHandler(m))
	defer srv.Close()
	rt := newDevice(t, 0)
	r := Attach(rt, NewClient(srv.URL))
	v, _ := r.ReplicateRoot(context.Background(), "head")
	if _, err := rt.Invoke(v, "tag"); err != nil {
		t.Fatal(err)
	}
	head, _ := rt.Root("head")
	if err := rt.SetFieldValue(head, "tag", heap.Int(31337)); err != nil {
		t.Fatal(err)
	}
	if _, err := r.PushUpdates(context.Background()); err != nil {
		t.Fatal(err)
	}
	masterHeadID, _, _ := m.FetchRoot(context.Background(), "head")
	mo, _ := m.Heap().Get(masterHeadID)
	tag, _ := mo.FieldByName("tag")
	if tag.MustInt() != 31337 {
		t.Fatalf("master tag over HTTP = %v", tag)
	}
}

func TestWritebackNoDirtyIsNoop(t *testing.T) {
	m := buildMaster(t, 10, 10)
	rt := newDevice(t, 0)
	r := Attach(rt, m)
	if n, err := r.PushUpdates(context.Background()); err != nil || n != 0 {
		t.Fatalf("empty push = %d, %v", n, err)
	}
}

func TestApplyUpdateValidation(t *testing.T) {
	m := buildMaster(t, 5, 5)
	if err := m.ApplyUpdate(nil); err == nil {
		t.Error("nil update accepted")
	}
	if err := m.ApplyUpdate(&xmlcodec.Doc{Version: xmlcodec.Version, Objects: []xmlcodec.Object{
		{ID: 99999, Class: "Node"},
	}}); err == nil {
		t.Error("update for unknown master object accepted")
	}
	headID, _, _ := m.FetchRoot(context.Background(), "head")
	if err := m.ApplyUpdate(&xmlcodec.Doc{Version: xmlcodec.Version, Objects: []xmlcodec.Object{
		{ID: headID, Class: "WrongClass"},
	}}); err == nil {
		t.Error("class mismatch accepted")
	}
}

func TestWritebackAfterSwapCycle(t *testing.T) {
	// A dirty replica that was swapped out is faulted back and pushed.
	m := buildMaster(t, 20, 10)
	rt := newDevice(t, 0)
	r := Attach(rt, m)
	v, _ := r.ReplicateRoot(context.Background(), "head")
	if _, err := rt.Invoke(v, "walk", heap.Int(1)); err != nil {
		t.Fatal(err)
	}
	head, _ := rt.Root("head")
	if err := rt.SetFieldValue(head, "tag", heap.Int(555)); err != nil {
		t.Fatal(err)
	}
	// Swap the dirty replica's cluster out before pushing.
	clusters := rt.Manager().Clusters()
	if _, err := rt.SwapOut(clusters[1]); err != nil {
		t.Fatal(err)
	}
	rt.Collect()
	n, err := r.PushUpdates(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("pushed %d", n)
	}
	masterHeadID, _, _ := m.FetchRoot(context.Background(), "head")
	mo, _ := m.Heap().Get(masterHeadID)
	tag, _ := mo.FieldByName("tag")
	if tag.MustInt() != 555 {
		t.Fatalf("master tag = %v", tag)
	}
}
