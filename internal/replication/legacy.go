package replication

import (
	"context"

	"objectswap/internal/heap"
	"objectswap/internal/xmlcodec"
)

// ContextFreeTransport is the original replication transport contract, kept
// for third-party masters that predate the context-aware API. Wrap one in
// LegacyTransport to use it as a Transport (mirroring store.Legacy).
type ContextFreeTransport interface {
	FetchRoot(name string) (heap.ObjID, string, error)
	FetchCluster(id heap.ObjID) (*xmlcodec.Doc, error)
}

// contextFreeUpdater is the optional context-free write-back channel of a
// ContextFreeTransport.
type contextFreeUpdater interface {
	PushCluster(doc *xmlcodec.Doc) error
}

// LegacyTransport adapts a context-free transport to the Transport contract.
// The inner transport cannot be interrupted mid-fetch, so the adapter honors
// ctx at the only point it can: it refuses to start an operation on an
// already-done context.
type LegacyTransport struct {
	Inner ContextFreeTransport
}

var _ Transport = LegacyTransport{}
var _ UpdateTransport = LegacyTransport{}

// NewLegacyTransport wraps a context-free transport.
func NewLegacyTransport(t ContextFreeTransport) LegacyTransport {
	return LegacyTransport{Inner: t}
}

// FetchRoot forwards after a cancellation check.
func (l LegacyTransport) FetchRoot(ctx context.Context, name string) (heap.ObjID, string, error) {
	if err := ctx.Err(); err != nil {
		return heap.NilID, "", err
	}
	return l.Inner.FetchRoot(name)
}

// FetchCluster forwards after a cancellation check.
func (l LegacyTransport) FetchCluster(ctx context.Context, id heap.ObjID) (*xmlcodec.Doc, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return l.Inner.FetchCluster(id)
}

// PushCluster forwards after a cancellation check, when the inner transport
// supports write-back.
func (l LegacyTransport) PushCluster(ctx context.Context, doc *xmlcodec.Doc) error {
	up, ok := l.Inner.(contextFreeUpdater)
	if !ok {
		return ErrUpdatesUnsupported
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	return up.PushCluster(doc)
}
