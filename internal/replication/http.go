package replication

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"objectswap/internal/heap"
	"objectswap/internal/obs"
	"objectswap/internal/xmlcodec"
)

// HTTP transport for replication: the paper's prototype bridges devices with
// web services because mobile VMs of the era lacked remote invocation.
// Handler serves a Master; Client is the matching Transport.
//
// Wire protocol:
//
//	GET /repl/root/{name}   -> 200 JSON {"id": N, "class": "..."} | 404
//	GET /repl/cluster/{id}  -> 200 XML wrapper document | 404

// Handler adapts a Master to HTTP.
type Handler struct {
	m *Master
}

var _ http.Handler = (*Handler)(nil)

// NewHandler returns an HTTP handler serving m.
func NewHandler(m *Master) *Handler { return &Handler{m: m} }

type rootResponse struct {
	ID    uint64 `json:"id"`
	Class string `json:"class"`
}

// ServeHTTP implements http.Handler.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method == http.MethodPost && r.URL.Path == "/repl/update" {
		data, err := io.ReadAll(r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		doc, err := xmlcodec.Decode(data)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if err := h.m.ApplyUpdate(doc); err != nil {
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
		w.WriteHeader(http.StatusNoContent)
		return
	}
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	switch {
	case strings.HasPrefix(r.URL.Path, "/repl/root/"):
		raw := strings.TrimPrefix(r.URL.Path, "/repl/root/")
		name, err := url.PathUnescape(raw)
		if err != nil || name == "" {
			http.Error(w, "bad root name", http.StatusBadRequest)
			return
		}
		id, class, err := h.m.FetchRoot(r.Context(), name)
		if errors.Is(err, ErrUnknownRoot) {
			http.NotFound(w, r)
			return
		}
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(rootResponse{ID: uint64(id), Class: class})
	case strings.HasPrefix(r.URL.Path, "/repl/cluster/"):
		raw := strings.TrimPrefix(r.URL.Path, "/repl/cluster/")
		id, err := strconv.ParseUint(raw, 10, 64)
		if err != nil {
			http.Error(w, "bad object id", http.StatusBadRequest)
			return
		}
		doc, err := h.m.FetchCluster(r.Context(), heap.ObjID(id))
		if errors.Is(err, ErrUnknownObject) {
			http.NotFound(w, r)
			return
		}
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		data, err := doc.Encode()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/xml")
		_, _ = w.Write(data)
	default:
		http.NotFound(w, r)
	}
}

// Client is a Transport talking to a remote Handler.
type Client struct {
	base string
	hc   *http.Client
}

var _ Transport = (*Client)(nil)

// NewClient returns a replication client for the master at baseURL.
func NewClient(baseURL string) *Client {
	return &Client{
		base: strings.TrimRight(baseURL, "/"),
		hc:   &http.Client{Timeout: 30 * time.Second},
	}
}

// get issues a context-bound GET, carrying any swap trace ID from ctx in the
// X-Obiswap-Trace header.
func (c *Client) get(ctx context.Context, url string) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	if id := obs.TraceFrom(ctx); id != "" {
		req.Header.Set(obs.TraceHeader, id)
	}
	return c.hc.Do(req)
}

// FetchRoot implements Transport.
func (c *Client) FetchRoot(ctx context.Context, name string) (heap.ObjID, string, error) {
	resp, err := c.get(ctx, c.base+"/repl/root/"+url.PathEscape(name))
	if err != nil {
		return heap.NilID, "", fmt.Errorf("replication: http: %w", err)
	}
	defer drain(resp)
	switch resp.StatusCode {
	case http.StatusOK:
		var rr rootResponse
		if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
			return heap.NilID, "", fmt.Errorf("replication: http root: %w", err)
		}
		return heap.ObjID(rr.ID), rr.Class, nil
	case http.StatusNotFound:
		return heap.NilID, "", fmt.Errorf("%w: %q", ErrUnknownRoot, name)
	default:
		return heap.NilID, "", fmt.Errorf("replication: http root: status %d", resp.StatusCode)
	}
}

// FetchCluster implements Transport.
func (c *Client) FetchCluster(ctx context.Context, id heap.ObjID) (*xmlcodec.Doc, error) {
	resp, err := c.get(ctx, c.base+"/repl/cluster/"+strconv.FormatUint(uint64(id), 10))
	if err != nil {
		return nil, fmt.Errorf("replication: http: %w", err)
	}
	defer drain(resp)
	switch resp.StatusCode {
	case http.StatusOK:
		data, err := io.ReadAll(resp.Body)
		if err != nil {
			return nil, fmt.Errorf("replication: http cluster: %w", err)
		}
		return xmlcodec.Decode(data)
	case http.StatusNotFound:
		return nil, fmt.Errorf("%w: @%d", ErrUnknownObject, id)
	default:
		return nil, fmt.Errorf("replication: http cluster: status %d", resp.StatusCode)
	}
}

// PushCluster implements UpdateTransport over HTTP.
func (c *Client) PushCluster(ctx context.Context, doc *xmlcodec.Doc) error {
	data, err := doc.Encode()
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/repl/update", bytes.NewReader(data))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/xml")
	if id := obs.TraceFrom(ctx); id != "" {
		req.Header.Set(obs.TraceHeader, id)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("replication: http update: %w", err)
	}
	defer drain(resp)
	if resp.StatusCode != http.StatusNoContent && resp.StatusCode != http.StatusOK {
		return fmt.Errorf("replication: http update: status %d", resp.StatusCode)
	}
	return nil
}

var _ UpdateTransport = (*Client)(nil)

func drain(resp *http.Response) {
	_, _ = io.Copy(io.Discard, resp.Body)
	_ = resp.Body.Close()
}
