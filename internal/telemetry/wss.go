package telemetry

import "time"

// WSSSample is one sealed sampling interval of the working-set estimator,
// shaped for the /debug/wss JSON time series (paper Fig. 5 style: distinct
// clusters touched per interval and their byte footprint).
type WSSSample struct {
	Start    time.Time `json:"start"`
	End      time.Time `json:"end"`
	Clusters int       `json:"clusters"`
	Bytes    int64     `json:"bytes"`
}

// rollUp seals the current sampling interval if it has elapsed and returns
// the current time. Must be called with no core locks held: sealing invokes
// the SizeOf callback, which may itself take core locks.
func (t *Tracker) rollUp() time.Time {
	now := t.clock.Now()
	t.wssMu.Lock()
	t.rollUpLocked(now)
	t.wssMu.Unlock()
	return now
}

func (t *Tracker) rollUpLocked(now time.Time) {
	if t.curStart.IsZero() {
		t.curStart = now
		return
	}
	if now.Sub(t.curStart) < t.opt.WSSInterval {
		return
	}
	ids := t.drainTouched()
	sample := wssSample{start: t.curStart, end: now, sizes: make(map[uint32]int64, len(ids))}
	for _, id := range ids {
		var b int64
		if t.sizeOf != nil {
			b = t.sizeOf(id)
		}
		sample.sizes[id] = b
	}
	t.samples = append(t.samples, sample)
	if len(t.samples) > maxWSSSamples {
		// Re-slice into a fresh array so the dropped head can be collected.
		t.samples = append([]wssSample(nil), t.samples[len(t.samples)-maxWSSSamples:]...)
	}
	t.curStart = now
}

// drainTouched collects and clears every shard's current-interval touch set.
// Shard locks are leaf locks, taken one at a time with no core locks held.
func (t *Tracker) drainTouched() []uint32 {
	var ids []uint32
	for _, sh := range t.shards {
		sh.mu.Lock()
		for id := range sh.touched {
			ids = append(ids, id)
		}
		sh.touched = make(map[uint32]struct{})
		sh.mu.Unlock()
	}
	return ids
}

// peekTouched returns the current (unsealed) interval's touch set without
// clearing it, so reads reflect activity since the last seal.
func (t *Tracker) peekTouched() []uint32 {
	var ids []uint32
	for _, sh := range t.shards {
		sh.mu.Lock()
		for id := range sh.touched {
			ids = append(ids, id)
		}
		sh.mu.Unlock()
	}
	return ids
}

// WSS returns the working-set estimate over the given window (0 selects the
// default window): the number of distinct clusters touched and the byte
// footprint, counting each cluster's most recent measurement. The live
// (unsealed) interval is included so a scrape right after activity is not
// blind for up to one interval. Must not be called with core locks held.
func (t *Tracker) WSS(window time.Duration) (clusters int, bytes int64) {
	if t == nil {
		return 0, 0
	}
	if window <= 0 {
		window = t.opt.WSSWindow
	}
	now := t.rollUp()
	cutoff := now.Add(-window)
	t.wssMu.Lock()
	defer t.wssMu.Unlock()
	union := make(map[uint32]int64)
	for _, s := range t.samples {
		if !s.end.After(cutoff) {
			continue
		}
		for id, b := range s.sizes {
			union[id] = b
		}
	}
	for _, id := range t.peekTouched() {
		if _, ok := union[id]; !ok {
			var b int64
			if t.sizeOf != nil {
				b = t.sizeOf(id)
			}
			union[id] = b
		}
	}
	for _, b := range union {
		bytes += b
	}
	return len(union), bytes
}

// WSSSeries returns the per-interval samples inside the window, oldest
// first, with a trailing partial sample for the live interval when it has
// any activity. Must not be called with core locks held.
func (t *Tracker) WSSSeries(window time.Duration) []WSSSample {
	if t == nil {
		return nil
	}
	if window <= 0 {
		window = t.opt.WSSWindow
	}
	now := t.rollUp()
	cutoff := now.Add(-window)
	t.wssMu.Lock()
	defer t.wssMu.Unlock()
	var out []WSSSample
	for _, s := range t.samples {
		if !s.end.After(cutoff) {
			continue
		}
		var b int64
		for _, sz := range s.sizes {
			b += sz
		}
		out = append(out, WSSSample{Start: s.start, End: s.end, Clusters: len(s.sizes), Bytes: b})
	}
	if live := t.peekTouched(); len(live) > 0 {
		var b int64
		for _, id := range live {
			if t.sizeOf != nil {
				b += t.sizeOf(id)
			}
		}
		out = append(out, WSSSample{Start: t.curStart, End: now, Clusters: len(live), Bytes: b})
	}
	return out
}
