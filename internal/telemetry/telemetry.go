// Package telemetry is the access-telemetry plane for the swap runtime: it
// turns the raw touch stream (boundary crossings, heap accesses, swap events)
// into cluster heat classes, a sliding-window working-set estimate, per-cause
// fault latency histograms and a thrash score. It depends only on
// internal/obs and is driven entirely by the registry Clock, so every decay
// and window computation is deterministic under a VirtualClock.
//
// Lock discipline: the per-shard heat mutexes are strict leaf locks — Touch
// and RecordSwap may be called while core table locks are held. The WSS
// roll-up mutex (wssMu) is the opposite: the SizeOf callback it invokes may
// take core locks, so wssMu must only ever be acquired from read paths
// (gauge scrapes, endpoints, snapshots) that hold no core locks.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"objectswap/internal/obs"
)

// Heat classes, in decreasing temperature. The strings are the label values
// of objectswap_cluster_heat{class}.
const (
	ClassHot  = "hot"
	ClassWarm = "warm"
	ClassCold = "cold"
)

// Fault kinds for objectswap_fault_seconds{kind}. A fault caused by the
// prefetcher (cause "prefetch") records as KindPrefetch — background work,
// not caller-visible latency; everything else is a demand fault. A crossing
// served from the prefetch inventory records as KindPrefetchHit with the
// cost the caller actually paid (a lookup, not a round trip), so the demand
// vs prefetch-hit split of swap_in latencies is directly comparable.
const (
	KindDemand      = "demand"
	KindPrefetch    = "prefetch"
	KindPrefetchHit = "prefetch-hit"
)

// causePrefetch mirrors core.CausePrefetch (telemetry depends only on
// internal/obs, so the constant is duplicated rather than imported).
const causePrefetch = "prefetch"

// Options tunes the estimators. Zero values select the defaults below.
type Options struct {
	// HeatHalfLife is the half-life of the per-cluster access EWMA: a
	// cluster's heat score halves every HeatHalfLife of silence.
	HeatHalfLife time.Duration
	// Hot/Warm enter and exit thresholds on the decayed score. Enter is
	// deliberately above exit (hysteresis) so a cluster oscillating around
	// a boundary does not flap between classes.
	HotEnter, HotExit   float64
	WarmEnter, WarmExit float64

	// WSSInterval is the sampling interval of the working-set estimator:
	// each elapsed interval seals one sample of distinct clusters touched
	// and their bytes. WSSWindow is the default aggregation window used by
	// the gauges and by /debug/wss when no ?window= is given.
	WSSInterval time.Duration
	WSSWindow   time.Duration

	// ThrashWindow: a swap-in arriving within ThrashWindow of the same
	// cluster's last swap-out counts as one ping-pong. ThrashHalfLife
	// decays the accumulated ping-pong score; the health check degrades
	// when the worst cluster's score crosses ThrashHigh and recovers only
	// once it falls back below ThrashLow.
	ThrashWindow   time.Duration
	ThrashHalfLife time.Duration
	ThrashHigh     float64
	ThrashLow      float64

	// Shards is the number of independently locked heat shards.
	Shards int
}

func (o Options) withDefaults() Options {
	if o.HeatHalfLife <= 0 {
		o.HeatHalfLife = 30 * time.Second
	}
	if o.HotEnter <= 0 {
		o.HotEnter = 4
	}
	if o.HotExit <= 0 {
		o.HotExit = 2
	}
	if o.WarmEnter <= 0 {
		o.WarmEnter = 1
	}
	if o.WarmExit <= 0 {
		o.WarmExit = 0.5
	}
	if o.WSSInterval <= 0 {
		o.WSSInterval = time.Second
	}
	if o.WSSWindow <= 0 {
		o.WSSWindow = time.Minute
	}
	if o.ThrashWindow <= 0 {
		o.ThrashWindow = 10 * time.Second
	}
	if o.ThrashHalfLife <= 0 {
		o.ThrashHalfLife = 30 * time.Second
	}
	if o.ThrashHigh <= 0 {
		o.ThrashHigh = 3
	}
	if o.ThrashLow <= 0 {
		o.ThrashLow = 1
	}
	if o.Shards <= 0 {
		o.Shards = 8
	}
	return o
}

// clusterStat is one cluster's telemetry state. All fields are guarded by
// the owning shard's mutex; scores are stored decayed-as-of `last` /
// `thrashLast` and lazily re-decayed on every read or update.
type clusterStat struct {
	score     float64
	last      time.Time
	class     string
	touches   uint64
	crossings uint64

	lastSwapOut time.Time
	haveSwapOut bool
	thrash      float64
	thrashLast  time.Time
	pingPongs   uint64
	swapOuts    uint64
	swapIns     uint64
}

type heatShard struct {
	mu       sync.Mutex
	clusters map[uint32]*clusterStat
	// touched accumulates the clusters seen in the current (unsealed) WSS
	// interval; the roll-up drains it.
	touched map[uint32]struct{}
}

func (s *heatShard) stat(id uint32) *clusterStat {
	cs := s.clusters[id]
	if cs == nil {
		cs = &clusterStat{class: ClassCold}
		s.clusters[id] = cs
	}
	return cs
}

// wssSample is one sealed sampling interval: the distinct clusters touched
// between Start and End and the bytes measured for each at seal time.
type wssSample struct {
	start, end time.Time
	sizes      map[uint32]int64
}

// Tracker is the telemetry plane. All methods are safe on a nil receiver so
// callers can plumb an optional *Tracker without guarding every call.
type Tracker struct {
	opt    Options
	clock  obs.Clock
	shards []*heatShard

	faults *obs.HistogramVec

	// wssMu guards the sample ring and the SizeOf callback; see the
	// package comment for why it must never be taken under core locks.
	wssMu    sync.Mutex
	sizeOf   func(cluster uint32) int64
	curStart time.Time
	samples  []wssSample

	thrashMu sync.Mutex
	degraded bool
}

// maxWSSSamples bounds the sealed-sample ring; at the default 1s interval
// this retains ~8.5 minutes of working-set history.
const maxWSSSamples = 512

// New builds a Tracker on reg's clock and registers its metric families
// (cluster heat gauges, WSS gauges, thrash gauge, fault histograms) with reg.
func New(reg *obs.Registry, opt Options) *Tracker {
	if reg == nil {
		reg = obs.NewRegistry(obs.RealClock{})
	}
	opt = opt.withDefaults()
	t := &Tracker{
		opt:    opt,
		clock:  reg.Clock(),
		shards: make([]*heatShard, opt.Shards),
	}
	for i := range t.shards {
		t.shards[i] = &heatShard{
			clusters: make(map[uint32]*clusterStat),
			touched:  make(map[uint32]struct{}),
		}
	}
	t.instrument(reg)
	return t
}

func (t *Tracker) instrument(reg *obs.Registry) {
	heat := reg.GaugeVec("objectswap_cluster_heat",
		"Swap-clusters currently in each heat class (EWMA-scored with hysteresis).",
		"class")
	heat.WithFunc(func() float64 { h, _, _ := t.Counts(); return float64(h) }, ClassHot)
	heat.WithFunc(func() float64 { _, w, _ := t.Counts(); return float64(w) }, ClassWarm)
	heat.WithFunc(func() float64 { _, _, c := t.Counts(); return float64(c) }, ClassCold)
	reg.GaugeFunc("objectswap_wss_clusters",
		"Working-set size over the default window: distinct swap-clusters touched.",
		func() float64 { c, _ := t.WSS(0); return float64(c) })
	reg.GaugeFunc("objectswap_wss_bytes",
		"Working-set size over the default window: bytes of the touched swap-clusters.",
		func() float64 { _, b := t.WSS(0); return float64(b) })
	reg.GaugeFunc("objectswap_thrash_score",
		"Decayed ping-pong score of the worst-thrashing swap-cluster.",
		func() float64 { return t.ThrashScore() })
	t.faults = reg.HistogramVec("objectswap_fault_seconds",
		"Swap fault latency by operation, cause and kind (demand, prefetch, prefetch-hit).",
		nil, "op", "cause", "kind")
}

// SetSizeOf installs the per-cluster byte measurer used when sealing WSS
// samples. The callback may take core locks; it is only ever invoked from
// read paths that hold none.
func (t *Tracker) SetSizeOf(fn func(cluster uint32) int64) {
	if t == nil {
		return
	}
	t.wssMu.Lock()
	t.sizeOf = fn
	t.wssMu.Unlock()
}

func (t *Tracker) shard(cluster uint32) *heatShard {
	return t.shards[int(cluster)%len(t.shards)]
}

// decayFactor is 0.5^(dt/halfLife).
func decayFactor(dt, halfLife time.Duration) float64 {
	if dt <= 0 {
		return 1
	}
	return math.Exp2(-float64(dt) / float64(halfLife))
}

func (cs *clusterStat) decayTo(now time.Time, halfLife time.Duration) {
	if !cs.last.IsZero() {
		cs.score *= decayFactor(now.Sub(cs.last), halfLife)
	}
	cs.last = now
}

func (cs *clusterStat) decayThrashTo(now time.Time, halfLife time.Duration) {
	if !cs.thrashLast.IsZero() {
		cs.thrash *= decayFactor(now.Sub(cs.thrashLast), halfLife)
	}
	cs.thrashLast = now
}

// reclassify applies the hysteresis thresholds to the (already decayed)
// score. A class is only left once the score crosses the *exit* threshold,
// and only entered once it crosses the higher *enter* threshold.
func (t *Tracker) reclassify(cs *clusterStat) {
	switch cs.class {
	case ClassHot:
		if cs.score < t.opt.HotExit {
			cs.class = ClassWarm
		}
		if cs.score < t.opt.WarmExit {
			cs.class = ClassCold
		}
	case ClassWarm:
		switch {
		case cs.score >= t.opt.HotEnter:
			cs.class = ClassHot
		case cs.score < t.opt.WarmExit:
			cs.class = ClassCold
		}
	default:
		switch {
		case cs.score >= t.opt.HotEnter:
			cs.class = ClassHot
		case cs.score >= t.opt.WarmEnter:
			cs.class = ClassWarm
		}
	}
}

// Touch records one access to a cluster. crossing marks accesses that came
// through a proxy boundary crossing (the manager's recency feed) as opposed
// to intra-cluster heap reads/writes. Touch is a leaf call: safe under core
// table locks and safe on a nil Tracker.
func (t *Tracker) Touch(cluster uint32, crossing bool) {
	if t == nil {
		return
	}
	now := t.clock.Now()
	sh := t.shard(cluster)
	sh.mu.Lock()
	cs := sh.stat(cluster)
	cs.decayTo(now, t.opt.HeatHalfLife)
	cs.score++
	cs.touches++
	if crossing {
		cs.crossings++
	}
	t.reclassify(cs)
	sh.touched[cluster] = struct{}{}
	sh.mu.Unlock()
}

// RecordSwap records one completed swap fault: op is "swap_out", "swap_in"
// or "swap_repair", cause one of the core.Cause* values. seconds is the
// whole-fault latency (the per-phase decomposition is already recorded by
// the span tracer). Swap-ins arriving within ThrashWindow of the same
// cluster's last swap-out feed the thrash score. Leaf call, nil-safe.
func (t *Tracker) RecordSwap(op string, cluster uint32, cause string, seconds float64, bytes int64) {
	if t == nil {
		return
	}
	if cause == "" {
		cause = "unknown"
	}
	kind := KindDemand
	if cause == causePrefetch {
		kind = KindPrefetch
	}
	if t.faults != nil {
		t.faults.With(op, cause, kind).Observe(seconds)
	}
	now := t.clock.Now()
	sh := t.shard(cluster)
	sh.mu.Lock()
	cs := sh.stat(cluster)
	switch op {
	case "swap_out":
		cs.swapOuts++
		cs.lastSwapOut = now
		cs.haveSwapOut = true
	case "swap_in":
		cs.swapIns++
		cs.decayThrashTo(now, t.opt.ThrashHalfLife)
		if cs.haveSwapOut && now.Sub(cs.lastSwapOut) <= t.opt.ThrashWindow {
			cs.thrash++
			cs.pingPongs++
		}
		cs.haveSwapOut = false
	}
	sh.mu.Unlock()
}

// RecordPrefetchHit records a crossing that found its target cluster
// already resident thanks to the prefetcher: an inventory lookup instead of
// a fetch+decode round trip. It lands in objectswap_fault_seconds as
// (op "swap_in", cause "reload", kind "prefetch-hit") — the same series a
// demand reload of that crossing would have hit, under the kind that names
// what actually happened. Leaf call, nil-safe.
func (t *Tracker) RecordPrefetchHit(cluster uint32, seconds float64) {
	if t == nil || t.faults == nil {
		return
	}
	t.faults.With("swap_in", "reload", KindPrefetchHit).Observe(seconds)
}

// ClusterHeat is one cluster's entry in the ranked heat snapshot.
type ClusterHeat struct {
	Cluster   uint32    `json:"cluster"`
	Class     string    `json:"class"`
	Score     float64   `json:"score"`
	Touches   uint64    `json:"touches"`
	Crossings uint64    `json:"crossings"`
	SwapOuts  uint64    `json:"swap_outs"`
	SwapIns   uint64    `json:"swap_ins"`
	Thrash    float64   `json:"thrash"`
	PingPongs uint64    `json:"ping_pongs"`
	LastTouch time.Time `json:"last_touch"`
}

// HeatSnapshot returns every tracked cluster with its decayed score and
// class, hottest first (ties broken by cluster id for determinism).
func (t *Tracker) HeatSnapshot() []ClusterHeat {
	if t == nil {
		return nil
	}
	now := t.clock.Now()
	var out []ClusterHeat
	for _, sh := range t.shards {
		sh.mu.Lock()
		for id, cs := range sh.clusters {
			cs.decayTo(now, t.opt.HeatHalfLife)
			cs.decayThrashTo(now, t.opt.ThrashHalfLife)
			t.reclassify(cs)
			out = append(out, ClusterHeat{
				Cluster:   id,
				Class:     cs.class,
				Score:     cs.score,
				Touches:   cs.touches,
				Crossings: cs.crossings,
				SwapOuts:  cs.swapOuts,
				SwapIns:   cs.swapIns,
				Thrash:    cs.thrash,
				PingPongs: cs.pingPongs,
				LastTouch: cs.last,
			})
		}
		sh.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Cluster < out[j].Cluster
	})
	return out
}

// HeatClassOf returns the current class of one cluster (ClassCold for
// clusters never touched).
func (t *Tracker) HeatClassOf(cluster uint32) string {
	if t == nil {
		return ClassCold
	}
	now := t.clock.Now()
	sh := t.shard(cluster)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	cs := sh.clusters[cluster]
	if cs == nil {
		return ClassCold
	}
	cs.decayTo(now, t.opt.HeatHalfLife)
	t.reclassify(cs)
	return cs.class
}

// Counts returns how many tracked clusters are currently hot, warm and cold.
func (t *Tracker) Counts() (hot, warm, cold int) {
	if t == nil {
		return 0, 0, 0
	}
	now := t.clock.Now()
	for _, sh := range t.shards {
		sh.mu.Lock()
		for _, cs := range sh.clusters {
			cs.decayTo(now, t.opt.HeatHalfLife)
			t.reclassify(cs)
			switch cs.class {
			case ClassHot:
				hot++
			case ClassWarm:
				warm++
			default:
				cold++
			}
		}
		sh.mu.Unlock()
	}
	return hot, warm, cold
}

// ThrashScore returns the decayed ping-pong score of the worst cluster.
// Pure read: it does not move the health-check hysteresis state.
func (t *Tracker) ThrashScore() float64 {
	if t == nil {
		return 0
	}
	now := t.clock.Now()
	var worst float64
	for _, sh := range t.shards {
		sh.mu.Lock()
		for _, cs := range sh.clusters {
			cs.decayThrashTo(now, t.opt.ThrashHalfLife)
			if cs.thrash > worst {
				worst = cs.thrash
			}
		}
		sh.mu.Unlock()
	}
	return worst
}

// ThrashState returns the current worst score and steps the degraded
// hysteresis: degraded turns on at ThrashHigh and only clears again below
// ThrashLow, so a sustained ping-pong regime reads degraded across the gap.
func (t *Tracker) ThrashState() (score float64, degraded bool) {
	if t == nil {
		return 0, false
	}
	score = t.ThrashScore()
	t.thrashMu.Lock()
	if t.degraded {
		if score < t.opt.ThrashLow {
			t.degraded = false
		}
	} else if score >= t.opt.ThrashHigh {
		t.degraded = true
	}
	degraded = t.degraded
	t.thrashMu.Unlock()
	return score, degraded
}

// HealthCheck is a probe for the ops health endpoint: it returns an error
// while the thrash hysteresis reads degraded.
func (t *Tracker) HealthCheck() error {
	if t == nil {
		return nil
	}
	if score, degraded := t.ThrashState(); degraded {
		return fmt.Errorf("sustained swap ping-pong: worst cluster thrash score %.2f >= %.2f", score, t.opt.ThrashHigh)
	}
	return nil
}

// Window returns the default WSS aggregation window.
func (t *Tracker) Window() time.Duration {
	if t == nil {
		return 0
	}
	return t.opt.WSSWindow
}
