package telemetry

import (
	"testing"
	"time"

	"objectswap/internal/obs"
)

func newTestTracker(t *testing.T, opt Options) (*Tracker, *obs.Registry, *obs.VirtualClock) {
	t.Helper()
	clock := obs.NewVirtualClock(time.Unix(1000, 0))
	reg := obs.NewRegistry(clock)
	return New(reg, opt), reg, clock
}

// The heat EWMA must decay deterministically under the virtual clock: one
// half-life halves the score, and the hot→warm→cold transitions happen at
// the exit thresholds, not the (higher) entry thresholds.
func TestHeatEWMADecay(t *testing.T) {
	tr, reg, clock := newTestTracker(t, Options{
		HeatHalfLife: 10 * time.Second,
		HotEnter:     4, HotExit: 2,
		WarmEnter: 1, WarmExit: 0.5,
	})

	for i := 0; i < 5; i++ {
		tr.Touch(7, i%2 == 0)
	}
	snap := tr.HeatSnapshot()
	if len(snap) != 1 || snap[0].Cluster != 7 {
		t.Fatalf("snapshot = %+v, want exactly cluster 7", snap)
	}
	if snap[0].Score != 5 {
		t.Fatalf("score = %v, want 5 (no time elapsed)", snap[0].Score)
	}
	if snap[0].Class != ClassHot {
		t.Fatalf("class = %q, want hot (score 5 >= enter 4)", snap[0].Class)
	}
	if snap[0].Touches != 5 || snap[0].Crossings != 3 {
		t.Fatalf("touches/crossings = %d/%d, want 5/3", snap[0].Touches, snap[0].Crossings)
	}
	if v, ok := reg.Value("objectswap_cluster_heat", ClassHot); !ok || v != 1 {
		t.Fatalf("heat{hot} gauge = %v,%v, want 1", v, ok)
	}

	// One half-life: 5 -> 2.5, still above HotExit=2 — hysteresis holds hot.
	clock.Advance(10 * time.Second)
	if got := tr.HeatSnapshot()[0]; got.Score != 2.5 || got.Class != ClassHot {
		t.Fatalf("after one half-life: score=%v class=%q, want 2.5/hot", got.Score, got.Class)
	}

	// Second half-life: 1.25 < HotExit — drops to warm (not straight cold).
	clock.Advance(10 * time.Second)
	if got := tr.HeatSnapshot()[0]; got.Score != 1.25 || got.Class != ClassWarm {
		t.Fatalf("after two half-lives: score=%v class=%q, want 1.25/warm", got.Score, got.Class)
	}

	// Two more: 0.3125 < WarmExit=0.5 — cold.
	clock.Advance(20 * time.Second)
	if got := tr.HeatSnapshot()[0]; got.Class != ClassCold {
		t.Fatalf("after four half-lives: class=%q, want cold", got.Class)
	}
	if v, _ := reg.Value("objectswap_cluster_heat", ClassCold); v != 1 {
		t.Fatalf("heat{cold} gauge = %v, want 1", v)
	}
}

// Entering hot requires crossing HotEnter: a score parked between HotExit
// and HotEnter classifies warm when approached from below.
func TestHeatHysteresisEntry(t *testing.T) {
	tr, _, _ := newTestTracker(t, Options{
		HotEnter: 4, HotExit: 2, WarmEnter: 1, WarmExit: 0.5,
	})
	tr.Touch(1, false)
	tr.Touch(1, false)
	tr.Touch(1, false) // score 3: above HotExit but below HotEnter
	if got := tr.HeatClassOf(1); got != ClassWarm {
		t.Fatalf("class at score 3 from cold = %q, want warm", got)
	}
	tr.Touch(1, false) // score 4 = HotEnter
	if got := tr.HeatClassOf(1); got != ClassHot {
		t.Fatalf("class at score 4 = %q, want hot", got)
	}
}

// HeatSnapshot ranks hottest first with deterministic tie-breaks.
func TestHeatRanking(t *testing.T) {
	tr, _, clock := newTestTracker(t, Options{HeatHalfLife: 10 * time.Second})
	for i := 0; i < 6; i++ {
		tr.Touch(3, false)
	}
	clock.Advance(time.Second)
	for i := 0; i < 2; i++ {
		tr.Touch(9, false)
	}
	tr.Touch(5, false)
	snap := tr.HeatSnapshot()
	if len(snap) != 3 {
		t.Fatalf("len(snapshot) = %d, want 3", len(snap))
	}
	if snap[0].Cluster != 3 || snap[1].Cluster != 9 || snap[2].Cluster != 5 {
		t.Fatalf("ranking = %d,%d,%d, want 3,9,5", snap[0].Cluster, snap[1].Cluster, snap[2].Cluster)
	}
}

// The thrash hysteresis must flip degraded at ThrashHigh, stay degraded
// through the band between the thresholds, and recover below ThrashLow.
func TestThrashHysteresis(t *testing.T) {
	tr, reg, clock := newTestTracker(t, Options{
		ThrashWindow:   5 * time.Second,
		ThrashHalfLife: 10 * time.Second,
		ThrashHigh:     3,
		ThrashLow:      1,
	})

	if err := tr.HealthCheck(); err != nil {
		t.Fatalf("healthy tracker reports %v", err)
	}

	// Three swap-in-right-after-swap-out ping-pongs on cluster 4.
	for i := 0; i < 3; i++ {
		tr.RecordSwap("swap_out", 4, "evictor-pressure", 0.001, 100)
		tr.RecordSwap("swap_in", 4, "reload", 0.001, 100)
	}
	if score := tr.ThrashScore(); score != 3 {
		t.Fatalf("thrash score = %v, want 3", score)
	}
	if err := tr.HealthCheck(); err == nil {
		t.Fatal("health check stayed ok at score 3 (ThrashHigh)")
	}
	if v, _ := reg.Value("objectswap_thrash_score"); v != 3 {
		t.Fatalf("thrash gauge = %v, want 3", v)
	}

	// One half-life: 1.5 — inside the hysteresis band, still degraded.
	clock.Advance(10 * time.Second)
	if score, degraded := tr.ThrashState(); score != 1.5 || !degraded {
		t.Fatalf("in band: score=%v degraded=%v, want 1.5/true", score, degraded)
	}

	// Another half-life: 0.75 < ThrashLow — recovered.
	clock.Advance(10 * time.Second)
	if err := tr.HealthCheck(); err != nil {
		t.Fatalf("health check still degraded at score 0.75: %v", err)
	}

	// A swap-in long after the swap-out is not a ping-pong.
	tr.RecordSwap("swap_out", 8, "explicit", 0.001, 100)
	clock.Advance(6 * time.Second) // beyond ThrashWindow
	tr.RecordSwap("swap_in", 8, "explicit", 0.001, 100)
	for _, h := range tr.HeatSnapshot() {
		if h.Cluster == 8 && h.PingPongs != 0 {
			t.Fatalf("late swap-in counted as ping-pong: %+v", h)
		}
	}
}

// RecordSwap lands in the per-cause fault histograms with the demand kind.
func TestFaultHistogramsByCause(t *testing.T) {
	tr, reg, _ := newTestTracker(t, Options{})
	tr.RecordSwap("swap_out", 1, "evictor-pressure", 0.25, 10)
	tr.RecordSwap("swap_out", 2, "explicit", 0.5, 10)
	tr.RecordSwap("swap_in", 1, "reload", 0.125, 10)
	tr.RecordSwap("swap_in", 1, "", 0.125, 10) // unattributed

	cases := []struct {
		op, cause string
		count     uint64
	}{
		{"swap_out", "evictor-pressure", 1},
		{"swap_out", "explicit", 1},
		{"swap_in", "reload", 1},
		{"swap_in", "unknown", 1},
	}
	for _, c := range cases {
		hs, ok := reg.HistogramSnapshotOf("objectswap_fault_seconds", c.op, c.cause, KindDemand)
		if !ok || hs.Count != c.count {
			t.Fatalf("fault_seconds{%s,%s,demand}: ok=%v count=%d, want %d", c.op, c.cause, ok, hs.Count, c.count)
		}
	}
}

// The WSS estimator seals one sample per interval and aggregates distinct
// clusters (latest byte measurement per cluster) over the query window.
func TestWSSWindowing(t *testing.T) {
	tr, reg, clock := newTestTracker(t, Options{
		WSSInterval: time.Second,
		WSSWindow:   10 * time.Second,
	})
	sizes := map[uint32]int64{1: 100, 2: 200, 3: 400}
	tr.SetSizeOf(func(c uint32) int64 { return sizes[c] })

	tr.Touch(1, false)
	tr.Touch(2, false)
	// Live interval only: both clusters visible before any seal.
	if c, b := tr.WSS(0); c != 2 || b != 300 {
		t.Fatalf("live WSS = %d clusters/%d bytes, want 2/300", c, b)
	}

	clock.Advance(time.Second)
	if c, b := tr.WSS(0); c != 2 || b != 300 { // this read seals {1,2}
		t.Fatalf("WSS at seal = %d/%d, want 2/300", c, b)
	}
	tr.Touch(3, false)
	c, b := tr.WSS(0) // sealed {1,2} plus live {3}
	if c != 3 || b != 700 {
		t.Fatalf("WSS after seal = %d/%d, want 3/700", c, b)
	}
	series := tr.WSSSeries(0)
	if len(series) != 2 {
		t.Fatalf("series = %+v, want sealed + live sample", series)
	}
	if series[0].Clusters != 2 || series[0].Bytes != 300 {
		t.Fatalf("sealed sample = %+v, want 2 clusters/300 bytes", series[0])
	}
	if v, _ := reg.Value("objectswap_wss_clusters"); v != 3 {
		t.Fatalf("wss_clusters gauge = %v, want 3", v)
	}

	// Far beyond the window with no activity: everything ages out. (The
	// first read seals {3} with an end stamp inside the window; the second
	// read, another window later, sees an empty set.)
	clock.Advance(30 * time.Second)
	tr.WSS(0)
	clock.Advance(30 * time.Second)
	if c, b := tr.WSS(0); c != 0 || b != 0 {
		t.Fatalf("aged-out WSS = %d/%d, want 0/0", c, b)
	}
}

// Nil trackers are inert: every method is callable without panicking.
func TestNilTrackerSafe(t *testing.T) {
	var tr *Tracker
	tr.Touch(1, true)
	tr.RecordSwap("swap_out", 1, "explicit", 0.1, 1)
	tr.SetSizeOf(func(uint32) int64 { return 0 })
	if s := tr.HeatSnapshot(); s != nil {
		t.Fatalf("nil HeatSnapshot = %v", s)
	}
	if h, w, c := tr.Counts(); h+w+c != 0 {
		t.Fatal("nil Counts nonzero")
	}
	if c, b := tr.WSS(0); c != 0 || b != 0 {
		t.Fatal("nil WSS nonzero")
	}
	if tr.WSSSeries(0) != nil || tr.ThrashScore() != 0 {
		t.Fatal("nil series/score nonzero")
	}
	if err := tr.HealthCheck(); err != nil {
		t.Fatalf("nil HealthCheck = %v", err)
	}
	if tr.HeatClassOf(3) != ClassCold {
		t.Fatal("nil HeatClassOf not cold")
	}
}
