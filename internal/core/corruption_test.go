package core

import (
	"errors"
	"testing"

	"objectswap/internal/event"
	"objectswap/internal/store"
)

// corruptPayload flips one byte of the payload stored under key, preserving
// the format envelope — bit rot on the donor, invisible to Get.
func corruptPayload(t testing.TB, s store.Store, key string) {
	t.Helper()
	data, opts, err := store.GetWith(ctx, s, key)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x40
	if err := store.PutWith(ctx, s, key, data, opts); err != nil {
		t.Fatal(err)
	}
}

func TestSwapInDetectsCorruptReplica(t *testing.T) {
	f, flakies, bus := replFixture(t, 3, 2)
	_, clusters := f.buildList(t, 20, 10, 8)
	want := f.snapshotTags(t)

	ev, err := f.rt.SwapOut(clusters[1])
	if err != nil {
		t.Fatal(err)
	}
	f.rt.Collect()

	var readRepairs []SwapEvent
	bus.Subscribe(event.TopicReadRepair, func(e event.Event) {
		if se, ok := e.Payload.(SwapEvent); ok {
			readRepairs = append(readRepairs, se)
		}
	})

	// The primary's copy rots at rest: swap-in must convict it by checksum
	// and fall through to the intact survivor.
	corruptPayload(t, flakies[ev.Replicas[0]], ev.Key)
	inEv, err := f.rt.SwapIn(clusters[1])
	if err != nil {
		t.Fatalf("swap-in past corrupt primary: %v", err)
	}
	if len(inEv.Attempted) != 1 || inEv.Attempted[0] != ev.Replicas[0] {
		t.Fatalf("attempted = %v, want [%s]", inEv.Attempted, ev.Replicas[0])
	}
	if len(readRepairs) != 1 || readRepairs[0].Cluster != clusters[1] {
		t.Fatalf("read-repair events = %+v", readRepairs)
	}
	got := f.snapshotTags(t)
	if len(got) != len(want) {
		t.Fatalf("recovered %d tags, want %d", len(got), len(want))
	}
	checkClean(t, f.rt)
}

func TestSwapInFailsWhenAllReplicasCorrupt(t *testing.T) {
	f, flakies, _ := replFixture(t, 2, 2)
	_, clusters := f.buildList(t, 20, 10, 8)
	ev, err := f.rt.SwapOut(clusters[1])
	if err != nil {
		t.Fatal(err)
	}
	f.rt.Collect()

	// Save one intact copy, then rot every replica.
	intact, opts, err := store.GetWith(ctx, flakies[ev.Replicas[0]], ev.Key)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range ev.Replicas {
		corruptPayload(t, flakies[name], ev.Key)
	}
	if _, err := f.rt.SwapIn(clusters[1]); !errors.Is(err, ErrCorruptReplica) {
		t.Fatalf("swap-in with every replica corrupt: %v", err)
	}
	if !f.rt.Manager().IsSwapped(clusters[1]) {
		t.Fatal("failed swap-in cleared the swapped state")
	}
	// One donor recovers its copy: the cluster is loadable again.
	if err := store.PutWith(ctx, flakies[ev.Replicas[1]], ev.Key, intact, opts); err != nil {
		t.Fatal(err)
	}
	if _, err := f.rt.SwapIn(clusters[1]); err != nil {
		t.Fatal(err)
	}
	checkClean(t, f.rt)
}

func TestRepairReplacesCorruptReplica(t *testing.T) {
	f, flakies, _ := replFixture(t, 3, 2)
	_, clusters := f.buildList(t, 20, 10, 8)
	want := f.snapshotTags(t)

	ev, err := f.rt.SwapOut(clusters[1])
	if err != nil {
		t.Fatal(err)
	}
	f.rt.Collect()
	if len(ev.Replicas) != 2 {
		t.Fatalf("replicas = %v, want 2", ev.Replicas)
	}

	// Both donors stay reachable, so the replica set looks whole — only the
	// scrub can notice the secondary's copy rotted.
	corrupt := ev.Replicas[1]
	corruptPayload(t, flakies[corrupt], ev.Key)
	repEv, err := f.rt.RepairCluster(ctx, clusters[1], 2)
	if err != nil {
		t.Fatalf("repair of corrupt replica: %v", err)
	}
	if len(repEv.Replicas) != 2 {
		t.Fatalf("repaired set = %v, want 2 replicas", repEv.Replicas)
	}
	for _, d := range repEv.Replicas {
		if d == corrupt {
			t.Fatalf("repaired set %v still holds the corrupt donor %s", repEv.Replicas, corrupt)
		}
	}
	if len(repEv.Attempted) != 1 || repEv.Attempted[0] != corrupt {
		t.Fatalf("pruned = %v, want [%s]", repEv.Attempted, corrupt)
	}

	// A second repair finds nothing to do: every surviving copy verifies.
	if _, err := f.rt.RepairCluster(ctx, clusters[1], 2); !errors.Is(err, ErrNoRepair) {
		t.Fatalf("second repair = %v, want ErrNoRepair", err)
	}
	// The reload succeeds from the repaired set.
	if _, err := f.rt.SwapIn(clusters[1]); err != nil {
		t.Fatal(err)
	}
	if got := f.snapshotTags(t); len(got) != len(want) {
		t.Fatalf("recovered %d tags, want %d", len(got), len(want))
	}
	checkClean(t, f.rt)
}

// TestRepairMajorityConvictsDivergentCopy exercises the no-recorded-checksum
// path (state restored from a pre-CRC checkpoint): with three live replicas,
// two identical copies out-vote the rotted one.
func TestRepairMajorityConvictsDivergentCopy(t *testing.T) {
	f, flakies, _ := replFixture(t, 4, 3)
	_, clusters := f.buildList(t, 20, 10, 8)

	ev, err := f.rt.SwapOut(clusters[1])
	if err != nil {
		t.Fatal(err)
	}
	f.rt.Collect()
	if len(ev.Replicas) != 3 {
		t.Fatalf("replicas = %v, want 3", ev.Replicas)
	}

	// Simulate legacy state: forget the recorded checksum.
	ts := f.rt.mgr.tab(clusters[1])
	ts.mu.Lock()
	ts.clusters[clusters[1]].crc = 0
	ts.mu.Unlock()

	corrupt := ev.Replicas[0]
	corruptPayload(t, flakies[corrupt], ev.Key)
	repEv, err := f.rt.RepairCluster(ctx, clusters[1], 3)
	if err != nil {
		t.Fatalf("majority repair: %v", err)
	}
	for _, d := range repEv.Replicas {
		if d == corrupt {
			t.Fatalf("repaired set %v still holds the out-voted donor %s", repEv.Replicas, corrupt)
		}
	}
	if _, err := f.rt.SwapIn(clusters[1]); err != nil {
		t.Fatal(err)
	}
	checkClean(t, f.rt)
}
