package core

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"objectswap/internal/obs"
)

// The swap core is sharded: the cluster table, the busy-reservation map and
// the swap critical sections are split across N independently locked shards,
// keyed by a hash of the cluster id. Swaps on clusters of different shards
// never contend — the reserve of one overlaps the commit of another — while
// the rare whole-graph operations (Collect's mark-sweep, cluster resize,
// checkpoint save/restore) stop the world by acquiring every shard lock in
// ascending index order.
//
// Lock order: shard swap mu → mgr.mu (object/proxy index) → tableShard.mu
// (cluster records) → h.mu (heap). Multiple shard or table locks are only
// ever taken in ascending index order; mgr.mu is never acquired while a
// tableShard lock is held.

// DefaultShards is the default shard count. It trades fine-grained
// parallelism (more shards, fewer collisions) against the cost of the
// stop-the-world paths, which acquire every shard lock.
const DefaultShards = 8

// coreShard is one independently locked slice of the swap machinery: the
// serialization point for the reserve/commit critical sections of every swap
// whose cluster hashes onto it.
type coreShard struct {
	idx int
	mu  sync.Mutex

	// wait is the shard's lock-acquisition latency histogram
	// (objectswap_swap_lock_wait_seconds{shard=...}), resolved once at
	// instrument time so the hot path skips the label lookup.
	wait *obs.Histogram

	// mutating mirrors the runtime-wide mutatingCount for this shard: set
	// while a critical section that may allocate (swap-in install) holds the
	// shard lock. Per-shard observability; the allocation path checks the
	// global count.
	mutating atomic.Bool

	// evictDepth counts eviction-pass victims currently in flight on this
	// shard; evictStart is the registry-clock time (unix nanos) the shard's
	// oldest in-flight eviction work started, 0 when idle. Health checks use
	// it to name the stuck shard instead of flagging the whole runtime.
	evictDepth atomic.Int32
	evictStart atomic.Int64
}

// shardIndexFor hashes a cluster id onto one of n shards (a 32-bit
// finalizing mix, so consecutive cluster ids spread instead of clumping).
func shardIndexFor(id ClusterID, n int) int {
	x := uint32(id)
	x ^= x >> 16
	x *= 0x7feb352d
	x ^= x >> 15
	x *= 0x846ca68b
	x ^= x >> 16
	return int(x % uint32(n))
}

// shardIndex maps a cluster to its shard index.
func (rt *Runtime) shardIndex(id ClusterID) int {
	return shardIndexFor(id, len(rt.shards))
}

// shardOf returns the shard serializing swaps of the given cluster.
func (rt *Runtime) shardOf(id ClusterID) *coreShard {
	return rt.shards[rt.shardIndex(id)]
}

// Shards reports the configured shard count.
func (rt *Runtime) Shards() int { return len(rt.shards) }

// lockShard acquires one shard's swap lock, recording the wait in the
// per-shard lock-wait histogram.
func (rt *Runtime) lockShard(sh *coreShard) {
	start := rt.obsReg.Clock().Now()
	sh.mu.Lock()
	sh.wait.Observe(rt.obsReg.Clock().Now().Sub(start).Seconds())
}

// lockAll acquires every shard lock in ascending index order — the
// stop-the-world entry used by Collect, resize and checkpoint save/restore.
func (rt *Runtime) lockAll() {
	for _, sh := range rt.shards {
		rt.lockShard(sh)
	}
}

// unlockAll releases the stop-the-world acquisition in reverse order.
func (rt *Runtime) unlockAll() {
	for i := len(rt.shards) - 1; i >= 0; i-- {
		rt.shards[i].mu.Unlock()
	}
}

// beginMutate opens a critical section that may allocate while holding swap
// locks (swap-in install, resize re-mediation, checkpoint restore). While any
// such section is open, allocation failures report ErrOutOfMemory instead of
// re-entering the evictor, whose Collect would deadlock on the very locks the
// section holds. sh labels the per-shard flag; nil marks a stop-the-world
// section that holds every shard. The returned func closes the section.
func (rt *Runtime) beginMutate(sh *coreShard) func() {
	if sh != nil {
		sh.mutating.Store(true)
	}
	rt.mutatingCount.Add(1)
	return func() {
		rt.mutatingCount.Add(-1)
		if sh != nil {
			sh.mutating.Store(false)
		}
	}
}

// beginShardEvict marks eviction work in flight on the victim's shard, for
// the per-shard liveness probe. Nested victims on one shard share the oldest
// start time. The returned func clears the mark.
func (rt *Runtime) beginShardEvict(victim ClusterID) func() {
	sh := rt.shardOf(victim)
	if sh.evictDepth.Add(1) == 1 {
		sh.evictStart.Store(rt.obsReg.Clock().Now().UnixNano())
	}
	return func() {
		if sh.evictDepth.Add(-1) == 0 {
			sh.evictStart.Store(0)
		}
	}
}

// interleaveByShard orders the indexes of ids so consecutive dispatches land
// on different shards round-robin. SwapOutMany uses it so a worker slot freed
// while one shard's commit is in flight picks up a victim on another shard
// instead of queueing behind the committing sibling.
func (rt *Runtime) interleaveByShard(ids []ClusterID) []int {
	groups := make(map[int][]int)
	var shardOrder []int
	for i, id := range ids {
		s := rt.shardIndex(id)
		if _, seen := groups[s]; !seen {
			shardOrder = append(shardOrder, s)
		}
		groups[s] = append(groups[s], i)
	}
	out := make([]int, 0, len(ids))
	for len(out) < len(ids) {
		for _, s := range shardOrder {
			if g := groups[s]; len(g) > 0 {
				out = append(out, g[0])
				groups[s] = g[1:]
			}
		}
	}
	return out
}

// ShardEviction reports eviction work in flight on one shard.
type ShardEviction struct {
	Shard int
	Since time.Time
}

// ShardEvictions lists the shards with eviction work in flight, oldest
// first. Health checks use it to report a wedged eviction by shard index
// instead of a single runtime-global flag that cannot say which shard (or
// falsely implicates all of them).
func (rt *Runtime) ShardEvictions() []ShardEviction {
	var out []ShardEviction
	for _, sh := range rt.shards {
		if ns := sh.evictStart.Load(); ns != 0 {
			out = append(out, ShardEviction{Shard: sh.idx, Since: time.Unix(0, ns)})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Since.Before(out[j].Since) })
	return out
}

// WithShards sets the number of independently locked swap shards the cluster
// table, busy reservations and swap critical sections are split across.
// Values below 1 select DefaultShards.
func WithShards(n int) Option {
	return func(rt *Runtime) {
		if n > 0 {
			rt.nshards = n
		}
	}
}
