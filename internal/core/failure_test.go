package core

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"objectswap/internal/event"

	"objectswap/internal/heap"
	"objectswap/internal/link"
	"objectswap/internal/placement"
	"objectswap/internal/store"
)

var ctx = context.Background()

// flakyFixture builds a runtime whose only device sits behind a fault-
// injecting link (every failEvery-th operation errors).
func flakyFixture(t testing.TB, failEvery int) (*fixture, *link.Link) {
	t.Helper()
	h := heap.New(0)
	classes := heap.NewRegistry()
	devices := store.NewRegistry(store.SelectMostFree)
	mem := store.NewMem(0)
	flaky := link.Wrap(mem, link.Profile{Name: "flaky", FailEvery: failEvery}, &link.VirtualClock{})
	if err := devices.Add("flaky-neighbor", flaky); err != nil {
		t.Fatal(err)
	}
	rt := NewRuntime(h, classes, WithStores(devices))
	f := &fixture{rt: rt, reg: devices, mem: mem, node: newNodeClass()}
	rt.MustRegisterClass(f.node)
	return f, flaky
}

func TestSwapOutSurvivesShipFailure(t *testing.T) {
	// Every operation fails: the Put is rejected, and the graph must be
	// untouched and fully usable afterwards.
	f, _ := flakyFixture(t, 1)
	_, clusters := f.buildList(t, 20, 10, 8)
	want := f.snapshotTags(t)

	// Depending on which operation hits the fault (the selection probe or
	// the shipment itself), the failure surfaces as ErrNoDevice or
	// ErrUnavailable; either way it must be clean.
	_, err := f.rt.SwapOut(clusters[1])
	if !errors.Is(err, store.ErrUnavailable) && !errors.Is(err, store.ErrNoDevice) {
		t.Fatalf("swap-out over dead link: %v", err)
	}
	if f.rt.Manager().IsSwapped(clusters[1]) {
		t.Fatal("cluster marked swapped after failed shipment")
	}
	checkClean(t, f.rt)
	got := f.snapshotTags(t)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("graph damaged by failed swap-out at %d", i)
		}
	}
}

func TestSwapInRetriesAfterTransientFetchFailure(t *testing.T) {
	// Every third operation fails. A swap-in that hits the bad operation
	// errors out but leaves the swapped state intact; a retry succeeds.
	f, _ := flakyFixture(t, 3)
	_, clusters := f.buildList(t, 20, 10, 8)

	// Operation 1 = Stats (device pick), 2 = Put: swap-out succeeds with the
	// 3rd op still pending.
	if _, err := f.rt.SwapOut(clusters[1]); err != nil {
		t.Fatal(err)
	}
	f.rt.Collect()

	// Keep attempting the traversal until it succeeds; every failed attempt
	// must leave the middleware consistent.
	var lastErr error
	for attempt := 0; attempt < 6; attempt++ {
		tags, err := trySnapshot(f)
		if err != nil {
			lastErr = err
			checkClean(t, f.rt)
			if !f.rt.Manager().IsSwapped(clusters[1]) {
				t.Fatal("failed swap-in cleared the swapped state")
			}
			continue
		}
		if len(tags) != 20 {
			t.Fatalf("tags = %d", len(tags))
		}
		return // success
	}
	t.Fatalf("traversal never succeeded over flaky link: %v", lastErr)
}

// trySnapshot walks the list, returning an error instead of failing the test.
func trySnapshot(f *fixture) ([]int64, error) {
	var tags []int64
	cur, ok := f.rt.Root("head")
	if !ok {
		return nil, errors.New("no head")
	}
	for !cur.IsNil() {
		tag, err := f.rt.Field(cur, "tag")
		if err != nil {
			return nil, err
		}
		tags = append(tags, tag.MustInt())
		next, err := f.rt.Field(cur, "next")
		if err != nil {
			return nil, err
		}
		cur = next
	}
	return tags, nil
}

func TestDeviceVanishesWhileHoldingCluster(t *testing.T) {
	// The device disappears from the registry entirely while holding a
	// swapped cluster: swap-in must fail cleanly; after the device returns,
	// the cluster is recoverable.
	f := newFixture(t, 0)
	_, clusters := f.buildList(t, 20, 10, 8)
	if _, err := f.rt.SwapOut(clusters[1]); err != nil {
		t.Fatal(err)
	}
	f.rt.Collect()

	f.reg.Remove("pda-neighbor")
	if _, err := f.rt.SwapIn(clusters[1]); !errors.Is(err, store.ErrUnavailable) {
		t.Fatalf("swap-in with vanished device: %v", err)
	}
	checkClean(t, f.rt)

	// Re-attach the same store under the same name: data is still there.
	if err := f.reg.Add("pda-neighbor", f.mem); err != nil {
		t.Fatal(err)
	}
	if _, err := f.rt.SwapIn(clusters[1]); err != nil {
		t.Fatal(err)
	}
	if got := f.snapshotTags(t); len(got) != 20 {
		t.Fatalf("recovered %d tags", len(got))
	}
}

func TestCorruptedShipmentRejectedOnReload(t *testing.T) {
	// The device returns tampered XML: swap-in must fail with a decode error
	// and leave the middleware consistent (the cluster stays swapped).
	f := newFixture(t, 0)
	_, clusters := f.buildList(t, 20, 10, 8)
	ev, err := f.rt.SwapOut(clusters[1])
	if err != nil {
		t.Fatal(err)
	}
	f.rt.Collect()

	if err := f.mem.Put(ctx, ev.Key, []byte("<swapcluster id=\"x\" version=\"1\"><object id=\"0\"")); err != nil {
		t.Fatal(err)
	}
	if _, err := f.rt.SwapIn(clusters[1]); err == nil {
		t.Fatal("tampered shipment accepted")
	}
	if !f.rt.Manager().IsSwapped(clusters[1]) {
		t.Fatal("cluster no longer swapped after rejected shipment")
	}
	checkClean(t, f.rt)
}

func TestWrongShipmentKeyRejected(t *testing.T) {
	// The device returns a VALID document under the wrong key (mixed-up
	// storage): the key check must reject it.
	f := newFixture(t, 0)
	_, clusters := f.buildList(t, 30, 10, 8)
	ev1, err := f.rt.SwapOut(clusters[1])
	if err != nil {
		t.Fatal(err)
	}
	ev2, err := f.rt.SwapOut(clusters[2])
	if err != nil {
		t.Fatal(err)
	}
	f.rt.Collect()

	// Cross the payloads.
	d2, _ := f.mem.Get(ctx, ev2.Key)
	if err := f.mem.Put(ctx, ev1.Key, d2); err != nil {
		t.Fatal(err)
	}
	if _, err := f.rt.SwapIn(clusters[1]); err == nil {
		t.Fatal("wrong shipment accepted")
	}
	if !f.rt.Manager().IsSwapped(clusters[1]) {
		t.Fatal("cluster no longer swapped after rejected shipment")
	}
}

// failoverFixture wires a runtime (pinned name "fo-core", so storage keys are
// reproducible) to two unlimited fault-injectable donors. The placement
// planner rendezvous-ranks the pair per key — both donors are unlimited, so
// the ranking is the pure equal-weight HRW order — and order-dependent tests
// derive it with plannedOrder and fault the top-ranked donor.
func failoverFixture(t testing.TB) (*fixture, map[string]*store.Flaky, *event.Bus) {
	t.Helper()
	h := heap.New(0)
	classes := heap.NewRegistry()
	devices := store.NewRegistry(store.SelectMostFree)
	flakies := map[string]*store.Flaky{
		"donor-a": store.NewFlaky(store.NewMem(0), 1),
		"donor-b": store.NewFlaky(store.NewMem(0), 1),
	}
	for name, st := range flakies {
		if err := devices.Add(name, st); err != nil {
			t.Fatal(err)
		}
	}
	bus := event.NewBus()
	rt := NewRuntime(h, classes, WithStores(devices), WithBus(bus), WithName("fo-core"))
	f := &fixture{rt: rt, reg: devices, node: newNodeClass()}
	rt.MustRegisterClass(f.node)
	return f, flakies, bus
}

// plannedOrder predicts the planner's donor ranking for the NEXT storage key
// the runtime will mint for cluster (keys embed a per-runtime generation
// sequence, so gen is 1 for the first swap-out of a fresh fixture).
func plannedOrder(f *fixture, cluster ClusterID, gen int) []string {
	key := fmt.Sprintf("%s-swapcluster-%d-gen%d", f.rt.Name(), cluster, gen)
	return placement.Order(key, []string{"donor-a", "donor-b"})
}

func TestSwapOutFailsOverToHealthyDevice(t *testing.T) {
	f, flakies, bus := failoverFixture(t)

	var failoverEvents []SwapEvent
	bus.Subscribe(event.TopicSwapFailover, func(ev event.Event) {
		if e, ok := ev.Payload.(SwapEvent); ok {
			failoverEvents = append(failoverEvents, e)
		}
	})

	_, clusters := f.buildList(t, 20, 10, 8)
	want := f.snapshotTags(t)
	// Fault the donor the planner will rank first, so the shipment must
	// extend to the second-ranked one.
	order := plannedOrder(f, clusters[1], 1)
	flakies[order[0]].FailNext(store.OpPut, -1)
	ev, err := f.rt.SwapOut(clusters[1])
	if err != nil {
		t.Fatalf("swap-out with failover: %v", err)
	}
	if ev.Device != order[1] {
		t.Fatalf("shipped to %q, want failover target %q", ev.Device, order[1])
	}
	if len(ev.Attempted) != 1 || ev.Attempted[0] != order[0] {
		t.Fatalf("attempted trail = %v, want [%s]", ev.Attempted, order[0])
	}
	if len(failoverEvents) != 1 || failoverEvents[0].Device != order[0] {
		t.Fatalf("failover events = %+v", failoverEvents)
	}
	// The payload lives on the healthy device under the same key.
	if _, err := flakies[order[1]].Get(ctx, ev.Key); err != nil {
		t.Fatalf("payload not on failover device: %v", err)
	}
	// And the cluster reloads transparently from there.
	f.rt.Collect()
	got := f.snapshotTags(t)
	if len(got) != len(want) {
		t.Fatalf("reloaded %d tags, want %d", len(got), len(want))
	}
	checkClean(t, f.rt)
}

func TestSwapOutNoFailoverFailsFast(t *testing.T) {
	f, flakies, _ := failoverFixture(t)
	_, clusters := f.buildList(t, 20, 10, 8)
	order := plannedOrder(f, clusters[1], 1)
	flakies[order[0]].FailNext(store.OpPut, -1)

	_, err := f.rt.SwapOut(clusters[1], WithNoFailover())
	if !errors.Is(err, store.ErrUnavailable) {
		t.Fatalf("err = %v", err)
	}
	if f.rt.Manager().IsSwapped(clusters[1]) {
		t.Fatal("cluster marked swapped after fail-fast rejection")
	}
	if keys, _ := flakies[order[1]].Keys(ctx); len(keys) != 0 {
		t.Fatalf("fail-fast swap-out still shipped to %v", keys)
	}
	if flakies[order[0]].Calls(store.OpPut) != 1 {
		t.Fatalf("fail-fast made %d put attempts", flakies[order[0]].Calls(store.OpPut))
	}
	if flakies[order[1]].Calls(store.OpPut) != 0 {
		t.Fatal("fail-fast shipment touched the second-ranked donor")
	}
	checkClean(t, f.rt)
}

func TestSwapOutPinnedDevice(t *testing.T) {
	f, flakies, _ := failoverFixture(t)
	flakies["donor-a"].FailNext(store.OpPut, -1)
	_, clusters := f.buildList(t, 30, 10, 8)

	// Pinning to the healthy device overrides the planner's ranking.
	ev, err := f.rt.SwapOut(clusters[1], WithDevice("donor-b"))
	if err != nil {
		t.Fatal(err)
	}
	if ev.Device != "donor-b" || len(ev.Attempted) != 0 {
		t.Fatalf("event = %+v", ev)
	}
	if flakies["donor-a"].Calls(store.OpPut) != 0 {
		t.Fatal("pinned shipment touched the wrong device")
	}

	// Pinning to the failing device must NOT fail over.
	_, err = f.rt.SwapOut(clusters[2], WithDevice("donor-a"))
	if !errors.Is(err, store.ErrUnavailable) {
		t.Fatalf("pinned-to-dead err = %v", err)
	}
	if f.rt.Manager().IsSwapped(clusters[2]) {
		t.Fatal("cluster swapped despite pinned device failing")
	}
}

func TestSwapOutFailureWhenAllDevicesFail(t *testing.T) {
	f, flakies, _ := failoverFixture(t)
	flakies["donor-a"].FailNext(store.OpPut, -1)
	flakies["donor-b"].FailNext(store.OpPut, -1)
	_, clusters := f.buildList(t, 20, 10, 8)

	_, err := f.rt.SwapOut(clusters[1])
	if !errors.Is(err, store.ErrUnavailable) && !errors.Is(err, store.ErrNoDevice) {
		t.Fatalf("err = %v", err)
	}
	if f.rt.Manager().IsSwapped(clusters[1]) {
		t.Fatal("cluster marked swapped with every device failing")
	}
	checkClean(t, f.rt)
}

func TestSwapInDeadlineLeavesClusterSwapped(t *testing.T) {
	f, flakies, _ := failoverFixture(t)
	flaky := flakies["donor-a"]
	f.reg.Remove("donor-b") // single donor, so the cluster lands on donor-a
	_, clusters := f.buildList(t, 20, 10, 8)
	if _, err := f.rt.SwapOut(clusters[1]); err != nil {
		t.Fatal(err)
	}
	f.rt.Collect()

	// The device stops answering: a bounded swap-in must fail cleanly and
	// leave the cluster consistently swapped.
	flaky.HangOn(store.OpGet, 1)
	_, err := f.rt.SwapIn(clusters[1], WithTimeout(30*time.Millisecond))
	if err == nil {
		t.Fatal("swap-in over hung device succeeded")
	}
	if !f.rt.Manager().IsSwapped(clusters[1]) {
		t.Fatal("timed-out swap-in cleared the swapped state")
	}
	checkClean(t, f.rt)

	// A retry (only the first call hangs) recovers the cluster.
	if _, err := f.rt.SwapIn(clusters[1]); err != nil {
		t.Fatalf("retry after timeout: %v", err)
	}
	if got := f.snapshotTags(t); len(got) != 20 {
		t.Fatalf("recovered %d tags", len(got))
	}
}

func TestDropAbandonedAfterRetryBudget(t *testing.T) {
	f, flakies, bus := failoverFixture(t)
	flaky := flakies["donor-a"]
	f.reg.Remove("donor-b")
	_, clusters := f.buildList(t, 20, 10, 8)
	if _, err := f.rt.SwapOut(clusters[1]); err != nil {
		t.Fatal(err)
	}
	f.rt.Collect()

	var abandoned []SwapEvent
	bus.Subscribe(event.TopicDropAbandoned, func(ev event.Event) {
		if e, ok := ev.Payload.(SwapEvent); ok {
			abandoned = append(abandoned, e)
		}
	})

	// The reload succeeds but the device refuses to discard the stale copy:
	// the drop is deferred, retried a bounded number of times, then abandoned.
	flaky.FailNext(store.OpDrop, -1)
	f.rt.Manager().SetDropRetryLimit(2)
	if _, err := f.rt.SwapIn(clusters[1]); err != nil {
		t.Fatal(err)
	}
	if got := f.rt.Manager().PendingDrops(); got != 1 {
		t.Fatalf("pending drops = %d, want 1", got)
	}

	f.rt.Collect() // retry 1: fails, requeued
	if got := f.rt.Manager().PendingDrops(); got != 1 {
		t.Fatalf("pending drops after first retry = %d", got)
	}
	f.rt.Collect() // retry 2: budget spent, abandoned
	if got := f.rt.Manager().PendingDrops(); got != 0 {
		t.Fatalf("pending drops after abandonment = %d", got)
	}
	if f.rt.Manager().AbandonedDrops() != 1 {
		t.Fatalf("abandoned drops = %d", f.rt.Manager().AbandonedDrops())
	}
	if len(abandoned) != 1 || abandoned[0].Device != "donor-a" {
		t.Fatalf("abandoned events = %+v", abandoned)
	}
	// Abandonment is terminal: further collections stay quiet.
	f.rt.Collect()
	if f.rt.Manager().AbandonedDrops() != 1 {
		t.Fatal("abandonment double-counted")
	}
}
