package core

import (
	"errors"
	"testing"

	"objectswap/internal/heap"
	"objectswap/internal/link"
	"objectswap/internal/store"
)

// flakyFixture builds a runtime whose only device sits behind a fault-
// injecting link (every failEvery-th operation errors).
func flakyFixture(t testing.TB, failEvery int) (*fixture, *link.Link) {
	t.Helper()
	h := heap.New(0)
	classes := heap.NewRegistry()
	devices := store.NewRegistry(store.SelectMostFree)
	mem := store.NewMem(0)
	flaky := link.Wrap(mem, link.Profile{Name: "flaky", FailEvery: failEvery}, &link.VirtualClock{})
	if err := devices.Add("flaky-neighbor", flaky); err != nil {
		t.Fatal(err)
	}
	rt := NewRuntime(h, classes, WithStores(devices))
	f := &fixture{rt: rt, reg: devices, mem: mem, node: newNodeClass()}
	rt.MustRegisterClass(f.node)
	return f, flaky
}

func TestSwapOutSurvivesShipFailure(t *testing.T) {
	// Every operation fails: the Put is rejected, and the graph must be
	// untouched and fully usable afterwards.
	f, _ := flakyFixture(t, 1)
	_, clusters := f.buildList(t, 20, 10, 8)
	want := f.snapshotTags(t)

	// Depending on which operation hits the fault (the selection probe or
	// the shipment itself), the failure surfaces as ErrNoDevice or
	// ErrUnavailable; either way it must be clean.
	_, err := f.rt.SwapOut(clusters[1])
	if !errors.Is(err, store.ErrUnavailable) && !errors.Is(err, store.ErrNoDevice) {
		t.Fatalf("swap-out over dead link: %v", err)
	}
	if f.rt.Manager().IsSwapped(clusters[1]) {
		t.Fatal("cluster marked swapped after failed shipment")
	}
	checkClean(t, f.rt)
	got := f.snapshotTags(t)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("graph damaged by failed swap-out at %d", i)
		}
	}
}

func TestSwapInRetriesAfterTransientFetchFailure(t *testing.T) {
	// Every third operation fails. A swap-in that hits the bad operation
	// errors out but leaves the swapped state intact; a retry succeeds.
	f, _ := flakyFixture(t, 3)
	_, clusters := f.buildList(t, 20, 10, 8)

	// Operation 1 = Stats (device pick), 2 = Put: swap-out succeeds with the
	// 3rd op still pending.
	if _, err := f.rt.SwapOut(clusters[1]); err != nil {
		t.Fatal(err)
	}
	f.rt.Collect()

	// Keep attempting the traversal until it succeeds; every failed attempt
	// must leave the middleware consistent.
	var lastErr error
	for attempt := 0; attempt < 6; attempt++ {
		tags, err := trySnapshot(f)
		if err != nil {
			lastErr = err
			checkClean(t, f.rt)
			if !f.rt.Manager().IsSwapped(clusters[1]) {
				t.Fatal("failed swap-in cleared the swapped state")
			}
			continue
		}
		if len(tags) != 20 {
			t.Fatalf("tags = %d", len(tags))
		}
		return // success
	}
	t.Fatalf("traversal never succeeded over flaky link: %v", lastErr)
}

// trySnapshot walks the list, returning an error instead of failing the test.
func trySnapshot(f *fixture) ([]int64, error) {
	var tags []int64
	cur, ok := f.rt.Root("head")
	if !ok {
		return nil, errors.New("no head")
	}
	for !cur.IsNil() {
		tag, err := f.rt.Field(cur, "tag")
		if err != nil {
			return nil, err
		}
		tags = append(tags, tag.MustInt())
		next, err := f.rt.Field(cur, "next")
		if err != nil {
			return nil, err
		}
		cur = next
	}
	return tags, nil
}

func TestDeviceVanishesWhileHoldingCluster(t *testing.T) {
	// The device disappears from the registry entirely while holding a
	// swapped cluster: swap-in must fail cleanly; after the device returns,
	// the cluster is recoverable.
	f := newFixture(t, 0)
	_, clusters := f.buildList(t, 20, 10, 8)
	if _, err := f.rt.SwapOut(clusters[1]); err != nil {
		t.Fatal(err)
	}
	f.rt.Collect()

	f.reg.Remove("pda-neighbor")
	if _, err := f.rt.SwapIn(clusters[1]); !errors.Is(err, store.ErrUnavailable) {
		t.Fatalf("swap-in with vanished device: %v", err)
	}
	checkClean(t, f.rt)

	// Re-attach the same store under the same name: data is still there.
	if err := f.reg.Add("pda-neighbor", f.mem); err != nil {
		t.Fatal(err)
	}
	if _, err := f.rt.SwapIn(clusters[1]); err != nil {
		t.Fatal(err)
	}
	if got := f.snapshotTags(t); len(got) != 20 {
		t.Fatalf("recovered %d tags", len(got))
	}
}

func TestCorruptedShipmentRejectedOnReload(t *testing.T) {
	// The device returns tampered XML: swap-in must fail with a decode error
	// and leave the middleware consistent (the cluster stays swapped).
	f := newFixture(t, 0)
	_, clusters := f.buildList(t, 20, 10, 8)
	ev, err := f.rt.SwapOut(clusters[1])
	if err != nil {
		t.Fatal(err)
	}
	f.rt.Collect()

	if err := f.mem.Put(ev.Key, []byte("<swapcluster id=\"x\" version=\"1\"><object id=\"0\"")); err != nil {
		t.Fatal(err)
	}
	if _, err := f.rt.SwapIn(clusters[1]); err == nil {
		t.Fatal("tampered shipment accepted")
	}
	if !f.rt.Manager().IsSwapped(clusters[1]) {
		t.Fatal("cluster no longer swapped after rejected shipment")
	}
	checkClean(t, f.rt)
}

func TestWrongShipmentKeyRejected(t *testing.T) {
	// The device returns a VALID document under the wrong key (mixed-up
	// storage): the key check must reject it.
	f := newFixture(t, 0)
	_, clusters := f.buildList(t, 30, 10, 8)
	ev1, err := f.rt.SwapOut(clusters[1])
	if err != nil {
		t.Fatal(err)
	}
	ev2, err := f.rt.SwapOut(clusters[2])
	if err != nil {
		t.Fatal(err)
	}
	f.rt.Collect()

	// Cross the payloads.
	d2, _ := f.mem.Get(ev2.Key)
	if err := f.mem.Put(ev1.Key, d2); err != nil {
		t.Fatal(err)
	}
	if _, err := f.rt.SwapIn(clusters[1]); err == nil {
		t.Fatal("wrong shipment accepted")
	}
	if !f.rt.Manager().IsSwapped(clusters[1]) {
		t.Fatal("cluster no longer swapped after rejected shipment")
	}
}
