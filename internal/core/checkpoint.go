package core

import (
	"encoding/xml"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"

	"objectswap/internal/heap"
	"objectswap/internal/xmlcodec"
)

// Device persistence — the Persistence module of OBIWAN's architecture
// (Figure 1 of the paper): a device can checkpoint its entire middleware
// state to a stream and restore it later (reboot, battery swap, process
// restart), including clusters that are swapped out on nearby devices at
// checkpoint time. The checkpoint stores:
//
//   - every resident cluster's objects (XML-wrapped, like any shipment);
//   - for each swapped-out cluster: the device name and storage key where
//     its XML lives, its member identities and classes, and the outbound
//     slot table needed to rebuild its replacement-object;
//   - the global roots and live object-fault placeholders;
//   - the key-generation state, so post-restore shipments stay unique.
//
// Restore rebuilds the graph under the original object identities, then
// re-mediates every boundary — swapped clusters come back as swapped, and
// the first touch faults them in from wherever they were left.

// ErrNotFresh reports a restore into a runtime that already holds state.
var ErrNotFresh = errors.New("core: checkpoint restore requires a fresh runtime")

// ErrBadCheckpoint reports a malformed checkpoint stream.
var ErrBadCheckpoint = errors.New("core: malformed checkpoint")

// checkpointVersion stamps the stream format.
const checkpointVersion = 1

// objProxyClassMarker prefixes object-fault placeholder references inside
// checkpoint documents (distinguishing them from cross-cluster references).
const objProxyClassMarker = "$objproxy:"

type ckptDoc struct {
	XMLName xml.Name      `xml:"checkpoint"`
	Version int           `xml:"version,attr"`
	Device  string        `xml:"device,attr"`
	KeySeq  uint64        `xml:"keyseq,attr"`
	MaxID   uint64        `xml:"maxid,attr"`
	Plain   []ckptCluster `xml:"cluster"`
	Roots   []ckptRoot    `xml:"root"`
}

type ckptCluster struct {
	ID      uint32 `xml:"id,attr"`
	Swapped bool   `xml:"swapped,attr"`
	// Device is the primary replica; Replicas holds the full replica set
	// (primary first). Streams written before replication carry only the
	// device attribute, which restores as a single-replica set — the format
	// version is unchanged.
	Device  string `xml:"device,attr,omitempty"`
	Key     string `xml:"key,attr,omitempty"`
	Payload int    `xml:"payload,attr,omitempty"`
	Bytes   int64  `xml:"bytes,attr,omitempty"`
	// CRC is the IEEE CRC32 of the shipped payload, restored so swap-in and
	// repair keep verifying replicas across a restart (0 = written by a
	// stream that predates checksumming — verification is skipped).
	CRC uint32 `xml:"crc,attr,omitempty"`
	// Format is the negotiated wire format of the swapped shipment ("" = XML,
	// as written by streams that predate negotiation).
	Format   string         `xml:"format,attr,omitempty"`
	Replicas []ckptReplica  `xml:"replica"`
	Members  []ckptMember   `xml:"member"`
	Out      []ckptOutbound `xml:"outbound"`
	// Base records the delta-anchor shipment donors still hold, when the
	// runtime ships deltas. Only the key, format and donor set survive the
	// checkpoint — the base membership/slot snapshot does not, so a restored
	// base supports donor-side cleanup and delta *decoding*, while the first
	// post-restore swap-out ships full (and re-anchors a complete base).
	Base *ckptBase `xml:"base,omitempty"`
	// Doc holds the XML wrapping of a resident cluster's objects.
	Doc string `xml:"doc,omitempty"`
}

type ckptBase struct {
	Key      string        `xml:"key,attr"`
	Format   string        `xml:"format,attr,omitempty"`
	CRC      uint32        `xml:"crc,attr,omitempty"`
	Replicas []ckptReplica `xml:"replica"`
}

type ckptReplica struct {
	Device string `xml:"device,attr"`
}

// replicaSet resolves a checkpointed cluster's replica devices: the replica
// elements when present, else the legacy single device attribute.
func (ck *ckptCluster) replicaSet() []string {
	if len(ck.Replicas) == 0 {
		if ck.Device == "" {
			return nil
		}
		return []string{ck.Device}
	}
	out := make([]string, 0, len(ck.Replicas))
	for _, r := range ck.Replicas {
		out = append(out, r.Device)
	}
	return out
}

type ckptMember struct {
	ID    uint64 `xml:"id,attr"`
	Class string `xml:"class,attr"`
}

type ckptOutbound struct {
	Slot   int    `xml:"slot,attr"`
	Target uint64 `xml:"target,attr"`
}

type ckptRoot struct {
	Name string `xml:"name,attr"`
	// Target is the ultimate object identity (0 = nil root).
	Target uint64 `xml:"target,attr"`
	// Remote marks an object-fault placeholder root.
	Remote uint64 `xml:"remote,attr,omitempty"`
	Class  string `xml:"class,attr,omitempty"`
}

// SaveCheckpoint writes the device's full middleware state. It must not run
// with in-flight invocations. The save stops the world (every swap shard
// lock, in order) so the stream is a consistent cut: no swap commits or
// installs mid-checkpoint.
func (rt *Runtime) SaveCheckpoint(w io.Writer) error {
	if rt.depth != 0 {
		return errors.New("core: checkpoint with in-flight invocations")
	}
	rt.lockAll()
	defer rt.unlockAll()
	doc := ckptDoc{Version: checkpointVersion, Device: rt.name, KeySeq: rt.keyseq.Load()}

	clusterIDs := rt.mgr.Clusters()

	var maxID heap.ObjID
	note := func(id heap.ObjID) {
		if id > maxID {
			maxID = id
		}
	}

	for _, cid := range clusterIDs {
		if cid == RootCluster {
			continue
		}
		ts := rt.mgr.tab(cid)
		ts.mu.Lock()
		cs := ts.clusters[cid]
		members := make([]heap.ObjID, 0, len(cs.objects))
		for oid := range cs.objects {
			members = append(members, oid)
			note(oid)
		}
		swapped := cs.swapped
		devices := append([]string(nil), cs.devices...)
		key, payload, bytesAtSwap := cs.key, cs.payloadBytes, cs.bytesAtSwap
		crc := cs.crc
		format := cs.format
		base := shipmentBase{
			key:     cs.base.key,
			format:  cs.base.format,
			crc:     cs.base.crc,
			devices: append([]string(nil), cs.base.devices...),
		}
		replID := cs.replacement
		ts.mu.Unlock()
		sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })

		ck := ckptCluster{ID: uint32(cid), Swapped: swapped}
		for _, oid := range members {
			class, _ := rt.mgr.classOf(oid)
			ck.Members = append(ck.Members, ckptMember{ID: uint64(oid), Class: class})
		}
		if swapped {
			ck.Key, ck.Payload, ck.Bytes = key, payload, bytesAtSwap
			ck.CRC = crc
			ck.Format = format
			if len(devices) > 0 {
				ck.Device = devices[0]
			}
			for _, d := range devices {
				ck.Replicas = append(ck.Replicas, ckptReplica{Device: d})
			}
			// The outbound slot table, by ultimate target identity. Nil slots
			// (delta-remapped placeholders for targets no longer referenced)
			// are simply omitted; the sparse slot list restores them as nil.
			repl, err := rt.h.Get(replID)
			if err != nil {
				return fmt.Errorf("core: checkpoint: cluster %d replacement: %w", cid, err)
			}
			outV, _ := repl.FieldByName(fldOut)
			slots, _ := outV.List()
			for slot, ref := range slots {
				if ref.IsNil() {
					continue
				}
				pid, _ := ref.Ref()
				p, err := rt.h.Get(pid)
				if err != nil {
					return fmt.Errorf("core: checkpoint: cluster %d outbound slot %d: %w", cid, slot, err)
				}
				target := proxyUltimate(p)
				note(target)
				ck.Out = append(ck.Out, ckptOutbound{Slot: slot, Target: uint64(target)})
			}
		} else {
			data, err := rt.encodeResidentCluster(cid, members)
			if err != nil {
				return err
			}
			ck.Doc = string(data)
		}
		if base.key != "" {
			ck.Base = &ckptBase{Key: base.key, Format: base.format, CRC: base.crc}
			for _, d := range base.devices {
				ck.Base.Replicas = append(ck.Base.Replicas, ckptReplica{Device: d})
			}
		}
		doc.Plain = append(doc.Plain, ck)
	}

	// Roots.
	for _, name := range rt.h.RootNames() {
		v, _ := rt.h.Root(name)
		id, err := v.Ref()
		if err != nil {
			return fmt.Errorf("core: checkpoint: root %s is not a reference", name)
		}
		cr := ckptRoot{Name: name, Target: uint64(id)}
		if id != heap.NilID {
			if o, err := rt.h.Get(id); err == nil {
				switch o.Class().Special {
				case heap.SpecialSCProxy:
					cr.Target = uint64(proxyUltimate(o))
				case heap.SpecialObjProxy:
					cr.Target = 0
					cr.Remote = uint64(ObjProxyRemote(o))
					cr.Class = ObjProxyClass(o)
				}
			}
			note(heap.ObjID(cr.Target))
		}
		doc.Roots = append(doc.Roots, cr)
	}
	doc.MaxID = uint64(maxID)

	out, err := xml.MarshalIndent(&doc, "", "  ")
	if err != nil {
		return fmt.Errorf("core: checkpoint: %w", err)
	}
	if _, err := w.Write([]byte(xml.Header)); err != nil {
		return err
	}
	_, err = w.Write(out)
	return err
}

// encodeResidentCluster wraps a resident cluster for the checkpoint:
// intra-cluster references are internal; everything else is encoded by
// ultimate identity (or as an object-fault placeholder).
func (rt *Runtime) encodeResidentCluster(cid ClusterID, members []heap.ObjID) ([]byte, error) {
	memberSet := make(map[heap.ObjID]bool, len(members))
	objs := make([]*heap.Object, 0, len(members))
	for _, oid := range members {
		memberSet[oid] = true
		o, err := rt.h.Get(oid)
		if err != nil {
			return nil, fmt.Errorf("core: checkpoint: member @%d of cluster %d: %w", oid, cid, err)
		}
		objs = append(objs, o)
	}
	encodeRef := func(rid heap.ObjID) (xmlcodec.Value, error) {
		if memberSet[rid] {
			return xmlcodec.InternalRef(rid), nil
		}
		ro, err := rt.h.Get(rid)
		if err != nil {
			// Non-resident member of a swapped cluster: record its identity.
			if _, known := rt.mgr.classOf(rid); known {
				return xmlcodec.RemoteRef(rid), nil
			}
			return xmlcodec.Value{}, fmt.Errorf("core: checkpoint: dangling @%d", rid)
		}
		switch ro.Class().Special {
		case heap.SpecialSCProxy:
			return xmlcodec.RemoteRef(proxyUltimate(ro)), nil
		case heap.SpecialObjProxy:
			return xmlcodec.RemoteRefOf(ObjProxyRemote(ro), objProxyClassMarker+ObjProxyClass(ro)), nil
		case heap.SpecialNone:
			return xmlcodec.RemoteRef(rid), nil
		default:
			return xmlcodec.Value{}, fmt.Errorf("core: checkpoint: %s reference @%d", ro.Class().Special, rid)
		}
	}
	doc, err := xmlcodec.EncodeObjects(fmt.Sprintf("ckpt-cluster-%d", cid), objs, encodeRef)
	if err != nil {
		return nil, err
	}
	return doc.Encode()
}

// LoadCheckpoint restores a previously saved state into this runtime. The
// runtime must be fresh — classes registered, but no clusters, objects or
// roots — and attached to the same store provider namespace, so swapped
// clusters can be faulted back from their devices.
func (rt *Runtime) LoadCheckpoint(r io.Reader) error {
	if len(rt.mgr.Clusters()) != 1 || rt.h.Len() != 0 || len(rt.h.RootNames()) != 0 {
		return ErrNotFresh
	}
	data, err := io.ReadAll(r)
	if err != nil {
		return err
	}
	var doc ckptDoc
	if err := xml.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("%w: %v", ErrBadCheckpoint, err)
	}
	if doc.Version != checkpointVersion {
		return fmt.Errorf("%w: version %d", ErrBadCheckpoint, doc.Version)
	}
	rt.name = doc.Device
	rt.keyseq.Store(doc.KeySeq)
	// Restoration stops the world (it rebuilds the whole table) and runs as a
	// mutate section: middleware allocations below must not re-enter the
	// evictor, whose Collect would deadlock on the held shard locks.
	rt.lockAll()
	defer rt.unlockAll()
	endMutate := rt.beginMutate(nil)
	defer endMutate()
	// Restoration is not user mutation.
	defer rt.h.SuspendWriteObserver()()
	rt.h.EnsureIDAbove(heap.ObjID(doc.MaxID))

	// Pass 1: recreate cluster records with their original ids.
	m := rt.mgr
	m.mu.Lock()
	for _, ck := range doc.Plain {
		cid := ClusterID(ck.ID)
		ts := m.tab(cid)
		ts.mu.Lock()
		_, dup := ts.clusters[cid]
		ts.mu.Unlock()
		if dup {
			m.mu.Unlock()
			return fmt.Errorf("%w: duplicate cluster %d", ErrBadCheckpoint, cid)
		}
		cs := &clusterState{id: cid, objects: make(map[heap.ObjID]bool, len(ck.Members))}
		for _, mem := range ck.Members {
			oid := heap.ObjID(mem.ID)
			cs.objects[oid] = true
			m.objects[oid] = objInfo{cluster: cid, class: mem.Class}
		}
		if ck.Swapped {
			devices := ck.replicaSet()
			for _, d := range devices {
				if d == "" {
					m.mu.Unlock()
					return fmt.Errorf("%w: cluster %d has an empty replica device", ErrBadCheckpoint, cid)
				}
			}
			if len(devices) == 0 {
				m.mu.Unlock()
				return fmt.Errorf("%w: swapped cluster %d has no replica devices", ErrBadCheckpoint, cid)
			}
			cs.swapped = true
			cs.devices, cs.key = devices, ck.Key
			cs.payloadBytes, cs.bytesAtSwap = ck.Payload, ck.Bytes
			cs.crc = ck.CRC
			cs.format = ck.Format
		}
		if ck.Base != nil {
			cs.base = shipmentBase{key: ck.Base.Key, format: ck.Base.Format, crc: ck.Base.CRC}
			for _, r := range ck.Base.Replicas {
				cs.base.devices = append(cs.base.devices, r.Device)
			}
		}
		ts.mu.Lock()
		ts.clusters[cid] = cs
		ts.mu.Unlock()
		if cid > m.nextCluster {
			m.nextCluster = cid
		}
	}
	m.mu.Unlock()

	// Pass 2: install resident clusters under original identities.
	decodeRef := func(v xmlcodec.Value) (heap.Value, error) {
		if v.RefClass != xmlcodec.RefRemote {
			return heap.Nil(), fmt.Errorf("%w: unexpected reference class", ErrBadCheckpoint)
		}
		if strings.HasPrefix(v.Class, objProxyClassMarker) {
			pid, err := rt.ObjProxyFor(v.Target, strings.TrimPrefix(v.Class, objProxyClassMarker))
			if err != nil {
				return heap.Nil(), err
			}
			return heap.Ref(pid), nil
		}
		// Cross-cluster identity: temporarily direct; re-mediated below.
		return heap.Ref(v.Target), nil
	}
	for _, ck := range doc.Plain {
		if ck.Swapped {
			continue
		}
		inner, err := xmlcodec.Decode([]byte(ck.Doc))
		if err != nil {
			return fmt.Errorf("%w: cluster %d: %v", ErrBadCheckpoint, ck.ID, err)
		}
		if _, err := inner.Install(rt.h, rt.reg, decodeRef); err != nil {
			return fmt.Errorf("core: restore cluster %d: %w", ck.ID, err)
		}
	}

	// Pass 3: rebuild replacement-objects and outbound proxies for swapped
	// clusters (every cluster record exists by now, so proxies to other
	// swapped clusters correctly target their replacements once created —
	// order outbound creation after all replacements exist).
	for _, ck := range doc.Plain {
		if !ck.Swapped {
			continue
		}
		repl, err := rt.allocMiddleware(rt.replacementClass)
		if err != nil {
			return fmt.Errorf("core: restore replacement for cluster %d: %w", ck.ID, err)
		}
		if err := repl.SetFieldByName(fldClust, heap.Int(int64(ck.ID))); err != nil {
			return err
		}
		if err := repl.SetFieldByName(fldKey, heap.Str(ck.Key)); err != nil {
			return err
		}
		if err := repl.SetFieldByName(fldStore, heap.Str(strings.Join(ck.replicaSet(), ","))); err != nil {
			return err
		}
		ts := rt.mgr.tab(ClusterID(ck.ID))
		ts.mu.Lock()
		ts.clusters[ClusterID(ck.ID)].replacement = repl.ID()
		ts.mu.Unlock()
	}
	for _, ck := range doc.Plain {
		if !ck.Swapped {
			continue
		}
		// Size the table by the highest slot index: the list may be sparse
		// (nil placeholder slots in delta-remapped tables are not saved).
		maxSlot := -1
		for _, ob := range ck.Out {
			if ob.Slot > maxSlot {
				maxSlot = ob.Slot
			}
		}
		slots := make([]heap.Value, maxSlot+1)
		for _, ob := range ck.Out {
			if ob.Slot < 0 {
				return fmt.Errorf("%w: cluster %d outbound slot %d", ErrBadCheckpoint, ck.ID, ob.Slot)
			}
			target := heap.ObjID(ob.Target)
			class, known := rt.mgr.classOf(target)
			if !known {
				return fmt.Errorf("%w: cluster %d outbound target @%d unknown", ErrBadCheckpoint, ck.ID, target)
			}
			pid, err := rt.newProxy(ClusterID(ck.ID), target, class, proxyModeNormal)
			if err != nil {
				return fmt.Errorf("core: restore outbound proxy: %w", err)
			}
			slots[ob.Slot] = heap.Ref(pid)
		}
		ts := rt.mgr.tab(ClusterID(ck.ID))
		ts.mu.Lock()
		replID := ts.clusters[ClusterID(ck.ID)].replacement
		ts.mu.Unlock()
		repl, err := rt.h.Get(replID)
		if err != nil {
			return err
		}
		if err := repl.SetFieldByName(fldOut, heap.List(slots...)); err != nil {
			return err
		}
	}

	// Pass 4: re-mediate resident clusters (cross-cluster refs installed
	// directly in pass 2 gain their proxies; proxies to swapped clusters
	// target the fresh replacements).
	for _, ck := range doc.Plain {
		if ck.Swapped {
			continue
		}
		if err := rt.remediateCluster(ClusterID(ck.ID)); err != nil {
			return err
		}
	}

	// Pass 5: roots (mediated by SetRoot).
	for _, cr := range doc.Roots {
		switch {
		case cr.Remote != 0:
			pid, err := rt.ObjProxyFor(heap.ObjID(cr.Remote), cr.Class)
			if err != nil {
				return err
			}
			if err := rt.SetRoot(cr.Name, heap.Ref(pid)); err != nil {
				return err
			}
		case cr.Target == 0:
			rt.h.SetRoot(cr.Name, heap.Nil())
		default:
			if err := rt.SetRoot(cr.Name, heap.Ref(heap.ObjID(cr.Target))); err != nil {
				return err
			}
		}
	}
	return nil
}
