package core

import (
	"errors"
	"fmt"
	"testing"

	"objectswap/internal/heap"
	"objectswap/internal/store"
)

// newNodeClass builds the list-node class used throughout the core tests. Its
// methods exercise every interception path: plain scalar passing ("walk"),
// reference returns ("next", "fetch"), and reference arguments ("setNext").
func newNodeClass() *heap.Class {
	c := heap.NewClass("Node",
		heap.FieldDef{Name: "payload", Kind: heap.KindBytes},
		heap.FieldDef{Name: "next", Kind: heap.KindRef},
		heap.FieldDef{Name: "tag", Kind: heap.KindInt},
	)
	c.AddMethod("next", func(call *heap.Call) ([]heap.Value, error) {
		v, err := call.Self.FieldByName("next")
		if err != nil {
			return nil, err
		}
		return []heap.Value{v}, nil
	})
	c.AddMethod("tag", func(call *heap.Call) ([]heap.Value, error) {
		v, err := call.Self.FieldByName("tag")
		if err != nil {
			return nil, err
		}
		return []heap.Value{v}, nil
	})
	// walk: Test A1's recursion — pass an int down the whole list.
	c.AddMethod("walk", func(call *heap.Call) ([]heap.Value, error) {
		depth, err := call.Arg(0).Int()
		if err != nil {
			return nil, err
		}
		next, err := call.Self.FieldByName("next")
		if err != nil {
			return nil, err
		}
		if next.IsNil() {
			return []heap.Value{heap.Int(depth)}, nil
		}
		return call.RT.Invoke(next, "walk", heap.Int(depth+1))
	})
	// fetch: Test A2's inner recursion — return a reference k positions
	// ahead (or the last node).
	c.AddMethod("fetch", func(call *heap.Call) ([]heap.Value, error) {
		k, err := call.Arg(0).Int()
		if err != nil {
			return nil, err
		}
		next, err := call.Self.FieldByName("next")
		if err != nil {
			return nil, err
		}
		if k <= 0 || next.IsNil() {
			return []heap.Value{call.Self.RefTo()}, nil
		}
		return call.RT.Invoke(next, "fetch", heap.Int(k-1))
	})
	// setNext: reference-argument interception.
	c.AddMethod("setNext", func(call *heap.Call) ([]heap.Value, error) {
		if err := call.RT.SetFieldValue(call.Self.RefTo(), "next", call.Arg(0)); err != nil {
			return nil, err
		}
		return nil, nil
	})
	return c
}

// fixture bundles a runtime wired to an in-memory device registry.
type fixture struct {
	rt   *Runtime
	reg  *store.Registry
	mem  *store.Mem
	node *heap.Class
}

func newFixture(t testing.TB, capacity int64) *fixture {
	t.Helper()
	h := heap.New(capacity)
	classes := heap.NewRegistry()
	devices := store.NewRegistry(store.SelectMostFree)
	mem := store.NewMem(0)
	if err := devices.Add("pda-neighbor", mem); err != nil {
		t.Fatal(err)
	}
	rt := NewRuntime(h, classes, WithStores(devices))
	f := &fixture{rt: rt, reg: devices, mem: mem, node: newNodeClass()}
	rt.MustRegisterClass(f.node)
	return f
}

// buildList creates n chained nodes, perCluster per swap-cluster, each with a
// payload of payloadLen bytes, and installs the head as root "head". It
// returns the node ids in list order and the cluster ids used.
func (f *fixture) buildList(t testing.TB, n, perCluster, payloadLen int) ([]heap.ObjID, []ClusterID) {
	t.Helper()
	var clusters []ClusterID
	ids := make([]heap.ObjID, n)
	var objs []*heap.Object
	for i := 0; i < n; i++ {
		if i%perCluster == 0 {
			clusters = append(clusters, f.rt.Manager().NewCluster())
		}
		o, err := f.rt.NewObject(f.node, clusters[len(clusters)-1])
		if err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
		payload := make([]byte, payloadLen)
		for j := range payload {
			payload[j] = byte(i)
		}
		o.MustSet("payload", heap.Bytes(payload)).MustSet("tag", heap.Int(int64(i)))
		ids[i] = o.ID()
		objs = append(objs, o)
	}
	for i := 0; i < n-1; i++ {
		if err := f.rt.SetFieldValue(objs[i].RefTo(), "next", objs[i+1].RefTo()); err != nil {
			t.Fatalf("link %d: %v", i, err)
		}
	}
	if err := f.rt.SetRoot("head", objs[0].RefTo()); err != nil {
		t.Fatal(err)
	}
	return ids, clusters
}

func (f *fixture) head(t testing.TB) heap.Value {
	t.Helper()
	v, ok := f.rt.Root("head")
	if !ok {
		t.Fatal("missing head root")
	}
	return v
}

func TestBoundaryEdgesGetProxies(t *testing.T) {
	f := newFixture(t, 0)
	_, clusters := f.buildList(t, 30, 10, 8)
	if len(clusters) != 3 {
		t.Fatalf("clusters = %d", len(clusters))
	}
	// Two boundary edges inside the list, plus the root → cluster-1 edge.
	if got := f.rt.Manager().ProxyCount(); got != 3 {
		t.Fatalf("proxy count = %d, want 3", got)
	}
	if !f.rt.IsProxyRef(f.head(t)) {
		t.Error("root should hold a proxy (cluster-0 → cluster-1 edge)")
	}
}

func TestIntraClusterEdgesAreDirect(t *testing.T) {
	f := newFixture(t, 0)
	ids, _ := f.buildList(t, 10, 10, 8)
	// Single cluster: no boundary edges except the root.
	if got := f.rt.Manager().ProxyCount(); got != 1 {
		t.Fatalf("proxy count = %d, want 1 (root only)", got)
	}
	o, _ := f.rt.Heap().Get(ids[0])
	next, _ := o.FieldByName("next")
	if next.MustRef() != ids[1] {
		t.Fatalf("intra-cluster edge not direct: %v", next)
	}
}

func TestWalkMatchesDirectRuntime(t *testing.T) {
	for _, per := range []int{3, 7, 20, 100} {
		per := per
		t.Run(fmt.Sprintf("per=%d", per), func(t *testing.T) {
			f := newFixture(t, 0)
			f.buildList(t, 100, per, 8)
			out, err := f.rt.Invoke(f.head(t), "walk", heap.Int(1))
			if err != nil {
				t.Fatal(err)
			}
			if out[0].MustInt() != 100 {
				t.Fatalf("walk depth = %v, want 100", out[0])
			}
		})
	}
}

func TestProxyReuseAcrossSamePair(t *testing.T) {
	f := newFixture(t, 0)
	ids, clusters := f.buildList(t, 20, 10, 8)
	before := f.rt.Manager().ProxyCount()

	// Add a second reference from cluster 1 to the same head of cluster 2:
	// must reuse the existing boundary proxy.
	src, _ := f.rt.Heap().Get(ids[3])
	if err := f.rt.SetFieldValue(src.RefTo(), "next", heap.Ref(ids[10])); err != nil {
		t.Fatal(err)
	}
	if got := f.rt.Manager().ProxyCount(); got != before {
		t.Fatalf("proxy count = %d, want %d (reuse)", got, before)
	}
	// Confirm both fields hold the same proxy object.
	a, _ := f.rt.Heap().Get(ids[9])
	b, _ := f.rt.Heap().Get(ids[3])
	av, _ := a.FieldByName("next")
	bv, _ := b.FieldByName("next")
	if av.MustRef() != bv.MustRef() {
		t.Fatalf("distinct proxies for same (src,target): %v vs %v", av, bv)
	}
	_ = clusters
}

func TestDismantleIntoOwnCluster(t *testing.T) {
	f := newFixture(t, 0)
	ids, _ := f.buildList(t, 20, 10, 8)
	// Node 5 (cluster 1) gets a reference to node 2 (cluster 1) that arrives
	// as a proxy-free direct ref even if expressed via the head proxy chain.
	out, err := f.rt.Invoke(f.head(t), "fetch", heap.Int(2))
	if err != nil {
		t.Fatal(err)
	}
	// Result returned to cluster 0 — head's proxy source — so fetch(2)
	// (a cluster-1 object) must be mediated for cluster 0.
	if !f.rt.IsProxyRef(out[0]) {
		t.Fatalf("cross-cluster return not proxied: %v", out[0])
	}
	eq, err := f.rt.RefEqual(out[0], heap.Ref(ids[2]))
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Fatal("fetch(2) did not reach node 2")
	}

	// Now store that (cluster-0-mediated) value into a cluster-1 object's
	// field: interception must dismantle it back to a direct reference.
	n5, _ := f.rt.Heap().Get(ids[5])
	if err := f.rt.SetFieldValue(n5.RefTo(), "next", out[0]); err != nil {
		t.Fatal(err)
	}
	nv, _ := n5.FieldByName("next")
	if nv.MustRef() != ids[2] {
		t.Fatalf("reference into own cluster not dismantled: %v", nv)
	}
}

func TestCrossClusterReturnCreatesAndReusesProxy(t *testing.T) {
	f := newFixture(t, 0)
	_, _ = f.buildList(t, 40, 10, 8)
	before := f.rt.Manager().ProxyCount()
	// fetch(15) from the head reaches node 15 in cluster 2. The returned
	// reference crosses two boundaries on its way back — the cluster-2→1
	// proxy in the middle of the list and the cluster-1→0 head proxy — and
	// each crossing mediates it with a fresh proxy (exactly the behaviour
	// the paper describes for Test A2's inner recursions).
	out1, err := f.rt.Invoke(f.head(t), "fetch", heap.Int(15))
	if err != nil {
		t.Fatal(err)
	}
	after1 := f.rt.Manager().ProxyCount()
	if after1 != before+2 {
		t.Fatalf("proxies after first fetch = %d, want %d", after1, before+2)
	}
	// The same fetch again must reuse the registered proxy.
	out2, err := f.rt.Invoke(f.head(t), "fetch", heap.Int(15))
	if err != nil {
		t.Fatal(err)
	}
	if got := f.rt.Manager().ProxyCount(); got != after1 {
		t.Fatalf("proxies after second fetch = %d, want %d (reuse)", got, after1)
	}
	if out1[0].MustRef() != out2[0].MustRef() {
		t.Fatal("same (src,target) pair produced different proxies")
	}
}

func TestFieldAccessThroughProxy(t *testing.T) {
	f := newFixture(t, 0)
	ids, _ := f.buildList(t, 20, 10, 8)
	// head is a proxy (cluster 0 → cluster 1).
	tag, err := f.rt.Field(f.head(t), "tag")
	if err != nil {
		t.Fatal(err)
	}
	if tag.MustInt() != 0 {
		t.Fatalf("tag via proxy = %v", tag)
	}
	// Reference-valued field read through a proxy is mediated for cluster 0.
	next, err := f.rt.Field(f.head(t), "next")
	if err != nil {
		t.Fatal(err)
	}
	if next.IsNil() {
		t.Fatal("next is nil")
	}
	// node 1 is in cluster 1; the reader is cluster 0 → proxy.
	if !f.rt.IsProxyRef(next) {
		t.Fatalf("field read not mediated: %v", next)
	}
	eq, _ := f.rt.RefEqual(next, heap.Ref(ids[1]))
	if !eq {
		t.Fatal("field read reached wrong node")
	}
	// Writing through a proxy translates into the target's cluster.
	if err := f.rt.SetFieldValue(f.head(t), "tag", heap.Int(99)); err != nil {
		t.Fatal(err)
	}
	o, _ := f.rt.Heap().Get(ids[0])
	tv, _ := o.FieldByName("tag")
	if tv.MustInt() != 99 {
		t.Fatalf("write through proxy lost: %v", tv)
	}
}

func TestRefEqualIdentity(t *testing.T) {
	f := newFixture(t, 0)
	ids, clusters := f.buildList(t, 30, 10, 8)
	// Build two distinct proxies to node 10 from two different clusters.
	p1, err := f.rt.proxyFor(RootCluster, ids[10])
	if err != nil {
		t.Fatal(err)
	}
	p2, err := f.rt.proxyFor(ClusterID(clusters[2]), ids[10])
	if err != nil {
		t.Fatal(err)
	}
	if p1 == p2 {
		t.Fatal("test needs two distinct proxies")
	}
	eq, err := f.rt.RefEqual(heap.Ref(p1), heap.Ref(p2))
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Fatal("two proxies to the same object must compare equal")
	}
	eq, _ = f.rt.RefEqual(heap.Ref(p1), heap.Ref(ids[11]))
	if eq {
		t.Fatal("proxy to node 10 equals node 11")
	}
	eq, _ = f.rt.RefEqual(heap.Ref(p1), heap.Ref(ids[10]))
	if !eq {
		t.Fatal("proxy vs direct reference to same object must compare equal")
	}
	// Nil handling and fallback for non-references.
	if eq, _ := f.rt.RefEqual(heap.Nil(), heap.Nil()); !eq {
		t.Fatal("nil == nil")
	}
	if eq, _ := f.rt.RefEqual(heap.Nil(), heap.Ref(ids[0])); eq {
		t.Fatal("nil != ref")
	}
	if eq, _ := f.rt.RefEqual(heap.Int(3), heap.Int(3)); !eq {
		t.Fatal("scalar fallback")
	}
}

func TestAssignOptimizationAvoidsProxyChurn(t *testing.T) {
	f := newFixture(t, 0)
	const n = 60
	f.buildList(t, n, 10, 8)

	// B1 pattern: iterate via a global variable; each step creates a fresh
	// proxy (distinct target, source cluster 0).
	base := f.rt.Manager().ProxyCount()
	cur := f.head(t)
	for i := 0; i < n-1; i++ {
		out, err := f.rt.Invoke(cur, "next") // each return mediated for cluster 0

		if err != nil {
			t.Fatal(err)
		}
		if out[0].IsNil() {
			t.Fatalf("list ended early at %d", i)
		}
		cur = out[0]
		if err := f.rt.SetRoot("cursor", cur); err != nil {
			t.Fatal(err)
		}
	}
	churn := f.rt.Manager().ProxyCount() - base
	if churn < n/2 {
		t.Fatalf("B1 churn = %d proxies, expected many (≥%d)", churn, n/2)
	}

	// B2 pattern: the same iteration with the assign optimization reuses the
	// single cursor proxy.
	f.rt.Collect() // drop the churned proxies
	base = f.rt.Manager().ProxyCount()
	cur = f.head(t)
	if err := f.rt.Assign(cur); err != nil {
		t.Fatal(err)
	}
	firstProxy := cur.MustRef()
	steps := 0
	for {
		out, err := f.rt.Invoke(cur, "next")
		if err != nil {
			t.Fatal(err)
		}
		if out[0].IsNil() {
			break
		}
		cur = out[0]
		steps++
		if steps < n-10 && cur.MustRef() != firstProxy {
			t.Fatalf("assign mode did not return self at step %d", steps)
		}
		if steps > n {
			t.Fatal("runaway iteration")
		}
	}
	if steps != n-1 {
		t.Fatalf("iterated %d steps, want %d", steps, n-1)
	}
	created := f.rt.Manager().ProxyCount() - base
	if created > 0 {
		t.Fatalf("B2 created %d proxies, want 0", created)
	}
	// Unassign restores normal behaviour.
	if err := f.rt.Unassign(heap.Ref(firstProxy)); err != nil {
		t.Fatal(err)
	}
	if err := f.rt.Assign(heap.Ref(1234567)); err == nil {
		t.Fatal("Assign on dangling ref: want error")
	}
	o, _ := f.rt.NewObject(f.node, f.rt.Manager().NewCluster())
	if err := f.rt.Assign(o.RefTo()); !errors.Is(err, ErrNotProxy) {
		t.Fatalf("Assign on non-proxy: got %v, want ErrNotProxy", err)
	}
}

func TestAssignDismantlesIntoSourceCluster(t *testing.T) {
	f := newFixture(t, 0)
	// Two nodes: a in cluster 1, b in cluster 0 (root cluster). A proxy from
	// cluster 0 to a, in assign mode, returning a reference to b (cluster 0)
	// must dismantle to a direct reference — not patch itself.
	c1 := f.rt.Manager().NewCluster()
	a, _ := f.rt.NewObject(f.node, c1)
	b, _ := f.rt.NewObject(f.node, RootCluster)
	if err := f.rt.SetFieldValue(a.RefTo(), "next", b.RefTo()); err != nil {
		t.Fatal(err)
	}
	if err := f.rt.SetRoot("a", a.RefTo()); err != nil {
		t.Fatal(err)
	}
	av, _ := f.rt.Root("a")
	if err := f.rt.Assign(av); err != nil {
		t.Fatal(err)
	}
	out, err := f.rt.Invoke(av, "next")
	if err != nil {
		t.Fatal(err)
	}
	if out[0].MustRef() != b.ID() {
		t.Fatalf("assign return into source cluster = %v, want direct @%d", out[0], b.ID())
	}
}

func TestNewObjectValidation(t *testing.T) {
	f := newFixture(t, 0)
	if _, err := f.rt.NewObject(f.node, ClusterID(999)); !errors.Is(err, ErrUnknownCluster) {
		t.Fatalf("unknown cluster: got %v", err)
	}
	unreg := heap.NewClass("Ghost")
	if _, err := f.rt.NewObject(unreg, RootCluster); err == nil {
		t.Fatal("unregistered class: want error")
	}
	if err := f.rt.RegisterClass(f.node); err == nil {
		t.Fatal("duplicate RegisterClass: want error")
	}
	proxyC := buildProxyClass(f.node)
	if err := f.rt.RegisterClass(proxyC); err == nil {
		t.Fatal("registering middleware class: want error")
	}
}

func TestInvokeErrorPaths(t *testing.T) {
	f := newFixture(t, 0)
	ids, _ := f.buildList(t, 10, 5, 8)
	if _, err := f.rt.Invoke(heap.Nil(), "walk"); !errors.Is(err, heap.ErrNilTarget) {
		t.Errorf("nil target: %v", err)
	}
	if _, err := f.rt.Invoke(heap.Ref(999999), "walk"); !errors.Is(err, heap.ErrNoSuchObject) {
		t.Errorf("dangling: %v", err)
	}
	if _, err := f.rt.Invoke(heap.Ref(ids[0]), "nope"); !errors.Is(err, heap.ErrNoSuchMethod) {
		t.Errorf("missing method: %v", err)
	}
	// Missing method via proxy.
	if _, err := f.rt.Invoke(f.head(t), "nope"); !errors.Is(err, heap.ErrNoSuchMethod) {
		t.Errorf("missing method via proxy: %v", err)
	}
	// Field errors.
	if _, err := f.rt.Field(heap.Nil(), "tag"); !errors.Is(err, heap.ErrNilTarget) {
		t.Errorf("nil field read: %v", err)
	}
	if err := f.rt.SetFieldValue(heap.Nil(), "tag", heap.Int(1)); !errors.Is(err, heap.ErrNilTarget) {
		t.Errorf("nil field write: %v", err)
	}
}
