package core

import (
	"bytes"
	"errors"
	"testing"

	"objectswap/internal/heap"
	"objectswap/internal/store"
)

// restoreTarget builds a fresh runtime sharing the checkpointed device's
// store registry (the neighborhood survives the reboot).
func restoreTarget(t testing.TB, devices *store.Registry) *Runtime {
	t.Helper()
	rt := NewRuntime(heap.New(0), heap.NewRegistry(), WithStores(devices))
	rt.MustRegisterClass(newNodeClass())
	return rt
}

func TestCheckpointRoundTripResident(t *testing.T) {
	f := newFixture(t, 0)
	_, _ = f.buildList(t, 30, 10, 16)
	want := f.snapshotTags(t)

	var buf bytes.Buffer
	if err := f.rt.SaveCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}

	rt2 := restoreTarget(t, f.reg)
	if err := rt2.LoadCheckpoint(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if errs := rt2.Manager().CheckInvariants(); len(errs) > 0 {
		for _, e := range errs {
			t.Error(e)
		}
		t.Fatal("invariants broken after restore")
	}
	f2 := &fixture{rt: rt2, reg: f.reg, mem: f.mem, node: f.node}
	got := f2.snapshotTags(t)
	if len(got) != len(want) {
		t.Fatalf("restored list length %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("tag[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestCheckpointWithSwappedClusters(t *testing.T) {
	// The crown case: checkpoint while clusters live on a nearby device,
	// reboot, restore, and fault them back from where they were left.
	f := newFixture(t, 0)
	_, clusters := f.buildList(t, 40, 10, 16)
	want := f.snapshotTags(t)
	if _, err := f.rt.SwapOut(clusters[1]); err != nil {
		t.Fatal(err)
	}
	if _, err := f.rt.SwapOut(clusters[3]); err != nil {
		t.Fatal(err)
	}
	f.rt.Collect()

	var buf bytes.Buffer
	if err := f.rt.SaveCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}

	// "Reboot": a brand new runtime over the same neighborhood.
	rt2 := restoreTarget(t, f.reg)
	if err := rt2.LoadCheckpoint(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if rt2.Name() != f.rt.Name() {
		t.Fatalf("device name not restored: %q vs %q", rt2.Name(), f.rt.Name())
	}
	if !rt2.Manager().IsSwapped(clusters[1]) || !rt2.Manager().IsSwapped(clusters[3]) {
		t.Fatal("swapped state lost in restore")
	}
	// The payload checksum survives the restore, so the restored runtime
	// keeps verifying replicas against bit rot.
	for _, cid := range []ClusterID{clusters[1], clusters[3]} {
		ts := rt2.mgr.tab(cid)
		ts.mu.Lock()
		crc := ts.clusters[cid].crc
		ts.mu.Unlock()
		if crc == 0 {
			t.Fatalf("cluster %d: payload CRC lost in checkpoint restore", cid)
		}
	}
	if errs := rt2.Manager().CheckInvariants(); len(errs) > 0 {
		for _, e := range errs {
			t.Error(e)
		}
		t.Fatal("invariants broken after restore")
	}

	// Traversal faults both clusters back from the device.
	f2 := &fixture{rt: rt2, reg: f.reg, mem: f.mem, node: f.node}
	got := f2.snapshotTags(t)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("tag[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	if rt2.Manager().IsSwapped(clusters[1]) {
		t.Fatal("cluster not faulted in after restore traversal")
	}
	// Post-restore swapping works and generates non-colliding keys.
	ev, err := rt2.SwapOut(clusters[2])
	if err != nil {
		t.Fatal(err)
	}
	if ev.Key == "" {
		t.Fatal("empty key")
	}
	if _, err := rt2.SwapIn(clusters[2]); err != nil {
		t.Fatal(err)
	}
}

func TestCheckpointPreservesObjProxies(t *testing.T) {
	// Un-replicated edges (object-fault placeholders) survive a reboot.
	f := newFixture(t, 0)
	c := f.rt.Manager().NewCluster()
	o, _ := f.rt.NewObject(f.node, c)
	pid, err := f.rt.ObjProxyFor(4242, "Node")
	if err != nil {
		t.Fatal(err)
	}
	if err := f.rt.SetFieldValue(o.RefTo(), "next", heap.Ref(pid)); err != nil {
		t.Fatal(err)
	}
	if err := f.rt.SetRoot("head", o.RefTo()); err != nil {
		t.Fatal(err)
	}
	rootProxy, err := f.rt.ObjProxyFor(555, "Node")
	if err != nil {
		t.Fatal(err)
	}
	if err := f.rt.SetRoot("pending", heap.Ref(rootProxy)); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := f.rt.SaveCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	rt2 := restoreTarget(t, f.reg)
	if err := rt2.LoadCheckpoint(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if rt2.Manager().ObjProxyCount() != 2 {
		t.Fatalf("objproxies after restore = %d, want 2", rt2.Manager().ObjProxyCount())
	}
	ro, err := rt2.Heap().Get(heap.ObjID(o.ID()))
	if err != nil {
		t.Fatal(err)
	}
	nv, _ := ro.FieldByName("next")
	np, err := rt2.Heap().Get(nv.MustRef())
	if err != nil {
		t.Fatal(err)
	}
	if ObjProxyRemote(np) != 4242 || ObjProxyClass(np) != "Node" {
		t.Fatalf("restored placeholder = remote %d class %q", ObjProxyRemote(np), ObjProxyClass(np))
	}
}

func TestCheckpointValidation(t *testing.T) {
	f := newFixture(t, 0)
	f.buildList(t, 10, 10, 8)

	// Restore into a non-fresh runtime is refused.
	var buf bytes.Buffer
	if err := f.rt.SaveCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	if err := f.rt.LoadCheckpoint(bytes.NewReader(buf.Bytes())); !errors.Is(err, ErrNotFresh) {
		t.Fatalf("restore into used runtime: %v", err)
	}
	// Garbage input.
	rt2 := restoreTarget(t, f.reg)
	if err := rt2.LoadCheckpoint(bytes.NewReader([]byte("}{"))); !errors.Is(err, ErrBadCheckpoint) {
		t.Fatalf("garbage checkpoint: %v", err)
	}
	// Wrong version.
	rt3 := restoreTarget(t, f.reg)
	bad := `<checkpoint version="9" device="d" keyseq="0" maxid="0"></checkpoint>`
	if err := rt3.LoadCheckpoint(bytes.NewReader([]byte(bad))); !errors.Is(err, ErrBadCheckpoint) {
		t.Fatalf("wrong version: %v", err)
	}
}
