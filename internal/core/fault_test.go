package core

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"objectswap/internal/heap"
	"objectswap/internal/store"
)

// probeStore wraps Mem with per-key Get accounting, an optional gate that
// blocks Gets, and an injectable failure. GetMulti is overridden to route
// through the counting Get, so batched fetches stay visible to the counts.
type probeStore struct {
	*store.Mem
	mu   sync.Mutex
	gets map[string]int
	gate chan struct{}
	err  error
}

func newProbeStore() *probeStore {
	return &probeStore{Mem: store.NewMem(0), gets: make(map[string]int)}
}

func (p *probeStore) Get(ctx context.Context, key string) ([]byte, error) {
	p.mu.Lock()
	p.gets[key]++
	gate, fail := p.gate, p.err
	p.mu.Unlock()
	if gate != nil {
		<-gate
	}
	if fail != nil {
		return nil, fail
	}
	return p.Mem.Get(ctx, key)
}

func (p *probeStore) GetMulti(ctx context.Context, keys []string) (map[string][]byte, error) {
	out := make(map[string][]byte, len(keys))
	for _, k := range keys {
		b, err := p.Get(ctx, k)
		if errors.Is(err, store.ErrNotFound) {
			continue
		}
		if err != nil {
			return nil, err
		}
		out[k] = b
	}
	return out, nil
}

func (p *probeStore) totalGets() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, c := range p.gets {
		n += c
	}
	return n
}

func (p *probeStore) distinctKeys() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.gets)
}

// setGate installs (or clears, with nil) a channel every Get blocks on.
func (p *probeStore) setGate(gate chan struct{}) {
	p.mu.Lock()
	p.gate = gate
	p.mu.Unlock()
}

func (p *probeStore) setErr(err error) {
	p.mu.Lock()
	p.err = err
	p.mu.Unlock()
}

// newFaultFixture builds a runtime on a probeStore.
func newFaultFixture(t testing.TB, opts ...Option) (*Runtime, *probeStore) {
	t.Helper()
	devices := store.NewRegistry(store.SelectMostFree)
	ps := newProbeStore()
	if err := devices.Add("pda-neighbor", ps); err != nil {
		t.Fatal(err)
	}
	rt := NewRuntime(heap.New(0), heap.NewRegistry(),
		append([]Option{WithStores(devices)}, opts...)...)
	rt.MustRegisterClass(newNodeClass())
	return rt, ps
}

// buildChain allocates clusters of size perCluster with the nodes linked in
// one list (cross-cluster next edges), roots the head, and returns the
// cluster ids.
func buildChain(t testing.TB, rt *Runtime, clusters, perCluster int) []ClusterID {
	t.Helper()
	node, err := rt.Registry().Lookup("Node")
	if err != nil {
		t.Fatal(err)
	}
	var ids []ClusterID
	var objs []*heap.Object
	for c := 0; c < clusters; c++ {
		id := rt.Manager().NewCluster()
		ids = append(ids, id)
		for i := 0; i < perCluster; i++ {
			o, err := rt.NewObject(node, id)
			if err != nil {
				t.Fatal(err)
			}
			o.MustSet("tag", heap.Int(int64(len(objs))))
			objs = append(objs, o)
		}
	}
	for i := 0; i < len(objs)-1; i++ {
		if err := rt.SetFieldValue(objs[i].RefTo(), "next", objs[i+1].RefTo()); err != nil {
			t.Fatal(err)
		}
	}
	if err := rt.SetRoot("head", objs[0].RefTo()); err != nil {
		t.Fatal(err)
	}
	return ids
}

// TestFaultStormCoalesces is the tentpole's proof: 64 goroutines faulting 8
// swapped clusters produce exactly 8 donor fetches — one per cluster — with
// every other caller either parked on the in-flight fetch or bounced with
// ErrClusterLoaded after it landed. Run under -race (check.sh does).
func TestFaultStormCoalesces(t *testing.T) {
	rt, ps := newFaultFixture(t)
	defer rt.FaultEngine().Stop()
	clusters := buildChain(t, rt, 8, 4)
	for _, c := range clusters {
		if _, err := rt.SwapOut(c); err != nil {
			t.Fatalf("swap-out %d: %v", c, err)
		}
	}
	rt.Collect()
	if got := ps.totalGets(); got != 0 {
		t.Fatalf("setup already issued %d donor fetches", got)
	}

	const goroutines = 64
	start := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		c := clusters[i%len(clusters)]
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			if _, err := rt.SwapIn(c); err != nil && !errors.Is(err, ErrClusterLoaded) {
				t.Errorf("swap-in %d: %v", c, err)
			}
		}()
	}
	close(start)
	wg.Wait()

	if got := ps.totalGets(); got != len(clusters) {
		t.Fatalf("donor fetches = %d, want exactly %d (one per cluster)", got, len(clusters))
	}
	if got := ps.distinctKeys(); got != len(clusters) {
		t.Fatalf("distinct keys fetched = %d, want %d", got, len(clusters))
	}
	for _, c := range clusters {
		info, err := rt.Manager().Info(c)
		if err != nil || info.Swapped {
			t.Fatalf("cluster %d not resident after storm (err %v)", c, err)
		}
	}
	if errs := rt.Manager().CheckInvariants(); len(errs) > 0 {
		t.Fatalf("invariants: %v", errs)
	}
}

// TestCoalescedFaultErrorPropagation wedges a flight on a flaky donor, parks
// seven more faulters on it, and proves (a) every waiter receives the
// leader's error, (b) the donor was asked exactly once, and (c) the failed
// flight is cleared so a retry against the healed donor succeeds.
func TestCoalescedFaultErrorPropagation(t *testing.T) {
	rt, ps := newFaultFixture(t)
	defer rt.FaultEngine().Stop()
	c := buildChain(t, rt, 1, 4)[0]
	if _, err := rt.SwapOut(c); err != nil {
		t.Fatal(err)
	}

	sentinel := errors.New("donor dropped the shipment")
	gate := make(chan struct{})
	ps.setGate(gate)
	ps.setErr(sentinel)

	errs := make(chan error, 8)
	go func() {
		_, err := rt.SwapIn(c)
		errs <- err
	}()
	waitUntil(t, func() bool { return ps.totalGets() == 1 })
	base := rt.FaultEngine().Snapshot().CoalescedWaiters
	for i := 0; i < 7; i++ {
		go func() {
			_, err := rt.SwapIn(c)
			errs <- err
		}()
	}
	waitUntil(t, func() bool {
		return rt.FaultEngine().Snapshot().CoalescedWaiters == base+7
	})
	close(gate)

	for i := 0; i < 8; i++ {
		if err := <-errs; !errors.Is(err, sentinel) {
			t.Fatalf("waiter %d got %v, want the donor's error", i, err)
		}
	}
	if got := ps.totalGets(); got != 1 {
		t.Fatalf("failed storm issued %d donor fetches, want 1", got)
	}

	// Heal the donor: the flight table is clear, the retry leads fresh.
	ps.setGate(nil)
	ps.setErr(nil)
	if _, err := rt.SwapIn(c); err != nil {
		t.Fatalf("retry after heal: %v", err)
	}
	if info, _ := rt.Manager().Info(c); info.Swapped {
		t.Fatal("cluster still swapped after healed retry")
	}
}

// TestSwapInJoinsPrefetchFlight is the satellite bug fix: a demand SwapIn
// arriving while a prefetch of the same cluster is mid-flight must join that
// flight and resume with its result — not bounce off ErrClusterBusy.
func TestSwapInJoinsPrefetchFlight(t *testing.T) {
	rt, ps := newFaultFixture(t)
	defer rt.FaultEngine().Stop()
	c := buildChain(t, rt, 1, 4)[0]
	if _, err := rt.SwapOut(c); err != nil {
		t.Fatal(err)
	}

	gate := make(chan struct{})
	ps.setGate(gate)
	prefErr := make(chan error, 1)
	go func() {
		// A prefetch worker's reload: same public SwapIn, prefetch cause.
		_, err := rt.SwapIn(c, WithCause(CausePrefetch))
		prefErr <- err
	}()
	waitUntil(t, func() bool { return ps.totalGets() == 1 })

	base := rt.FaultEngine().Snapshot().CoalescedWaiters
	demand := make(chan error, 1)
	var ev SwapEvent
	go func() {
		var err error
		ev, err = rt.SwapIn(c)
		demand <- err
	}()
	waitUntil(t, func() bool {
		return rt.FaultEngine().Snapshot().CoalescedWaiters == base+1
	})
	close(gate)

	if err := <-demand; err != nil {
		t.Fatalf("demand fault during prefetch flight: %v (must join, not ErrClusterBusy)", err)
	}
	if err := <-prefErr; err != nil {
		t.Fatalf("prefetch flight: %v", err)
	}
	if ev.Cause != CausePrefetch {
		t.Fatalf("joined demand fault reports cause %q, want the flight's %q",
			ev.Cause, CausePrefetch)
	}
	if got := ps.totalGets(); got != 1 {
		t.Fatalf("join issued %d donor fetches, want 1", got)
	}
}

// TestPrefetchInstallsGraphNeighbors wires the full speculative path through
// a real runtime: a demand fault on the chain's first cluster pulls its
// graph neighbor in behind it, the next crossing is a hit, and an eviction
// of an untouched speculation counts as wasted.
func TestPrefetchInstallsGraphNeighbors(t *testing.T) {
	rt, _ := newFaultFixture(t, WithPrefetch(2, 2))
	defer rt.FaultEngine().Stop()
	clusters := buildChain(t, rt, 3, 4)
	for i := len(clusters) - 1; i >= 0; i-- {
		if _, err := rt.SwapOut(clusters[i]); err != nil {
			t.Fatal(err)
		}
	}
	rt.Collect()

	if _, err := rt.SwapIn(clusters[0]); err != nil {
		t.Fatal(err)
	}
	rt.FaultEngine().Quiesce()

	// The chain is c0 -> c1 -> c2: c1 is c0's neighbor and must be resident.
	info, err := rt.Manager().Info(clusters[1])
	if err != nil {
		t.Fatal(err)
	}
	if info.Swapped {
		t.Fatal("neighbor cluster not prefetched")
	}
	snap := rt.FaultEngine().Snapshot()
	if snap.Installed == 0 {
		t.Fatalf("prefetcher installed nothing: %+v", snap)
	}

	// Walking across the c0/c1 boundary consumes the inventory as a hit and
	// chains the speculation one hop further (c2).
	head, ok := rt.Root("head")
	if !ok {
		t.Fatal("missing head")
	}
	// Five steps: four to reach the boundary proxy, one through it (the
	// crossing is the field read ON the proxy, not the read that yields it).
	cur := head
	for i := 0; i < 5; i++ {
		v, err := rt.Field(cur, "next")
		if err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		cur = v
	}
	rt.FaultEngine().Quiesce()
	snap = rt.FaultEngine().Snapshot()
	if snap.Hits == 0 {
		t.Fatalf("boundary crossing into prefetched cluster recorded no hit: %+v", snap)
	}

	// Swap an untouched speculation back out: wasted bytes.
	rt.FaultEngine().Quiesce()
	if inf, _ := rt.Manager().Info(clusters[2]); !inf.Swapped {
		if _, err := rt.SwapOut(clusters[2]); err != nil && !errors.Is(err, ErrClusterBusy) {
			t.Fatal(err)
		}
		if snap = rt.FaultEngine().Snapshot(); snap.Wasted == 0 {
			t.Fatalf("evicting an untouched prefetch recorded no waste: %+v", snap)
		}
	}
}

// TestNeighborClustersRanking checks the replacement-object-graph ranking:
// neighbors ordered by proxy-edge count descending, ties by id, self and the
// root cluster excluded.
func TestNeighborClustersRanking(t *testing.T) {
	f := newFixture(t, 0)
	node, err := f.rt.Registry().Lookup("Node")
	if err != nil {
		t.Fatal(err)
	}
	a := f.rt.Manager().NewCluster()
	b := f.rt.Manager().NewCluster()
	c := f.rt.Manager().NewCluster()
	mk := func(cl ClusterID) *heap.Object {
		o, err := f.rt.NewObject(node, cl)
		if err != nil {
			t.Fatal(err)
		}
		return o
	}
	oa1, oa2, oa3 := mk(a), mk(a), mk(a)
	ob1, ob2 := mk(b), mk(b)
	oc1, oc2 := mk(c), mk(c)
	// Two a->c proxies (distinct targets — same-target links share one
	// proxy), one a->b proxy: c outranks b from a.
	link := func(from, to *heap.Object) {
		if err := f.rt.SetFieldValue(from.RefTo(), "next", to.RefTo()); err != nil {
			t.Fatal(err)
		}
	}
	link(oa1, oc1)
	link(oa2, ob1)
	link(oa3, oc2)
	_ = ob2

	got := f.rt.Manager().NeighborClusters(uint32(a), 4)
	want := []uint32{uint32(c), uint32(b)}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("NeighborClusters(a) = %v, want %v", got, want)
	}
	if got := f.rt.Manager().NeighborClusters(uint32(a), 1); len(got) != 1 || got[0] != uint32(c) {
		t.Fatalf("NeighborClusters(a, 1) = %v, want [%d]", got, c)
	}
	if got := f.rt.Manager().NeighborClusters(uint32(c), 4); len(got) != 0 {
		t.Fatalf("NeighborClusters(c) = %v, want none (no outgoing proxies)", got)
	}
}

// TestConcurrentFaultsDuringCollectAndEvict extends the swap storm with the
// fault engine in play: dense same-cluster demand faults race Collect and a
// pressure evictor. End-state invariants and the surviving graph are the
// assertion; every error must be one of the benign storm outcomes.
func TestConcurrentFaultsDuringCollectAndEvict(t *testing.T) {
	f := newFixture(t, 0)
	_, clusters := f.buildList(t, 128, 4, 16)
	want := f.snapshotTags(t)

	skippable := func(err error) bool {
		return errors.Is(err, ErrClusterBusy) || errors.Is(err, ErrClusterLoaded) ||
			errors.Is(err, ErrClusterSwapped) || errors.Is(err, ErrClusterEmpty) ||
			errors.Is(err, ErrClusterActive)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	var coalesceTarget atomic.Int32
	coalesceTarget.Store(int32(clusters[0]))

	// Swap-out churn keeps clusters leaving so the faulters have misses.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			if _, err := f.rt.SwapOutMany(clusters, 4); err != nil && !skippable(err) {
				t.Errorf("swap-out many: %v", err)
				return
			}
		}
		close(stop)
	}()
	// Dense same-cluster faulters: 8 goroutines hammer one cluster so the
	// single-flight table coalesces under real Collect/Evict interference.
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				c := ClusterID(coalesceTarget.Load())
				if _, err := f.rt.SwapIn(c); err != nil && !skippable(err) {
					t.Errorf("coalesced fault %d: %v", c, err)
					return
				}
			}
		}()
	}
	// A roaming faulter shifts the hot cluster.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			coalesceTarget.Store(int32(clusters[i%len(clusters)]))
			time.Sleep(100 * time.Microsecond)
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			f.rt.Collect()
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			// Eviction errors are expected mid-storm (busy victims, nothing
			// swappable); the end-state checks below are the assertion.
			_ = f.rt.EvictWith(EvictOptions{Strategy: VictimColdest}, 1<<10)
		}
	}()
	wg.Wait()

	for _, c := range clusters {
		if _, err := f.rt.SwapIn(c); err != nil && !skippable(err) {
			t.Fatalf("final swap-in %d: %v", c, err)
		}
	}
	if errs := f.rt.Manager().CheckInvariants(); len(errs) > 0 {
		t.Fatalf("invariants after storm: %v", errs)
	}
	got := f.snapshotTags(t)
	if len(got) != len(want) {
		t.Fatalf("list length after storm = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("tag[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func waitUntil(t testing.TB, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in 5s")
		}
		time.Sleep(200 * time.Microsecond)
	}
}
