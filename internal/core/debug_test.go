package core

import (
	"strings"
	"testing"
)

func TestDumpDotShowsPaperFigures(t *testing.T) {
	// Reconstruct the paper's Figure 3/4 situation and check the DOT output
	// carries each artifact.
	f := newFixture(t, 0)
	_, clusters := f.buildList(t, 20, 10, 8)

	var loaded strings.Builder
	if err := f.rt.DumpDot(&loaded); err != nil {
		t.Fatal(err)
	}
	dot := loaded.String()
	for _, want := range []string{
		"digraph objectswap",
		"subgraph cluster_1",
		"subgraph cluster_2",
		"proxy@",    // boundary proxies
		"root_head", // the global
		`label="next"`,
	} {
		if !strings.Contains(dot, want) {
			t.Fatalf("loaded dump missing %q:\n%s", want, dot)
		}
	}

	// After swap-out (Figure 4): replacement-object and swapped annotation.
	if _, err := f.rt.SwapOut(clusters[1]); err != nil {
		t.Fatal(err)
	}
	f.rt.Collect()
	var swapped strings.Builder
	if err := f.rt.DumpDot(&swapped); err != nil {
		t.Fatal(err)
	}
	dot = swapped.String()
	for _, want := range []string{"replacement@", "swapped_2", "cluster 2 swapped"} {
		if !strings.Contains(dot, want) {
			t.Fatalf("swapped dump missing %q:\n%s", want, dot)
		}
	}
}

func TestSanitize(t *testing.T) {
	if got := sanitize("chain-0/α"); got != "chain_0__" {
		t.Fatalf("sanitize = %q", got)
	}
}
