package core

import (
	"testing"

	"objectswap/internal/heap"
	"objectswap/internal/store"
	"objectswap/internal/wire"
)

// Negotiation downgrade: a donor that predates the binary framing (modelled by
// narrowing its advertisement to xml) must still receive shipments — the
// negotiation degrades to the universal XML wrapper instead of failing or
// shipping a format the donor cannot serve back.
func TestNegotiationDowngradesToXMLOnlyDonor(t *testing.T) {
	f := newFixture(t, 0)
	f.mem.SetFormats(string(wire.FormatXML))
	_, clusters := f.buildList(t, 10, 10, 64)

	ev, err := f.rt.SwapOut(clusters[0])
	if err != nil {
		t.Fatalf("swap-out: %v", err)
	}
	if ev.Format != string(wire.FormatXML) {
		t.Fatalf("negotiated format = %q, want %q (xml-only donor)", ev.Format, wire.FormatXML)
	}
	// The stored payload really is the legacy wrapper, not a framed binary.
	data, _, err := store.GetWith(t.Context(), f.mem, ev.Key)
	if err != nil {
		t.Fatalf("fetch payload: %v", err)
	}
	if fid, err := wire.Detect(data); err != nil || fid != wire.FormatXML {
		t.Fatalf("stored payload detects as (%v, %v), want xml", fid, err)
	}
	inEv, err := f.rt.SwapIn(clusters[0])
	if err != nil {
		t.Fatalf("swap-in: %v", err)
	}
	if inEv.Format != string(wire.FormatXML) {
		t.Fatalf("swap-in format = %q, want xml", inEv.Format)
	}
	if res, err := f.rt.Invoke(f.head(t), "walk", heap.Int(0)); err != nil || len(res) != 1 {
		t.Fatalf("walk after xml round-trip: %v", err)
	}
}

// A mixed neighborhood negotiates the best format every replica can hold:
// with one binary-capable donor and one legacy donor at K=2, all replicas
// degrade together to XML (one shipment, one format).
func TestNegotiationMixedNeighborhoodUsesOneFormat(t *testing.T) {
	h := heap.New(0)
	classes := heap.NewRegistry()
	devices := store.NewRegistry(store.SelectMostFree)
	modern := store.NewMem(0)
	legacy := store.NewMem(0)
	legacy.SetFormats(string(wire.FormatXML))
	if err := devices.Add("modern", modern); err != nil {
		t.Fatal(err)
	}
	if err := devices.Add("legacy", legacy); err != nil {
		t.Fatal(err)
	}
	rt := NewRuntime(h, classes, WithStores(devices))
	f := &fixture{rt: rt, reg: devices, mem: modern, node: newNodeClass()}
	rt.MustRegisterClass(f.node)
	_, clusters := f.buildList(t, 10, 10, 64)

	ev, err := rt.SwapOut(clusters[0], WithReplicas(2))
	if err != nil {
		t.Fatalf("swap-out: %v", err)
	}
	if ev.Format != string(wire.FormatXML) {
		t.Fatalf("format = %q, want xml (legacy replica in the set)", ev.Format)
	}
	if len(ev.Replicas) != 2 || ev.Shortfall != 0 {
		t.Fatalf("replicas = %v shortfall = %d, want full set", ev.Replicas, ev.Shortfall)
	}
}

// Satellite: quorum shortfall is surfaced on the SwapEvent. Two donors can
// satisfy the majority quorum of a K=3 request but not the full replica
// target; the event must say so instead of silently reporting success.
func TestSwapEventSurfacesQuorumShortfall(t *testing.T) {
	h := heap.New(0)
	classes := heap.NewRegistry()
	devices := store.NewRegistry(store.SelectMostFree)
	for _, name := range []string{"donor-a", "donor-b"} {
		if err := devices.Add(name, store.NewMem(0)); err != nil {
			t.Fatal(err)
		}
	}
	rt := NewRuntime(h, classes, WithStores(devices))
	node := newNodeClass()
	rt.MustRegisterClass(node)
	f := &fixture{rt: rt, reg: devices, node: node}
	_, clusters := f.buildList(t, 10, 10, 64)

	ev, err := rt.SwapOut(clusters[0], WithReplicas(3))
	if err != nil {
		t.Fatalf("swap-out: %v", err)
	}
	if ev.Requested != 3 {
		t.Fatalf("Requested = %d, want 3", ev.Requested)
	}
	if len(ev.Replicas) != 2 {
		t.Fatalf("replicas = %v, want 2 accepting donors", ev.Replicas)
	}
	if ev.Shortfall != 1 {
		t.Fatalf("Shortfall = %d, want 1", ev.Shortfall)
	}
	if ev.Quorum != 2 {
		t.Fatalf("Quorum = %d, want majority 2", ev.Quorum)
	}
}

// deltaFixture builds a runtime opted into delta re-shipment with one
// in-memory donor.
func deltaFixture(t testing.TB) *fixture {
	t.Helper()
	h := heap.New(0)
	classes := heap.NewRegistry()
	devices := store.NewRegistry(store.SelectMostFree)
	mem := store.NewMem(0)
	if err := devices.Add("pda-neighbor", mem); err != nil {
		t.Fatal(err)
	}
	rt := NewRuntime(h, classes, WithStores(devices),
		WithWireFormats(string(wire.FormatDelta), string(wire.FormatBinary), string(wire.FormatXML)))
	f := &fixture{rt: rt, reg: devices, mem: mem, node: newNodeClass()}
	rt.MustRegisterClass(f.node)
	return f
}

// The ISSUE acceptance bar: re-shipping a cluster with ~1% of its members
// dirty must move less than 10% of the full-shipment bytes.
func TestDeltaReshipmentShipsFractionOfFullBytes(t *testing.T) {
	f := deltaFixture(t)
	ids, clusters := f.buildList(t, 100, 100, 200)

	full, err := f.rt.SwapOut(clusters[0])
	if err != nil {
		t.Fatalf("full swap-out: %v", err)
	}
	if full.Format != string(wire.FormatBinary) {
		t.Fatalf("first shipment format = %q, want binary", full.Format)
	}
	if _, err := f.rt.SwapIn(clusters[0]); err != nil {
		t.Fatalf("swap-in: %v", err)
	}

	// Dirty one member of a hundred.
	o, err := f.rt.h.Get(ids[42])
	if err != nil {
		t.Fatal(err)
	}
	if err := o.SetFieldByName("tag", heap.Int(4242)); err != nil {
		t.Fatal(err)
	}

	delta, err := f.rt.SwapOut(clusters[0])
	if err != nil {
		t.Fatalf("delta swap-out: %v", err)
	}
	if delta.Format != string(wire.FormatDelta) {
		t.Fatalf("re-shipment format = %q, want delta", delta.Format)
	}
	if delta.Bytes*10 >= full.Bytes {
		t.Fatalf("delta shipped %d bytes, full was %d — want < 10%%", delta.Bytes, full.Bytes)
	}

	// The merged fault-in must restore the mutation and the untouched tail.
	if _, err := f.rt.SwapIn(clusters[0]); err != nil {
		t.Fatalf("swap-in after delta: %v", err)
	}
	o, err = f.rt.h.Get(ids[42])
	if err != nil {
		t.Fatal(err)
	}
	v, err := o.FieldByName("tag")
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := v.Int(); got != 4242 {
		t.Fatalf("mutated tag = %d after delta round-trip, want 4242", got)
	}
	if res, err := f.rt.Invoke(f.head(t), "walk", heap.Int(0)); err != nil {
		t.Fatalf("walk after delta round-trip: %v", err)
	} else if n, _ := res[0].Int(); n != 99 {
		t.Fatalf("walk depth = %d, want 99 (list structure lost)", n)
	}
}

// A clean cluster (nothing dirty since the base shipped) still re-ships as a
// delta — the cheapest possible one, carrying only the header — and the
// fault-in merges it back against the retained base.
func TestDeltaCleanReshipment(t *testing.T) {
	f := deltaFixture(t)
	_, clusters := f.buildList(t, 20, 20, 64)

	if _, err := f.rt.SwapOut(clusters[0]); err != nil {
		t.Fatalf("full swap-out: %v", err)
	}
	if _, err := f.rt.SwapIn(clusters[0]); err != nil {
		t.Fatalf("swap-in: %v", err)
	}
	ev, err := f.rt.SwapOut(clusters[0])
	if err != nil {
		t.Fatalf("clean re-swap-out: %v", err)
	}
	if ev.Format != string(wire.FormatDelta) {
		t.Fatalf("clean re-shipment format = %q, want delta", ev.Format)
	}
	if _, err := f.rt.SwapIn(clusters[0]); err != nil {
		t.Fatalf("swap-in after clean delta: %v", err)
	}
	if res, err := f.rt.Invoke(f.head(t), "walk", heap.Int(0)); err != nil || len(res) != 1 {
		t.Fatalf("walk after clean delta round-trip: %v", err)
	}
}

// When the base donor cannot hold deltas (legacy advertisement), the
// re-shipment falls back to a freshly negotiated full shipment instead of
// failing.
func TestDeltaFallsBackWhenBaseDonorLacksFormat(t *testing.T) {
	f := deltaFixture(t)
	_, clusters := f.buildList(t, 20, 20, 64)

	if _, err := f.rt.SwapOut(clusters[0]); err != nil {
		t.Fatalf("full swap-out: %v", err)
	}
	if _, err := f.rt.SwapIn(clusters[0]); err != nil {
		t.Fatalf("swap-in: %v", err)
	}
	// The donor forgets how to speak delta between the shipments.
	f.mem.SetFormats(string(wire.FormatBinary), string(wire.FormatXML))
	ev, err := f.rt.SwapOut(clusters[0])
	if err != nil {
		t.Fatalf("re-swap-out: %v", err)
	}
	if ev.Format != string(wire.FormatBinary) {
		t.Fatalf("format = %q, want binary full fallback", ev.Format)
	}
	if _, err := f.rt.SwapIn(clusters[0]); err != nil {
		t.Fatalf("swap-in after fallback: %v", err)
	}
}

// Heavy mutation forfeits the delta: once half the members changed, the
// negotiation prefers a full shipment that refreshes the base.
func TestDeltaDeclinedWhenTooDirty(t *testing.T) {
	f := deltaFixture(t)
	ids, clusters := f.buildList(t, 10, 10, 64)

	if _, err := f.rt.SwapOut(clusters[0]); err != nil {
		t.Fatalf("full swap-out: %v", err)
	}
	if _, err := f.rt.SwapIn(clusters[0]); err != nil {
		t.Fatalf("swap-in: %v", err)
	}
	for _, id := range ids[:6] {
		o, err := f.rt.h.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if err := o.SetFieldByName("tag", heap.Int(7)); err != nil {
			t.Fatal(err)
		}
	}
	ev, err := f.rt.SwapOut(clusters[0])
	if err != nil {
		t.Fatalf("re-swap-out: %v", err)
	}
	if ev.Format == string(wire.FormatDelta) {
		t.Fatalf("60%%-dirty cluster shipped as delta; want full shipment")
	}
}
