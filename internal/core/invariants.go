package core

import (
	"fmt"

	"objectswap/internal/heap"
)

// CheckInvariants validates the SwappingManager's bookkeeping against the
// heap and the paper's structural rules, returning every violation found.
// It is exercised by the property-based test suites after random operation
// sequences, and is available to applications as a diagnostic.
//
// Checked invariants:
//
//  1. membership — every tracked object belongs to exactly one known
//     cluster, and cluster member sets agree with the per-object index;
//  2. residency — members of loaded clusters are resident unless awaiting
//     collection; a swapped cluster's replacement-object is resident and
//     none of its members are root-reachable;
//  3. proxy registry — every registered proxy is resident, is a
//     swap-cluster-proxy, agrees with its registry key (source cluster and
//     ultimate target), and at most one shared proxy exists per
//     (source, target) pair;
//  4. mediation — every reference held in an application object's field is
//     intra-cluster direct, or a proxy sourced at the holding cluster, or an
//     object-fault placeholder;
//  5. proxy targets — a proxy's target field designates its ultimate target
//     when the target's cluster is loaded, and the cluster's
//     replacement-object while it is swapped out;
//  6. accounting — the heap's used-byte counter equals the sum of resident
//     object sizes.
func (m *Manager) CheckInvariants() []error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.lockTabs()
	defer m.unlockTabs()
	// A merged view of the sharded table; every shard is locked above, so the
	// cut is consistent.
	clusters := make(map[ClusterID]*clusterState)
	for _, ts := range m.tabs {
		for cid, cs := range ts.clusters {
			clusters[cid] = cs
		}
	}
	h := m.rt.h
	var errs []error
	fail := func(format string, args ...any) {
		errs = append(errs, fmt.Errorf(format, args...))
	}

	// 1. Membership agreement.
	for oid, info := range m.objects {
		cs, ok := clusters[info.cluster]
		if !ok {
			fail("object @%d assigned to unknown cluster %d", oid, info.cluster)
			continue
		}
		if !cs.objects[oid] {
			fail("object @%d missing from cluster %d member set", oid, info.cluster)
		}
	}
	for cid, cs := range clusters {
		for oid := range cs.objects {
			if info, ok := m.objects[oid]; !ok || info.cluster != cid {
				fail("cluster %d lists @%d but object index disagrees", cid, oid)
			}
		}
	}

	// 2. Residency.
	reach := h.ReachableFromRoots()
	for cid, cs := range clusters {
		if !cs.swapped {
			continue
		}
		if !h.Contains(cs.replacement) {
			fail("swapped cluster %d lost its replacement-object @%d", cid, cs.replacement)
		}
		for oid := range cs.objects {
			if reach[oid] {
				fail("swapped cluster %d member @%d is root-reachable", cid, oid)
			}
		}
	}

	// 3. Proxy registry consistency.
	seenShared := make(map[proxyKey]heap.ObjID)
	for pid, key := range m.proxyMeta {
		p, err := h.Get(pid)
		if err != nil {
			fail("registered proxy @%d not resident (cursor=%v, key src=%d target=@%d)",
				pid, m.cursorProxies[pid], key.src, key.target)
			continue
		}
		if !isProxy(p) {
			fail("registered proxy @%d is a %s", pid, p.Class().Name)
			continue
		}
		if got := proxySrc(p); got != key.src {
			fail("proxy @%d source %d disagrees with registry key %d", pid, got, key.src)
		}
		if got := proxyUltimate(p); got != key.target {
			fail("proxy @%d ultimate @%d disagrees with registry key @%d", pid, got, key.target)
		}
	}
	for key, pid := range m.proxies {
		if prev, dup := seenShared[key]; dup {
			fail("two shared proxies for (%d,@%d): @%d and @%d", key.src, key.target, prev, pid)
		}
		seenShared[key] = pid
		if meta, ok := m.proxyMeta[pid]; !ok {
			fail("shared proxy @%d has no meta record", pid)
		} else if meta != key {
			fail("shared proxy @%d meta %+v disagrees with registry key %+v", pid, meta, key)
		}
	}

	// 6. Accounting.
	var liveBytes int64
	for _, oid := range h.IDs() {
		if o, err := h.Get(oid); err == nil {
			liveBytes += o.Size()
		}
	}
	if used := h.Used(); used != liveBytes {
		fail("heap accounting drift: used %d, live object bytes %d", used, liveBytes)
	}

	// 4+5. Field mediation and proxy target fields.
	for _, oid := range h.IDs() {
		o, err := h.Get(oid)
		if err != nil {
			continue
		}
		switch o.Class().Special {
		case heap.SpecialNone:
			holder := RootCluster
			if info, ok := m.objects[oid]; ok {
				holder = info.cluster
			}
			for i := 0; i < o.NumFields(); i++ {
				o.Field(i).MapRefs(func(rid heap.ObjID) heap.ObjID {
					if rid == heap.NilID {
						return rid
					}
					ro, err := h.Get(rid)
					if err != nil {
						fail("object @%d field %s holds dangling @%d",
							oid, o.Class().Field(i).Name, rid)
						return rid
					}
					switch ro.Class().Special {
					case heap.SpecialNone:
						tc := RootCluster
						if info, ok := m.objects[rid]; ok {
							tc = info.cluster
						}
						if tc != holder {
							fail("object @%d (cluster %d) holds un-proxied reference to @%d (cluster %d)",
								oid, holder, rid, tc)
						}
					case heap.SpecialSCProxy:
						if src := proxySrc(ro); src != holder {
							fail("object @%d (cluster %d) holds proxy @%d sourced at %d",
								oid, holder, rid, src)
						}
					case heap.SpecialObjProxy:
						// Placeholders are cluster-agnostic.
					default:
						fail("object @%d holds %s reference @%d", oid, ro.Class().Special, rid)
					}
					return rid
				})
			}
		case heap.SpecialSCProxy:
			ultimate := proxyUltimate(o)
			tc := RootCluster
			if info, ok := m.objects[ultimate]; ok {
				tc = info.cluster
			}
			tgt, _ := o.Field(slotTarget).Ref()
			cs := clusters[tc]
			if cs != nil && cs.swapped {
				if tgt != cs.replacement {
					fail("proxy @%d to swapped cluster %d targets @%d, want replacement @%d",
						oid, tc, tgt, cs.replacement)
				}
			} else if tgt != ultimate {
				fail("proxy @%d targets @%d, want ultimate @%d", oid, tgt, ultimate)
			}
		}
	}
	return errs
}
