package core

import (
	"context"
	"errors"
	"fmt"
	"hash/crc32"
	"sort"
	"strings"
	"sync"

	"objectswap/internal/event"
	"objectswap/internal/heap"
	"objectswap/internal/obs"
	"objectswap/internal/placement"
	"objectswap/internal/store"
	"objectswap/internal/wire"
	"objectswap/internal/xmlcodec"
)

// SwapOut detaches the given swap-cluster from the application graph and
// ships its objects, as XML, to a nearby device chosen by the store provider.
//
// The procedure follows Section 3 exactly:
//
//  1. a replacement-object is created and filled with references to every
//     outbound swap-cluster-proxy referenced by the cluster's objects;
//  2. the XML wrapping of the cluster's objects is stored on the device
//     under a fresh key (outbound references encode as replacement slots);
//  3. every inbound swap-cluster-proxy is patched to target the
//     replacement-object;
//  4. the cluster's objects, now unreachable from the application, await the
//     local collector (call Runtime.Collect to reclaim immediately).
//
// The shipment is placed by the rendezvous planner: the payload goes to the
// top K donors ranked by weighted HRW over the swap key (K = WithReplicas or
// the runtime default, 1) and the swap commits once a majority write quorum
// accepted it. A rejecting donor is replaced by the next-ranked candidate —
// the old single-device failover is the K=1 case of this walk. The failed
// destinations are recorded in SwapEvent.Attempted and each re-route is
// published as a swap.failover event; the accepting replica set lands in
// SwapEvent.Replicas and the cluster state. Options bound the whole
// operation (WithDeadline), pin the destination (WithDevice) or restore the
// fail-fast behavior (WithNoFailover).
//
// SwapOut is safe to call concurrently for distinct clusters: the snapshot
// and commit phases are serialized under the runtime's swap lock, while
// encoding and shipment — the expensive parts — run outside it, overlapping
// across clusters. A cluster whose swap is already in flight elsewhere
// reports ErrClusterBusy.
//
// It returns the SwapEvent describing the shipment.
func (rt *Runtime) SwapOut(id ClusterID, opts ...SwapOption) (ev SwapEvent, retErr error) {
	o, ctx, cancel := resolveSwapOpts(opts)
	defer cancel()
	if id == RootCluster {
		return SwapEvent{}, ErrRootCluster
	}
	if rt.stores == nil {
		return SwapEvent{}, ErrNoStores
	}
	trace := rt.newTrace()
	ctx = obs.ContextWithTrace(ctx, trace)
	span := rt.tracer.Start("swap_out")
	span.SetTrace(trace)
	span.SetCluster(uint32(id))
	defer func() {
		if retErr != nil {
			rt.swapErrors.With("swap_out").Inc()
			span.Fail(retErr)
			rt.logger.Warn("swap-out failed",
				"trace", trace, "cluster", uint32(id), "err", retErr)
		}
	}()

	// Phase 1 — exclusive on this cluster's shard: validate the cluster and
	// reserve it (busy) so no concurrent swap, victim selection or sweep
	// touches it mid-flight.
	span.Phase("reserve")
	sh := rt.shardOf(id)
	rt.lockShard(sh)
	memberIDs, members, base, dirty, err := rt.beginSwapOut(id)
	sh.mu.Unlock()
	if err != nil {
		return SwapEvent{}, err
	}
	committed := false
	defer func() {
		if !committed {
			rt.setBusy(id, false)
		}
	}()

	// Phase 2 — concurrent: snapshot, classify and encode. Member fields are
	// stable here: the application thread is the caller (or blocked behind the
	// eviction that called us), concurrent swap commits only touch proxy
	// $target fields and other clusters' objects, and the reserved busy state
	// keeps this cluster out of every other transition.
	span.Phase("snapshot")
	objs := make([]*heap.Object, 0, len(memberIDs))
	var residentBytes int64
	for _, oid := range memberIDs {
		o, err := rt.h.Get(oid)
		if err != nil {
			return SwapEvent{}, fmt.Errorf("core: swap-out cluster %d: member @%d: %w", id, oid, err)
		}
		objs = append(objs, o)
		residentBytes += o.Size()
	}

	// Build the outbound slot table (the distinct swap-cluster-proxies
	// referenced from the cluster, in deterministic traversal order) and note
	// un-replicated edges (object-fault proxies), which ship as remote
	// references rather than replacement slots.
	slotOf := make(map[heap.ObjID]int)
	remoteOf := make(map[heap.ObjID]heap.Value) // objproxy id -> rref descriptor placeholder
	var (
		outbound    []heap.Value
		slotProxies []heap.ObjID // proxy id per slot, aligned with outbound
		slotTargets []heap.ObjID // proxy's ultimate target per slot
	)
	for _, o := range objs {
		var werr error
		for i := 0; i < o.NumFields() && werr == nil; i++ {
			o.Field(i).MapRefs(func(rid heap.ObjID) heap.ObjID {
				if werr != nil || rid == heap.NilID || members[rid] {
					return rid
				}
				if _, seen := slotOf[rid]; seen {
					return rid
				}
				if _, seen := remoteOf[rid]; seen {
					return rid
				}
				ro, err := rt.h.Get(rid)
				if err != nil {
					werr = fmt.Errorf("core: cluster %d: dangling outbound @%d: %w", id, rid, err)
					return rid
				}
				switch {
				case isProxy(ro):
					if proxySrc(ro) != id {
						werr = fmt.Errorf("core: cluster %d: object @%d holds proxy @%d sourced at cluster %d",
							id, o.ID(), rid, proxySrc(ro))
						return rid
					}
					slotOf[rid] = len(outbound)
					outbound = append(outbound, heap.Ref(rid))
					slotProxies = append(slotProxies, rid)
					slotTargets = append(slotTargets, proxyUltimate(ro))
				case isObjProxy(ro):
					remoteOf[rid] = heap.Nil() // marker; encoded below
				default:
					werr = fmt.Errorf("core: cluster %d: object @%d holds un-proxied foreign reference @%d",
						id, o.ID(), rid)
				}
				return rid
			})
		}
		if werr != nil {
			return SwapEvent{}, werr
		}
	}

	// Negotiate the wire format with the donor neighborhood before encoding:
	// rank the donors once (format advertisements ride the same Stats probe
	// that weighs free capacity), match them against the runtime's preference
	// order, and prefer a dirty-only delta against the retained base when one
	// is anchored and cheap enough.
	span.Phase("negotiate")
	key := rt.nextKey(id)
	span.SetKey(key)
	k := o.replicas
	if k < 1 {
		k = rt.Replicas()
	}
	plan, err := rt.negotiate(ctx, o, key, k, base, dirty, memberIDs)
	if err != nil {
		return SwapEvent{}, fmt.Errorf("core: swap-out cluster %d: %w", id, err)
	}
	if plan.delta {
		// A delta's slot table must keep the base table as a prefix: slot
		// references encoded inside unchanged base objects resolve against
		// THIS swap-out's replacement, so index i must still reach the same
		// ultimate target the base's slot i did. Base slots whose target is no
		// longer referenced get a nil placeholder (nothing unchanged can
		// reference them — the referencing object would be dirty); proxies new
		// since the base are appended after the prefix.
		targetProxy := make(map[heap.ObjID]heap.ObjID, len(slotTargets))
		for i, t := range slotTargets {
			targetProxy[t] = slotProxies[i]
		}
		remapped := make([]heap.Value, 0, len(plan.baseSlots)+len(outbound))
		newSlotOf := make(map[heap.ObjID]int, len(slotOf))
		newTargets := make([]heap.ObjID, 0, cap(remapped))
		used := make(map[heap.ObjID]bool, len(slotProxies))
		for _, t := range plan.baseSlots {
			if pid, ok := targetProxy[t]; ok && t != heap.NilID {
				newSlotOf[pid] = len(remapped)
				remapped = append(remapped, heap.Ref(pid))
				newTargets = append(newTargets, t)
				used[pid] = true
				continue
			}
			remapped = append(remapped, heap.Nil())
			newTargets = append(newTargets, heap.NilID)
		}
		for i, pid := range slotProxies {
			if used[pid] {
				continue
			}
			newSlotOf[pid] = len(remapped)
			remapped = append(remapped, heap.Ref(pid))
			newTargets = append(newTargets, slotTargets[i])
		}
		outbound, slotOf, slotTargets = remapped, newSlotOf, newTargets
	}

	// Wrap the members (the dirty subset for a delta) with internal/slot
	// reference classification, then encode in the negotiated wire format.
	span.Phase("encode")
	encodeRef := func(rid heap.ObjID) (xmlcodec.Value, error) {
		if members[rid] {
			return xmlcodec.InternalRef(rid), nil
		}
		if slot, ok := slotOf[rid]; ok {
			return xmlcodec.SlotRef(slot), nil
		}
		if _, ok := remoteOf[rid]; ok {
			ro, err := rt.h.Get(rid)
			if err != nil {
				return xmlcodec.Value{}, err
			}
			return xmlcodec.RemoteRefOf(ObjProxyRemote(ro), ObjProxyClass(ro)), nil
		}
		return xmlcodec.Value{}, fmt.Errorf("core: unclassified reference @%d", rid)
	}
	encode := func(p shipPlan) ([]byte, error) {
		encObjs := objs
		if p.delta {
			encObjs = make([]*heap.Object, 0, len(p.changed))
			for _, obj := range objs {
				if p.changed[obj.ID()] {
					encObjs = append(encObjs, obj)
				}
			}
		}
		doc, err := xmlcodec.EncodeObjects(key, encObjs, encodeRef)
		if err != nil {
			return nil, fmt.Errorf("core: wrap cluster %d: %w", id, err)
		}
		start := rt.obsReg.Clock().Now()
		payload, err := wire.Encode(p.format, doc, &wire.EncodeOpts{
			BaseKey: p.baseKey,
			Removed: p.removed,
			Codecs:  rt.classCodecs,
		})
		if err != nil {
			return nil, fmt.Errorf("core: encode cluster %d as %s: %w", id, p.format, err)
		}
		rt.recordWire(p.format, "encode", len(payload), rt.obsReg.Clock().Now().Sub(start))
		return payload, nil
	}
	payload, err := encode(plan)
	if err != nil {
		return SwapEvent{}, err
	}
	payloadBytes := len(payload)
	span.SetFormat(string(plan.format))
	span.AddBytes(int64(payloadBytes))

	// Phase 3 — shipment, with a brief exclusive window to build the
	// replacement-object. The replacement is pinned the moment it exists
	// (collection would otherwise reclaim it before the inbound proxies
	// reference it), and a pinned object is a GC root: its field writes must
	// not interleave with a concurrent Collect's mark on another shard's
	// behalf, so allocation and initialization happen under this cluster's
	// shard lock (beginMutate keeps the evictor out, as in every section
	// that allocates while holding swap state). The shipment itself is IO
	// and runs unlocked; the destination device is recorded after it lands
	// (failover may move it).
	span.Phase("ship")
	rt.lockShard(sh)
	endMutate := rt.beginMutate(sh)
	repl, err := rt.allocMiddleware(rt.replacementClass)
	if err == nil {
		rt.h.Pin(repl.ID())
		defer rt.h.Unpin(repl.ID())
		if err = repl.SetFieldByName(fldClust, heap.Int(int64(id))); err == nil {
			if err = repl.SetFieldByName(fldOut, heap.List(outbound...)); err == nil {
				err = repl.SetFieldByName(fldKey, heap.Str(key))
			}
		}
	}
	endMutate()
	sh.mu.Unlock()
	if err != nil {
		return SwapEvent{}, fmt.Errorf("core: replacement for cluster %d: %w", id, err)
	}

	// Ship first: a failed transfer must leave the graph untouched. The key
	// is device-independent, so the payload lands unchanged (byte-identical
	// replicas) on whichever donors accept it. A failed delta shipment falls
	// back to a freshly negotiated full shipment — the base donors may have
	// vanished between the negotiation probe and the transfer.
	devices, attempted, rep, err := rt.shipPlanned(ctx, o, id, key, payload, plan)
	if err != nil && plan.delta {
		rt.logger.Warn("delta shipment failed; renegotiating full",
			"trace", trace, "cluster", uint32(id), "err", err)
		plan, err = rt.negotiateFull(ctx, o, key, k)
		if err == nil {
			payload, err = encode(plan)
		}
		if err == nil {
			payloadBytes = len(payload)
			span.SetFormat(string(plan.format))
			span.AddBytes(int64(len(payload)))
			devices, attempted, rep, err = rt.shipPlanned(ctx, o, id, key, payload, plan)
		}
	}
	if err != nil {
		_ = rt.h.Remove(repl.ID())
		return SwapEvent{}, err
	}
	span.SetDevice(devices[0])
	span.SetReplicas(devices)
	span.AddBytes(int64(payloadBytes))

	// Phase 4 — exclusive on this cluster's shard: detach the cluster from
	// the application graph. Commits on sibling shards proceed concurrently.
	span.Phase("commit")
	rt.lockShard(sh)
	oldBase, err := rt.commitSwapOut(id, repl, devices, key, payloadBytes,
		crc32.ChecksumIEEE(payload), residentBytes, plan, memberIDs, slotTargets)
	sh.mu.Unlock()
	if err != nil {
		return SwapEvent{}, err
	}
	committed = true

	// A full shipment that just became the new delta base obsoletes the old
	// base: reclaim its donor space now that nothing references it.
	if oldBase.key != "" && oldBase.key != key {
		for _, d := range oldBase.devices {
			s, err := rt.stores.Lookup(d)
			if err != nil || s.Drop(ctx, oldBase.key) != nil {
				rt.mgr.deferDrop(d, oldBase.key, id)
			}
		}
	}

	shortfall := rep.Requested - len(devices)
	if shortfall < 0 {
		shortfall = 0
	}
	ev = SwapEvent{Cluster: id, Device: devices[0], Key: key, Objects: len(objs),
		Bytes: payloadBytes, Attempted: attempted, Replicas: devices, Trace: trace,
		Format: string(plan.format), Requested: rep.Requested, Quorum: rep.Quorum,
		Shortfall: shortfall, Cause: rt.resolveCause(o.cause)}
	ev.Phases, ev.Duration = span.End()
	rt.recordFault("swap_out", id, ev.Cause, ev.Duration, payloadBytes)
	// A prefetched cluster evicted before any touch was a wasted round trip;
	// let the fault engine settle its inventory accounting.
	rt.faults.NoteEvicted(uint32(id))
	rt.logger.Info("swap-out", "trace", trace, "cluster", uint32(id),
		"device", devices[0], "replicas", len(devices), "key", key,
		"format", string(plan.format), "objects", len(objs),
		"bytes", payloadBytes, "dur", ev.Duration)
	rt.emit(event.TopicSwapOut, ev)
	return ev, nil
}

// beginSwapOut validates and reserves a cluster for swap-out, additionally
// snapshotting the delta-anchor state (retained base + dirty set) the
// negotiate phase works from. Caller holds the cluster's shard lock.
func (rt *Runtime) beginSwapOut(id ClusterID) ([]heap.ObjID, map[heap.ObjID]bool, shipmentBase, map[heap.ObjID]bool, error) {
	var noBase shipmentBase
	ts := rt.mgr.tab(id)
	ts.mu.Lock()
	cs, err := ts.state(id)
	if err != nil {
		ts.mu.Unlock()
		return nil, nil, noBase, nil, err
	}
	if cs.busy {
		ts.mu.Unlock()
		return nil, nil, noBase, nil, fmt.Errorf("%w: cluster %d", ErrClusterBusy, id)
	}
	if cs.swapped {
		ts.mu.Unlock()
		return nil, nil, noBase, nil, fmt.Errorf("%w: cluster %d", ErrClusterSwapped, id)
	}
	if len(cs.objects) == 0 {
		ts.mu.Unlock()
		return nil, nil, noBase, nil, fmt.Errorf("%w: %d", ErrClusterEmpty, id)
	}
	members := make(map[heap.ObjID]bool, len(cs.objects))
	memberIDs := make([]heap.ObjID, 0, len(cs.objects))
	for oid := range cs.objects {
		members[oid] = true
		memberIDs = append(memberIDs, oid)
	}
	base := shipmentBase{
		key:     cs.base.key,
		format:  cs.base.format,
		devices: append([]string(nil), cs.base.devices...),
		members: append([]heap.ObjID(nil), cs.base.members...),
		slots:   append([]heap.ObjID(nil), cs.base.slots...),
	}
	var dirty map[heap.ObjID]bool
	if len(cs.dirty) > 0 {
		dirty = make(map[heap.ObjID]bool, len(cs.dirty))
		for oid := range cs.dirty {
			dirty[oid] = true
		}
	}
	cs.busy = true
	ts.mu.Unlock()
	sort.Slice(memberIDs, func(i, j int) bool { return memberIDs[i] < memberIDs[j] })

	// Refuse to detach a cluster with in-flight invocations: its objects are
	// live on the stack and would collide with a later reload.
	if err := rt.checkInactive(id, members); err != nil {
		rt.setBusy(id, false)
		return nil, nil, noBase, nil, err
	}
	return memberIDs, members, base, dirty, nil
}

// commitSwapOut publishes a shipped cluster's swapped state: the replica set
// is recorded on the replacement (comma-joined, primary first), every
// inbound proxy is re-targeted at it, and the manager record flips to
// swapped. When delta shipment is enabled, a full shipment additionally
// rotates the delta anchor — it becomes the new base, the dirty set resets,
// and the previous base (returned to the caller) is due for donor cleanup; a
// delta shipment leaves base and dirty untouched, since dirty is tracked
// relative to the base, not to the last delta. Caller holds the cluster's
// shard lock.
func (rt *Runtime) commitSwapOut(id ClusterID, repl *heap.Object, devices []string, key string,
	payloadBytes int, payloadCRC uint32, residentBytes int64, plan shipPlan,
	memberIDs []heap.ObjID, slotTargets []heap.ObjID) (shipmentBase, error) {
	if err := repl.SetFieldByName(fldStore, heap.Str(strings.Join(devices, ","))); err != nil {
		return shipmentBase{}, err
	}
	for _, pid := range rt.mgr.inboundProxies(id) {
		p, err := rt.h.Get(pid)
		if err != nil {
			continue // collected since snapshot; finalizer will purge
		}
		if err := p.SetFieldByName(fldTarget, repl.RefTo()); err != nil {
			return shipmentBase{}, fmt.Errorf("core: patch inbound proxy @%d: %w", pid, err)
		}
	}

	ts := rt.mgr.tab(id)
	ts.mu.Lock()
	cs, err := ts.state(id)
	if err != nil {
		ts.mu.Unlock()
		return shipmentBase{}, err
	}
	cs.swapped = true
	cs.busy = false
	cs.replacement = repl.ID()
	cs.devices = append([]string(nil), devices...)
	cs.key = key
	cs.payloadBytes = payloadBytes
	cs.crc = payloadCRC
	cs.bytesAtSwap = residentBytes
	cs.format = string(plan.format)
	cs.swapOuts++
	var oldBase shipmentBase
	if rt.deltaEnabled() && !plan.delta {
		oldBase = cs.base
		cs.base = shipmentBase{
			key:     key,
			devices: append([]string(nil), devices...),
			format:  string(plan.format),
			crc:     payloadCRC,
			members: append([]heap.ObjID(nil), memberIDs...),
			slots:   append([]heap.ObjID(nil), slotTargets...),
		}
		cs.dirty = nil
	}
	ts.mu.Unlock()
	return oldBase, nil
}

// setBusy clears (or sets) a cluster's in-flight reservation.
func (rt *Runtime) setBusy(id ClusterID, busy bool) {
	ts := rt.mgr.tab(id)
	ts.mu.Lock()
	if cs, ok := ts.clusters[id]; ok {
		cs.busy = busy
	}
	ts.mu.Unlock()
}

// shipPlanned places an encoded cluster on the donors the negotiate phase
// selected: pinned (WithDevice) shipments write exactly one copy in the
// negotiated format, everything else ships over the plan's ranked candidate
// list — the planner re-checks capacity against the encoded size and skips
// donors that do not accept the plan's format, writing K format-uniform
// replicas under a majority quorum. It returns the accepting replica set
// (rank order, primary first), the donors that rejected the payload, and the
// planner's shipment report.
func (rt *Runtime) shipPlanned(ctx context.Context, o swapOpts, id ClusterID, key string, data []byte, plan shipPlan) ([]string, []string, placement.ShipReport, error) {
	if o.device != "" {
		s, err := rt.stores.Lookup(o.device)
		if err != nil {
			return nil, nil, placement.ShipReport{}, fmt.Errorf("core: swap-out cluster %d: %w", id, err)
		}
		if err := store.PutWith(ctx, s, key, data, store.PutOpts{Format: string(plan.format)}); err != nil {
			return nil, nil, placement.ShipReport{}, fmt.Errorf("core: ship cluster %d to %s: %w", id, o.device, err)
		}
		return []string{o.device}, nil,
			placement.ShipReport{Replicas: []string{o.device}, Requested: 1, Quorum: 1}, nil
	}
	if rt.placer == nil {
		return nil, nil, placement.ShipReport{}, fmt.Errorf("core: swap-out cluster %d: %w", id, ErrNoPlacement)
	}
	rep, err := rt.placer.ShipRanked(ctx, placement.ShipRequest{
		Key:      key,
		Data:     data,
		Replicas: plan.replicas,
		Format:   string(plan.format),
		NoExtend: o.noFailover,
		OnFailure: func(device string, perr error) {
			rt.logger.Warn("swap-out failover", "trace", obs.TraceFrom(ctx),
				"cluster", uint32(id), "device", device, "err", perr)
			rt.emit(event.TopicSwapFailover, SwapEvent{
				Cluster: id, Device: device, Key: key, Bytes: len(data),
				Trace: obs.TraceFrom(ctx),
			})
		},
	}, plan.ranked)
	if err != nil {
		return nil, rep.Attempted, rep, fmt.Errorf("core: ship cluster %d: %w", id, err)
	}
	return rep.Replicas, rep.Attempted, rep, nil
}

// checkInactive fails when any member of the cluster is on the invocation
// stack.
func (rt *Runtime) checkInactive(id ClusterID, members map[heap.ObjID]bool) error {
	for _, sid := range rt.stack {
		if members[sid] {
			return fmt.Errorf("%w: cluster %d (object @%d on stack)", ErrClusterActive, id, sid)
		}
	}
	return nil
}

// SwapIn fetches a swapped-out cluster back from its device, reinstalls its
// objects under their original identities, re-patches every inbound proxy,
// and retires the replacement-object. Invoking any inbound proxy of a swapped
// cluster does this implicitly; SwapIn is the explicit form (prefetch).
//
// The fetch reads the cluster's replicas in preference (rank) order and
// falls through on error: a dead primary costs one failed request, not the
// reload — the payload is byte-identical on every replica, so whichever
// donor answers first serves the swap-in. Replicas that failed are listed
// in SwapEvent.Attempted, and their loss is announced as a swap.readrepair
// event so the background repair loop can re-replicate everything else
// those donors held.
//
// WithDeadline / WithContext bound the fetch: a timed-out swap-in reports
// the error and leaves the cluster consistently swapped, so a later retry
// (or a reconnecting device) can still reload it. Destination options
// (WithDevice, WithNoFailover) do not apply — a swapped cluster lives where
// it was shipped.
// Like SwapOut, SwapIn may run concurrently for distinct clusters: the fetch
// and decode overlap freely, and only the install/re-patch phase is
// serialized under the swap lock. A cluster mid-transition elsewhere reports
// ErrClusterBusy.
// swapInDirect is the uncoalesced swap-in path. The public SwapIn (fault.go
// glue) wraps it in the fault engine's single-flight table so concurrent
// faults on the same cluster park on one fetch; everything below runs once
// per flight, on the leader's goroutine.
func (rt *Runtime) swapInDirect(id ClusterID, opts ...SwapOption) (ev SwapEvent, retErr error) {
	o, ctx, cancel := resolveSwapOpts(opts)
	defer cancel()
	if rt.stores == nil {
		return SwapEvent{}, ErrNoStores
	}
	trace := rt.newTrace()
	ctx = obs.ContextWithTrace(ctx, trace)
	span := rt.tracer.Start("swap_in")
	span.SetTrace(trace)
	span.SetCluster(uint32(id))
	defer func() {
		if retErr != nil {
			rt.swapErrors.With("swap_in").Inc()
			span.Fail(retErr)
			rt.logger.Warn("swap-in failed",
				"trace", trace, "cluster", uint32(id), "err", retErr)
		}
	}()

	// Phase 1 — exclusive on this cluster's shard: validate and reserve.
	span.Phase("reserve")
	sh := rt.shardOf(id)
	rt.lockShard(sh)
	ts := rt.mgr.tab(id)
	ts.mu.Lock()
	cs, err := ts.state(id)
	if err != nil {
		ts.mu.Unlock()
		sh.mu.Unlock()
		return SwapEvent{}, err
	}
	if cs.busy {
		ts.mu.Unlock()
		sh.mu.Unlock()
		return SwapEvent{}, fmt.Errorf("%w: cluster %d", ErrClusterBusy, id)
	}
	if !cs.swapped {
		ts.mu.Unlock()
		sh.mu.Unlock()
		return SwapEvent{}, fmt.Errorf("%w: cluster %d", ErrClusterLoaded, id)
	}
	cs.busy = true
	devices := append([]string(nil), cs.devices...)
	key := cs.key
	replID := cs.replacement
	needBytes := cs.bytesAtSwap
	wantCRC := cs.crc
	baseKey, baseCRC := cs.base.key, cs.base.crc
	ts.mu.Unlock()
	sh.mu.Unlock()
	committed := false
	defer func() {
		if !committed {
			rt.setBusy(id, false)
		}
	}()

	repl, err := rt.h.Get(replID)
	if err != nil {
		return SwapEvent{}, fmt.Errorf("core: cluster %d replacement gone (cluster is garbage): %w", id, err)
	}
	// Keep the replacement alive across any eviction below.
	rt.h.Pin(replID)
	defer rt.h.Unpin(replID)

	// Phase 2 — concurrent: fetch and decode the shipment. Replicas are
	// byte-identical, so read them in preference order and fall through on
	// error — a dead primary costs one failed request, not the reload.
	span.Phase("fetch")
	span.SetKey(key)
	span.SetReplicas(devices)
	var (
		data    []byte
		device  string
		serving store.Store
		failed  []string
		lastErr error
	)
	for _, d := range devices {
		s, err := rt.stores.Lookup(d)
		if err == nil {
			// Route through the fault engine's donor batcher: misses that
			// land on a donor already serving a fetch ride one multi-key
			// round trip instead of issuing their own.
			data, err = rt.faults.Fetch(ctx, d, s, key)
			// Replicas are byte-identical, so the checksum recorded at
			// swap-out convicts a copy that rotted at rest; with K>=2 the
			// reload falls through to an intact replica.
			if err == nil && wantCRC != 0 && crc32.ChecksumIEEE(data) != wantCRC {
				err = fmt.Errorf("%w: device %s key %s", ErrCorruptReplica, d, key)
			}
			if err == nil {
				device = d
				serving = s
				break
			}
		}
		failed = append(failed, d)
		lastErr = err
		rt.logger.Warn("swap-in replica failed", "trace", trace,
			"cluster", uint32(id), "device", d, "err", err)
		if ctx.Err() != nil {
			break
		}
	}
	if device == "" {
		if lastErr == nil {
			lastErr = ErrNoLiveReplica
		}
		return SwapEvent{}, fmt.Errorf("core: fetch cluster %d (replicas %s): %w",
			id, strings.Join(devices, ","), lastErr)
	}
	span.SetDevice(device)
	span.AddBytes(int64(len(data)))

	// Decode whatever format the shipment self-describes as. A delta fetches
	// its base from the SAME donor that served it — deltas only ever ship to
	// donors holding the base, so a donor that answered with the delta is the
	// one place the base is known to live.
	span.Phase("decode")
	fid, _ := wire.Detect(data)
	decodeStart := rt.obsReg.Clock().Now()
	// Codecs also opts into the borrowed-blob decode: bytes values alias
	// data, which is safe because the document is installed immediately
	// below and heap.Bytes copies on installation.
	doc, err := wire.Decode(data, &wire.DecodeOpts{
		FetchBase: func(k string) ([]byte, error) {
			b, err := rt.faults.Fetch(ctx, device, serving, k)
			if err == nil && k == baseKey && baseCRC != 0 && crc32.ChecksumIEEE(b) != baseCRC {
				return nil, fmt.Errorf("%w: device %s base %s", ErrCorruptReplica, device, k)
			}
			return b, err
		},
		Codecs: rt.classCodecs,
	})
	if err != nil {
		return SwapEvent{}, fmt.Errorf("core: unwrap cluster %d: %w", id, err)
	}
	rt.recordWire(fid, "decode", len(data), rt.obsReg.Clock().Now().Sub(decodeStart))
	span.SetFormat(string(fid))
	if doc.ClusterID != key {
		return SwapEvent{}, fmt.Errorf("core: cluster %d: device returned wrong shipment %q", id, doc.ClusterID)
	}

	// Make room before installing, if we can tell it is needed. Demand a
	// little headroom beyond the payload: the reload path itself allocates
	// middleware objects (proxies for un-replicated edges, patched state).
	// This runs outside the swap lock — the evictor's own swap-outs take it.
	span.Phase("evict")
	if cap := rt.h.Capacity(); cap > 0 && rt.evictor != nil && !rt.evicting.Load() {
		const reloadSlack = 512
		appLimit := cap - rt.h.Reserve()
		if free := appLimit - rt.h.Used(); free < needBytes+reloadSlack {
			if err := rt.runEvictor(needBytes + reloadSlack - free); err != nil {
				return SwapEvent{}, fmt.Errorf("core: make room for cluster %d: %w", id, err)
			}
		}
	}

	// Phase 3 — exclusive on this cluster's shard: vacate stale identities,
	// install, re-patch and publish, all in one critical section so no
	// collection can run between installation (nursery-fresh objects) and the
	// proxy patches that make them reachable — Collect's stop-the-world
	// acquisition cannot slip in while this shard lock is held.
	span.Phase("install")
	rt.lockShard(sh)
	endMutate := rt.beginMutate(sh)
	installed, payload, err := rt.commitSwapIn(id, cs, repl, doc, fid, devices, crc32.ChecksumIEEE(data))
	endMutate()
	sh.mu.Unlock()
	if err != nil {
		return SwapEvent{}, err
	}
	committed = true

	// Every replica's copy is stale once the cluster is live again. Drops
	// that fail (a replica on an unreachable donor) are deferred so the
	// payload is reclaimed when the donor returns. Delta-enabled runtimes
	// deviate: a reloaded FULL shipment stays on its donors as the anchor a
	// future delta re-ships against, while a reloaded delta drops only its
	// own key — the base underneath it stays anchored either way.
	if !rt.keepOnReload {
		switch {
		case fid == wire.FormatDelta:
			for _, d := range devices {
				s, err := rt.stores.Lookup(d)
				if err != nil || s.Drop(ctx, key) != nil {
					rt.mgr.deferDrop(d, key, id)
				}
			}
		case rt.deltaEnabled():
			// Keep the payload: it is (or just became) the delta base.
		default:
			for _, d := range devices {
				s, err := rt.stores.Lookup(d)
				if err != nil || s.Drop(ctx, key) != nil {
					rt.mgr.deferDrop(d, key, id)
				}
			}
		}
	}

	ev = SwapEvent{Cluster: id, Device: device, Key: key, Objects: installed,
		Bytes: payload, Attempted: failed, Trace: trace, Format: string(fid),
		Cause: rt.resolveCause(o.cause)}
	ev.Phases, ev.Duration = span.End()
	rt.recordFault("swap_in", id, ev.Cause, ev.Duration, payload)
	rt.logger.Info("swap-in", "trace", trace, "cluster", uint32(id),
		"device", device, "key", key, "objects", installed,
		"bytes", payload, "dur", ev.Duration)
	rt.emit(event.TopicSwapIn, ev)
	// A dead replica here means the donor likely lost everything it held:
	// announce it so the repair loop re-replicates the rest.
	if len(failed) > 0 {
		rt.emit(event.TopicReadRepair, SwapEvent{
			Cluster: id, Device: failed[0], Key: key,
			Attempted: failed, Trace: trace,
		})
	}
	return ev, nil
}

// commitSwapIn reinstalls a fetched cluster and flips its record to loaded.
// On a delta-enabled runtime a reloaded full shipment re-anchors the delta
// base (resident state now provably equals the retained payload, so the dirty
// set resets and the base membership/slot table are refreshed — this is also
// what re-arms delta encoding after a checkpoint restore dropped the
// membership snapshot); a reloaded delta leaves base and dirty untouched.
// Caller holds the cluster's shard lock inside a beginMutate section
// (installation allocates; an allocation failure here must not re-enter the
// evictor).
func (rt *Runtime) commitSwapIn(id ClusterID, cs *clusterState, repl *heap.Object, doc *xmlcodec.Doc, fid wire.FormatID, devices []string, dataCRC uint32) (int, int, error) {
	// Resolve replacement slots back to the retained outbound proxies.
	outboundVal, err := repl.FieldByName(fldOut)
	if err != nil {
		return 0, 0, err
	}
	outbound, err := outboundVal.List()
	if err != nil {
		return 0, 0, err
	}
	decodeRef := func(v xmlcodec.Value) (heap.Value, error) {
		switch v.RefClass {
		case xmlcodec.RefSlot:
			if v.Slot < 0 || v.Slot >= len(outbound) {
				return heap.Nil(), fmt.Errorf("core: replacement slot %d out of range (%d slots)", v.Slot, len(outbound))
			}
			return outbound[v.Slot], nil
		case xmlcodec.RefRemote:
			// An un-replicated edge: re-synthesize its object-fault proxy.
			pid, err := rt.ObjProxyFor(v.Target, v.Class)
			if err != nil {
				return heap.Nil(), err
			}
			return heap.Ref(pid), nil
		default:
			return heap.Nil(), fmt.Errorf("core: unexpected reference class %v in swapped cluster", v.RefClass)
		}
	}

	// The detached objects are merely *eligible* for collection; if no GC
	// cycle ran since the swap-out they are still resident (as garbage) and
	// their identities must be vacated before reinstalling.
	ts := rt.mgr.tab(id)
	ts.mu.Lock()
	stale := make([]heap.ObjID, 0, len(cs.objects))
	for oid := range cs.objects {
		stale = append(stale, oid)
	}
	ts.mu.Unlock()
	for _, oid := range stale {
		if rt.h.Contains(oid) {
			_ = rt.h.Remove(oid)
		}
	}

	// Reinstallation restores state; it is not a user mutation. Suspend the
	// observers only for this cluster's own member identities: a background
	// prefetch install must not silence concurrent application writes to
	// unrelated clusters (their delta dirty-marks and heat must keep
	// flowing).
	members := make(map[heap.ObjID]bool, len(stale))
	for _, oid := range stale {
		members[oid] = true
	}
	resumeObserver := rt.h.SuspendWriteObserverFor(func(oid heap.ObjID) bool {
		return members[oid]
	})
	installed, err := doc.Install(rt.h, rt.reg, decodeRef)
	if err != nil {
		resumeObserver()
		for _, o := range installed {
			_ = rt.h.Remove(o.ID())
		}
		return 0, 0, fmt.Errorf("core: install cluster %d: %w", id, err)
	}
	resumeObserver()

	// Re-patch inbound proxies onto the restored objects.
	for _, pid := range rt.mgr.inboundProxies(id) {
		p, err := rt.h.Get(pid)
		if err != nil {
			continue
		}
		if err := p.SetFieldByName(fldTarget, heap.Ref(proxyUltimate(p))); err != nil {
			return 0, 0, fmt.Errorf("core: re-patch inbound proxy @%d: %w", pid, err)
		}
	}

	ts.mu.Lock()
	key := cs.key
	cs.swapped = false
	cs.busy = false
	cs.replacement = heap.NilID
	cs.devices = nil
	cs.key = ""
	cs.format = ""
	payload := cs.payloadBytes
	cs.payloadBytes = 0
	cs.crc = 0
	cs.bytesAtSwap = 0
	cs.swapIns++
	if rt.deltaEnabled() && fid != wire.FormatDelta {
		memberIDs := make([]heap.ObjID, 0, len(installed))
		for _, o := range installed {
			memberIDs = append(memberIDs, o.ID())
		}
		sort.Slice(memberIDs, func(i, j int) bool { return memberIDs[i] < memberIDs[j] })
		slots := make([]heap.ObjID, len(outbound))
		for i, v := range outbound {
			if rid, err := v.Ref(); err == nil && rid != heap.NilID {
				if p, perr := rt.h.Get(rid); perr == nil {
					slots[i] = proxyUltimate(p)
				}
			}
		}
		cs.base = shipmentBase{
			key:     key,
			devices: append([]string(nil), devices...),
			format:  string(fid),
			crc:     dataCRC,
			members: memberIDs,
			slots:   slots,
		}
		cs.dirty = nil
	}
	ts.mu.Unlock()
	return len(installed), payload, nil
}

// EvictColdest is a ready-made evictor: it first runs a collection (garbage
// alone may satisfy the request — the cheap path a real VM tries first), then
// swaps out eligible clusters in ascending recency order until need bytes
// have been freed, reclaiming after each swap. Install it with SetEvictor, or
// let the policy engine drive finer-grained decisions.
func (rt *Runtime) EvictColdest(need int64) error {
	return rt.EvictBy(VictimColdest, need)
}

// Evictor returns an evictor hook bound to the given victim strategy,
// suitable for SetEvictor.
func (rt *Runtime) Evictor(strategy VictimStrategy) func(need int64) error {
	return func(need int64) error { return rt.EvictBy(strategy, need) }
}

// EvictorWith returns an evictor hook bound to the given options (strategy
// and parallelism), suitable for SetEvictor.
func (rt *Runtime) EvictorWith(o EvictOptions) func(need int64) error {
	return func(need int64) error { return rt.EvictWith(o, need) }
}

// EvictBy frees at least need bytes: collect first, then swap out victims in
// strategy order, reclaiming after each swap. Progress is measured against
// actual heap occupancy, so middleware allocations made by the eviction
// itself (replacement-objects, proxies) are accounted honestly.
func (rt *Runtime) EvictBy(strategy VictimStrategy, need int64) error {
	return rt.EvictWith(EvictOptions{Strategy: strategy}, need)
}

// EvictOptions tunes an eviction pass.
type EvictOptions struct {
	// Strategy orders the victim candidates (default VictimColdest).
	Strategy VictimStrategy
	// Parallelism > 1 swaps out up to that many victims concurrently per
	// batch, overlapping cluster encoding with device shipment. 0 or 1 keeps
	// the sequential one-victim-then-collect behavior.
	Parallelism int
}

// EvictWith frees at least need bytes under the given options. Victims are
// ranked once per pass and walked in order — skipping clusters that turn out
// to be active, busy, emptied or already swapped — rather than re-ranking the
// whole manager state after every single swap-out; a fresh ranking happens
// only when the list is exhausted and the target is still unmet.
func (rt *Runtime) EvictWith(o EvictOptions, need int64) error {
	if o.Strategy == 0 {
		o.Strategy = VictimColdest
	}
	target := rt.h.Used() - need
	// Collections age the nursery (host-reference grace); a couple of extra
	// cycles can satisfy the request from garbage alone.
	for i := 0; i < 3 && rt.h.Used() > target; i++ {
		rt.Collect()
	}
	for rt.h.Used() > target {
		victims := rt.mgr.SelectVictims(o.Strategy)
		if len(victims) == 0 {
			return errors.New("core: nothing left to evict")
		}
		progressed := false
		if o.Parallelism > 1 {
			for start := 0; start < len(victims) && rt.h.Used() > target; start += o.Parallelism {
				end := start + o.Parallelism
				if end > len(victims) {
					end = len(victims)
				}
				batch := victims[start:end]
				releases := make([]func(), len(batch))
				for i, v := range batch {
					releases[i] = rt.beginShardEvict(v)
				}
				evs, err := rt.SwapOutMany(batch, o.Parallelism)
				for _, release := range releases {
					release()
				}
				if err != nil {
					return err
				}
				if len(evs) > 0 {
					progressed = true
					rt.Collect()
				}
			}
		} else {
			for _, v := range victims {
				release := rt.beginShardEvict(v)
				_, err := rt.SwapOut(v)
				release()
				if err != nil {
					if skippableVictimErr(err) {
						continue // try the next victim
					}
					return err
				}
				progressed = true
				rt.Collect()
				if rt.h.Used() <= target {
					break
				}
			}
		}
		if !progressed {
			return errors.New("core: all eviction candidates are active")
		}
	}
	return nil
}

// skippableVictimErr reports errors that disqualify one victim without
// failing the whole eviction: the cluster is in use, mid-transition on
// another goroutine, or no longer holds anything to swap.
func skippableVictimErr(err error) bool {
	return errors.Is(err, ErrClusterActive) || errors.Is(err, ErrClusterBusy) ||
		errors.Is(err, ErrClusterSwapped) || errors.Is(err, ErrClusterEmpty)
}

// SwapOutMany swaps out the given clusters through a bounded worker pool of
// the given width. Each worker snapshots and encodes its victim, then ships
// it; because only the snapshot and commit phases serialize, the encode of
// one cluster overlaps the device transfer of another — the paper's 700 Kbps
// link stays busy while the CPU renders the next shipment.
//
// Clusters that are active, busy, already swapped or empty are skipped. The
// returned events cover the clusters actually shipped, in input order; the
// first hard failure is returned after all workers finish.
//
// Dispatch is scheduled per shard: the victims are interleaved round-robin
// across their swap shards, so when one shard's commit holds up a worker the
// next dispatched victim lands on a different shard instead of queueing
// behind its sibling.
func (rt *Runtime) SwapOutMany(ids []ClusterID, parallelism int, opts ...SwapOption) ([]SwapEvent, error) {
	if parallelism < 1 {
		parallelism = 1
	}
	if parallelism > len(ids) {
		parallelism = len(ids)
	}
	sem := make(chan struct{}, parallelism)
	events := make([]*SwapEvent, len(ids))
	errs := make([]error, len(ids))
	var wg sync.WaitGroup
	for _, i := range rt.interleaveByShard(ids) {
		id := ids[i]
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, id ClusterID) {
			defer wg.Done()
			defer func() { <-sem }()
			ev, err := rt.SwapOut(id, opts...)
			if err != nil {
				if !skippableVictimErr(err) {
					errs[i] = err
				}
				return
			}
			events[i] = &ev
		}(i, id)
	}
	wg.Wait()
	out := make([]SwapEvent, 0, len(ids))
	for _, ev := range events {
		if ev != nil {
			out = append(out, *ev)
		}
	}
	for _, err := range errs {
		if err != nil {
			return out, err
		}
	}
	return out, nil
}

// SelectVictims returns every eligible eviction candidate ordered by the
// strategy (best victim first).
func (m *Manager) SelectVictims(strategy VictimStrategy) []ClusterID {
	infos := m.InfoAll()
	var eligible []ClusterInfo
	for _, info := range infos {
		if info.ID == RootCluster || info.Swapped || info.Busy || info.Objects == 0 {
			continue
		}
		eligible = append(eligible, info)
	}
	sort.Slice(eligible, func(i, j int) bool {
		a, b := eligible[i], eligible[j]
		switch strategy {
		case VictimLargest:
			if a.ResidentBytes != b.ResidentBytes {
				return a.ResidentBytes > b.ResidentBytes
			}
		case VictimLeastUsed:
			if a.Crossings != b.Crossings {
				return a.Crossings < b.Crossings
			}
		default:
			if a.LastAccess != b.LastAccess {
				return a.LastAccess < b.LastAccess
			}
		}
		return a.ID < b.ID
	})
	out := make([]ClusterID, len(eligible))
	for i, info := range eligible {
		out[i] = info.ID
	}
	return out
}
