package core

import (
	"errors"
	"math/rand"
	"sync"
	"testing"

	"objectswap/internal/heap"
	"objectswap/internal/store"
)

func TestWithShards(t *testing.T) {
	if got := NewRuntime(heap.New(0), heap.NewRegistry()).Shards(); got != DefaultShards {
		t.Errorf("default shard count = %d, want %d", got, DefaultShards)
	}
	if got := NewRuntime(heap.New(0), heap.NewRegistry(), WithShards(3)).Shards(); got != 3 {
		t.Errorf("WithShards(3) = %d shards", got)
	}
	if got := NewRuntime(heap.New(0), heap.NewRegistry(), WithShards(0)).Shards(); got != DefaultShards {
		t.Errorf("WithShards(0) = %d shards, want default %d", got, DefaultShards)
	}
}

func TestShardIndexForBoundsAndSpread(t *testing.T) {
	for n := 1; n <= 16; n++ {
		hit := make(map[int]bool)
		for id := ClusterID(0); id < 1024; id++ {
			s := shardIndexFor(id, n)
			if s < 0 || s >= n {
				t.Fatalf("shardIndexFor(%d, %d) = %d out of range", id, n, s)
			}
			if s != shardIndexFor(id, n) {
				t.Fatalf("shardIndexFor(%d, %d) unstable", id, n)
			}
			hit[s] = true
		}
		if len(hit) != n {
			t.Errorf("n=%d: only %d of %d shards hit by 1024 consecutive ids", n, len(hit), n)
		}
	}
}

func TestInterleaveByShard(t *testing.T) {
	rt := NewRuntime(heap.New(0), heap.NewRegistry(), WithShards(4))
	ids := make([]ClusterID, 64)
	for i := range ids {
		ids[i] = ClusterID(i + 1)
	}
	order := rt.interleaveByShard(ids)
	if len(order) != len(ids) {
		t.Fatalf("interleave emitted %d indexes, want %d", len(order), len(ids))
	}
	seen := make(map[int]bool, len(order))
	lastPos := make(map[int]int) // shard -> position of its previous emission
	prevIdx := make(map[int][]int)
	for pos, i := range order {
		if i < 0 || i >= len(ids) || seen[i] {
			t.Fatalf("interleave index %d at position %d invalid or repeated", i, pos)
		}
		seen[i] = true
		s := rt.shardIndex(ids[i])
		prevIdx[s] = append(prevIdx[s], i)
		lastPos[s] = pos
	}
	// Per-shard relative order is preserved (workers drain each shard FIFO).
	for s, idxs := range prevIdx {
		for j := 1; j < len(idxs); j++ {
			if idxs[j] < idxs[j-1] {
				t.Fatalf("shard %d emission order %v not ascending", s, idxs)
			}
		}
	}
	// With a full round-robin, no shard may finish before every other shard
	// has emitted at least once per full cycle: the first len(prevIdx)
	// positions must all land on distinct shards.
	firstCycle := make(map[int]bool)
	for _, i := range order[:len(prevIdx)] {
		firstCycle[rt.shardIndex(ids[i])] = true
	}
	if len(firstCycle) != len(prevIdx) {
		t.Errorf("first cycle touched %d shards, want %d", len(firstCycle), len(prevIdx))
	}
}

func TestShardEvictionsBookkeeping(t *testing.T) {
	rt := NewRuntime(heap.New(0), heap.NewRegistry())
	if got := rt.ShardEvictions(); len(got) != 0 {
		t.Fatalf("idle runtime reports evictions: %+v", got)
	}
	victim := ClusterID(7)
	release := rt.beginShardEvict(victim)
	nested := rt.beginShardEvict(victim)
	got := rt.ShardEvictions()
	if len(got) != 1 || got[0].Shard != rt.shardIndex(victim) || got[0].Since.IsZero() {
		t.Fatalf("in-flight eviction report = %+v, want shard %d", got, rt.shardIndex(victim))
	}
	nested()
	if got := rt.ShardEvictions(); len(got) != 1 {
		t.Fatalf("nested release cleared the mark early: %+v", got)
	}
	release()
	if got := rt.ShardEvictions(); len(got) != 0 {
		t.Fatalf("release left evictions behind: %+v", got)
	}
}

// A single-shard runtime is the degenerate configuration (one global swap
// lock, as before sharding) and must behave identically.
func TestSingleShardRoundTrip(t *testing.T) {
	h := heap.New(0)
	devices := store.NewRegistry(store.SelectMostFree)
	if err := devices.Add("pda-neighbor", store.NewMem(0)); err != nil {
		t.Fatal(err)
	}
	rt := NewRuntime(h, heap.NewRegistry(), WithStores(devices), WithShards(1))
	node := newNodeClass()
	rt.MustRegisterClass(node)
	c := rt.Manager().NewCluster()
	o, err := rt.NewObject(node, c)
	if err != nil {
		t.Fatal(err)
	}
	o.MustSet("tag", heap.Int(42))
	if err := rt.SetRoot("head", o.RefTo()); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.SwapOut(c); err != nil {
		t.Fatal(err)
	}
	rt.Collect()
	if _, err := rt.SwapIn(c); err != nil {
		t.Fatal(err)
	}
	v, err := rt.Field(o.RefTo(), "tag")
	if err != nil {
		t.Fatal(err)
	}
	if tag, _ := v.Int(); tag != 42 {
		t.Fatalf("tag after round trip = %d, want 42", tag)
	}
	if errs := rt.Manager().CheckInvariants(); len(errs) > 0 {
		t.Fatalf("invariants: %v", errs)
	}
}

// TestConcurrentCollectAndSwapStorm runs Collect concurrently with
// SwapOutMany and SwapIn across many clusters (the satellite's -race test):
// no deadlock, no lost objects, and the application-visible graph survives
// intact.
func TestConcurrentCollectAndSwapStorm(t *testing.T) {
	f := newFixture(t, 0)
	_, clusters := f.buildList(t, 256, 4, 16)
	want := f.snapshotTags(t)

	skippable := func(err error) bool {
		return errors.Is(err, ErrClusterBusy) || errors.Is(err, ErrClusterLoaded) ||
			errors.Is(err, ErrClusterSwapped) || errors.Is(err, ErrClusterEmpty)
	}

	const rounds = 20
	var wg sync.WaitGroup
	wg.Add(3)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			if _, err := f.rt.SwapOutMany(clusters, 4); err != nil && !skippable(err) {
				t.Errorf("swap-out many: %v", err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(1))
		for i := 0; i < rounds*len(clusters)/4; i++ {
			c := clusters[rng.Intn(len(clusters))]
			if _, err := f.rt.SwapIn(c); err != nil && !skippable(err) {
				t.Errorf("swap-in %d: %v", c, err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			f.rt.Collect()
		}
	}()
	wg.Wait()

	// Quiesce: everything back in, nothing lost.
	for _, c := range clusters {
		if _, err := f.rt.SwapIn(c); err != nil && !skippable(err) {
			t.Fatalf("final swap-in %d: %v", c, err)
		}
	}
	if errs := f.rt.Manager().CheckInvariants(); len(errs) > 0 {
		t.Fatalf("invariants after storm: %v", errs)
	}
	got := f.snapshotTags(t)
	if len(got) != len(want) {
		t.Fatalf("list length after storm = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("tag[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}
