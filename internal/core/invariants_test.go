package core

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"objectswap/internal/heap"
)

// checkClean asserts zero invariant violations.
func checkClean(t testing.TB, rt *Runtime) {
	t.Helper()
	if errs := rt.Manager().CheckInvariants(); len(errs) > 0 {
		for _, e := range errs {
			t.Error(e)
		}
		t.Fatal("invariant violations")
	}
}

func TestInvariantsHoldAfterConstruction(t *testing.T) {
	f := newFixture(t, 0)
	f.buildList(t, 50, 10, 16)
	checkClean(t, f.rt)
}

func TestInvariantsHoldAcrossSwapCycle(t *testing.T) {
	f := newFixture(t, 0)
	_, clusters := f.buildList(t, 50, 10, 16)
	for _, c := range clusters[1:] {
		if _, err := f.rt.SwapOut(c); err != nil {
			t.Fatal(err)
		}
		checkClean(t, f.rt)
		f.rt.Collect()
		checkClean(t, f.rt)
	}
	f.snapshotTags(t) // reload everything
	checkClean(t, f.rt)
}

func TestInvariantsDetectCorruption(t *testing.T) {
	// Plant a forbidden cross-cluster direct reference and verify the
	// checker reports it (direct heap write, bypassing interception).
	f := newFixture(t, 0)
	ids, _ := f.buildList(t, 20, 10, 8)
	a, _ := f.rt.Heap().Get(ids[0])  // cluster 1
	b, _ := f.rt.Heap().Get(ids[15]) // cluster 2
	if err := a.SetFieldByName("next", b.RefTo()); err != nil {
		t.Fatal(err)
	}
	errs := f.rt.Manager().CheckInvariants()
	if len(errs) == 0 {
		t.Fatal("planted violation not detected")
	}
}

// TestPropInvariantsUnderRandomOperations drives a random mix of middleware
// operations and asserts the full invariant set after every batch.
func TestPropInvariantsUnderRandomOperations(t *testing.T) {
	fn := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		f := newFixture(t, 0)
		n := 20 + r.Intn(40)
		per := 4 + r.Intn(8)
		ids, clusters := f.buildList(t, n, per, 8)

		for step := 0; step < 30; step++ {
			switch r.Intn(6) {
			case 0: // swap a random cluster out
				c := clusters[r.Intn(len(clusters))]
				if !f.rt.Manager().IsSwapped(c) {
					// Dead clusters may already have been dropped entirely.
					if _, err := f.rt.SwapOut(c); err != nil &&
						!errors.Is(err, ErrClusterEmpty) && !errors.Is(err, ErrUnknownCluster) {
						t.Logf("seed %d: swap-out: %v", seed, err)
						return false
					}
				}
			case 1: // swap a random cluster in
				c := clusters[r.Intn(len(clusters))]
				if f.rt.Manager().IsSwapped(c) {
					if _, err := f.rt.SwapIn(c); err != nil && !errors.Is(err, ErrUnknownCluster) {
						t.Logf("seed %d: swap-in: %v", seed, err)
						return false
					}
				}
			case 2: // collect
				f.rt.Collect()
			case 3: // rewire a random edge through the mediated API
				src := ids[r.Intn(n)]
				dst := ids[r.Intn(n)]
				err := f.rt.SetFieldValue(heap.Ref(src), "next", heap.Ref(dst))
				// Rewiring may have orphaned either endpoint earlier; poking a
				// collected object correctly errors.
				if err != nil && !errors.Is(err, heap.ErrNoSuchObject) {
					t.Logf("seed %d: set field: %v", seed, err)
					return false
				}
			case 4: // read a field through a random reference
				src := ids[r.Intn(n)]
				if _, err := f.rt.Field(heap.Ref(src), "next"); err != nil && !errors.Is(err, heap.ErrNoSuchObject) {
					t.Logf("seed %d: field: %v", seed, err)
					return false
				}
			case 5: // invoke through the head (may fault clusters in)
				if _, err := f.rt.Invoke(f.head(t), "fetch", heap.Int(int64(r.Intn(n)))); err != nil {
					t.Logf("seed %d: invoke: %v", seed, err)
					return false
				}
			}
			if errs := f.rt.Manager().CheckInvariants(); len(errs) > 0 {
				for _, e := range errs {
					t.Logf("seed %d step %d: %v", seed, step, e)
				}
				return false
			}
		}
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
