// Package core implements the paper's primary contribution: transparent
// Object-Swapping over swap-clusters.
//
// The object graph of a process is partitioned into swap-clusters — groups of
// objects treated as a single macro-object for swapping. Every reference that
// links two different swap-clusters is permanently mediated by a
// swap-cluster-proxy; references inside one swap-cluster are direct, so
// applications run at full speed on intra-cluster work. Proxies intercept
// every reference passed across a boundary (arguments and returns) and
// create, reuse, patch or dismantle swap-cluster-proxies so the invariant is
// maintained as the application navigates and mutates the graph.
//
// When memory must be freed, a swap-cluster is detached: a replacement-object
// (an array of references to the cluster's outbound proxies) is created,
// every inbound proxy is patched to target it, the cluster's objects are
// serialized to XML and shipped to a nearby device, and the local collector
// reclaims their memory. Touching any inbound proxy afterwards faults the
// whole cluster back in: the XML is fetched, objects are reinstalled under
// their original identities, inbound proxies are re-patched, and the
// replacement-object becomes garbage. When a replacement-object itself
// becomes unreachable, the whole swapped cluster is dead and the storing
// device is told to drop the XML — the paper's local-only GC integration.
//
// The Runtime type wires this machinery into the managed heap's Invoker
// indirection; the Manager type is the paper's SwappingManager.
package core

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"objectswap/internal/event"
	"objectswap/internal/fault"
	"objectswap/internal/heap"
	"objectswap/internal/obs"
	olog "objectswap/internal/obs/log"
	"objectswap/internal/placement"
	"objectswap/internal/store"
	"objectswap/internal/wire"
)

// ClusterID names a swap-cluster within one Runtime. RootCluster (0) holds
// global variables and static state (the paper's swap-cluster-0); it is never
// swapped out.
type ClusterID uint32

// RootCluster is swap-cluster-0.
const RootCluster ClusterID = 0

// Hidden field names of middleware classes. The "$" prefix keeps them out of
// application field namespaces.
const (
	fldTarget = "$target"   // proxy: ref to the target object or its replacement
	fldObj    = "$obj"      // proxy: ultimate target ObjID (stable across swaps)
	fldSrc    = "$src"      // proxy: source cluster id
	fldMode   = "$mode"     // proxy: 0 = normal, 1 = assign-optimized
	fldClust  = "$cluster"  // replacement: swapped cluster id
	fldOut    = "$outbound" // replacement: list of refs to outbound proxies
	fldKey    = "$key"      // replacement: storage key
	fldStore  = "$store"    // replacement: device name
)

const (
	proxyModeNormal int64 = 0
	proxyModeAssign int64 = 1
)

// proxyClassPrefix prefixes synthesized swap-cluster-proxy class names
// (obicomp generates one proxy class per application class).
const proxyClassPrefix = "$SwapProxy:"

// replacementClassName is the class of replacement-objects.
const replacementClassName = "$Replacement"

// Errors reported by the swapping runtime.
var (
	// ErrRootCluster reports an attempt to swap out swap-cluster-0.
	ErrRootCluster = errors.New("core: swap-cluster-0 cannot be swapped")
	// ErrClusterSwapped reports an operation requiring a resident cluster.
	ErrClusterSwapped = errors.New("core: cluster is swapped out")
	// ErrClusterLoaded reports a swap-in of a cluster that is resident.
	ErrClusterLoaded = errors.New("core: cluster is not swapped out")
	// ErrUnknownCluster reports an undeclared cluster id.
	ErrUnknownCluster = errors.New("core: unknown cluster")
	// ErrClusterEmpty reports a swap-out of a cluster with no members (its
	// objects may all have been collected).
	ErrClusterEmpty = errors.New("core: cluster is empty")
	// ErrNoStores reports swapping without a configured store provider.
	ErrNoStores = errors.New("core: no store provider configured")
	// ErrNotProxy reports an Assign call on something that is not a
	// swap-cluster-proxy reference.
	ErrNotProxy = errors.New("core: not a swap-cluster-proxy reference")
	// ErrClusterBusy reports a swap operation on a cluster whose swap-out or
	// swap-in is already in flight on another goroutine.
	ErrClusterBusy = errors.New("core: cluster swap in progress")
	// ErrNoPlacement reports an unpinned swap-out through a store provider
	// that cannot enumerate donors (placement.Source): without the candidate
	// set there is nothing to rendezvous-hash.
	ErrNoPlacement = errors.New("core: store provider cannot enumerate donors for placement")
	// ErrNoRepair reports a repair request for a cluster already holding its
	// full replica set on live donors.
	ErrNoRepair = errors.New("core: cluster needs no repair")
	// ErrNoLiveReplica reports a repair (or swap-in) finding no reachable
	// donor holding the cluster's payload — the cluster is unrecoverable
	// until one of its donors returns.
	ErrNoLiveReplica = errors.New("core: no live replica")
	// ErrCorruptReplica reports a fetched payload whose checksum disagrees
	// with the one recorded at swap-out: the donor's copy rotted at rest.
	// Swap-in and repair treat it like a dead replica and fall through to
	// the next one.
	ErrCorruptReplica = errors.New("core: replica payload corrupt")
)

// StoreProvider resolves nearby swapping devices by name. It is implemented
// by store.Registry. Donor *selection* is no longer part of this contract:
// the rendezvous placement planner picks destinations, and it is built
// automatically when the provider also implements placement.Source
// (enumeration of the reachable donors). A provider that only resolves
// names supports pinned (WithDevice) swap-outs and swap-ins, but not
// planner-placed shipments.
type StoreProvider interface {
	// Lookup resolves a device by name, failing when it is unknown or
	// unreachable.
	Lookup(name string) (store.Store, error)
}

var _ StoreProvider = (*store.Registry)(nil)
var _ placement.Source = (*store.Registry)(nil)

// FaultHandler resolves an incremental-replication object fault: it must
// replicate the cluster containing the proxy's target and return a reference
// to the now-resident object. Implemented by the replication package.
type FaultHandler interface {
	HandleFault(rt *Runtime, proxy *heap.Object) (heap.Value, error)
}

// SwapEvent is the payload of swap.out / swap.in / swap.drop events.
type SwapEvent struct {
	Cluster ClusterID
	Device  string
	Key     string
	Objects int
	Bytes   int // shipped payload size (in the negotiated wire format)
	// Format is the wire format the payload moved in ("xml", "binary",
	// "binary+flate", "delta"). Empty on events not tied to one transfer.
	Format string
	// Requested is the replica count K the swap-out aimed for; Quorum is the
	// write quorum that applied. Shortfall = Requested - len(Replicas) when
	// positive: the shipment committed (quorum met) but the donor
	// neighborhood was too sparse for full replication — surfaced here on the
	// event itself, not only through the underreplicated gauge, so callers
	// see the degraded durability of this very swap-out.
	Requested int
	Quorum    int
	Shortfall int
	// Trace is the operation's cross-device trace ID, carried to the serving
	// device in the X-Obiswap-Trace header. Empty on events that are not tied
	// to one traced operation (drop).
	Trace string
	// Attempted lists the devices that failed the operation before it
	// settled: rejected swap-out destinations (failover trail), or dead
	// replicas a swap-in fell through before one served the payload.
	Attempted []string
	// Replicas is the full replica set holding the shipment after the
	// operation, primary (Device) first. A singleton under the default
	// replication factor of 1; empty on swap-in completion (the copies are
	// dropped).
	Replicas []string
	// Phases is the per-phase timing and byte breakdown of the completed
	// operation (reserve → snapshot → negotiate → encode → ship → commit for
	// a swap-out; reserve → fetch → decode → evict → install for a swap-in),
	// as recorded by the runtime's tracer. Empty on mid-flight events
	// (failover, drop).
	Phases []obs.Phase
	// Duration is the whole-operation time from the same trace span.
	Duration time.Duration
	// Cause attributes the swap (one of the Cause* constants): explicit API
	// call, evictor pressure, policy action, implicit reload, or repair.
	// Empty on events not tied to one attributed operation.
	Cause string
}

// Runtime is the swapping-aware Invoker: the OBIWAN middleware instance
// running on one constrained device.
type Runtime struct {
	h   *heap.Heap
	reg *heap.Registry
	bus *event.Bus

	mgr    *Manager
	stores StoreProvider
	// placer ranks donors and ships replicated payloads. NewRuntime builds it
	// automatically when the store provider can enumerate donors
	// (placement.Source — store.Registry can); nil otherwise, in which case
	// only pinned (WithDevice) swap-outs work.
	placer *placement.Planner
	// defaultReplicas is the runtime-wide replication factor K (minimum 1).
	defaultReplicas int
	// wireFormats is the shipment-format preference order (see WithWireFormats).
	// Donors that do not advertise a preferred format get the next one; XML is
	// the implicit universal fallback. Listing wire.FormatDelta opts the
	// runtime into delta re-shipment.
	wireFormats []string

	// evictor is invoked on allocation failure to free memory (the policy
	// engine installs a swap-out action here).
	evictor func(need int64) error

	faultHandler FaultHandler

	// stack holds the receivers, arguments and freshly created middleware
	// objects of in-flight invocations; it stands in for thread stacks as GC
	// roots.
	stack []heap.ObjID
	depth int

	// shards splits the swap machinery's serialization point by cluster: the
	// snapshot/reserve and commit/patch phases of a swap run under the lock of
	// the shard its cluster hashes onto, so swaps on different shards never
	// contend. The expensive middle phases — encoding, device shipment, fetch
	// and decode — run outside any shard lock, which is what lets SwapOutMany
	// overlap the encoding of one cluster with the shipment of another. The
	// whole-graph paths (Collect, resize, checkpoint save/restore) stop the
	// world via lockAll. Lock order: shard mu → mgr.mu → tableShard mu → h.mu;
	// see shard.go. nshards is the configured count (WithShards), fixed at
	// construction.
	shards  []*coreShard
	nshards int
	// mutatingCount counts open critical sections that may allocate while
	// holding shard locks (swap-in install, resize, restore). While nonzero,
	// allocation failures report ErrOutOfMemory instead of re-entering the
	// evictor, whose swap-outs would deadlock on the held shard locks.
	mutatingCount atomic.Int32

	keepOnReload bool
	name         string
	keyseq       atomic.Uint64
	evicting     atomic.Bool
	// evictStart is the registry-clock start time (unix nanos) of the
	// in-flight eviction, 0 when idle. Health checks use it to spot a wedged
	// evictor.
	evictStart atomic.Int64
	traceSeq   atomic.Uint64

	// Observability spine. NewRuntime installs a private registry when none
	// is supplied via WithObs, so swap spans (and SwapEvent.Phases) are
	// always recorded.
	obsReg      *obs.Registry
	tracer      *obs.Tracer
	swapErrors  *obs.CounterVec
	coreEvents  *obs.CounterVec
	wireBytes   *obs.CounterVec
	wireSeconds *obs.HistogramVec
	recorder    *obs.Recorder
	logger      *olog.Logger
	// telem, when set (WithTelemetry), receives the access-touch stream and
	// completed swap faults. Calls are nil-guarded and happen either at leaf
	// positions under the lock order or after all locks are released.
	telem Telemetry

	// faults is the asynchronous fault engine: single-flight coalescing of
	// concurrent swap-ins, donor-batched fetches, and (when enabled via
	// WithPrefetch) the graph-driven prefetcher. Always non-nil after
	// NewRuntime.
	faults          *fault.Engine
	prefetchDepth   int
	prefetchWorkers int

	replacementClass *heap.Class
	objProxyClass    *heap.Class
	proxyClasses     map[string]*heap.Class

	// classCodecs holds the wire codecs of registered classes whose ops were
	// generated by obicomp (wire.ClassCodecProvider). The set rides along on
	// every binary-family encode/decode; classes without a codec fall back to
	// the generic frame path, byte for byte.
	classCodecs *wire.ClassCodecs
}

var _ heap.Invoker = (*Runtime)(nil)

// Option configures a Runtime.
type Option func(*Runtime)

// WithBus publishes middleware events (swap.out, swap.in, swap.drop) on bus.
func WithBus(bus *event.Bus) Option {
	return func(rt *Runtime) { rt.bus = bus }
}

// WithStores attaches the nearby-device provider used for swapping.
func WithStores(p StoreProvider) Option {
	return func(rt *Runtime) { rt.stores = p }
}

// WithObs records the runtime's swap spans, phase timings and event counters
// in r instead of a private registry, so one scrape covers the whole
// middleware instance.
func WithObs(r *obs.Registry) Option {
	return func(rt *Runtime) {
		if r != nil {
			rt.obsReg = r
		}
	}
}

// WithFlightRecorder retains every finished swap span (with phase timings,
// trace ID, device and outcome) in rec for post-incident look-back.
func WithFlightRecorder(rec *obs.Recorder) Option {
	return func(rt *Runtime) { rt.recorder = rec }
}

// WithLogger emits structured records for swap outcomes and evictions. A nil
// logger (the default) logs nothing.
func WithLogger(lg *olog.Logger) Option {
	return func(rt *Runtime) { rt.logger = lg }
}

// Telemetry receives the runtime's access-touch stream and completed swap
// faults. Implementations must treat both methods as leaf calls: they may be
// invoked while manager table locks are held, so they must not call back
// into the runtime.
type Telemetry interface {
	// Touch reports one access to a cluster; crossing marks proxy boundary
	// crossings (the recency feed) as opposed to intra-cluster accesses.
	Touch(cluster uint32, crossing bool)
	// RecordSwap reports one completed fault: op is the span name
	// ("swap_out", "swap_in", "swap_repair"), cause a Cause* value.
	RecordSwap(op string, cluster uint32, cause string, seconds float64, bytes int64)
}

// WithTelemetry streams cluster touches and completed swap faults into t
// (the telemetry plane: heat classification, working-set estimation, fault
// attribution, thrash scoring).
func WithTelemetry(t Telemetry) Option {
	return func(rt *Runtime) { rt.telem = t }
}

// WithKeepOnReload keeps the XML copy on the device after a successful
// swap-in instead of dropping it (useful for versioning/reconciliation
// scenarios the paper mentions).
func WithKeepOnReload() Option {
	return func(rt *Runtime) { rt.keepOnReload = true }
}

// WithName sets the device's name, which prefixes every storage key it
// writes. The paper requires each stored set "be given a unique ID";
// when several devices share a neighborhood store, the name keeps their
// shipments apart. Defaults to a process-unique "devN".
func WithName(name string) Option {
	return func(rt *Runtime) {
		if name != "" {
			rt.name = name
		}
	}
}

// WithDefaultReplicas sets the runtime-wide replication factor K: every
// unpinned swap-out ships its payload to K donors (committing on a majority
// write quorum) unless a per-call WithReplicas overrides it. Values below 1
// are clamped to 1 — the paper's single-donor behavior.
func WithDefaultReplicas(k int) Option {
	return func(rt *Runtime) {
		if k > 1 {
			rt.defaultReplicas = k
		}
	}
}

// WithWireFormats sets the shipment-format preference order for negotiated
// swap-outs (wire.FormatID strings, most preferred first). The default is
// ["binary", "xml"]: the length-prefixed binary framing when the donors
// support it, the universal XML wrapper otherwise. XML is always available as
// the implicit fallback even when not listed. Including "delta" additionally
// opts the runtime into delta re-shipment: full shipments stay on their
// donors after a swap-in and act as the base for later dirty-only deltas
// (this changes the drop-on-reload behavior for those payloads, which is why
// it is opt-in).
func WithWireFormats(formats ...string) Option {
	return func(rt *Runtime) {
		if len(formats) > 0 {
			rt.wireFormats = append([]string(nil), formats...)
		}
	}
}

// runtimeSeq hands out process-unique default device names.
var runtimeSeq uint64

// NewRuntime builds a swapping runtime over a device heap and class registry.
// On capacity-limited heaps without a configured reserve, a default
// middleware headroom is installed so proxies and replacement-objects can be
// allocated under full memory pressure (see heap.SetReserve).
func NewRuntime(h *heap.Heap, reg *heap.Registry, opts ...Option) *Runtime {
	rt := &Runtime{
		h:            h,
		reg:          reg,
		nshards:      DefaultShards,
		proxyClasses: make(map[string]*heap.Class),
		classCodecs:  wire.NewClassCodecs(),
		name:         fmt.Sprintf("dev%d", atomic.AddUint64(&runtimeSeq, 1)),
	}
	rt.replacementClass = buildReplacementClass()
	rt.objProxyClass = buildObjProxyClass()
	// The replacement class is middleware-internal; it is not registered in
	// the application registry (swapped XML never mentions it).
	for _, opt := range opts {
		opt(rt)
	}
	if rt.nshards < 1 {
		rt.nshards = DefaultShards
	}
	rt.shards = make([]*coreShard, rt.nshards)
	for i := range rt.shards {
		rt.shards[i] = &coreShard{idx: i}
	}
	rt.mgr = newManager(rt, rt.nshards)
	if cap := h.Capacity(); cap > 0 && h.Reserve() == 0 {
		reserve := cap / 16
		if reserve < 512 {
			reserve = 512
		}
		h.SetReserve(reserve)
	}
	if rt.obsReg == nil {
		rt.obsReg = obs.NewRegistry(nil)
	}
	if len(rt.wireFormats) == 0 {
		rt.wireFormats = []string{string(wire.FormatBinary), string(wire.FormatXML)}
	}
	if src, ok := rt.stores.(placement.Source); ok && rt.stores != nil {
		rt.placer = placement.New(src, placement.Options{Obs: rt.obsReg, Logger: rt.logger})
	}
	if rt.deltaEnabled() {
		// Delta re-shipment needs to know which members changed since the
		// base. The observer coexists with replication's SetWriteObserver slot.
		h.AddWriteObserver(rt.markDirty)
	}
	if rt.telem != nil {
		// Heat tracking consumes every observed access: field writes arrive
		// via the heap's access observers, read-side dispatches via
		// NoteAccess, boundary crossings directly from enterCrossing.
		h.AddAccessObserver(rt.noteAccess)
	}
	rt.instrument()
	rt.faults = fault.New(fault.Config{
		Obs:             rt.obsReg,
		PrefetchDepth:   rt.prefetchDepth,
		PrefetchWorkers: rt.prefetchWorkers,
		Neighbors:       rt.mgr.NeighborClusters,
		SwapIn:          rt.prefetchSwapIn,
	})
	return rt
}

// deltaEnabled reports whether the runtime was opted into delta re-shipment
// (wire.FormatDelta listed in the format preferences).
func (rt *Runtime) deltaEnabled() bool {
	for _, f := range rt.wireFormats {
		if f == string(wire.FormatDelta) {
			return true
		}
	}
	return false
}

// shipFormats is the preference order for full (self-contained) shipments:
// the configured preferences minus delta, with XML appended as the universal
// fallback when not listed.
func (rt *Runtime) shipFormats() []string {
	out := make([]string, 0, len(rt.wireFormats)+1)
	sawXML := false
	for _, f := range rt.wireFormats {
		if f == string(wire.FormatDelta) {
			continue
		}
		if f == string(wire.FormatXML) {
			sawXML = true
		}
		out = append(out, f)
	}
	if !sawXML {
		out = append(out, string(wire.FormatXML))
	}
	return out
}

// markDirty is the write observer feeding delta re-shipment: a field write on
// a resident member of a cluster with a recorded base marks that member for
// the next delta. Replacement-objects and proxies are not cluster members,
// so middleware writes fall through.
func (rt *Runtime) markDirty(oid heap.ObjID) {
	m := rt.mgr
	m.mu.Lock()
	info, ok := m.objects[oid]
	m.mu.Unlock()
	if !ok {
		return
	}
	ts := m.tab(info.cluster)
	ts.mu.Lock()
	if cs, ok := ts.clusters[info.cluster]; ok && !cs.swapped && cs.base.key != "" {
		if cs.dirty == nil {
			cs.dirty = make(map[heap.ObjID]bool)
		}
		cs.dirty[oid] = true
	}
	ts.mu.Unlock()
}

// noteAccess is the heap access observer feeding heat tracking: it resolves
// the accessed object's cluster and reports a (non-crossing) touch. Same
// cost and race profile as markDirty; the telemetry Touch is a leaf call.
func (rt *Runtime) noteAccess(oid heap.ObjID) {
	if rt.telem == nil {
		return
	}
	m := rt.mgr
	m.mu.Lock()
	info, ok := m.objects[oid]
	m.mu.Unlock()
	if !ok {
		return
	}
	rt.telem.Touch(uint32(info.cluster), false)
}

// noteTouch streams one cluster touch into the telemetry plane, if present.
func (rt *Runtime) noteTouch(id ClusterID, crossing bool) {
	if rt.telem != nil {
		rt.telem.Touch(uint32(id), crossing)
	}
}

// resolveCause defaults an unattributed swap: to the evictor while an
// eviction pass is in flight, and to an explicit API call otherwise.
func (rt *Runtime) resolveCause(cause string) string {
	if cause != "" {
		return cause
	}
	if rt.evicting.Load() {
		return CauseEvictor
	}
	return CauseExplicit
}

// recordFault streams one completed swap fault into the telemetry plane.
// Called after all locks are released, alongside event emission.
func (rt *Runtime) recordFault(op string, id ClusterID, cause string, d time.Duration, bytes int) {
	if rt.telem != nil {
		rt.telem.RecordSwap(op, uint32(id), cause, d.Seconds(), int64(bytes))
	}
}

// recordWire folds one codec run into the per-format instruments and returns
// nothing; op is "encode" or "decode".
func (rt *Runtime) recordWire(format wire.FormatID, op string, bytes int, d time.Duration) {
	rt.wireBytes.With(string(format), op).Add(float64(bytes))
	rt.wireSeconds.With(string(format), op).Observe(d.Seconds())
}

// instrument registers the runtime's span tracer, error and event counters,
// and cluster-residency gauges in its registry.
func (rt *Runtime) instrument() {
	r := rt.obsReg
	rt.tracer = obs.NewTracer(r, "objectswap_swap")
	rt.tracer.SetRecorder(rt.recorder)
	rt.swapErrors = r.CounterVec("objectswap_swap_errors_total",
		"Failed swap operations by operation.", "op")
	rt.coreEvents = r.CounterVec("objectswap_core_events_total",
		"Middleware events published by the swapping runtime, by topic.", "topic")
	rt.wireBytes = r.CounterVec("objectswap_wire_bytes_total",
		"Payload bytes produced (encode) or consumed (decode), by wire format.",
		"format", "op")
	rt.wireSeconds = r.HistogramVec("objectswap_wire_seconds",
		"Codec run duration by wire format and operation.", nil, "format", "op")
	lockWaits := r.HistogramVec("objectswap_swap_lock_wait_seconds",
		"Swap-shard lock acquisition wait, by shard.", nil, "shard")
	for _, sh := range rt.shards {
		sh.wait = lockWaits.With(strconv.Itoa(sh.idx))
	}
	shardClusters := r.GaugeVec("objectswap_core_shard_clusters",
		"Swap-clusters by table shard and state.", "shard", "state")
	for i, ts := range rt.mgr.tabs {
		ts := ts
		label := strconv.Itoa(i)
		shardClusters.WithFunc(func() float64 {
			resident, _, _ := ts.counts()
			return resident
		}, label, "resident")
		shardClusters.WithFunc(func() float64 {
			_, swapped, _ := ts.counts()
			return swapped
		}, label, "swapped")
		shardClusters.WithFunc(func() float64 {
			_, _, busy := ts.counts()
			return busy
		}, label, "busy")
	}
	clusters := r.GaugeVec("objectswap_core_clusters",
		"Swap-clusters by residency state.", "state")
	clusters.WithFunc(func() float64 {
		n := 0.0
		for _, info := range rt.mgr.InfoAll() {
			if !info.Swapped {
				n++
			}
		}
		return n
	}, "resident")
	clusters.WithFunc(func() float64 {
		n := 0.0
		for _, info := range rt.mgr.InfoAll() {
			if info.Swapped {
				n++
			}
		}
		return n
	}, "swapped")
	repl := r.GaugeVec("objectswap_placement_replicas",
		"Replica health of swapped clusters.", "stat")
	repl.WithFunc(func() float64 {
		return float64(len(rt.UnderReplicated(0)))
	}, "underreplicated")
	repl.WithFunc(func() float64 {
		live, swapped := rt.liveReplicaTotals()
		if swapped == 0 {
			return 0
		}
		return float64(live) / float64(swapped)
	}, "factor")
	// Constant 1; the labels carry the build-time configuration so
	// dashboards can correlate config changes with perf shifts across soaks.
	r.GaugeVec("objectswap_build_info",
		"Constant gauge whose labels record the configured shard count, replication factor and wire-format preference order.",
		"shards", "replicas", "formats").
		With(strconv.Itoa(rt.nshards), strconv.Itoa(rt.Replicas()), strings.Join(rt.wireFormats, ",")).Set(1)
}

// Obs returns the runtime's observability registry (never nil).
func (rt *Runtime) Obs() *obs.Registry { return rt.obsReg }

// FlightRecorder returns the runtime's flight recorder, which may be nil.
func (rt *Runtime) FlightRecorder() *obs.Recorder { return rt.recorder }

// Logger returns the runtime's structured logger, which may be nil.
func (rt *Runtime) Logger() *olog.Logger { return rt.logger }

// HasEvictor reports whether an allocation-pressure hook is installed.
func (rt *Runtime) HasEvictor() bool { return rt.evictor != nil }

// EvictingSince reports the registry-clock start time of the in-flight
// eviction pass, if one is running. Health checks use it to flag a wedged
// evictor.
func (rt *Runtime) EvictingSince() (time.Time, bool) {
	ns := rt.evictStart.Load()
	if ns == 0 {
		return time.Time{}, false
	}
	return time.Unix(0, ns), true
}

// Heap returns the device heap.
func (rt *Runtime) Heap() *heap.Heap { return rt.h }

// Registry returns the class registry.
func (rt *Runtime) Registry() *heap.Registry { return rt.reg }

// Manager returns the SwappingManager.
func (rt *Runtime) Manager() *Manager { return rt.mgr }

// Bus returns the event bus, which may be nil.
func (rt *Runtime) Bus() *event.Bus { return rt.bus }

// SetEvictor installs the allocation-pressure hook: when an allocation fails
// with ErrOutOfMemory, the runtime calls evict(need) once and retries.
func (rt *Runtime) SetEvictor(evict func(need int64) error) { rt.evictor = evict }

// SetFaultHandler installs the incremental-replication fault handler.
func (rt *Runtime) SetFaultHandler(fh FaultHandler) { rt.faultHandler = fh }

// emit publishes an event when a bus is attached, counting it either way.
func (rt *Runtime) emit(topic event.Topic, payload any) {
	rt.coreEvents.With(string(topic)).Inc()
	if rt.bus != nil {
		rt.bus.Emit(topic, payload)
	}
}

// RegisterClass registers an application class and synthesizes its
// swap-cluster-proxy class (the obicomp step). Middleware classes must not be
// registered this way.
func (rt *Runtime) RegisterClass(c *heap.Class) error {
	if c == nil {
		return errors.New("core: RegisterClass: nil class")
	}
	if c.Special != heap.SpecialNone {
		return fmt.Errorf("core: RegisterClass: %s is a middleware class", c.Name)
	}
	if err := rt.reg.Register(c); err != nil {
		return err
	}
	rt.proxyClasses[c.Name] = buildProxyClass(c)
	if p, ok := c.Ops().(wire.ClassCodecProvider); ok {
		if cc := p.WireCodec(); cc != nil {
			rt.classCodecs.Bind(cc)
		}
	}
	return nil
}

// MustRegisterClass is RegisterClass that panics on error.
func (rt *Runtime) MustRegisterClass(c *heap.Class) *heap.Class {
	if err := rt.RegisterClass(c); err != nil {
		panic(err)
	}
	return c
}

// allocApp allocates an application object, invoking the evictor once on
// memory pressure. Evictions do not nest: an allocation failing while an
// eviction is already in progress reports ErrOutOfMemory directly rather
// than recursing.
func (rt *Runtime) allocApp(c *heap.Class) (*heap.Object, error) {
	return rt.allocWith(rt.h.New, c)
}

// allocMiddleware allocates a middleware object (proxy, replacement-object)
// with access to the heap's reserve headroom.
func (rt *Runtime) allocMiddleware(c *heap.Class) (*heap.Object, error) {
	return rt.allocWith(rt.h.NewPrivileged, c)
}

func (rt *Runtime) allocWith(allocFn func(*heap.Class) (*heap.Object, error), c *heap.Class) (*heap.Object, error) {
	o, err := allocFn(c)
	if err == nil || !errors.Is(err, heap.ErrOutOfMemory) || rt.evictor == nil ||
		rt.evicting.Load() || rt.mutatingCount.Load() > 0 {
		return o, err
	}
	need := int64(64 + 16*c.NumFields())
	if everr := rt.runEvictor(need); everr != nil {
		return nil, fmt.Errorf("%w (evictor: %v)", err, everr)
	}
	return allocFn(c)
}

// runEvictor invokes the evictor hook under the re-entrancy guard.
func (rt *Runtime) runEvictor(need int64) error {
	if !rt.evicting.CompareAndSwap(false, true) {
		return errors.New("core: eviction already in progress")
	}
	rt.evictStart.Store(rt.obsReg.Clock().Now().UnixNano())
	defer func() {
		rt.evictStart.Store(0)
		rt.evicting.Store(false)
	}()
	rt.logger.Debug("eviction start", "need", need)
	err := rt.evictor(need)
	if err != nil {
		rt.logger.Warn("eviction failed", "need", need, "err", err)
	}
	return err
}

// newTrace mints a device-unique trace ID for one swap operation. IDs are
// deterministic (device name + sequence), so replayed runs produce identical
// flight-recorder dumps.
func (rt *Runtime) newTrace() string {
	return fmt.Sprintf("%s-%08x", rt.name, rt.traceSeq.Add(1))
}

// NewObject allocates an application object and assigns it to a swap-cluster.
// The cluster must have been created with Manager.NewCluster (or be
// RootCluster).
func (rt *Runtime) NewObject(c *heap.Class, cluster ClusterID) (*heap.Object, error) {
	if c.Special != heap.SpecialNone {
		return nil, fmt.Errorf("core: NewObject: %s is a middleware class", c.Name)
	}
	if _, ok := rt.proxyClasses[c.Name]; !ok {
		return nil, fmt.Errorf("core: NewObject: class %s not registered with RegisterClass", c.Name)
	}
	// Allocating into a swapped-out cluster faults it back in first: the new
	// object joins its cluster-mates wherever they are.
	if rt.mgr.IsSwapped(cluster) {
		if _, err := rt.SwapIn(cluster, WithCause(CauseReload)); err != nil {
			return nil, fmt.Errorf("core: NewObject: reload cluster %d: %w", cluster, err)
		}
	}
	o, err := rt.allocApp(c)
	if err != nil {
		return nil, err
	}
	if err := rt.mgr.assign(o.ID(), cluster, c.Name); err != nil {
		_ = rt.h.Remove(o.ID())
		return nil, err
	}
	return o, nil
}

// SetRoot assigns a global variable (swap-cluster-0 state). The value is
// translated into cluster-0 perspective: references to objects of other
// clusters are wrapped in swap-cluster-proxies.
func (rt *Runtime) SetRoot(name string, v heap.Value) error {
	tv, err := rt.translate(v, RootCluster)
	if err != nil {
		return err
	}
	rt.h.SetRoot(name, tv)
	return nil
}

// Root reads a global variable as stored (possibly a proxy reference).
func (rt *Runtime) Root(name string) (heap.Value, bool) {
	return rt.h.Root(name)
}

// Name returns the device's key-namespace name.
func (rt *Runtime) Name() string { return rt.name }

// Replicas returns the runtime's default replication factor K (at least 1).
func (rt *Runtime) Replicas() int {
	if rt.defaultReplicas < 1 {
		return 1
	}
	return rt.defaultReplicas
}

// nextKey builds a storage key for a swap-out, unique across the devices
// sharing a store (device name + cluster + generation).
func (rt *Runtime) nextKey(cluster ClusterID) string {
	return fmt.Sprintf("%s-swapcluster-%d-gen%d", rt.name, cluster, rt.keyseq.Add(1))
}
