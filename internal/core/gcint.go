package core

import (
	"context"

	"objectswap/internal/event"
	"objectswap/internal/heap"
)

// Collect runs a local garbage collection integrated with swapping, per the
// paper's Section 3 "Integration with GC Mechanisms":
//
//   - the reachability of a swap-cluster is considered as a whole: while a
//     swapped cluster's replacement-object is reachable, every outbound proxy
//     it retains stays live, so downstream clusters are conservatively
//     preserved (this falls out of ordinary marking, since the
//     replacement-object holds heap references to those proxies);
//   - when a replacement-object has become unreachable, the whole swapped
//     cluster is dead: the storing device is instructed to drop the XML and
//     the SwappingManager forgets the cluster. No DGC spans the devices — all
//     decisions are local, and the device only ever stores, returns or drops.
//
// In-flight invocation operands (the middleware's stand-in for thread stacks)
// are passed to the collector as extra roots.
//
// The mark-sweep and the swapped-cluster sweep stop the world: every swap
// shard's lock is acquired (in order), so a collection never interleaves with
// the reserve/commit phases of a concurrent swap-out or swap-in on any shard
// (in particular, freshly installed objects cannot lose their nursery grace
// before the inbound proxies that make them reachable are patched).
// Device-drop retries run unlocked — they are IO.
func (rt *Runtime) Collect() heap.CollectStats {
	rt.lockAll()
	st := rt.h.Collect(rt.stack...)
	rt.sweepSwapped()
	rt.unlockAll()
	rt.mgr.compact()
	rt.mgr.retryDrops(rt)
	return st
}

// sweepSwapped drops swapped clusters whose replacement-objects were
// reclaimed. Every replica of a dead cluster is told to discard its copy;
// replicas on unreachable donors go to the deferred-drop queue.
func (rt *Runtime) sweepSwapped() {
	type victim struct {
		id      ClusterID
		devices []string
		key     string
		bytes   int
		// Delta anchoring may retain a second payload (the base) under its
		// own key; a dead cluster's base dies with it.
		baseKey     string
		baseDevices []string
	}
	var victims []victim

	m := rt.mgr
	m.mu.Lock()
	for _, ts := range m.tabs {
		ts.mu.Lock()
		for id, cs := range ts.clusters {
			if !cs.swapped || cs.busy {
				continue // busy: a swap-in holds a pin on the replacement
			}
			if rt.h.Contains(cs.replacement) {
				continue
			}
			v := victim{id: id, devices: append([]string(nil), cs.devices...),
				key: cs.key, bytes: cs.payloadBytes}
			if cs.base.key != "" && cs.base.key != cs.key {
				v.baseKey = cs.base.key
				v.baseDevices = append([]string(nil), cs.base.devices...)
			}
			victims = append(victims, v)
			for oid := range cs.objects {
				delete(m.objects, oid)
			}
			delete(m.inbound, id)
			delete(ts.clusters, id)
		}
		ts.mu.Unlock()
	}
	m.mu.Unlock()

	for _, v := range victims {
		for _, device := range v.devices {
			if err := rt.dropFromDevice(device, v.key); err != nil {
				rt.mgr.deferDrop(device, v.key, v.id)
			}
		}
		for _, device := range v.baseDevices {
			if err := rt.dropFromDevice(device, v.baseKey); err != nil {
				rt.mgr.deferDrop(device, v.baseKey, v.id)
			}
		}
		primary := ""
		if len(v.devices) > 0 {
			primary = v.devices[0]
		}
		rt.emit(event.TopicSwapDrop, SwapEvent{
			Cluster: v.id, Device: primary, Key: v.key, Bytes: v.bytes,
			Replicas: v.devices,
		})
	}
}

// dropFromDevice instructs a device to discard a stored shipment.
func (rt *Runtime) dropFromDevice(device, key string) error {
	if rt.stores == nil {
		return ErrNoStores
	}
	s, err := rt.stores.Lookup(device)
	if err != nil {
		return err
	}
	return s.Drop(context.Background(), key)
}

// deferDrop queues a failed drop for retry on the next collection (the
// device may be temporarily unreachable).
func (m *Manager) deferDrop(device, key string, cluster ClusterID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.pendingDrops = append(m.pendingDrops, dropTicket{device: device, key: key, cluster: cluster})
}

// DefaultDropRetryLimit bounds how many collections may re-attempt one
// deferred device-drop before it is abandoned.
const DefaultDropRetryLimit = 8

// SetDropRetryLimit overrides the per-ticket retry budget (n <= 0 restores
// the default).
func (m *Manager) SetDropRetryLimit(n int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if n <= 0 {
		n = DefaultDropRetryLimit
	}
	m.dropRetryLimit = n
}

// retryDrops re-attempts queued drops. A ticket that keeps failing is not
// retried forever: after the retry budget is spent it is abandoned with a
// swap.drop.abandoned event, so operators learn about the leaked remote
// payload instead of the queue growing without bound.
func (m *Manager) retryDrops(rt *Runtime) {
	m.mu.Lock()
	pending := m.pendingDrops
	m.pendingDrops = nil
	limit := m.dropRetryLimit
	m.mu.Unlock()

	for _, t := range pending {
		if err := rt.dropFromDevice(t.device, t.key); err != nil {
			t.attempts++
			if t.attempts >= limit {
				m.mu.Lock()
				m.abandonedDrops++
				m.mu.Unlock()
				rt.emit(event.TopicDropAbandoned, SwapEvent{
					Cluster: t.cluster, Device: t.device, Key: t.key,
				})
				continue
			}
			m.mu.Lock()
			m.pendingDrops = append(m.pendingDrops, t)
			m.mu.Unlock()
		}
	}
}

// PendingDrops reports how many device-drop instructions await retry.
func (m *Manager) PendingDrops() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.pendingDrops)
}

// AbandonedDrops reports how many deferred drops exhausted their retry
// budget — each one is a payload possibly leaked on a remote device.
func (m *Manager) AbandonedDrops() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.abandonedDrops
}

// compact removes membership records of loaded-cluster objects that the
// collector has reclaimed, so cluster statistics and swap-out payloads track
// the live graph.
func (m *Manager) compact() {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, ts := range m.tabs {
		ts.mu.Lock()
		for _, cs := range ts.clusters {
			if cs.swapped {
				continue // members are away, not dead
			}
			for oid := range cs.objects {
				if !m.rt.h.Contains(oid) {
					delete(cs.objects, oid)
					delete(m.objects, oid)
				}
			}
		}
		ts.mu.Unlock()
	}
}

// enterCrossing is the hot-path combination used by proxy dispatch: it
// resolves the target's cluster, records the crossing, and reports whether
// the cluster is currently swapped out. Only the object index lookup takes
// the manager lock; the statistics land under the affected clusters' table
// shards, so crossings into different shards proceed in parallel.
func (m *Manager) enterCrossing(src ClusterID, ultimate heap.ObjID) (dst ClusterID, swapped bool) {
	m.mu.Lock()
	if info, ok := m.objects[ultimate]; ok {
		dst = info.cluster
	}
	m.mu.Unlock()
	now := m.clock.Add(1)
	unlock := m.lockPair(dst, src)
	if cs, ok := m.tab(dst).clusters[dst]; ok {
		cs.crossings++
		cs.lastAccess = now
		swapped = cs.swapped
	}
	if cs, ok := m.tab(src).clusters[src]; ok {
		cs.lastAccess = now
	}
	unlock()
	// Heat tracking mirrors the recency feed; touches go out after the
	// table locks are released (Touch is leaf-safe, but there is no reason
	// to extend the critical section for it).
	m.rt.noteTouch(dst, true)
	if src != dst {
		m.rt.noteTouch(src, false)
	}
	return dst, swapped
}
