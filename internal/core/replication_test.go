package core

import (
	"bytes"
	"errors"
	"testing"

	"objectswap/internal/event"
	"objectswap/internal/heap"
	"objectswap/internal/store"
)

// replFixture wires a runtime (pinned name, default replication factor 2) to
// three unlimited fault-injectable donors.
func replFixture(t testing.TB, donors int, k int) (*fixture, map[string]*store.Flaky, *event.Bus) {
	t.Helper()
	h := heap.New(0)
	classes := heap.NewRegistry()
	devices := store.NewRegistry(store.SelectMostFree)
	flakies := make(map[string]*store.Flaky, donors)
	for i := 0; i < donors; i++ {
		name := string(rune('a'+i)) + "-donor"
		flakies[name] = store.NewFlaky(store.NewMem(0), 1)
		if err := devices.Add(name, flakies[name]); err != nil {
			t.Fatal(err)
		}
	}
	bus := event.NewBus()
	rt := NewRuntime(h, classes, WithStores(devices), WithBus(bus),
		WithName("repl-core"), WithDefaultReplicas(k))
	f := &fixture{rt: rt, reg: devices, node: newNodeClass()}
	rt.MustRegisterClass(f.node)
	return f, flakies, bus
}

func TestSwapOutRecordsReplicaSet(t *testing.T) {
	f, flakies, _ := replFixture(t, 3, 2)
	_, clusters := f.buildList(t, 20, 10, 8)

	ev, err := f.rt.SwapOut(clusters[1])
	if err != nil {
		t.Fatal(err)
	}
	if len(ev.Replicas) != 2 {
		t.Fatalf("replicas = %v, want 2", ev.Replicas)
	}
	if ev.Device != ev.Replicas[0] {
		t.Fatalf("event device %q is not the primary of %v", ev.Device, ev.Replicas)
	}
	// The identical payload sits on both donors under the same key.
	var payloads [][]byte
	for _, name := range ev.Replicas {
		data, err := flakies[name].Get(ctx, ev.Key)
		if err != nil {
			t.Fatalf("replica %s: %v", name, err)
		}
		payloads = append(payloads, data)
	}
	if !bytes.Equal(payloads[0], payloads[1]) {
		t.Fatal("replicas hold different payloads")
	}
	// The manager's view carries the full set.
	if got := f.rt.ReplicaSet(clusters[1]); len(got) != 2 || got[0] != ev.Replicas[0] {
		t.Fatalf("ReplicaSet = %v", got)
	}
	for _, info := range f.rt.Manager().InfoAll() {
		if info.ID == clusters[1] {
			if len(info.Devices) != 2 || info.Device != info.Devices[0] {
				t.Fatalf("info = %+v", info)
			}
		}
	}
}

func TestSwapInFallsThroughDeadReplica(t *testing.T) {
	f, flakies, bus := replFixture(t, 3, 2)
	_, clusters := f.buildList(t, 20, 10, 8)
	want := f.snapshotTags(t)

	ev, err := f.rt.SwapOut(clusters[1])
	if err != nil {
		t.Fatal(err)
	}
	f.rt.Collect()

	var readRepairs []SwapEvent
	bus.Subscribe(event.TopicReadRepair, func(e event.Event) {
		if se, ok := e.Payload.(SwapEvent); ok {
			readRepairs = append(readRepairs, se)
		}
	})

	// The primary replica dies: swap-in must fall through to the survivor
	// and signal the repair loop.
	flakies[ev.Replicas[0]].FailNext(store.OpGet, -1)
	inEv, err := f.rt.SwapIn(clusters[1])
	if err != nil {
		t.Fatalf("swap-in past dead primary: %v", err)
	}
	if len(inEv.Attempted) != 1 || inEv.Attempted[0] != ev.Replicas[0] {
		t.Fatalf("attempted = %v, want [%s]", inEv.Attempted, ev.Replicas[0])
	}
	if len(readRepairs) != 1 || readRepairs[0].Cluster != clusters[1] {
		t.Fatalf("read-repair events = %+v", readRepairs)
	}
	got := f.snapshotTags(t)
	if len(got) != len(want) {
		t.Fatalf("recovered %d tags, want %d", len(got), len(want))
	}
	checkClean(t, f.rt)
}

func TestSwapInFailsWhenAllReplicasDead(t *testing.T) {
	f, flakies, _ := replFixture(t, 2, 2)
	_, clusters := f.buildList(t, 20, 10, 8)
	ev, err := f.rt.SwapOut(clusters[1])
	if err != nil {
		t.Fatal(err)
	}
	f.rt.Collect()

	for _, name := range ev.Replicas {
		flakies[name].FailNext(store.OpGet, -1)
	}
	if _, err := f.rt.SwapIn(clusters[1]); err == nil {
		t.Fatal("swap-in with every replica dead succeeded")
	}
	if !f.rt.Manager().IsSwapped(clusters[1]) {
		t.Fatal("failed swap-in cleared the swapped state")
	}
	// Both donors answer again: the cluster is recoverable.
	for _, name := range ev.Replicas {
		flakies[name].FailNext(store.OpGet, 0)
	}
	if _, err := f.rt.SwapIn(clusters[1]); err != nil {
		t.Fatal(err)
	}
	checkClean(t, f.rt)
}

func TestReloadDropsEveryReplica(t *testing.T) {
	f, flakies, _ := replFixture(t, 3, 2)
	_, clusters := f.buildList(t, 20, 10, 8)
	ev, err := f.rt.SwapOut(clusters[1])
	if err != nil {
		t.Fatal(err)
	}
	f.rt.Collect()
	if _, err := f.rt.SwapIn(clusters[1]); err != nil {
		t.Fatal(err)
	}
	for name, fl := range flakies {
		if keys, _ := fl.Keys(ctx); len(keys) != 0 {
			t.Fatalf("stale copy left on %s after reload: %v (replicas were %v)",
				name, keys, ev.Replicas)
		}
	}
}

func TestUnderReplicatedAndRepair(t *testing.T) {
	f, _, _ := replFixture(t, 3, 2)
	_, clusters := f.buildList(t, 20, 10, 8)
	ev, err := f.rt.SwapOut(clusters[1])
	if err != nil {
		t.Fatal(err)
	}
	f.rt.Collect()

	if under := f.rt.UnderReplicated(0); len(under) != 0 {
		t.Fatalf("healthy cluster reported under-replicated: %v", under)
	}

	// One donor disappears: the cluster is under-replicated; repair re-ships
	// to the remaining fresh donor and prunes the dead replica.
	lost := ev.Replicas[0]
	f.reg.Remove(lost)
	under := f.rt.UnderReplicated(0)
	if len(under) != 1 || under[0] != clusters[1] {
		t.Fatalf("under-replicated = %v, want [%d]", under, clusters[1])
	}

	rev, err := f.rt.RepairCluster(ctx, clusters[1], 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rev.Replicas) != 2 {
		t.Fatalf("repaired set = %v", rev.Replicas)
	}
	for _, name := range rev.Replicas {
		if name == lost {
			t.Fatalf("dead donor %s still in repaired set %v", lost, rev.Replicas)
		}
	}
	if len(rev.Attempted) != 1 || rev.Attempted[0] != lost {
		t.Fatalf("pruned = %v, want [%s]", rev.Attempted, lost)
	}
	if under := f.rt.UnderReplicated(0); len(under) != 0 {
		t.Fatalf("cluster still under-replicated after repair: %v", under)
	}

	// A second repair has nothing to do.
	if _, err := f.rt.RepairCluster(ctx, clusters[1], 0); !errors.Is(err, ErrNoRepair) {
		t.Fatalf("repair of healthy cluster: %v", err)
	}

	// The cluster reloads intact from the repaired set.
	if _, err := f.rt.SwapIn(clusters[1]); err != nil {
		t.Fatal(err)
	}
	if got := f.snapshotTags(t); len(got) != 20 {
		t.Fatalf("recovered %d tags", len(got))
	}
	checkClean(t, f.rt)
}

func TestRepairWithNoLiveReplica(t *testing.T) {
	f, _, _ := replFixture(t, 2, 2)
	_, clusters := f.buildList(t, 20, 10, 8)
	ev, err := f.rt.SwapOut(clusters[1])
	if err != nil {
		t.Fatal(err)
	}
	f.rt.Collect()
	for _, name := range ev.Replicas {
		f.reg.Remove(name)
	}
	if _, err := f.rt.RepairCluster(ctx, clusters[1], 0); !errors.Is(err, ErrNoLiveReplica) {
		t.Fatalf("err = %v", err)
	}
	// The cluster stays swapped — recoverable when a donor returns.
	if !f.rt.Manager().IsSwapped(clusters[1]) {
		t.Fatal("unrepairable cluster no longer swapped")
	}
}

func TestCheckpointRoundTripsReplicaSet(t *testing.T) {
	f, _, _ := replFixture(t, 3, 2)
	_, clusters := f.buildList(t, 20, 10, 8)
	ev, err := f.rt.SwapOut(clusters[1])
	if err != nil {
		t.Fatal(err)
	}
	f.rt.Collect()

	var buf bytes.Buffer
	if err := f.rt.SaveCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}

	// Restore into a fresh runtime sharing the same donor registry.
	h2 := heap.New(0)
	rt2 := NewRuntime(h2, heap.NewRegistry(), WithStores(f.reg),
		WithName("repl-core"), WithDefaultReplicas(2))
	rt2.MustRegisterClass(newNodeClassClone())
	if err := rt2.LoadCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	got := rt2.ReplicaSet(clusters[1])
	if len(got) != len(ev.Replicas) {
		t.Fatalf("restored replica set = %v, want %v", got, ev.Replicas)
	}
	for i := range got {
		if got[i] != ev.Replicas[i] {
			t.Fatalf("restored replica set = %v, want %v", got, ev.Replicas)
		}
	}
	// The restored runtime faults the cluster in from its replicas.
	if _, err := rt2.SwapIn(clusters[1]); err != nil {
		t.Fatal(err)
	}
	checkClean(t, rt2)
}
