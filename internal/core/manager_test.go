package core

import (
	"errors"
	"testing"

	"objectswap/internal/heap"
	"objectswap/internal/store"
)

func TestVictimStrategyNames(t *testing.T) {
	for _, s := range []VictimStrategy{VictimColdest, VictimLargest, VictimLeastUsed} {
		name := s.String()
		back, err := VictimStrategyFromString(name)
		if err != nil || back != s {
			t.Fatalf("round trip %v -> %q -> %v, %v", s, name, back, err)
		}
	}
	if VictimStrategy(99).String() != "strategy?" {
		t.Error("unknown strategy name")
	}
	if _, err := VictimStrategyFromString("bogus"); err == nil {
		t.Error("bogus strategy accepted")
	}
}

func TestSelectVictimStrategies(t *testing.T) {
	f := newFixture(t, 0)
	mgr := f.rt.Manager()

	// Three clusters of different sizes and touch patterns.
	small := mgr.NewCluster()
	big := mgr.NewCluster()
	busy := mgr.NewCluster()

	mk := func(c ClusterID, n, payload int) []heap.ObjID {
		var ids []heap.ObjID
		for i := 0; i < n; i++ {
			o, err := f.rt.NewObject(f.node, c)
			if err != nil {
				t.Fatal(err)
			}
			o.MustSet("payload", heap.Bytes(make([]byte, payload)))
			if err := f.rt.SetRoot(o.String(), o.RefTo()); err != nil {
				t.Fatal(err)
			}
			ids = append(ids, o.ID())
		}
		return ids
	}
	mk(small, 2, 8)
	mk(big, 2, 4096)
	busyIDs := mk(busy, 2, 8)

	// Make `busy` hot and frequently crossed.
	for i := 0; i < 5; i++ {
		pid, err := f.rt.proxyFor(RootCluster, busyIDs[0])
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.rt.Invoke(heap.Ref(pid), "tag"); err != nil {
			t.Fatal(err)
		}
	}

	if v, ok := mgr.SelectVictim(VictimLargest); !ok || v != big {
		t.Fatalf("largest victim = %v, %v (want %d)", v, ok, big)
	}
	// Coldest: small and big untouched since creation; small was created
	// first → oldest recency.
	if v, ok := mgr.SelectVictim(VictimColdest); !ok || v == busy {
		t.Fatalf("coldest victim = %v, %v (must not be the busy cluster)", v, ok)
	}
	// Least-used: busy has crossings, others none.
	if v, ok := mgr.SelectVictim(VictimLeastUsed); !ok || v == busy {
		t.Fatalf("least-used victim = %v, %v (must not be the busy cluster)", v, ok)
	}

	// Swapped and empty clusters are ineligible.
	if _, err := f.rt.SwapOut(small); err != nil {
		t.Fatal(err)
	}
	if _, err := f.rt.SwapOut(big); err != nil {
		t.Fatal(err)
	}
	if _, err := f.rt.SwapOut(busy); err != nil {
		t.Fatal(err)
	}
	if v, ok := mgr.SelectVictim(VictimColdest); ok {
		t.Fatalf("victim %v selected with everything swapped", v)
	}
}

func TestClustersListing(t *testing.T) {
	f := newFixture(t, 0)
	a := f.rt.Manager().NewCluster()
	b := f.rt.Manager().NewCluster()
	got := f.rt.Manager().Clusters()
	if len(got) != 3 || got[0] != RootCluster || got[1] != a || got[2] != b {
		t.Fatalf("Clusters = %v", got)
	}
}

func TestDerefThroughSwap(t *testing.T) {
	f := newFixture(t, 0)
	ids, clusters := f.buildList(t, 10, 10, 8)
	if _, err := f.rt.SwapOut(clusters[0]); err != nil {
		t.Fatal(err)
	}
	f.rt.Collect()
	// Deref on the proxy faults the cluster in and returns the real object.
	o, err := f.rt.Deref(f.head(t))
	if err != nil {
		t.Fatal(err)
	}
	if o.ID() != ids[0] {
		t.Fatalf("Deref = @%d, want @%d", o.ID(), ids[0])
	}
	if _, err := f.rt.Deref(heap.Nil()); !errors.Is(err, heap.ErrNilTarget) {
		t.Fatalf("Deref(nil): %v", err)
	}
}

func TestObjProxyLifecycle(t *testing.T) {
	f := newFixture(t, 0)
	// Create a placeholder for a remote object; a second request reuses it.
	p1, err := f.rt.ObjProxyFor(777, "Node")
	if err != nil {
		t.Fatal(err)
	}
	p2, err := f.rt.ObjProxyFor(777, "Node")
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Fatalf("objproxy not unique per remote: @%d vs @%d", p1, p2)
	}
	o, _ := f.rt.Heap().Get(p1)
	if ObjProxyRemote(o) != 777 || ObjProxyClass(o) != "Node" {
		t.Fatalf("objproxy payload: remote=%d class=%q", ObjProxyRemote(o), ObjProxyClass(o))
	}
	if f.rt.Manager().ObjProxyCount() != 1 {
		t.Fatalf("count = %d", f.rt.Manager().ObjProxyCount())
	}
	if _, err := f.rt.ObjProxyFor(heap.NilID, "Node"); err == nil {
		t.Error("nil remote accepted")
	}
	// Unreferenced placeholders are collected and purged from the manager.
	f.rt.Collect()
	if f.rt.Manager().ObjProxyCount() != 0 {
		t.Fatalf("count after GC = %d", f.rt.Manager().ObjProxyCount())
	}
	// Invoking a placeholder without a fault handler fails cleanly.
	p3, _ := f.rt.ObjProxyFor(888, "Node")
	if _, err := f.rt.Invoke(heap.Ref(p3), "tag"); err == nil {
		t.Error("fault without handler succeeded")
	}
	if _, err := f.rt.Field(heap.Ref(p3), "tag"); err == nil {
		t.Error("field fault without handler succeeded")
	}
	if err := f.rt.SetFieldValue(heap.Ref(p3), "tag", heap.Int(1)); err == nil {
		t.Error("set fault without handler succeeded")
	}
}

func TestTranslateListArguments(t *testing.T) {
	// A list argument crossing a boundary gets each contained reference
	// mediated individually.
	f := newFixture(t, 0)
	holder := heap.NewClass("Holder", heap.FieldDef{Name: "items", Kind: heap.KindList})
	holder.AddMethod("keep", func(call *heap.Call) ([]heap.Value, error) {
		if err := call.RT.SetFieldValue(call.Self.RefTo(), "items", call.Arg(0)); err != nil {
			return nil, err
		}
		return nil, nil
	})
	holder.AddMethod("items", func(call *heap.Call) ([]heap.Value, error) {
		v, _ := call.Self.FieldByName("items")
		return []heap.Value{v}, nil
	})
	f.rt.MustRegisterClass(holder)

	c1, c2 := f.rt.Manager().NewCluster(), f.rt.Manager().NewCluster()
	h1, _ := f.rt.NewObject(holder, c1)
	n1, _ := f.rt.NewObject(f.node, c2)
	n2, _ := f.rt.NewObject(f.node, c1)
	_ = f.rt.SetRoot("h", h1.RefTo())

	// Call through a proxy (root → c1) passing a list mixing both clusters.
	root, _ := f.rt.Root("h")
	if _, err := f.rt.Invoke(root, "keep", heap.List(n1.RefTo(), n2.RefTo(), heap.Int(7))); err != nil {
		t.Fatal(err)
	}
	items, _ := h1.FieldByName("items")
	elems, _ := items.List()
	if len(elems) != 3 {
		t.Fatalf("items = %v", items)
	}
	// n1 is foreign to c1 → proxied; n2 is local → direct.
	if !f.rt.IsProxyRef(elems[0]) {
		t.Fatalf("foreign list element not mediated: %v", elems[0])
	}
	if elems[1].MustRef() != n2.ID() {
		t.Fatalf("local list element not direct: %v", elems[1])
	}
	if elems[2].MustInt() != 7 {
		t.Fatalf("scalar list element mangled: %v", elems[2])
	}
	checkClean(t, f.rt)
}

func TestRuntimeAccessors(t *testing.T) {
	f := newFixture(t, 0)
	if f.rt.Registry() == nil || f.rt.Heap() == nil || f.rt.Manager() == nil {
		t.Fatal("nil accessor")
	}
	if f.rt.Bus() != nil {
		t.Fatal("bus should be nil when not configured")
	}
}

func TestRuntimeOptions(t *testing.T) {
	devices := store.NewRegistry(store.SelectMostFree)
	mem := store.NewMem(0)
	_ = devices.Add("d", mem)
	rt := NewRuntime(heap.New(0), heap.NewRegistry(),
		WithStores(devices), WithKeepOnReload(), WithName("my-pda"))
	node := newNodeClass()
	rt.MustRegisterClass(node)
	if rt.Name() != "my-pda" {
		t.Fatalf("Name = %q", rt.Name())
	}
	// WithName("") keeps the process-unique default.
	rt2 := NewRuntime(heap.New(0), heap.NewRegistry(), WithName(""))
	if rt2.Name() == "" {
		t.Fatal("empty default name")
	}

	// KeepOnReload: the device copy survives a swap-in.
	c := rt.Manager().NewCluster()
	o, err := rt.NewObject(node, c)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.SetRoot("x", o.RefTo()); err != nil {
		t.Fatal(err)
	}
	ev, err := rt.SwapOut(c)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.SwapIn(c); err != nil {
		t.Fatal(err)
	}
	if _, err := mem.Get(ctx, ev.Key); err != nil {
		t.Fatalf("KeepOnReload copy dropped: %v", err)
	}

	// ProxyTarget helper.
	pid, err := rt.proxyFor(RootCluster, o.ID())
	if err != nil {
		t.Fatal(err)
	}
	po, _ := rt.Heap().Get(pid)
	if target, ok := ProxyTarget(po); !ok || target != o.ID() {
		t.Fatalf("ProxyTarget = %v, %v", target, ok)
	}
	if _, ok := ProxyTarget(o); ok {
		t.Fatal("ProxyTarget on app object")
	}
	if _, ok := ProxyTarget(nil); ok {
		t.Fatal("ProxyTarget on nil")
	}

	// Evictor(strategy) hook.
	rt.SetEvictor(rt.Evictor(VictimLeastUsed))
	if err := rt.EvictBy(VictimLeastUsed, 1); err != nil {
		t.Fatalf("EvictBy: %v", err)
	}
}
