package core

import (
	"errors"
	"sync"
	"testing"

	"objectswap/internal/heap"
)

// The parallel eviction pipeline: SwapOutMany's bounded worker pool,
// EvictWith's parallel mode, and the busy reservation that keeps concurrent
// swaps of the same cluster from interleaving.

func TestSwapOutManyDistinctClusters(t *testing.T) {
	f := newFixture(t, 0)
	_, clusters := f.buildList(t, 60, 10, 32)
	want := f.snapshotTags(t)

	evs, err := f.rt.SwapOutMany(clusters, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != len(clusters) {
		t.Fatalf("shipped %d clusters, want %d", len(evs), len(clusters))
	}
	// Events come back in input order, each covering its whole cluster.
	for i, ev := range evs {
		if ev.Cluster != clusters[i] {
			t.Fatalf("event %d for cluster %d, want %d", i, ev.Cluster, clusters[i])
		}
		if ev.Objects != 10 || ev.Bytes <= 0 {
			t.Fatalf("event %d = %+v", i, ev)
		}
	}
	for _, id := range clusters {
		if !f.rt.Manager().IsSwapped(id) {
			t.Fatalf("cluster %d not swapped", id)
		}
	}
	f.rt.Collect()

	// Traversal faults everything back; the graph is intact.
	got := f.snapshotTags(t)
	if len(got) != len(want) {
		t.Fatalf("list length after reload = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("tag[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestSwapOutManySkipsIneligible(t *testing.T) {
	f := newFixture(t, 0)
	_, clusters := f.buildList(t, 30, 10, 16)

	if _, err := f.rt.SwapOut(clusters[0]); err != nil {
		t.Fatal(err)
	}
	empty := f.rt.Manager().NewCluster()

	// Already-swapped and empty victims are skipped, not errors; the one
	// eligible cluster still ships.
	evs, err := f.rt.SwapOutMany([]ClusterID{clusters[0], empty, clusters[2]}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 1 || evs[0].Cluster != clusters[2] {
		t.Fatalf("events = %+v, want one for cluster %d", evs, clusters[2])
	}
}

func TestBusyClusterRefusesTransitions(t *testing.T) {
	f := newFixture(t, 0)
	ids, clusters := f.buildList(t, 30, 10, 16)
	busy := clusters[1]

	// Reserve the cluster as a concurrent swap would.
	f.rt.setBusy(busy, true)

	if _, err := f.rt.SwapOut(busy); !errors.Is(err, ErrClusterBusy) {
		t.Fatalf("SwapOut on busy cluster: %v, want ErrClusterBusy", err)
	}
	if _, err := f.rt.SwapIn(busy); !errors.Is(err, ErrClusterBusy) {
		t.Fatalf("SwapIn on busy cluster: %v, want ErrClusterBusy", err)
	}
	if err := f.rt.MergeClusters(clusters[0], busy); !errors.Is(err, ErrClusterBusy) {
		t.Fatalf("MergeClusters with busy src: %v, want ErrClusterBusy", err)
	}
	if err := f.rt.MergeClusters(busy, clusters[0]); !errors.Is(err, ErrClusterBusy) {
		t.Fatalf("MergeClusters with busy dst: %v, want ErrClusterBusy", err)
	}
	if _, err := f.rt.SplitCluster(busy, []heap.ObjID{ids[10]}); !errors.Is(err, ErrClusterBusy) {
		t.Fatalf("SplitCluster on busy cluster: %v, want ErrClusterBusy", err)
	}
	for _, v := range f.rt.Manager().SelectVictims(VictimColdest) {
		if v == busy {
			t.Fatal("victim selection offered a busy cluster")
		}
	}

	// Releasing the reservation restores normal operation.
	f.rt.setBusy(busy, false)
	if _, err := f.rt.SwapOut(busy); err != nil {
		t.Fatalf("SwapOut after release: %v", err)
	}
}

func TestEvictWithParallelFreesMemory(t *testing.T) {
	for _, parallelism := range []int{1, 3} {
		f := newFixture(t, 0)
		f.buildList(t, 80, 10, 256)
		before := f.rt.Heap().Used()

		need := before / 2
		if err := f.rt.EvictWith(EvictOptions{Parallelism: parallelism}, need); err != nil {
			t.Fatalf("parallelism %d: %v", parallelism, err)
		}
		if used := f.rt.Heap().Used(); used > before-need {
			t.Fatalf("parallelism %d: used = %d, want <= %d", parallelism, used, before-need)
		}
	}
}

// TestConcurrentSwapDistinctClusters drives swap-out, collection and swap-in
// of distinct clusters from concurrent goroutines — the pipeline the paper's
// eviction overlap rests on. Run under -race this asserts the phase locking:
// snapshot/commit serialize on the swap lock while encode and shipment
// overlap freely.
func TestConcurrentSwapDistinctClusters(t *testing.T) {
	f := newFixture(t, 0)
	_, clusters := f.buildList(t, 60, 10, 64)
	want := f.snapshotTags(t)

	var wg sync.WaitGroup
	for _, id := range clusters {
		wg.Add(1)
		go func(id ClusterID) {
			defer wg.Done()
			if _, err := f.rt.SwapOut(id); err != nil && !skippableVictimErr(err) {
				t.Errorf("SwapOut(%d): %v", id, err)
			}
		}(id)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		f.rt.Collect()
	}()
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	f.rt.Collect()

	for _, id := range clusters {
		wg.Add(1)
		go func(id ClusterID) {
			defer wg.Done()
			if _, err := f.rt.SwapIn(id); err != nil && !errors.Is(err, ErrClusterLoaded) &&
				!errors.Is(err, ErrClusterBusy) {
				t.Errorf("SwapIn(%d): %v", id, err)
			}
		}(id)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	got := f.snapshotTags(t)
	if len(got) != len(want) {
		t.Fatalf("list length = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("tag[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

// TestConcurrentSameClusterSwaps hammers one cluster from several goroutines;
// the busy reservation must ensure exactly one swap-out wins per round trip
// and the graph stays consistent.
func TestConcurrentSameClusterSwaps(t *testing.T) {
	f := newFixture(t, 0)
	_, clusters := f.buildList(t, 20, 10, 32)
	target := clusters[1]
	want := f.snapshotTags(t)

	for round := 0; round < 4; round++ {
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if _, err := f.rt.SwapOut(target); err != nil && !skippableVictimErr(err) {
					t.Errorf("SwapOut: %v", err)
				}
			}()
		}
		wg.Wait()
		if t.Failed() {
			t.FailNow()
		}
		if !f.rt.Manager().IsSwapped(target) {
			t.Fatalf("round %d: cluster not swapped", round)
		}
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if _, err := f.rt.SwapIn(target); err != nil && !errors.Is(err, ErrClusterLoaded) &&
					!errors.Is(err, ErrClusterBusy) {
					t.Errorf("SwapIn: %v", err)
				}
			}()
		}
		wg.Wait()
		if t.Failed() {
			t.FailNow()
		}
	}
	got := f.snapshotTags(t)
	if len(got) != len(want) {
		t.Fatalf("list length = %d, want %d", len(got), len(want))
	}
}
