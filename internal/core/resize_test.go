package core

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"objectswap/internal/heap"
	"objectswap/internal/store"
)

func TestMergeClustersDismantlesBoundary(t *testing.T) {
	f := newFixture(t, 0)
	ids, clusters := f.buildList(t, 20, 10, 8)
	want := f.snapshotTags(t)

	before := f.rt.Manager().ProxyCount() // 1 internal boundary + root
	if err := f.rt.MergeClusters(clusters[0], clusters[1]); err != nil {
		t.Fatal(err)
	}
	checkClean(t, f.rt)

	// The node-9 → node-10 edge is direct now.
	n9, _ := f.rt.Heap().Get(ids[9])
	nv, _ := n9.FieldByName("next")
	if nv.MustRef() != ids[10] {
		t.Fatalf("boundary edge not dismantled: %v", nv)
	}
	// The boundary proxy is garbage after a collection.
	f.rt.Collect()
	if got := f.rt.Manager().ProxyCount(); got >= before {
		t.Fatalf("proxy count %d not reduced from %d", got, before)
	}
	// Graph unchanged from the application's view.
	got := f.snapshotTags(t)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("tag[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	// src cluster is gone.
	if _, err := f.rt.Manager().Info(clusters[1]); !errors.Is(err, ErrUnknownCluster) {
		t.Fatalf("merged cluster still tracked: %v", err)
	}
	// All 20 objects in dst.
	info, _ := f.rt.Manager().Info(clusters[0])
	if info.Objects != 20 {
		t.Fatalf("dst holds %d objects", info.Objects)
	}
}

func TestMergeValidation(t *testing.T) {
	f := newFixture(t, 0)
	_, clusters := f.buildList(t, 20, 10, 8)
	if err := f.rt.MergeClusters(clusters[0], RootCluster); !errors.Is(err, ErrRootCluster) {
		t.Errorf("merge root as src: %v", err)
	}
	if err := f.rt.MergeClusters(clusters[0], clusters[0]); err == nil {
		t.Error("self-merge accepted")
	}
	if err := f.rt.MergeClusters(clusters[0], ClusterID(99)); !errors.Is(err, ErrUnknownCluster) {
		t.Errorf("merge unknown: %v", err)
	}
	if _, err := f.rt.SwapOut(clusters[1]); err != nil {
		t.Fatal(err)
	}
	if err := f.rt.MergeClusters(clusters[0], clusters[1]); !errors.Is(err, ErrClusterSwapped) {
		t.Errorf("merge swapped: %v", err)
	}
}

func TestMergeIntoRootCluster(t *testing.T) {
	// Demote a cluster into the global space: its objects become
	// swap-cluster-0 members and root references to them are dismantled.
	f := newFixture(t, 0)
	ids, clusters := f.buildList(t, 10, 10, 8)
	if !f.rt.IsProxyRef(f.head(t)) {
		t.Fatal("precondition: head should be proxied")
	}
	if err := f.rt.MergeClusters(RootCluster, clusters[0]); err != nil {
		t.Fatal(err)
	}
	checkClean(t, f.rt)
	head := f.head(t)
	if f.rt.IsProxyRef(head) {
		t.Fatal("root still proxied after demotion into cluster 0")
	}
	if head.MustRef() != ids[0] {
		t.Fatalf("head = %v", head)
	}
}

func TestSplitClusterMediatesNewBoundary(t *testing.T) {
	f := newFixture(t, 0)
	ids, clusters := f.buildList(t, 10, 10, 8)
	want := f.snapshotTags(t)

	fresh, err := f.rt.SplitCluster(clusters[0], ids[5:])
	if err != nil {
		t.Fatal(err)
	}
	checkClean(t, f.rt)

	// The 4→5 edge now crosses a boundary: proxied.
	n4, _ := f.rt.Heap().Get(ids[4])
	nv, _ := n4.FieldByName("next")
	if !f.rt.IsProxyRef(nv) {
		t.Fatalf("new boundary edge not mediated: %v", nv)
	}
	// Both halves report the right sizes.
	a, _ := f.rt.Manager().Info(clusters[0])
	b, _ := f.rt.Manager().Info(fresh)
	if a.Objects != 5 || b.Objects != 5 {
		t.Fatalf("split sizes = %d/%d", a.Objects, b.Objects)
	}
	// Graph unchanged for the application.
	got := f.snapshotTags(t)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("tag[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	// The new half is independently swappable.
	if _, err := f.rt.SwapOut(fresh); err != nil {
		t.Fatal(err)
	}
	f.rt.Collect()
	got = f.snapshotTags(t)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("after swap: tag[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestSplitValidation(t *testing.T) {
	f := newFixture(t, 0)
	ids, clusters := f.buildList(t, 10, 10, 8)
	if _, err := f.rt.SplitCluster(RootCluster, ids[:2]); !errors.Is(err, ErrRootCluster) {
		t.Errorf("split root: %v", err)
	}
	if _, err := f.rt.SplitCluster(clusters[0], nil); !errors.Is(err, ErrClusterEmpty) {
		t.Errorf("empty split: %v", err)
	}
	if _, err := f.rt.SplitCluster(clusters[0], []heap.ObjID{999999}); err == nil {
		t.Error("split of non-member accepted")
	}
	if _, err := f.rt.SwapOut(clusters[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := f.rt.SplitCluster(clusters[0], ids[:2]); !errors.Is(err, ErrClusterSwapped) {
		t.Errorf("split swapped: %v", err)
	}
}

func TestMergeThenSwapRoundTrip(t *testing.T) {
	// Merged clusters must ship and reload as one macro-object.
	f := newFixture(t, 0)
	_, clusters := f.buildList(t, 30, 10, 8)
	want := f.snapshotTags(t)
	if err := f.rt.MergeClusters(clusters[1], clusters[2]); err != nil {
		t.Fatal(err)
	}
	ev, err := f.rt.SwapOut(clusters[1])
	if err != nil {
		t.Fatal(err)
	}
	if ev.Objects != 20 {
		t.Fatalf("merged shipment = %d objects", ev.Objects)
	}
	f.rt.Collect()
	got := f.snapshotTags(t)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("tag[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

// Property: random merge/split sequences preserve the application view and
// every middleware invariant.
func TestPropResizePreservesGraph(t *testing.T) {
	fn := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		f := newFixture(t, 0)
		n := 20 + r.Intn(30)
		ids, _ := f.buildList(t, n, 5+r.Intn(5), 8)
		want := f.snapshotTags(t)

		for step := 0; step < 10; step++ {
			// Collect current non-root, loaded clusters.
			var loaded []ClusterID
			for _, info := range f.rt.Manager().InfoAll() {
				if info.ID != RootCluster && !info.Swapped && info.Objects > 0 {
					loaded = append(loaded, info.ID)
				}
			}
			if len(loaded) == 0 {
				break
			}
			if r.Intn(2) == 0 && len(loaded) >= 2 {
				a, b := loaded[r.Intn(len(loaded))], loaded[r.Intn(len(loaded))]
				if a == b {
					continue
				}
				if err := f.rt.MergeClusters(a, b); err != nil {
					t.Logf("seed %d: merge: %v", seed, err)
					return false
				}
			} else {
				c := loaded[r.Intn(len(loaded))]
				info, _ := f.rt.Manager().Info(c)
				if info.Objects < 2 {
					continue
				}
				// Split off a random strict subset of members.
				var members []heap.ObjID
				for _, oid := range ids {
					if f.rt.Manager().ClusterOf(oid) == c {
						members = append(members, oid)
					}
				}
				k := 1 + r.Intn(len(members)-1)
				if _, err := f.rt.SplitCluster(c, members[:k]); err != nil {
					t.Logf("seed %d: split: %v", seed, err)
					return false
				}
			}
			if errs := f.rt.Manager().CheckInvariants(); len(errs) > 0 {
				for _, e := range errs {
					t.Logf("seed %d step %d: %v", seed, step, e)
				}
				return false
			}
		}
		got := f.snapshotTags(t)
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestRetargetAfterDeathDoesNotResurrect(t *testing.T) {
	// Regression: retargeting a proxy whose finalizer already purged it must
	// not re-enter registry records under a zero-valued key.
	f := newFixture(t, 0)
	ids, _ := f.buildList(t, 20, 10, 8)
	pid, err := f.rt.proxyFor(RootCluster, ids[15])
	if err != nil {
		t.Fatal(err)
	}
	before := f.rt.Manager().ProxyCount()
	f.rt.Collect() // unreferenced: collected, finalizer purges
	if got := f.rt.Manager().ProxyCount(); got >= before {
		t.Fatalf("proxy not purged (%d -> %d)", before, got)
	}
	f.rt.Manager().retargetProxy(pid, ids[3], f.rt.Manager().ClusterOf(ids[3]))
	checkClean(t, f.rt)
	if got := f.rt.Manager().ProxyCount(); got >= before {
		t.Fatalf("dead proxy resurrected (%d)", got)
	}
}

func TestCursorSurvivesReloadEvictionStorm(t *testing.T) {
	// Regression: a host-held cursor must survive the collections its own
	// Field reloads trigger (nursery grace is finite; frame protection and
	// touch-on-use carry it through).
	node := newNodeClass()
	h := heap.New(7 << 10)
	h.SetNurseryGrace(2)
	devices := store.NewRegistry(store.SelectMostFree)
	_ = devices.Add("d", store.NewMem(0))
	rt := NewRuntime(h, heap.NewRegistry(), WithStores(devices))
	rt.MustRegisterClass(node)
	rt.SetEvictor(rt.EvictColdest)

	// Three chains, each its own cluster; the heap holds roughly one.
	const chains, per = 3, 20
	for c := 0; c < chains; c++ {
		cluster := rt.Manager().NewCluster()
		var prev *heap.Object
		for i := 0; i < per; i++ {
			o, err := rt.NewObject(node, cluster)
			if err != nil {
				t.Fatalf("chain %d obj %d: %v", c, i, err)
			}
			o.MustSet("payload", heap.Bytes(make([]byte, 64))).
				MustSet("tag", heap.Int(int64(c*100+i)))
			if prev == nil {
				if err := rt.SetRoot(fmt.Sprintf("c%d", c), o.RefTo()); err != nil {
					t.Fatal(err)
				}
			} else if err := rt.SetFieldValue(prev.RefTo(), "next", o.RefTo()); err != nil {
				t.Fatal(err)
			}
			prev = o
		}
	}
	// Walk all chains with cursors; every boundary reload evicts others.
	for round := 0; round < 3; round++ {
		for c := 0; c < chains; c++ {
			root := mustRoot(t, rt, fmt.Sprintf("c%d", c))
			cur, err := rt.AssignedCursor(root)
			if err != nil {
				t.Fatal(err)
			}
			count := 0
			for !cur.IsNil() {
				tag, err := rt.Field(cur, "tag")
				if err != nil {
					t.Fatalf("round %d chain %d node %d: %v", round, c, count, err)
				}
				if tag.MustInt() != int64(c*100+count) {
					t.Fatalf("round %d chain %d node %d: tag %v", round, c, count, tag)
				}
				cur, err = rt.Field(cur, "next")
				if err != nil {
					t.Fatalf("round %d chain %d node %d advance: %v", round, c, count, err)
				}
				count++
			}
			if count != per {
				t.Fatalf("round %d chain %d: %d nodes", round, c, count)
			}
		}
	}
	checkClean(t, rt)
}
