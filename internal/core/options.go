package core

import (
	"context"
	"time"
)

// SwapOption tunes one SwapOut / SwapIn call. The zero set of options keeps
// the historical behavior: no deadline, registry-selected device, failover
// across devices enabled.
type SwapOption func(*swapOpts)

type swapOpts struct {
	ctx        context.Context
	deadline   time.Time
	device     string
	noFailover bool
	replicas   int
	cause      string
}

// Fault causes: why a swap happened. They label SwapEvent.Cause and the
// objectswap_fault_seconds{cause} histograms. When no WithCause is given,
// the runtime attributes the swap to the evictor while an eviction pass is
// in flight and to an explicit API call otherwise.
const (
	// CauseExplicit: a direct SwapOut/SwapIn/Evict API call.
	CauseExplicit = "explicit"
	// CauseEvictor: the allocation-pressure evictor freeing memory.
	CauseEvictor = "evictor-pressure"
	// CausePolicy: a policy-engine action fired by a rule.
	CausePolicy = "policy-action"
	// CauseReload: a demand fault — a dispatch touched a swapped cluster
	// and the runtime reloaded it implicitly.
	CauseReload = "reload"
	// CauseRepair: replica repair re-shipping a degraded cluster.
	CauseRepair = "repair"
	// CausePrefetch: the fault engine speculatively reloading a graph
	// neighbor of a demand-faulted cluster.
	CausePrefetch = "prefetch"
)

// WithCause attributes the swap to a cause (one of the Cause* constants) for
// fault-attribution telemetry. Internal callers tag implicit reloads, policy
// actions and repairs; external callers rarely need it.
func WithCause(cause string) SwapOption {
	return func(o *swapOpts) {
		if cause != "" {
			o.cause = cause
		}
	}
}

// WithContext runs the swap under ctx: device operations observe its
// deadline and cancellation.
func WithContext(ctx context.Context) SwapOption {
	return func(o *swapOpts) {
		if ctx != nil {
			o.ctx = ctx
		}
	}
}

// WithDeadline bounds the whole swap operation: every device transfer it
// issues fails once t passes, and the middleware state is left consistent
// (a timed-out swap-out stays resident, a timed-out swap-in stays swapped).
func WithDeadline(t time.Time) SwapOption {
	return func(o *swapOpts) { o.deadline = t }
}

// WithTimeout is WithDeadline relative to now.
func WithTimeout(d time.Duration) SwapOption {
	return func(o *swapOpts) { o.deadline = time.Now().Add(d) }
}

// WithDevice pins the swap-out destination to a named device instead of the
// registry's selection. A pinned shipment does not fail over.
func WithDevice(name string) SwapOption {
	return func(o *swapOpts) { o.device = name }
}

// WithNoFailover disables multi-device failover: the swap-out fails if the
// selected device rejects the shipment, as in the pre-resilience API. Under
// replication it confines the shipment to the top-K ranked donors (a
// rejection is not replaced by the next candidate).
func WithNoFailover() SwapOption {
	return func(o *swapOpts) { o.noFailover = true }
}

// WithReplicas overrides the replication factor K for one swap-out: the
// payload ships to the top K rendezvous-ranked donors and commits once a
// majority accepted it. k < 1 falls back to the runtime default. Ignored by
// pinned (WithDevice) shipments, which always write exactly one copy.
func WithReplicas(k int) SwapOption {
	return func(o *swapOpts) {
		if k > 0 {
			o.replicas = k
		}
	}
}

// resolve folds the options into a ready context (plus cancel) and the
// shipment constraints.
func resolveSwapOpts(opts []SwapOption) (swapOpts, context.Context, context.CancelFunc) {
	o := swapOpts{ctx: context.Background()}
	for _, opt := range opts {
		opt(&o)
	}
	if !o.deadline.IsZero() {
		ctx, cancel := context.WithDeadline(o.ctx, o.deadline)
		return o, ctx, cancel
	}
	return o, o.ctx, func() {}
}
