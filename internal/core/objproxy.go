package core

import (
	"fmt"

	"objectswap/internal/heap"
)

// Object-fault proxies are the incremental-replication placeholders of
// OBIWAN: an object that has not yet been replicated to the device is
// represented by a proxy transparent to the application; invoking it
// triggers replication of a whole cluster of objects (handled by the
// FaultHandler the replication module installs on the Runtime).
//
// Unlike swap-cluster-proxies — which are permanent — object-fault proxies
// are *replaced* after replication: the replication module sweeps the graph
// substituting them with direct references or swap-cluster-proxies, so the
// application thereafter runs at full speed.
//
// An object-fault proxy may also survive a swap-out: a partially replicated
// cluster can be swapped with its un-replicated edges intact. Those edges are
// wrapped as remote references ("rref") carrying the target's class, and
// swap-in re-synthesizes the proxies.

// Hidden fields of the generic object-fault proxy class.
const (
	fldRemote   = "$remote" // the object's identity on its home node
	fldRemClass = "$rclass" // the remote object's class name
)

// objProxyClassName is the single generic class used for object-fault
// proxies (dispatch never consults its method table, so one class serves all
// application classes).
const objProxyClassName = "$ObjProxy"

// buildObjProxyClass synthesizes the object-fault proxy class.
func buildObjProxyClass() *heap.Class {
	c := heap.NewClass(objProxyClassName,
		heap.FieldDef{Name: fldRemote, Kind: heap.KindInt},
		heap.FieldDef{Name: fldRemClass, Kind: heap.KindString},
	)
	c.Special = heap.SpecialObjProxy
	return c
}

// isObjProxy reports whether the object is an object-fault proxy.
func isObjProxy(o *heap.Object) bool { return o.Class().Special == heap.SpecialObjProxy }

// ObjProxyRemote reads the remote identity an object-fault proxy stands for.
func ObjProxyRemote(o *heap.Object) heap.ObjID {
	v, _ := o.FieldByName(fldRemote)
	i, _ := v.Int()
	return heap.ObjID(i)
}

// ObjProxyClass reads the remote class name an object-fault proxy stands for.
func ObjProxyClass(o *heap.Object) string {
	v, _ := o.FieldByName(fldRemClass)
	s, _ := v.Str()
	return s
}

// ObjProxyFor returns (creating or reusing) the object-fault proxy standing
// for the remote object remote of class className. At most one live proxy
// exists per remote identity.
func (rt *Runtime) ObjProxyFor(remote heap.ObjID, className string) (heap.ObjID, error) {
	if remote == heap.NilID {
		return heap.NilID, fmt.Errorf("core: ObjProxyFor: nil remote id")
	}
	if pid, ok := rt.mgr.lookupObjProxy(remote); ok {
		if rt.h.Contains(pid) {
			return pid, nil
		}
		rt.mgr.purgeObjProxy(pid)
	}
	p, err := rt.allocMiddleware(rt.objProxyClass)
	if err != nil {
		return heap.NilID, fmt.Errorf("core: allocate object-fault proxy: %w", err)
	}
	if err := p.SetFieldByName(fldRemote, heap.Int(int64(remote))); err != nil {
		return heap.NilID, err
	}
	if err := p.SetFieldByName(fldRemClass, heap.Str(className)); err != nil {
		return heap.NilID, err
	}
	rt.mgr.registerObjProxy(p.ID(), remote)
	rt.h.OnFinalize(p.ID(), rt.mgr.purgeObjProxy)
	return p.ID(), nil
}

// lookupObjProxy finds the live object-fault proxy for a remote identity.
func (m *Manager) lookupObjProxy(remote heap.ObjID) (heap.ObjID, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	pid, ok := m.objProxies[remote]
	return pid, ok
}

// registerObjProxy records an object-fault proxy under its remote identity.
func (m *Manager) registerObjProxy(pid, remote heap.ObjID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.objProxies[remote] = pid
	m.objProxyMeta[pid] = remote
}

// purgeObjProxy is the object-fault proxy finalizer.
func (m *Manager) purgeObjProxy(pid heap.ObjID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	remote, ok := m.objProxyMeta[pid]
	if !ok {
		return
	}
	delete(m.objProxyMeta, pid)
	if cur, live := m.objProxies[remote]; live && cur == pid {
		delete(m.objProxies, remote)
	}
}

// ObjProxyCount reports the number of live object-fault proxies.
func (m *Manager) ObjProxyCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.objProxyMeta)
}
