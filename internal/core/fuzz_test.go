package core

import (
	"bytes"
	"testing"

	"objectswap/internal/heap"
	"objectswap/internal/store"
)

// FuzzLoadCheckpoint hardens checkpoint restoration against arbitrary
// streams (a checkpoint may live on untrusted storage).
func FuzzLoadCheckpoint(f *testing.F) {
	// Seed with a genuine checkpoint.
	{
		devices := store.NewRegistry(store.SelectMostFree)
		_ = devices.Add("d", store.NewMem(0))
		rt := NewRuntime(heap.New(0), heap.NewRegistry(), WithStores(devices))
		node := rt.MustRegisterClass(newNodeClass())
		c := rt.Manager().NewCluster()
		o, err := rt.NewObject(node, c)
		if err != nil {
			f.Fatal(err)
		}
		if err := rt.SetRoot("x", o.RefTo()); err != nil {
			f.Fatal(err)
		}
		var buf bytes.Buffer
		if err := rt.SaveCheckpoint(&buf); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Add([]byte(`<checkpoint version="1" device="d" keyseq="0" maxid="0"></checkpoint>`))
	f.Add([]byte(`<checkpoint version="1" device="d" keyseq="0" maxid="9"><cluster id="1" swapped="true" device="x" key="k"><member id="3" class="Node"/><outbound slot="0" target="3"/></cluster></checkpoint>`))
	f.Add([]byte(`}{`))

	f.Fuzz(func(t *testing.T, data []byte) {
		devices := store.NewRegistry(store.SelectMostFree)
		_ = devices.Add("d", store.NewMem(0))
		rt := NewRuntime(heap.New(0), heap.NewRegistry(), WithStores(devices))
		rt.MustRegisterClass(newNodeClass())
		if err := rt.LoadCheckpoint(bytes.NewReader(data)); err != nil {
			return // rejection is fine; panics and corruption are not
		}
		// Whatever was accepted must leave consistent bookkeeping.
		if errs := rt.Manager().CheckInvariants(); len(errs) > 0 {
			for _, e := range errs {
				t.Log(e)
			}
			t.Fatal("accepted checkpoint violates invariants")
		}
	})
}
