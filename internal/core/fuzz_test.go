package core

import (
	"bytes"
	"math/rand"
	"testing"

	"objectswap/internal/heap"
	"objectswap/internal/store"
)

// FuzzLoadCheckpoint hardens checkpoint restoration against arbitrary
// streams (a checkpoint may live on untrusted storage).
func FuzzLoadCheckpoint(f *testing.F) {
	// Seed with a genuine checkpoint.
	{
		devices := store.NewRegistry(store.SelectMostFree)
		_ = devices.Add("d", store.NewMem(0))
		rt := NewRuntime(heap.New(0), heap.NewRegistry(), WithStores(devices))
		node := rt.MustRegisterClass(newNodeClass())
		c := rt.Manager().NewCluster()
		o, err := rt.NewObject(node, c)
		if err != nil {
			f.Fatal(err)
		}
		if err := rt.SetRoot("x", o.RefTo()); err != nil {
			f.Fatal(err)
		}
		var buf bytes.Buffer
		if err := rt.SaveCheckpoint(&buf); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Add([]byte(`<checkpoint version="1" device="d" keyseq="0" maxid="0"></checkpoint>`))
	f.Add([]byte(`<checkpoint version="1" device="d" keyseq="0" maxid="9"><cluster id="1" swapped="true" device="x" key="k"><member id="3" class="Node"/><outbound slot="0" target="3"/></cluster></checkpoint>`))
	f.Add([]byte(`}{`))

	f.Fuzz(func(t *testing.T, data []byte) {
		devices := store.NewRegistry(store.SelectMostFree)
		_ = devices.Add("d", store.NewMem(0))
		rt := NewRuntime(heap.New(0), heap.NewRegistry(), WithStores(devices))
		rt.MustRegisterClass(newNodeClass())
		if err := rt.LoadCheckpoint(bytes.NewReader(data)); err != nil {
			return // rejection is fine; panics and corruption are not
		}
		// Whatever was accepted must leave consistent bookkeeping.
		if errs := rt.Manager().CheckInvariants(); len(errs) > 0 {
			for _, e := range errs {
				t.Log(e)
			}
			t.Fatal("accepted checkpoint violates invariants")
		}
	})
}

// FuzzCheckpoint proves the save -> restore round trip on randomized object
// graphs, replica sets included: whatever graph shape, clustering, cross-ref
// pattern, replication factor and swapped subset the fuzzer invents, the
// restored runtime must satisfy every manager invariant, carry identical
// swapped flags and replica sets, and fault every swapped cluster back in
// intact. Run long with: go test -fuzz FuzzCheckpoint ./internal/core
func FuzzCheckpoint(f *testing.F) {
	f.Add(int64(1), uint8(12), uint8(4), uint8(2), uint8(0b1010))
	f.Add(int64(7), uint8(30), uint8(5), uint8(3), uint8(0xFF))
	f.Add(int64(42), uint8(3), uint8(1), uint8(1), uint8(0b1))
	f.Add(int64(-9), uint8(40), uint8(8), uint8(2), uint8(0b0110))

	f.Fuzz(func(t *testing.T, seed int64, n, per, k, swapMask uint8) {
		rng := rand.New(rand.NewSource(seed))
		nObj := int(n)%40 + 1
		perCluster := int(per)%8 + 1
		replicas := int(k)%3 + 1

		devices := store.NewRegistry(store.SelectMostFree)
		for _, name := range []string{"fz-a", "fz-b", "fz-c"} {
			if err := devices.Add(name, store.NewMem(0)); err != nil {
				t.Fatal(err)
			}
		}
		rt := NewRuntime(heap.New(0), heap.NewRegistry(), WithStores(devices),
			WithName("fuzz-ckpt"), WithDefaultReplicas(replicas))
		node := rt.MustRegisterClass(newNodeClass())

		// A randomized graph: clusters of random size, random payloads,
		// random (possibly cross-cluster) references mediated by the runtime.
		var clusters []ClusterID
		var objs []*heap.Object
		wantTags := map[heap.ObjID]int64{}
		for i := 0; i < nObj; i++ {
			if i%perCluster == 0 {
				clusters = append(clusters, rt.Manager().NewCluster())
			}
			o, err := rt.NewObject(node, clusters[len(clusters)-1])
			if err != nil {
				t.Fatal(err)
			}
			payload := make([]byte, rng.Intn(32))
			rng.Read(payload)
			o.MustSet("payload", heap.Bytes(payload))
			o.MustSet("tag", heap.Int(int64(i)))
			wantTags[o.ID()] = int64(i)
			objs = append(objs, o)
		}
		for _, o := range objs {
			if rng.Intn(2) == 0 {
				continue
			}
			tgt := objs[rng.Intn(len(objs))]
			if err := rt.SetFieldValue(o.RefTo(), "next", tgt.RefTo()); err != nil {
				t.Fatal(err)
			}
		}
		if err := rt.SetRoot("head", objs[0].RefTo()); err != nil {
			t.Fatal(err)
		}

		// Swap out the mask-selected clusters; each records a replica set.
		for i, c := range clusters {
			if swapMask&(1<<(i%8)) == 0 {
				continue
			}
			if _, err := rt.SwapOut(c); err != nil {
				t.Fatalf("swap-out cluster %d: %v", c, err)
			}
		}

		var buf bytes.Buffer
		if err := rt.SaveCheckpoint(&buf); err != nil {
			t.Fatal(err)
		}

		// Restore into a fresh runtime sharing the donor registry.
		rt2 := NewRuntime(heap.New(0), heap.NewRegistry(), WithStores(devices),
			WithName("fuzz-ckpt"), WithDefaultReplicas(replicas))
		rt2.MustRegisterClass(newNodeClass())
		if err := rt2.LoadCheckpoint(bytes.NewReader(buf.Bytes())); err != nil {
			t.Fatalf("genuine checkpoint rejected: %v", err)
		}
		if errs := rt2.Manager().CheckInvariants(); len(errs) > 0 {
			for _, e := range errs {
				t.Log(e)
			}
			t.Fatal("restored runtime violates invariants")
		}
		for _, c := range clusters {
			if rt.Manager().IsSwapped(c) != rt2.Manager().IsSwapped(c) {
				t.Fatalf("cluster %d swapped flag changed across restore", c)
			}
			a, b := rt.ReplicaSet(c), rt2.ReplicaSet(c)
			if len(a) != len(b) {
				t.Fatalf("cluster %d replica set %v restored as %v", c, a, b)
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("cluster %d replica set %v restored as %v", c, a, b)
				}
			}
		}

		// Every swapped cluster faults back in intact.
		for _, c := range clusters {
			if !rt2.Manager().IsSwapped(c) {
				continue
			}
			if _, err := rt2.SwapIn(c); err != nil {
				t.Fatalf("swap-in restored cluster %d: %v", c, err)
			}
		}
		for id, want := range wantTags {
			o, err := rt2.Heap().Get(id)
			if err != nil {
				t.Fatalf("object %d lost across restore: %v", id, err)
			}
			tag, err := o.FieldByName("tag")
			if err != nil {
				t.Fatal(err)
			}
			if got := tag.MustInt(); got != want {
				t.Fatalf("object %d tag = %d, want %d", id, got, want)
			}
		}
	})
}
