package core

import (
	"context"

	"objectswap/internal/heap"
	"objectswap/internal/placement"
	"objectswap/internal/wire"
)

// Wire-format negotiation. A swap-out no longer assumes the universal XML
// wrapper: the donors' Stats advertisements (collected by the same rendezvous
// ranking probe that weighs their free capacity) are matched against the
// runtime's preference order, and the whole shipment — all K replicas — uses
// the one chosen format, so any surviving replica can serve the fault-in.
// Donors that predate negotiation advertise nothing and are treated as
// XML-only; XML therefore remains the format of last resort that always
// succeeds wherever a pre-negotiation swap-out would have.

// shipPlan is the outcome of the negotiate phase: the wire format to encode
// in, the candidate donors to ship to, and — for a delta re-shipment — the
// dirty subset and removed set against the anchored base.
type shipPlan struct {
	format wire.FormatID
	// delta marks a dirty-only re-shipment against baseKey. changed selects
	// the members to encode; removed lists base members no longer in the
	// cluster. A delta can only land on donors already holding the base.
	delta   bool
	baseKey string
	changed map[heap.ObjID]bool
	removed []heap.ObjID
	// baseSlots is the base shipment's outbound slot table (ultimate targets
	// by slot). A delta's slot table must keep it as a prefix so slot
	// references inside unchanged base objects still resolve.
	baseSlots []heap.ObjID
	// ranked is the candidate list to ship over (nil for pinned shipments).
	ranked []placement.Candidate
	// replicas is the target replica count for this shipment.
	replicas int
}

// negotiate picks the shipment plan for one swap-out: a delta against the
// retained base when one is anchored and cheap enough, a freshly negotiated
// full shipment otherwise.
func (rt *Runtime) negotiate(ctx context.Context, o swapOpts, key string, k int,
	base shipmentBase, dirty map[heap.ObjID]bool, memberIDs []heap.ObjID) (shipPlan, error) {
	if plan, ok := rt.negotiateDelta(ctx, o, base, dirty, memberIDs); ok {
		return plan, nil
	}
	return rt.negotiateFull(ctx, o, key, k)
}

// negotiateDelta plans a dirty-only re-shipment. It declines (ok = false)
// whenever a full shipment is required or simply better: delta not enabled,
// destination pinned, no usable base, more than half the cluster dirty, or no
// live base donor that accepts the delta format.
func (rt *Runtime) negotiateDelta(ctx context.Context, o swapOpts,
	base shipmentBase, dirty map[heap.ObjID]bool, memberIDs []heap.ObjID) (shipPlan, bool) {
	if !rt.deltaEnabled() || o.device != "" || !base.usable() || len(memberIDs) == 0 {
		return shipPlan{}, false
	}
	baseSet := make(map[heap.ObjID]bool, len(base.members))
	for _, m := range base.members {
		baseSet[m] = true
	}
	current := make(map[heap.ObjID]bool, len(memberIDs))
	changed := make(map[heap.ObjID]bool)
	for _, m := range memberIDs {
		current[m] = true
		// Members absent from the base are new since it was shipped; they
		// ride the delta regardless of the write-observer's dirty marks.
		if dirty[m] || !baseSet[m] {
			changed[m] = true
		}
	}
	var removed []heap.ObjID
	for _, m := range base.members {
		if !current[m] {
			removed = append(removed, m)
		}
	}
	// Too dirty: once half the cluster changed, a delta saves little wire
	// time and forfeits the chance to refresh the base.
	if len(changed)*2 >= len(memberIDs) {
		return shipPlan{}, false
	}
	// A delta decodes by fetching its base from the same donor, so the only
	// eligible donors are the live base replicas that advertise the format.
	var cands []placement.Candidate
	for i, d := range base.devices {
		s, err := rt.stores.Lookup(d)
		if err != nil {
			continue
		}
		st, err := s.Stats(ctx)
		if err != nil {
			continue
		}
		c := placement.Candidate{
			Name: d, Store: s, Free: st.Free(), Formats: st.Formats,
			// Preserve the base replica order (primary first).
			Score: float64(len(base.devices) - i),
		}
		if !c.Accepts(string(wire.FormatDelta)) {
			continue
		}
		cands = append(cands, c)
	}
	if len(cands) == 0 {
		return shipPlan{}, false
	}
	return shipPlan{
		format:    wire.FormatDelta,
		delta:     true,
		baseKey:   base.key,
		changed:   changed,
		removed:   removed,
		baseSlots: base.slots,
		ranked:    cands,
		replicas:  len(cands),
	}, true
}

// negotiateFull plans a self-contained shipment in the best format the donor
// neighborhood supports.
func (rt *Runtime) negotiateFull(ctx context.Context, o swapOpts, key string, k int) (shipPlan, error) {
	prefs := rt.shipFormats()
	if o.device != "" {
		// Pinned destination: probe just that donor's advertisement. A failed
		// probe negotiates down to XML — if the donor is truly gone the Put
		// will report it, exactly as before negotiation existed.
		format := string(wire.FormatXML)
		if s, err := rt.stores.Lookup(o.device); err == nil {
			if st, serr := s.Stats(ctx); serr == nil {
				format = pickFormat(prefs, []placement.Candidate{{Name: o.device, Formats: st.Formats}}, 1)
			}
		}
		return shipPlan{format: wire.FormatID(format), replicas: 1}, nil
	}
	if rt.placer == nil {
		return shipPlan{}, ErrNoPlacement
	}
	// Rank with need 0: the payload size is unknown until the format is
	// chosen, and ShipRanked re-checks Free against the encoded size.
	ranked := rt.placer.Rank(ctx, key, 0, nil)
	return shipPlan{
		format:   wire.FormatID(pickFormat(prefs, ranked, k)),
		ranked:   ranked,
		replicas: k,
	}, nil
}

// pickFormat returns the first preference that k of the candidate donors
// accept — all replicas of one shipment use one format, so a preference only
// wins when the whole target replica set can hold it. When the neighborhood
// is too sparse for any preference to reach k supporters, the preference with
// the most supporters wins (earlier preferences break ties). XML counts every
// donor as a supporter, so it is the floor the negotiation degrades to.
func pickFormat(prefs []string, cands []placement.Candidate, k int) string {
	best, bestCount := string(wire.FormatXML), -1
	for _, p := range prefs {
		if _, err := wire.Lookup(wire.FormatID(p)); err != nil {
			continue // unregistered preference: skip rather than ship garbage
		}
		n := 0
		for _, c := range cands {
			if c.Accepts(p) {
				n++
			}
		}
		if n >= k && n > 0 {
			return p
		}
		if n > bestCount {
			best, bestCount = p, n
		}
	}
	return best
}
