package core

import (
	"fmt"
	"io"
	"sort"

	"objectswap/internal/heap"
)

// DumpDot writes the device's object graph in Graphviz DOT form, grouping
// objects by swap-cluster and drawing the middleware artifacts the paper's
// Figures 3 and 4 show: swap-cluster-proxies on boundary edges,
// replacement-objects standing in for swapped clusters, and object-fault
// proxies for un-replicated edges. Render with:
//
//	go run ./cmd/obiswap -dot | dot -Tsvg > graph.svg
func (rt *Runtime) DumpDot(w io.Writer) error {
	h := rt.h
	var err error
	p := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}

	p("digraph objectswap {\n  rankdir=LR;\n  node [fontsize=10];\n")

	// Group resident application objects per cluster.
	byCluster := make(map[ClusterID][]heap.ObjID)
	var middleware []heap.ObjID
	for _, oid := range h.IDs() {
		o, gerr := h.Get(oid)
		if gerr != nil {
			continue
		}
		if o.Class().Special == heap.SpecialNone {
			c := rt.mgr.ClusterOf(oid)
			byCluster[c] = append(byCluster[c], oid)
		} else {
			middleware = append(middleware, oid)
		}
	}
	clusterIDs := make([]ClusterID, 0, len(byCluster))
	for c := range byCluster {
		clusterIDs = append(clusterIDs, c)
	}
	sort.Slice(clusterIDs, func(i, j int) bool { return clusterIDs[i] < clusterIDs[j] })

	for _, c := range clusterIDs {
		p("  subgraph cluster_%d {\n    label=\"swap-cluster %d\";\n    style=rounded;\n", c, c)
		for _, oid := range byCluster[c] {
			o, _ := h.Get(oid)
			p("    n%d [label=\"%s@%d\", shape=box];\n", oid, o.Class().Name, oid)
		}
		p("  }\n")
	}
	// Swapped clusters appear as annotations.
	for _, info := range rt.mgr.InfoAll() {
		if !info.Swapped {
			continue
		}
		p("  swapped_%d [label=\"cluster %d swapped\\n%d objects on %s\", shape=folder, style=dashed];\n",
			info.ID, info.ID, info.Objects, info.Device)
	}
	// Middleware nodes.
	for _, oid := range middleware {
		o, _ := h.Get(oid)
		switch o.Class().Special {
		case heap.SpecialSCProxy:
			p("  n%d [label=\"proxy@%d\\nsrc=%d -> @%d\", shape=diamond, color=blue];\n",
				oid, oid, proxySrc(o), proxyUltimate(o))
		case heap.SpecialReplacement:
			cv, _ := o.FieldByName(fldClust)
			ci, _ := cv.Int()
			p("  n%d [label=\"replacement@%d\\ncluster %d\", shape=octagon, color=red];\n", oid, oid, ci)
		case heap.SpecialObjProxy:
			p("  n%d [label=\"objfault@%d\\nremote @%d\", shape=diamond, color=gray];\n",
				oid, oid, ObjProxyRemote(o))
		default:
			p("  n%d [label=\"%s@%d\", shape=component];\n", oid, o.Class().Name, oid)
		}
	}

	// Roots.
	for _, name := range h.RootNames() {
		v, _ := h.Root(name)
		p("  root_%s [label=\"%s\", shape=plaintext];\n", sanitize(name), name)
		v.MapRefs(func(rid heap.ObjID) heap.ObjID {
			if rid != heap.NilID {
				p("  root_%s -> n%d;\n", sanitize(name), rid)
			}
			return rid
		})
	}

	// Edges.
	for _, oid := range h.IDs() {
		o, gerr := h.Get(oid)
		if gerr != nil {
			continue
		}
		for i := 0; i < o.NumFields(); i++ {
			fieldName := o.Class().Field(i).Name
			o.Field(i).MapRefs(func(rid heap.ObjID) heap.ObjID {
				if rid != heap.NilID {
					if h.Contains(rid) {
						p("  n%d -> n%d [label=\"%s\", fontsize=8];\n", oid, rid, fieldName)
					} else {
						p("  n%d -> missing%d [label=\"%s (away)\", style=dotted, fontsize=8];\n",
							oid, rid, fieldName)
						p("  missing%d [label=\"@%d\", style=dotted];\n", rid, rid)
					}
				}
				return rid
			})
		}
	}
	p("}\n")
	return err
}

// sanitize makes a root name usable as a DOT identifier fragment.
func sanitize(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			out = append(out, r)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}
