package core

import (
	"context"
	"errors"
	"fmt"
	"hash/crc32"
	"sort"
	"strings"

	"objectswap/internal/event"
	"objectswap/internal/heap"
	"objectswap/internal/obs"
	"objectswap/internal/placement"
	"objectswap/internal/store"
	"objectswap/internal/wire"
)

// Replica maintenance: a swapped cluster's durability is only as good as its
// replica set, and donors in the paper's ad-hoc neighborhood come and go.
// UnderReplicated finds the swapped clusters whose replica count fell below
// target (a replica is "live" when its donor still resolves through the
// store provider — the breaker/connectivity machinery makes that a cheap
// local check), and RepairCluster re-ships one cluster's payload to fresh
// donors chosen by the same rendezvous planner that placed it. The
// placement.Repairer drives both from breaker-open / device-removal /
// read-repair events.

// ReplicaSet returns a swapped cluster's recorded replica devices (primary
// first), or nil when the cluster is resident or unknown.
func (rt *Runtime) ReplicaSet(id ClusterID) []string {
	ts := rt.mgr.tab(id)
	ts.mu.Lock()
	defer ts.mu.Unlock()
	cs, ok := ts.clusters[id]
	if !ok || !cs.swapped {
		return nil
	}
	return append([]string(nil), cs.devices...)
}

// swappedSets snapshots the (id, replica set) pairs of every swapped,
// non-busy cluster, shard by shard.
func (rt *Runtime) swappedSets() map[ClusterID][]string {
	out := make(map[ClusterID][]string)
	for _, ts := range rt.mgr.tabs {
		ts.mu.Lock()
		for id, cs := range ts.clusters {
			if cs.swapped && !cs.busy {
				out[id] = append([]string(nil), cs.devices...)
			}
		}
		ts.mu.Unlock()
	}
	return out
}

// liveCount reports how many of the given replicas resolve through the
// store provider right now. Called without manager locks held — Lookup takes
// the registry's own lock.
func (rt *Runtime) liveCount(devices []string) int {
	if rt.stores == nil {
		return 0
	}
	n := 0
	for _, d := range devices {
		if _, err := rt.stores.Lookup(d); err == nil {
			n++
		}
	}
	return n
}

// UnderReplicated returns the swapped, non-busy clusters with fewer than k
// live replicas, in id order. k <= 0 selects the runtime's default
// replication factor.
func (rt *Runtime) UnderReplicated(k int) []ClusterID {
	if k <= 0 {
		k = rt.Replicas()
	}
	var out []ClusterID
	for id, devices := range rt.swappedSets() {
		if rt.liveCount(devices) < k {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// liveReplicaTotals sums live replicas across swapped clusters, for the
// replication-factor gauge (mean = live / swapped).
func (rt *Runtime) liveReplicaTotals() (live, swapped int) {
	for _, devices := range rt.swappedSets() {
		swapped++
		live += rt.liveCount(devices)
	}
	return live, swapped
}

// RepairCluster restores a swapped cluster toward k live replicas: it scrubs
// every surviving replica's copy against the checksum recorded at swap-out
// (convicting donor corruption at rest; with K>=2 and no recorded checksum,
// the majority checksum convicts divergent minorities), ships fresh copies
// to donors chosen by the planner (excluding every donor already in the
// set), prunes replicas recorded on dead donors and corrupt copies (their
// payloads go to the deferred-drop queue), and commits the new replica set.
// k <= 0 selects the runtime default. A fully replicated cluster whose scrub
// finds every copy intact reports ErrNoRepair; a cluster with no reachable,
// uncorrupted replica at all reports ErrNoLiveReplica (or ErrCorruptReplica)
// and stays swapped, recoverable when a donor returns.
//
// The cluster is reserved (busy) for the duration, exactly like a swap, so
// repair never races a concurrent SwapIn/SwapOut or the sweep.
func (rt *Runtime) RepairCluster(ctx context.Context, id ClusterID, k int) (ev SwapEvent, retErr error) {
	if k <= 0 {
		k = rt.Replicas()
	}
	if rt.stores == nil {
		return SwapEvent{}, ErrNoStores
	}
	if rt.placer == nil {
		return SwapEvent{}, fmt.Errorf("core: repair cluster %d: %w", id, ErrNoPlacement)
	}
	trace := rt.newTrace()
	ctx = obs.ContextWithTrace(ctx, trace)
	span := rt.tracer.Start("swap_repair")
	span.SetTrace(trace)
	span.SetCluster(uint32(id))
	defer func() {
		if retErr != nil {
			span.Fail(retErr)
			if !errors.Is(retErr, ErrNoRepair) {
				rt.swapErrors.With("repair").Inc()
				rt.logger.Warn("repair failed",
					"trace", trace, "cluster", uint32(id), "err", retErr)
			}
		}
	}()

	// Reserve the cluster, like any swap transition.
	span.Phase("reserve")
	sh := rt.shardOf(id)
	rt.lockShard(sh)
	ts := rt.mgr.tab(id)
	ts.mu.Lock()
	cs, err := ts.state(id)
	if err == nil {
		switch {
		case cs.busy:
			err = fmt.Errorf("%w: cluster %d", ErrClusterBusy, id)
		case !cs.swapped:
			err = fmt.Errorf("%w: cluster %d", ErrClusterLoaded, id)
		}
	}
	if err != nil {
		ts.mu.Unlock()
		sh.mu.Unlock()
		return SwapEvent{}, err
	}
	cs.busy = true
	devices := append([]string(nil), cs.devices...)
	key := cs.key
	wantCRC := cs.crc
	base := shipmentBase{
		key:     cs.base.key,
		format:  cs.base.format,
		crc:     cs.base.crc,
		devices: append([]string(nil), cs.base.devices...),
	}
	ts.mu.Unlock()
	sh.mu.Unlock()
	committed := false
	defer func() {
		if !committed {
			rt.setBusy(id, false)
		}
	}()

	// Probe the recorded replicas: live ones stay, dead ones are pruned.
	span.Phase("probe")
	var live, dead []string
	for _, d := range devices {
		if _, lerr := rt.stores.Lookup(d); lerr == nil {
			live = append(live, d)
		} else {
			dead = append(dead, d)
		}
	}
	if len(live) == 0 {
		return SwapEvent{}, fmt.Errorf("core: repair cluster %d (replicas %s): %w",
			id, strings.Join(devices, ","), ErrNoLiveReplica)
	}

	// Scrub every live replica: fetch its copy and checksum it, so donor
	// corruption at rest is detected even when the replica set looks whole.
	// Replicas are byte-identical at shipment time, so the checksum recorded
	// at swap-out convicts a rotted copy directly; without one (state
	// restored from a pre-CRC checkpoint) the copies themselves are the only
	// evidence — with K>=2, the majority checksum convicts divergent
	// minorities, and ties keep the primary-order copy a plain fetch would
	// have served.
	span.Phase("fetch")
	span.SetKey(key)
	type replicaCopy struct {
		device string
		store  store.Store
		data   []byte
		opts   store.PutOpts
		sum    uint32
	}
	var copies []replicaCopy
	var fetchErr error
	for _, d := range live {
		s, lerr := rt.stores.Lookup(d)
		if lerr != nil {
			continue
		}
		b, o, gerr := store.GetWith(ctx, s, key)
		if gerr != nil {
			fetchErr = gerr
			continue
		}
		copies = append(copies, replicaCopy{d, s, b, o, crc32.ChecksumIEEE(b)})
	}
	if wantCRC == 0 && len(copies) >= 2 {
		counts := make(map[uint32]int, len(copies))
		for _, c := range copies {
			counts[c.sum]++
		}
		if len(counts) > 1 {
			best := 0
			for _, c := range copies {
				if counts[c.sum] > best {
					best, wantCRC = counts[c.sum], c.sum
				}
			}
			rt.logger.Warn("repair: replica payloads diverge; majority checksum wins",
				"trace", trace, "cluster", uint32(id), "groups", len(counts))
		}
	}
	var (
		data         []byte
		popts        store.PutOpts
		serving      string
		servingStore store.Store
		corrupt      []string
	)
	for _, c := range copies {
		if wantCRC != 0 && c.sum != wantCRC {
			rt.logger.Warn("repair: replica payload corrupt at rest",
				"trace", trace, "cluster", uint32(id), "device", c.device)
			corrupt = append(corrupt, c.device)
			continue
		}
		if serving == "" {
			data, popts, serving, servingStore = c.data, c.opts, c.device, c.store
		}
	}
	if serving == "" {
		err = fetchErr
		if len(corrupt) > 0 {
			err = fmt.Errorf("%w: key %s on %s", ErrCorruptReplica, key, strings.Join(corrupt, ","))
		}
		if err == nil {
			err = ErrNoLiveReplica
		}
		return SwapEvent{}, fmt.Errorf("core: repair cluster %d: fetch: %w", id, err)
	}
	if len(corrupt) > 0 {
		// Demote convicted copies: their donors are reachable but their
		// bytes are worthless, so treat them exactly like dead replicas —
		// pruned from the set, payload queued for dropping, re-shipped over.
		corruptSet := make(map[string]bool, len(corrupt))
		for _, d := range corrupt {
			corruptSet[d] = true
		}
		kept := live[:0]
		for _, d := range live {
			if !corruptSet[d] {
				kept = append(kept, d)
			}
		}
		live = kept
		dead = append(dead, corrupt...)
	}
	if len(live) >= k && len(dead) == 0 {
		return SwapEvent{}, ErrNoRepair
	}
	span.SetDevice(serving)
	span.SetFormat(popts.Format)
	span.AddBytes(int64(len(data)))

	// Ship fresh copies in the fetched format — the planner skips donors that
	// do not accept it. Quorum 1: a partial repair still improves durability,
	// and the next sweep finishes the job when donors appear.
	span.Phase("ship")
	var fresh []string
	if need := k - len(live); need > 0 {
		rep, serr := rt.placer.Ship(ctx, placement.ShipRequest{
			Key: key, Data: data, Replicas: need, Quorum: 1, Exclude: devices,
			Format: popts.Format,
		})
		if serr != nil && len(dead) == 0 {
			// Nothing shipped and nothing to prune: the repair achieved
			// nothing, report it.
			return SwapEvent{}, fmt.Errorf("core: repair cluster %d: %w", id, serr)
		}
		fresh = rep.Replicas
	}

	// A delta payload is useless without its base: every fresh donor must
	// also receive the base payload, fetched from the replica that served the
	// delta. A donor that cannot take the base loses its delta copy too —
	// half a shipment serves nothing.
	if popts.Format == string(wire.FormatDelta) && len(fresh) > 0 && base.key != "" {
		baseData, baseOpts, berr := store.GetWith(ctx, servingStore, base.key)
		usable := fresh[:0]
		for _, d := range fresh {
			var cerr error = berr
			if cerr == nil {
				if s, lerr := rt.stores.Lookup(d); lerr != nil {
					cerr = lerr
				} else {
					cerr = store.PutWith(ctx, s, base.key, baseData, baseOpts)
				}
			}
			if cerr != nil {
				rt.logger.Warn("repair: base copy failed; dropping orphan delta",
					"trace", trace, "cluster", uint32(id), "device", d, "err", cerr)
				if derr := rt.dropFromDevice(d, key); derr != nil {
					rt.mgr.deferDrop(d, key, id)
				}
				continue
			}
			usable = append(usable, d)
			base.devices = append(base.devices, d)
		}
		fresh = usable
		if len(fresh) == 0 && len(dead) == 0 {
			if berr == nil {
				berr = errors.New("no fresh donor accepted the base payload")
			}
			return SwapEvent{}, fmt.Errorf("core: repair cluster %d: base copy: %w", id, berr)
		}
	}
	newSet := append(append([]string(nil), live...), fresh...)

	// Commit the new replica set, mirroring commitSwapOut's bookkeeping. The
	// delta-base record follows the repair: a full shipment that doubles as
	// the base mirrors the new set directly, a repaired delta keeps the base
	// donors minus the pruned dead ones plus the fresh copies made above.
	span.Phase("commit")
	deadSet := make(map[string]bool, len(dead))
	for _, d := range dead {
		deadSet[d] = true
	}
	rt.lockShard(sh)
	ts.mu.Lock()
	cs.devices = append([]string(nil), newSet...)
	baseKey := cs.base.key
	if baseKey == key {
		cs.base.devices = append([]string(nil), newSet...)
	} else if baseKey != "" {
		var bd []string
		for _, d := range base.devices {
			if !deadSet[d] {
				bd = append(bd, d)
			}
		}
		cs.base.devices = bd
	}
	replID := cs.replacement
	ts.mu.Unlock()
	if repl, gerr := rt.h.Get(replID); gerr == nil {
		_ = repl.SetFieldByName(fldStore, heap.Str(strings.Join(newSet, ",")))
	}
	sh.mu.Unlock()
	committed = true
	rt.setBusy(id, false)
	for _, d := range dead {
		rt.mgr.deferDrop(d, key, id)
		if baseKey != "" && baseKey != key {
			rt.mgr.deferDrop(d, baseKey, id)
		}
	}

	ev = SwapEvent{Cluster: id, Device: newSet[0], Key: key, Bytes: len(data),
		Attempted: dead, Replicas: newSet, Trace: trace, Format: popts.Format,
		Cause: CauseRepair}
	span.SetReplicas(newSet)
	ev.Phases, ev.Duration = span.End()
	rt.recordFault("swap_repair", id, ev.Cause, ev.Duration, len(data))
	rt.logger.Info("cluster repaired", "trace", trace, "cluster", uint32(id),
		"replicas", strings.Join(newSet, ","), "pruned", strings.Join(dead, ","),
		"shipped", strings.Join(fresh, ","))
	rt.emit(event.TopicSwapRepair, ev)
	return ev, nil
}
