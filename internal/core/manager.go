package core

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"objectswap/internal/heap"
)

// objInfo is the SwappingManager's per-object record: which swap-cluster the
// object belongs to and its class name (needed to synthesize proxies for
// objects that are currently swapped out, hence not resident).
type objInfo struct {
	cluster ClusterID
	class   string
}

// shipmentBase records the last full shipment of a cluster that donors still
// hold, the anchor a delta re-shipment applies against. members is the
// cluster's membership at base time (needed to compute the removed set);
// it is not checkpointed, so a restored base supports key cleanup but not
// delta encoding — the first post-restore swap-out ships full.
type shipmentBase struct {
	key     string
	devices []string
	format  string
	// crc is the IEEE CRC32 of the base payload as shipped, verified when a
	// delta decode fetches the base back (0 = unknown, legacy state).
	crc     uint32
	members []heap.ObjID
	// slots is the base document's outbound slot table: the ultimate target
	// of each outbound slot, in slot order. A delta re-shipment must keep
	// this table as a prefix of its own so slot references encoded inside
	// unchanged base objects still resolve after the merge.
	slots []heap.ObjID
}

// usable reports whether the base can anchor a delta (key known AND the
// membership snapshot survived — false after a checkpoint restore).
func (b shipmentBase) usable() bool { return b.key != "" && len(b.members) > 0 }

// clusterState is the SwappingManager's per-swap-cluster record.
type clusterState struct {
	id      ClusterID
	objects map[heap.ObjID]bool

	// Boundary-crossing statistics (recency and frequency), fed by proxy
	// traversal as the paper describes.
	crossings  uint64
	lastAccess uint64

	// busy marks a swap-out or swap-in in flight on this cluster: the state
	// transition has been reserved but not committed. Busy clusters are
	// skipped by victim selection, refused by SwapOut/SwapIn, and left alone
	// by sweepSwapped until the transition settles.
	busy bool

	// Swapped-out state. devices is the replica set holding the shipment,
	// primary first; under the default replication factor of 1 it is a
	// singleton.
	swapped      bool
	replacement  heap.ObjID
	devices      []string
	key          string
	payloadBytes int
	// crc is the IEEE CRC32 of the shipped payload (every replica is
	// byte-identical). Swap-in and repair verify fetched bytes against it,
	// detecting donor corruption at rest and falling through to the next
	// replica. 0 means unknown (shipments recorded before checksumming).
	crc uint32
	// residentBytes at the moment of swap-out, used to pre-check reload room.
	bytesAtSwap int64
	// format is the wire format of the current shipment ("" = XML, the
	// pre-negotiation default). Informational: the payload self-describes.
	format string

	// Delta re-shipment state (only populated when the runtime enables the
	// delta format). base is the last full shipment donors still hold; dirty
	// accumulates the members mutated since that base — relative to base, not
	// to the last delta, so it is cleared only when a new full shipment
	// becomes the base (full swap-out) or the base provably matches resident
	// state (full swap-in).
	base  shipmentBase
	dirty map[heap.ObjID]bool

	swapOuts uint64
	swapIns  uint64
}

// primaryDevice is the best-ranked donor holding the cluster's shipment
// ("" while resident).
func (cs *clusterState) primaryDevice() string {
	if len(cs.devices) == 0 {
		return ""
	}
	return cs.devices[0]
}

// proxyKey identifies the unique swap-cluster-proxy for a
// (source-cluster, target-object) pair. The paper: "When there are multiple
// references to the same object, across the same pair of swap-clusters, only
// a swap-cluster-proxy is required."
type proxyKey struct {
	src    ClusterID
	target heap.ObjID
}

// tableShard is one independently locked slice of the sharded cluster table:
// the records (including the busy reservation flag) of every cluster whose id
// hashes onto it. The object, proxy, drop and crossing-clock indexes stay
// under Manager.mu. Lock order: Manager.mu may be held while taking a
// tableShard lock, never the reverse; multiple tableShard locks are taken in
// ascending index order.
type tableShard struct {
	mu       sync.Mutex
	clusters map[ClusterID]*clusterState
}

// state returns the shard's record for id. The caller holds ts.mu.
func (ts *tableShard) state(id ClusterID) (*clusterState, error) {
	cs, ok := ts.clusters[id]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrUnknownCluster, id)
	}
	return cs, nil
}

// counts tallies the shard's clusters by state for the per-shard gauges. It
// takes only the shard's own lock, so metric gathering never contends with
// swaps on other shards.
func (ts *tableShard) counts() (resident, swapped, busy float64) {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	for _, cs := range ts.clusters {
		if cs.busy {
			busy++
		}
		if cs.swapped {
			swapped++
		} else {
			resident++
		}
	}
	return resident, swapped, busy
}

// Manager is the paper's SwappingManager: it tracks swap-clusters, the
// objects belonging to each, and all swap-cluster-proxies (through weak
// references purged by proxy finalizers).
type Manager struct {
	rt *Runtime

	// tabs is the sharded cluster table; the record for cluster id lives on
	// tabs[shardIndexFor(id, len(tabs))], aligned with the runtime's swap
	// shards so one shard's swaps touch one table shard.
	tabs []*tableShard

	mu           sync.Mutex
	nextCluster  ClusterID
	objects      map[heap.ObjID]objInfo
	proxies      map[proxyKey]heap.ObjID
	proxyMeta    map[heap.ObjID]proxyKey
	objProxies   map[heap.ObjID]heap.ObjID // remote identity -> proxy id
	objProxyMeta map[heap.ObjID]heap.ObjID // proxy id -> remote identity
	// cursorProxies marks private self-patching cursors: they are never
	// offered for shared reuse (their targets are volatile).
	cursorProxies map[heap.ObjID]bool
	// inbound indexes live proxies by the cluster of their ultimate target,
	// so swap-out can patch every inbound proxy of the victim cluster.
	inbound map[ClusterID]map[heap.ObjID]bool

	// pendingDrops holds (device, key) pairs whose Drop failed (device
	// unreachable); retried on the next collection until the per-ticket
	// budget is spent, then abandoned with a swap.drop.abandoned event.
	pendingDrops   []dropTicket
	dropRetryLimit int
	abandonedDrops int

	// clock is the recency clock advanced by boundary crossings and
	// allocations; atomic so crossings on different shards never share a lock.
	clock atomic.Uint64
}

type dropTicket struct {
	device   string
	key      string
	cluster  ClusterID
	attempts int
}

func newManager(rt *Runtime, shards int) *Manager {
	m := &Manager{
		rt:             rt,
		tabs:           make([]*tableShard, shards),
		objects:        make(map[heap.ObjID]objInfo),
		proxies:        make(map[proxyKey]heap.ObjID),
		proxyMeta:      make(map[heap.ObjID]proxyKey),
		objProxies:     make(map[heap.ObjID]heap.ObjID),
		objProxyMeta:   make(map[heap.ObjID]heap.ObjID),
		cursorProxies:  make(map[heap.ObjID]bool),
		inbound:        make(map[ClusterID]map[heap.ObjID]bool),
		dropRetryLimit: DefaultDropRetryLimit,
	}
	for i := range m.tabs {
		m.tabs[i] = &tableShard{clusters: make(map[ClusterID]*clusterState)}
	}
	m.tab(RootCluster).clusters[RootCluster] = &clusterState{
		id:      RootCluster,
		objects: make(map[heap.ObjID]bool),
	}
	return m
}

// tab returns the table shard holding cluster id's record.
func (m *Manager) tab(id ClusterID) *tableShard {
	return m.tabs[shardIndexFor(id, len(m.tabs))]
}

// lockPair locks the table shards of two clusters in ascending index order
// (a single acquisition when they share one) and returns the unlock func.
func (m *Manager) lockPair(a, b ClusterID) func() {
	ia := shardIndexFor(a, len(m.tabs))
	ib := shardIndexFor(b, len(m.tabs))
	if ia == ib {
		ts := m.tabs[ia]
		ts.mu.Lock()
		return ts.mu.Unlock
	}
	if ia > ib {
		ia, ib = ib, ia
	}
	m.tabs[ia].mu.Lock()
	m.tabs[ib].mu.Lock()
	return func() {
		m.tabs[ib].mu.Unlock()
		m.tabs[ia].mu.Unlock()
	}
}

// lockTabs locks every table shard in ascending index order, for whole-table
// iteration (sweep, compact, invariants); unlockTabs reverses it.
func (m *Manager) lockTabs() {
	for _, ts := range m.tabs {
		ts.mu.Lock()
	}
}

func (m *Manager) unlockTabs() {
	for i := len(m.tabs) - 1; i >= 0; i-- {
		m.tabs[i].mu.Unlock()
	}
}

// replacementIfSwapped reports the cluster's replacement-object while it is
// swapped out — the target a fresh inbound reference must be mediated onto.
func (m *Manager) replacementIfSwapped(id ClusterID) (heap.ObjID, bool) {
	ts := m.tab(id)
	ts.mu.Lock()
	defer ts.mu.Unlock()
	cs, ok := ts.clusters[id]
	if !ok || !cs.swapped {
		return heap.NilID, false
	}
	return cs.replacement, true
}

// NewCluster declares a fresh, empty swap-cluster and returns its id.
func (m *Manager) NewCluster() ClusterID {
	m.mu.Lock()
	m.nextCluster++
	id := m.nextCluster
	m.mu.Unlock()
	ts := m.tab(id)
	ts.mu.Lock()
	ts.clusters[id] = &clusterState{id: id, objects: make(map[heap.ObjID]bool)}
	ts.mu.Unlock()
	return id
}

// Clusters returns the ids of all known swap-clusters in order.
func (m *Manager) Clusters() []ClusterID {
	var ids []ClusterID
	for _, ts := range m.tabs {
		ts.mu.Lock()
		for id := range ts.clusters {
			ids = append(ids, id)
		}
		ts.mu.Unlock()
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// assign records an object as a member of a cluster.
func (m *Manager) assign(id heap.ObjID, cluster ClusterID, class string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	ts := m.tab(cluster)
	ts.mu.Lock()
	defer ts.mu.Unlock()
	cs, ok := ts.clusters[cluster]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownCluster, cluster)
	}
	if cs.swapped {
		return fmt.Errorf("%w: cluster %d", ErrClusterSwapped, cluster)
	}
	if prev, dup := m.objects[id]; dup {
		return fmt.Errorf("core: object @%d already assigned to cluster %d", id, prev.cluster)
	}
	m.objects[id] = objInfo{cluster: cluster, class: class}
	cs.objects[id] = true
	// Allocation into a cluster is a use signal: advance its recency so
	// victim selection does not evict the cluster being built. Heat
	// tracking sees the same signal (Touch is a leaf call, safe here).
	cs.lastAccess = m.clock.Add(1)
	m.rt.noteTouch(cluster, false)
	return nil
}

// ClusterOf reports the swap-cluster an object belongs to. Objects never
// assigned belong to RootCluster.
func (m *Manager) ClusterOf(id heap.ObjID) ClusterID {
	m.mu.Lock()
	defer m.mu.Unlock()
	if info, ok := m.objects[id]; ok {
		return info.cluster
	}
	return RootCluster
}

// classOf returns the recorded class name of an object (valid even while the
// object is swapped out).
func (m *Manager) classOf(id heap.ObjID) (string, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	info, ok := m.objects[id]
	return info.class, ok
}

// IsSwapped reports whether the cluster is currently swapped out.
func (m *Manager) IsSwapped(id ClusterID) bool {
	ts := m.tab(id)
	ts.mu.Lock()
	defer ts.mu.Unlock()
	cs, ok := ts.clusters[id]
	return ok && cs.swapped
}

// registerProxy records a freshly created proxy under its key and indexes it
// as inbound to its target's cluster.
func (m *Manager) registerProxy(pid heap.ObjID, key proxyKey, targetCluster ClusterID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.proxies[key] = pid
	m.proxyMeta[pid] = key
	idx := m.inbound[targetCluster]
	if idx == nil {
		idx = make(map[heap.ObjID]bool)
		m.inbound[targetCluster] = idx
	}
	idx[pid] = true
}

// registerCursorProxy indexes a private cursor proxy for swap-out patching
// and finalizer purging without exposing it to registry reuse.
func (m *Manager) registerCursorProxy(pid heap.ObjID, key proxyKey, targetCluster ClusterID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.proxyMeta[pid] = key
	m.cursorProxies[pid] = true
	idx := m.inbound[targetCluster]
	if idx == nil {
		idx = make(map[heap.ObjID]bool)
		m.inbound[targetCluster] = idx
	}
	idx[pid] = true
}

// lookupProxy finds the live proxy for key, if any.
func (m *Manager) lookupProxy(key proxyKey) (heap.ObjID, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	pid, ok := m.proxies[key]
	if !ok {
		return heap.NilID, false
	}
	return pid, true
}

// retargetProxy moves a proxy from its old key to a new target (the Assign
// iteration optimization). The registry slot for the new key is claimed only
// if vacant.
func (m *Manager) retargetProxy(pid heap.ObjID, newTarget heap.ObjID, newTargetCluster ClusterID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	old, ok := m.proxyMeta[pid]
	if !ok {
		// The proxy was collected and purged (or never registered): a
		// retarget must not resurrect registry entries for a dead object.
		return
	}
	if cur, live := m.proxies[old]; live && cur == pid {
		delete(m.proxies, old)
	}
	if info, known := m.objects[old.target]; known {
		if idx := m.inbound[info.cluster]; idx != nil {
			delete(idx, pid)
		}
	}
	nk := proxyKey{src: old.src, target: newTarget}
	m.proxyMeta[pid] = nk
	// Private cursors never enter the shared registry: their targets are
	// volatile, and a shared reuse would hand out a reference that patches
	// itself away underneath the holder.
	if _, taken := m.proxies[nk]; !taken && !m.cursorProxies[pid] {
		m.proxies[nk] = pid
	}
	idx := m.inbound[newTargetCluster]
	if idx == nil {
		idx = make(map[heap.ObjID]bool)
		m.inbound[newTargetCluster] = idx
	}
	idx[pid] = true
}

// purgeProxy is the proxy finalizer: it removes all SwappingManager entries
// referring to the reclaimed proxy, as the paper prescribes.
func (m *Manager) purgeProxy(pid heap.ObjID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	key, ok := m.proxyMeta[pid]
	if !ok {
		return
	}
	delete(m.proxyMeta, pid)
	delete(m.cursorProxies, pid)
	if cur, live := m.proxies[key]; live && cur == pid {
		delete(m.proxies, key)
	}
	for _, idx := range m.inbound {
		delete(idx, pid)
	}
}

// inboundProxies snapshots the live proxies whose ultimate target lies in
// cluster id.
func (m *Manager) inboundProxies(id ClusterID) []heap.ObjID {
	m.mu.Lock()
	defer m.mu.Unlock()
	idx := m.inbound[id]
	out := make([]heap.ObjID, 0, len(idx))
	for pid := range idx {
		out = append(out, pid)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// NeighborClusters ranks the clusters reachable from cluster through its
// registered swap-cluster-proxies — the replacement-object graph's
// inter-cluster edges — by edge count, best first, at most k entries (ties
// break toward the lower cluster id for determinism). The root cluster and
// self-edges are excluded. This is the prefetcher's ranking signal: a proxy
// from A to B exists exactly because application references cross that
// boundary, so a demand fault on A makes B the next likely fault.
func (m *Manager) NeighborClusters(cluster uint32, k int) []uint32 {
	if k <= 0 {
		return nil
	}
	src := ClusterID(cluster)
	counts := make(map[ClusterID]int)
	m.mu.Lock()
	for _, pk := range m.proxyMeta {
		if pk.src != src {
			continue
		}
		dst := m.objects[pk.target].cluster
		if dst == src || dst == RootCluster {
			continue
		}
		counts[dst]++
	}
	m.mu.Unlock()
	ranked := make([]ClusterID, 0, len(counts))
	for dst := range counts {
		ranked = append(ranked, dst)
	}
	sort.Slice(ranked, func(i, j int) bool {
		if counts[ranked[i]] != counts[ranked[j]] {
			return counts[ranked[i]] > counts[ranked[j]]
		}
		return ranked[i] < ranked[j]
	})
	if len(ranked) > k {
		ranked = ranked[:k]
	}
	out := make([]uint32, len(ranked))
	for i, id := range ranked {
		out[i] = uint32(id)
	}
	return out
}

// ProxyCount reports the number of live registered swap-cluster-proxies.
func (m *Manager) ProxyCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.proxyMeta)
}

// ClusterInfo is a public snapshot of one swap-cluster's state.
type ClusterInfo struct {
	ID            ClusterID
	Objects       int
	ResidentBytes int64
	Swapped       bool
	// Busy reports a swap transition in flight on another goroutine.
	Busy bool
	// Device is the primary replica (the best-ranked donor holding the
	// shipment); Devices is the full replica set, primary first.
	Device       string
	Devices      []string
	Key          string
	PayloadBytes int
	// Format is the wire format of the current shipment ("" while resident
	// or for pre-negotiation XML shipments).
	Format string
	// BaseKey is the retained delta-base shipment's key ("" when the
	// runtime is not delta-enabled or no base is anchored). Lease renewal
	// covers it alongside Key — the base lives on donors too.
	BaseKey    string
	Crossings  uint64
	LastAccess uint64
	SwapOuts   uint64
	SwapIns    uint64
}

// Info snapshots one cluster.
func (m *Manager) Info(id ClusterID) (ClusterInfo, error) {
	ts := m.tab(id)
	ts.mu.Lock()
	defer ts.mu.Unlock()
	cs, err := ts.state(id)
	if err != nil {
		return ClusterInfo{}, err
	}
	return m.infoOf(cs), nil
}

// InfoAll snapshots every cluster in id order.
func (m *Manager) InfoAll() []ClusterInfo {
	var out []ClusterInfo
	for _, ts := range m.tabs {
		ts.mu.Lock()
		for _, cs := range ts.clusters {
			out = append(out, m.infoOf(cs))
		}
		ts.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// infoOf snapshots one record; the caller holds its table-shard lock.
func (m *Manager) infoOf(cs *clusterState) ClusterInfo {
	info := ClusterInfo{
		ID:           cs.id,
		Objects:      len(cs.objects),
		Swapped:      cs.swapped,
		Busy:         cs.busy,
		Device:       cs.primaryDevice(),
		Devices:      append([]string(nil), cs.devices...),
		Key:          cs.key,
		PayloadBytes: cs.payloadBytes,
		Format:       cs.format,
		BaseKey:      cs.base.key,
		Crossings:    cs.crossings,
		LastAccess:   cs.lastAccess,
		SwapOuts:     cs.swapOuts,
		SwapIns:      cs.swapIns,
	}
	if !cs.swapped {
		for id := range cs.objects {
			if o, err := m.rt.h.Get(id); err == nil {
				info.ResidentBytes += o.Size()
			}
		}
	}
	return info
}

// VictimStrategy orders candidate clusters for eviction.
type VictimStrategy uint8

const (
	// VictimColdest evicts the least-recently crossed cluster (LRU over
	// boundary traversals).
	VictimColdest VictimStrategy = iota + 1
	// VictimLargest evicts the cluster holding the most resident bytes.
	VictimLargest
	// VictimLeastUsed evicts the least-frequently crossed cluster (LFU).
	VictimLeastUsed
)

// String names the strategy (used by policy XML).
func (s VictimStrategy) String() string {
	switch s {
	case VictimColdest:
		return "coldest"
	case VictimLargest:
		return "largest"
	case VictimLeastUsed:
		return "least-used"
	default:
		return "strategy?"
	}
}

// VictimStrategyFromString parses policy XML strategy names.
func VictimStrategyFromString(s string) (VictimStrategy, error) {
	switch s {
	case "coldest":
		return VictimColdest, nil
	case "largest":
		return VictimLargest, nil
	case "least-used":
		return VictimLeastUsed, nil
	default:
		return 0, fmt.Errorf("core: unknown victim strategy %q", s)
	}
}

// SelectVictim picks the next loaded, non-empty, non-root cluster to swap out
// under the given strategy. ok is false when no cluster is eligible.
func (m *Manager) SelectVictim(strategy VictimStrategy) (ClusterID, bool) {
	infos := m.InfoAll()
	var best *ClusterInfo
	better := func(a, b *ClusterInfo) bool {
		switch strategy {
		case VictimLargest:
			if a.ResidentBytes != b.ResidentBytes {
				return a.ResidentBytes > b.ResidentBytes
			}
		case VictimLeastUsed:
			if a.Crossings != b.Crossings {
				return a.Crossings < b.Crossings
			}
		default: // VictimColdest
			if a.LastAccess != b.LastAccess {
				return a.LastAccess < b.LastAccess
			}
		}
		return a.ID < b.ID
	}
	for i := range infos {
		info := &infos[i]
		if info.ID == RootCluster || info.Swapped || info.Busy || info.Objects == 0 {
			continue
		}
		if best == nil || better(info, best) {
			best = info
		}
	}
	if best == nil {
		return 0, false
	}
	return best.ID, true
}
