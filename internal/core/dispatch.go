package core

import (
	"errors"
	"fmt"

	"objectswap/internal/heap"
)

// ErrClusterActive reports a swap-out of a cluster with objects currently on
// the invocation stack.
var ErrClusterActive = errors.New("core: cluster has in-flight invocations")

// materialize resolves a reference to a resident object, transparently
// faulting its swap-cluster back in when the object is a known member of a
// swapped-out cluster (host code may legitimately hold direct references
// across a swap).
func (rt *Runtime) materialize(id heap.ObjID) (*heap.Object, error) {
	o, err := rt.h.Get(id)
	if err == nil {
		return o, nil
	}
	if _, known := rt.mgr.classOf(id); !known {
		return nil, err
	}
	cluster := rt.mgr.ClusterOf(id)
	if !rt.mgr.IsSwapped(cluster) {
		return nil, err
	}
	if _, serr := rt.SwapIn(cluster, WithCause(CauseReload)); serr != nil {
		return nil, fmt.Errorf("core: reload cluster %d: %w", cluster, serr)
	}
	return rt.h.Get(id)
}

// pushStack protects middleware-created objects and invocation operands from
// the collector for the duration of the enclosing invocation frame. Outside
// any invocation (depth 0) there is no frame to anchor to — and no collection
// can interleave before the host code stores the value — so it is a no-op.
func (rt *Runtime) pushStack(ids ...heap.ObjID) {
	if rt.depth == 0 {
		return
	}
	rt.stack = append(rt.stack, ids...)
}

// pushValueRefs protects every reference contained in v.
func (rt *Runtime) pushValueRefs(v heap.Value) {
	switch v.Kind() {
	case heap.KindRef:
		if id, err := v.Ref(); err == nil {
			rt.stack = append(rt.stack, id)
		}
	case heap.KindList:
		elems, _ := v.List()
		for _, e := range elems {
			rt.pushValueRefs(e)
		}
	}
}

// Invoke dispatches a method on the object designated by target, applying
// swap-cluster-proxy interception, replication faults and swap-in reloads as
// the reference demands. It implements heap.Invoker, so nested invocations
// made by method bodies flow back through it.
func (rt *Runtime) Invoke(target heap.Value, method string, args ...heap.Value) (res []heap.Value, err error) {
	id, err := target.Ref()
	if err != nil {
		return nil, err
	}
	if id == heap.NilID {
		return nil, fmt.Errorf("%w: method %s", heap.ErrNilTarget, method)
	}

	rt.depth++
	save := len(rt.stack)
	// The target itself must survive any collection its own materialization
	// or interception triggers (it may be held only by host code).
	rt.stack = append(rt.stack, id)
	defer func() {
		// Drop this frame's protections, then anchor the results in the
		// parent frame so interception-created proxies survive until stored.
		rt.stack = rt.stack[:save]
		if err == nil && rt.depth > 1 {
			for _, v := range res {
				rt.pushValueRefs(v)
			}
		}
		rt.depth--
		if rt.depth == 0 {
			rt.stack = rt.stack[:0]
		}
	}()
	for _, a := range args {
		rt.pushValueRefs(a)
	}

	obj, err := rt.materialize(id)
	if err != nil {
		return nil, err
	}
	switch obj.Class().Special {
	case heap.SpecialNone:
		return rt.invokeDirect(obj, method, args)
	case heap.SpecialSCProxy:
		return rt.invokeProxy(obj, method, args)
	case heap.SpecialObjProxy:
		if rt.faultHandler == nil {
			return nil, fmt.Errorf("core: object fault on @%d without fault handler", id)
		}
		resolved, err := rt.faultHandler.HandleFault(rt, obj)
		if err != nil {
			return nil, fmt.Errorf("core: object fault: %w", err)
		}
		return rt.Invoke(resolved, method, args...)
	case heap.SpecialReplacement:
		return nil, errors.New("core: replacement-object invoked directly (graph corruption)")
	default:
		return nil, fmt.Errorf("core: cannot dispatch on %s object", obj.Class().Special)
	}
}

// invokeDirect is the intra-cluster fast path: dispatch through the class's
// behavior plane (generated switch or closure table — the runtime does not
// care which). The receiver and arguments were already stacked by Invoke.
func (rt *Runtime) invokeDirect(obj *heap.Object, method string, args []heap.Value) ([]heap.Value, error) {
	rt.h.NoteAccess(obj.ID())
	return obj.Class().Invoke(method, &heap.Call{RT: rt, Self: obj, Args: args})
}

// invokeProxy crosses a swap-cluster boundary: it reloads the target cluster
// if needed, translates arguments into the target cluster's perspective,
// dispatches, and translates results back — applying the assign optimization
// when enabled on this proxy.
func (rt *Runtime) invokeProxy(p *heap.Object, method string, args []heap.Value) ([]heap.Value, error) {
	src := proxySrc(p)
	ultimate := proxyUltimate(p)
	dst, swapped := rt.mgr.enterCrossing(src, ultimate)
	if swapped {
		if _, err := rt.SwapIn(dst, WithCause(CauseReload)); err != nil {
			return nil, fmt.Errorf("core: reload cluster %d: %w", dst, err)
		}
	} else {
		rt.notePrefetchHit(dst)
	}

	obj, err := rt.h.Get(ultimate)
	if err != nil {
		return nil, fmt.Errorf("core: proxy target @%d: %w", ultimate, err)
	}
	if !obj.Class().HasMethod(method) {
		return nil, fmt.Errorf("%w: %s.%s (via proxy)", heap.ErrNoSuchMethod, obj.Class().Name, method)
	}

	// Protect the receiver before argument interception: translating an
	// argument can allocate, evict and collect (the proxy itself was stacked
	// by Invoke).
	rt.pushStack(obj.ID())

	// Intercept arguments: rewrap for the receiving cluster.
	targs := make([]heap.Value, len(args))
	for i, a := range args {
		ta, err := rt.translate(a, dst)
		if err != nil {
			return nil, fmt.Errorf("core: intercept argument %d: %w", i, err)
		}
		targs[i] = ta
	}
	for _, a := range targs {
		rt.pushValueRefs(a)
	}
	res, err := obj.Class().Invoke(method, &heap.Call{RT: rt, Self: obj, Args: targs})
	if err != nil {
		return nil, err
	}

	// Assign optimization: patch this proxy onto the single returned
	// reference instead of creating a fresh proxy (Section 4).
	if proxyMode(p) == proxyModeAssign && len(res) == 1 && res[0].IsRef() {
		return rt.assignReturn(p, src, res[0])
	}

	// Intercept results: rewrap for the calling cluster.
	out := make([]heap.Value, len(res))
	for i, r := range res {
		tr, err := rt.translate(r, src)
		if err != nil {
			return nil, fmt.Errorf("core: intercept result %d: %w", i, err)
		}
		out[i] = tr
	}
	return out, nil
}

// assignReturn implements the self-patching return path of an
// assign-optimized proxy.
func (rt *Runtime) assignReturn(p *heap.Object, src ClusterID, r heap.Value) ([]heap.Value, error) {
	rid, _ := r.Ref()
	if rid == heap.NilID {
		return []heap.Value{heap.Nil()}, nil
	}
	ultimate, err := rt.resolveUltimate(rid)
	if err != nil {
		return nil, err
	}
	rcluster := rt.mgr.ClusterOf(ultimate)
	if rcluster == src {
		// No mediation needed toward the caller: dismantle.
		return []heap.Value{heap.Ref(ultimate)}, nil
	}
	// Patch self: point at the returned object and hand back self.
	tgt := heap.Ref(ultimate)
	if rid, ok := rt.mgr.replacementIfSwapped(rcluster); ok {
		tgt = heap.Ref(rid)
	}
	if err := p.SetFieldByName(fldTarget, tgt); err != nil {
		return nil, err
	}
	if err := p.SetFieldByName(fldObj, heap.Int(int64(ultimate))); err != nil {
		return nil, err
	}
	rt.mgr.retargetProxy(p.ID(), ultimate, rcluster)
	// An actively-used cursor stays alive across collections even when only
	// host code references it.
	rt.h.TouchNursery(p.ID())
	return []heap.Value{heap.Ref(p.ID())}, nil
}

// Field reads a field through the swapping-aware indirection: reads through a
// proxy reload the target cluster if needed and mediate any returned
// reference for the proxy's source cluster; direct reads return the raw
// value (same-cluster access).
func (rt *Runtime) Field(target heap.Value, name string) (res heap.Value, err error) {
	id, err := target.Ref()
	if err != nil {
		return heap.Nil(), err
	}
	if id == heap.NilID {
		return heap.Nil(), fmt.Errorf("%w: field %s", heap.ErrNilTarget, name)
	}
	// Same frame discipline as Invoke: collections triggered inside the
	// operation (reload evictions) must see the operand and result as live.
	rt.depth++
	save := len(rt.stack)
	rt.stack = append(rt.stack, id)
	defer func() {
		rt.stack = rt.stack[:save]
		if err == nil && rt.depth > 1 {
			rt.pushValueRefs(res)
		}
		rt.depth--
		if rt.depth == 0 {
			rt.stack = rt.stack[:0]
		}
	}()
	obj, err := rt.materialize(id)
	if err != nil {
		return heap.Nil(), err
	}
	switch obj.Class().Special {
	case heap.SpecialNone:
		rt.h.NoteAccess(obj.ID())
		return obj.FieldByName(name)
	case heap.SpecialSCProxy:
		src := proxySrc(obj)
		ultimate := proxyUltimate(obj)
		dst, swapped := rt.mgr.enterCrossing(src, ultimate)
		if swapped {
			if _, err := rt.SwapIn(dst, WithCause(CauseReload)); err != nil {
				return heap.Nil(), fmt.Errorf("core: reload cluster %d: %w", dst, err)
			}
		} else {
			rt.notePrefetchHit(dst)
		}
		real, err := rt.h.Get(ultimate)
		if err != nil {
			return heap.Nil(), err
		}
		v, err := real.FieldByName(name)
		if err != nil {
			return heap.Nil(), err
		}
		// The assign optimization covers field reads too: a self-patching
		// cursor proxy advances to the referenced object instead of minting
		// a fresh proxy per step.
		if proxyMode(obj) == proxyModeAssign && v.IsRef() {
			out, err := rt.assignReturn(obj, src, v)
			if err != nil {
				return heap.Nil(), err
			}
			return out[0], nil
		}
		return rt.translate(v, src)
	case heap.SpecialObjProxy:
		if rt.faultHandler == nil {
			return heap.Nil(), fmt.Errorf("core: object fault on @%d without fault handler", id)
		}
		resolved, err := rt.faultHandler.HandleFault(rt, obj)
		if err != nil {
			return heap.Nil(), err
		}
		return rt.Field(resolved, name)
	default:
		return heap.Nil(), fmt.Errorf("core: cannot read field of %s object", obj.Class().Special)
	}
}

// SetFieldValue writes a field through the swapping-aware indirection. The
// assigned value is always translated into the owning object's cluster
// perspective, maintaining the invariant that fields hold only intra-cluster
// direct references or proxies sourced at the owning cluster.
func (rt *Runtime) SetFieldValue(target heap.Value, name string, v heap.Value) error {
	id, err := target.Ref()
	if err != nil {
		return err
	}
	if id == heap.NilID {
		return fmt.Errorf("%w: field %s", heap.ErrNilTarget, name)
	}
	rt.depth++
	save := len(rt.stack)
	rt.stack = append(rt.stack, id)
	rt.pushValueRefs(v)
	defer func() {
		rt.stack = rt.stack[:save]
		rt.depth--
		if rt.depth == 0 {
			rt.stack = rt.stack[:0]
		}
	}()
	obj, err := rt.materialize(id)
	if err != nil {
		return err
	}
	switch obj.Class().Special {
	case heap.SpecialNone:
		cluster := rt.mgr.ClusterOf(id)
		tv, err := rt.translate(v, cluster)
		if err != nil {
			return err
		}
		return obj.SetFieldByName(name, tv)
	case heap.SpecialSCProxy:
		src := proxySrc(obj)
		ultimate := proxyUltimate(obj)
		dst, swapped := rt.mgr.enterCrossing(src, ultimate)
		if swapped {
			if _, err := rt.SwapIn(dst, WithCause(CauseReload)); err != nil {
				return fmt.Errorf("core: reload cluster %d: %w", dst, err)
			}
		} else {
			rt.notePrefetchHit(dst)
		}
		real, err := rt.h.Get(ultimate)
		if err != nil {
			return err
		}
		tv, err := rt.translate(v, dst)
		if err != nil {
			return err
		}
		return real.SetFieldByName(name, tv)
	case heap.SpecialObjProxy:
		if rt.faultHandler == nil {
			return fmt.Errorf("core: object fault on @%d without fault handler", id)
		}
		resolved, err := rt.faultHandler.HandleFault(rt, obj)
		if err != nil {
			return err
		}
		return rt.SetFieldValue(resolved, name, v)
	default:
		return fmt.Errorf("core: cannot write field of %s object", obj.Class().Special)
	}
}
