package core

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"objectswap/internal/event"
	"objectswap/internal/heap"
	"objectswap/internal/store"
	"objectswap/internal/wire"
)

// snapshotTags walks the list from the head via the swapping runtime and
// returns every node's tag — the application-visible view of the graph.
func (f *fixture) snapshotTags(t testing.TB) []int64 {
	t.Helper()
	var tags []int64
	cur := f.head(t)
	for !cur.IsNil() {
		tag, err := f.rt.Field(cur, "tag")
		if err != nil {
			t.Fatalf("snapshot at %d: %v", len(tags), err)
		}
		tags = append(tags, tag.MustInt())
		next, err := f.rt.Field(cur, "next")
		if err != nil {
			t.Fatal(err)
		}
		cur = next
		if len(tags) > 100000 {
			t.Fatal("runaway list")
		}
	}
	return tags
}

func TestSwapOutFreesMemoryAndDetaches(t *testing.T) {
	f := newFixture(t, 0)
	ids, clusters := f.buildList(t, 30, 10, 64)
	h := f.rt.Heap()
	before := h.Used()

	// Resident bytes of cluster 2 (nodes 10..19).
	var clusterBytes int64
	for _, id := range ids[10:20] {
		o, _ := h.Get(id)
		clusterBytes += o.Size()
	}

	ev, err := f.rt.SwapOut(clusters[1])
	if err != nil {
		t.Fatal(err)
	}
	if ev.Objects != 10 || ev.Device != "pda-neighbor" || ev.Bytes <= 0 {
		t.Fatalf("swap event = %+v", ev)
	}
	// The negotiated shipment is on the device and decodes back to a wrapper
	// document for this key (binary framing by default; the self-describing
	// payload carries its own format).
	data, err := f.mem.Get(ctx, ev.Key)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Format != string(wire.FormatBinary) {
		t.Fatalf("negotiated format = %q, want %q", ev.Format, wire.FormatBinary)
	}
	doc, err := wire.Decode(data, nil)
	if err != nil {
		t.Fatalf("device holds something that is not a wrapper document: %v", err)
	}
	if doc.ClusterID != ev.Key {
		t.Fatalf("wrapper document names %q, want %q", doc.ClusterID, ev.Key)
	}

	// Detachment completeness: no root-reachable path reaches any member.
	reach := h.ReachableFromRoots()
	for _, id := range ids[10:20] {
		if reach[id] {
			t.Fatalf("swapped member @%d still root-reachable", id)
		}
	}

	// After collection, the memory is back (minus the replacement-object and
	// middleware proxies).
	st := f.rt.Collect()
	if st.Reclaimed < 10 {
		t.Fatalf("collected %d objects, want >= 10", st.Reclaimed)
	}
	freed := before - h.Used()
	if freed < clusterBytes-200 {
		t.Fatalf("freed %d bytes, want about %d", freed, clusterBytes)
	}
	if !f.rt.Manager().IsSwapped(clusters[1]) {
		t.Fatal("cluster not marked swapped")
	}
}

func TestReloadRestoresGraph(t *testing.T) {
	f := newFixture(t, 0)
	_, clusters := f.buildList(t, 30, 10, 16)
	want := f.snapshotTags(t)

	if _, err := f.rt.SwapOut(clusters[1]); err != nil {
		t.Fatal(err)
	}
	f.rt.Collect()

	// Touching the graph faults the cluster back in transparently.
	got := f.snapshotTags(t)
	if len(got) != len(want) {
		t.Fatalf("list length after reload = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("tag[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	if f.rt.Manager().IsSwapped(clusters[1]) {
		t.Fatal("cluster still marked swapped after traversal")
	}
	// The stale copy is dropped from the device.
	keys, _ := f.mem.Keys(ctx)
	if len(keys) != 0 {
		t.Fatalf("device still holds %v after reload", keys)
	}
}

func TestSwapRoundTripIsIsomorphic(t *testing.T) {
	// The paper's Figure 3 → Figure 4 → Figure 3 cycle, on a list.
	f := newFixture(t, 0)
	ids, clusters := f.buildList(t, 40, 10, 8)
	want := f.snapshotTags(t)

	for cycle := 0; cycle < 3; cycle++ {
		for _, c := range clusters[1:] {
			if _, err := f.rt.SwapOut(c); err != nil {
				t.Fatalf("cycle %d cluster %d: %v", cycle, c, err)
			}
			f.rt.Collect()
			if _, err := f.rt.SwapIn(c); err != nil {
				t.Fatalf("cycle %d cluster %d: %v", cycle, c, err)
			}
		}
		got := f.snapshotTags(t)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("cycle %d: tag[%d] = %d, want %d", cycle, i, got[i], want[i])
			}
		}
	}
	// Original object identities are preserved across the cycles.
	o, err := f.rt.Heap().Get(ids[15])
	if err != nil {
		t.Fatalf("node 15 lost its identity: %v", err)
	}
	tag, _ := o.FieldByName("tag")
	if tag.MustInt() != 15 {
		t.Fatalf("node 15 tag = %v", tag)
	}
}

func TestSwapInExplicitAndErrors(t *testing.T) {
	f := newFixture(t, 0)
	_, clusters := f.buildList(t, 20, 10, 8)

	if _, err := f.rt.SwapOut(RootCluster); !errors.Is(err, ErrRootCluster) {
		t.Errorf("swap root: %v", err)
	}
	if _, err := f.rt.SwapOut(ClusterID(999)); !errors.Is(err, ErrUnknownCluster) {
		t.Errorf("swap unknown: %v", err)
	}
	empty := f.rt.Manager().NewCluster()
	if _, err := f.rt.SwapOut(empty); err == nil {
		t.Error("swap empty cluster: want error")
	}
	if _, err := f.rt.SwapIn(clusters[1]); !errors.Is(err, ErrClusterLoaded) {
		t.Errorf("swap-in loaded: %v", err)
	}
	if _, err := f.rt.SwapOut(clusters[1]); err != nil {
		t.Fatal(err)
	}
	if _, err := f.rt.SwapOut(clusters[1]); !errors.Is(err, ErrClusterSwapped) {
		t.Errorf("double swap-out: %v", err)
	}
	if _, err := f.rt.SwapIn(clusters[1]); err != nil {
		t.Fatal(err)
	}
	// No store provider at all.
	bare := NewRuntime(heap.New(0), heap.NewRegistry())
	bare.MustRegisterClass(newNodeClass())
	c := bare.Manager().NewCluster()
	o, _ := bare.NewObject(newNodeClassClone(), c)
	_ = o
	if _, err := bare.SwapOut(c); !errors.Is(err, ErrNoStores) {
		t.Errorf("no stores: %v", err)
	}
}

// newNodeClassClone returns a second registered-compatible class instance for
// the bare-runtime test above (class instances cannot be shared across
// registries once registered).
func newNodeClassClone() *heap.Class { return newNodeClass() }

func TestOutboundEdgesKeepDownstreamAlive(t *testing.T) {
	// Cluster A references cluster B; B is reachable ONLY through A. While A
	// is swapped out, its replacement-object must keep B alive (conservative
	// whole-cluster reachability). When the last reference to A disappears,
	// both die and the device copy is dropped.
	f := newFixture(t, 0)
	ca := f.rt.Manager().NewCluster()
	cb := f.rt.Manager().NewCluster()
	a, _ := f.rt.NewObject(f.node, ca)
	b, _ := f.rt.NewObject(f.node, cb)
	if err := f.rt.SetFieldValue(a.RefTo(), "next", b.RefTo()); err != nil {
		t.Fatal(err)
	}
	if err := f.rt.SetRoot("a", a.RefTo()); err != nil {
		t.Fatal(err)
	}
	bID := b.ID()

	ev, err := f.rt.SwapOut(ca)
	if err != nil {
		t.Fatal(err)
	}
	f.rt.Collect()
	if !f.rt.Heap().Contains(bID) {
		t.Fatal("downstream cluster B collected while A swapped (outbound edge lost)")
	}

	// Drop the root: A's inbound proxy and replacement become garbage; B
	// follows; the device is told to drop the XML.
	f.rt.Heap().DelRoot("a")
	f.rt.Collect()
	if f.rt.Heap().Contains(bID) {
		t.Fatal("B survived after the whole subgraph died")
	}
	if _, err := f.mem.Get(ctx, ev.Key); !errors.Is(err, store.ErrNotFound) {
		t.Fatalf("device still holds dropped cluster: %v", err)
	}
	if f.rt.Manager().IsSwapped(ca) {
		t.Fatal("dead swapped cluster still tracked")
	}
}

func TestSwapEventsPublished(t *testing.T) {
	bus := event.NewBus()
	h := heap.New(0)
	devices := store.NewRegistry(store.SelectMostFree)
	_ = devices.Add("d", store.NewMem(0))
	rt := NewRuntime(h, heap.NewRegistry(), WithStores(devices), WithBus(bus))
	node := newNodeClass()
	rt.MustRegisterClass(node)

	var outs, ins, drops []SwapEvent
	bus.Subscribe(event.TopicSwapOut, func(ev event.Event) {
		outs = append(outs, ev.Payload.(SwapEvent))
	})
	bus.Subscribe(event.TopicSwapIn, func(ev event.Event) {
		ins = append(ins, ev.Payload.(SwapEvent))
	})
	bus.Subscribe(event.TopicSwapDrop, func(ev event.Event) {
		drops = append(drops, ev.Payload.(SwapEvent))
	})

	c := rt.Manager().NewCluster()
	o, _ := rt.NewObject(node, c)
	if err := rt.SetRoot("x", o.RefTo()); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.SwapOut(c); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.SwapIn(c); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.SwapOut(c); err != nil {
		t.Fatal(err)
	}
	h.DelRoot("x")
	rt.Collect()

	if len(outs) != 2 || len(ins) != 1 || len(drops) != 1 {
		t.Fatalf("events: %d outs, %d ins, %d drops", len(outs), len(ins), len(drops))
	}
	if outs[0].Cluster != c || drops[0].Cluster != c {
		t.Fatalf("event payloads: %+v %+v", outs[0], drops[0])
	}
}

func TestProxiesCreatedWhileSwappedTargetReplacement(t *testing.T) {
	f := newFixture(t, 0)
	ids, clusters := f.buildList(t, 20, 10, 8)
	if _, err := f.rt.SwapOut(clusters[1]); err != nil {
		t.Fatal(err)
	}
	// Create a new proxy to a member of the swapped cluster (e.g. the app
	// stores a reference it got earlier into a fresh root).
	pid, err := f.rt.proxyFor(RootCluster, ids[15])
	if err != nil {
		t.Fatal(err)
	}
	if err := f.rt.SetRoot("late", heap.Ref(pid)); err != nil {
		t.Fatal(err)
	}
	// Invoking it faults the cluster in.
	late, _ := f.rt.Root("late")
	tag, err := f.rt.Invoke(late, "tag")
	if err != nil {
		t.Fatal(err)
	}
	if tag[0].MustInt() != 15 {
		t.Fatalf("late proxy reached tag %v, want 15", tag[0])
	}
}

func TestSwapOutFailsCleanlyWhenNoDeviceFits(t *testing.T) {
	h := heap.New(0)
	devices := store.NewRegistry(store.SelectMostFree)
	_ = devices.Add("tiny", store.NewMem(64)) // far too small for any XML
	rt := NewRuntime(h, heap.NewRegistry(), WithStores(devices))
	node := newNodeClass()
	rt.MustRegisterClass(node)
	c := rt.Manager().NewCluster()
	o, _ := rt.NewObject(node, c)
	if err := rt.SetRoot("x", o.RefTo()); err != nil {
		t.Fatal(err)
	}
	used := h.Used()
	if _, err := rt.SwapOut(c); !errors.Is(err, store.ErrNoDevice) {
		t.Fatalf("want ErrNoDevice, got %v", err)
	}
	// Graph untouched; replacement rolled back.
	if rt.Manager().IsSwapped(c) {
		t.Fatal("cluster marked swapped after failure")
	}
	rt.Collect()
	if h.Used() > used {
		t.Fatalf("leaked middleware objects: used %d > %d", h.Used(), used)
	}
	tags, err := rt.Invoke(mustRoot(t, rt, "x"), "tag")
	if err != nil || tags[0].MustInt() != 0 {
		t.Fatalf("graph damaged by failed swap-out: %v %v", tags, err)
	}
}

func mustRoot(t testing.TB, rt *Runtime, name string) heap.Value {
	t.Helper()
	v, ok := rt.Root(name)
	if !ok {
		t.Fatalf("missing root %s", name)
	}
	return v
}

func TestSwapOutOfActiveClusterRefused(t *testing.T) {
	f := newFixture(t, 0)
	_, clusters := f.buildList(t, 20, 10, 8)
	victim := clusters[0]

	// A method that, mid-flight, tries to swap out its own cluster.
	evil := heap.NewClass("Evil", heap.FieldDef{Name: "peer", Kind: heap.KindRef})
	var rtRef = f.rt
	evil.AddMethod("selfswap", func(call *heap.Call) ([]heap.Value, error) {
		_, err := rtRef.SwapOut(victim)
		if err != nil {
			return []heap.Value{heap.Str(err.Error())}, nil
		}
		return []heap.Value{heap.Str("")}, nil
	})
	f.rt.MustRegisterClass(evil)
	e, err := f.rt.NewObject(evil, victim)
	if err != nil {
		t.Fatal(err)
	}
	out, err := f.rt.Invoke(e.RefTo(), "selfswap")
	if err != nil {
		t.Fatal(err)
	}
	msg, _ := out[0].Str()
	if !strings.Contains(msg, "in-flight") {
		t.Fatalf("self-swap not refused: %q", msg)
	}
}

func TestDropRetryWhenDeviceUnreachable(t *testing.T) {
	f := newFixture(t, 0)
	_, clusters := f.buildList(t, 20, 10, 8)
	ev, err := f.rt.SwapOut(clusters[1])
	if err != nil {
		t.Fatal(err)
	}
	// Kill the last reference to the swapped cluster, then make the device
	// unreachable before the collection that would drop the XML.
	// Cut the boundary edge: node 9's next.
	cur := f.head(t)
	for i := 0; i < 9; i++ {
		next, err := f.rt.Field(cur, "next")
		if err != nil {
			t.Fatal(err)
		}
		cur = next
	}
	if err := f.rt.SetFieldValue(cur, "next", heap.Nil()); err != nil {
		t.Fatal(err)
	}

	f.reg.SetAvailable("pda-neighbor", false)
	f.rt.Collect()
	if f.rt.Manager().PendingDrops() != 1 {
		t.Fatalf("pending drops = %d, want 1", f.rt.Manager().PendingDrops())
	}
	// Device comes back; next collection retries and succeeds.
	f.reg.SetAvailable("pda-neighbor", true)
	f.rt.Collect()
	if f.rt.Manager().PendingDrops() != 0 {
		t.Fatalf("pending drops = %d, want 0", f.rt.Manager().PendingDrops())
	}
	if _, err := f.mem.Get(ctx, ev.Key); !errors.Is(err, store.ErrNotFound) {
		t.Fatalf("XML not dropped after retry: %v", err)
	}
}

func TestEvictorOnAllocationPressure(t *testing.T) {
	// A heap with room for roughly two 10-node clusters (plus middleware
	// objects): building four clusters forces the coldest ones out through
	// the evictor, and reading everything back forces reload-evictions too.
	node := newNodeClass()
	h := heap.New(3200)
	devices := store.NewRegistry(store.SelectMostFree)
	mem := store.NewMem(0)
	_ = devices.Add("d", mem)
	rt := NewRuntime(h, heap.NewRegistry(), WithStores(devices))
	rt.MustRegisterClass(node)
	rt.SetEvictor(rt.EvictColdest)

	const numClusters, perCluster = 4, 10
	var clusters []ClusterID
	for c := 0; c < numClusters; c++ {
		cl := rt.Manager().NewCluster()
		clusters = append(clusters, cl)
		var prev *heap.Object
		for i := 0; i < perCluster; i++ {
			o, err := rt.NewObject(node, cl)
			if err != nil {
				t.Fatalf("cluster %d obj %d: %v", c, i, err)
			}
			o.MustSet("tag", heap.Int(int64(c*100+i)))
			if prev == nil {
				if err := rt.SetRoot(fmt.Sprintf("head-%d", c), o.RefTo()); err != nil {
					t.Fatal(err)
				}
			} else {
				if err := rt.SetFieldValue(prev.RefTo(), "next", o.RefTo()); err != nil {
					t.Fatal(err)
				}
			}
			prev = o
		}
	}
	// At least one earlier cluster must have been swapped out to make room.
	swapped := 0
	for _, cl := range clusters {
		if rt.Manager().IsSwapped(cl) {
			swapped++
		}
	}
	if swapped == 0 {
		t.Fatal("no cluster evicted under pressure")
	}
	// Every chain is still fully readable through its root; reloads may
	// themselves need to evict other clusters.
	for c := 0; c < numClusters; c++ {
		cur := mustRoot(t, rt, fmt.Sprintf("head-%d", c))
		for i := 0; i < perCluster; i++ {
			out, err := rt.Invoke(cur, "tag")
			if err != nil {
				t.Fatalf("cluster %d node %d: %v", c, i, err)
			}
			if out[0].MustInt() != int64(c*100+i) {
				t.Fatalf("cluster %d node %d tag = %v", c, i, out[0])
			}
			next, err := rt.Field(cur, "next")
			if err != nil {
				t.Fatal(err)
			}
			cur = next
		}
		if !cur.IsNil() {
			t.Fatalf("cluster %d chain longer than built", c)
		}
	}
}

// Property: arbitrary swap-out/swap-in sequences on a random multi-cluster
// graph never change the application-visible list of tags.
func TestPropSwapSequencesPreserveGraph(t *testing.T) {
	fn := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		f := newFixture(t, 0)
		n := 10 + r.Intn(40)
		per := 3 + r.Intn(7)
		_, clusters := f.buildList(t, n, per, 8)
		want := f.snapshotTags(t)

		for step := 0; step < 12; step++ {
			c := clusters[r.Intn(len(clusters))]
			if f.rt.Manager().IsSwapped(c) {
				if _, err := f.rt.SwapIn(c); err != nil {
					t.Logf("seed %d: swap-in %d: %v", seed, c, err)
					return false
				}
			} else {
				if _, err := f.rt.SwapOut(c); err != nil {
					t.Logf("seed %d: swap-out %d: %v", seed, c, err)
					return false
				}
				if r.Intn(2) == 0 {
					f.rt.Collect()
				}
			}
		}
		got := f.snapshotTags(t)
		if len(got) != len(want) {
			t.Logf("seed %d: len %d != %d", seed, len(got), len(want))
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				t.Logf("seed %d: tag[%d] %d != %d", seed, i, got[i], want[i])
				return false
			}
		}
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
