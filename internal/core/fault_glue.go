package core

import (
	"errors"

	"objectswap/internal/fault"
)

// This file is the runtime's glue onto internal/fault: the public SwapIn
// wrapper that coalesces concurrent faults into one flight, the callbacks
// the prefetcher drives the runtime through, and the hit accounting invoked
// from the dispatch crossing sites.

// WithPrefetch enables the graph-driven prefetcher: after every demand
// fault the fault engine speculatively swaps in the faulted cluster's top
// `depth` graph-neighbor clusters on `workers` background goroutines
// (workers <= 0 selects a small default). Speculative reloads go through
// the normal reserve/commit path and are gated by the admission guard (see
// Runtime.FaultEngine and fault.Engine.SetAdmit — the facade wires the
// memory monitor in there).
func WithPrefetch(depth, workers int) Option {
	return func(rt *Runtime) {
		rt.prefetchDepth = depth
		rt.prefetchWorkers = workers
	}
}

// FaultEngine exposes the runtime's asynchronous fault engine (always
// non-nil): coalescing/batching counters, the prefetch inventory snapshot,
// the admission-guard hook and Quiesce/Stop.
func (rt *Runtime) FaultEngine() *fault.Engine { return rt.faults }

// PrefetchHitTelemetry is an optional extension of Telemetry: trackers that
// implement it receive prefetch hits — crossings that found their target
// cluster already resident thanks to the prefetcher — with the seconds the
// hit actually cost (an inventory lookup, not a device round trip).
type PrefetchHitTelemetry interface {
	RecordPrefetchHit(cluster uint32, seconds float64)
}

// SwapIn reloads a swapped cluster through the fault engine's single-flight
// table: concurrent callers for the same cluster park on one in-flight
// fetch and all resume with its result, error included. A caller that
// arrives while a *prefetch* of the cluster is in flight joins that flight
// the same way instead of bouncing off ErrClusterBusy. See swapInDirect for
// the underlying phases and option semantics; a successful demand reload
// additionally triggers prefetch of the cluster's graph neighbors.
func (rt *Runtime) SwapIn(id ClusterID, opts ...SwapOption) (SwapEvent, error) {
	res, _, err := rt.faults.Do(uint32(id), func() (any, error) {
		ev, err := rt.swapInDirect(id, opts...)
		if err != nil {
			return nil, err
		}
		return ev, nil
	})
	if err != nil {
		return SwapEvent{}, err
	}
	ev, _ := res.(SwapEvent)
	if ev.Cause != CausePrefetch {
		rt.faults.TriggerPrefetch(uint32(id))
	}
	return ev, nil
}

// prefetchSwapIn is the fault.Config.SwapIn callback: one speculative
// background reload. It reports installed=false for every benign "nothing
// to do" outcome — the cluster is already resident, is reserved by a
// concurrent swap elsewhere, or this call merely joined a demand flight
// (whose install belongs to the demand fault, not the prefetcher).
func (rt *Runtime) prefetchSwapIn(cluster uint32) (int64, bool, error) {
	ev, err := rt.SwapIn(ClusterID(cluster), WithCause(CausePrefetch))
	if err != nil {
		if errors.Is(err, ErrClusterLoaded) || errors.Is(err, ErrClusterBusy) ||
			errors.Is(err, ErrClusterActive) || errors.Is(err, ErrUnknownCluster) {
			return 0, false, nil
		}
		return 0, false, err
	}
	if ev.Cause != CausePrefetch {
		return 0, false, nil
	}
	return int64(ev.Bytes), true, nil
}

// notePrefetchHit runs on the dispatch crossing sites when the crossed-into
// cluster turned out to be resident: if the prefetcher put it there, the
// crossing consumes the inventory entry, reports the (map-lookup-cheap) hit
// latency to telemetry, and extends the speculation one hop further along
// the graph so a pointer chase stays ahead of the chaser.
func (rt *Runtime) notePrefetchHit(id ClusterID) {
	start := rt.obsReg.Clock().Now()
	if _, ok := rt.faults.ConsumeHit(uint32(id)); !ok {
		return
	}
	seconds := rt.obsReg.Clock().Now().Sub(start).Seconds()
	if pt, ok := rt.telem.(PrefetchHitTelemetry); ok && rt.telem != nil {
		pt.RecordPrefetchHit(uint32(id), seconds)
	}
	rt.faults.TriggerPrefetch(uint32(id))
}
