package core

import (
	"errors"
	"fmt"

	"objectswap/internal/heap"
)

// buildProxyClass synthesizes the swap-cluster-proxy class for an application
// class — the moral equivalent of obicomp generating, for each class A, a
// proxy type implementing ISwapClusterProxy plus A's public interface. The
// method bodies exist so the class carries the full interface; actual
// interception happens in Runtime dispatch, which recognizes
// heap.SpecialSCProxy before consulting the method table.
func buildProxyClass(app *heap.Class) *heap.Class {
	p := heap.NewClass(proxyClassPrefix+app.Name,
		heap.FieldDef{Name: fldTarget, Kind: heap.KindRef},
		heap.FieldDef{Name: fldObj, Kind: heap.KindInt},
		heap.FieldDef{Name: fldSrc, Kind: heap.KindInt},
		heap.FieldDef{Name: fldMode, Kind: heap.KindInt},
	)
	p.Special = heap.SpecialSCProxy
	for _, name := range app.MethodNames() {
		method := name
		p.AddMethod(method, func(*heap.Call) ([]heap.Value, error) {
			return nil, fmt.Errorf("core: proxy method %s invoked without swapping runtime", method)
		})
	}
	return p
}

// buildReplacementClass synthesizes the replacement-object class: "simply an
// array of references" plus the bookkeeping needed to refetch the cluster.
func buildReplacementClass() *heap.Class {
	c := heap.NewClass(replacementClassName,
		heap.FieldDef{Name: fldClust, Kind: heap.KindInt},
		heap.FieldDef{Name: fldOut, Kind: heap.KindList},
		heap.FieldDef{Name: fldKey, Kind: heap.KindString},
		heap.FieldDef{Name: fldStore, Kind: heap.KindString},
	)
	c.Special = heap.SpecialReplacement
	return c
}

// isProxy reports whether the object is a swap-cluster-proxy.
func isProxy(o *heap.Object) bool { return o.Class().Special == heap.SpecialSCProxy }

// Fixed slot indices of the proxy class layout (see buildProxyClass): the
// boundary hop is the hot path of Figure 5, so proxy state is read by index
// rather than by name.
const (
	slotTarget = 0
	slotObj    = 1
	slotSrc    = 2
	slotMode   = 3
)

// proxyUltimate reads a proxy's ultimate target object id.
func proxyUltimate(p *heap.Object) heap.ObjID {
	i, _ := p.Field(slotObj).Int()
	return heap.ObjID(i)
}

// proxySrc reads a proxy's source cluster.
func proxySrc(p *heap.Object) ClusterID {
	i, _ := p.Field(slotSrc).Int()
	return ClusterID(i)
}

// proxyMode reads a proxy's mode field.
func proxyMode(p *heap.Object) int64 {
	i, _ := p.Field(slotMode).Int()
	return i
}

// proxyFor returns (creating or reusing) the swap-cluster-proxy mediating
// references from cluster src to the object target. It assumes target is NOT
// a member of src (callers dismantle that case into a direct reference).
func (rt *Runtime) proxyFor(src ClusterID, target heap.ObjID) (heap.ObjID, error) {
	key := proxyKey{src: src, target: target}
	if pid, ok := rt.mgr.lookupProxy(key); ok {
		// The registry entry may be stale if the proxy was collected but its
		// finalizer has not yet run (finalizers run at collection, so entries
		// are purged promptly; this is a cheap belt-and-braces check).
		if rt.h.Contains(pid) {
			return pid, nil
		}
		rt.mgr.purgeProxy(pid)
	}

	className, ok := rt.mgr.classOf(target)
	if !ok {
		// Target was never assigned: it is a root-cluster object; resolve its
		// class from residency.
		o, err := rt.h.Get(target)
		if err != nil {
			return heap.NilID, fmt.Errorf("core: proxy target @%d: %w", target, err)
		}
		className = o.Class().Name
	}
	return rt.newProxy(src, target, className, proxyModeNormal)
}

// newProxy allocates and registers a swap-cluster-proxy.
func (rt *Runtime) newProxy(src ClusterID, target heap.ObjID, className string, mode int64) (heap.ObjID, error) {
	proxyClass, ok := rt.proxyClasses[className]
	if !ok {
		return heap.NilID, fmt.Errorf("core: no proxy class for %s (class not registered)", className)
	}
	p, err := rt.allocMiddleware(proxyClass)
	if err != nil {
		return heap.NilID, fmt.Errorf("core: allocate proxy: %w", err)
	}
	targetCluster := rt.mgr.ClusterOf(target)

	// While the target's cluster is swapped out, fresh proxies point at the
	// replacement-object so a traversal faults the cluster in.
	tgt := heap.Ref(target)
	if rid, ok := rt.mgr.replacementIfSwapped(targetCluster); ok {
		tgt = heap.Ref(rid)
	}

	if err := setProxyFields(p, tgt, target, src, mode); err != nil {
		return heap.NilID, err
	}
	rt.mgr.registerProxy(p.ID(), proxyKey{src: src, target: target}, targetCluster)
	rt.h.OnFinalize(p.ID(), rt.mgr.purgeProxy)
	return p.ID(), nil
}

// AssignedCursor builds a dedicated, assign-optimized cursor proxy for the
// object v designates, sourced at swap-cluster-0. This is the intended use of
// SwapClusterUtils.assign in Section 4: the cursor variable gets its own
// proxy instance, which patches itself as the iteration advances instead of
// creating (and discarding) one proxy per step. The cursor proxy is private:
// it is never handed out by the registry, so patching it cannot corrupt
// other references to the same targets.
//
// If v designates an object of swap-cluster-0 itself, no mediation is needed
// and v is returned unchanged.
func (rt *Runtime) AssignedCursor(v heap.Value) (heap.Value, error) {
	id, err := v.Ref()
	if err != nil {
		return heap.Nil(), err
	}
	if id == heap.NilID {
		return heap.Nil(), heap.ErrNilTarget
	}
	ultimate, err := rt.resolveUltimate(id)
	if err != nil {
		return heap.Nil(), err
	}
	if rt.mgr.ClusterOf(ultimate) == RootCluster {
		return heap.Ref(ultimate), nil
	}
	className, ok := rt.mgr.classOf(ultimate)
	if !ok {
		o, err := rt.h.Get(ultimate)
		if err != nil {
			return heap.Nil(), err
		}
		className = o.Class().Name
	}
	pid, err := rt.newCursorProxy(RootCluster, ultimate, className)
	if err != nil {
		return heap.Nil(), err
	}
	return heap.Ref(pid), nil
}

// newCursorProxy allocates an assign-mode proxy registered only in the
// inbound index (for swap-out patching) — never in the shared registry.
func (rt *Runtime) newCursorProxy(src ClusterID, target heap.ObjID, className string) (heap.ObjID, error) {
	proxyClass, ok := rt.proxyClasses[className]
	if !ok {
		return heap.NilID, fmt.Errorf("core: no proxy class for %s (class not registered)", className)
	}
	p, err := rt.allocMiddleware(proxyClass)
	if err != nil {
		return heap.NilID, fmt.Errorf("core: allocate cursor proxy: %w", err)
	}
	targetCluster := rt.mgr.ClusterOf(target)
	tgt := heap.Ref(target)
	if rid, ok := rt.mgr.replacementIfSwapped(targetCluster); ok {
		tgt = heap.Ref(rid)
	}
	if err := setProxyFields(p, tgt, target, src, proxyModeAssign); err != nil {
		return heap.NilID, err
	}
	rt.mgr.registerCursorProxy(p.ID(), proxyKey{src: src, target: target}, targetCluster)
	rt.h.OnFinalize(p.ID(), rt.mgr.purgeProxy)
	return p.ID(), nil
}

func setProxyFields(p *heap.Object, tgt heap.Value, ultimate heap.ObjID, src ClusterID, mode int64) error {
	if err := p.SetFieldByName(fldTarget, tgt); err != nil {
		return err
	}
	if err := p.SetFieldByName(fldObj, heap.Int(int64(ultimate))); err != nil {
		return err
	}
	if err := p.SetFieldByName(fldSrc, heap.Int(int64(src))); err != nil {
		return err
	}
	return p.SetFieldByName(fldMode, heap.Int(mode))
}

// resolveUltimate unwraps a reference to the identity of the application
// object it ultimately designates: proxies yield their recorded target,
// plain objects yield themselves.
func (rt *Runtime) resolveUltimate(id heap.ObjID) (heap.ObjID, error) {
	o, err := rt.h.Get(id)
	if err != nil {
		// Non-resident members of swapped clusters keep their identities.
		if _, known := rt.mgr.classOf(id); known {
			return id, nil
		}
		return heap.NilID, err
	}
	switch o.Class().Special {
	case heap.SpecialSCProxy:
		return proxyUltimate(o), nil
	case heap.SpecialReplacement:
		return heap.NilID, errors.New("core: replacement-object escaped into application graph")
	default:
		return id, nil
	}
}

// translate rewrites a value into the perspective of cluster `to`: every
// contained reference is dismantled to a direct reference when its ultimate
// target belongs to `to`, and otherwise mediated by the (unique) proxy for
// (to, target). This is the reference-interception rule set of Section 4.
func (rt *Runtime) translate(v heap.Value, to ClusterID) (heap.Value, error) {
	switch v.Kind() {
	case heap.KindRef:
		id, _ := v.Ref()
		return rt.translateRef(id, to)
	case heap.KindList:
		elems, _ := v.List()
		out := make([]heap.Value, len(elems))
		for i, e := range elems {
			te, err := rt.translate(e, to)
			if err != nil {
				return heap.Nil(), err
			}
			out[i] = te
		}
		return heap.List(out...), nil
	default:
		return v, nil
	}
}

// translateRef applies the per-reference rules: dismantle, pass-through or
// wrap in a proxy.
func (rt *Runtime) translateRef(id heap.ObjID, to ClusterID) (heap.Value, error) {
	if id == heap.NilID {
		return heap.Nil(), nil
	}
	o, err := rt.h.Get(id)
	if err != nil {
		// A direct reference to a member of a swapped-out cluster is valid
		// currency: it translates without faulting the cluster in (the proxy
		// built for it targets the replacement-object).
		if _, known := rt.mgr.classOf(id); known {
			if rt.mgr.ClusterOf(id) == to {
				// A same-cluster reference to a non-resident member cannot
				// arise from the interception rules; surface the dangle.
				return heap.Nil(), err
			}
			pid, perr := rt.proxyFor(to, id)
			if perr != nil {
				return heap.Nil(), perr
			}
			rt.pushStack(pid)
			return heap.Ref(pid), nil
		}
		return heap.Nil(), err
	}
	ultimate := id
	viaProxy := false
	if isProxy(o) {
		ultimate = proxyUltimate(o)
		viaProxy = true
	} else if isObjProxy(o) {
		// Object-fault proxies are cluster-agnostic placeholders: they pass
		// through unchanged and are replaced (not wrapped) after replication.
		return heap.Ref(id), nil
	} else if o.Class().Special == heap.SpecialReplacement {
		return heap.Nil(), errors.New("core: replacement-object escaped into application graph")
	}
	targetCluster := rt.mgr.ClusterOf(ultimate)
	if targetCluster == to {
		// Rule iii: a reference into the receiving cluster itself is
		// dismantled into a direct reference — including a stale proxy whose
		// target was merged into the receiving cluster.
		return heap.Ref(ultimate), nil
	}
	if viaProxy && proxySrc(o) == to {
		// Already the right proxy for this cluster: reuse as-is.
		return heap.Ref(id), nil
	}
	pid, err := rt.proxyFor(to, ultimate)
	if err != nil {
		return heap.Nil(), err
	}
	// Protect the possibly fresh proxy until the caller anchors it.
	rt.pushStack(pid)
	return heap.Ref(pid), nil
}

// Assign enables the iteration optimization of Section 4 on a
// swap-cluster-proxy reference: instead of creating a fresh proxy for each
// reference it returns, the proxy patches itself to the returned object and
// hands back a reference to itself. This is SwapClusterUtils.assign.
func (rt *Runtime) Assign(v heap.Value) error {
	id, err := v.Ref()
	if err != nil {
		return err
	}
	o, err := rt.h.Get(id)
	if err != nil {
		return err
	}
	if !isProxy(o) {
		return fmt.Errorf("%w: %s", ErrNotProxy, o.Class().Name)
	}
	return o.SetFieldByName(fldMode, heap.Int(proxyModeAssign))
}

// Unassign restores normal proxy behaviour.
func (rt *Runtime) Unassign(v heap.Value) error {
	id, err := v.Ref()
	if err != nil {
		return err
	}
	o, err := rt.h.Get(id)
	if err != nil {
		return err
	}
	if !isProxy(o) {
		return fmt.Errorf("%w: %s", ErrNotProxy, o.Class().Name)
	}
	return o.SetFieldByName(fldMode, heap.Int(proxyModeNormal))
}

// ProxyTarget reports the ultimate application object a swap-cluster-proxy
// designates. ok is false when o is not a swap-cluster-proxy.
func ProxyTarget(o *heap.Object) (heap.ObjID, bool) {
	if o == nil || !isProxy(o) {
		return heap.NilID, false
	}
	return proxyUltimate(o), true
}

// IsProxyRef reports whether v currently designates a swap-cluster-proxy.
func (rt *Runtime) IsProxyRef(v heap.Value) bool {
	id, err := v.Ref()
	if err != nil || id == heap.NilID {
		return false
	}
	o, err := rt.h.Get(id)
	return err == nil && isProxy(o)
}
