package core

import (
	"fmt"
	"sort"

	"objectswap/internal/heap"
)

// Swap-cluster resizing: the paper makes both the replication-cluster size
// and the number of clusters grouped into one swap-cluster "adaptable", and
// the ablation benchmarks show why adaptation matters (bad granularity
// thrashes the link). MergeClusters and SplitCluster adapt the granularity
// of an already-built graph at runtime while preserving the mediation
// invariant: after either operation, every cross-cluster reference is
// proxied at the correct source cluster and every intra-cluster reference is
// direct.

// MergeClusters folds cluster src into cluster dst: all of src's objects
// become members of dst, proxies across the former boundary are dismantled
// into direct references, and src is removed. Both clusters must be resident
// and inactive; dst may be RootCluster (demoting a cluster into the global
// space), src may not.
func (rt *Runtime) MergeClusters(dst, src ClusterID) error {
	if src == RootCluster {
		return ErrRootCluster
	}
	if src == dst {
		return fmt.Errorf("core: merge: src and dst are both cluster %d", src)
	}

	// Resizing rewrites membership and member fields; it is a graph mutation
	// and must not interleave with concurrent swaps or collections, so it
	// stops the world (every shard lock, in order). The mutate section keeps
	// proxy allocations made during re-mediation from re-entering the evictor
	// (whose swap-outs and Collect would deadlock on the held shard locks).
	rt.lockAll()
	defer rt.unlockAll()
	endMutate := rt.beginMutate(nil)
	defer endMutate()

	m := rt.mgr
	unlock := m.lockPair(dst, src)
	ds, err := m.tab(dst).state(dst)
	if err != nil {
		unlock()
		return err
	}
	ss, err := m.tab(src).state(src)
	if err != nil {
		unlock()
		return err
	}
	if ds.swapped || ss.swapped {
		unlock()
		return fmt.Errorf("%w: merge requires both clusters resident", ErrClusterSwapped)
	}
	if ds.busy || ss.busy {
		unlock()
		return fmt.Errorf("%w: merge of clusters %d/%d", ErrClusterBusy, dst, src)
	}
	moved := make(map[heap.ObjID]bool, len(ss.objects))
	for oid := range ss.objects {
		moved[oid] = true
	}
	unlock()

	members := make(map[heap.ObjID]bool, len(moved))
	for oid := range moved {
		members[oid] = true
	}
	if err := rt.checkInactive(src, members); err != nil {
		return err
	}
	dts := m.tab(dst)
	dts.mu.Lock()
	for oid := range ds.objects {
		members[oid] = true
	}
	dts.mu.Unlock()
	if err := rt.checkInactive(dst, members); err != nil {
		return err
	}

	// 1. Move membership.
	m.mu.Lock()
	unlock = m.lockPair(dst, src)
	for oid := range moved {
		info := m.objects[oid]
		info.cluster = dst
		m.objects[oid] = info
		delete(ss.objects, oid)
		ds.objects[oid] = true
	}
	// Merge statistics conservatively.
	ds.crossings += ss.crossings
	if ss.lastAccess > ds.lastAccess {
		ds.lastAccess = ss.lastAccess
	}
	delete(m.tab(src).clusters, src)
	// Inbound proxies previously indexed under src now target dst members.
	if idx := m.inbound[src]; idx != nil {
		didx := m.inbound[dst]
		if didx == nil {
			didx = make(map[heap.ObjID]bool)
			m.inbound[dst] = didx
		}
		for pid := range idx {
			didx[pid] = true
		}
		delete(m.inbound, src)
	}
	unlock()
	m.mu.Unlock()

	// 2. Re-mediate the fields of every member of the merged cluster:
	// references to proxies whose ultimate target now shares the cluster are
	// dismantled; proxies sourced at the vanished src are replaced by
	// dst-sourced mediation.
	if err := rt.remediateCluster(dst); err != nil {
		return err
	}
	return nil
}

// SplitCluster moves the given members of cluster src into a fresh cluster
// and returns its id. Boundary edges created by the split are mediated with
// new proxies; references within each half stay direct. The cluster must be
// resident and inactive, and every listed object must be a member.
func (rt *Runtime) SplitCluster(src ClusterID, members []heap.ObjID) (ClusterID, error) {
	if src == RootCluster {
		return 0, ErrRootCluster
	}
	if len(members) == 0 {
		return 0, fmt.Errorf("%w: empty split set", ErrClusterEmpty)
	}

	// See MergeClusters: resizing is a stop-the-world graph mutation.
	rt.lockAll()
	defer rt.unlockAll()
	endMutate := rt.beginMutate(nil)
	defer endMutate()

	m := rt.mgr
	sts := m.tab(src)
	sts.mu.Lock()
	ss, err := sts.state(src)
	if err != nil {
		sts.mu.Unlock()
		return 0, err
	}
	if ss.swapped {
		sts.mu.Unlock()
		return 0, fmt.Errorf("%w: cluster %d", ErrClusterSwapped, src)
	}
	if ss.busy {
		sts.mu.Unlock()
		return 0, fmt.Errorf("%w: cluster %d", ErrClusterBusy, src)
	}
	for _, oid := range members {
		if !ss.objects[oid] {
			sts.mu.Unlock()
			return 0, fmt.Errorf("core: split: @%d is not a member of cluster %d", oid, src)
		}
	}
	all := make(map[heap.ObjID]bool, len(ss.objects))
	for oid := range ss.objects {
		all[oid] = true
	}
	sts.mu.Unlock()
	if err := rt.checkInactive(src, all); err != nil {
		return 0, err
	}

	fresh := m.NewCluster()
	m.mu.Lock()
	unlock := m.lockPair(src, fresh)
	fs := m.tab(fresh).clusters[fresh]
	for _, oid := range members {
		info := m.objects[oid]
		info.cluster = fresh
		m.objects[oid] = info
		delete(ss.objects, oid)
		fs.objects[oid] = true
	}
	fs.lastAccess = ss.lastAccess
	// Inbound proxies whose ultimate moved follow it in the index.
	if idx := m.inbound[src]; idx != nil {
		movedSet := make(map[heap.ObjID]bool, len(members))
		for _, oid := range members {
			movedSet[oid] = true
		}
		fidx := m.inbound[fresh]
		if fidx == nil {
			fidx = make(map[heap.ObjID]bool)
			m.inbound[fresh] = fidx
		}
		for pid := range idx {
			if p, err := rt.h.Get(pid); err == nil && movedSet[proxyUltimate(p)] {
				delete(idx, pid)
				fidx[pid] = true
			}
		}
	}
	unlock()
	m.mu.Unlock()

	// Re-mediate both halves: edges crossing the new boundary gain proxies;
	// proxies that now point within their holder's cluster are dismantled.
	if err := rt.remediateCluster(src); err != nil {
		return fresh, err
	}
	if err := rt.remediateCluster(fresh); err != nil {
		return fresh, err
	}
	return fresh, nil
}

// remediateCluster rewrites the fields of every member of cluster id so the
// mediation invariant holds: intra-cluster references direct, cross-cluster
// references proxied with source id. Object-fault placeholders pass through.
func (rt *Runtime) remediateCluster(id ClusterID) error {
	// Re-mediation rewrites references to semantically identical ones.
	defer rt.h.SuspendWriteObserver()()
	ts := rt.mgr.tab(id)
	ts.mu.Lock()
	cs, err := ts.state(id)
	if err != nil {
		ts.mu.Unlock()
		return err
	}
	ids := make([]heap.ObjID, 0, len(cs.objects))
	for oid := range cs.objects {
		ids = append(ids, oid)
	}
	ts.mu.Unlock()
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	for _, oid := range ids {
		o, err := rt.h.Get(oid)
		if err != nil {
			continue // awaiting collection
		}
		for i := 0; i < o.NumFields(); i++ {
			v := o.Field(i)
			if v.Kind() != heap.KindRef && v.Kind() != heap.KindList {
				continue
			}
			nv, err := rt.translate(v, id)
			if err != nil {
				return fmt.Errorf("core: re-mediate @%d field %s: %w",
					oid, o.Class().Field(i).Name, err)
			}
			if !nv.Equal(v) {
				if err := o.SetField(i, nv); err != nil {
					return err
				}
			}
		}
	}
	// Roots are cluster-0 state: when id is the root cluster (a merge into
	// it), re-mediate them too.
	if id == RootCluster {
		for _, name := range rt.h.RootNames() {
			v, _ := rt.h.Root(name)
			if v.Kind() != heap.KindRef && v.Kind() != heap.KindList {
				continue
			}
			nv, err := rt.translate(v, RootCluster)
			if err != nil {
				return fmt.Errorf("core: re-mediate root %s: %w", name, err)
			}
			if !nv.Equal(v) {
				rt.h.SetRoot(name, nv)
			}
		}
	}
	return nil
}
