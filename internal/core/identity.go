package core

import (
	"objectswap/internal/heap"
)

// RefEqual implements the paper's application-level object identity
// (Section 4, "Enforcing Object Identity"): two references are identical when
// they ultimately designate the same object, regardless of how many distinct
// swap-cluster-proxies mediate them. It is the analogue of the overloaded ==
// operator on proxy classes (or Object.Equals in Java).
//
// Non-reference values fall back to structural equality, so RefEqual is safe
// as a general value comparison.
func (rt *Runtime) RefEqual(a, b heap.Value) (bool, error) {
	aRef := a.IsRef() || a.IsNil()
	bRef := b.IsRef() || b.IsNil()
	if !aRef || !bRef {
		return a.Equal(b), nil
	}
	ua, err := rt.ultimateOf(a)
	if err != nil {
		return false, err
	}
	ub, err := rt.ultimateOf(b)
	if err != nil {
		return false, err
	}
	return ua == ub, nil
}

// ultimateOf resolves a reference value to the identity of the application
// object it designates (NilID for nil).
func (rt *Runtime) ultimateOf(v heap.Value) (heap.ObjID, error) {
	id, err := v.Ref()
	if err != nil {
		return heap.NilID, err
	}
	if id == heap.NilID {
		return heap.NilID, nil
	}
	return rt.resolveUltimate(id)
}

// Deref returns the resident application object a reference designates,
// reloading its cluster if it is swapped out. It gives host-level code
// (examples, tests) a way to inspect objects behind proxies.
func (rt *Runtime) Deref(v heap.Value) (*heap.Object, error) {
	id, err := rt.ultimateOf(v)
	if err != nil {
		return nil, err
	}
	if id == heap.NilID {
		return nil, heap.ErrNilTarget
	}
	cluster := rt.mgr.ClusterOf(id)
	if rt.mgr.IsSwapped(cluster) {
		if _, err := rt.SwapIn(cluster, WithCause(CauseReload)); err != nil {
			return nil, err
		}
	}
	return rt.h.Get(id)
}
