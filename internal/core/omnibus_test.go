package core

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"objectswap/internal/heap"
)

// TestPropOmnibus interleaves every mutating middleware operation — swap-out,
// swap-in, collect, merge, split, checkpoint+restore, eviction pressure and
// graph edits — and checks after every step that (a) the full invariant set
// holds and (b) the application-visible list matches the oracle.
func TestPropOmnibus(t *testing.T) {
	fn := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		f := newFixture(t, 0)
		n := 15 + r.Intn(25)
		per := 4 + r.Intn(6)
		ids, _ := f.buildList(t, n, per, 8)
		oracle := f.snapshotTags(t)

		check := func(step int, op string) bool {
			if errs := f.rt.Manager().CheckInvariants(); len(errs) > 0 {
				for _, e := range errs {
					t.Logf("seed %d step %d after %s: %v", seed, step, op, e)
				}
				return false
			}
			got := f.snapshotTags(t)
			if len(got) != len(oracle) {
				t.Logf("seed %d step %d after %s: length %d != %d", seed, step, op, len(got), len(oracle))
				return false
			}
			for i := range oracle {
				if got[i] != oracle[i] {
					t.Logf("seed %d step %d after %s: tag[%d] %d != %d",
						seed, step, op, i, got[i], oracle[i])
					return false
				}
			}
			return true
		}

		loadedClusters := func() []ClusterID {
			var out []ClusterID
			for _, info := range f.rt.Manager().InfoAll() {
				if info.ID != RootCluster && !info.Swapped && info.Objects > 0 {
					out = append(out, info.ID)
				}
			}
			return out
		}
		anyCluster := func() (ClusterID, bool) {
			var out []ClusterID
			for _, info := range f.rt.Manager().InfoAll() {
				if info.ID != RootCluster && info.Objects > 0 {
					out = append(out, info.ID)
				}
			}
			if len(out) == 0 {
				return 0, false
			}
			return out[r.Intn(len(out))], true
		}

		for step := 0; step < 18; step++ {
			op := "?"
			switch r.Intn(7) {
			case 0:
				op = "swap-out"
				if c, ok := anyCluster(); ok && !f.rt.Manager().IsSwapped(c) {
					if _, err := f.rt.SwapOut(c); err != nil && !errors.Is(err, ErrClusterEmpty) {
						t.Logf("seed %d: swap-out: %v", seed, err)
						return false
					}
				}
			case 1:
				op = "swap-in"
				if c, ok := anyCluster(); ok && f.rt.Manager().IsSwapped(c) {
					if _, err := f.rt.SwapIn(c); err != nil {
						t.Logf("seed %d: swap-in: %v", seed, err)
						return false
					}
				}
			case 2:
				op = "collect"
				f.rt.Collect()
			case 3:
				op = "merge"
				loaded := loadedClusters()
				if len(loaded) >= 2 {
					a, b := loaded[r.Intn(len(loaded))], loaded[r.Intn(len(loaded))]
					if a != b {
						if err := f.rt.MergeClusters(a, b); err != nil {
							t.Logf("seed %d: merge: %v", seed, err)
							return false
						}
					}
				}
			case 4:
				op = "split"
				loaded := loadedClusters()
				if len(loaded) > 0 {
					c := loaded[r.Intn(len(loaded))]
					var members []heap.ObjID
					for _, oid := range ids {
						if f.rt.Manager().ClusterOf(oid) == c {
							members = append(members, oid)
						}
					}
					if len(members) >= 2 {
						k := 1 + r.Intn(len(members)-1)
						if _, err := f.rt.SplitCluster(c, members[:k]); err != nil {
							t.Logf("seed %d: split: %v", seed, err)
							return false
						}
					}
				}
			case 5:
				op = "checkpoint-restore"
				var buf bytes.Buffer
				if err := f.rt.SaveCheckpoint(&buf); err != nil {
					t.Logf("seed %d: save: %v", seed, err)
					return false
				}
				rt2 := NewRuntime(heap.New(0), heap.NewRegistry(), WithStores(f.reg))
				rt2.MustRegisterClass(newNodeClass())
				if err := rt2.LoadCheckpoint(bytes.NewReader(buf.Bytes())); err != nil {
					t.Logf("seed %d: restore: %v", seed, err)
					return false
				}
				// The restored runtime becomes the system under test; the old
				// runtime is abandoned (its shipments stay on the shared
				// device, reachable through the restored bookkeeping).
				f.rt = rt2
			case 6:
				op = "touch"
				if _, err := f.rt.Invoke(f.head(t), "fetch", heap.Int(int64(r.Intn(n)))); err != nil {
					t.Logf("seed %d: touch: %v", seed, err)
					return false
				}
			}
			if !check(step, op) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

// TestPropIdentityStableUnderSwap checks the identity invariant with an
// oracle: RefEqual answers for random reference pairs never change across
// swap cycles.
func TestPropIdentityStableUnderSwap(t *testing.T) {
	fn := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		f := newFixture(t, 0)
		n := 20 + r.Intn(20)
		ids, clusters := f.buildList(t, n, 5, 8)

		// Build a pool of reference expressions: direct refs and proxies
		// from assorted clusters.
		type refExpr struct {
			v  heap.Value
			to heap.ObjID
		}
		var pool []refExpr
		for i := 0; i < 12; i++ {
			target := ids[r.Intn(n)]
			if r.Intn(2) == 0 {
				pool = append(pool, refExpr{v: heap.Ref(target), to: target})
				continue
			}
			src := clusters[r.Intn(len(clusters))]
			if f.rt.Manager().ClusterOf(target) == src {
				pool = append(pool, refExpr{v: heap.Ref(target), to: target})
				continue
			}
			pid, err := f.rt.proxyFor(src, target)
			if err != nil {
				return false
			}
			// Pin the proxy: the pool holds it host-side only (a field-held
			// proxy would be anchored by its holding cluster).
			f.rt.Heap().Pin(pid)
			pool = append(pool, refExpr{v: heap.Ref(pid), to: target})
		}

		checkPool := func() bool {
			for i := range pool {
				for j := range pool {
					eq, err := f.rt.RefEqual(pool[i].v, pool[j].v)
					if err != nil {
						t.Logf("seed %d: RefEqual: %v", seed, err)
						return false
					}
					if eq != (pool[i].to == pool[j].to) {
						t.Logf("seed %d: identity flip between @%d and @%d",
							seed, pool[i].to, pool[j].to)
						return false
					}
				}
			}
			return true
		}
		if !checkPool() {
			return false
		}
		for cycle := 0; cycle < 3; cycle++ {
			c := clusters[r.Intn(len(clusters))]
			if f.rt.Manager().IsSwapped(c) {
				if _, err := f.rt.SwapIn(c); err != nil {
					return false
				}
			} else if _, err := f.rt.SwapOut(c); err != nil && !errors.Is(err, ErrClusterEmpty) {
				return false
			}
			f.rt.Collect()
			if !checkPool() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
